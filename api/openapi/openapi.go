// Package openapi carries the gateway's committed OpenAPI 3 description.
// The YAML is hand-written and versioned with the code; the gateway
// serves it verbatim at GET /openapi.yaml.
package openapi

import _ "embed"

// Spec is the OpenAPI 3 document for the HTTP gateway.
//
//go:embed gateway.yaml
var Spec []byte
