//lint:file-ignore SA1019 the integration suite keeps covering the
// deprecated compatibility wrappers until they are removed.

package repro_test

// End-to-end integration tests spanning the whole pipeline: workload →
// MOD store (+persistence, +index) → IPAC-NN tree → query variants → UQL
// → TCP server, with Monte Carlo cross-validation of the probabilistic
// answers. These are the "does the system hang together" tests; per-module
// behaviour is covered in each package.

import (
	"bytes"
	"math"
	"math/rand"
	"net"
	"testing"

	"repro"
	"repro/internal/envelope"
	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/modserver"
	"repro/internal/sindex"
	"repro/internal/trajectory"
	"repro/internal/uncertain"
	"repro/internal/updf"
)

// TestPipelineWorkloadToAnswers drives the full stack on one deterministic
// workload and cross-checks every layer against every other.
func TestPipelineWorkloadToAnswers(t *testing.T) {
	const (
		n    = 80
		r    = 0.5
		seed = 4242
	)
	store, err := repro.NewUniformStore(r)
	if err != nil {
		t.Fatal(err)
	}
	trs, err := repro.GenerateWorkload(repro.DefaultWorkload(seed), n)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.InsertAll(trs); err != nil {
		t.Fatal(err)
	}

	// Persistence round trip must preserve answers bit-for-bit.
	var buf bytes.Buffer
	if err := store.SaveBinary(&buf); err != nil {
		t.Fatal(err)
	}
	store2, err := mod.LoadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	q, err := store.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := repro.BuildIPACNN(store.All(), q, 0, 60, r, nil, repro.TreeConfig{MaxLevels: 2})
	if err != nil {
		t.Fatal(err)
	}
	q2, err := store2.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	tree2, err := repro.BuildIPACNN(store2.All(), q2, 0, 60, r, nil, repro.TreeConfig{MaxLevels: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tree.NodeCount() != tree2.NodeCount() || len(tree.KeptOIDs) != len(tree2.KeptOIDs) {
		t.Fatalf("persistence changed the tree: %d/%d nodes, %d/%d kept",
			tree.NodeCount(), tree2.NodeCount(), len(tree.KeptOIDs), len(tree2.KeptOIDs))
	}

	// The R-tree index finds every tree participant near the query's path.
	idx := store.BuildIndex(0)
	qBox := q.BoundingBox().Expand(10) // generous corridor
	found := map[int64]bool{}
	for _, id := range idx.SearchRange(qBox, 0, 60) {
		found[id] = true
	}
	for _, id := range tree.KeptOIDs {
		// Every unpruned object comes within 4r+eps of the query sometime,
		// so it must intersect a 10-mile corridor around the query's box.
		if !found[id] {
			t.Errorf("kept oid %d missed by index corridor", id)
		}
	}

	// Tree answers vs processor answers vs envelope.
	proc, err := repro.NewQueryProcessor(store.All(), q, 0, 60, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range []float64{0.5, 15, 30, 45, 59.5} {
		best := tree.AnswerAt(tm)
		// The envelope's answer is the true nearest expected location.
		bestDist := math.Inf(1)
		var bestOID int64
		for _, tr := range trs {
			if tr.OID == q.OID {
				continue
			}
			if d := tr.At(tm).Dist(q.At(tm)); d < bestDist {
				bestDist = d
				bestOID = tr.OID
			}
		}
		if best != bestOID {
			t.Errorf("t=%g: tree answer %d, oracle %d", tm, best, bestOID)
		}
		// Fixed-time possible set contains the answer.
		inSet := false
		for _, id := range proc.PossibleNNAt(tm) {
			if id == best {
				inSet = true
			}
		}
		if !inSet {
			t.Errorf("t=%g: answer %d missing from possible set", tm, best)
		}
	}

	// Instantaneous probabilities at t=30: Theorem-1 ranking vs Monte
	// Carlo with the exact uniform-convolution pdf.
	rng := rand.New(rand.NewSource(1))
	qPos := q.At(30)
	var cands []uncertain.Candidate
	for _, tr := range trs {
		if tr.OID == q.OID {
			continue
		}
		cands = append(cands, uncertain.Candidate{ID: tr.OID, Dist: tr.At(30).Dist(qPos)})
	}
	conv := updf.NewUniformConv(r, r)
	probs := uncertain.NNProbabilities(conv, uncertain.Prune(conv, cands), 512)
	mc, err := uncertain.MonteCarloNN(conv, uncertain.Prune(conv, cands), 100000, rng)
	if err != nil {
		t.Fatal(err)
	}
	for id, p := range probs {
		if math.Abs(mc[id]-p) > 0.02 {
			t.Errorf("id %d: MC %.4f vs analytic %.4f", id, mc[id], p)
		}
	}
	// The tree's t=30 answer has the top probability.
	top := tree.AnswerAt(30)
	for id, p := range probs {
		if id != top && p > probs[top]+1e-9 {
			t.Errorf("oid %d has probability %.4f above answer %d's %.4f", id, p, top, probs[top])
		}
	}
}

// TestPipelineOverTCP: the same answers through the network layer.
func TestPipelineOverTCP(t *testing.T) {
	store, err := repro.NewUniformStore(0.5)
	if err != nil {
		t.Fatal(err)
	}
	trs, err := repro.GenerateWorkload(repro.DefaultWorkload(5), 30)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.InsertAll(trs); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := modserver.NewServer(store)
	go srv.Serve(l)
	defer srv.Close()

	c, err := modserver.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const stmt = "SELECT T FROM MOD WHERE EXISTS Time IN [0, 60] AND ProbabilityNN(T, 1, Time) > 0"
	remote, err := c.UQL(stmt)
	if err != nil {
		t.Fatal(err)
	}
	local, err := repro.RunUQL(stmt, store)
	if err != nil {
		t.Fatal(err)
	}
	if len(remote.OIDs) != len(local.OIDs) {
		t.Fatalf("remote %v vs local %v", remote.OIDs, local.OIDs)
	}
	for i := range local.OIDs {
		if remote.OIDs[i] != local.OIDs[i] {
			t.Fatalf("divergence at %d", i)
		}
	}
}

// TestSimplificationPreservesAnswers: simplifying trajectories within a
// tolerance well below the uncertainty radius must not change the
// possible-NN sets.
func TestSimplificationPreservesAnswers(t *testing.T) {
	const r = 1.0
	trs, err := repro.GenerateWorkload(repro.DefaultWorkload(9), 40)
	if err != nil {
		t.Fatal(err)
	}
	// Resample to many vertices then simplify aggressively (but well under
	// the 4r zone scale).
	simplified := make([]*trajectory.Trajectory, len(trs))
	for i, tr := range trs {
		dense, err := trajectory.Resample(tr, 61)
		if err != nil {
			t.Fatal(err)
		}
		simplified[i] = trajectory.Simplify(dense, 1e-6)
		if dev := trajectory.SyncDeviation(dense, simplified[i]); dev > 1e-6 {
			t.Fatalf("oid %d: deviation %g", tr.OID, dev)
		}
	}
	p1, err := repro.NewQueryProcessor(trs, trs[0], 0, 60, r)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := repro.NewQueryProcessor(simplified, simplified[0], 0, 60, r)
	if err != nil {
		t.Fatal(err)
	}
	a, b := p1.UQ31(), p2.UQ31()
	if len(a) != len(b) {
		t.Fatalf("UQ31 changed: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("UQ31 divergence at %d", i)
		}
	}
}

// TestTPRAgainstTrajectories: the TPR index over single-segment motion
// returns the same instantaneous kNN as direct trajectory evaluation.
func TestTPRAgainstTrajectories(t *testing.T) {
	trs, err := repro.GenerateWorkload(repro.SingleSegmentWorkload(33), 150)
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]sindex.MovingEntry, len(trs))
	for i, tr := range trs {
		entries[i] = sindex.MovingEntry{
			ID: tr.OID,
			P:  tr.At(0),
			V:  tr.VelocityAt(0),
			T0: 0, T1: 60,
		}
	}
	tpr := sindex.NewTPRTree(entries, 0, 8)
	rng := rand.New(rand.NewSource(2))
	for q := 0; q < 15; q++ {
		tm := rng.Float64() * 60
		p := geom.Point{X: rng.Float64() * 40, Y: rng.Float64() * 40}
		got := tpr.KNNAt(p, tm, 3)
		// Oracle via trajectories.
		type dv struct {
			id int64
			d  float64
		}
		best := []dv{}
		for _, tr := range trs {
			best = append(best, dv{tr.OID, tr.At(tm).Dist(p)})
		}
		for i := 0; i < 3; i++ {
			for j := i + 1; j < len(best); j++ {
				if best[j].d < best[i].d {
					best[i], best[j] = best[j], best[i]
				}
			}
			if math.Abs(got[i].Dist-best[i].d) > 1e-9 {
				t.Fatalf("q=%d rank %d: %g vs %g", q, i, got[i].Dist, best[i].d)
			}
		}
	}
}

// TestGuaranteedVsThresholdConsistency: an object guaranteed to be the NN
// over an interval must have P^NN = 1 there.
func TestGuaranteedVsThresholdConsistency(t *testing.T) {
	// Construct a scene with a clear guarantee: near object at distance 2,
	// far object at 20, r = 0.5 (guarantee needs 2 + 2 <= 20 - ... holds).
	mk := func(oid int64, x float64) *trajectory.Trajectory {
		tr, err := trajectory.New(oid, []trajectory.Vertex{
			{X: x, Y: 0, T: 0}, {X: x, Y: 0, T: 60},
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	trs := []*trajectory.Trajectory{mk(100, 0), mk(1, 2), mk(2, 20)}
	proc, err := repro.NewQueryProcessor(trs, trs[0], 0, 60, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	g, err := proc.GuaranteedNNIntervals(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != 1 || g[0].T0 > 1e-9 || g[0].T1 < 60-1e-9 {
		t.Fatalf("guarantee = %v", g)
	}
	_, probs, err := proc.ProbabilitySeries(1, repro.ThresholdConfig{TimeSamples: 5, Grid: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range probs {
		if math.Abs(p-1) > 1e-6 {
			t.Errorf("sample %d: P = %g, want 1", i, p)
		}
	}
	_ = envelope.TimeInterval{} // keep import grouping stable
}
