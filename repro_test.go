//lint:file-ignore SA1019 facade tests keep covering the deprecated
// compatibility wrappers until they are removed.

package repro_test

import (
	"sort"
	"testing"

	"repro"
)

func seededStore(t *testing.T, n int) *repro.Store {
	t.Helper()
	store, err := repro.NewUniformStore(0.5)
	if err != nil {
		t.Fatal(err)
	}
	trs, err := repro.GenerateWorkload(repro.DefaultWorkload(1234), n)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.InsertAll(trs); err != nil {
		t.Fatal(err)
	}
	return store
}

// TestFacadeEndToEnd walks the whole public surface the README shows.
func TestFacadeEndToEnd(t *testing.T) {
	store := seededStore(t, 120)
	q, err := store.Get(1)
	if err != nil {
		t.Fatal(err)
	}

	tree, err := repro.BuildIPACNN(store.All(), q, 0, 60, store.Radius(), nil,
		repro.TreeConfig{MaxLevels: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tree.NodeCount() == 0 || tree.Depth() < 1 {
		t.Fatalf("tree: %d nodes depth %d", tree.NodeCount(), tree.Depth())
	}
	if got := tree.AnswerAt(30); got == 0 || got == q.OID {
		t.Fatalf("AnswerAt = %d", got)
	}
	ranked := tree.RankedAt(30, 3)
	if len(ranked) == 0 || ranked[0] != tree.AnswerAt(30) {
		t.Fatalf("RankedAt = %v vs AnswerAt = %d", ranked, tree.AnswerAt(30))
	}

	proc, err := repro.NewQueryProcessor(store.All(), q, 0, 60, store.Radius())
	if err != nil {
		t.Fatal(err)
	}
	uq31 := proc.UQ31()
	res, err := repro.RunUQL(
		"SELECT T FROM MOD WHERE EXISTS Time IN [0, 60] AND ProbabilityNN(T, 1, Time) > 0", store)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OIDs) != len(uq31) {
		t.Fatalf("UQL %d ids vs processor %d", len(res.OIDs), len(uq31))
	}
	for i := range uq31 {
		if res.OIDs[i] != uq31[i] {
			t.Fatalf("UQL/processor divergence at %d", i)
		}
	}
	// The tree's kept set equals UQ31.
	kept := append([]int64(nil), tree.KeptOIDs...)
	sort.Slice(kept, func(a, b int) bool { return kept[a] < kept[b] })
	if len(kept) != len(uq31) {
		t.Fatalf("tree kept %d vs UQ31 %d", len(kept), len(uq31))
	}
	for i := range kept {
		if kept[i] != uq31[i] {
			t.Fatalf("kept/UQ31 divergence at %d: %d vs %d", i, kept[i], uq31[i])
		}
	}
}

func TestFacadeProbabilityHelpers(t *testing.T) {
	u := repro.UniformDiskPDF(1)
	conv, err := repro.Convolve(u, u)
	if err != nil {
		t.Fatal(err)
	}
	if conv.Support() != 2 {
		t.Fatalf("convolved support = %g", conv.Support())
	}
	cands := []repro.Candidate{{ID: 1, Dist: 2}, {ID: 2, Dist: 3}, {ID: 3, Dist: 30}}
	probs := repro.NNProbabilities(u, cands)
	if !(probs[1] > probs[2] && probs[2] >= 0 && probs[3] == 0) {
		t.Fatalf("probs = %v", probs)
	}
	up, err := repro.UncertainQueryNN(u, u, cands)
	if err != nil {
		t.Fatal(err)
	}
	if !(up[1] > up[2]) {
		t.Fatalf("uncertain-query probs = %v", up)
	}
	// Other pdf constructors.
	if g := repro.BoundedGaussianPDF(1, 0.4); g.Support() != 1 {
		t.Fatal("gaussian support")
	}
	if c := repro.ConePDF(2); c.Support() != 2 {
		t.Fatal("cone support")
	}
}

func TestFacadeTrajectoryConstruction(t *testing.T) {
	tr, err := repro.NewTrajectory(9, []repro.Vertex{{X: 0, Y: 0, T: 0}, {X: 1, Y: 1, T: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if tr.OID != 9 {
		t.Fatalf("oid = %d", tr.OID)
	}
	if _, err := repro.NewTrajectory(9, nil); err == nil {
		t.Fatal("invalid trajectory accepted")
	}
	// Store with explicit spec.
	st, err := repro.NewStore(repro.PDFSpec{Kind: repro.PDFBoundedGaussian, R: 1, Sigma: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if st.Radius() != 1 {
		t.Fatalf("radius = %g", st.Radius())
	}
	if _, err := repro.NewStore(repro.PDFSpec{Kind: "bogus", R: 1}); err == nil {
		t.Fatal("bogus spec accepted")
	}
}

func TestFacadeWorkloadConfigs(t *testing.T) {
	single, err := repro.GenerateWorkload(repro.SingleSegmentWorkload(3), 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range single {
		if tr.NumSegments() != 1 {
			t.Fatalf("segments = %d", tr.NumSegments())
		}
	}
}

// TestFacadeBatchEngine exercises the engine exports: a typed batch, the
// UQL script form, and agreement with the serial processor.
func TestFacadeBatchEngine(t *testing.T) {
	store := seededStore(t, 80)
	eng := repro.NewEngine(0)

	res, err := eng.ExecBatch(store, repro.BatchRequest{
		QueryOID: 1, Tb: 0, Te: 60,
		Queries: []repro.BatchQuery{
			{Kind: repro.KindUQ31},
			{Kind: repro.KindUQ41, K: 2},
			{Kind: repro.KindUQ13, OID: 2, X: 0.1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 3 {
		t.Fatalf("items = %d", len(res.Items))
	}
	for i, it := range res.Items {
		if it.Err != nil {
			t.Fatalf("item %d: %v", i, it.Err)
		}
	}
	q, err := store.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := repro.NewQueryProcessor(store.All(), q, 0, 60, store.Radius())
	if err != nil {
		t.Fatal(err)
	}
	want := proc.UQ31()
	got := res.Items[0].OIDs
	if len(got) != len(want) {
		t.Fatalf("UQ31: engine %v != serial %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("UQ31: engine %v != serial %v", got, want)
		}
	}

	items := repro.RunUQLBatch([]string{
		"SELECT T FROM MOD WHERE EXISTS Time IN [0, 60] AND ProbabilityNN(T, 1, Time) > 0",
		"SELECT 2 FROM MOD WHERE FORALL Time IN [0, 60] AND ProbabilityNN(2, 1, Time) > 0",
	}, store, eng)
	if len(items) != 2 {
		t.Fatalf("uql items = %d", len(items))
	}
	if items[0].Err != nil || items[1].Err != nil {
		t.Fatalf("uql errors: %v, %v", items[0].Err, items[1].Err)
	}
	if items[0].Result.IsBool || !items[1].Result.IsBool {
		t.Fatalf("result shapes: %+v", items)
	}
}
