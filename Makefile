# CI and humans invoke the same targets: the ci.yml workflow is exactly
# `make fmt vet build test race bench-smoke`.

GO ?= go

.PHONY: all build test race bench bench-smoke bench-prune fmt vet clean

all: fmt vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark run (minutes on a laptop), plus the pruning artifact.
bench: bench-prune
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# Index-accelerated pruning experiment: indexed vs full-scan UQ31 latency
# and candidate-survivor counts, emitted as the BENCH_prune.json artifact
# (uploaded by CI on every push).
bench-prune:
	$(GO) run ./cmd/figures -fig prune -prune-json BENCH_prune.json

# One-iteration smoke: every benchmark compiles and executes.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Fails (with the offending file list) when any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
