# CI and humans invoke the same targets: the ci.yml workflow is exactly
# `make fmt vet staticcheck build race bench-smoke bench-prune bench-api
# bench-shard bench-live cover`.

GO ?= go

.PHONY: all build test race bench bench-smoke bench-prune bench-api bench-shard bench-live cover fmt vet staticcheck clean

all: fmt vet staticcheck build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark run (minutes on a laptop), plus the pruning, shard, and
# live-serving artifacts.
bench: bench-prune bench-shard bench-live
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# Index-accelerated pruning experiment: indexed vs full-scan UQ31 latency
# and candidate-survivor counts, emitted as the BENCH_prune.json artifact
# (uploaded by CI on every push).
bench-prune:
	$(GO) run ./cmd/figures -fig prune -prune-json BENCH_prune.json

# One-iteration smoke: every benchmark compiles and executes.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Unified-API overhead gate: Engine.Do must stay within 5% of the direct
# queries.Processor call on UQ31 at N=1000 (and answer identically).
bench-api:
	$(GO) run ./cmd/figures -fig api

# Shard-scaling experiment: the cluster Router over 1/2/4/8 local shards
# vs the single-store engine on a mixed NN-family batch, emitted as the
# BENCH_shard.json artifact. Fails unless every row is equal=true (the
# distributed-correctness gate, like bench-prune's).
bench-shard:
	$(GO) run ./cmd/figures -fig shard -shard-json BENCH_shard.json

# Live-serving experiment: the continuous-query hub's dirty-set
# re-evaluation vs naively re-running every standing subscription after
# each ingest batch, emitted as BENCH_live.json. Fails unless every row
# is equal=true AND the hub beats the naive baseline.
bench-live:
	$(GO) run ./cmd/figures -fig live -live-json BENCH_live.json

# Per-package coverage floors for the subsystems whose correctness
# arguments live in their tests (dirty-set soundness, prune
# conservativeness, the distributed bound exchange). Writes COVERAGE.txt
# and fails below 80%.
COVER_PKGS = ./internal/continuous ./internal/prune ./internal/cluster
cover:
	@set -e; rm -f COVERAGE.txt; \
	for pkg in $(COVER_PKGS); do \
		$(GO) test -coverprofile=cover.out.tmp $$pkg >/dev/null; \
		pct=$$($(GO) tool cover -func=cover.out.tmp | awk '/^total:/ {gsub(/%/,"",$$3); print $$3}'); \
		echo "$$pkg $$pct%" | tee -a COVERAGE.txt; \
		awk -v p="$$pct" 'BEGIN { exit (p+0 >= 80) ? 0 : 1 }' || { echo "coverage $$pct% < 80% in $$pkg"; rm -f cover.out.tmp; exit 1; }; \
	done; rm -f cover.out.tmp

# Static analysis. SA1019 flags in-repo uses of the deprecated pre-Request
# surface (NewQueryProcessor, Exec/ExecBatch, RunUQL, ...) so migrations
# stay honest. The binary is optional locally; CI installs it.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI installs and runs it)"; \
	fi

# Fails (with the offending file list) when any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
