# CI and humans invoke the same targets: the ci.yml workflow is exactly
# `make fmt vet staticcheck build race bench-smoke bench-prune bench-api
# bench-shard`.

GO ?= go

.PHONY: all build test race bench bench-smoke bench-prune bench-api bench-shard fmt vet staticcheck clean

all: fmt vet staticcheck build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark run (minutes on a laptop), plus the pruning and shard
# artifacts.
bench: bench-prune bench-shard
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# Index-accelerated pruning experiment: indexed vs full-scan UQ31 latency
# and candidate-survivor counts, emitted as the BENCH_prune.json artifact
# (uploaded by CI on every push).
bench-prune:
	$(GO) run ./cmd/figures -fig prune -prune-json BENCH_prune.json

# One-iteration smoke: every benchmark compiles and executes.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Unified-API overhead gate: Engine.Do must stay within 5% of the direct
# queries.Processor call on UQ31 at N=1000 (and answer identically).
bench-api:
	$(GO) run ./cmd/figures -fig api

# Shard-scaling experiment: the cluster Router over 1/2/4/8 local shards
# vs the single-store engine on a mixed NN-family batch, emitted as the
# BENCH_shard.json artifact. Fails unless every row is equal=true (the
# distributed-correctness gate, like bench-prune's).
bench-shard:
	$(GO) run ./cmd/figures -fig shard -shard-json BENCH_shard.json

# Static analysis. SA1019 flags in-repo uses of the deprecated pre-Request
# surface (NewQueryProcessor, Exec/ExecBatch, RunUQL, ...) so migrations
# stay honest. The binary is optional locally; CI installs it.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI installs and runs it)"; \
	fi

# Fails (with the offending file list) when any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
