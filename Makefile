# CI and humans invoke the same targets. The ci.yml workflow runs
# parallel jobs — lint (`make fmt vet staticcheck`), test (`make build
# race cover`), chaos (`make chaos`), serve (`make serve-smoke`, the
# Docker compose cluster), and bench (`make bench-smoke bench-api
# bench-prune bench-text bench-shard bench-live` plus a `figures -fig
# summary` step table) — and the nightly workflow adds `make
# bench-shard-large bench` with the MIN_SHARD_SPEEDUP=2.0 gate plus
# `make bench-city` (the N=100000 churn harness) gated against the
# committed BENCH_city.json baseline.

GO ?= go

# Absolute speedup floor for the shard sweeps (passed to figures as
# -min-speedup). Off by default: a laptop or a single-core runner cannot
# promise parallel speedup. The nightly large-N run sets 2.0 — the
# distributed refine must make 4 shards at least twice as fast as the
# single engine at scale. PR CI instead gates relatively, against the
# committed BENCH_shard.json baseline minus a tolerance.
MIN_SHARD_SPEEDUP ?= 0

.PHONY: all build test race bench bench-smoke bench-prune bench-text bench-api bench-shard bench-shard-large bench-live bench-city cover fmt vet staticcheck chaos chaos-soak serve-smoke clean

all: fmt vet staticcheck build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The cluster suite includes deliberate fault-injection sleeps and the
# race detector runs 3-4x slower on small runners, so give the suite
# explicit headroom over go test's default 10m per-package timeout.
race:
	$(GO) test -race -timeout 20m ./...

# Full benchmark run (minutes on a laptop), plus the pruning, text,
# shard, and live-serving artifacts.
bench: bench-prune bench-text bench-shard bench-live
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# Index-accelerated pruning experiment: indexed vs full-scan UQ31 latency
# and candidate-survivor counts, emitted as the BENCH_prune.json artifact
# (uploaded by CI on every push).
bench-prune:
	$(GO) run ./cmd/figures -fig prune -prune-json BENCH_prune.json

# Spatio-textual experiment: filtered UQ31 through the hybrid
# keyword/R-tree index vs the naive filter-then-refine baseline, emitted
# as BENCH_text.json. Fails unless every row is equal=true (the sub-MOD
# correctness gate) and the hybrid path wins at the largest N
# (-text-min-speedup defaults to 1).
bench-text:
	$(GO) run ./cmd/figures -fig text -text-json BENCH_text.json

# One-iteration smoke: every benchmark compiles and executes.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Unified-API overhead gate: Engine.Do must stay within 5% of the direct
# queries.Processor call on UQ31 at N=1000 (and answer identically).
bench-api:
	$(GO) run ./cmd/figures -fig api

# Shard-scaling experiment: the cluster Router over 1/2/4/8 local shards
# vs the single-store engine on a mixed NN-family batch, emitted as the
# BENCH_shard.json artifact. Fails unless every row is equal=true (the
# distributed-correctness gate, like bench-prune's) and the best
# multi-shard speedup clears MIN_SHARD_SPEEDUP (when set).
# SHARD_BASELINE (a committed BENCH_shard.json path) arms the relative
# regression gate: the fresh best multi-shard speedup must stay within
# the tolerance of the baseline's. CI passes SHARD_BASELINE=BENCH_shard.json.
SHARD_BASELINE ?=
bench-shard:
	$(GO) run ./cmd/figures -fig shard -shard-json BENCH_shard.json -min-speedup $(MIN_SHARD_SPEEDUP) $(if $(SHARD_BASELINE),-shard-baseline $(SHARD_BASELINE))

# The same sweep at the large population (N=50000, nightly CI): with real
# survivor sets to split, the distributed refine is where sharding pays.
# Writes the separate BENCH_shard_large.json artifact so the fast PR
# baseline stays untouched.
bench-shard-large:
	$(GO) run ./cmd/figures -fig shard -large -shard-json BENCH_shard_large.json -min-speedup $(MIN_SHARD_SPEEDUP)

# Live-serving experiment: the continuous-query hub's dirty-set
# re-evaluation vs naively re-running every standing subscription after
# each ingest batch, emitted as BENCH_live.json. Fails unless every row
# is equal=true AND the hub beats the naive baseline.
bench-live:
	$(GO) run ./cmd/figures -fig live -live-json BENCH_live.json

# City-scale churn harness (nightly CI): Poisson arrivals of updates,
# queries, and subscribe/unsubscribe churn with TTL-style retirement at
# N=100000 over the single hub and a 4-shard router, emitted as
# BENCH_city.json. Fails unless every spot check is byte-identical to a
# fresh snapshot re-query. CITY_BASELINE (the committed BENCH_city.json)
# arms the regression gates — a sustained-updates/s floor and a query-p99
# ceiling read before the fresh run overwrites the artifact. Nightly CI
# passes CITY_BASELINE=BENCH_city.json.
CITY_BASELINE ?=
bench-city:
	$(GO) run ./cmd/figures -fig city -city-json BENCH_city.json $(if $(CITY_BASELINE),-city-baseline $(CITY_BASELINE))

# Per-package coverage floors for the subsystems whose correctness
# arguments live in their tests (dirty-set soundness, prune
# conservativeness, the distributed bound exchange, the gateway's
# protocol/auth/SSE surface and its metric exposition, and the hybrid
# keyword index's predicate/posting algebra). Writes COVERAGE.txt and
# fails below 80%.
COVER_PKGS = ./internal/continuous ./internal/prune ./internal/cluster ./internal/gateway ./internal/metrics ./internal/textidx
cover:
	@set -e; rm -f COVERAGE.txt; \
	for pkg in $(COVER_PKGS); do \
		$(GO) test -coverprofile=cover.out.tmp $$pkg >/dev/null; \
		pct=$$($(GO) tool cover -func=cover.out.tmp | awk '/^total:/ {gsub(/%/,"",$$3); print $$3}'); \
		echo "$$pkg $$pct%" | tee -a COVERAGE.txt; \
		awk -v p="$$pct" 'BEGIN { exit (p+0 >= 80) ? 0 : 1 }' || { echo "coverage $$pct% < 80% in $$pkg"; rm -f cover.out.tmp; exit 1; }; \
	done; rm -f cover.out.tmp

# Chaos gate (the CI `chaos` job): the seeded fault-injection matrix on
# the cluster serving layer (drop/delay/dial-error/partition on one shard
# of four — every query must succeed exactly via retry or answer degraded
# with missing-shard provenance), the kill-at-every-step WAL crash/restart
# simtest (recovery byte-identical to the mirror on every topology), and
# the wal/faultinject unit suites. All under the race detector.
chaos:
	$(GO) test -race -run 'TestFaultMatrixRetryOrDegraded|TestPartitionedShardDegradedAnswer|TestStrictRouterShardUnavailable|TestDialRefusedTyped|TestRetryRecoversFlakyDial|TestCancelMidRetry|TestDegradedAllShardsDownFails' ./internal/cluster
	$(GO) test -race -run 'TestCrashRecoveryByteIdentity' ./internal/simtest
	$(GO) test -race ./internal/wal ./internal/faultinject

# Nightly chaos soak: longer seeded worlds with fsync-per-append
# journaling and recovery at every step, plus a multi-seed fault-plan
# sweep on the degraded cluster. Reports and the final WAL directories
# land in CHAOS_DIR (uploaded as the nightly chaos artifact).
CHAOS_DIR ?= chaos-artifacts
chaos-soak:
	CHAOS_SOAK=1 CHAOS_DIR=$(abspath $(CHAOS_DIR)) $(GO) test -race -timeout 45m -run 'TestChaosSoak' -v ./internal/simtest ./internal/cluster

# Production-serving smoke (the CI `serve` job): build the Docker image,
# stand up the 2-shard TLS compose cluster behind the gateway, and drive
# the full loop from outside — authenticated TLS query, SSE subscribe,
# live ingest producing a diff event, 401 without a token, non-zero
# /metrics. Needs docker compose.
serve-smoke:
	./scripts/compose-smoke.sh

# Static analysis. SA1019 flags in-repo uses of the deprecated pre-Request
# surface (NewQueryProcessor, Exec/ExecBatch, RunUQL, ...) so migrations
# stay honest. The binary is optional locally; CI installs it.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI installs and runs it)"; \
	fi

# Fails (with the offending file list) when any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
