// Fleetwatch: the commercial-fleet scenario of the paper's Section 2.1
// (FedEx/UPS-style full-trajectory motion plans). Dispatch plans trips
// through waypoints server-side, then continuously monitors which vans can
// be the closest backup to a priority vehicle — with GPS uncertainty taken
// into account — and inspects the probability descriptors of the top
// candidates.
//
// With -shards N the same dashboard refresh also runs through a sharded
// cluster router (N in-process hash-partitioned shards): answers must be
// identical to the single engine — the tag-filtered row included, since
// shard splits carry tag sets — the two-phase NN bound exchange keeps
// the global envelope semantics — and the merged Explain shows which
// shard contributed which survivors.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/geom"
	"repro/internal/mod"
)

func main() {
	shards := flag.Int("shards", 3, "also run the dashboard batch through a cluster of this many local shards (0 disables)")
	flag.Parse()
	// Fleet-wide uncertainty: every van's reported position is within
	// 0.25 miles of its true one, uniformly distributed.
	store, err := repro.NewUniformStore(0.25)
	if err != nil {
		log.Fatal(err)
	}

	// Dispatch plans trips at a constant cruise speed of 0.5 mi/min
	// (30 mph): the server-side shortest-travel-time construction of
	// Section 2.1.
	routes := [][]geom.Point{
		{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 10}, {X: 20, Y: 10}}, // van 1 (priority)
		{{X: 2, Y: 1}, {X: 12, Y: 1}, {X: 12, Y: 12}},                 // van 2 shadows van 1
		{{X: 0, Y: 20}, {X: 10, Y: 12}, {X: 18, Y: 12}},               // van 3 converges late
		{{X: 30, Y: 30}, {X: 38, Y: 38}},                              // van 4 far away
		{{X: 5, Y: -8}, {X: 12, Y: -2}, {X: 14, Y: 8}},                // van 5 approaches mid-shift
	}
	for i, wps := range routes {
		tr, err := mod.PlanTrip(int64(i+1), wps, 0, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		if err := store.Insert(tr); err != nil {
			log.Fatal(err)
		}
	}

	// The trips end at different times; monitor the window they all cover.
	tb, te := 0.0, shortestSpan(store)
	fmt.Printf("monitoring window: [%g, %.2f] minutes\n\n", tb, te)

	q, err := store.Get(1)
	if err != nil {
		log.Fatal(err)
	}
	tree, err := repro.BuildIPACNN(store.All(), q, tb, te, store.Radius(), nil,
		repro.TreeConfig{MaxLevels: 2, Descriptors: true, DescriptorSamples: 3})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("closest-backup schedule for van 1 (with NN-probability bounds):")
	for _, n := range tree.NodesAtLevel(1) {
		fmt.Printf("  [%6.2f, %6.2f] van %d  P(NN) ∈ [%.2f, %.2f]\n",
			n.T0, n.T1, n.ID, n.Descriptor.MinProb, n.Descriptor.MaxProb)
		for _, c := range n.Children {
			fmt.Printf("      runner-up [%6.2f, %6.2f] van %d  P(NN) ∈ [%.2f, %.2f]\n",
				c.T0, c.T1, c.ID, c.Descriptor.MinProb, c.Descriptor.MaxProb)
		}
	}
	if len(tree.PrunedOIDs) > 0 {
		fmt.Printf("\nvans that can never be the closest backup: %v\n", tree.PrunedOIDs)
	}

	// Vans carry attribute tags: 2, 3 and 5 are certified to take over a
	// priority route; van 3 alone is refrigerated. The dashboard's
	// spatio-textual row answers over the certified sub-fleet only.
	for oid, tags := range map[int64][]string{
		2: {"certified"}, 3: {"certified", "refrigerated"}, 5: {"certified"},
	} {
		if err := store.SetTags(oid, tags); err != nil {
			log.Fatal(err)
		}
	}

	// Dispatch's dashboard refreshes several views of the same window at
	// once — which vans could ever be closest (UQ31), which at least a
	// quarter of the shift (UQ33), which can rank top-2 throughout
	// (UQ42), and which *certified* vans could ever be closest (the
	// spatio-textual row). Run them as one batch through the unified API: the envelope
	// preprocessing is paid once, the per-van checks run in parallel, and
	// the dashboard's refresh deadline rides in on the context.
	eng := repro.NewEngine(0)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	certified := &repro.Predicate{All: []string{"certified"}}
	dashboard := []repro.Request{
		{Kind: repro.KindUQ31, QueryOID: q.OID, Tb: tb, Te: te},
		{Kind: repro.KindUQ33, QueryOID: q.OID, Tb: tb, Te: te, X: 0.25},
		{Kind: repro.KindUQ42, QueryOID: q.OID, Tb: tb, Te: te, K: 2},
		{Kind: repro.KindUQ31, QueryOID: q.OID, Tb: tb, Te: te, Where: certified},
	}
	results, err := eng.DoBatch(ctx, store, dashboard)
	if err != nil {
		log.Fatal(err)
	}
	labels := []string{
		"vans ever possibly-closest",
		"vans possibly-closest >= 25% of the shift",
		"vans possibly top-2 for the whole shift",
		"certified vans ever possibly-closest",
	}
	for i, label := range labels {
		if results[i].Err != nil {
			log.Fatal(results[i].Err)
		}
		fmt.Printf("\n%s: %v  (evaluated in %v)\n", label, results[i].OIDs,
			results[i].Explain.Wall.Round(time.Microsecond))
	}

	if *shards > 1 {
		// The same refresh, served by a sharded cluster: the store splits
		// into hash partitions, NN retrievals run the two-phase bound
		// exchange, and the router's central refinement returns answers
		// identical to the single engine above.
		router, err := repro.NewCluster(store, *shards, repro.ClusterOptions{})
		if err != nil {
			log.Fatal(err)
		}
		routed, err := router.DoBatch(ctx, dashboard)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n-- same dashboard via %d shards --\n", *shards)
		for i, label := range labels {
			if routed[i].Err != nil {
				log.Fatal(routed[i].Err)
			}
			match := "IDENTICAL"
			if fmt.Sprint(routed[i].OIDs) != fmt.Sprint(results[i].OIDs) {
				match = "DIVERGED (bug!)"
			}
			fmt.Printf("%s: %v  [%s]\n", label, routed[i].OIDs, match)
		}
		ex := routed[0].Explain
		fmt.Printf("merged explain: %d shards, per-shard (candidates→survivors):", ex.Shards)
		for si, se := range ex.ShardExplains {
			fmt.Printf(" s%d:%d→%d", si, se.Candidates, se.Survivors)
		}
		fmt.Println()
	}
}

// shortestSpan returns the earliest trip end so the query window is
// covered by every trajectory.
func shortestSpan(store *repro.Store) float64 {
	te := -1.0
	for _, tr := range store.All() {
		_, e := tr.TimeSpan()
		if te < 0 || e < te {
			te = e
		}
	}
	return te
}
