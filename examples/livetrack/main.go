// Livetrack drives a simulated fleet through live plan revisions against
// two serving topologies at once — a single-store engine hub and a
// 4-shard local cluster hub — with identical standing subscriptions on
// both, and prints the two event streams side by side. The point of the
// demo: the streams are byte-identical (the cluster merges cross-shard
// subscription diffs through the same bound exchange the query path
// uses), so scaling out the MOD does not change a single standing
// answer.
//
//	go run ./examples/livetrack
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"reflect"

	"repro"
)

const (
	fleet = 300
	seed  = 2009
	span  = 60.0
	steps = 5
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "livetrack:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()

	build := func() (*repro.Store, error) {
		store, err := repro.NewUniformStore(0.5)
		if err != nil {
			return nil, err
		}
		trs, err := repro.GenerateWorkload(repro.DefaultWorkload(seed), fleet)
		if err != nil {
			return nil, err
		}
		return store, store.InsertAll(trs)
	}

	single, err := build()
	if err != nil {
		return err
	}
	singleHub := repro.NewLiveHub(single, repro.NewEngine(0))

	shardStore, err := build()
	if err != nil {
		return err
	}
	router, err := repro.NewCluster(shardStore, 4, repro.ClusterOptions{})
	if err != nil {
		return err
	}
	clusterHub := repro.NewClusterHub(router)

	subs := []repro.Request{
		{Kind: repro.KindUQ31, QueryOID: 1, Tb: 0, Te: span},
		{Kind: repro.KindUQ41, QueryOID: 7, Tb: 0, Te: span, K: 2},
		{Kind: repro.KindUQ11, QueryOID: 1, Tb: 0, Te: span, OID: 13},
		{Kind: repro.KindUQ33, QueryOID: 21, Tb: 10, Te: 40, X: 0.25},
	}
	type pair struct{ single, cluster int64 }
	ids := make([]pair, len(subs))
	for i, req := range subs {
		sid, sres, err := singleHub.Subscribe(ctx, req)
		if err != nil {
			return fmt.Errorf("single subscribe %v: %w", req.Kind, err)
		}
		cid, cres, err := clusterHub.Subscribe(ctx, req)
		if err != nil {
			return fmt.Errorf("cluster subscribe %v: %w", req.Kind, err)
		}
		ids[i] = pair{sid, cid}
		fmt.Printf("sub %d (%s q=%d [%g,%g]): initial %s\n",
			i, req.Kind, req.QueryOID, req.Tb, req.Te, answer(sres))
		if answer(sres) != answer(cres) {
			return fmt.Errorf("initial answers diverge: %s vs %s", answer(sres), answer(cres))
		}
	}

	// Scripted revisions: every step steers a band of the fleet toward
	// query object 1's path, guaranteeing visible churn in the standing
	// answers.
	q1, err := single.Get(1)
	if err != nil {
		return err
	}
	for step := 1; step <= steps; step++ {
		now := 10.0 * float64(step)
		var batch []repro.Update
		for k := 0; k < 6; k++ {
			oid := int64(30 + step*6 + k)
			tr, err := single.Get(oid)
			if err != nil {
				return err
			}
			pos := tr.At(now)
			target := q1.At(span)
			batch = append(batch, repro.Update{OID: oid, Verts: []repro.Vertex{
				{X: pos.X, Y: pos.Y, T: now},
				{X: (pos.X + target.X) / 2, Y: (pos.Y + target.Y) / 2, T: (now + span) / 2},
				{X: target.X, Y: target.Y, T: span},
			}})
		}
		_, sev, err := singleHub.Ingest(ctx, batch)
		if err != nil {
			return fmt.Errorf("single ingest: %w", err)
		}
		_, cev, err := clusterHub.Ingest(ctx, batch)
		if err != nil {
			return fmt.Errorf("cluster ingest: %w", err)
		}
		fmt.Printf("\nstep %d (t=%g, %d updates): %d events\n", step, now, len(batch), len(sev))
		if len(sev) != len(cev) {
			return fmt.Errorf("event counts diverge: single %d, cluster %d", len(sev), len(cev))
		}
		for i := range sev {
			s, c := sev[i], cev[i]
			if s.Seq != c.Seq || s.Kind != c.Kind || s.Bool != c.Bool ||
				!reflect.DeepEqual(s.Added, c.Added) || !reflect.DeepEqual(s.Removed, c.Removed) ||
				!reflect.DeepEqual(s.OIDs, c.OIDs) {
				return fmt.Errorf("event %d diverges:\n  single  %s\n  cluster %s", i, eventLine(s), eventLine(c))
			}
			fmt.Printf("  %s   (identical on 1 engine and 4 shards)\n", eventLine(s))
		}
	}

	sStats, cStats := singleHub.Stats(), clusterHub.Stats()
	fmt.Printf("\nsingle hub:  %d updates, %d re-evaluations, %d dirty-set skips\n",
		sStats.Ingested, sStats.Evals, sStats.Skips)
	fmt.Printf("cluster hub: %d updates, %d re-evaluations, %d dirty-set skips\n",
		cStats.Ingested, cStats.Evals, cStats.Skips)

	// Final answers still match a fresh engine on the single store.
	for i, req := range subs {
		live, err := singleHub.Answer(ids[i].single)
		if err != nil {
			return err
		}
		fresh, err := repro.NewEngine(0).Do(ctx, single, req)
		if err != nil {
			return err
		}
		if answer(live) != answer(fresh) {
			return fmt.Errorf("sub %d stale: %s vs %s", i, answer(live), answer(fresh))
		}
	}
	fmt.Println("all standing answers verified against fresh evaluation ✓")
	return nil
}

func answer(r repro.Result) string {
	if r.IsBool {
		return fmt.Sprintf("%v", r.Bool)
	}
	b, _ := json.Marshal(r.OIDs)
	return string(b)
}

func eventLine(e repro.LiveEvent) string {
	if e.IsBool {
		return fmt.Sprintf("%s seq=%d -> %v", e.Kind, e.Seq, e.Bool)
	}
	return fmt.Sprintf("%s seq=%d +%v -%v -> %v", e.Kind, e.Seq, e.Added, e.Removed, e.OIDs)
}
