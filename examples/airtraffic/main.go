// Airtraffic: separation monitoring with filed flight plans. Aircraft fly
// piecewise-linear routes (full-trajectory motion plans) with radar
// uncertainty; the monitor uses the instantaneous probability machinery of
// Sections 2.2/3.1 directly — within-distance probabilities, the
// convolution reduction for two uncertain positions, and a Monte-Carlo-free
// exact ranking — alongside the continuous IPAC-NN view.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/uncertain"
	"repro/internal/updf"
)

func main() {
	// Radar uncertainty: positions known to within 1 unit, uniformly.
	const r = 1.0
	store, err := repro.NewUniformStore(r)
	if err != nil {
		log.Fatal(err)
	}

	// Filed plans (distance units are nautical-mile-scale grid units,
	// times in minutes).
	plans := []struct {
		oid   int64
		verts []repro.Vertex
	}{
		{1, []repro.Vertex{{X: 0, Y: 0, T: 0}, {X: 60, Y: 0, T: 30}}},    // subject flight
		{2, []repro.Vertex{{X: 10, Y: 12, T: 0}, {X: 50, Y: 2, T: 30}}},  // converging
		{3, []repro.Vertex{{X: 60, Y: 8, T: 0}, {X: 0, Y: 6, T: 30}}},    // opposite direction
		{4, []repro.Vertex{{X: 30, Y: 40, T: 0}, {X: 35, Y: 38, T: 30}}}, // distant loiter
	}
	for _, p := range plans {
		tr, err := repro.NewTrajectory(p.oid, p.verts)
		if err != nil {
			log.Fatal(err)
		}
		if err := store.Insert(tr); err != nil {
			log.Fatal(err)
		}
	}

	q, err := store.Get(1)
	if err != nil {
		log.Fatal(err)
	}

	// Continuous view: which aircraft can be flight 1's nearest neighbor,
	// and when? The engine's processor gives interval-level access on top
	// of the unified Request route.
	proc, err := repro.NewEngine(0).Processor(store, q.OID, 0, 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("possible nearest aircraft to flight 1 over [0, 30] min:")
	for _, oid := range proc.UQ31() {
		ivs, err := proc.PossibleNNIntervals(oid)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  flight %d during %v\n", oid, ivs)
	}

	// Instantaneous probabilistic picture at the closest approach: both
	// positions are uncertain, so the within-distance law is governed by
	// the convolved pdf (Section 3.1). The exact uniform◦uniform
	// convolution has support 2r.
	const tClosest = 15.0
	qPos := q.At(tClosest)
	var cands []uncertain.Candidate
	for _, tr := range store.All() {
		if tr.OID == q.OID {
			continue
		}
		cands = append(cands, uncertain.Candidate{ID: tr.OID, Dist: tr.At(tClosest).Dist(qPos)})
	}
	conv := updf.NewUniformConv(r, r)
	probs := uncertain.NNProbabilities(conv, cands, 1024)
	fmt.Printf("\nP(nearest | t = %g):\n", tClosest)
	for _, c := range uncertain.RankByDistance(cands) {
		fmt.Printf("  flight %d at distance %6.2f → %.4f\n", c.ID, c.Dist, probs[c.ID])
	}

	// Proximity alert: probability that flight 2 is within 5 units of
	// flight 1 at closest approach (Eq. 3 against the convolved pdf).
	d2 := cands[0].Dist
	for _, c := range cands {
		if c.ID == 2 {
			d2 = c.Dist
		}
	}
	pWithin := uncertain.WithinDistanceProb(conv, d2, 5)
	fmt.Printf("\nP(flight 2 within 5 units of flight 1 at t=%g) = %.4f\n", tClosest, pWithin)

	// And the full interval tree for the record.
	tree, err := repro.BuildIPACNN(store.All(), q, 0, 30, r, nil, repro.TreeConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nIPAC-NN: %d nodes, depth %d, pruned flights %v\n",
		tree.NodeCount(), tree.Depth(), tree.PrunedOIDs)
}
