// Httptrack is livetrack over the production HTTP gateway: the same
// simulated fleet and standing subscription served two ways at once — a
// TCP modserver with the line protocol, and the HTTP gateway with an SSE
// subscription — while scripted plan revisions flow into both worlds.
// The demo prints the two event streams side by side, severs the SSE
// connection mid-run, keeps ingesting, and resumes the stream with
// from_seq on the replay backlog; every event (including the replayed
// tail) must be byte-identical across transports.
//
//	go run ./examples/httptrack
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro"
)

const (
	fleet = 120
	seed  = 2009
	span  = 60.0
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "httptrack:", err)
		os.Exit(1)
	}
}

func run() error {
	build := func() (*repro.Store, error) {
		store, err := repro.NewUniformStore(0.5)
		if err != nil {
			return nil, err
		}
		trs, err := repro.GenerateWorkload(repro.DefaultWorkload(seed), fleet)
		if err != nil {
			return nil, err
		}
		return store, store.InsertAll(trs)
	}

	// World T: a TCP modserver with the line protocol.
	storeT, err := build()
	if err != nil {
		return err
	}
	lt, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	tcpSrv := repro.NewModServer(storeT, repro.NewEngine(0), repro.ModServerOptions{})
	go tcpSrv.Serve(lt)
	defer tcpSrv.Close()
	tcp, err := repro.DialModServer(lt.Addr().String(), repro.ModDialOptions{})
	if err != nil {
		return err
	}
	defer tcp.Close()

	// World H: an identical store behind the HTTP gateway. The hub stays
	// in scope as the oracle telling us how many events each step emits.
	storeH, err := build()
	if err != nil {
		return err
	}
	engH := repro.NewEngine(0)
	hub := repro.NewLiveHub(storeH, engH)
	gw, err := repro.NewGateway(repro.GatewayOptions{
		Backend: repro.EngineGatewayBackend{Eng: engH, Store: storeH},
		Hub:     hub,
	})
	if err != nil {
		return err
	}
	lh, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go gw.Serve(lh)
	defer gw.Shutdown(context.Background())
	base := "http://" + lh.Addr().String()

	// One standing query on each transport.
	req := repro.Request{Kind: repro.KindUQ31, QueryOID: 1, Tb: 0, Te: span}
	_, resT, err := tcp.Subscribe(req)
	if err != nil {
		return err
	}
	sse, subID, resH, err := openSSE(base + "/v1/subscribe?kind=UQ31&query_oid=1&tb=0&te=60")
	if err != nil {
		return err
	}
	if a, b := canonicalResult(resT), canonicalResult(resH); a != b {
		return fmt.Errorf("initial answers diverge:\n  tcp  %s\n  http %s", a, b)
	}
	fmt.Printf("subscribed on both transports (%s q=%d): initial answer %s\n",
		req.Kind, req.QueryOID, canonicalResult(resT))

	// Scripted revisions: every step steers a band of the fleet toward
	// query object 1's path, guaranteeing churn in the standing answer.
	q1, err := storeT.Get(1)
	if err != nil {
		return err
	}
	step := func(n int) []repro.Update {
		now := 10.0 * float64(n)
		var batch []repro.Update
		for k := 0; k < 6; k++ {
			oid := int64(30 + n*6 + k)
			tr, err := storeT.Get(oid)
			if err != nil {
				continue
			}
			pos := tr.At(now)
			target := q1.At(span)
			batch = append(batch, repro.Update{OID: oid, Verts: []repro.Vertex{
				{X: pos.X, Y: pos.Y, T: now},
				{X: (pos.X + target.X) / 2, Y: (pos.Y + target.Y) / 2, T: (now + span) / 2},
				{X: target.X, Y: target.Y, T: span},
			}})
		}
		return batch
	}

	var lastSeq, oracleSeq uint64
	ingestBoth := func(n int) (emitted []repro.LiveEvent, err error) {
		batch := step(n)
		if _, err := tcp.Ingest(batch); err != nil {
			return nil, fmt.Errorf("tcp ingest: %w", err)
		}
		if err := httpIngest(base, batch); err != nil {
			return nil, fmt.Errorf("http ingest: %w", err)
		}
		// The in-process hub knows exactly which events this step emitted,
		// so neither stream read can block waiting for an event that never
		// comes.
		emitted, err = hub.Replay(subID, oracleSeq)
		if len(emitted) > 0 {
			oracleSeq = emitted[len(emitted)-1].Seq
		}
		return emitted, err
	}

	fmt.Println("\nphase 1: live on both transports")
	for n := 1; n <= 3; n++ {
		emitted, err := ingestBoth(n)
		if err != nil {
			return err
		}
		fmt.Printf("step %d: %d events\n", n, len(emitted))
		for range emitted {
			evT, err := tcp.NextEvent()
			if err != nil {
				return fmt.Errorf("tcp event: %w", err)
			}
			evH, err := sse.next()
			if err != nil {
				return fmt.Errorf("sse event: %w", err)
			}
			a, b := canonicalEvent(evT), canonicalEvent(evH)
			if a != b {
				return fmt.Errorf("streams diverge:\n  tcp  %s\n  http %s", a, b)
			}
			lastSeq = evH.Seq
			fmt.Printf("  seq=%d +%v -%v -> %v   (identical over TCP and SSE)\n",
				evH.Seq, evH.Added, evH.Removed, evH.OIDs)
		}
	}

	fmt.Println("\nphase 2: SSE connection drops; ingest continues")
	sse.close()
	var missed []repro.LiveEvent
	for n := 4; n <= 5; n++ {
		emitted, err := ingestBoth(n)
		if err != nil {
			return err
		}
		missed = append(missed, emitted...)
		fmt.Printf("step %d: %d events (TCP live, HTTP parked)\n", n, len(emitted))
	}

	fmt.Printf("\nphase 3: resume from seq %d replays the missed tail\n", lastSeq)
	resumed, err := resumeSSE(base, subID, lastSeq)
	if err != nil {
		return err
	}
	defer resumed.close()
	for _, want := range missed {
		evT, err := tcp.NextEvent()
		if err != nil {
			return fmt.Errorf("tcp event: %w", err)
		}
		evH, err := resumed.next()
		if err != nil {
			return fmt.Errorf("resumed sse event: %w", err)
		}
		a, b, c := canonicalEvent(evT), canonicalEvent(evH), canonicalEvent(want)
		if a != b || b != c {
			return fmt.Errorf("resumed stream diverges:\n  tcp    %s\n  http   %s\n  oracle %s", a, b, c)
		}
		lastSeq = evH.Seq
		fmt.Printf("  seq=%d +%v -%v -> %v   (replayed == TCP live)\n",
			evH.Seq, evH.Added, evH.Removed, evH.OIDs)
	}

	stats := hub.Stats()
	fmt.Printf("\nhub: %d updates, %d re-evaluations, %d dirty-set skips\n",
		stats.Ingested, stats.Evals, stats.Skips)
	fmt.Println("every event byte-identical across TCP and HTTP/SSE, through a dropped connection ✓")
	return nil
}

// httpIngest posts a batch to /v1/ingest in the gateway's wire shape
// (vertices as [x, y, t] triplets).
func httpIngest(base string, batch []repro.Update) error {
	type wireUpdate struct {
		OID   int64        `json:"oid"`
		Verts [][3]float64 `json:"verts"`
	}
	wire := struct {
		Updates []wireUpdate `json:"updates"`
	}{}
	for _, u := range batch {
		w := wireUpdate{OID: u.OID}
		for _, v := range u.Verts {
			w.Verts = append(w.Verts, [3]float64{v.X, v.Y, v.T})
		}
		wire.Updates = append(wire.Updates, w)
	}
	body, err := json.Marshal(wire)
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("ingest status %d", resp.StatusCode)
	}
	return nil
}

// sseStream reads Server-Sent Events frames off one subscription.
type sseStream struct {
	resp *http.Response
	br   *bufio.Reader
}

func (s *sseStream) close() { s.resp.Body.Close() }

// next reads one "diff" frame and decodes its event payload.
func (s *sseStream) next() (repro.LiveEvent, error) {
	var ev repro.LiveEvent
	_, data, err := s.nextFrame()
	if err != nil {
		return ev, err
	}
	return ev, json.Unmarshal([]byte(data), &ev)
}

func (s *sseStream) nextFrame() (event, data string, err error) {
	for {
		line, err := s.br.ReadString('\n')
		if err != nil {
			return "", "", err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "" && data != "":
			return event, data, nil
		}
	}
}

// openSSE starts a fresh subscription stream and consumes the leading
// "subscribed" frame carrying the subscription ID and initial answer.
func openSSE(url string) (*sseStream, int64, repro.Result, error) {
	var res repro.Result
	resp, err := http.Get(url)
	if err != nil {
		return nil, 0, res, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, 0, res, fmt.Errorf("subscribe status %d", resp.StatusCode)
	}
	s := &sseStream{resp: resp, br: bufio.NewReader(resp.Body)}
	_, data, err := s.nextFrame()
	if err != nil {
		resp.Body.Close()
		return nil, 0, res, err
	}
	var hello struct {
		SubID  int64        `json:"sub_id"`
		Result repro.Result `json:"result"`
	}
	if err := json.Unmarshal([]byte(data), &hello); err != nil {
		resp.Body.Close()
		return nil, 0, res, err
	}
	return s, hello.SubID, hello.Result, nil
}

// resumeSSE re-attaches to a parked subscription. The gateway parks the
// subscription when it notices the severed connection, so a resume that
// races the park (400: still live) retries briefly.
func resumeSSE(base string, subID int64, fromSeq uint64) (*sseStream, error) {
	url := fmt.Sprintf("%s/v1/subscribe?sub_id=%d&from_seq=%d", base, subID, fromSeq)
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusOK {
			s := &sseStream{resp: resp, br: bufio.NewReader(resp.Body)}
			if _, _, err := s.nextFrame(); err != nil { // the "subscribed" hello
				resp.Body.Close()
				return nil, err
			}
			return s, nil
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("resume kept failing with status %d", resp.StatusCode)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// canonicalEvent renders an event with the wall-clock Explain fields
// zeroed, so byte comparison sees only the answer.
func canonicalEvent(ev repro.LiveEvent) string {
	ev.Explain = zeroWalls(ev.Explain)
	b, _ := json.Marshal(ev)
	return string(b)
}

func canonicalResult(r repro.Result) string {
	r.Explain = zeroWalls(r.Explain)
	b, _ := json.Marshal(r)
	return string(b)
}

func zeroWalls(ex repro.Explain) repro.Explain {
	ex.Wall, ex.RefineWall = 0, 0
	for i := range ex.ShardExplains {
		ex.ShardExplains[i] = zeroWalls(ex.ShardExplains[i])
	}
	return ex
}
