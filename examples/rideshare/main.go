// Rideshare: matching riders to nearby drivers under position uncertainty,
// exercising the Section 7 extension surface of the library — threshold NN
// queries ("which drivers are >= 40% likely to be closest at least a third
// of the window?"), guaranteed-NN intervals, reverse NN ("which riders
// might driver 2 be closest to?"), mutual pairs, heterogeneous uncertainty
// radii (downtown GPS is worse), top-k membership probabilities, and
// spatio-textual dispatch (tag predicates restricting a query to the
// available non-pool sub-fleet, with live duty-status flips).
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	const r = 0.4 // default GPS uncertainty, miles
	store, err := repro.NewUniformStore(r)
	if err != nil {
		log.Fatal(err)
	}
	trs, err := repro.GenerateWorkload(repro.DefaultWorkload(99), 40)
	if err != nil {
		log.Fatal(err)
	}
	if err := store.InsertAll(trs); err != nil {
		log.Fatal(err)
	}
	rider, err := store.Get(1)
	if err != nil {
		log.Fatal(err)
	}

	// The memoized, index-pruned processor behind the unified API gives
	// interval-level access beyond what a Request expresses.
	eng := repro.NewEngine(0)
	proc, err := eng.Processor(store, rider.OID, 0, 60)
	if err != nil {
		log.Fatal(err)
	}

	// Threshold query (paper §7: "more than 65% probability ... within 50%
	// of the time" — here 50% probability for at least 5% of the hour,
	// appropriate for a 40-driver field where the closest role rotates).
	cfg := repro.ThresholdConfig{TimeSamples: 48, Grid: 384}
	matches, err := proc.ThresholdNNAll(0.50, 0.05, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("drivers >= 50%% likely closest for >= 5%% of the hour: %v\n", matches)
	for _, oid := range matches {
		tAt, p, err := proc.MaxProbability(oid, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  driver %d peaks at P=%.2f around t=%.1f min\n", oid, p, tAt)
	}

	// Guaranteed assignment windows: when is some driver *certainly*
	// closest, no matter how the uncertainty resolves?
	fmt.Println("\nguaranteed-closest windows:")
	for _, oid := range proc.UQ31() {
		ivs, err := proc.GuaranteedNNIntervals(oid)
		if err != nil {
			log.Fatal(err)
		}
		if len(ivs) > 0 {
			fmt.Printf("  driver %d: %v\n", oid, ivs)
		}
	}

	// Reverse view: for which riders could driver 2 be the closest? One
	// Request through the same engine.
	rev, err := eng.Do(context.Background(), store, repro.Request{
		Kind: repro.KindReverse, Tb: 0, Te: 60, OID: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndriver 2 could be the closest option for riders: %v\n", rev.OIDs)

	// Spatio-textual dispatch: drivers carry attribute tags (duty status,
	// vehicle class), and a tag predicate on the Request restricts the
	// answer to the matching sub-fleet — byte-identical to querying a
	// store holding only those drivers. Here: who can be closest among
	// available drivers that are not pool vehicles?
	for _, tr := range trs {
		var tags []string
		if tr.OID%2 == 0 {
			tags = append(tags, "available")
		}
		if tr.OID%5 == 0 {
			tags = append(tags, "pool")
		}
		if tags != nil {
			if err := store.SetTags(tr.OID, tags); err != nil {
				log.Fatal(err)
			}
		}
	}
	where := &repro.Predicate{All: []string{"available"}, Not: []string{"pool"}}
	avail, err := eng.Do(context.Background(), store, repro.Request{
		Kind: repro.KindUQ31, QueryOID: rider.OID, Tb: 0, Te: 60, Where: where,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\navailable non-pool drivers who can be closest: %v\n", avail.OIDs)
	fmt.Printf("  (keyword index narrowed %d spatial candidates to %d tagged ones)\n",
		avail.Explain.SpatialCandidates, avail.Explain.TextualCandidates)

	// Driver 3 comes on duty: a pure tag flip — no motion change — and the
	// filtered view updates on the next evaluation.
	onDuty := []string{"available"}
	if _, err := store.ApplyUpdates([]repro.Update{{OID: 3, Tags: &onDuty}}); err != nil {
		log.Fatal(err)
	}
	after, err := eng.Do(context.Background(), store, repro.Request{
		Kind: repro.KindUQ31, QueryOID: rider.OID, Tb: 0, Te: 60, Where: where,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after driver 3 comes on duty: %v\n", after.OIDs)

	// Heterogeneous uncertainty: downtown units (odd OIDs) have 3x worse
	// GPS. Who can be closest to the rider now?
	radii := make(map[int64]float64, len(trs))
	for _, tr := range trs {
		if tr.OID%2 == 1 {
			radii[tr.OID] = 3 * r
		} else {
			radii[tr.OID] = r
		}
	}
	hp, err := repro.NewHeteroQueryProcessor(store.All(), rider, 0, 60, radii)
	if err != nil {
		log.Fatal(err)
	}
	ids, err := hp.UQ31()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith heterogeneous GPS quality, possible-closest drivers: %v\n", ids)

	// Instantaneous top-3 membership probabilities at t = 30 (dispatch
	// shortlist with confidence levels).
	q30 := rider.At(30)
	var cands []repro.Candidate
	for _, tr := range store.All() {
		if tr.OID == rider.OID {
			continue
		}
		cands = append(cands, repro.Candidate{ID: tr.OID, Dist: tr.At(30).Dist(q30)})
	}
	conv, err := repro.Convolve(repro.UniformDiskPDF(r), repro.UniformDiskPDF(r))
	if err != nil {
		log.Fatal(err)
	}
	top3 := repro.KNNProbabilities(conv, cands, 3)
	fmt.Println("\nP(in dispatch top-3) at t=30, for drivers with > 1% chance:")
	for id, p := range top3 {
		if p > 0.01 {
			fmt.Printf("  driver %d: %.3f\n", id, p)
		}
	}
}
