// Quickstart: build a small MOD of uncertain trajectories, construct the
// IPAC-NN tree for one query object, and run a few continuous
// probabilistic NN queries — the minimal end-to-end tour of the public
// API.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A MOD whose objects all share the paper's default uncertainty model:
	// a uniform location pdf inside a disk of radius 0.5 miles.
	store, err := repro.NewUniformStore(0.5)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's evaluation workload: random waypoint over 40×40 mi²,
	// speeds in [15, 60] mph, 60 minutes of motion.
	trs, err := repro.GenerateWorkload(repro.DefaultWorkload(42), 500)
	if err != nil {
		log.Fatal(err)
	}
	if err := store.InsertAll(trs); err != nil {
		log.Fatal(err)
	}

	// Continuous probabilistic NN query: who can be the nearest neighbor
	// of object 1 during the next hour?
	q, err := store.Get(1)
	if err != nil {
		log.Fatal(err)
	}
	tree, err := repro.BuildIPACNN(store.All(), q, 0, 60, store.Radius(), nil,
		repro.TreeConfig{MaxLevels: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IPAC-NN tree: %d nodes, depth %d; %d of %d objects pruned by the 4r zone\n",
		tree.NodeCount(), tree.Depth(), len(tree.PrunedOIDs), store.Len()-1)

	// The time-parameterized answer: the highest-probability NN changes
	// over the window (Section 1's A_nn sequence = the level-1 nodes).
	fmt.Println("\nhighest-probability nearest neighbor over time:")
	for _, n := range tree.NodesAtLevel(1) {
		fmt.Printf("  [%6.2f, %6.2f] min  →  Tr%d\n", n.T0, n.T1, n.ID)
	}

	// Instantaneous ranking at t = 30 (Theorem 1: ranked by expected
	// distance).
	fmt.Printf("\ntop-3 probable NNs at t=30: %v\n", tree.RankedAt(30, 3))

	// The same questions, declaratively (the paper's Section 4 SQL sketch).
	res, err := repro.RunUQL(
		"SELECT T FROM MOD WHERE ATLEAST 50% Time IN [0, 60] AND ProbabilityNN(T, 1, Time) > 0", store)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nobjects possibly-NN at least half the hour: %v\n", res.OIDs)
}
