// Quickstart: build a small MOD of uncertain trajectories, answer
// continuous probabilistic NN queries through the unified Request/Result
// API, and inspect the IPAC-NN tree — the minimal end-to-end tour of the
// public API.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// A MOD whose objects all share the paper's default uncertainty model:
	// a uniform location pdf inside a disk of radius 0.5 miles.
	store, err := repro.NewUniformStore(0.5)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's evaluation workload: random waypoint over 40×40 mi²,
	// speeds in [15, 60] mph, 60 minutes of motion.
	trs, err := repro.GenerateWorkload(repro.DefaultWorkload(42), 500)
	if err != nil {
		log.Fatal(err)
	}
	if err := store.InsertAll(trs); err != nil {
		log.Fatal(err)
	}

	// Every query is a Request; every answer is a Result carrying its own
	// Explain provenance. A batch against one (query, window) pays the
	// envelope preprocessing once; cancel ctx to stop a batch early.
	eng := repro.NewEngine(0) // one worker per CPU
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	results, err := eng.DoBatch(ctx, store, []repro.Request{
		// Who can be the nearest neighbor of object 1 during the hour? (UQ31)
		{Kind: repro.KindUQ31, QueryOID: 1, Tb: 0, Te: 60},
		// Who can be nearest at least half the hour? (UQ33)
		{Kind: repro.KindUQ33, QueryOID: 1, Tb: 0, Te: 60, X: 0.5},
		// Who can be among the two most probable NNs at some point? (UQ41)
		{Kind: repro.KindUQ41, QueryOID: 1, Tb: 0, Te: 60, K: 2},
		// Can object 2 ever be the NN? (UQ11)
		{Kind: repro.KindUQ11, QueryOID: 1, Tb: 0, Te: 60, OID: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, res := range results {
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		answer := fmt.Sprint(res.OIDs)
		if res.IsBool {
			answer = fmt.Sprint(res.Bool)
		}
		fmt.Printf("%-9s → %-40s (%d/%d candidates survived pruning, %v)\n",
			res.Kind, answer, res.Explain.Survivors, res.Explain.Candidates, res.Explain.Wall.Round(time.Microsecond))
	}

	// The IPAC-NN tree is the time-parameterized answer structure behind
	// those retrievals (Section 1's A_nn sequence = the level-1 nodes).
	q, err := store.Get(1)
	if err != nil {
		log.Fatal(err)
	}
	tree, err := repro.BuildIPACNN(store.All(), q, 0, 60, store.Radius(), nil,
		repro.TreeConfig{MaxLevels: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nIPAC-NN tree: %d nodes, depth %d; %d of %d objects pruned by the 4r zone\n",
		tree.NodeCount(), tree.Depth(), len(tree.PrunedOIDs), store.Len()-1)
	fmt.Println("\nhighest-probability nearest neighbor over time:")
	for _, n := range tree.NodesAtLevel(1) {
		fmt.Printf("  [%6.2f, %6.2f] min  →  Tr%d\n", n.T0, n.T1, n.ID)
	}
	fmt.Printf("\ntop-3 probable NNs at t=30: %v\n", tree.RankedAt(30, 3))

	// The same question, declaratively: UQL statements compile to the very
	// same Request and run through the same engine route.
	req, ok, err := repro.CompileUQL(
		"SELECT T FROM MOD WHERE ATLEAST 50% Time IN [0, 60] AND ProbabilityNN(T, 1, Time) > 0")
	if err != nil || !ok {
		log.Fatalf("compile: ok=%v err=%v", ok, err)
	}
	res, err := eng.Do(ctx, store, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nobjects possibly-NN at least half the hour: %v\n", res.OIDs)
}
