// Friendfinder: the LBS scenario of the paper's Section 1 — a mobile user
// asks which friends have any chance of being their nearest neighbor
// during lunch hour, given that everyone's position is known only up to an
// uncertainty disk. Exercises the UQL surface (Categories 1-4 and the
// fixed-time variant) over a TCP MOD server, end to end.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"repro"
	"repro/internal/modserver"
)

func main() {
	// Server side: an LBS provider hosting the MOD.
	store, err := repro.NewUniformStore(0.3) // phone-GPS-grade uncertainty
	if err != nil {
		log.Fatal(err)
	}
	trs, err := repro.GenerateWorkload(repro.DefaultWorkload(7), 200)
	if err != nil {
		log.Fatal(err)
	}
	if err := store.InsertAll(trs); err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := modserver.NewServer(store)
	go srv.Serve(l)
	defer srv.Close()

	// Client side: the user's phone.
	c, err := modserver.Dial(l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	count, err := c.Count()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("connected to LBS MOD with %d users\n\n", count)

	ask := func(desc, stmt string) {
		res, err := c.UQL(stmt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n  %s\n  → %s\n\n", desc, stmt, res)
	}

	ask("Who could be my (user 1's) nearest friend at some point this hour? (UQ31)",
		"SELECT T FROM MOD WHERE EXISTS Time IN [0, 60] AND ProbabilityNN(T, 1, Time) > 0")

	ask("Who could be nearest at least 40% of the hour? (UQ33)",
		"SELECT T FROM MOD WHERE ATLEAST 40% Time IN [0, 60] AND ProbabilityNN(T, 1, Time) > 0")

	ask("Could user 5 ever be among my two most probable nearest friends? (UQ21)",
		"SELECT 5 FROM MOD WHERE EXISTS Time IN [0, 60] AND ProbabilityKNN(5, 1, Time, 2) > 0")

	ask("Who can be nearest exactly at lunch (t = 30)? (fixed-time variant)",
		"SELECT T FROM MOD WHERE AT Time = 30 WITHIN [0, 60] AND ProbabilityNN(T, 1, Time) > 0")

	ask("Is anyone guaranteed a shot at being nearest the whole hour? (UQ32)",
		"SELECT T FROM MOD WHERE FORALL Time IN [0, 60] AND ProbabilityNN(T, 1, Time) > 0")

	// The same questions travel as unified Request descriptors over the
	// "query" op — one wire contract for every variant, with per-query
	// Explain provenance and a server-side deadline.
	results, err := c.Query([]repro.Request{
		{Kind: repro.KindUQ31, QueryOID: 1, Tb: 0, Te: 60},
		{Kind: repro.KindUQ41, QueryOID: 1, Tb: 0, Te: 60, K: 2},
	}, 2*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	for _, res := range results {
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		fmt.Printf("unified %s → %v (%d/%d candidates survived pruning, %v)\n",
			res.Kind, res.OIDs, res.Explain.Survivors, res.Explain.Candidates, res.Explain.Wall)
	}
}
