// Command figures regenerates the paper's evaluation figures (Section 5)
// as text tables and optional CSV files:
//
//	figures -fig 11                 # lower-envelope construction time
//	figures -fig 12                 # UQ11/UQ13 query time
//	figures -fig 13                 # pruning power vs uncertainty radius
//	figures -fig par                # parallel batch engine vs serial loops
//	figures -fig prune              # index-accelerated pruning vs full scan
//	figures -fig text               # spatio-textual hybrid index vs filter-then-refine (make bench-text)
//	figures -fig api                # Engine.Do overhead gate (make bench-api)
//	figures -fig shard              # sharded router vs single engine (make bench-shard)
//	figures -fig shard -large       # the same sweep at the large population (make bench-shard-large)
//	figures -fig city               # city-scale Poisson churn harness (make bench-city, nightly)
//	figures -fig summary            # markdown table over BENCH_*.json artifacts (CI step summary)
//	figures -fig all -csv out/      # everything, with CSVs
//
// Flags tune the sweep sizes so the full paper range (N up to 12000) or a
// laptop-friendly subset can be selected. The -min-speedup family turns
// measured speedups into CI gates (0 disables each), and -shard-baseline
// gates a fresh shard sweep against a committed artifact minus a relative
// tolerance — the benchmark-regression harness.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/cityload"
)

func main() {
	var (
		fig         = flag.String("fig", "all", "which figure to regenerate: 11, 12, 13, e4 or all")
		ns          = flag.String("n", "1000,2000,4000,6000,8000,10000,12000", "comma-separated population sizes for figures 11-12")
		naiveCap    = flag.Int("naive-cap", 4000, "largest N for the O(N²logN) naive baselines (0 = no cap)")
		queries     = flag.Int("queries", 100, "random target selections per size for figure 12")
		radii       = flag.String("r", "0.1,0.25,0.5,0.75,1,1.5,2,3,4,5", "comma-separated uncertainty radii (miles) for figure 13")
		fig13Ns     = flag.String("fig13-n", "2000,10000", "population sizes for figure 13")
		parNs       = flag.String("par-n", "1000,2000,4000", "population sizes for the parallel-batch experiment")
		parK        = flag.Int("par-k", 3, "deepest rank in the parallel-batch experiment")
		workers     = flag.Int("workers", 0, "worker count for the parallel-batch experiment (0 = one per CPU)")
		pruneNs     = flag.String("prune-n", "500,1000,2000,4000", "population sizes for the index-pruning experiment")
		pruneRep    = flag.Int("prune-reps", 3, "query trajectories averaged per size in the index-pruning experiment")
		pruneOut    = flag.String("prune-json", "", "path to write the BENCH_prune.json artifact (optional)")
		textNs      = flag.String("text-n", "500,1000,2000,4000", "population sizes for the spatio-textual experiment")
		textReps    = flag.Int("text-reps", 3, "query trajectories averaged per size in the spatio-textual experiment")
		textOut     = flag.String("text-json", "", "path to write the BENCH_text.json artifact (optional)")
		textMin     = flag.Float64("text-min-speedup", 1, "fail when the hybrid-index speedup at the largest N falls below this (0 disables)")
		shardN      = flag.Int("shard-n", 500, "population size for the shard-scaling experiment")
		shardReps   = flag.Int("shard-reps", 3, "query trajectories per shard-scaling rep")
		shardPasses = flag.Int("shard-passes", 3, "interleaved single/router measurement passes per shard row")
		shardCnts   = flag.String("shard-counts", "1,2,4,8", "comma-separated shard counts for the shard-scaling experiment")
		shardOut    = flag.String("shard-json", "", "path to write the BENCH_shard.json artifact (optional)")
		large       = flag.Bool("large", false, "grow the shard sweep to the large population (N=50000, 2 reps, 2 passes) unless set explicitly")
		minSpeedup  = flag.Float64("min-speedup", 0, "fail when the best multi-shard speedup falls below this (0 disables)")
		shardBase   = flag.String("shard-baseline", "", "committed BENCH_shard.json to gate the fresh sweep against (optional)")
		shardTol    = flag.Float64("shard-tolerance", 0.25, "relative tolerance for the -shard-baseline gate (0.25 = fresh best speedup may be 25% below baseline)")
		pruneMin    = flag.Float64("prune-min-speedup", 0, "fail when the index-pruning speedup at the largest N falls below this (0 disables)")
		liveMin     = flag.Float64("live-min-speedup", 1, "fail when the live-hub speedup falls below this (the hub must beat the naive re-query; 0 disables)")
		summaryDir  = flag.String("summary-dir", ".", "directory scanned for BENCH_*.json by -fig summary")
		liveNs      = flag.String("live-n", "1000,4000", "population sizes for the live-serving experiment")
		liveSubs    = flag.Int("live-subs", 24, "standing subscriptions in the live-serving experiment")
		liveSteps   = flag.Int("live-steps", 12, "scripted ingest batches in the live-serving experiment")
		livePer     = flag.Int("live-per-step", 6, "plan revisions per ingest batch in the live-serving experiment")
		liveOut     = flag.String("live-json", "", "path to write the BENCH_live.json artifact (optional)")
		cityN       = flag.Int("city-n", 100000, "fleet size for the city-scale churn harness")
		citySubs    = flag.Int("city-subs", 1200, "standing subscriptions in the city-scale churn harness")
		cityTicks   = flag.Int("city-ticks", 8, "load ticks in the city-scale churn harness")
		cityShapes  = flag.Int("city-shapes", 48, "distinct standing questions the subscription population spreads over")
		cityWorkers = flag.Int("city-workers", 4, "concurrent one-shot query workers in the city harness")
		cityShards  = flag.String("city-shards", "0,4", "comma-separated shard counts for the city harness (0 = single hub)")
		cityOut     = flag.String("city-json", "", "path to write the BENCH_city.json artifact (optional)")
		cityBase    = flag.String("city-baseline", "", "committed BENCH_city.json to gate the fresh run against (optional)")
		cityTol     = flag.Float64("city-tolerance", 0.4, "relative tolerance for the -city-baseline gates (updates/s floor and p99 ceiling)")
		apiN        = flag.Int("api-n", 1000, "population size for the Engine.Do overhead gate")
		apiReps     = flag.Int("api-reps", 15, "timed repetitions for the Engine.Do overhead gate")
		apiMax      = flag.Float64("api-max-overhead", 5, "fail when Engine.Do overhead exceeds this percentage (0 disables)")
		seed        = flag.Int64("seed", 2009, "workload RNG seed")
		csvDir      = flag.String("csv", "", "directory to write CSV series into (optional)")
	)
	flag.Parse()

	if *large {
		// Grow the shard sweep without overriding anything the caller set
		// explicitly; fewer reps/passes keep the 50k run inside a nightly
		// budget while each pass stays long enough to time reliably.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["shard-n"] {
			*shardN = 50000
		}
		if !set["shard-reps"] {
			*shardReps = 2
		}
		if !set["shard-passes"] {
			*shardPasses = 2
		}
	}

	if *fig == "summary" {
		if err := summarize(*summaryDir); err != nil {
			fatal(err)
		}
		return
	}

	sizes, err := parseInts(*ns)
	if err != nil {
		fatal(err)
	}
	rs, err := parseFloats(*radii)
	if err != nil {
		fatal(err)
	}
	sizes13, err := parseInts(*fig13Ns)
	if err != nil {
		fatal(err)
	}

	writeCSV := func(name, content string) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
		path := filepath.Join(*csvDir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}

	sizesPar, err := parseInts(*parNs)
	if err != nil {
		fatal(err)
	}

	sizesPrune, err := parseInts(*pruneNs)
	if err != nil {
		fatal(err)
	}

	run11 := *fig == "11" || *fig == "all"
	run12 := *fig == "12" || *fig == "all"
	run13 := *fig == "13" || *fig == "all"
	runE4 := *fig == "e4" || *fig == "all"
	runPar := *fig == "par" || *fig == "all"
	runPrune := *fig == "prune" || *fig == "all"
	runText := *fig == "text" || *fig == "all"
	runAPI := *fig == "api" || *fig == "all"
	runShard := *fig == "shard" || *fig == "all"
	runLive := *fig == "live" || *fig == "all"
	runCity := *fig == "city" // nightly-scale; never part of "all"
	if !run11 && !run12 && !run13 && !runE4 && !runPar && !runPrune && !runText && !runAPI && !runShard && !runLive && !runCity {
		fatal(fmt.Errorf("unknown -fig %q", *fig))
	}

	if run11 {
		fmt.Println("== Figure 11: lower-envelope construction time ==")
		rows, err := bench.Fig11(sizes, *naiveCap, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Print(bench.FormatFig11(rows))
		writeCSV("fig11.csv", bench.CSVFig11(rows))
		fmt.Println()
	}
	if run12 {
		fmt.Println("== Figure 12: existential (UQ11) and quantitative (UQ13, X=50%) query time ==")
		rows, err := bench.Fig12(sizes, *naiveCap, *queries, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Print(bench.FormatFig12(rows))
		writeCSV("fig12.csv", bench.CSVFig12(rows))
		fmt.Println()
	}
	if run13 {
		fmt.Println("== Figure 13: pruning power of the lower envelope ==")
		rows, err := bench.Fig13(rs, sizes13, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Print(bench.FormatFig13(rows))
		writeCSV("fig13.csv", bench.CSVFig13(rows))
		fmt.Println()
	}
	if runE4 {
		fmt.Println("== Extension E4: pruning power, uniform vs clustered workload ==")
		rows, err := bench.E4ClusteredPruning(rs, 2000, 4, 1.5, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Print(bench.FormatE4(rows))
		writeCSV("e4.csv", bench.CSVE4(rows))
		fmt.Println()
	}
	if runPar {
		fmt.Println("== Parallel batch engine: UQ41/UQ43 batches, serial vs worker pool ==")
		rows, err := bench.ParallelBatch(sizesPar, *parK, *workers, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Print(bench.FormatParallel(rows))
		writeCSV("parallel.csv", bench.CSVParallel(rows))
		fmt.Println()
	}
	if runPrune {
		fmt.Println("== Index-accelerated pruning: UQ31 latency, indexed vs full scan ==")
		const pruneRadius = 0.5 // the paper's default uncertainty radius
		rows, err := bench.PruneSweep(sizesPrune, *pruneRep, pruneRadius, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Print(bench.FormatPrune(rows))
		writeCSV("prune.csv", bench.CSVPrune(rows))
		if *pruneOut != "" {
			f, err := os.Create(*pruneOut)
			if err != nil {
				fatal(err)
			}
			if err := bench.WritePruneJSON(f, rows, pruneRadius, *pruneRep, *seed); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *pruneOut)
		}
		// The equal flag is a correctness gate, not just a column: a
		// divergence between the indexed and full-scan answer sets must
		// fail the run (and CI), after the evidence has been written.
		for _, r := range rows {
			if !r.Equal {
				fatal(fmt.Errorf("index-pruned UQ31 diverged from full scan at N=%d", r.N))
			}
		}
		if *pruneMin > 0 && len(rows) > 0 {
			last := rows[len(rows)-1]
			if last.Speedup < *pruneMin {
				fatal(fmt.Errorf("index-pruning speedup %.2fx at N=%d is below the %.2fx gate", last.Speedup, last.N, *pruneMin))
			}
		}
	}
	if runText {
		fmt.Println("== Spatio-textual: hybrid keyword/R-tree index vs filter-then-refine (filtered UQ31) ==")
		const textRadius = 0.5
		sizesText, err := parseInts(*textNs)
		if err != nil {
			fatal(err)
		}
		rows, err := bench.TextSweep(sizesText, *textReps, textRadius, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Print(bench.FormatText(rows))
		writeCSV("text.csv", bench.CSVText(rows))
		if *textOut != "" {
			f, err := os.Create(*textOut)
			if err != nil {
				fatal(err)
			}
			if err := bench.WriteTextJSON(f, rows, textRadius, *textReps, *seed); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *textOut)
		}
		// Correctness first: a divergence between the hybrid path and the
		// filter-then-refine baseline fails the run after the evidence is
		// on disk. Then the pruning must actually pay at the largest N.
		for _, r := range rows {
			if !r.Equal {
				fatal(fmt.Errorf("hybrid filtered UQ31 diverged from filter-then-refine at N=%d", r.N))
			}
		}
		if *textMin > 0 && len(rows) > 0 {
			last := rows[len(rows)-1]
			if last.Speedup < *textMin {
				fatal(fmt.Errorf("hybrid-index speedup %.2fx at N=%d is below the %.2fx gate", last.Speedup, last.N, *textMin))
			}
		}
	}
	if runAPI {
		fmt.Println("== Unified API: Engine.Do overhead vs direct Processor calls (UQ31) ==")
		row, err := bench.APIOverhead(*apiN, *apiReps, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Print(bench.FormatAPI(row))
		if !row.Equal {
			fatal(fmt.Errorf("Engine.Do answer diverged from the direct Processor call"))
		}
		if *apiMax > 0 && row.OverheadPct > *apiMax {
			fatal(fmt.Errorf("Engine.Do overhead %.2f%% exceeds the %.1f%% gate", row.OverheadPct, *apiMax))
		}
	}
	if runShard {
		fmt.Println("== Sharded serving: Router over K local shards vs single engine ==")
		counts, err := parseInts(*shardCnts)
		if err != nil {
			fatal(err)
		}
		// The committed baseline must be read before the fresh artifact
		// overwrites it (CI points both at the same path).
		baseline := 0.0
		if *shardBase != "" {
			b, err := bestShardSpeedup(*shardBase)
			if err != nil {
				fatal(fmt.Errorf("reading -shard-baseline: %w", err))
			}
			baseline = b
		}
		const shardRadius = 0.5 // the paper's default uncertainty radius
		rows, err := bench.ShardScaling(*shardN, counts, *shardReps, *shardPasses, shardRadius, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Print(bench.FormatShard(rows))
		writeCSV("shard.csv", bench.CSVShard(rows))
		if *shardOut != "" {
			f, err := os.Create(*shardOut)
			if err != nil {
				fatal(err)
			}
			if err := bench.WriteShardJSON(f, rows, *shardN, *shardReps, shardRadius, *seed); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *shardOut)
		}
		// Like bench-prune, equal is a correctness gate: a router that
		// diverges from the single-store engine fails the run (and CI)
		// after the evidence has been written.
		for _, r := range rows {
			if !r.Equal {
				fatal(fmt.Errorf("router over %d shards diverged from the single-store engine", r.Shards))
			}
		}
		// Performance gates, absolute then relative: the best multi-shard
		// speedup must clear -min-speedup, and must not regress more than
		// -shard-tolerance below the committed baseline.
		best := 0.0
		for _, r := range rows {
			if r.Shards > 1 && r.Speedup > best {
				best = r.Speedup
			}
		}
		if *minSpeedup > 0 && best < *minSpeedup {
			fatal(fmt.Errorf("best multi-shard speedup %.2fx is below the %.2fx gate", best, *minSpeedup))
		}
		if baseline > 0 {
			floor := baseline * (1 - *shardTol)
			if best < floor {
				fatal(fmt.Errorf("best multi-shard speedup %.2fx regressed below the baseline %.2fx minus %.0f%% tolerance (floor %.2fx)",
					best, baseline, *shardTol*100, floor))
			}
			fmt.Printf("baseline gate: best %.2fx vs floor %.2fx (baseline %.2fx - %.0f%%)\n",
				best, floor, baseline, *shardTol*100)
		}
	}
	if runLive {
		fmt.Println("== Live serving: continuous-query hub (dirty set) vs naive full re-query ==")
		liveSizes, err := parseInts(*liveNs)
		if err != nil {
			fatal(err)
		}
		const liveRadius = 0.5 // the paper's default uncertainty radius
		var rows []bench.LiveRow
		for _, n := range liveSizes {
			row, err := bench.LiveServing(n, *liveSubs, *liveSteps, *livePer, liveRadius, *seed)
			if err != nil {
				fatal(err)
			}
			rows = append(rows, row)
		}
		fmt.Print(bench.FormatLive(rows))
		if *liveOut != "" {
			f, err := os.Create(*liveOut)
			if err != nil {
				fatal(err)
			}
			if err := bench.WriteLiveJSON(f, rows, liveRadius, *seed); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *liveOut)
		}
		// Correctness gate first (like bench-prune/bench-shard), then the
		// headline claim: dirty-set re-evaluation must beat the naive full
		// re-query on the scripted workload by at least -live-min-speedup.
		for _, r := range rows {
			if !r.Equal {
				fatal(fmt.Errorf("live hub answers diverged from the naive full re-query at n=%d", r.N))
			}
			if *liveMin > 0 && r.Speedup <= *liveMin {
				fatal(fmt.Errorf("live hub (%.2fx) did not clear the %.2fx gate over the naive full re-query at n=%d", r.Speedup, *liveMin, r.N))
			}
		}
	}
	if runCity {
		fmt.Println("== City-scale churn: Poisson update/query/subscription arrivals with retirement ==")
		shardCounts, err := parseInts(*cityShards)
		if err != nil {
			fatal(err)
		}
		// Read the committed baseline BEFORE the fresh run overwrites the
		// artifact path (the shard gate's read-before-overwrite pattern).
		var baseline cityload.Baseline
		haveBaseline := false
		if *cityBase != "" {
			f, err := os.Open(*cityBase)
			if err != nil {
				fatal(err)
			}
			baseline, err = cityload.ReadBaseline(f)
			f.Close()
			if err != nil {
				fatal(err)
			}
			haveBaseline = true
		}
		var rows []cityload.Row
		for _, shards := range shardCounts {
			cfg := cityload.Config{
				Seed: *seed, N: *cityN, Subs: *citySubs, Ticks: *cityTicks,
				Workers: *cityWorkers, Shards: shards, R: 0.5,
				Shapes: *cityShapes,
				// Arrival means per tick: sized so the default 8-tick run
				// pushes ~3.6k updates and ~400 timed queries through the
				// hub. Per-eval cost at N=1e5 is seconds (the window
				// queries barely prune at city density), so wall time is
				// bounded by distinct dirty shapes per tick, not by these
				// rates.
				UpdateRate: 400, FlipRate: 40, RetireRate: 12,
				QueryRate: 50, ChurnRate: 6, SpotChecks: 12,
			}
			row, err := cityload.Run(cfg)
			if err != nil {
				fatal(err)
			}
			rows = append(rows, row)
			fmt.Print(cityload.Format(rows[len(rows)-1:]))
		}
		if *cityOut != "" {
			f, err := os.Create(*cityOut)
			if err != nil {
				fatal(err)
			}
			if err := cityload.WriteJSON(f, rows, 0.5, *seed); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *cityOut)
		}
		// Correctness gate first: every spot check byte-identical under
		// churn. Then the baseline gates: sustained updates/s must hold a
		// floor and query p99 a ceiling relative to the committed artifact.
		for _, r := range rows {
			if !r.Equal {
				fatal(fmt.Errorf("city %s: spot checks diverged from the fresh snapshot re-query", r.Topology))
			}
		}
		if haveBaseline {
			for _, r := range rows {
				if base, ok := baseline.UpdatesPerSec[r.Topology]; ok && base > 0 {
					floor := base * (1 - *cityTol)
					if r.UpdatesPerSec < floor {
						fatal(fmt.Errorf("city %s: sustained %.0f updates/s fell below the baseline floor %.0f (baseline %.0f - %.0f%%)",
							r.Topology, r.UpdatesPerSec, floor, base, *cityTol*100))
					}
					fmt.Printf("city %s: updates/s gate ok (%.0f vs floor %.0f)\n", r.Topology, r.UpdatesPerSec, floor)
				}
				if base, ok := baseline.QueryP99NS[r.Topology]; ok && base > 0 {
					ceiling := float64(base) * (1 + *cityTol)
					if float64(r.QueryP99) > ceiling {
						fatal(fmt.Errorf("city %s: query p99 %v exceeded the baseline ceiling %v (baseline %v + %.0f%%)",
							r.Topology, r.QueryP99, time.Duration(ceiling), time.Duration(base), *cityTol*100))
					}
					fmt.Printf("city %s: p99 gate ok (%v vs ceiling %v)\n", r.Topology, r.QueryP99, time.Duration(ceiling))
				}
			}
		}
	}
}

// bestShardSpeedup reads a BENCH_shard.json artifact and returns the best
// speedup among its multi-shard rows — the quantity the regression gate
// compares fresh runs against.
func bestShardSpeedup(path string) (float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var doc struct {
		Rows []struct {
			Shards  int     `json:"shards"`
			Speedup float64 `json:"speedup"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	best := 0.0
	for _, r := range doc.Rows {
		if r.Shards > 1 && r.Speedup > best {
			best = r.Speedup
		}
	}
	if best == 0 {
		return 0, fmt.Errorf("%s: no multi-shard rows", path)
	}
	return best, nil
}

// summarize renders every BENCH_*.json artifact under dir as one markdown
// document — CI appends it to $GITHUB_STEP_SUMMARY so each run shows its
// benchmark evidence without downloading artifacts. Every artifact shares
// the {experiment, rows: [...]} shape; row columns are emitted in sorted
// key order for determinism.
func summarize(dir string) error {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return err
	}
	sort.Strings(paths)
	fmt.Println("## Benchmark summary")
	if len(paths) == 0 {
		fmt.Printf("\nNo BENCH_*.json artifacts under %s.\n", dir)
		return nil
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var doc struct {
			Experiment string           `json:"experiment"`
			Rows       []map[string]any `json:"rows"`
		}
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Printf("\n### %s\n\n", filepath.Base(path))
		if doc.Experiment != "" {
			fmt.Printf("%s\n\n", doc.Experiment)
		}
		if len(doc.Rows) == 0 {
			fmt.Println("(no rows)")
			continue
		}
		keys := make([]string, 0, len(doc.Rows[0]))
		for k := range doc.Rows[0] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Printf("| %s |\n", strings.Join(keys, " | "))
		fmt.Printf("|%s\n", strings.Repeat("---|", len(keys)))
		for _, row := range doc.Rows {
			cells := make([]string, len(keys))
			for i, k := range keys {
				cells[i] = summaryCell(row[k])
			}
			fmt.Printf("| %s |\n", strings.Join(cells, " | "))
		}
	}
	return nil
}

// summaryCell formats one artifact value for the markdown table: integral
// floats (JSON numbers decode as float64) print without a fraction, the
// rest keep four significant digits.
func summaryCell(v any) string {
	switch x := v.(type) {
	case float64:
		if x == float64(int64(x)) {
			return strconv.FormatInt(int64(x), 10)
		}
		return strconv.FormatFloat(x, 'g', 4, 64)
	case nil:
		return ""
	default:
		return fmt.Sprintf("%v", x)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
