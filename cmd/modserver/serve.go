package main

// The serve subcommand: mount the HTTP+JSON gateway (internal/gateway)
// over either a local engine or a cluster of modserver shard processes.
//
//	modserver serve -http :8080 -r 0.5
//	modserver serve -http :8443 -tls-cert gw.pem -tls-key gw.key -token t \
//	    -shards shard0:7701,shard1:7702 -shard-ca ca.pem -shard-token s
//
// Local mode evaluates in-process and supports the full durability story
// (-wal-dir/-resume, final fsync on drain). Cluster mode scatters to the
// named shards — TLS when -shard-ca or -shard-insecure is given — and
// keeps retrying the initial probe for -shard-wait so the gateway can
// start before its shards (container orchestration ordering).

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/continuous"
	"repro/internal/engine"
	"repro/internal/gateway"
	"repro/internal/wal"
)

func runServe(args []string) {
	fs := flag.NewFlagSet("modserver serve", flag.ExitOnError)
	var (
		httpAddr      = fs.String("http", "127.0.0.1:8080", "gateway listen address")
		tlsCert       = fs.String("tls-cert", "", "serve HTTPS with this PEM certificate (requires -tls-key)")
		tlsKey        = fs.String("tls-key", "", "PEM private key for -tls-cert")
		token         = fs.String("token", "", "require `Authorization: Bearer <token>` on every /v1 route")
		shardList     = fs.String("shards", "", "comma-separated shard addresses; empty serves a local engine")
		shardToken    = fs.String("shard-token", "", "bearer token presented to each shard")
		shardCA       = fs.String("shard-ca", "", "PEM CA bundle verifying shard TLS (enables TLS dialing)")
		shardInsecure = fs.Bool("shard-insecure", false, "dial shards over TLS without verifying certificates")
		shardWait     = fs.Duration("shard-wait", 30*time.Second, "keep retrying the initial shard probe this long")
		degraded      = fs.Bool("degraded", false, "serve partial answers when shards are unreachable")
		storePath     = fs.String("store", "", "optional store file to preload (binary format, local mode)")
		r             = fs.Float64("r", 0.5, "uncertainty radius when starting empty (local mode)")
		workers       = fs.Int("workers", 0, "query engine worker count (0 = one per CPU)")
		walDir        = fs.String("wal-dir", "", "journal ingest batches to a write-ahead log (local mode)")
		walSync       = fs.Bool("wal-sync", false, "fsync the WAL after every appended batch")
		walSnapEvery  = fs.Int("wal-snapshot-every", 64, "rotate the WAL into a fresh snapshot after this many batches (0 disables)")
		resume        = fs.Bool("resume", false, "recover the store from -wal-dir, then continue the journal")
		reqTimeout    = fs.Duration("request-timeout", 30*time.Second, "server-side ceiling on per-request deadlines (0 = none)")
		maxBody       = fs.Int64("max-body", gateway.DefaultMaxBodyBytes, "max request body size in bytes")
		drain         = fs.Duration("drain", 15*time.Second, "graceful-shutdown budget on SIGINT/SIGTERM")
	)
	fs.Parse(args)

	m := gateway.NewMetrics(nil)
	opts := gateway.Options{
		Token:          *token,
		MaxBodyBytes:   *maxBody,
		RequestTimeout: *reqTimeout,
		Metrics:        m,
	}
	var log *wal.Log
	if *shardList != "" {
		if *storePath != "" || *walDir != "" || *resume {
			fatal(fmt.Errorf("-store/-wal-dir/-resume are local-mode flags; shards own their stores and journals"))
		}
		router, err := dialShards(*shardList, *shardToken, *shardCA, *shardInsecure,
			*shardWait, cluster.Options{Engine: engine.New(*workers), Degraded: *degraded}, m)
		if err != nil {
			fatal(err)
		}
		hub := cluster.NewRouterHub(router)
		opts.Backend, opts.Hub = router, hub
		m.ObserveHub(hub.Stats)
		fmt.Printf("modserver serve: routing %d shards (degraded %v)\n", router.Shards(), *degraded)
	} else {
		walOpts := wal.Options{Sync: *walSync, SnapshotEvery: *walSnapEvery}
		store, walLog, err := openStore(*storePath, *r, *resume, *walDir, walOpts)
		if err != nil {
			fatal(err)
		}
		log = walLog
		if *walDir != "" && !*resume {
			if log, err = wal.Create(*walDir, store, walOpts); err != nil {
				fatal(err)
			}
			fmt.Printf("modserver serve: journaling to %s (sync %v, snapshot every %d)\n",
				*walDir, *walSync, *walSnapEvery)
		}
		eng := engine.New(*workers)
		hub := continuous.NewEngineHub(store, eng)
		opts.Backend = gateway.EngineBackend{Eng: eng, Store: store}
		opts.Hub = hub
		m.ObserveHub(hub.Stats)
		if log != nil {
			opts.Journal, opts.Store = log, store
			m.ObserveWAL(log.Stats)
		}
		fmt.Printf("modserver serve: local engine, %d trajectories\n", store.Len())
	}

	gw, err := gateway.New(opts)
	if err != nil {
		fatal(err)
	}
	l, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		fatal(err)
	}
	l, scheme, err := maybeTLS(l, *tlsCert, *tlsKey)
	if err != nil {
		fatal(err)
	}
	auth := "open"
	if *token != "" {
		auth = "bearer-token"
	}
	fmt.Printf("modserver serve: gateway on %s (%s, auth %s)\n", l.Addr(), scheme, auth)
	onSignal(func(ctx context.Context) error { return gw.Shutdown(ctx) }, *drain)
	err = gw.Serve(l)
	closeWAL(log)
	if err != nil {
		fatal(err)
	}
}

// dialShards builds TLS/token remote shards for every listed address and
// probes them through router construction, retrying transient failures
// until the wait budget runs out.
func dialShards(list, token, caFile string, insecure bool, wait time.Duration,
	copts cluster.Options, m *gateway.Metrics) (*cluster.Router, error) {
	var addrs []string
	for _, a := range strings.Split(list, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("-shards lists no addresses")
	}
	var tlsConf *tls.Config
	switch {
	case caFile != "":
		pem, err := os.ReadFile(caFile)
		if err != nil {
			return nil, err
		}
		pool := x509.NewCertPool()
		if !pool.AppendCertsFromPEM(pem) {
			return nil, fmt.Errorf("no certificates in -shard-ca %s", caFile)
		}
		tlsConf = &tls.Config{RootCAs: pool, MinVersion: tls.VersionTLS12}
	case insecure:
		tlsConf = &tls.Config{InsecureSkipVerify: true, MinVersion: tls.VersionTLS12}
	}
	shards := make([]cluster.Shard, len(addrs))
	for i, a := range addrs {
		shards[i] = cluster.NewRemoteShardWith(a, a, cluster.RemoteOptions{
			TLS:     tlsConf,
			Token:   token,
			OnRetry: m.ShardRetryHook(),
		})
	}
	deadline := time.Now().Add(wait)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		router, err := cluster.NewRouter(ctx, shards, copts)
		cancel()
		if err == nil {
			return router, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("shards unreachable after %v: %w", wait, err)
		}
		fmt.Fprintf(os.Stderr, "modserver serve: waiting for shards: %v\n", err)
		time.Sleep(time.Second)
	}
}
