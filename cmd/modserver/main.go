// Command modserver serves a MOD store over TCP with the line-delimited
// JSON protocol of internal/modserver:
//
//	modserver -store fleet.mod -addr :7700
//	modserver -r 0.5 -addr 127.0.0.1:7700      # start empty
//
// Clients insert trajectories and pose UQL statements; see
// internal/modserver for the protocol and a Go client.
//
// Shard serving: the query op's bounds/survivors/all phases make any
// modserver usable as one shard of a cluster router (repro.NewRemoteShard
// points at -addr). -shard-of splits a store file and serves only the
// hash partition this instance owns:
//
//	modserver -store fleet.mod -addr :7701 -shard-of 4 -shard-index 0
//	modserver -store fleet.mod -addr :7702 -shard-of 4 -shard-index 1
//	...
//
// -read-timeout and -max-line harden the serving layer: a stalled client
// is disconnected at the read deadline, an oversized request line is
// rejected with a diagnostic. -tls-cert/-tls-key serve the line protocol
// over TLS, and -token requires every connection to authenticate with a
// bearer token before its first operation.
//
// Durability: -wal-dir journals every applied ingest batch to a
// write-ahead log with periodic snapshots, so a crash loses nothing that
// was acknowledged (-wal-sync extends that through power loss). A fresh
// -wal-dir seeds the journal from the store built above; restarting with
// -resume recovers the store from the journal instead — byte-identical
// to the pre-crash store — and continues appending:
//
//	modserver -store fleet.mod -wal-dir /var/lib/mod/wal     # first boot
//	modserver -wal-dir /var/lib/mod/wal -resume              # every restart
//
// SIGINT/SIGTERM drain gracefully: the listener stops accepting,
// in-flight requests finish, idle connections are detached (their
// subscriptions stay resumable), and the WAL takes a final fsync before
// the process exits.
//
// HTTP gateway: `modserver serve` mounts the HTTP+JSON gateway
// (internal/gateway) instead of the line protocol — over a local engine
// or, with -shards, over a cluster of modserver shard processes. See the
// serve subcommand's -help and docs/ for details:
//
//	modserver serve -http :8080 -r 0.5
//	modserver serve -http :8443 -tls-cert gw.pem -tls-key gw.key \
//	    -shards shard0:7701,shard1:7702 -shard-ca ca.pem -shard-token s3cr3t
package main

import (
	"context"
	"crypto/tls"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/mod"
	"repro/internal/modserver"
	"repro/internal/wal"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		runServe(os.Args[2:])
		return
	}
	runShard(os.Args[1:])
}

func runShard(args []string) {
	fs := flag.NewFlagSet("modserver", flag.ExitOnError)
	var (
		addr         = fs.String("addr", "127.0.0.1:7700", "listen address")
		storePath    = fs.String("store", "", "optional store file to preload (binary format)")
		r            = fs.Float64("r", 0.5, "uncertainty radius when starting empty")
		workers      = fs.Int("workers", 0, "query engine worker count (0 = one per CPU)")
		readTimeout  = fs.Duration("read-timeout", modserver.DefaultReadTimeout, "per-connection read deadline (negative disables)")
		maxLine      = fs.Int("max-line", modserver.MaxLine, "max request line size in bytes")
		shardOf      = fs.Int("shard-of", 0, "serve one hash partition of the store: total shard count (0 = whole store)")
		shardIndex   = fs.Int("shard-index", 0, "which partition to serve when -shard-of is set")
		walDir       = fs.String("wal-dir", "", "journal ingest batches to a write-ahead log in this directory")
		walSync      = fs.Bool("wal-sync", false, "fsync the WAL after every appended batch")
		walSnapEvery = fs.Int("wal-snapshot-every", 64, "rotate the WAL into a fresh snapshot after this many batches (0 disables)")
		resume       = fs.Bool("resume", false, "recover the store from -wal-dir instead of -store/-r, then continue the journal")
		tlsCert      = fs.String("tls-cert", "", "serve TLS with this PEM certificate (requires -tls-key)")
		tlsKey       = fs.String("tls-key", "", "PEM private key for -tls-cert")
		token        = fs.String("token", "", "require this bearer token on every connection")
		drain        = fs.Duration("drain", 15*time.Second, "graceful-shutdown budget on SIGINT/SIGTERM")
	)
	fs.Parse(args)

	walOpts := wal.Options{Sync: *walSync, SnapshotEvery: *walSnapEvery}
	if *resume && *shardOf > 0 {
		fatal(fmt.Errorf("-resume recovers the journaled store; -shard-of must not be set"))
	}
	store, log, err := openStore(*storePath, *r, *resume, *walDir, walOpts)
	if err != nil {
		fatal(err)
	}
	if *shardOf > 0 {
		if *shardIndex < 0 || *shardIndex >= *shardOf {
			fatal(fmt.Errorf("-shard-index %d out of range for -shard-of %d", *shardIndex, *shardOf))
		}
		parts, err := cluster.SplitStore(store, *shardOf, cluster.Hash{})
		if err != nil {
			fatal(err)
		}
		store = parts[*shardIndex]
		fmt.Printf("modserver: serving hash shard %d/%d\n", *shardIndex, *shardOf)
	}
	if *walDir != "" && !*resume {
		// Fresh journal: the store built above (post-split, so each shard
		// journals exactly what it serves) becomes the recovery base.
		if log, err = wal.Create(*walDir, store, walOpts); err != nil {
			fatal(err)
		}
		fmt.Printf("modserver: journaling to %s (sync %v, snapshot every %d)\n",
			*walDir, *walSync, *walSnapEvery)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	l, scheme, err := maybeTLS(l, *tlsCert, *tlsKey)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("modserver: %d trajectories, listening on %s (%s, read timeout %v)\n",
		store.Len(), l.Addr(), scheme, *readTimeout)
	opts := modserver.Options{
		ReadTimeout:  *readTimeout,
		MaxLineBytes: *maxLine,
		Token:        *token,
	}
	if log != nil {
		opts.Journal = log
	}
	srv := modserver.NewServerWith(store, engine.New(*workers), opts)
	onSignal(func(ctx context.Context) error { return srv.Shutdown(ctx) }, *drain)
	err = srv.Serve(l)
	closeWAL(log)
	if err != nil && err != modserver.ErrServerClosed {
		fatal(err)
	}
}

// openStore builds the initial store from the shared -store/-r/-resume
// flags. On the -resume path the returned log continues the recovered
// journal; otherwise the caller creates a fresh journal (possibly after
// splitting the store) when -wal-dir is set.
func openStore(storePath string, r float64, resume bool, walDir string, walOpts wal.Options) (*mod.Store, *wal.Log, error) {
	switch {
	case resume:
		if walDir == "" {
			return nil, nil, fmt.Errorf("-resume requires -wal-dir")
		}
		if storePath != "" {
			return nil, nil, fmt.Errorf("-resume recovers the journaled store; -store must not be set")
		}
		log, store, info, err := wal.Open(walDir, walOpts)
		if err != nil {
			return nil, nil, err
		}
		torn := ""
		if info.Torn {
			torn = ", torn tail truncated"
		}
		fmt.Printf("modserver: recovered %s at batch %d (snapshot %d + %d replayed%s)\n",
			walDir, info.Seq(), info.SnapshotSeq, info.Replayed, torn)
		return store, log, nil
	case storePath != "":
		f, err := os.Open(storePath)
		if err != nil {
			return nil, nil, err
		}
		store, err := mod.LoadBinary(f)
		f.Close()
		return store, nil, err
	default:
		store, err := mod.NewUniformStore(r)
		return store, nil, err
	}
}

// maybeTLS wraps l for TLS serving when a cert/key pair is configured.
func maybeTLS(l net.Listener, certFile, keyFile string) (net.Listener, string, error) {
	if certFile == "" && keyFile == "" {
		return l, "plaintext", nil
	}
	if certFile == "" || keyFile == "" {
		return nil, "", fmt.Errorf("-tls-cert and -tls-key must be set together")
	}
	cert, err := tls.LoadX509KeyPair(certFile, keyFile)
	if err != nil {
		return nil, "", err
	}
	cfg := &tls.Config{Certificates: []tls.Certificate{cert}, MinVersion: tls.VersionTLS12}
	return tls.NewListener(l, cfg), "tls", nil
}

// onSignal arranges a graceful drain on SIGINT/SIGTERM: shutdown stops
// accepting, lets in-flight work finish, and force-closes whatever is
// still alive when the drain budget expires.
func onSignal(shutdown func(context.Context) error, drain time.Duration) {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Printf("modserver: %v — draining (budget %v)\n", s, drain)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "modserver: drain:", err)
		}
	}()
}

// closeWAL takes the journal's final fsync so an acknowledged batch
// survives the exit even without -wal-sync.
func closeWAL(log *wal.Log) {
	if log == nil {
		return
	}
	if err := log.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "modserver: wal close:", err)
		return
	}
	fmt.Println("modserver: WAL synced and closed")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "modserver:", err)
	os.Exit(1)
}
