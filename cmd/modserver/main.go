// Command modserver serves a MOD store over TCP with the line-delimited
// JSON protocol of internal/modserver:
//
//	modserver -store fleet.mod -addr :7700
//	modserver -r 0.5 -addr 127.0.0.1:7700      # start empty
//
// Clients insert trajectories and pose UQL statements; see
// internal/modserver for the protocol and a Go client.
//
// Shard serving: the query op's bounds/survivors/all phases make any
// modserver usable as one shard of a cluster router (repro.NewRemoteShard
// points at -addr). -shard-of splits a store file and serves only the
// hash partition this instance owns:
//
//	modserver -store fleet.mod -addr :7701 -shard-of 4 -shard-index 0
//	modserver -store fleet.mod -addr :7702 -shard-of 4 -shard-index 1
//	...
//
// -read-timeout and -max-line harden the serving layer: a stalled client
// is disconnected at the read deadline, an oversized request line is
// rejected with a diagnostic.
//
// Durability: -wal-dir journals every applied ingest batch to a
// write-ahead log with periodic snapshots, so a crash loses nothing that
// was acknowledged (-wal-sync extends that through power loss). A fresh
// -wal-dir seeds the journal from the store built above; restarting with
// -resume recovers the store from the journal instead — byte-identical
// to the pre-crash store — and continues appending:
//
//	modserver -store fleet.mod -wal-dir /var/lib/mod/wal     # first boot
//	modserver -wal-dir /var/lib/mod/wal -resume              # every restart
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/mod"
	"repro/internal/modserver"
	"repro/internal/wal"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7700", "listen address")
		storePath    = flag.String("store", "", "optional store file to preload (binary format)")
		r            = flag.Float64("r", 0.5, "uncertainty radius when starting empty")
		workers      = flag.Int("workers", 0, "query engine worker count (0 = one per CPU)")
		readTimeout  = flag.Duration("read-timeout", modserver.DefaultReadTimeout, "per-connection read deadline (negative disables)")
		maxLine      = flag.Int("max-line", modserver.MaxLine, "max request line size in bytes")
		shardOf      = flag.Int("shard-of", 0, "serve one hash partition of the store: total shard count (0 = whole store)")
		shardIndex   = flag.Int("shard-index", 0, "which partition to serve when -shard-of is set")
		walDir       = flag.String("wal-dir", "", "journal ingest batches to a write-ahead log in this directory")
		walSync      = flag.Bool("wal-sync", false, "fsync the WAL after every appended batch")
		walSnapEvery = flag.Int("wal-snapshot-every", 64, "rotate the WAL into a fresh snapshot after this many batches (0 disables)")
		resume       = flag.Bool("resume", false, "recover the store from -wal-dir instead of -store/-r, then continue the journal")
	)
	flag.Parse()

	walOpts := wal.Options{Sync: *walSync, SnapshotEvery: *walSnapEvery}
	var (
		store *mod.Store
		log   *wal.Log
		err   error
	)
	switch {
	case *resume:
		if *walDir == "" {
			fatal(fmt.Errorf("-resume requires -wal-dir"))
		}
		if *storePath != "" || *shardOf > 0 {
			fatal(fmt.Errorf("-resume recovers the journaled store; -store and -shard-of must not be set"))
		}
		var info wal.RecoverInfo
		log, store, info, err = wal.Open(*walDir, walOpts)
		if err != nil {
			fatal(err)
		}
		torn := ""
		if info.Torn {
			torn = ", torn tail truncated"
		}
		fmt.Printf("modserver: recovered %s at batch %d (snapshot %d + %d replayed%s)\n",
			*walDir, info.Seq(), info.SnapshotSeq, info.Replayed, torn)
	case *storePath != "":
		f, ferr := os.Open(*storePath)
		if ferr != nil {
			fatal(ferr)
		}
		store, err = mod.LoadBinary(f)
		f.Close()
	default:
		store, err = mod.NewUniformStore(*r)
	}
	if err != nil {
		fatal(err)
	}
	if *shardOf > 0 {
		if *shardIndex < 0 || *shardIndex >= *shardOf {
			fatal(fmt.Errorf("-shard-index %d out of range for -shard-of %d", *shardIndex, *shardOf))
		}
		parts, err := cluster.SplitStore(store, *shardOf, cluster.Hash{})
		if err != nil {
			fatal(err)
		}
		store = parts[*shardIndex]
		fmt.Printf("modserver: serving hash shard %d/%d\n", *shardIndex, *shardOf)
	}
	if *walDir != "" && !*resume {
		// Fresh journal: the store built above (post-split, so each shard
		// journals exactly what it serves) becomes the recovery base.
		if log, err = wal.Create(*walDir, store, walOpts); err != nil {
			fatal(err)
		}
		fmt.Printf("modserver: journaling to %s (sync %v, snapshot every %d)\n",
			*walDir, *walSync, *walSnapEvery)
	}
	if log != nil {
		defer log.Close()
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("modserver: %d trajectories, listening on %s (read timeout %v)\n",
		store.Len(), l.Addr(), *readTimeout)
	opts := modserver.Options{
		ReadTimeout:  *readTimeout,
		MaxLineBytes: *maxLine,
	}
	if log != nil {
		opts.Journal = log
	}
	srv := modserver.NewServerWith(store, engine.New(*workers), opts)
	if err := srv.Serve(l); err != nil && err != modserver.ErrServerClosed {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "modserver:", err)
	os.Exit(1)
}
