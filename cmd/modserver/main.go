// Command modserver serves a MOD store over TCP with the line-delimited
// JSON protocol of internal/modserver:
//
//	modserver -store fleet.mod -addr :7700
//	modserver -r 0.5 -addr 127.0.0.1:7700      # start empty
//
// Clients insert trajectories and pose UQL statements; see
// internal/modserver for the protocol and a Go client.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"repro/internal/mod"
	"repro/internal/modserver"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7700", "listen address")
		storePath = flag.String("store", "", "optional store file to preload (binary format)")
		r         = flag.Float64("r", 0.5, "uncertainty radius when starting empty")
	)
	flag.Parse()

	var (
		store *mod.Store
		err   error
	)
	if *storePath != "" {
		f, ferr := os.Open(*storePath)
		if ferr != nil {
			fatal(ferr)
		}
		store, err = mod.LoadBinary(f)
		f.Close()
	} else {
		store, err = mod.NewUniformStore(*r)
	}
	if err != nil {
		fatal(err)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("modserver: %d trajectories, listening on %s\n", store.Len(), l.Addr())
	srv := modserver.NewServer(store)
	if err := srv.Serve(l); err != nil && err != modserver.ErrServerClosed {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "modserver:", err)
	os.Exit(1)
}
