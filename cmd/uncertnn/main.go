// Command uncertnn runs continuous probabilistic NN queries against a MOD
// store file — as a one-shot UQL statement, a multi-statement batch
// script, or an interactive REPL — and can print a query's IPAC-NN tree:
//
//	uncertnn -store fleet.mod -uql 'SELECT T FROM MOD WHERE EXISTS Time IN [0, 60] AND ProbabilityNN(T, 1, Time) > 0'
//	uncertnn -store fleet.mod -script queries.uql   # one statement per line, # comments
//	uncertnn -store fleet.mod -tree -q 1 -tb 0 -te 60 -levels 3
//	uncertnn -store fleet.mod              # REPL: one UQL statement per line
//
// Scripts and the REPL evaluate through the concurrent batch engine:
// statements compile to unified engine Requests, statements sharing a
// query trajectory and window share one envelope preprocessing, whole-MOD
// statements fan per-object work across -workers goroutines (default: one
// per CPU), and the store's spatial index prunes the candidate set before
// preprocessing unless -fullscan disables it. -timeout bounds each
// statement batch with a context deadline honored end to end (worker
// pool, index pre-pass, lazy envelope builds).
//
// -shards N (N > 1) splits the store into N hash-partitioned in-process
// shards and routes compiled statements through the cluster scatter-gather
// router instead — answers are byte-identical to the single engine (the
// two-phase NN bound exchange keeps global semantics); statements that do
// not compile to a Request (threshold `> p`, CertainNN) fall back to the
// single-store path.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mod"
	"repro/internal/uql"
)

// evalCtx returns the context bounding one statement batch.
func evalCtx(timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout > 0 {
		return context.WithTimeout(context.Background(), timeout)
	}
	return context.WithCancel(context.Background())
}

func main() {
	var (
		storePath = flag.String("store", "", "path to a store file written by gentraj")
		format    = flag.String("format", "binary", "store format: binary | json")
		uqlStmt   = flag.String("uql", "", "one-shot UQL statement (omit for a REPL)")
		script    = flag.String("script", "", "batch-run a UQL script file (one statement per line)")
		workers   = flag.Int("workers", 0, "batch engine worker count (0 = one per CPU)")
		shards    = flag.Int("shards", 0, "route through an in-process cluster of this many hash-partitioned shards (0 or 1 = single engine)")
		timeout   = flag.Duration("timeout", 0, "per-batch evaluation deadline, e.g. 500ms (0 = none)")
		fullScan  = flag.Bool("fullscan", false, "disable the spatial-index candidate pre-pass (full O(N) envelope preprocessing per query)")
		horizon   = flag.Float64("horizon", 0, "pin a predictive TPR index over [t0, t0+horizon] from the store's earliest time; covered query windows are then served without index rebuilds under live ingest (0 = off)")
		tree      = flag.Bool("tree", false, "print the IPAC-NN tree for -q over [-tb, -te]")
		qOID      = flag.Int64("q", 1, "query trajectory OID for -tree")
		tb        = flag.Float64("tb", 0, "window start for -tree")
		te        = flag.Float64("te", 60, "window end for -tree")
		levels    = flag.Int("levels", 3, "max tree levels for -tree (0 = unbounded)")
		desc      = flag.Bool("descriptors", false, "compute probability descriptors for -tree")
		asJSON    = flag.Bool("json", false, "emit the -tree answer as JSON instead of text")
	)
	flag.Parse()
	if *storePath == "" {
		fatal(fmt.Errorf("missing -store"))
	}
	f, err := os.Open(*storePath)
	if err != nil {
		fatal(err)
	}
	var store *mod.Store
	switch *format {
	case "binary":
		store, err = mod.LoadBinary(f)
	case "json":
		store, err = mod.LoadJSON(f)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	f.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %d trajectories (r=%g, pdf=%s)\n", store.Len(), store.Radius(), store.Spec().Kind)

	if *horizon > 0 {
		t0, _, ok := store.TimeSpan()
		if !ok {
			fatal(fmt.Errorf("-horizon on an empty store"))
		}
		if err := store.EnablePredictive(t0, *horizon); err != nil {
			fatal(err)
		}
		fmt.Printf("predictive TPR index pinned over [%g, %g]\n", t0, t0+*horizon)
	}

	if *tree {
		printTree(store, *qOID, *tb, *te, *levels, *desc, *asJSON)
		return
	}
	eng := engine.NewWith(engine.Options{Workers: *workers, FullScan: *fullScan})
	ev := &evaluator{store: store, eng: eng}
	if *shards > 1 {
		router, err := cluster.NewLocalCluster(store, *shards, cluster.Options{Engine: eng})
		if err != nil {
			fatal(err)
		}
		ev.router = router
		fmt.Printf("routing through %d hash-partitioned shards\n", *shards)
	}
	if *script != "" {
		runScript(ev, *script, *timeout)
		return
	}
	if *uqlStmt != "" {
		ctx, cancel := evalCtx(*timeout)
		item := ev.run(ctx, []string{*uqlStmt})[0]
		cancel()
		if item.Err != nil {
			fatal(item.Err)
		}
		fmt.Println(item.Result)
		return
	}
	repl(ev, *timeout)
}

// evaluator routes statement batches: through the cluster router when
// -shards is set (statements compile to unified Requests; the rare
// non-compilable forms fall back to the single-store engine), through the
// engine's UQL batch path otherwise.
type evaluator struct {
	store  *mod.Store
	eng    *engine.Engine
	router *cluster.Router
}

func (e *evaluator) run(ctx context.Context, stmts []string) []uql.BatchItem {
	if e.router == nil {
		return uql.RunBatchCtx(ctx, stmts, e.store, e.eng)
	}
	out := make([]uql.BatchItem, len(stmts))
	var (
		reqs []engine.Request
		idxs []int
	)
	for i, stmt := range stmts {
		st, err := uql.Parse(stmt)
		if err != nil {
			out[i].Err = err
			continue
		}
		req, ok := uql.Compile(st)
		if !ok {
			// No Request kind for this form yet; evaluate on the
			// unsharded store so the statement still answers.
			out[i] = uql.RunBatchCtx(ctx, []string{stmt}, e.store, e.eng)[0]
			continue
		}
		reqs = append(reqs, req)
		idxs = append(idxs, i)
	}
	results, err := e.router.DoBatch(ctx, reqs)
	for j, res := range results {
		if res.Err != nil {
			out[idxs[j]].Err = res.Err
			continue
		}
		out[idxs[j]].Result = uql.Result{IsBool: res.IsBool, Bool: res.Bool, OIDs: res.OIDs}
	}
	// A canceled batch truncates results; surface the context error on
	// the statements left unevaluated.
	for j := len(results); j < len(reqs); j++ {
		out[idxs[j]].Err = err
	}
	return out
}

// runScript batch-evaluates a UQL script: one statement per line, blank
// lines and #-comments skipped. Statement failures are reported inline;
// any failure makes the exit status nonzero.
func runScript(ev *evaluator, path string, timeout time.Duration) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var stmts []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		stmts = append(stmts, line)
	}
	ctx, cancel := evalCtx(timeout)
	defer cancel()
	failed := false
	for i, item := range ev.run(ctx, stmts) {
		if item.Err != nil {
			failed = true
			fmt.Printf("[%d] error: %v\n", i+1, item.Err)
			continue
		}
		fmt.Printf("[%d] %s\n", i+1, item.Result)
	}
	if failed {
		os.Exit(1)
	}
}

func printTree(store *mod.Store, qOID int64, tb, te float64, levels int, desc, asJSON bool) {
	q, err := store.Get(qOID)
	if err != nil {
		fatal(err)
	}
	tree, err := core.Build(store.All(), q, tb, te, store.Radius(), store.PDF(),
		core.Config{MaxLevels: levels, Descriptors: desc})
	if err != nil {
		fatal(err)
	}
	if asJSON {
		if err := tree.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("IPAC-NN tree for TrQ=%d over [%g, %g]: %d nodes, depth %d, %d pruned of %d objects\n",
		qOID, tb, te, tree.NodeCount(), tree.Depth(), len(tree.PrunedOIDs), store.Len()-1)
	tree.Walk(func(n *core.Node) {
		indent := strings.Repeat("  ", n.Level-1)
		line := fmt.Sprintf("%sTr%-6d [%7.3f, %7.3f] level %d", indent, n.ID, n.T0, n.T1, n.Level)
		if n.Descriptor != nil {
			line += fmt.Sprintf("  P∈[%.3f, %.3f]", n.Descriptor.MinProb, n.Descriptor.MaxProb)
		}
		fmt.Println(line)
	})
}

func repl(ev *evaluator, timeout time.Duration) {
	fmt.Println("uncertnn REPL — one UQL statement per line (quit/exit to leave)")
	fmt.Println(`example: SELECT T FROM MOD WHERE EXISTS Time IN [0, 60] AND ProbabilityNN(T, 1, Time) > 0`)
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("uql> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			return
		}
		// Evaluating through the engine lets repeated statements against
		// the same query trajectory and window reuse the preprocessing;
		// -timeout bounds each statement so a heavy whole-MOD retrieval
		// cannot wedge the REPL.
		ctx, cancel := evalCtx(timeout)
		item := ev.run(ctx, []string{line})[0]
		cancel()
		if item.Err != nil {
			fmt.Println("error:", item.Err)
			continue
		}
		fmt.Println(item.Result)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uncertnn:", err)
	os.Exit(1)
}
