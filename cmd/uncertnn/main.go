// Command uncertnn runs continuous probabilistic NN queries against a MOD
// store file, either as a one-shot UQL statement or as an interactive
// REPL, and can print a query's IPAC-NN tree:
//
//	uncertnn -store fleet.mod -uql 'SELECT T FROM MOD WHERE EXISTS Time IN [0, 60] AND ProbabilityNN(T, 1, Time) > 0'
//	uncertnn -store fleet.mod -tree -q 1 -tb 0 -te 60 -levels 3
//	uncertnn -store fleet.mod              # REPL: one UQL statement per line
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/mod"
	"repro/internal/uql"
)

func main() {
	var (
		storePath = flag.String("store", "", "path to a store file written by gentraj")
		format    = flag.String("format", "binary", "store format: binary | json")
		uqlStmt   = flag.String("uql", "", "one-shot UQL statement (omit for a REPL)")
		tree      = flag.Bool("tree", false, "print the IPAC-NN tree for -q over [-tb, -te]")
		qOID      = flag.Int64("q", 1, "query trajectory OID for -tree")
		tb        = flag.Float64("tb", 0, "window start for -tree")
		te        = flag.Float64("te", 60, "window end for -tree")
		levels    = flag.Int("levels", 3, "max tree levels for -tree (0 = unbounded)")
		desc      = flag.Bool("descriptors", false, "compute probability descriptors for -tree")
		asJSON    = flag.Bool("json", false, "emit the -tree answer as JSON instead of text")
	)
	flag.Parse()
	if *storePath == "" {
		fatal(fmt.Errorf("missing -store"))
	}
	f, err := os.Open(*storePath)
	if err != nil {
		fatal(err)
	}
	var store *mod.Store
	switch *format {
	case "binary":
		store, err = mod.LoadBinary(f)
	case "json":
		store, err = mod.LoadJSON(f)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	f.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %d trajectories (r=%g, pdf=%s)\n", store.Len(), store.Radius(), store.Spec().Kind)

	if *tree {
		printTree(store, *qOID, *tb, *te, *levels, *desc, *asJSON)
		return
	}
	if *uqlStmt != "" {
		res, err := uql.Run(*uqlStmt, store)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res)
		return
	}
	repl(store)
}

func printTree(store *mod.Store, qOID int64, tb, te float64, levels int, desc, asJSON bool) {
	q, err := store.Get(qOID)
	if err != nil {
		fatal(err)
	}
	tree, err := core.Build(store.All(), q, tb, te, store.Radius(), store.PDF(),
		core.Config{MaxLevels: levels, Descriptors: desc})
	if err != nil {
		fatal(err)
	}
	if asJSON {
		if err := tree.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("IPAC-NN tree for TrQ=%d over [%g, %g]: %d nodes, depth %d, %d pruned of %d objects\n",
		qOID, tb, te, tree.NodeCount(), tree.Depth(), len(tree.PrunedOIDs), store.Len()-1)
	tree.Walk(func(n *core.Node) {
		indent := strings.Repeat("  ", n.Level-1)
		line := fmt.Sprintf("%sTr%-6d [%7.3f, %7.3f] level %d", indent, n.ID, n.T0, n.T1, n.Level)
		if n.Descriptor != nil {
			line += fmt.Sprintf("  P∈[%.3f, %.3f]", n.Descriptor.MinProb, n.Descriptor.MaxProb)
		}
		fmt.Println(line)
	})
}

func repl(store *mod.Store) {
	fmt.Println("uncertnn REPL — one UQL statement per line (quit/exit to leave)")
	fmt.Println(`example: SELECT T FROM MOD WHERE EXISTS Time IN [0, 60] AND ProbabilityNN(T, 1, Time) > 0`)
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("uql> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			return
		}
		res, err := uql.Run(line, store)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Println(res)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uncertnn:", err)
	os.Exit(1)
}
