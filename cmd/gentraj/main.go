// Command gentraj generates a random-waypoint workload (the paper's
// Section 5 population) and writes it as a MOD store file:
//
//	gentraj -n 2000 -r 0.5 -o fleet.mod          # binary store
//	gentraj -n 100 -format json -o fleet.json    # JSON store
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/mod"
	"repro/internal/workload"
)

func main() {
	var (
		n        = flag.Int("n", 1000, "number of moving objects")
		r        = flag.Float64("r", 0.5, "uncertainty radius (miles)")
		pdfKind  = flag.String("pdf", "uniform", "location pdf: uniform | bounded-gaussian | epanechnikov")
		sigma    = flag.Float64("sigma", 0.25, "sigma for bounded-gaussian")
		segments = flag.Int("segments", 6, "linear segments per trajectory (velocity changes + 1)")
		seed     = flag.Int64("seed", 1, "RNG seed")
		format   = flag.String("format", "binary", "output format: binary | json")
		out      = flag.String("o", "workload.mod", "output file")
	)
	flag.Parse()

	spec := mod.PDFSpec{Kind: mod.PDFKind(*pdfKind), R: *r}
	if spec.Kind == mod.PDFBoundedGaussian {
		spec.Sigma = *sigma
	}
	store, err := mod.NewStore(spec)
	if err != nil {
		fatal(err)
	}
	cfg := workload.DefaultConfig(*seed)
	if *segments < 1 {
		fatal(fmt.Errorf("segments must be >= 1"))
	}
	cfg.VelocityChanges = *segments - 1
	trs, err := workload.Generate(cfg, *n)
	if err != nil {
		fatal(err)
	}
	if err := store.InsertAll(trs); err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	switch *format {
	case "binary":
		err = store.SaveBinary(f)
	case "json":
		err = store.SaveJSON(f)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d trajectories (r=%g, pdf=%s) to %s\n", *n, *r, *pdfKind, *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gentraj:", err)
	os.Exit(1)
}
