# Static modserver image: one binary serves both roles — the TCP shard
# protocol (default) and the HTTP gateway (`serve`). docker-compose.yml
# wires two shards behind one gateway, all TLS.
FROM golang:1.24 AS build
WORKDIR /src
COPY go.mod ./
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -o /out/modserver ./cmd/modserver

FROM gcr.io/distroless/static-debian12:nonroot
COPY --from=build /out/modserver /usr/local/bin/modserver
ENTRYPOINT ["/usr/local/bin/modserver"]
