// Package repro is the public API of this reproduction of Trajcevski,
// Tamassia, Ding, Scheuermann and Cruz, "Continuous Probabilistic
// Nearest-Neighbor Queries for Uncertain Trajectories" (EDBT 2009).
//
// The facade re-exports the stable surface of the internal packages so
// downstream users never import repro/internal/...:
//
//   - trajectories and the MOD store (Section 2.1),
//   - the IPAC-NN tree (Sections 1, 3.2 — the paper's core contribution),
//   - the continuous query variants UQ11..UQ43 (Section 4),
//   - the concurrent batch query engine (worker-pool parallel evaluation
//     of the whole-MOD variants with memoized envelope preprocessing),
//   - the UQL query language (the SQL sketch of Section 4), and
//   - the probabilistic machinery for instantaneous NN queries
//     (Sections 2.2, 3.1).
//
// Quickstart:
//
//	store, _ := repro.NewUniformStore(0.5)                  // r = 0.5 mi
//	trs, _ := repro.GenerateWorkload(repro.DefaultWorkload(42), 1000)
//	_ = store.InsertAll(trs)
//	q, _ := store.Get(1)
//	tree, _ := repro.BuildIPACNN(store.All(), q, 0, 60, store.Radius(), nil, repro.TreeConfig{MaxLevels: 3})
//	fmt.Println(tree.AnswerAt(30))                          // highest-probability NN at t=30
//
// Batches of query variants against one (query trajectory, window) run
// through the concurrent engine, which pays the envelope preprocessing
// once and fans whole-MOD evaluation across a worker pool:
//
//	eng := repro.NewEngine(0)                               // one worker per CPU
//	res, _ := eng.ExecBatch(store, repro.BatchRequest{
//		QueryOID: 1, Tb: 0, Te: 60,
//		Queries: []repro.BatchQuery{{Kind: repro.KindUQ31}, {Kind: repro.KindUQ41, K: 2}},
//	})
//
// See examples/ for runnable programs and EXPERIMENTS.md for the
// benchmark harness regenerating the paper's figures. CI
// (.github/workflows/ci.yml) gates every push through the Makefile:
// gofmt, go vet, build, the race-detector test suite, and a benchmark
// smoke run.
package repro

import (
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/envelope"
	"repro/internal/mod"
	"repro/internal/prune"
	"repro/internal/queries"
	"repro/internal/trajectory"
	"repro/internal/uncertain"
	"repro/internal/updf"
	"repro/internal/uql"
	"repro/internal/workload"
)

// --- trajectories and stores (Section 2.1) ---

// Vertex is one (x, y, t) sample of a trajectory.
type Vertex = trajectory.Vertex

// Trajectory is a piecewise-linear motion plan with a unique object ID.
type Trajectory = trajectory.Trajectory

// UncertainTrajectory augments a trajectory with the uncertainty-disk
// radius and location pdf.
type UncertainTrajectory = trajectory.Uncertain

// NewTrajectory constructs a validated trajectory.
func NewTrajectory(oid int64, verts []Vertex) (*Trajectory, error) {
	return trajectory.New(oid, verts)
}

// Store is a concurrent Moving Objects Database sharing one uncertainty
// model across its trajectories.
type Store = mod.Store

// PDFSpec describes a serializable location pdf.
type PDFSpec = mod.PDFSpec

// PDF kinds for PDFSpec.
const (
	PDFUniform         = mod.PDFUniform
	PDFBoundedGaussian = mod.PDFBoundedGaussian
	PDFEpanechnikov    = mod.PDFEpanechnikov
)

// NewStore creates a MOD store with the given uncertainty model.
func NewStore(spec PDFSpec) (*Store, error) { return mod.NewStore(spec) }

// NewUniformStore creates a MOD store with the paper's default model:
// uniform location pdf inside a disk of radius r.
func NewUniformStore(r float64) (*Store, error) { return mod.NewUniformStore(r) }

// --- workload (Section 5) ---

// WorkloadConfig parameterizes the random-waypoint generator.
type WorkloadConfig = workload.Config

// DefaultWorkload returns the paper's evaluation setup (40×40 mi²,
// 15-60 mph, 60 min, synchronous velocity changes).
func DefaultWorkload(seed int64) WorkloadConfig { return workload.DefaultConfig(seed) }

// SingleSegmentWorkload is DefaultWorkload without velocity changes.
func SingleSegmentWorkload(seed int64) WorkloadConfig { return workload.SingleSegmentConfig(seed) }

// GenerateWorkload produces n random-waypoint trajectories.
func GenerateWorkload(c WorkloadConfig, n int) ([]*Trajectory, error) {
	return workload.Generate(c, n)
}

// --- location pdfs and instantaneous probabilities (Sections 2.2, 3.1) ---

// RadialPDF is a rotationally symmetric location pdf.
type RadialPDF = updf.RadialPDF

// UniformDiskPDF returns the paper's default uniform location pdf.
func UniformDiskPDF(r float64) RadialPDF { return updf.NewUniformDisk(r) }

// BoundedGaussianPDF returns a Gaussian truncated to radius r.
func BoundedGaussianPDF(r, sigma float64) RadialPDF { return updf.NewBoundedGaussian(r, sigma) }

// ConePDF returns the paper's Eq. 7 cone (base radius 2r when modelling
// the convolution of two uniform disks of radius r).
func ConePDF(baseRadius float64) RadialPDF { return updf.NewCone(baseRadius) }

// Convolve returns the pdf of the difference of two independent locations
// (analytic for uniforms, numeric otherwise) — the Section 3.1
// transformation.
func Convolve(a, b RadialPDF) (RadialPDF, error) { return updf.ConvolvePair(a, b, 0) }

// Candidate pairs an object ID with its center distance from the query.
type Candidate = uncertain.Candidate

// NNProbabilities evaluates Eq. 5: the probability of each candidate being
// the nearest neighbor of a crisp query at the origin.
func NNProbabilities(p RadialPDF, cands []Candidate) map[int64]float64 {
	return uncertain.NNProbabilities(p, cands, 0)
}

// UncertainQueryNN ranks candidates when the query itself is uncertain via
// the convolution reduction (Theorem 1: the ranking is exact; see the
// internal documentation for the value-approximation caveat).
func UncertainQueryNN(objPDF, qryPDF RadialPDF, cands []Candidate) (map[int64]float64, error) {
	return uncertain.UncertainQueryNN(objPDF, qryPDF, cands, 0)
}

// --- the IPAC-NN tree (Sections 1, 3.2) ---

// TreeConfig tunes IPAC-NN construction.
type TreeConfig = core.Config

// IPACNNTree is the interval tree answering a continuous probabilistic NN
// query.
type IPACNNTree = core.Tree

// TreeNode is one node of the IPAC-NN tree.
type TreeNode = core.Node

// BuildIPACNN runs Algorithm 3 for query trajectory q over [tb, te] with
// shared uncertainty radius r and location pdf (nil = uniform).
func BuildIPACNN(trs []*Trajectory, q *Trajectory, tb, te, r float64, pdf RadialPDF, cfg TreeConfig) (*IPACNNTree, error) {
	return core.Build(trs, q, tb, te, r, pdf, cfg)
}

// --- continuous query variants (Section 4) ---

// QueryProcessor answers the UQ11..UQ43 query variants after O(N log N)
// envelope preprocessing.
type QueryProcessor = queries.Processor

// NewQueryProcessor builds the preprocessing for query trajectory q over
// [tb, te] with uncertainty radius r, scanning the full trajectory set.
func NewQueryProcessor(trs []*Trajectory, q *Trajectory, tb, te, r float64) (*QueryProcessor, error) {
	return queries.NewProcessor(trs, q, tb, te, r)
}

// NewIndexedQueryProcessor builds the same preprocessing against a store,
// first consulting the store's lazily maintained spatial index to discard
// objects that provably cannot enter the 4r pruning zone anywhere in the
// window. Answers are identical to NewQueryProcessor's for every query
// variant; only the work to produce them shrinks with the survivor count.
func NewIndexedQueryProcessor(store *Store, qOID int64, tb, te float64) (*QueryProcessor, error) {
	return prune.NewProcessor(store, qOID, tb, te)
}

// PruneStats describes one index candidate pre-pass (candidates seen,
// survivors kept, slices and probes spent).
type PruneStats = prune.Stats

// PruneCandidates runs the index candidate pre-pass alone: the sorted
// conservative superset of objects that can have non-zero NN probability
// for query trajectory q somewhere in [tb, te], plus pass statistics.
func PruneCandidates(store *Store, q *Trajectory, tb, te float64) ([]int64, PruneStats, error) {
	return prune.Candidates(store, q, tb, te)
}

// TimeInterval is a closed time interval.
type TimeInterval = envelope.TimeInterval

// ThresholdConfig tunes the continuous threshold-NN queries (the paper's
// Section 7 future-work item), available as methods on QueryProcessor:
// ProbabilitySeries, AboveThresholdIntervals, ThresholdNN, ThresholdNNAll,
// MaxProbability.
type ThresholdConfig = queries.ThresholdConfig

// HeteroQueryProcessor answers possible-NN questions when objects carry
// different uncertainty radii (Section 7 future work).
type HeteroQueryProcessor = queries.HeteroProcessor

// NewHeteroQueryProcessor builds the heterogeneous-radii processor; radii
// maps every OID (including the query's) to its uncertainty radius.
func NewHeteroQueryProcessor(trs []*Trajectory, q *Trajectory, tb, te float64, radii map[int64]float64) (*HeteroQueryProcessor, error) {
	return queries.NewHeteroProcessor(trs, q, tb, te, radii)
}

// AllPairsPossibleNN computes every object's possible-NN set over the
// window (Section 7 future work: all-pairs continuous probabilistic NN).
func AllPairsPossibleNN(trs []*Trajectory, tb, te, r float64) (map[int64][]int64, error) {
	return queries.AllPairsPossibleNN(trs, tb, te, r)
}

// ReversePossibleNN returns the objects for which the target can be the
// nearest neighbor (reverse continuous probabilistic NN, Section 7 future
// work).
func ReversePossibleNN(trs []*Trajectory, target *Trajectory, tb, te, r float64) ([]int64, error) {
	return queries.ReversePossibleNN(trs, target, tb, te, r)
}

// KNNProbabilities generalizes Eq. 5 to top-k membership: the probability
// of each candidate being among the k nearest to a crisp query at the
// origin.
func KNNProbabilities(p RadialPDF, cands []Candidate, k int) map[int64]float64 {
	return uncertain.KNNProbabilities(p, cands, k, 0)
}

// --- concurrent batch query engine ---

// Engine is the concurrent batch query engine: whole-MOD query variants
// fan per-object candidate checks across a worker pool, and batches of
// variants against the same (query trajectory, window) share one envelope
// preprocessing through a keyed memo. Engines are safe for concurrent use
// and meant to be long-lived (one per server).
type Engine = engine.Engine

// BatchRequest is a batch of query variants sharing one query trajectory
// and window.
type BatchRequest = engine.BatchRequest

// BatchResult holds one item per requested query, in request order.
type BatchResult = engine.BatchResult

// BatchQuery is one variant in a batch.
type BatchQuery = engine.Query

// BatchAnswer is the result of one query in a batch.
type BatchAnswer = engine.Item

// QueryKind names a query variant for the batch engine.
type QueryKind = engine.Kind

// Batch query kinds (the paper's Section 4 variants plus fixed-time
// instants).
const (
	KindUQ11      = engine.KindUQ11
	KindUQ12      = engine.KindUQ12
	KindUQ13      = engine.KindUQ13
	KindUQ21      = engine.KindUQ21
	KindUQ22      = engine.KindUQ22
	KindUQ23      = engine.KindUQ23
	KindUQ31      = engine.KindUQ31
	KindUQ32      = engine.KindUQ32
	KindUQ33      = engine.KindUQ33
	KindUQ41      = engine.KindUQ41
	KindUQ42      = engine.KindUQ42
	KindUQ43      = engine.KindUQ43
	KindNNAt      = engine.KindNNAt
	KindRankAt    = engine.KindRankAt
	KindAllNNAt   = engine.KindAllNNAt
	KindAllRankAt = engine.KindAllRankAt
)

// NewEngine creates a batch engine; workers <= 0 means one per CPU. The
// index-accelerated candidate pre-pass is on by default; see EngineOptions.
func NewEngine(workers int) *Engine { return engine.New(workers) }

// EngineOptions tunes batch-engine construction (worker-pool size, and a
// FullScan switch that disables the index candidate pre-pass for
// benchmarking).
type EngineOptions = engine.Options

// NewEngineWith creates a batch engine from explicit options.
func NewEngineWith(o EngineOptions) *Engine { return engine.NewWith(o) }

// --- UQL (Section 4's SQL sketch) ---

// UQLResult is the outcome of a UQL statement.
type UQLResult = uql.Result

// RunUQL parses and evaluates a UQL statement against a store, e.g.
//
//	SELECT T FROM MOD WHERE EXISTS Time IN [0, 60] AND ProbabilityNN(T, 5, Time) > 0
func RunUQL(query string, store *Store) (UQLResult, error) { return uql.Run(query, store) }

// UQLBatchItem is one statement's outcome in a multi-statement script.
type UQLBatchItem = uql.BatchItem

// RunUQLBatch evaluates a multi-statement UQL script through the batch
// engine: statements sharing a query trajectory and window share one
// preprocessing, and whole-MOD statements evaluate in parallel. A nil
// engine degrades to serial per-statement evaluation.
func RunUQLBatch(queries []string, store *Store, eng *Engine) []UQLBatchItem {
	return uql.RunBatch(queries, store, eng)
}

// ClusteredWorkloadConfig parameterizes the hotspot workload generator
// (extension experiment E4).
type ClusteredWorkloadConfig = workload.ClusterConfig

// GenerateClusteredWorkload produces n trajectories starting around random
// hotspots instead of uniformly.
func GenerateClusteredWorkload(c ClusteredWorkloadConfig, n int) ([]*Trajectory, error) {
	return workload.GenerateClustered(c, n)
}
