// Package repro is the public API of this reproduction of Trajcevski,
// Tamassia, Ding, Scheuermann and Cruz, "Continuous Probabilistic
// Nearest-Neighbor Queries for Uncertain Trajectories" (EDBT 2009).
//
// The facade re-exports the stable surface of the internal packages so
// downstream users never import repro/internal/...:
//
//   - trajectories and the MOD store (Section 2.1),
//   - the IPAC-NN tree (Sections 1, 3.2 — the paper's core contribution),
//   - the unified query API: one Request descriptor covering every
//     continuous query variant of Section 4 (and the Section 7
//     extensions), answered by Engine.Do / Engine.DoBatch with context
//     cancellation and per-query Explain provenance,
//   - the sharded serving layer: NewCluster / NewClusterRouter stand up a
//     Router that answers the same Request contract over K shards (local
//     or remote), byte-identically to a single engine via a two-phase NN
//     bound exchange,
//   - spatio-textual queries: trajectories carry attribute tag sets
//     (Store.SetTags, Update.Tags), a hybrid keyword index hangs inverted
//     tag postings off the spatial index, and any Request restricted by a
//     tag Predicate (Request.Where) answers byte-identically to running
//     the plain request over the matching sub-MOD — in UQL, `WHERE tags
//     CONTAINS ...`,
//   - live ingestion + continuous queries: stores accept plan revisions
//     and extensions (Update / Store.ApplyUpdates) with incremental index
//     maintenance and an optional predictive TPR index
//     (Store.EnablePredictive), and a LiveHub (NewLiveHub / NewClusterHub)
//     keeps standing Request subscriptions fresh across ingest batches,
//     emitting diff events and re-evaluating only what an update can
//     actually affect,
//   - durability and fault tolerance: a write-ahead log with periodic
//     snapshots and byte-identical crash recovery (CreateWAL / OpenWAL /
//     RecoverWAL, wired into cmd/modserver via -wal-dir / -resume),
//     per-subscription event replay behind LiveHub.Replay, and a cluster
//     serving layer that retries transient shard failures
//     (RetryPolicy) or, with ClusterOptions.Degraded, answers from the
//     reachable shards with Explain.Degraded provenance,
//   - production serving: the line-protocol server and client
//     (NewModServer / DialModServer, TLS and bearer-token capable) and
//     the HTTP+JSON gateway (NewGateway) — typed-error JSON responses,
//     SSE subscriptions with replay-backed resume, a committed OpenAPI
//     spec (OpenAPISpec), and a Prometheus text exposition
//     (NewGatewayMetrics); cmd/modserver serves both, and
//     docker-compose.yml stands up a 2-shard TLS cluster behind the
//     gateway,
//   - the UQL query language (the SQL sketch of Section 4), and
//   - the probabilistic machinery for instantaneous NN queries
//     (Sections 2.2, 3.1).
//
// Quickstart — every query is a Request, every answer a Result:
//
//	store, _ := repro.NewUniformStore(0.5)                  // r = 0.5 mi
//	trs, _ := repro.GenerateWorkload(repro.DefaultWorkload(42), 1000)
//	_ = store.InsertAll(trs)
//	eng := repro.NewEngine(0)                               // one worker per CPU
//	res, err := eng.Do(ctx, store, repro.Request{
//		Kind: repro.KindUQ31, QueryOID: 1, Tb: 0, Te: 60,   // "who can be NN of Tr1 this hour?"
//	})
//	fmt.Println(res.OIDs, res.Explain.Survivors, res.Explain.Wall)
//
// Batches share preprocessing per (query trajectory, window) and fan
// whole-MOD evaluation across the worker pool; cancel ctx to stop a batch
// between per-object tasks:
//
//	results, err := eng.DoBatch(ctx, store, []repro.Request{
//		{Kind: repro.KindUQ31, QueryOID: 1, Tb: 0, Te: 60},
//		{Kind: repro.KindUQ41, QueryOID: 1, Tb: 0, Te: 60, K: 2},
//	})
//
// The IPAC-NN tree remains the time-parameterized answer structure:
//
//	q, _ := store.Get(1)
//	tree, _ := repro.BuildIPACNN(store.All(), q, 0, 60, store.Radius(), nil, repro.TreeConfig{MaxLevels: 3})
//	fmt.Println(tree.AnswerAt(30))                          // highest-probability NN at t=30
//
// Served over HTTP, the same Request rides curl — `modserver serve`
// mounts the gateway on a local engine or a shard cluster (see
// docker-compose.yml for the 2-shard TLS deployment and
// EXPERIMENTS.md "Production serving" for the full walkthrough):
//
//	modserver serve -http :8080 -r 0.5 &
//	curl -X POST localhost:8080/v1/ingest \
//	    -d '{"updates":[{"oid":1,"verts":[[0,0,0],[10,10,60]]}]}'
//	curl -X POST localhost:8080/v1/query \
//	    -d '{"kind":"UQ31","query_oid":1,"tb":0,"te":60}'
//	curl -N "localhost:8080/v1/subscribe?kind=UQ31&query_oid=1&tb=0&te=60"
//	curl localhost:8080/metrics
//
// See examples/ for runnable programs, EXPERIMENTS.md for the benchmark
// harness (including the old-call → Request migration table), and CI
// (.github/workflows/ci.yml) gates every push through the Makefile:
// gofmt, go vet, staticcheck, build, the race-detector test suite, and
// benchmark smoke runs including the Engine.Do overhead gate.
package repro

import (
	"context"

	"repro/api/openapi"
	"repro/internal/cluster"
	"repro/internal/continuous"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/envelope"
	"repro/internal/faultinject"
	"repro/internal/gateway"
	"repro/internal/metrics"
	"repro/internal/mod"
	"repro/internal/modserver"
	"repro/internal/prune"
	"repro/internal/queries"
	"repro/internal/textidx"
	"repro/internal/trajectory"
	"repro/internal/uncertain"
	"repro/internal/updf"
	"repro/internal/uql"
	"repro/internal/wal"
	"repro/internal/workload"
)

// --- trajectories and stores (Section 2.1) ---

// Vertex is one (x, y, t) sample of a trajectory.
type Vertex = trajectory.Vertex

// Trajectory is a piecewise-linear motion plan with a unique object ID.
type Trajectory = trajectory.Trajectory

// UncertainTrajectory augments a trajectory with the uncertainty-disk
// radius and location pdf.
type UncertainTrajectory = trajectory.Uncertain

// NewTrajectory constructs a validated trajectory.
func NewTrajectory(oid int64, verts []Vertex) (*Trajectory, error) {
	return trajectory.New(oid, verts)
}

// Store is a concurrent Moving Objects Database sharing one uncertainty
// model across its trajectories.
type Store = mod.Store

// PDFSpec describes a serializable location pdf.
type PDFSpec = mod.PDFSpec

// PDF kinds for PDFSpec.
const (
	PDFUniform         = mod.PDFUniform
	PDFBoundedGaussian = mod.PDFBoundedGaussian
	PDFEpanechnikov    = mod.PDFEpanechnikov
)

// NewStore creates a MOD store with the given uncertainty model.
func NewStore(spec PDFSpec) (*Store, error) { return mod.NewStore(spec) }

// NewUniformStore creates a MOD store with the paper's default model:
// uniform location pdf inside a disk of radius r.
func NewUniformStore(r float64) (*Store, error) { return mod.NewUniformStore(r) }

// --- workload (Section 5) ---

// WorkloadConfig parameterizes the random-waypoint generator.
type WorkloadConfig = workload.Config

// DefaultWorkload returns the paper's evaluation setup (40×40 mi²,
// 15-60 mph, 60 min, synchronous velocity changes).
func DefaultWorkload(seed int64) WorkloadConfig { return workload.DefaultConfig(seed) }

// SingleSegmentWorkload is DefaultWorkload without velocity changes.
func SingleSegmentWorkload(seed int64) WorkloadConfig { return workload.SingleSegmentConfig(seed) }

// GenerateWorkload produces n random-waypoint trajectories.
func GenerateWorkload(c WorkloadConfig, n int) ([]*Trajectory, error) {
	return workload.Generate(c, n)
}

// --- location pdfs and instantaneous probabilities (Sections 2.2, 3.1) ---

// RadialPDF is a rotationally symmetric location pdf.
type RadialPDF = updf.RadialPDF

// UniformDiskPDF returns the paper's default uniform location pdf.
func UniformDiskPDF(r float64) RadialPDF { return updf.NewUniformDisk(r) }

// BoundedGaussianPDF returns a Gaussian truncated to radius r.
func BoundedGaussianPDF(r, sigma float64) RadialPDF { return updf.NewBoundedGaussian(r, sigma) }

// ConePDF returns the paper's Eq. 7 cone (base radius 2r when modelling
// the convolution of two uniform disks of radius r).
func ConePDF(baseRadius float64) RadialPDF { return updf.NewCone(baseRadius) }

// Convolve returns the pdf of the difference of two independent locations
// (analytic for uniforms, numeric otherwise) — the Section 3.1
// transformation.
func Convolve(a, b RadialPDF) (RadialPDF, error) { return updf.ConvolvePair(a, b, 0) }

// Candidate pairs an object ID with its center distance from the query.
type Candidate = uncertain.Candidate

// NNProbabilities evaluates Eq. 5: the probability of each candidate being
// the nearest neighbor of a crisp query at the origin.
func NNProbabilities(p RadialPDF, cands []Candidate) map[int64]float64 {
	return uncertain.NNProbabilities(p, cands, 0)
}

// UncertainQueryNN ranks candidates when the query itself is uncertain via
// the convolution reduction (Theorem 1: the ranking is exact; see the
// internal documentation for the value-approximation caveat).
func UncertainQueryNN(objPDF, qryPDF RadialPDF, cands []Candidate) (map[int64]float64, error) {
	return uncertain.UncertainQueryNN(objPDF, qryPDF, cands, 0)
}

// --- the IPAC-NN tree (Sections 1, 3.2) ---

// TreeConfig tunes IPAC-NN construction.
type TreeConfig = core.Config

// IPACNNTree is the interval tree answering a continuous probabilistic NN
// query.
type IPACNNTree = core.Tree

// TreeNode is one node of the IPAC-NN tree.
type TreeNode = core.Node

// BuildIPACNN runs Algorithm 3 for query trajectory q over [tb, te] with
// shared uncertainty radius r and location pdf (nil = uniform).
func BuildIPACNN(trs []*Trajectory, q *Trajectory, tb, te, r float64, pdf RadialPDF, cfg TreeConfig) (*IPACNNTree, error) {
	return core.Build(trs, q, tb, te, r, pdf, cfg)
}

// --- continuous query variants (Section 4) ---

// QueryProcessor answers the UQ11..UQ43 query variants after O(N log N)
// envelope preprocessing. Engine.Processor returns the memoized,
// index-pruned instance the unified API evaluates against — use that for
// interval-level introspection (PossibleNNIntervals, ProbabilitySeries,
// GuaranteedNNIntervals) beyond what a Request expresses.
type QueryProcessor = queries.Processor

// NewQueryProcessor builds the preprocessing for query trajectory q over
// [tb, te] with uncertainty radius r, scanning the full trajectory set.
//
// Deprecated: use Engine.Do with a Request (or Engine.Processor for
// interval-level access); it answers identically while consulting the
// store's spatial index and memoizing the preprocessing.
func NewQueryProcessor(trs []*Trajectory, q *Trajectory, tb, te, r float64) (*QueryProcessor, error) {
	return queries.NewProcessor(trs, q, tb, te, r)
}

// NewIndexedQueryProcessor builds the same preprocessing against a store,
// first consulting the store's lazily maintained spatial index to discard
// objects that provably cannot enter the 4r pruning zone anywhere in the
// window. Answers are identical to NewQueryProcessor's for every query
// variant; only the work to produce them shrinks with the survivor count.
//
// Deprecated: use Engine.Processor, which additionally memoizes the
// construction per (store version, query, window).
func NewIndexedQueryProcessor(store *Store, qOID int64, tb, te float64) (*QueryProcessor, error) {
	return prune.NewProcessor(store, qOID, tb, te)
}

// PruneStats describes one index candidate pre-pass (candidates seen,
// survivors kept, slices and probes spent).
type PruneStats = prune.Stats

// PruneCandidates runs the index candidate pre-pass alone: the sorted
// conservative superset of objects that can have non-zero NN probability
// for query trajectory q somewhere in [tb, te], plus pass statistics.
func PruneCandidates(store *Store, q *Trajectory, tb, te float64) ([]int64, PruneStats, error) {
	return prune.Candidates(store, q, tb, te)
}

// TimeInterval is a closed time interval.
type TimeInterval = envelope.TimeInterval

// ThresholdConfig tunes the continuous threshold-NN queries (the paper's
// Section 7 future-work item), available as methods on QueryProcessor:
// ProbabilitySeries, AboveThresholdIntervals, ThresholdNN, ThresholdNNAll,
// MaxProbability.
type ThresholdConfig = queries.ThresholdConfig

// HeteroQueryProcessor answers possible-NN questions when objects carry
// different uncertainty radii (Section 7 future work).
type HeteroQueryProcessor = queries.HeteroProcessor

// NewHeteroQueryProcessor builds the heterogeneous-radii processor; radii
// maps every OID (including the query's) to its uncertainty radius.
func NewHeteroQueryProcessor(trs []*Trajectory, q *Trajectory, tb, te float64, radii map[int64]float64) (*HeteroQueryProcessor, error) {
	return queries.NewHeteroProcessor(trs, q, tb, te, radii)
}

// AllPairsPossibleNN computes every object's possible-NN set over the
// window (Section 7 future work: all-pairs continuous probabilistic NN).
//
// Deprecated: use Engine.Do with Kind KindAllPairs against a Store — it
// answers identically (index-pruned, parallel across query objects) and
// supports cancellation. This wrapper stages trs into a transient store
// and delegates.
func AllPairsPossibleNN(trs []*Trajectory, tb, te, r float64) (map[int64][]int64, error) {
	store, err := transientStore(trs, r)
	if err != nil {
		return nil, err
	}
	res, err := NewEngine(0).Do(context.Background(), store, Request{Kind: KindAllPairs, Tb: tb, Te: te})
	if err != nil {
		return nil, err
	}
	return res.Pairs, nil
}

// ReversePossibleNN returns the objects for which the target can be the
// nearest neighbor (reverse continuous probabilistic NN, Section 7 future
// work).
//
// Deprecated: use Engine.Do with Kind KindReverse against a Store. This
// wrapper stages trs into a transient store and delegates.
func ReversePossibleNN(trs []*Trajectory, target *Trajectory, tb, te, r float64) ([]int64, error) {
	store, err := transientStore(trs, r)
	if err != nil {
		return nil, err
	}
	res, err := NewEngine(0).Do(context.Background(), store, Request{Kind: KindReverse, Tb: tb, Te: te, OID: target.OID})
	if err != nil {
		return nil, err
	}
	return res.OIDs, nil
}

// transientStore stages a trajectory slice behind the store-based unified
// API for the deprecated slice-based wrappers.
func transientStore(trs []*Trajectory, r float64) (*Store, error) {
	store, err := NewUniformStore(r)
	if err != nil {
		return nil, err
	}
	if err := store.InsertAll(trs); err != nil {
		return nil, err
	}
	return store, nil
}

// KNNProbabilities generalizes Eq. 5 to top-k membership: the probability
// of each candidate being among the k nearest to a crisp query at the
// origin.
func KNNProbabilities(p RadialPDF, cands []Candidate, k int) map[int64]float64 {
	return uncertain.KNNProbabilities(p, cands, k, 0)
}

// --- the unified query API ---

// Engine is the concurrent query engine, the single execution route of
// the system: every query variant is a Request answered by Do/DoBatch.
// Whole-MOD variants fan per-object candidate checks across a worker
// pool, requests against the same (query trajectory, window) share one
// envelope preprocessing through an LRU memo keyed on the store version,
// and context cancellation is honored between per-object tasks, between
// batch members, and inside the preprocessing. Engines are safe for
// concurrent use and meant to be long-lived (one per server).
type Engine = engine.Engine

// Request is the declarative descriptor of one query — flat and
// JSON-serializable, the contract a shard router or network proxy
// forwards verbatim. See the Kind constants for the variants and
// Request.Validate for the centralized parameter/window checks.
type Request = engine.Request

// Result is the unified answer envelope: the answer (Bool, OIDs or
// Pairs), the per-query Explain provenance, and the per-request error.
type Result = engine.Result

// Explain is the per-query execution provenance: candidate and prune
// survivor counts, envelope (memo) reuse, worker count, wall time — and,
// on predicate-restricted requests, the textual-vs-spatial candidate
// split (TextualCandidates, SpatialCandidates).
type Explain = engine.Explain

// Predicate restricts a Request to the sub-MOD of objects whose tag
// sets satisfy it (Request.Where): an object matches when it carries
// every All tag, at least one Any tag (when that list is non-empty),
// and none of the Not tags. The answer is byte-identical to running the
// plain request against a store holding only the matching trajectories
// (the query trajectory itself is exempt). At least one list must be
// non-empty; a nil *Predicate means unfiltered.
type Predicate = textidx.Predicate

// CanonTags canonicalizes a tag set the way stores and predicates do:
// lowercased, sorted, deduplicated. It rejects empty, over-long, or
// whitespace-bearing tags with ErrBadTag.
func CanonTags(tags []string) ([]string, error) { return textidx.CanonTags(tags) }

// Typed error taxonomy of the unified API: one identity per failure,
// matchable with errors.Is across every entry point.
var (
	ErrBadKind      = engine.ErrBadKind
	ErrBadWindow    = engine.ErrBadWindow
	ErrUnknownOID   = engine.ErrUnknownOID
	ErrBadRank      = engine.ErrBadRank
	ErrBadFrac      = engine.ErrBadFrac
	ErrNoEngine     = engine.ErrNoEngine
	ErrBadPredicate = engine.ErrBadPredicate
	ErrBadTag       = textidx.ErrBadTag
)

// BatchRequest is a batch of query variants sharing one query trajectory
// and window.
//
// Deprecated: use []Request with Engine.DoBatch.
type BatchRequest = engine.BatchRequest

// BatchResult holds one item per requested query, in request order.
//
// Deprecated: use []Result from Engine.DoBatch.
type BatchResult = engine.BatchResult

// BatchQuery is one variant in a batch.
//
// Deprecated: use Request.
type BatchQuery = engine.Query

// BatchAnswer is the result of one query in a batch.
//
// Deprecated: use Result.
type BatchAnswer = engine.Item

// QueryKind names a query variant for the engine.
type QueryKind = engine.Kind

// Query kinds: the paper's Section 4 variants, fixed-time instants, and
// the Section 7 extensions (threshold, all-pairs, reverse).
const (
	KindUQ11         = engine.KindUQ11
	KindUQ12         = engine.KindUQ12
	KindUQ13         = engine.KindUQ13
	KindUQ21         = engine.KindUQ21
	KindUQ22         = engine.KindUQ22
	KindUQ23         = engine.KindUQ23
	KindUQ31         = engine.KindUQ31
	KindUQ32         = engine.KindUQ32
	KindUQ33         = engine.KindUQ33
	KindUQ41         = engine.KindUQ41
	KindUQ42         = engine.KindUQ42
	KindUQ43         = engine.KindUQ43
	KindNNAt         = engine.KindNNAt
	KindRankAt       = engine.KindRankAt
	KindAllNNAt      = engine.KindAllNNAt
	KindAllRankAt    = engine.KindAllRankAt
	KindThreshold    = engine.KindThreshold
	KindAllThreshold = engine.KindAllThreshold
	KindAllPairs     = engine.KindAllPairs
	KindReverse      = engine.KindReverse
)

// NewEngine creates a query engine; workers <= 0 means one per CPU. The
// index-accelerated candidate pre-pass is on by default; see EngineOptions.
func NewEngine(workers int) *Engine { return engine.New(workers) }

// EngineOptions tunes engine construction (worker-pool size, and a
// FullScan switch that disables the index candidate pre-pass for
// benchmarking).
type EngineOptions = engine.Options

// NewEngineWith creates a query engine from explicit options.
func NewEngineWith(o EngineOptions) *Engine { return engine.NewWith(o) }

// --- sharded serving (the cluster scatter-gather layer) ---

// Router serves the Engine.Do/DoBatch contract over K shards: requests
// scatter, NN-family kinds run a two-phase bound exchange (shards report
// per-slice envelope upper bounds, the router mins them into a global
// bound, shards sweep survivors against it), and the router refines the
// gathered survivors centrally — answers are byte-identical to a
// single-store engine, with Explain carrying per-shard provenance
// (Shards, ShardExplains).
type Router = cluster.Router

// ClusterShard is one partition of the MOD: in-process (NewLocalShard)
// or a remote modserver (NewRemoteShard).
type ClusterShard = cluster.Shard

// ClusterOptions tunes router construction (partitioner, refinement
// engine).
type ClusterOptions = cluster.Options

// Partitioner decides which shard holds a trajectory.
type Partitioner = cluster.Partitioner

// HashPartitioner places by a mixed hash of the OID (the default).
type HashPartitioner = cluster.Hash

// GridPartitioner places by the spatial cell of the first vertex, so
// co-located objects share shards.
type GridPartitioner = cluster.Grid

// NewCluster splits a store into n in-process shards and returns a
// router over them — the one-call path from a single store to sharded
// serving:
//
//	router, _ := repro.NewCluster(store, 4, repro.ClusterOptions{})
//	res, _ := router.Do(ctx, repro.Request{Kind: repro.KindUQ31, QueryOID: 1, Tb: 0, Te: 60})
func NewCluster(store *Store, n int, opts ClusterOptions) (*Router, error) {
	return cluster.NewLocalCluster(store, n, opts)
}

// NewClusterRouter builds a router over an explicit shard set (local,
// remote, or mixed). ctx bounds the construction round trips.
func NewClusterRouter(ctx context.Context, shards []ClusterShard, opts ClusterOptions) (*Router, error) {
	return cluster.NewRouter(ctx, shards, opts)
}

// NewLocalShard wraps an in-process store as a shard.
func NewLocalShard(name string, store *Store) ClusterShard {
	return cluster.NewLocalShard(name, store)
}

// NewRemoteShard names a shard served by a modserver at addr (dialed
// lazily; see cmd/modserver for the serving side).
func NewRemoteShard(name, addr string) ClusterShard {
	return cluster.NewRemoteShard(name, addr)
}

// SplitStore partitions a store's contents into n new stores sharing its
// uncertainty model (nil partitioner = hash by OID) — the loader-side
// helper for standing up shard servers.
func SplitStore(store *Store, n int, part Partitioner) ([]*Store, error) {
	return cluster.SplitStore(store, n, part)
}

// --- live ingestion + continuous queries ---

// Update is one live ingest item: new vertices for an object — a plan
// revision from the first vertex's time on when the object exists (a
// pure extension when it is past the plan end), an insert otherwise.
// Store.ApplyUpdate / ApplyUpdates apply them directly; a LiveHub applies
// them while keeping standing subscriptions fresh. The store also
// maintains its spatial indexes incrementally across these mutations
// (Store.ExtendTrajectory, Store.RevisePlan, Store.EnablePredictive).
type Update = mod.Update

// AppliedUpdate describes one applied live update: whether it inserted,
// the time its object's motion changed from, and the superseded and new
// plans.
type AppliedUpdate = mod.Applied

// LiveHub owns standing Request subscriptions over a live MOD: Subscribe
// registers a query and returns its initial answer, Ingest applies an
// update batch and re-evaluates only the subscriptions the batch can
// affect (a dirty set keyed on each query's envelope-zone fingerprint),
// emitting diff events:
//
//	hub := repro.NewLiveHub(store, eng)
//	id, initial, _ := hub.Subscribe(ctx, repro.Request{Kind: repro.KindUQ31, QueryOID: 1, Tb: 0, Te: 60})
//	_, events, _ := hub.Ingest(ctx, []repro.Update{{OID: 7, Verts: newPlan}})
//	// events[i].Added / .Removed diff the standing answers that changed.
type LiveHub = continuous.Hub

// LiveEvent is one subscription's diff after an ingest batch.
type LiveEvent = continuous.Event

// LiveStats counts a hub's re-evaluations versus dirty-set skips.
type LiveStats = continuous.Stats

// NewLiveHub mounts a continuous-query hub on a single store + engine
// (nil engine: one worker per CPU).
func NewLiveHub(store *Store, eng *Engine) *LiveHub {
	return continuous.NewEngineHub(store, eng)
}

// NewClusterHub mounts a continuous-query hub on a sharded router:
// ingests route to the owning shards by the partitioner, and
// subscription freshness rides the same two-phase bound exchange the
// query path uses — events are byte-identical to a single-store hub over
// the union of the shards.
func NewClusterHub(router *Router) *LiveHub {
	return cluster.NewRouterHub(router)
}

// LiveHubOptions tunes a hub's durability-adjacent knobs — today the
// per-subscription event backlog bound behind LiveHub.Replay.
type LiveHubOptions = continuous.HubOptions

// NewLiveHubWith mounts a single-store hub with explicit options.
func NewLiveHubWith(store *Store, eng *Engine, o LiveHubOptions) *LiveHub {
	return continuous.NewEngineHubWith(store, eng, o)
}

// ErrEventGap reports a replay request behind a truncated event backlog:
// the missed events are gone, so the subscriber must re-read its full
// answer instead of patching diffs.
var ErrEventGap = continuous.ErrEventGap

// --- durability (write-ahead log + crash recovery) ---

// WAL is an open write-ahead log: Append journals each applied ingest
// batch, AfterApply drives the periodic-snapshot policy, and the
// directory recovers byte-identically after a crash. It satisfies the
// modserver journal contract, so a serving process persists every
// acknowledged mutation (see cmd/modserver's -wal-dir / -resume).
type WAL = wal.Log

// WALOptions tunes durability (fsync per append) and the snapshot
// rotation cadence.
type WALOptions = wal.Options

// WALRecoverInfo describes what a recovery found: the snapshot
// generation, batches replayed on top, and whether a torn tail was
// truncated away.
type WALRecoverInfo = wal.RecoverInfo

// CreateWAL initializes dir with a snapshot of store and an empty log.
func CreateWAL(dir string, store *Store, o WALOptions) (*WAL, error) {
	return wal.Create(dir, store, o)
}

// OpenWAL recovers dir and returns the log positioned to continue,
// alongside the recovered store.
func OpenWAL(dir string, o WALOptions) (*WAL, *Store, WALRecoverInfo, error) {
	return wal.Open(dir, o)
}

// RecoverWAL rebuilds the store from dir without opening the log for
// writing — the read-only restart path.
func RecoverWAL(dir string) (*Store, WALRecoverInfo, error) {
	return wal.Recover(dir)
}

// --- fault-tolerant cluster serving ---

// RemoteShardOptions tunes a remote shard's transport: a custom dialer
// (fault injection, proxies) and the retry policy for idempotent calls.
type RemoteShardOptions = cluster.RemoteOptions

// RetryPolicy bounds a remote shard's retries: attempts, exponential
// backoff with jitter, and a per-attempt timeout.
type RetryPolicy = cluster.RetryPolicy

// NewRemoteShardWith names a shard served by a modserver at addr with
// explicit transport options.
func NewRemoteShardWith(name, addr string, o RemoteShardOptions) ClusterShard {
	return cluster.NewRemoteShardWith(name, addr, o)
}

// ErrShardUnavailable matches (errors.Is) any shard transport failure —
// refused dials, lost connections — after the shard's retry budget is
// spent. ShardUnavailableError carries the shard's identity.
var ErrShardUnavailable = cluster.ErrShardUnavailable

// ShardUnavailableError is the typed unavailability failure: which shard
// (index and name) and the underlying transport error.
type ShardUnavailableError = cluster.ShardUnavailableError

// FaultPlan declares a deterministic fault mix for chaos testing:
// refused dials, dropped connections, injected latency.
type FaultPlan = faultinject.Plan

// FaultInjector dials connections through a FaultPlan — wire its Dial
// into RemoteShardOptions to chaos-test a cluster without real network
// failures.
type FaultInjector = faultinject.Injector

// NewFaultInjector seeds an injector; the same seed and operation
// sequence reproduce the same faults.
func NewFaultInjector(seed int64, plan FaultPlan) *FaultInjector {
	return faultinject.New(seed, plan)
}

// --- production serving (line protocol + HTTP gateway + metrics) ---

// ModServer serves a store over a TCP listener with the line-delimited
// JSON protocol (insert/get/query/subscribe/ingest; see
// internal/modserver's package doc). Wrap the listener with
// tls.NewListener for TLS; Options.Token requires every connection to
// authenticate before its first operation.
type ModServer = modserver.Server

// ModServerOptions hardens a serving process: read/write deadlines,
// request-line caps, the WAL journal hook, and the bearer token.
type ModServerOptions = modserver.Options

// NewModServer builds a line-protocol server over a store and engine
// (nil engine: one worker per CPU).
func NewModServer(store *Store, eng *Engine, o ModServerOptions) *ModServer {
	return modserver.NewServerWith(store, eng, o)
}

// ModClient is the synchronous line-protocol client; open one per
// goroutine.
type ModClient = modserver.Client

// ModDialOptions carries the client-side transport security: a TLS
// config and the bearer token.
type ModDialOptions = modserver.DialOptions

// DialModServer connects to a modserver, completing the TLS handshake
// and token authentication before returning.
func DialModServer(addr string, o ModDialOptions) (*ModClient, error) {
	return modserver.DialWith(addr, o)
}

// Gateway is the production HTTP+JSON serving layer: POST /v1/query and
// /v1/batch carry Request/Result verbatim with the typed error taxonomy
// mapped to status codes, POST /v1/ingest applies live updates through
// the hub (write-ahead durable when a journal is wired), GET
// /v1/subscribe streams subscription diffs as Server-Sent Events with
// Last-Event-ID/from_seq resume, and /metrics, /healthz, /readyz and
// /openapi.yaml serve operations. See internal/gateway and the
// committed api/openapi/gateway.yaml.
type Gateway = gateway.Server

// GatewayOptions configures a Gateway: the backend (EngineGatewayBackend
// or a cluster Router), the live hub, TLS-agnostic token auth, body and
// deadline caps, and the metrics surface.
type GatewayOptions = gateway.Options

// GatewayBackend answers /v1/query and /v1/batch: a local engine
// (EngineGatewayBackend) or a sharded Router.
type GatewayBackend = gateway.Backend

// EngineGatewayBackend adapts a local engine over one store to the
// gateway's backend contract.
type EngineGatewayBackend = gateway.EngineBackend

// NewGateway builds the HTTP gateway; serve it with Gateway.Serve (wrap
// the listener with tls.NewListener for HTTPS) and stop it with
// Gateway.Shutdown, which drains in-flight requests and severs SSE
// streams (their subscriptions stay resumable).
func NewGateway(o GatewayOptions) (*Gateway, error) { return gateway.New(o) }

// GatewayMetrics aggregates the serving metric families — HTTP traffic,
// query outcomes and Explain provenance, SSE stream churn, ingest and
// hub/WAL counters — on one registry, exposed at GET /metrics in
// Prometheus text format.
type GatewayMetrics = gateway.Metrics

// NewGatewayMetrics registers the gateway families on reg (a fresh
// registry when nil).
func NewGatewayMetrics(reg *MetricsRegistry) *GatewayMetrics { return gateway.NewMetrics(reg) }

// MetricsRegistry is the dependency-free Prometheus registry
// (text exposition format 0.0.4) behind the gateway's /metrics.
type MetricsRegistry = metrics.Registry

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.New() }

// OpenAPISpec is the committed OpenAPI 3.0 document describing the
// gateway's HTTP surface; the gateway serves it at GET /openapi.yaml.
var OpenAPISpec = openapi.Spec

// --- UQL (Section 4's SQL sketch) ---

// UQLResult is the outcome of a UQL statement.
type UQLResult = uql.Result

// RunUQL parses and evaluates a UQL statement against a store, e.g.
//
//	SELECT T FROM MOD WHERE EXISTS Time IN [0, 60] AND ProbabilityNN(T, 5, Time) > 0
//
// The statement compiles to a Request and evaluates through the unified
// engine route (serially).
//
// Deprecated: use CompileUQL with Engine.Do (or RunUQLBatch with an
// engine) for parallel evaluation, Explain stats and cancellation.
func RunUQL(query string, store *Store) (UQLResult, error) { return uql.Run(query, store) }

// CompileUQL parses a UQL statement of the possible-NN family and
// compiles it to the unified Request. ok is false for the threshold
// (`> p`) and CertainNN predicates, which have no Request kind yet and
// evaluate through RunUQL/RunUQLBatch.
func CompileUQL(query string) (Request, bool, error) {
	st, err := uql.Parse(query)
	if err != nil {
		return Request{}, false, err
	}
	req, ok := uql.Compile(st)
	return req, ok, nil
}

// UQLBatchItem is one statement's outcome in a multi-statement script.
type UQLBatchItem = uql.BatchItem

// RunUQLBatch evaluates a multi-statement UQL script through the engine:
// each statement compiles to a Request, statements sharing a query
// trajectory and window share one preprocessing, and whole-MOD statements
// evaluate in parallel. A nil engine evaluates serially.
//
// Deprecated: compile statements with CompileUQL and use Engine.DoBatch,
// which adds Explain stats and context cancellation.
func RunUQLBatch(queries []string, store *Store, eng *Engine) []UQLBatchItem {
	return uql.RunBatch(queries, store, eng)
}

// ClusteredWorkloadConfig parameterizes the hotspot workload generator
// (extension experiment E4).
type ClusteredWorkloadConfig = workload.ClusterConfig

// GenerateClusteredWorkload produces n trajectories starting around random
// hotspots instead of uniformly.
func GenerateClusteredWorkload(c ClusteredWorkloadConfig, n int) ([]*Trajectory, error) {
	return workload.GenerateClustered(c, n)
}
