#!/usr/bin/env bash
# Generate a throwaway development CA plus one node certificate whose
# SANs cover the compose service names and localhost. Every node (both
# shards and the gateway) shares the certificate; clients verify against
# ca.pem. Nothing here is production PKI — it exists so the compose
# cluster and the quickstart run with TLS verification actually on.
set -euo pipefail

dir="${1:-certs}"
mkdir -p "$dir"

if [ -f "$dir/ca.pem" ] && [ -f "$dir/node.pem" ] && [ -f "$dir/node.key" ]; then
	echo "gen-certs: $dir already populated; delete it to regenerate"
	exit 0
fi

openssl req -x509 -newkey ec -pkeyopt ec_paramgen_curve:P-256 -nodes \
	-keyout "$dir/ca.key" -out "$dir/ca.pem" -days 30 \
	-subj "/CN=repro-dev-ca" >/dev/null 2>&1

openssl req -newkey ec -pkeyopt ec_paramgen_curve:P-256 -nodes \
	-keyout "$dir/node.key" -out "$dir/node.csr" \
	-subj "/CN=repro-node" >/dev/null 2>&1

extfile="$dir/san.ext"
printf 'subjectAltName=DNS:shard0,DNS:shard1,DNS:gateway,DNS:localhost,IP:127.0.0.1\n' > "$extfile"
openssl x509 -req -in "$dir/node.csr" -CA "$dir/ca.pem" -CAkey "$dir/ca.key" \
	-CAcreateserial -out "$dir/node.pem" -days 30 -extfile "$extfile" >/dev/null 2>&1
rm -f "$dir/node.csr" "$extfile" "$dir/ca.srl"

# The distroless containers run as nonroot; the key must be readable.
chmod 644 "$dir"/*.key "$dir"/*.pem
echo "gen-certs: wrote $dir/ca.pem and $dir/node.pem (+keys)"
