#!/usr/bin/env bash
# End-to-end smoke for the compose cluster (the CI `serve` job): build
# the image, stand up 2 TLS shards behind the TLS gateway, then drive
# the production loop from outside — authenticated query scattered to
# both shards, SSE subscription, live ingest producing a diff event,
# 401 on a missing token, and a non-zero /metrics surface. Compose logs
# land in compose-logs.txt for the failure artifact.
set -euo pipefail
cd "$(dirname "$0")/.."

GW="${GW:-https://localhost:8443}"
GW_TOKEN="${GATEWAY_TOKEN:-gw-secret}"
AUTH=(-H "Authorization: Bearer $GW_TOKEN")
CA=(--cacert certs/ca.pem)

./scripts/gen-certs.sh certs
docker compose up -d --build

cleanup() {
	docker compose logs --no-color > compose-logs.txt 2>&1 || true
	docker compose down -v >/dev/null 2>&1 || true
}
trap cleanup EXIT

echo "smoke: waiting for the gateway to become ready"
ready=""
for _ in $(seq 1 60); do
	if curl -s "${CA[@]}" "$GW/readyz" 2>/dev/null | grep -q ready; then
		ready=1
		break
	fi
	sleep 1
done
[ -n "$ready" ] || { echo "smoke: gateway never became ready"; exit 1; }

echo "smoke: unauthenticated query is refused"
code=$(curl -s "${CA[@]}" -o /dev/null -w '%{http_code}' -X POST "$GW/v1/query" -d '{}')
[ "$code" = "401" ] || { echo "smoke: want 401 without token, got $code"; exit 1; }

echo "smoke: ingest seeds the cluster"
seed='{"updates":[
  {"oid":1,"verts":[[0,0,0],[10,10,100]]},
  {"oid":2,"verts":[[5,0,0],[5,10,100]]},
  {"oid":3,"verts":[[1,1,0],[9,9,100]]}]}'
curl -sS "${CA[@]}" "${AUTH[@]}" -X POST "$GW/v1/ingest" -d "$seed" \
	| grep -q '"inserted":true' || { echo "smoke: ingest failed"; exit 1; }

echo "smoke: TLS query scatters to both shards"
q='{"kind":"NN@","query_oid":1,"oid":2,"tb":0,"te":50,"t":50}'
out=$(curl -sS "${CA[@]}" "${AUTH[@]}" -X POST "$GW/v1/query" -d "$q")
echo "$out" | grep -q '"shards":2' || { echo "smoke: expected a 2-shard answer, got: $out"; exit 1; }

echo "smoke: SSE subscription observes a live ingest"
rm -f smoke-sse.txt
curl -sS -N --max-time 25 "${CA[@]}" "${AUTH[@]}" \
	"$GW/v1/subscribe?kind=NN@&query_oid=1&oid=2&tb=0&te=100&t=50" > smoke-sse.txt &
sse_pid=$!
sleep 2
move='{"updates":[{"oid":2,"verts":[[500,500,60],[500,510,100]]}]}'
curl -sS "${CA[@]}" "${AUTH[@]}" -X POST "$GW/v1/ingest" -d "$move" >/dev/null
event=""
for _ in $(seq 1 15); do
	if grep -q "event: diff" smoke-sse.txt 2>/dev/null; then
		event=1
		break
	fi
	sleep 1
done
kill "$sse_pid" 2>/dev/null || true
wait "$sse_pid" 2>/dev/null || true
[ -n "$event" ] || { echo "smoke: no diff event arrived"; cat smoke-sse.txt; exit 1; }

echo "smoke: /metrics counted the traffic"
curl -sS "${CA[@]}" "$GW/metrics" | grep -E 'gateway_requests_total\{[^}]*\} [1-9]' >/dev/null \
	|| { echo "smoke: gateway_requests_total never advanced"; exit 1; }

echo "smoke: OK"
