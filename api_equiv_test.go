//lint:file-ignore SA1019 this golden test deliberately exercises the
// deprecated facade wrappers against the unified Engine.Do route.

package repro_test

// The API-redesign acceptance gate: every deprecated facade entry point
// must return byte-identical answers to the equivalent Engine.Do call on
// a seeded 500-trajectory store, and context cancellation must stop a
// batch mid-flight with context.Canceled while leaving the store usable.

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro"
)

func seededEquivStore(t *testing.T, n int) *repro.Store {
	t.Helper()
	store, err := repro.NewUniformStore(0.5)
	if err != nil {
		t.Fatal(err)
	}
	trs, err := repro.GenerateWorkload(repro.DefaultWorkload(2026), n)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.InsertAll(trs); err != nil {
		t.Fatal(err)
	}
	return store
}

// TestGoldenFacadeEquivalence compares the deprecated surface against
// Engine.Do, variant by variant, on a 500-trajectory store.
func TestGoldenFacadeEquivalence(t *testing.T) {
	n := 500
	if testing.Short() {
		n = 120
	}
	store := seededEquivStore(t, n)
	eng := repro.NewEngine(0)
	ctx := context.Background()
	const qOID, tb, te = 1, 0.0, 60.0

	do := func(req repro.Request) repro.Result {
		t.Helper()
		res, err := eng.Do(ctx, store, req)
		if err != nil {
			t.Fatalf("Do(%+v): %v", req, err)
		}
		return res
	}

	// 1. NewQueryProcessor (full scan) and NewIndexedQueryProcessor.
	q, err := store.Get(qOID)
	if err != nil {
		t.Fatal(err)
	}
	full, err := repro.NewQueryProcessor(store.All(), q, tb, te, store.Radius())
	if err != nil {
		t.Fatal(err)
	}
	indexed, err := repro.NewIndexedQueryProcessor(store, qOID, tb, te)
	if err != nil {
		t.Fatal(err)
	}
	for _, proc := range []*repro.QueryProcessor{full, indexed} {
		if got := do(repro.Request{Kind: repro.KindUQ31, QueryOID: qOID, Tb: tb, Te: te}).OIDs; !reflect.DeepEqual(got, proc.UQ31()) {
			t.Fatalf("UQ31: do=%v processor=%v", got, proc.UQ31())
		}
		if got := do(repro.Request{Kind: repro.KindUQ32, QueryOID: qOID, Tb: tb, Te: te}).OIDs; !reflect.DeepEqual(got, proc.UQ32()) {
			t.Fatalf("UQ32 diverged")
		}
		want33, err := proc.UQ33(0.25)
		if err != nil {
			t.Fatal(err)
		}
		if got := do(repro.Request{Kind: repro.KindUQ33, QueryOID: qOID, Tb: tb, Te: te, X: 0.25}).OIDs; !reflect.DeepEqual(got, want33) {
			t.Fatalf("UQ33 diverged")
		}
		for _, k := range []int{2, 3} {
			want41, err := proc.UQ41(k)
			if err != nil {
				t.Fatal(err)
			}
			if got := do(repro.Request{Kind: repro.KindUQ41, QueryOID: qOID, Tb: tb, Te: te, K: k}).OIDs; !reflect.DeepEqual(got, want41) {
				t.Fatalf("UQ41(%d) diverged", k)
			}
		}
		// Per-object predicates over a sample.
		oids := proc.CandidateOIDs()
		step := len(oids)/25 + 1
		for i := 0; i < len(oids); i += step {
			oid := oids[i]
			want11, err := proc.UQ11(oid)
			if err != nil {
				t.Fatal(err)
			}
			if got := do(repro.Request{Kind: repro.KindUQ11, QueryOID: qOID, Tb: tb, Te: te, OID: oid}); !got.IsBool || got.Bool != want11 {
				t.Fatalf("UQ11(%d) diverged", oid)
			}
			want21, err := proc.UQ21(oid, 2)
			if err != nil {
				t.Fatal(err)
			}
			if got := do(repro.Request{Kind: repro.KindUQ21, QueryOID: qOID, Tb: tb, Te: te, OID: oid, K: 2}); got.Bool != want21 {
				t.Fatalf("UQ21(%d) diverged", oid)
			}
		}
	}

	// 2. Engine.Exec / Engine.ExecBatch.
	batch := repro.BatchRequest{
		QueryOID: qOID, Tb: tb, Te: te,
		Queries: []repro.BatchQuery{
			{Kind: repro.KindUQ31},
			{Kind: repro.KindUQ41, K: 2},
			{Kind: repro.KindUQ13, OID: 2, X: 0.1},
			{Kind: repro.KindAllNNAt, T: 30},
		},
	}
	bres, err := eng.ExecBatch(store, batch)
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]repro.Request, len(batch.Queries))
	for i, bq := range batch.Queries {
		reqs[i] = repro.Request{Kind: bq.Kind, QueryOID: qOID, Tb: tb, Te: te, OID: bq.OID, K: bq.K, X: bq.X, T: bq.T}
	}
	dres, err := eng.DoBatch(ctx, store, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		it, r := bres.Items[i], dres[i]
		if it.Err != nil || r.Err != nil {
			t.Fatalf("batch item %d: %v / %v", i, it.Err, r.Err)
		}
		if it.IsBool != r.IsBool || it.Bool != r.Bool || !reflect.DeepEqual(it.OIDs, r.OIDs) {
			t.Fatalf("batch item %d: exec %+v != do %+v", i, it, r)
		}
		one := eng.Exec(store, qOID, tb, te, batch.Queries[i])
		if one.IsBool != r.IsBool || one.Bool != r.Bool || !reflect.DeepEqual(one.OIDs, r.OIDs) {
			t.Fatalf("exec item %d diverged from do", i)
		}
	}

	// 3. RunUQL / RunUQLBatch against their compiled Requests.
	stmts := []string{
		fmt.Sprintf("SELECT T FROM MOD WHERE EXISTS Time IN [%g, %g] AND ProbabilityNN(T, %d, Time) > 0", tb, te, qOID),
		fmt.Sprintf("SELECT T FROM MOD WHERE ATLEAST 40%% Time IN [%g, %g] AND ProbabilityNN(T, %d, Time) > 0", tb, te, qOID),
		fmt.Sprintf("SELECT 2 FROM MOD WHERE FORALL Time IN [%g, %g] AND ProbabilityNN(2, %d, Time) > 0", tb, te, qOID),
		fmt.Sprintf("SELECT T FROM MOD WHERE AT Time = 30 WITHIN [%g, %g] AND ProbabilityKNN(T, %d, Time, 2) > 0", tb, te, qOID),
	}
	items := repro.RunUQLBatch(stmts, store, eng)
	for i, stmt := range stmts {
		if items[i].Err != nil {
			t.Fatalf("uql %q: %v", stmt, items[i].Err)
		}
		single, err := repro.RunUQL(stmt, store)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(single) != fmt.Sprint(items[i].Result) {
			t.Fatalf("RunUQL vs RunUQLBatch diverged on %q", stmt)
		}
		req, ok, err := repro.CompileUQL(stmt)
		if err != nil || !ok {
			t.Fatalf("CompileUQL(%q): ok=%v err=%v", stmt, ok, err)
		}
		res := do(req)
		if res.IsBool != items[i].Result.IsBool || res.Bool != items[i].Result.Bool ||
			!reflect.DeepEqual(res.OIDs, items[i].Result.OIDs) {
			t.Fatalf("compiled %q diverged: do=%+v uql=%+v", stmt, res, items[i].Result)
		}
	}

	// 4. All-pairs and reverse wrappers on a small subset (quadratic cost).
	sub := store.All()[:40]
	wantPairs, err := repro.AllPairsPossibleNN(sub, tb, te, store.Radius())
	if err != nil {
		t.Fatal(err)
	}
	subStore, err := repro.NewUniformStore(store.Radius())
	if err != nil {
		t.Fatal(err)
	}
	if err := subStore.InsertAll(sub); err != nil {
		t.Fatal(err)
	}
	gotPairs, err := eng.Do(ctx, subStore, repro.Request{Kind: repro.KindAllPairs, Tb: tb, Te: te})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotPairs.Pairs, wantPairs) {
		t.Fatal("AllPairsPossibleNN diverged from KindAllPairs")
	}
	wantRev, err := repro.ReversePossibleNN(sub, sub[3], tb, te, store.Radius())
	if err != nil {
		t.Fatal(err)
	}
	gotRev, err := eng.Do(ctx, subStore, repro.Request{Kind: repro.KindReverse, Tb: tb, Te: te, OID: sub[3].OID})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotRev.OIDs, wantRev) {
		t.Fatalf("ReversePossibleNN diverged: %v vs %v", wantRev, gotRev.OIDs)
	}
}

// TestFacadeCancellation: a context canceled mid-batch returns
// context.Canceled and leaves the store usable.
func TestFacadeCancellation(t *testing.T) {
	store := seededEquivStore(t, 200)
	eng := repro.NewEngine(2)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.DoBatch(ctx, store, []repro.Request{
		{Kind: repro.KindUQ31, QueryOID: 1, Tb: 0, Te: 60},
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled: err=%v, want context.Canceled", err)
	}

	reqs := make([]repro.Request, 150)
	for i := range reqs {
		reqs[i] = repro.Request{Kind: repro.KindUQ31, QueryOID: int64(i%100 + 1), Tb: 0, Te: 30 + float64(i)/50}
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(15 * time.Millisecond)
		cancel2()
	}()
	if _, err := eng.DoBatch(ctx2, store, reqs); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-batch: err=%v, want context.Canceled", err)
	}

	// Store left usable.
	res, err := eng.Do(context.Background(), store, repro.Request{Kind: repro.KindUQ31, QueryOID: 1, Tb: 0, Te: 60})
	if err != nil || res.Err != nil {
		t.Fatalf("store unusable after cancellation: %v / %v", err, res.Err)
	}
	if n := store.Len(); n != 200 {
		t.Fatalf("store corrupted: len=%d", n)
	}
}
