package engine

import (
	"context"

	"repro/internal/mod"
)

// Kind names one of the continuous query variants of the paper's Section 4
// (plus the fixed-time instant variants). Category 1/2 kinds answer a
// boolean about Query.OID; Category 3/4 kinds retrieve an OID list.
type Kind string

// Supported query kinds.
const (
	// Category 1: single object vs the Level-1 envelope.
	KindUQ11 Kind = "UQ11" // ∃t possible-NN
	KindUQ12 Kind = "UQ12" // ∀t possible-NN
	KindUQ13 Kind = "UQ13" // possible-NN ≥ X% of the window
	// Category 2: single object vs the Level-k envelope.
	KindUQ21 Kind = "UQ21"
	KindUQ22 Kind = "UQ22"
	KindUQ23 Kind = "UQ23"
	// Category 3: whole-MOD retrieval vs the Level-1 envelope.
	KindUQ31 Kind = "UQ31"
	KindUQ32 Kind = "UQ32"
	KindUQ33 Kind = "UQ33"
	// Category 4: whole-MOD retrieval vs the Level-k envelope.
	KindUQ41 Kind = "UQ41"
	KindUQ42 Kind = "UQ42"
	KindUQ43 Kind = "UQ43"
	// Fixed-time instant variants.
	KindNNAt      Kind = "NN@"      // single object possible-NN at T
	KindRankAt    Kind = "RANK@"    // single object possible rank-k at T
	KindAllNNAt   Kind = "ALLNN@"   // all possible-NN objects at T
	KindAllRankAt Kind = "ALLRANK@" // all possible rank-k objects at T
)

// Query is one variant in a batch. Which fields matter depends on Kind:
// OID for Categories 1/2 and the single-object instant kinds, K for the
// ranked kinds, X for the ≥X% kinds, T for the instant kinds.
//
// Deprecated: use Request, which additionally carries the query trajectory
// and window, with Engine.Do / Engine.DoBatch.
type Query struct {
	Kind Kind
	OID  int64
	K    int
	X    float64
	T    float64
}

// request lifts the legacy (query trajectory, window, variant) triple into
// the unified descriptor.
func (q Query) request(qOID int64, tb, te float64) Request {
	return Request{Kind: q.Kind, QueryOID: qOID, Tb: tb, Te: te, OID: q.OID, K: q.K, X: q.X, T: q.T}
}

// BatchRequest is a batch of query variants sharing one query trajectory
// and window — the unit over which the engine amortizes preprocessing.
//
// Deprecated: use []Request with Engine.DoBatch, which amortizes
// preprocessing per (query trajectory, window) group automatically.
type BatchRequest struct {
	QueryOID int64
	Tb, Te   float64
	Queries  []Query
}

// Item is the result of one query in a batch. Exactly one of Bool/OIDs is
// meaningful, per IsBool; Err is per-query so one bad variant (unknown OID,
// bad rank) does not poison its batch siblings.
//
// Deprecated: use Result, which additionally carries Explain provenance.
type Item struct {
	IsBool bool
	Bool   bool
	OIDs   []int64
	Err    error
}

// BatchResult holds one Item per requested query, in request order.
//
// Deprecated: use []Result from Engine.DoBatch.
type BatchResult struct {
	Items []Item
}

// ExecBatch evaluates the batch against the store. Answers are identical
// to issuing each query through Engine.Do — ExecBatch is now a thin
// adapter that compiles the batch into Requests and delegates to DoBatch.
// Results are deterministic: OID lists come back sorted ascending
// regardless of worker count or scheduling.
//
// Deprecated: use Engine.DoBatch, which adds per-request Explain stats and
// context cancellation.
func (e *Engine) ExecBatch(store *mod.Store, req BatchRequest) (BatchResult, error) {
	if e == nil {
		return BatchResult{}, ErrNoEngine
	}
	// Preserve the historic batch-level error contract: an unusable
	// (query, window) preprocessing fails the whole batch up front.
	if _, _, err := e.processor(context.Background(), store, req.QueryOID, req.Tb, req.Te, nil); err != nil {
		return BatchResult{}, err
	}
	reqs := make([]Request, len(req.Queries))
	for i, q := range req.Queries {
		reqs[i] = q.request(req.QueryOID, req.Tb, req.Te)
	}
	results, err := e.DoBatch(context.Background(), store, reqs)
	if err != nil {
		return BatchResult{}, err
	}
	res := BatchResult{Items: make([]Item, len(results))}
	for i, r := range results {
		res.Items[i] = Item{IsBool: r.IsBool, Bool: r.Bool, OIDs: r.OIDs, Err: r.Err}
	}
	return res, nil
}

// Exec evaluates a single query variant, sharing the memoized
// preprocessing with any batch against the same key.
//
// Deprecated: use Engine.Do with a Request.
func (e *Engine) Exec(store *mod.Store, qOID int64, tb, te float64, q Query) Item {
	if e == nil {
		return Item{Err: ErrNoEngine}
	}
	res, _ := e.Do(context.Background(), store, q.request(qOID, tb, te))
	return Item{IsBool: res.IsBool, Bool: res.Bool, OIDs: res.OIDs, Err: res.Err}
}
