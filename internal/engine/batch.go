package engine

import (
	"fmt"

	"repro/internal/mod"
	"repro/internal/queries"
)

// Kind names one of the continuous query variants of the paper's Section 4
// (plus the fixed-time instant variants). Category 1/2 kinds answer a
// boolean about Query.OID; Category 3/4 kinds retrieve an OID list.
type Kind string

// Supported query kinds.
const (
	// Category 1: single object vs the Level-1 envelope.
	KindUQ11 Kind = "UQ11" // ∃t possible-NN
	KindUQ12 Kind = "UQ12" // ∀t possible-NN
	KindUQ13 Kind = "UQ13" // possible-NN ≥ X% of the window
	// Category 2: single object vs the Level-k envelope.
	KindUQ21 Kind = "UQ21"
	KindUQ22 Kind = "UQ22"
	KindUQ23 Kind = "UQ23"
	// Category 3: whole-MOD retrieval vs the Level-1 envelope.
	KindUQ31 Kind = "UQ31"
	KindUQ32 Kind = "UQ32"
	KindUQ33 Kind = "UQ33"
	// Category 4: whole-MOD retrieval vs the Level-k envelope.
	KindUQ41 Kind = "UQ41"
	KindUQ42 Kind = "UQ42"
	KindUQ43 Kind = "UQ43"
	// Fixed-time instant variants.
	KindNNAt      Kind = "NN@"      // single object possible-NN at T
	KindRankAt    Kind = "RANK@"    // single object possible rank-k at T
	KindAllNNAt   Kind = "ALLNN@"   // all possible-NN objects at T
	KindAllRankAt Kind = "ALLRANK@" // all possible rank-k objects at T
)

// Query is one variant in a batch. Which fields matter depends on Kind:
// OID for Categories 1/2 and the single-object instant kinds, K for the
// ranked kinds, X for the ≥X% kinds, T for the instant kinds.
type Query struct {
	Kind Kind
	OID  int64
	K    int
	X    float64
	T    float64
}

// rank returns the query's effective envelope level.
func (q Query) rank() int {
	switch q.Kind {
	case KindUQ21, KindUQ22, KindUQ23, KindUQ41, KindUQ42, KindUQ43, KindRankAt, KindAllRankAt:
		return q.K
	}
	return 1
}

// BatchRequest is a batch of query variants sharing one query trajectory
// and window — the unit over which the engine amortizes preprocessing.
type BatchRequest struct {
	QueryOID int64
	Tb, Te   float64
	Queries  []Query
}

// Item is the result of one query in a batch. Exactly one of Bool/OIDs is
// meaningful, per IsBool; Err is per-query so one bad variant (unknown OID,
// bad rank) does not poison its batch siblings.
type Item struct {
	IsBool bool
	Bool   bool
	OIDs   []int64
	Err    error
}

// BatchResult holds one Item per requested query, in request order.
type BatchResult struct {
	Items []Item
}

// ExecBatch evaluates the batch against the store. The envelope
// preprocessing is done (or memo-hit) once; the deepest rank needed by the
// batch is built once; each whole-MOD query then fans its per-OID candidate
// checks across the worker pool. Results are deterministic: OID lists come
// back sorted ascending regardless of worker count or scheduling.
func (e *Engine) ExecBatch(store *mod.Store, req BatchRequest) (BatchResult, error) {
	if e == nil {
		return BatchResult{}, ErrNoEngine
	}
	proc, err := e.Processor(store, req.QueryOID, req.Tb, req.Te)
	if err != nil {
		return BatchResult{}, err
	}
	// One k-level construction for the deepest rank in the batch;
	// construction failures resurface as per-query errors in exec.
	maxK := 0
	for _, q := range req.Queries {
		if k := q.rank(); k > maxK {
			maxK = k
		}
	}
	if maxK > 1 {
		_ = proc.EnsureLevels(maxK)
	}
	res := BatchResult{Items: make([]Item, len(req.Queries))}
	for i, q := range req.Queries {
		res.Items[i] = e.exec(proc, q)
	}
	return res, nil
}

// Exec evaluates a single query variant, sharing the memoized
// preprocessing with any batch against the same key.
func (e *Engine) Exec(store *mod.Store, qOID int64, tb, te float64, q Query) Item {
	if e == nil {
		return Item{Err: ErrNoEngine}
	}
	proc, err := e.Processor(store, qOID, tb, te)
	if err != nil {
		return Item{Err: err}
	}
	return e.exec(proc, q)
}

// exec dispatches one query against a ready processor. Whole-MOD kinds run
// on the worker pool; single-object kinds are O(N) already and run inline.
func (e *Engine) exec(p *queries.Processor, q Query) Item {
	boolItem := func(b bool, err error) Item { return Item{IsBool: true, Bool: b, Err: err} }
	listItem := func(ids []int64, err error) Item { return Item{OIDs: ids, Err: err} }
	switch q.Kind {
	case KindUQ11:
		return boolItem(p.UQ11(q.OID))
	case KindUQ12:
		return boolItem(p.UQ12(q.OID))
	case KindUQ13:
		return boolItem(p.UQ13(q.OID, q.X))
	case KindUQ21:
		return boolItem(p.UQ21(q.OID, q.K))
	case KindUQ22:
		return boolItem(p.UQ22(q.OID, q.K))
	case KindUQ23:
		return boolItem(p.UQ23(q.OID, q.K, q.X))
	case KindNNAt:
		return boolItem(p.IsPossibleNNAt(q.OID, q.T))
	case KindRankAt:
		return boolItem(p.IsPossibleRankKAt(q.OID, q.T, q.K))
	case KindUQ31:
		return listItem(e.FilterOIDs(p.CandidateOIDs(), p.UQ11))
	case KindUQ32:
		return listItem(e.FilterOIDs(p.CandidateOIDs(), p.UQ12))
	case KindUQ33:
		if q.X < 0 || q.X > 1 {
			return listItem(nil, queries.ErrBadFrac)
		}
		return listItem(e.FilterOIDs(p.CandidateOIDs(), func(oid int64) (bool, error) {
			return p.UQ13(oid, q.X)
		}))
	case KindUQ41:
		if err := p.EnsureLevels(q.K); err != nil {
			return listItem(nil, err)
		}
		return listItem(e.FilterOIDs(p.CandidateOIDs(), func(oid int64) (bool, error) {
			return p.UQ21(oid, q.K)
		}))
	case KindUQ42:
		if err := p.EnsureLevels(q.K); err != nil {
			return listItem(nil, err)
		}
		return listItem(e.FilterOIDs(p.CandidateOIDs(), func(oid int64) (bool, error) {
			return p.UQ22(oid, q.K)
		}))
	case KindUQ43:
		if q.X < 0 || q.X > 1 {
			return listItem(nil, queries.ErrBadFrac)
		}
		if err := p.EnsureLevels(q.K); err != nil {
			return listItem(nil, err)
		}
		return listItem(e.FilterOIDs(p.CandidateOIDs(), func(oid int64) (bool, error) {
			return p.UQ23(oid, q.K, q.X)
		}))
	case KindAllNNAt:
		return listItem(e.FilterOIDs(p.CandidateOIDs(), func(oid int64) (bool, error) {
			return p.IsPossibleNNAt(oid, q.T)
		}))
	case KindAllRankAt:
		if err := p.EnsureLevels(q.K); err != nil {
			return listItem(nil, err)
		}
		return listItem(e.FilterOIDs(p.CandidateOIDs(), func(oid int64) (bool, error) {
			return p.IsPossibleRankKAt(oid, q.T, q.K)
		}))
	default:
		return Item{Err: fmt.Errorf("%w: %q", ErrBadKind, q.Kind)}
	}
}
