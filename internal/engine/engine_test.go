package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/mod"
	"repro/internal/queries"
	"repro/internal/workload"
)

// newStore builds a seeded random-waypoint store of n trajectories with the
// paper's default model (r = 0.5) and returns it with the first OID.
func newStore(t testing.TB, n int, seed int64) (*mod.Store, int64) {
	t.Helper()
	trs, err := workload.Generate(workload.DefaultConfig(seed), n)
	if err != nil {
		t.Fatal(err)
	}
	store, err := mod.NewUniformStore(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.InsertAll(trs); err != nil {
		t.Fatal(err)
	}
	return store, trs[0].OID
}

// batchKinds is the mixed workload used by the equivalence tests: every
// whole-MOD variant plus fixed-time retrievals, at several ranks.
func batchKinds() []Query {
	return []Query{
		{Kind: KindUQ31},
		{Kind: KindUQ32},
		{Kind: KindUQ33, X: 0.25},
		{Kind: KindUQ41, K: 2},
		{Kind: KindUQ41, K: 3},
		{Kind: KindUQ42, K: 2},
		{Kind: KindUQ43, K: 3, X: 0.25},
		{Kind: KindAllNNAt, T: 30},
		{Kind: KindAllRankAt, T: 30, K: 2},
	}
}

// serialItems computes the same batch with the serial Processor loops.
func serialItems(t *testing.T, store *mod.Store, qOID int64, qs []Query) []Item {
	t.Helper()
	q, err := store.Get(qOID)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := queries.NewProcessor(store.All(), q, 0, 60, store.Radius())
	if err != nil {
		t.Fatal(err)
	}
	out := make([]Item, len(qs))
	for i, qq := range qs {
		var (
			ids []int64
			err error
		)
		switch qq.Kind {
		case KindUQ31:
			ids = proc.UQ31()
		case KindUQ32:
			ids = proc.UQ32()
		case KindUQ33:
			ids, err = proc.UQ33(qq.X)
		case KindUQ41:
			ids, err = proc.UQ41(qq.K)
		case KindUQ42:
			ids, err = proc.UQ42(qq.K)
		case KindUQ43:
			ids, err = proc.UQ43(qq.K, qq.X)
		case KindAllNNAt:
			ids = proc.PossibleNNAt(qq.T)
		case KindAllRankAt:
			ids, err = proc.PossibleRankKAt(qq.T, qq.K)
		default:
			t.Fatalf("serialItems: unhandled kind %q", qq.Kind)
		}
		out[i] = Item{OIDs: ids, Err: err}
	}
	return out
}

func itemsEqual(a, b Item) bool {
	if a.IsBool != b.IsBool || a.Bool != b.Bool || (a.Err == nil) != (b.Err == nil) {
		return false
	}
	return fmt.Sprint(a.OIDs) == fmt.Sprint(b.OIDs)
}

// TestBatchMatchesSerial is the acceptance gate: on a seeded
// 1000-trajectory workload, the parallel batch answers must be identical to
// the serial Processor's, variant by variant.
func TestBatchMatchesSerial(t *testing.T) {
	n := 1000
	if testing.Short() {
		n = 200
	}
	store, qOID := newStore(t, n, 42)
	qs := batchKinds()
	want := serialItems(t, store, qOID, qs)

	eng := New(0)
	got, err := eng.ExecBatch(store, BatchRequest{QueryOID: qOID, Tb: 0, Te: 60, Queries: qs})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Items) != len(want) {
		t.Fatalf("got %d items, want %d", len(got.Items), len(want))
	}
	for i := range want {
		if got.Items[i].Err != nil {
			t.Fatalf("query %d (%s): %v", i, qs[i].Kind, got.Items[i].Err)
		}
		if !itemsEqual(got.Items[i], want[i]) {
			t.Errorf("query %d (%s k=%d x=%g): parallel %v != serial %v",
				i, qs[i].Kind, qs[i].K, qs[i].X, got.Items[i].OIDs, want[i].OIDs)
		}
	}
}

// TestWorkerCountInvariance is the property test: worker count (1, 2, 3,
// NumCPU, more-than-OIDs) must never change any answer.
func TestWorkerCountInvariance(t *testing.T) {
	store, qOID := newStore(t, 120, 7)
	qs := append(batchKinds(),
		Query{Kind: KindUQ11, OID: qOID + 5},
		Query{Kind: KindUQ13, OID: qOID + 5, X: 0.1},
		Query{Kind: KindUQ21, OID: qOID + 9, K: 2},
	)
	counts := []int{1, 2, 3, runtime.NumCPU(), 1000}
	var ref BatchResult
	for i, w := range counts {
		eng := New(w)
		got, err := eng.ExecBatch(store, BatchRequest{QueryOID: qOID, Tb: 0, Te: 60, Queries: qs})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if i == 0 {
			ref = got
			continue
		}
		for j := range qs {
			if !itemsEqual(got.Items[j], ref.Items[j]) {
				t.Errorf("workers=%d query %d (%s): %+v != workers=1 %+v",
					w, j, qs[j].Kind, got.Items[j], ref.Items[j])
			}
		}
	}
}

// TestBoolKindsMatchProcessor checks the single-object kinds against the
// Processor methods directly.
func TestBoolKindsMatchProcessor(t *testing.T) {
	store, qOID := newStore(t, 60, 3)
	q, err := store.Get(qOID)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := queries.NewProcessor(store.All(), q, 0, 60, store.Radius())
	if err != nil {
		t.Fatal(err)
	}
	eng := New(2)
	for _, oid := range proc.CandidateOIDs() {
		wantB, err := proc.UQ11(oid)
		if err != nil {
			t.Fatal(err)
		}
		got := eng.Exec(store, qOID, 0, 60, Query{Kind: KindUQ11, OID: oid})
		if got.Err != nil || !got.IsBool || got.Bool != wantB {
			t.Fatalf("UQ11(%d): got %+v, want %v", oid, got, wantB)
		}
	}
}

// TestProcessorMemo checks reuse within a store version and invalidation
// across mutations.
func TestProcessorMemo(t *testing.T) {
	store, qOID := newStore(t, 40, 11)
	eng := New(2)
	p1, err := eng.Processor(store, qOID, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := eng.Processor(store, qOID, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("same key did not reuse the memoized processor")
	}
	if eng.MemoLen() != 1 {
		t.Fatalf("memo len = %d, want 1", eng.MemoLen())
	}
	// A different window is a different key.
	if p3, err := eng.Processor(store, qOID, 0, 30); err != nil || p3 == p1 {
		t.Fatalf("window change should build a new processor (err=%v)", err)
	}
	// A store mutation bumps the version and invalidates.
	trs, err := workload.Generate(workload.DefaultConfig(99), 41)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Insert(trs[40]); err != nil {
		t.Fatal(err)
	}
	p4, err := eng.Processor(store, qOID, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	if p4 == p1 {
		t.Fatal("store mutation did not invalidate the memo")
	}
	if len(p4.CandidateOIDs()) != len(p1.CandidateOIDs())+1 {
		t.Fatalf("rebuilt processor sees %d candidates, want %d",
			len(p4.CandidateOIDs()), len(p1.CandidateOIDs())+1)
	}
}

// TestConcurrentBatches hammers one engine from many goroutines (run under
// -race). Batches share keys, so this also exercises the build-once slot.
func TestConcurrentBatches(t *testing.T) {
	store, qOID := newStore(t, 80, 21)
	eng := New(runtime.NumCPU())
	qs := batchKinds()
	const goroutines = 8
	var wg sync.WaitGroup
	results := make([]BatchResult, goroutines)
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g], errs[g] = eng.ExecBatch(store, BatchRequest{
				QueryOID: qOID, Tb: 0, Te: 60, Queries: qs,
			})
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		for j := range qs {
			if !itemsEqual(results[g].Items[j], results[0].Items[j]) {
				t.Errorf("goroutine %d query %d (%s) diverged", g, j, qs[j].Kind)
			}
		}
	}
	if eng.MemoLen() != 1 {
		t.Fatalf("memo len = %d, want 1 (all batches share a key)", eng.MemoLen())
	}
}

// TestErrors covers the per-query and per-batch failure paths.
func TestErrors(t *testing.T) {
	store, qOID := newStore(t, 20, 5)
	eng := New(2)
	if _, err := eng.ExecBatch(store, BatchRequest{QueryOID: 99999, Tb: 0, Te: 60}); err == nil {
		t.Error("unknown query OID should fail the batch")
	}
	res, err := eng.ExecBatch(store, BatchRequest{
		QueryOID: qOID, Tb: 0, Te: 60,
		Queries: []Query{
			{Kind: "NOPE"},
			{Kind: KindUQ33, X: 2},
			{Kind: KindUQ43, K: 0, X: 0.5},
			{Kind: KindUQ11, OID: 424242},
			{Kind: KindUQ31},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.Items[0].Err, ErrBadKind) {
		t.Errorf("item 0: got %v, want ErrBadKind", res.Items[0].Err)
	}
	if !errors.Is(res.Items[1].Err, queries.ErrBadFrac) {
		t.Errorf("item 1: got %v, want ErrBadFrac", res.Items[1].Err)
	}
	if !errors.Is(res.Items[2].Err, queries.ErrBadRank) {
		t.Errorf("item 2: got %v, want ErrBadRank", res.Items[2].Err)
	}
	if !errors.Is(res.Items[3].Err, queries.ErrUnknownOID) {
		t.Errorf("item 3: got %v, want ErrUnknownOID", res.Items[3].Err)
	}
	if res.Items[4].Err != nil {
		t.Errorf("item 4: healthy sibling poisoned: %v", res.Items[4].Err)
	}
	var nilEng *Engine
	if _, err := nilEng.ExecBatch(store, BatchRequest{QueryOID: qOID}); !errors.Is(err, ErrNoEngine) {
		t.Errorf("nil engine: got %v, want ErrNoEngine", err)
	}
}
