package engine

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/mod"
	"repro/internal/trajectory"
)

// TestIngestInvalidatesMemo is the stale-memo regression gate: the engine
// memoizes pruned candidate sets and envelope preprocessing per store
// version, so a live ingest (plan revision through ApplyUpdate) must bump
// the version and a standing engine must never serve pre-ingest
// envelopes. Before the live layer existed nothing exercised
// mutation-after-memo on this path.
func TestIngestInvalidatesMemo(t *testing.T) {
	st, err := mod.NewUniformStore(0.5)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(oid int64, y float64) *trajectory.Trajectory {
		verts := make([]trajectory.Vertex, 11)
		for i := range verts {
			verts[i] = trajectory.Vertex{X: float64(i), Y: y, T: float64(i)}
		}
		tr, err := trajectory.New(oid, verts)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	for oid, y := range map[int64]float64{1: 0, 2: 1, 3: 50} {
		if err := st.Insert(mk(oid, y)); err != nil {
			t.Fatal(err)
		}
	}

	eng := New(1)
	req := Request{Kind: KindUQ31, QueryOID: 1, Tb: 0, Te: 10}
	ctx := context.Background()

	first, err := eng.Do(ctx, st, req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.OIDs, []int64{2}) {
		t.Fatalf("pre-ingest answer = %v, want [2]", first.OIDs)
	}
	// Warm the memo: a repeat is a hit.
	again, err := eng.Do(ctx, st, req)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Explain.MemoHit {
		t.Fatal("repeat query did not hit the memo")
	}

	// Ingest: steer object 3 next to the query. The version bump must
	// invalidate the memoized envelope — the standing engine re-answers
	// like a fresh one, with no memo hit.
	v0 := st.Version()
	if _, err := st.ApplyUpdate(mod.Update{OID: 3, Verts: []trajectory.Vertex{
		{X: 6, Y: 1, T: 6}, {X: 10, Y: 0.5, T: 10},
	}}); err != nil {
		t.Fatal(err)
	}
	if st.Version() == v0 {
		t.Fatal("ingest did not bump the store version")
	}

	post, err := eng.Do(ctx, st, req)
	if err != nil {
		t.Fatal(err)
	}
	if post.Explain.MemoHit {
		t.Fatal("post-ingest query served the pre-ingest memo entry")
	}
	fresh, err := New(1).Do(ctx, st, req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(post.OIDs, fresh.OIDs) {
		t.Fatalf("standing engine answered %v, fresh engine %v", post.OIDs, fresh.OIDs)
	}
	if !reflect.DeepEqual(post.OIDs, []int64{2, 3}) {
		t.Fatalf("post-ingest answer = %v, want [2 3]", post.OIDs)
	}

	// And the memo works again at the new version.
	hot, err := eng.Do(ctx, st, req)
	if err != nil {
		t.Fatal(err)
	}
	if !hot.Explain.MemoHit {
		t.Fatal("post-ingest repeat did not re-memoize")
	}
}
