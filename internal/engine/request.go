// The unified context-aware query API: one declarative Request descriptor
// covering every continuous probabilistic NN variant of the paper's
// Section 4 (plus the Section 7 extensions), one Result envelope carrying
// the answer together with its Explain provenance, and a typed error
// taxonomy shared across layers. Engine.Do / Engine.DoBatch are the single
// execution route — the UQL evaluator, the modserver "query" op, and the
// legacy Exec/ExecBatch facade all compile down to them — and both honor
// context cancellation end-to-end: between per-OID worker tasks, between
// batch members, inside the index candidate pre-pass, and inside lazy
// envelope builds.
package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/mod"
	"repro/internal/prune"
	"repro/internal/queries"
	"repro/internal/textidx"
	"repro/internal/trajectory"
)

// Additional query kinds of the unified API, beyond the UQ11..UQ43 and
// fixed-time kinds declared in batch.go.
const (
	// KindThreshold asks whether object OID has probability >= P of being
	// the NN for at least fraction X of the window (the paper's Section 7
	// "more than 65% probability within 50% of the time" query).
	KindThreshold Kind = "THRESH"
	// KindAllThreshold retrieves every object satisfying KindThreshold.
	KindAllThreshold Kind = "ALLTHRESH"
	// KindAllPairs computes every object's possible-NN set over the window
	// (all-pairs continuous probabilistic NN; QueryOID is ignored).
	KindAllPairs Kind = "ALLPAIRS"
	// KindReverse retrieves the objects for which object OID can be the
	// nearest neighbor (reverse continuous probabilistic NN; QueryOID is
	// ignored).
	KindReverse Kind = "REVERSE"
)

// Typed error taxonomy of the unified API. ErrUnknownOID, ErrBadRank and
// ErrBadFrac alias the queries package's sentinels so errors.Is matches one
// identity per failure across every layer; ErrBadKind and ErrNoEngine are
// declared in engine.go.
var (
	// ErrBadWindow reports a query window with te <= tb (or a NaN bound).
	// Request.Validate is the single place the check happens, so every
	// route — Do, the legacy facade, UQL, the wire protocol — rejects a
	// degenerate window identically instead of some constructors erroring
	// and others silently answering empty.
	ErrBadWindow = errors.New("engine: query window must satisfy tb < te")
	// ErrUnknownOID reports a target object absent from the store.
	ErrUnknownOID = queries.ErrUnknownOID
	// ErrBadRank reports a rank parameter k < 1 on a ranked kind.
	ErrBadRank = queries.ErrBadRank
	// ErrBadFrac reports a fraction or probability outside [0, 1].
	ErrBadFrac = queries.ErrBadFrac
	// ErrBadPredicate aliases the textidx sentinel so a malformed WHERE
	// clause (empty predicate, bad tag) matches one identity whether it is
	// rejected by the UQL parser, the gateway decoder, or Validate here.
	ErrBadPredicate = textidx.ErrBadPredicate
)

// Request is the declarative descriptor of one query: every variant the
// system answers is expressible as a Request, and every execution route
// reduces to Engine.Do(ctx, store, req). The struct is flat and
// JSON-serializable on purpose — it is the contract a shard router or
// network proxy forwards verbatim (the modserver "query" op carries it on
// the wire unchanged).
//
// Which fields matter depends on Kind: OID for the single-object kinds
// (Categories 1/2, the single-object instant kinds, KindThreshold) and the
// KindReverse target; K for the ranked kinds; X for the >= X%-of-window
// kinds and the threshold kinds; T for the fixed-time kinds; P for the
// threshold kinds.
type Request struct {
	Kind     Kind    `json:"kind"`
	QueryOID int64   `json:"query_oid,omitempty"`
	Tb       float64 `json:"tb"`
	Te       float64 `json:"te"`
	OID      int64   `json:"oid,omitempty"`
	K        int     `json:"k,omitempty"`
	X        float64 `json:"x,omitempty"`
	T        float64 `json:"t,omitempty"`
	P        float64 `json:"p,omitempty"`

	// Where restricts the query to the sub-MOD of objects whose tag sets
	// satisfy the predicate (see textidx.Predicate). Filtered-out objects
	// do not block, do not shape the envelope, and cannot answer: the
	// result is byte-identical to running the same request against a store
	// holding only the matching trajectories (plus the query trajectory,
	// which is exempt — a query *about* a non-matching object over the
	// matching fleet is well-formed). nil means unfiltered.
	Where *textidx.Predicate `json:"where,omitempty"`
}

// Rank returns the request's effective envelope level: K for the ranked
// kinds, 1 otherwise. A cluster router uses it to size the bound-exchange
// phases (the Level-k bound covers every level below it).
func (r Request) Rank() int {
	switch r.Kind {
	case KindUQ21, KindUQ22, KindUQ23, KindUQ41, KindUQ42, KindUQ43, KindRankAt, KindAllRankAt:
		return r.K
	}
	return 1
}

// needsProcessor reports whether the kind evaluates against one (query
// trajectory, window) preprocessing; KindAllPairs and KindReverse iterate
// query trajectories instead.
func (k Kind) needsProcessor() bool {
	return k != KindAllPairs && k != KindReverse
}

// Validate checks the request's static well-formedness: a known kind, an
// increasing window, a rank >= 1 on ranked kinds, fractions and
// probabilities in [0, 1]. It is the centralized window check — every
// execution route calls it before touching the store.
func (r Request) Validate() error {
	switch r.Kind {
	case KindUQ11, KindUQ12, KindUQ13, KindUQ21, KindUQ22, KindUQ23,
		KindUQ31, KindUQ32, KindUQ33, KindUQ41, KindUQ42, KindUQ43,
		KindNNAt, KindRankAt, KindAllNNAt, KindAllRankAt,
		KindThreshold, KindAllThreshold, KindAllPairs, KindReverse:
	default:
		return fmt.Errorf("%w: %q", ErrBadKind, r.Kind)
	}
	if math.IsNaN(r.Tb) || math.IsNaN(r.Te) || !(r.Te > r.Tb) {
		return fmt.Errorf("%w: [%g, %g]", ErrBadWindow, r.Tb, r.Te)
	}
	if r.Rank() < 1 {
		return fmt.Errorf("%w: got %d", ErrBadRank, r.K)
	}
	switch r.Kind {
	case KindUQ13, KindUQ23, KindUQ33, KindUQ43, KindThreshold, KindAllThreshold:
		if r.X < 0 || r.X > 1 || math.IsNaN(r.X) {
			return fmt.Errorf("%w: x=%g", ErrBadFrac, r.X)
		}
	}
	switch r.Kind {
	case KindThreshold, KindAllThreshold:
		if r.P < 0 || r.P > 1 || math.IsNaN(r.P) {
			return fmt.Errorf("%w: p=%g", ErrBadFrac, r.P)
		}
	}
	if err := r.Where.Validate(); err != nil {
		return err
	}
	return nil
}

// hasTargetOID reports whether the kind interrogates a single target
// object named by Request.OID — the kinds whose answer under a predicate
// short-circuits to false when the target exists but does not match.
func (k Kind) hasTargetOID() bool {
	switch k {
	case KindUQ11, KindUQ12, KindUQ13, KindUQ21, KindUQ22, KindUQ23,
		KindNNAt, KindRankAt, KindThreshold:
		return true
	}
	return false
}

// ctxErr reports whether the context is done, checking the wall clock
// against the deadline as well as Err(): a short deadline on a busy
// single-core host can expire before the runtime schedules the timer
// goroutine that cancels the context, and the engine's checkpoints must
// not sail past it just because the timer has not fired yet.
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d, ok := ctx.Deadline(); ok && !time.Now().Before(d) {
		return context.DeadlineExceeded
	}
	return nil
}

// Explain is the per-query execution provenance carried inside every
// Result, so answer and statistics cross API seams together.
type Explain struct {
	// Candidates is the number of non-query objects considered.
	Candidates int `json:"candidates"`
	// Survivors is how many candidates outlived the index candidate
	// pre-pass (== Candidates when the pre-pass is disabled or the kind
	// does not use one preprocessing).
	Survivors int `json:"survivors"`
	// MemoHit reports that the envelope preprocessing was reused from the
	// engine's memo instead of rebuilt.
	MemoHit bool `json:"memo_hit"`
	// Workers is the engine's worker-pool size.
	Workers int `json:"workers"`
	// Wall is the end-to-end evaluation time of this request
	// (JSON-encoded in nanoseconds).
	Wall time.Duration `json:"wall_ns"`

	// TextualCandidates is the size of the predicate-matching candidate
	// set — the universe the query actually ran over; zero (omitted) on
	// unfiltered requests. Comparing it against SpatialCandidates shows
	// how much the textual intersection shaved off before any envelope
	// was built.
	TextualCandidates int `json:"textual_candidates,omitempty"`
	// SpatialCandidates is the unfiltered candidate population (every
	// non-query object in the store) on a predicate request; zero
	// (omitted) on unfiltered requests.
	SpatialCandidates int `json:"spatial_candidates,omitempty"`

	// Refined is the size of the restricted candidate domain a shard-local
	// refine evaluated (DoRestricted's own-survivor list); zero on
	// unrestricted paths.
	Refined int `json:"refined,omitempty"`
	// RefineWall is the shard-side refine evaluation time when a cluster
	// router pushed refinement down to this shard; zero otherwise.
	RefineWall time.Duration `json:"refine_wall_ns,omitempty"`

	// Shards is the number of shards a cluster router scattered this
	// request across; zero on single-engine paths.
	Shards int `json:"shards,omitempty"`
	// ShardExplains carries one provenance entry per shard when a cluster
	// router merged this result (candidates seen and survivors returned by
	// that shard's bound-exchange sweep, plus its scatter wall time); nil
	// on single-engine paths. Entries never nest further: a shard reports
	// leaf statistics only.
	ShardExplains []Explain `json:"shard_explains,omitempty"`

	// Degraded reports that a cluster router answered this request without
	// every shard: some scatters failed past their retry budget and the
	// router (configured for degraded serving) merged the shards that did
	// reply. A degraded answer is a sound answer over the reachable
	// partitions only — objects homed on the missing shards are absent, so
	// NN-family answers may over-answer relative to the full cluster (the
	// global envelope min skips the missing shards' objects).
	Degraded bool `json:"degraded,omitempty"`
	// MissingShards names the shards whose replies the degraded merge went
	// without, in shard order; nil when Degraded is false.
	MissingShards []string `json:"missing_shards,omitempty"`
}

// Result is the unified answer envelope. Exactly one of Bool / OIDs /
// Pairs is meaningful, per the request kind (IsBool marks the predicate
// kinds; Pairs is only set by KindAllPairs). Err carries the per-request
// evaluation error so a bad batch member does not poison its siblings; it
// is excluded from JSON, wire adapters serialize it as a string.
type Result struct {
	Kind   Kind              `json:"kind"`
	IsBool bool              `json:"is_bool,omitempty"`
	Bool   bool              `json:"bool,omitempty"`
	OIDs   []int64           `json:"oids,omitempty"`
	Pairs  map[int64][]int64 `json:"pairs,omitempty"`

	Explain Explain `json:"explain"`
	Err     error   `json:"-"`
}

// Do evaluates one request against the store. It is the single execution
// route of the system: validation, the memoized (and index-pruned)
// envelope preprocessing, worker-pool fan-out for the whole-MOD kinds, and
// Explain accounting all happen here. ctx cancellation is honored between
// per-OID worker tasks and inside the preprocessing; a nil ctx means
// context.Background(). On error the returned Result carries the same
// error in Err, with whatever Explain fields were established.
func (e *Engine) Do(ctx context.Context, store *mod.Store, req Request) (Result, error) {
	if e == nil {
		return Result{Kind: req.Kind, Err: ErrNoEngine}, ErrNoEngine
	}
	if ctx == nil {
		ctx = context.Background()
	}
	res := Result{Kind: req.Kind}
	res.Explain.Workers = e.workers
	start := time.Now()
	fail := func(err error) (Result, error) {
		res.Err = err
		res.Explain.Wall = time.Since(start)
		return res, err
	}
	if err := req.Validate(); err != nil {
		return fail(err)
	}
	req.Where = req.Where.Canon()
	if err := ctxErr(ctx); err != nil {
		return fail(err)
	}
	switch req.Kind {
	case KindAllPairs:
		pairs, cands, err := e.allPairs(ctx, store, req)
		if err != nil {
			return fail(err)
		}
		res.Pairs = pairs
		res.Explain.Candidates = cands
		res.Explain.Survivors = cands
		if req.Where != nil {
			res.Explain.TextualCandidates = cands
			res.Explain.SpatialCandidates = store.Len()
		}
	case KindReverse:
		oids, cands, err := e.reverse(ctx, store, req)
		if err != nil {
			return fail(err)
		}
		res.OIDs = oids
		res.Explain.Candidates = cands
		res.Explain.Survivors = cands
		if req.Where != nil {
			res.Explain.TextualCandidates = cands
			res.Explain.SpatialCandidates = store.Len() - 1
		}
	default:
		// A predicate makes the single-target kinds decidable without any
		// envelope work when the target itself fails the filter: a
		// non-matching object is outside the answer universe, so every
		// "can OID be the (rank-k) NN" variant is false. An absent target
		// is still the usual error — "no" and "no such object" must not
		// blur. The query OID is exempt, matching the sub-store ground
		// truth (the query is always present there).
		if req.Where != nil && req.Kind.hasTargetOID() && req.OID != req.QueryOID {
			if _, err := store.Get(req.OID); err != nil {
				return fail(fmt.Errorf("%w: %d", ErrUnknownOID, req.OID))
			}
			if !req.Where.Matches(store.Tags(req.OID)) {
				res.IsBool = true
				res.Explain.SpatialCandidates = store.Len() - 1
				res.Explain.Wall = time.Since(start)
				return res, nil
			}
		}
		proc, hit, err := e.processor(ctx, store, req.QueryOID, req.Tb, req.Te, req.Where)
		if err != nil {
			return fail(err)
		}
		res.Explain.MemoHit = hit
		res.Explain.Candidates = proc.CandidateCount()
		res.Explain.Survivors = res.Explain.Candidates - proc.PrunedCount()
		if req.Where != nil {
			res.Explain.TextualCandidates = res.Explain.Candidates
			res.Explain.SpatialCandidates = store.Len() - 1
		}
		if k := req.Rank(); k > 1 {
			if err := proc.EnsureLevelsCtx(ctx, k); err != nil {
				return fail(err)
			}
		}
		item := e.execRequest(ctx, proc, req)
		if item.Err != nil {
			return fail(item.Err)
		}
		res.IsBool, res.Bool, res.OIDs = item.IsBool, item.Bool, item.OIDs
	}
	res.Explain.Wall = time.Since(start)
	return res, nil
}

// DoBatch evaluates the requests in order, sharing preprocessing through
// the engine memo (requests against the same (query, window) reuse one
// build, and the deepest rank any of them needs is constructed once).
// Per-request failures are reported inside the matching Result; the batch
// itself only errors on a nil engine or when ctx is canceled, in which
// case the context error (context.Canceled / context.DeadlineExceeded) is
// returned with the results completed so far.
func (e *Engine) DoBatch(ctx context.Context, store *mod.Store, reqs []Request) ([]Result, error) {
	if e == nil {
		return nil, ErrNoEngine
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// One k-level construction per (query, window) for the deepest rank in
	// the batch; build failures resurface as per-request errors below.
	type group struct {
		qOID   int64
		tb, te float64
		where  string // canonical predicate key ("" = unfiltered)
	}
	maxK := make(map[group]int)
	preds := make(map[group]*textidx.Predicate)
	for _, r := range reqs {
		if r.Validate() != nil || !r.Kind.needsProcessor() {
			continue
		}
		w := r.Where.Canon()
		g := group{r.QueryOID, r.Tb, r.Te, w.Key()}
		preds[g] = w
		if k := r.Rank(); k > maxK[g] {
			maxK[g] = k
		}
	}
	for g, k := range maxK {
		if k <= 1 {
			continue
		}
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		if proc, _, err := e.processor(ctx, store, g.qOID, g.tb, g.te, preds[g]); err == nil {
			_ = proc.EnsureLevelsCtx(ctx, k)
		}
	}
	out := make([]Result, len(reqs))
	for i, r := range reqs {
		if err := ctxErr(ctx); err != nil {
			return out[:i], err
		}
		res, err := e.Do(ctx, store, r)
		if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			return out[:i], err
		}
		out[i] = res
	}
	return out, nil
}

// execRequest dispatches one validated request against a ready processor.
// Whole-MOD kinds fan per-OID tasks across the worker pool with ctx
// checked between tasks; single-object kinds are O(N) and run inline.
func (e *Engine) execRequest(ctx context.Context, p *queries.Processor, req Request) Item {
	return e.execRequestRestricted(ctx, p, req, nil)
}

// execRequestRestricted is execRequest with an optional restriction of the
// whole-MOD filter domain: when own is non-nil, the filter kinds iterate
// only the candidates that also appear in own (a sorted OID list), which is
// how a shard evaluates its share of a distributed refine. own == nil means
// the full domain; the single-object kinds ignore it entirely.
func (e *Engine) execRequestRestricted(ctx context.Context, p *queries.Processor, req Request, own []int64) Item {
	boolItem := func(b bool, err error) Item { return Item{IsBool: true, Bool: b, Err: err} }
	listItem := func(ids []int64, err error) Item { return Item{OIDs: ids, Err: err} }
	domain := func(base []int64) []int64 {
		if own == nil {
			return base
		}
		return queries.IntersectSorted(base, own)
	}
	filter := func(pred func(oid int64) (bool, error)) Item {
		return listItem(e.filterOIDs(ctx, domain(p.CandidateOIDs()), pred))
	}
	switch req.Kind {
	case KindUQ11:
		return boolItem(p.UQ11(req.OID))
	case KindUQ12:
		return boolItem(p.UQ12(req.OID))
	case KindUQ13:
		return boolItem(p.UQ13(req.OID, req.X))
	case KindUQ21:
		return boolItem(p.UQ21(req.OID, req.K))
	case KindUQ22:
		return boolItem(p.UQ22(req.OID, req.K))
	case KindUQ23:
		return boolItem(p.UQ23(req.OID, req.K, req.X))
	case KindNNAt:
		return boolItem(p.IsPossibleNNAt(req.OID, req.T))
	case KindRankAt:
		return boolItem(p.IsPossibleRankKAt(req.OID, req.T, req.K))
	case KindThreshold:
		return boolItem(p.ThresholdNN(req.OID, req.P, req.X, queries.ThresholdConfig{}))
	case KindUQ31:
		return filter(p.UQ11)
	case KindUQ32:
		return filter(p.UQ12)
	case KindUQ33:
		return filter(func(oid int64) (bool, error) { return p.UQ13(oid, req.X) })
	case KindUQ41:
		return filter(func(oid int64) (bool, error) { return p.UQ21(oid, req.K) })
	case KindUQ42:
		return filter(func(oid int64) (bool, error) { return p.UQ22(oid, req.K) })
	case KindUQ43:
		return filter(func(oid int64) (bool, error) { return p.UQ23(oid, req.K, req.X) })
	case KindAllNNAt:
		return filter(func(oid int64) (bool, error) { return p.IsPossibleNNAt(oid, req.T) })
	case KindAllRankAt:
		return filter(func(oid int64) (bool, error) { return p.IsPossibleRankKAt(oid, req.T, req.K) })
	case KindAllThreshold:
		// The filter domain is the UQ31 survivor set, exactly like the
		// serial ThresholdNNAll: pruned objects have P^NN identically zero.
		return listItem(e.filterOIDs(ctx, domain(p.UQ31()), func(oid int64) (bool, error) {
			return p.ThresholdNN(oid, req.P, req.X, queries.ThresholdConfig{})
		}))
	default:
		return Item{Err: fmt.Errorf("%w: %q", ErrBadKind, req.Kind)}
	}
}

// matchingTrajectories returns the store's trajectories restricted to
// the predicate's sub-MOD (all of them when where is nil), in store
// iteration order. Under a predicate the whole-MOD iteration kinds
// (KindAllPairs, KindReverse) both answer and iterate over this set: a
// non-matching object neither asks nor answers.
func matchingTrajectories(store *mod.Store, where *textidx.Predicate) []*trajectory.Trajectory {
	if where == nil {
		return store.All()
	}
	all, tags, _ := store.AllWithTags()
	out := make([]*trajectory.Trajectory, 0, len(all))
	for _, tr := range all {
		if where.Matches(tags[tr.OID]) {
			out = append(out, tr)
		}
	}
	return out
}

// containsOID reports whether trs holds a trajectory with the given OID.
func containsOID(trs []*trajectory.Trajectory, oid int64) bool {
	for _, tr := range trs {
		if tr.OID == oid {
			return true
		}
	}
	return false
}

// allPairs computes every object's possible-NN set, fanning the per-query
// envelope preprocessings (the dominant cost) across the worker pool.
// Under a predicate both the query set and each answer universe are the
// matching sub-MOD.
func (e *Engine) allPairs(ctx context.Context, store *mod.Store, req Request) (map[int64][]int64, int, error) {
	trs := matchingTrajectories(store, req.Where)
	sets := make([][]int64, len(trs))
	err := e.forEachIndex(ctx, len(trs), func(i int) error {
		p, err := prune.ForQueryWhereCtx(ctx, store, trs[i], req.Tb, req.Te, req.Where)
		if err != nil {
			return fmt.Errorf("query %d: %w", trs[i].OID, err)
		}
		sets[i] = p.UQ31()
		return nil
	})
	if err != nil {
		return nil, len(trs), err
	}
	out := make(map[int64][]int64, len(trs))
	for i, tr := range trs {
		out[tr.OID] = sets[i]
	}
	return out, len(trs), nil
}

// reverse retrieves the objects for which req.OID can be the nearest
// neighbor, one pruned preprocessing per candidate query trajectory.
// Under a predicate only matching objects ask (iterate as queries), and a
// non-matching target short-circuits to the empty answer — it is outside
// every matching query's universe — while an absent target stays an
// error.
func (e *Engine) reverse(ctx context.Context, store *mod.Store, req Request) ([]int64, int, error) {
	if _, err := store.Get(req.OID); err != nil {
		return nil, 0, fmt.Errorf("%w: %d", ErrUnknownOID, req.OID)
	}
	trs := matchingTrajectories(store, req.Where)
	cands := len(trs)
	for _, tr := range trs {
		if tr.OID == req.OID {
			cands--
			break
		}
	}
	if req.Where != nil && !req.Where.Matches(store.Tags(req.OID)) {
		return nil, cands, nil
	}
	keep := make([]bool, len(trs))
	err := e.forEachIndex(ctx, len(trs), func(i int) error {
		q := trs[i]
		if q.OID == req.OID {
			return nil
		}
		p, err := prune.ForQueryWhereCtx(ctx, store, q, req.Tb, req.Te, req.Where)
		if err != nil {
			return fmt.Errorf("query %d: %w", q.OID, err)
		}
		ok, err := p.UQ11(req.OID)
		if err != nil {
			return err
		}
		keep[i] = ok
		return nil
	})
	if err != nil {
		return nil, cands, err
	}
	var out []int64
	for i, tr := range trs {
		if keep[i] {
			out = append(out, tr.OID)
		}
	}
	return out, cands, nil
}

// forEachIndex runs fn(0..n-1) on the worker pool, checking ctx between
// tasks. The first error wins (a context error takes precedence); tasks
// not yet started are skipped once an error is recorded.
func (e *Engine) forEachIndex(ctx context.Context, n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	workers := e.workers
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctxErr(ctx); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		ferr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				mu.Lock()
				stop := ferr != nil
				mu.Unlock()
				if stop {
					continue
				}
				err := ctxErr(ctx)
				if err == nil {
					err = fn(i)
				}
				if err != nil {
					mu.Lock()
					if ferr == nil {
						ferr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	// Cancellation is batch-fatal and callers match on the context error,
	// so it takes precedence over whatever task error the race recorded.
	if err := ctxErr(ctx); err != nil {
		return err
	}
	return ferr
}
