// Package engine is the concurrent batch query engine: it evaluates the
// whole-MOD continuous query variants (UQ31..UQ43 of the paper's Section 4)
// by fanning per-object candidate checks across a worker pool, and it
// amortizes the O(N log N) envelope preprocessing across a batch of query
// variants through a keyed processor memo.
//
// The two levers, in the terms of the paper:
//
//   - Parallelism. A Category 3/4 query is a filter over the MOD: for each
//     object, test its difference-distance function against the (level-k)
//     lower envelope's 4r pruning zone. The per-object kernels are pure
//     (queries.Processor is safe for concurrent use), so the engine shards
//     the candidate OID list into per-OID tasks, evaluates them on one
//     worker per CPU, and reassembles results in deterministic OID order.
//
//   - Sharing. Every query variant against the same (store, TrQ, [tb, te])
//     reuses one queries.Processor — and therefore one set of distance
//     functions, one Level-1 envelope, and one lazily grown k-level stack —
//     through a mutex-guarded memo keyed on the store's version counter, so
//     a batch of N variants pays the envelope cost once.
//
// Entry points: Do for one request, DoBatch for a batch (see request.go
// for the unified Request/Result contract), Processor for the memoized
// preprocessing alone. Exec and ExecBatch are the deprecated pre-Request
// surface, reimplemented as thin wrappers over Do/DoBatch.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/mod"
	"repro/internal/prune"
	"repro/internal/queries"
	"repro/internal/textidx"
)

// Package errors.
var (
	ErrBadKind  = errors.New("engine: unknown query kind")
	ErrNoEngine = errors.New("engine: nil engine")
)

// memoCap bounds the processor memo. Entries are evicted least-recently
// used; 64 distinct (query, window) pairs comfortably covers a batch
// workload while keeping worst-case memory bounded.
const memoCap = 64

// Engine executes batch queries against mod stores. The zero value is not
// usable; construct with New. An Engine is safe for concurrent use and is
// meant to be long-lived (one per server), since its value is the memo.
type Engine struct {
	workers  int
	fullScan bool

	mu    sync.Mutex
	procs map[procKey]*procSlot
	order []procKey // recency order for LRU eviction: oldest first
}

// procKey identifies one memoized preprocessing: a store at a specific
// version, a query trajectory, and a window. The version guard means a
// store mutation (insert/update/delete) naturally invalidates the entry.
type procKey struct {
	store    *mod.Store
	version  uint64
	queryOID int64
	tb, te   float64
	where    string // canonical predicate key ("" = unfiltered)
}

// procSlot builds its processor at most once even under concurrent lookups.
type procSlot struct {
	once sync.Once
	proc *queries.Processor
	err  error
}

// Options tunes engine construction.
type Options struct {
	// Workers is the worker-pool size; <= 0 means one worker per CPU.
	Workers int
	// FullScan disables the index-accelerated candidate pre-pass: every
	// processor build pays the full O(N·m) envelope preprocessing. The
	// default (false) consults the store's spatial index first and builds
	// distance functions only for the surviving candidates — answers are
	// identical either way; this switch exists for benchmarking and as an
	// operational escape hatch.
	FullScan bool
}

// New creates an engine with the given worker-pool size; workers <= 0 means
// one worker per CPU. The index-accelerated candidate pre-pass is on.
func New(workers int) *Engine {
	return NewWith(Options{Workers: workers})
}

// NewWith creates an engine from explicit options.
func NewWith(o Options) *Engine {
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	return &Engine{workers: o.Workers, fullScan: o.FullScan, procs: make(map[procKey]*procSlot)}
}

// Workers returns the worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// Processor returns the memoized queries.Processor for the query trajectory
// qOID over [tb, te] against the store's current contents, building it on
// first use. Concurrent callers with the same key share one build — and,
// since the memo key includes the store version, they also share one pruned
// candidate set per (store-version, query, window).
func (e *Engine) Processor(store *mod.Store, qOID int64, tb, te float64) (*queries.Processor, error) {
	proc, _, err := e.processor(context.Background(), store, qOID, tb, te, nil)
	return proc, err
}

// ProcessorCtx is Processor under a context: a canceled context stops the
// candidate pre-pass and the envelope construction inside the build.
func (e *Engine) ProcessorCtx(ctx context.Context, store *mod.Store, qOID int64, tb, te float64) (*queries.Processor, error) {
	proc, _, err := e.processor(ctx, store, qOID, tb, te, nil)
	return proc, err
}

// ProcessorWhereCtx is ProcessorCtx restricted to the predicate's sub-MOD
// (plus the exempt query trajectory). The memo key includes the canonical
// predicate, so a lookup right after a Do with the same clause is a hit.
func (e *Engine) ProcessorWhereCtx(ctx context.Context, store *mod.Store, qOID int64, tb, te float64, where *textidx.Predicate) (*queries.Processor, error) {
	proc, _, err := e.processor(ctx, store, qOID, tb, te, where)
	return proc, err
}

// processor is the ctx-aware memo lookup behind Processor and Do. memoHit
// reports that this call reused a build instead of performing one (the
// Explain "envelope reuse" signal). A lookup touches its entry so steadily
// hot keys survive eviction (LRU, not insertion order). A build that
// failed only because a context was canceled is dropped from the memo —
// and since that context belongs to whichever caller ran the build, a
// waiter whose own context is still live retries the build under its own
// rather than inheriting a stranger's cancellation.
func (e *Engine) processor(ctx context.Context, store *mod.Store, qOID int64, tb, te float64, where *textidx.Predicate) (proc *queries.Processor, memoHit bool, err error) {
	where = where.Canon()
	for {
		key := procKey{store: store, version: store.Version(), queryOID: qOID, tb: tb, te: te, where: where.Key()}
		e.mu.Lock()
		slot, ok := e.procs[key]
		if !ok {
			slot = &procSlot{}
			e.procs[key] = slot
			e.order = append(e.order, key)
			e.evictLocked()
		} else {
			e.touchLocked(key)
		}
		e.mu.Unlock()
		built := false
		slot.once.Do(func() {
			built = true
			q, err := store.Get(qOID)
			if err != nil {
				slot.err = fmt.Errorf("engine: query trajectory: %w", err)
				return
			}
			if e.fullScan {
				// FullScan skips the index pre-pass, never the predicate:
				// the filter is semantics, so the scan runs over the
				// sub-MOD (plus the exempt query) just like the pruned
				// path.
				trs := matchingTrajectories(store, where)
				if where != nil && !containsOID(trs, q.OID) {
					trs = append(trs, q)
				}
				slot.proc, slot.err = queries.NewProcessor(trs, q, tb, te, store.Radius())
			} else {
				slot.proc, slot.err = prune.ForQueryWhereCtx(ctx, store, q, tb, te, where)
			}
		})
		if slot.err != nil {
			if errors.Is(slot.err, context.Canceled) || errors.Is(slot.err, context.DeadlineExceeded) {
				e.mu.Lock()
				if e.procs[key] == slot {
					e.removeLocked(key)
				}
				e.mu.Unlock()
				if !built && ctxErr(ctx) == nil {
					// Someone else's canceled build; ours is still live.
					continue
				}
			}
			return nil, false, slot.err
		}
		return slot.proc, ok && !built, nil
	}
}

// touchLocked moves key to the most-recently-used end of the recency
// order. Caller holds e.mu.
func (e *Engine) touchLocked(key procKey) {
	for i, k := range e.order {
		if k == key {
			copy(e.order[i:], e.order[i+1:])
			e.order[len(e.order)-1] = key
			return
		}
	}
}

// removeLocked drops key from the memo and the recency order. Caller
// holds e.mu.
func (e *Engine) removeLocked(key procKey) {
	delete(e.procs, key)
	for i, k := range e.order {
		if k == key {
			e.order = append(e.order[:i], e.order[i+1:]...)
			return
		}
	}
}

// evictLocked drops stale-version entries eagerly (a bumped store version
// makes them unreachable, since Version only increases) and then enforces
// memoCap least-recently-used first. Caller holds e.mu.
func (e *Engine) evictLocked() {
	kept := e.order[:0]
	for _, key := range e.order {
		if key.version != key.store.Version() {
			delete(e.procs, key)
			continue
		}
		kept = append(kept, key)
	}
	e.order = kept
	for len(e.order) > memoCap {
		delete(e.procs, e.order[0])
		e.order = e.order[1:]
	}
}

// MemoLen reports the number of live memo entries (for tests and metrics).
func (e *Engine) MemoLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.procs)
}

// FilterOIDs evaluates pred for every OID on the worker pool and returns
// the OIDs for which it holds, in the input (sorted) order — the
// deterministic parallel counterpart of the serial UQ3x/UQ4x loops. The
// first error wins; remaining tasks still drain but their results are
// discarded.
func (e *Engine) FilterOIDs(oids []int64, pred func(oid int64) (bool, error)) ([]int64, error) {
	return e.filterOIDs(context.Background(), oids, pred)
}

// filterOIDs is the ctx-aware core of FilterOIDs, built on the same
// worker-pool loop (forEachIndex) the whole-MOD extensions use: the
// context is checked between per-OID tasks, so a canceled request stops
// fanning work promptly and surfaces the context error instead of a
// partial answer. Results are deterministic because keep is indexed by
// input position.
func (e *Engine) filterOIDs(ctx context.Context, oids []int64, pred func(oid int64) (bool, error)) ([]int64, error) {
	if len(oids) == 0 {
		return nil, ctxErr(ctx)
	}
	keep := make([]bool, len(oids))
	err := e.forEachIndex(ctx, len(oids), func(i int) error {
		ok, err := pred(oids[i])
		if err != nil {
			return err
		}
		keep[i] = ok
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []int64
	for i, ok := range keep {
		if ok {
			out = append(out, oids[i])
		}
	}
	return out, nil
}
