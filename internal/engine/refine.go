// Shard-local refinement: the engine-side half of the cluster's
// distributed refine protocol. After the router's bound exchange settles
// the union survivor set, each shard evaluates the whole-MOD filter kinds
// over the union store with the candidate domain restricted to the
// survivors that shard itself contributed — DoRestricted is that entry
// point. Because the union of the disjoint per-shard domains is exactly
// the central filter domain (globally pruned objects answer false on
// every filter kind), unioning the per-shard answer lists reproduces the
// central answer byte for byte.
package engine

import (
	"context"
	"fmt"
	"time"

	"repro/internal/mod"
)

// IsWholeMODFilter reports whether the kind is a whole-MOD list filter —
// the only kinds a restricted-domain evaluation is defined for, and hence
// the kinds a cluster router pushes down as distributed refines.
func (k Kind) IsWholeMODFilter() bool {
	switch k {
	case KindUQ31, KindUQ32, KindUQ33, KindUQ41, KindUQ42, KindUQ43,
		KindAllNNAt, KindAllRankAt, KindAllThreshold:
		return true
	}
	return false
}

// DoRestricted evaluates a whole-MOD filter request with the candidate
// domain restricted to own, a sorted OID list (a shard's share of the
// union survivor set). The preprocessing still runs over the full store —
// the envelope must be the global one for the answer to be sound — but
// the per-object membership tests only visit own, so K shards splitting a
// survivor set between them collectively do the same filter work as one
// central engine. Non-filter kinds are rejected with ErrBadKind: the
// router keeps single-object and bool kinds central.
//
// Explain reports the restricted evaluation honestly: Refined is
// len(own) and RefineWall the end-to-end time; Candidates/Survivors keep
// their usual store-global meaning.
func (e *Engine) DoRestricted(ctx context.Context, store *mod.Store, req Request, own []int64) (Result, error) {
	if e == nil {
		return Result{Kind: req.Kind, Err: ErrNoEngine}, ErrNoEngine
	}
	if ctx == nil {
		ctx = context.Background()
	}
	res := Result{Kind: req.Kind}
	res.Explain.Workers = e.workers
	res.Explain.Refined = len(own)
	start := time.Now()
	fail := func(err error) (Result, error) {
		res.Err = err
		res.Explain.Wall = time.Since(start)
		res.Explain.RefineWall = res.Explain.Wall
		return res, err
	}
	if err := req.Validate(); err != nil {
		return fail(err)
	}
	if !req.Kind.IsWholeMODFilter() {
		return fail(fmt.Errorf("%w: %q is not a whole-MOD filter kind", ErrBadKind, req.Kind))
	}
	if err := ctxErr(ctx); err != nil {
		return fail(err)
	}
	req.Where = req.Where.Canon()
	proc, hit, err := e.processor(ctx, store, req.QueryOID, req.Tb, req.Te, req.Where)
	if err != nil {
		return fail(err)
	}
	res.Explain.MemoHit = hit
	res.Explain.Candidates = proc.CandidateCount()
	res.Explain.Survivors = res.Explain.Candidates - proc.PrunedCount()
	if req.Where != nil {
		res.Explain.TextualCandidates = res.Explain.Candidates
		res.Explain.SpatialCandidates = store.Len() - 1
	}
	if k := req.Rank(); k > 1 {
		if err := proc.EnsureLevelsCtx(ctx, k); err != nil {
			return fail(err)
		}
	}
	if own == nil {
		own = []int64{} // non-nil empty: restrict to nothing, not to everything
	}
	item := e.execRequestRestricted(ctx, proc, req, own)
	if item.Err != nil {
		return fail(item.Err)
	}
	res.OIDs = item.OIDs
	res.Explain.Wall = time.Since(start)
	res.Explain.RefineWall = res.Explain.Wall
	return res, nil
}
