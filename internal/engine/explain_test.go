package engine

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// TestExplainShardJSONRoundTrip pins the wire behavior of the per-shard
// aggregation fields: a router-populated Explain (Shards + one entry per
// shard) survives a JSON round-trip exactly, and a single-engine Explain
// (zero-valued shard fields) omits them from the encoding entirely so the
// pre-cluster wire format is unchanged.
func TestExplainShardJSONRoundTrip(t *testing.T) {
	ex := Explain{
		Candidates: 499,
		Survivors:  120,
		MemoHit:    true,
		Workers:    8,
		Wall:       1500 * time.Microsecond,
		Shards:     3,
		ShardExplains: []Explain{
			{Candidates: 170, Survivors: 41, Wall: 200 * time.Microsecond},
			{Candidates: 160, Survivors: 0, Wall: 180 * time.Microsecond},
			{Candidates: 169, Survivors: 79, Wall: 220 * time.Microsecond},
		},
	}
	b, err := json.Marshal(ex)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got Explain
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(ex, got) {
		t.Fatalf("round trip changed Explain:\n  sent %+v\n  got  %+v", ex, got)
	}

	single := Explain{Candidates: 10, Survivors: 10, Workers: 1, Wall: time.Millisecond}
	b, err = json.Marshal(single)
	if err != nil {
		t.Fatalf("marshal single-engine explain: %v", err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("unmarshal into map: %v", err)
	}
	for _, key := range []string{"shards", "shard_explains"} {
		if _, ok := m[key]; ok {
			t.Errorf("zero-valued %q leaked into single-engine JSON: %s", key, b)
		}
	}

	// A Result carrying the aggregated Explain round-trips too (the
	// modserver query op ships Explain inside each answer).
	res := Result{Kind: KindUQ31, OIDs: []int64{2, 5}, Explain: ex}
	b, err = json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	var gotRes Result
	if err := json.Unmarshal(b, &gotRes); err != nil {
		t.Fatalf("unmarshal result: %v", err)
	}
	if !reflect.DeepEqual(res, gotRes) {
		t.Fatalf("result round trip changed:\n  sent %+v\n  got  %+v", res, gotRes)
	}
}
