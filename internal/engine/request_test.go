package engine

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/queries"
)

// TestRequestValidate is the centralized window/parameter validation table:
// every kind rejects a degenerate window identically, ranked kinds reject
// k < 1, fraction kinds reject x outside [0, 1].
func TestRequestValidate(t *testing.T) {
	allKinds := []Kind{
		KindUQ11, KindUQ12, KindUQ13, KindUQ21, KindUQ22, KindUQ23,
		KindUQ31, KindUQ32, KindUQ33, KindUQ41, KindUQ42, KindUQ43,
		KindNNAt, KindRankAt, KindAllNNAt, KindAllRankAt,
		KindThreshold, KindAllThreshold, KindAllPairs, KindReverse,
	}
	ranked := map[Kind]bool{
		KindUQ21: true, KindUQ22: true, KindUQ23: true,
		KindUQ41: true, KindUQ42: true, KindUQ43: true,
		KindRankAt: true, KindAllRankAt: true,
	}
	frac := map[Kind]bool{
		KindUQ13: true, KindUQ23: true, KindUQ33: true, KindUQ43: true,
		KindThreshold: true, KindAllThreshold: true,
	}
	for _, kind := range allKinds {
		ok := Request{Kind: kind, QueryOID: 1, Tb: 0, Te: 60, K: 2, X: 0.5, P: 0.5}
		if err := ok.Validate(); err != nil {
			t.Errorf("%s: valid request rejected: %v", kind, err)
		}
		for _, w := range []struct{ tb, te float64 }{{60, 0}, {10, 10}, {0, -1}} {
			bad := ok
			bad.Tb, bad.Te = w.tb, w.te
			if err := bad.Validate(); !errors.Is(err, ErrBadWindow) {
				t.Errorf("%s window [%g, %g]: err=%v, want ErrBadWindow", kind, w.tb, w.te, err)
			}
		}
		if ranked[kind] {
			bad := ok
			bad.K = 0
			if err := bad.Validate(); !errors.Is(err, ErrBadRank) {
				t.Errorf("%s k=0: err=%v, want ErrBadRank", kind, err)
			}
		}
		if frac[kind] {
			bad := ok
			bad.X = 1.5
			if err := bad.Validate(); !errors.Is(err, ErrBadFrac) {
				t.Errorf("%s x=1.5: err=%v, want ErrBadFrac", kind, err)
			}
		}
	}
	if err := (Request{Kind: "NOPE", Tb: 0, Te: 60}).Validate(); !errors.Is(err, ErrBadKind) {
		t.Errorf("unknown kind: err=%v, want ErrBadKind", err)
	}
	for _, k := range []Kind{KindThreshold, KindAllThreshold} {
		bad := Request{Kind: k, QueryOID: 1, Tb: 0, Te: 60, X: 0.5, P: 1.5}
		if err := bad.Validate(); !errors.Is(err, ErrBadFrac) {
			t.Errorf("%s p=1.5: err=%v, want ErrBadFrac", k, err)
		}
	}
	// Every route rejects the bad window before touching the store — no
	// silent empty answers.
	store, qOID := newStore(t, 20, 1)
	eng := New(2)
	if _, err := eng.Do(context.Background(), store, Request{Kind: KindUQ31, QueryOID: qOID, Tb: 60, Te: 0}); !errors.Is(err, ErrBadWindow) {
		t.Errorf("Do with tb > te: err=%v, want ErrBadWindow", err)
	}
}

// TestDoMatchesExec: the deprecated Exec surface and the unified Do must
// answer identically kind by kind.
func TestDoMatchesExec(t *testing.T) {
	store, qOID := newStore(t, 150, 13)
	eng := New(0)
	ctx := context.Background()
	qs := append(batchKinds(),
		Query{Kind: KindUQ11, OID: qOID + 3},
		Query{Kind: KindUQ12, OID: qOID + 3},
		Query{Kind: KindUQ22, OID: qOID + 4, K: 2},
		Query{Kind: KindNNAt, OID: qOID + 5, T: 20},
		Query{Kind: KindRankAt, OID: qOID + 5, T: 20, K: 2},
	)
	for _, q := range qs {
		item := eng.Exec(store, qOID, 0, 60, q)
		res, err := eng.Do(ctx, store, q.request(qOID, 0, 60))
		if (item.Err == nil) != (err == nil) {
			t.Fatalf("%s: exec err=%v, do err=%v", q.Kind, item.Err, err)
		}
		if item.IsBool != res.IsBool || item.Bool != res.Bool || !reflect.DeepEqual(item.OIDs, res.OIDs) {
			t.Fatalf("%s: exec %+v != do %+v", q.Kind, item, res)
		}
		if res.Explain.Workers != eng.Workers() {
			t.Fatalf("%s: explain workers %d != %d", q.Kind, res.Explain.Workers, eng.Workers())
		}
	}
	// Explain reports envelope reuse on the second identical request.
	res, err := eng.Do(ctx, store, Request{Kind: KindUQ31, QueryOID: qOID, Tb: 0, Te: 60})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Explain.MemoHit {
		t.Error("repeat request did not report a memo hit")
	}
	if res.Explain.Candidates == 0 || res.Explain.Survivors == 0 {
		t.Errorf("explain counters empty: %+v", res.Explain)
	}
}

// TestDoThresholdAndExtensions checks the Section 7 kinds against their
// serial Processor counterparts.
func TestDoThresholdAndExtensions(t *testing.T) {
	store, qOID := newStore(t, 16, 17)
	eng := New(0)
	ctx := context.Background()
	proc, err := eng.Processor(store, qOID, 0, 60)
	if err != nil {
		t.Fatal(err)
	}

	wantAll, err := proc.ThresholdNNAll(0.3, 0.1, queries.ThresholdConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Do(ctx, store, Request{Kind: KindAllThreshold, QueryOID: qOID, Tb: 0, Te: 60, P: 0.3, X: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.OIDs, wantAll) {
		t.Fatalf("ALLTHRESH: do=%v serial=%v", res.OIDs, wantAll)
	}

	target := proc.CandidateOIDs()[0]
	wantOne, err := proc.ThresholdNN(target, 0.3, 0.1, queries.ThresholdConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err = eng.Do(ctx, store, Request{Kind: KindThreshold, QueryOID: qOID, Tb: 0, Te: 60, OID: target, P: 0.3, X: 0.1})
	if err != nil || !res.IsBool || res.Bool != wantOne {
		t.Fatalf("THRESH(%d): do=%+v err=%v, want %v", target, res, err, wantOne)
	}

	wantPairs, err := queries.AllPairsPossibleNN(store.All(), 0, 60, store.Radius())
	if err != nil {
		t.Fatal(err)
	}
	res, err = eng.Do(ctx, store, Request{Kind: KindAllPairs, Tb: 0, Te: 60})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Pairs, wantPairs) {
		t.Fatalf("ALLPAIRS diverged from serial all-pairs")
	}

	targetTr, err := store.Get(target)
	if err != nil {
		t.Fatal(err)
	}
	wantRev, err := queries.ReversePossibleNN(store.All(), targetTr, 0, 60, store.Radius())
	if err != nil {
		t.Fatal(err)
	}
	res, err = eng.Do(ctx, store, Request{Kind: KindReverse, Tb: 0, Te: 60, OID: target})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.OIDs, wantRev) {
		t.Fatalf("REVERSE: do=%v serial=%v", res.OIDs, wantRev)
	}
	if _, err := eng.Do(ctx, store, Request{Kind: KindReverse, Tb: 0, Te: 60, OID: 999999}); !errors.Is(err, ErrUnknownOID) {
		t.Fatalf("REVERSE unknown target: err=%v, want ErrUnknownOID", err)
	}
}

// TestMemoLRU: a steadily re-hit key must survive memoCap inserts — the
// old insertion-order eviction dropped exactly the hottest (oldest) entry.
func TestMemoLRU(t *testing.T) {
	store, qOID := newStore(t, 30, 23)
	eng := New(1)
	hot, err := eng.Processor(store, qOID, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < memoCap+8; i++ {
		// A distinct window per iteration forces a fresh memo entry...
		if _, err := eng.Processor(store, qOID, 0, 10+float64(i)/10); err != nil {
			t.Fatal(err)
		}
		// ...while the hot key is touched every time.
		got, err := eng.Processor(store, qOID, 0, 60)
		if err != nil {
			t.Fatal(err)
		}
		if got != hot {
			t.Fatalf("hot key evicted after %d inserts (LRU regression)", i+1)
		}
	}
	if n := eng.MemoLen(); n > memoCap {
		t.Fatalf("memo grew to %d > cap %d", n, memoCap)
	}
}

// TestDoBatchCancellation: a context canceled mid-batch surfaces
// context.Canceled and leaves the store (and engine) usable.
func TestDoBatchCancellation(t *testing.T) {
	store, qOID := newStore(t, 200, 29)
	eng := New(2)

	// Deterministic: an already-canceled context does no work.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.DoBatch(ctx, store, []Request{{Kind: KindUQ31, QueryOID: qOID, Tb: 0, Te: 60}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled batch: err=%v, want context.Canceled", err)
	}

	// Mid-batch: cancel while the batch is grinding through distinct
	// windows (each one a fresh preprocessing).
	reqs := make([]Request, 200)
	for i := range reqs {
		reqs[i] = Request{Kind: KindUQ31, QueryOID: qOID, Tb: 0, Te: 30 + float64(i)/100}
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel2()
	}()
	results, err := eng.DoBatch(ctx2, store, reqs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-batch cancel: err=%v, want context.Canceled", err)
	}
	if len(results) == len(reqs) {
		t.Log("batch completed before cancel fired (machine unusually fast); result-length check skipped")
	}

	// The store and engine remain fully usable with a live context.
	res, err := eng.Do(context.Background(), store, Request{Kind: KindUQ31, QueryOID: qOID, Tb: 0, Te: 60})
	if err != nil || res.Err != nil {
		t.Fatalf("engine unusable after cancellation: %v / %v", err, res.Err)
	}
}

// TestFilterCancellationBetweenTasks: the worker pool observes ctx between
// per-OID tasks (deterministically, by canceling from inside a task).
func TestFilterCancellationBetweenTasks(t *testing.T) {
	for _, workers := range []int{1, 4} {
		eng := New(workers)
		ctx, cancel := context.WithCancel(context.Background())
		oids := make([]int64, 64)
		for i := range oids {
			oids[i] = int64(i)
		}
		ran := 0
		_, err := eng.filterOIDs(ctx, oids, func(oid int64) (bool, error) {
			ran++
			cancel()
			return true, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err=%v, want context.Canceled", workers, err)
		}
		if ran == len(oids) {
			t.Errorf("workers=%d: all %d tasks ran despite cancellation", workers, ran)
		}
		cancel()
	}
}

// TestCanceledBuildDoesNotPoisonMemo: a preprocessing aborted by its
// context must not stick in the memo as a permanent error.
func TestCanceledBuildDoesNotPoisonMemo(t *testing.T) {
	store, qOID := newStore(t, 150, 43)
	eng := New(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := eng.processor(ctx, store, qOID, 0, 60, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled build: err=%v, want context.Canceled", err)
	}
	if _, _, err := eng.processor(context.Background(), store, qOID, 0, 60, nil); err != nil {
		t.Fatalf("memo poisoned by canceled build: %v", err)
	}
}
