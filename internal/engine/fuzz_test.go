package engine

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzRequestJSON drives arbitrary bytes through the Request wire contract:
// whatever decodes must Validate without panicking, re-encode successfully
// (the router forwards Request JSON verbatim, so every decodable request
// must be forwardable), and re-encode stably (encode(decode(encode(r))) ==
// encode(r), the property the shard protocol relies on for byte-identical
// forwarding).
func FuzzRequestJSON(f *testing.F) {
	f.Add([]byte(`{"kind":"UQ31","query_oid":1,"tb":0,"te":60}`))
	f.Add([]byte(`{"kind":"UQ43","query_oid":9,"tb":-5,"te":5,"k":3,"x":0.5}`))
	f.Add([]byte(`{"kind":"THRESH","query_oid":1,"tb":0,"te":1,"oid":2,"p":0.65,"x":0.5}`))
	f.Add([]byte(`{"kind":"ALLPAIRS","tb":0,"te":60}`))
	f.Add([]byte(`{"kind":"","tb":1e308,"te":-1e308,"k":-1,"x":2,"p":-3}`))
	f.Add([]byte(`{"kind":"NN@","t":30,"tb":0,"te":60,"oid":-9223372036854775808}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		if err := json.Unmarshal(data, &req); err != nil {
			return // not a Request; nothing to check
		}
		_ = req.Validate() // must never panic, whatever the field values

		first, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("decoded request failed to re-encode: %v (request %+v)", err, req)
		}
		var again Request
		if err := json.Unmarshal(first, &again); err != nil {
			t.Fatalf("re-encoded request failed to decode: %v (json %s)", err, first)
		}
		second, err := json.Marshal(again)
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("encoding not stable:\n  first  %s\n  second %s", first, second)
		}
		if req.Validate() == nil && again.Validate() != nil {
			t.Fatalf("validity lost in round trip: %+v -> %+v", req, again)
		}
	})
}
