package engine

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/mod"
	"repro/internal/textidx"
)

// tagFixture builds a store where tags are a deterministic function of
// the OID, so each predicate selects a known, non-trivial sub-MOD.
func tagFixture(t *testing.T, n int, seed int64) (*mod.Store, int64) {
	t.Helper()
	store, qOID := newStore(t, n, seed)
	for _, tr := range store.All() {
		var tags []string
		if tr.OID%2 == 0 {
			tags = append(tags, "available")
		}
		if tr.OID%3 == 0 {
			tags = append(tags, "ev")
		}
		if tr.OID%5 == 0 {
			tags = append(tags, "wheelchair")
		}
		if tags != nil {
			if err := store.SetTags(tr.OID, tags); err != nil {
				t.Fatal(err)
			}
		}
	}
	return store, qOID
}

// subStore rebuilds the predicate's ground-truth universe as its own
// store: the matching trajectories plus the (exempt) query when qOID is
// non-zero, with no tags and no predicate. Sub-MOD semantics say every
// filtered request must answer byte-identically against it. The kinds
// that ignore QueryOID (ALLPAIRS, REVERSE) have no exempt query — their
// ground truth passes qOID 0.
func subStore(t *testing.T, store *mod.Store, qOID int64, where *textidx.Predicate) *mod.Store {
	t.Helper()
	sub, err := mod.NewUniformStore(store.Radius())
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range store.All() {
		if (qOID != 0 && tr.OID == qOID) || where.Matches(store.Tags(tr.OID)) {
			if err := sub.Insert(tr); err != nil {
				t.Fatal(err)
			}
		}
	}
	return sub
}

// TestDoWhereMatchesSubStore is the engine-level sub-MOD equivalence
// gate: for every kind and a matrix of ALL/ANY/NOT predicates, Do with
// Where set answers identically to Do without Where against the rebuilt
// sub-store.
func TestDoWhereMatchesSubStore(t *testing.T) {
	store, qOID := tagFixture(t, 80, 23)
	eng := New(0)
	ctx := context.Background()

	// Targets: the first matching and first non-matching non-query OIDs
	// are predicate-dependent, so pick them per predicate below.
	preds := []*textidx.Predicate{
		{All: []string{"available"}},
		{Any: []string{"ev", "wheelchair"}},
		{Not: []string{"ev"}},
		{All: []string{"available"}, Not: []string{"wheelchair"}},
		{All: []string{"available"}, Any: []string{"ev", "wheelchair"}},
	}
	for _, where := range preds {
		sub := subStore(t, store, qOID, where)
		subNoQ := subStore(t, store, 0, where)
		if n := sub.Len(); n < 5 || n >= store.Len() {
			t.Fatalf("%s: degenerate sub-MOD of %d objects", where.Key(), n)
		}
		var matchOID int64
		for _, tr := range sub.All() {
			if tr.OID != qOID {
				matchOID = tr.OID
				break
			}
		}
		reqs := []Request{
			{Kind: KindUQ11, QueryOID: qOID, Tb: 0, Te: 60, OID: matchOID},
			{Kind: KindUQ12, QueryOID: qOID, Tb: 0, Te: 60, OID: matchOID},
			{Kind: KindUQ13, QueryOID: qOID, Tb: 0, Te: 60, OID: matchOID, X: 0.25},
			{Kind: KindUQ21, QueryOID: qOID, Tb: 0, Te: 60, OID: matchOID, K: 2},
			{Kind: KindUQ22, QueryOID: qOID, Tb: 0, Te: 60, OID: matchOID, K: 2},
			{Kind: KindUQ23, QueryOID: qOID, Tb: 0, Te: 60, OID: matchOID, K: 2, X: 0.25},
			{Kind: KindNNAt, QueryOID: qOID, Tb: 0, Te: 60, OID: matchOID, T: 30},
			{Kind: KindRankAt, QueryOID: qOID, Tb: 0, Te: 60, OID: matchOID, T: 30, K: 2},
			{Kind: KindThreshold, QueryOID: qOID, Tb: 0, Te: 60, OID: matchOID, P: 0.1, X: 0.25},
			{Kind: KindUQ31, QueryOID: qOID, Tb: 0, Te: 60},
			{Kind: KindUQ32, QueryOID: qOID, Tb: 0, Te: 60},
			{Kind: KindUQ33, QueryOID: qOID, Tb: 0, Te: 60, X: 0.25},
			{Kind: KindUQ41, QueryOID: qOID, Tb: 0, Te: 60, K: 3},
			{Kind: KindUQ42, QueryOID: qOID, Tb: 0, Te: 60, K: 2},
			{Kind: KindUQ43, QueryOID: qOID, Tb: 0, Te: 60, K: 2, X: 0.25},
			{Kind: KindAllNNAt, QueryOID: qOID, Tb: 0, Te: 60, T: 30},
			{Kind: KindAllRankAt, QueryOID: qOID, Tb: 0, Te: 60, T: 30, K: 2},
			{Kind: KindAllThreshold, QueryOID: qOID, Tb: 0, Te: 60, P: 0.1, X: 0.25},
			{Kind: KindAllPairs, Tb: 0, Te: 60},
			{Kind: KindReverse, Tb: 0, Te: 60, OID: matchOID},
		}
		for _, req := range reqs {
			filtered := req
			filtered.Where = where
			got, err := eng.Do(ctx, store, filtered)
			if err != nil {
				t.Fatalf("%s %s: %v", where.Key(), req.Kind, err)
			}
			truth := sub
			if !req.Kind.needsProcessor() {
				truth = subNoQ
			}
			want, err := eng.Do(ctx, truth, req)
			if err != nil {
				t.Fatalf("%s %s ground truth: %v", where.Key(), req.Kind, err)
			}
			if got.IsBool != want.IsBool || got.Bool != want.Bool ||
				!reflect.DeepEqual(got.OIDs, want.OIDs) || !reflect.DeepEqual(got.Pairs, want.Pairs) {
				t.Errorf("%s %s: filtered %+v != sub-store %+v", where.Key(), req.Kind,
					answerOf(got), answerOf(want))
			}
			if got.Explain.SpatialCandidates < got.Explain.TextualCandidates {
				t.Errorf("%s %s: textual %d > spatial %d", where.Key(), req.Kind,
					got.Explain.TextualCandidates, got.Explain.SpatialCandidates)
			}
		}
	}
}

// answerOf projects the comparable answer out of a Result for messages.
func answerOf(r Result) map[string]any {
	return map[string]any{"isBool": r.IsBool, "bool": r.Bool, "oids": r.OIDs, "pairs": r.Pairs}
}

// TestDoWhereTargets pins the target semantics under a predicate: an
// existing non-matching target answers false (or empty, for reverse)
// without error; an absent target is still ErrUnknownOID.
func TestDoWhereTargets(t *testing.T) {
	store, qOID := tagFixture(t, 40, 29)
	eng := New(0)
	ctx := context.Background()
	where := &textidx.Predicate{All: []string{"available"}}
	var nonMatch int64
	for _, tr := range store.All() {
		if tr.OID != qOID && !where.Matches(store.Tags(tr.OID)) {
			nonMatch = tr.OID
			break
		}
	}
	if nonMatch == 0 {
		t.Fatal("fixture has no non-matching object")
	}
	for _, kind := range []Kind{KindUQ11, KindUQ12, KindUQ21, KindNNAt, KindThreshold} {
		req := Request{Kind: kind, QueryOID: qOID, Tb: 0, Te: 60, OID: nonMatch,
			K: 2, X: 0.5, P: 0.5, T: 30, Where: where}
		res, err := eng.Do(ctx, store, req)
		if err != nil {
			t.Fatalf("%s non-matching target: %v", kind, err)
		}
		if !res.IsBool || res.Bool {
			t.Errorf("%s non-matching target: got %+v, want false", kind, answerOf(res))
		}
	}
	res, err := eng.Do(ctx, store, Request{Kind: KindReverse, Tb: 0, Te: 60, OID: nonMatch, Where: where})
	if err != nil {
		t.Fatalf("reverse non-matching target: %v", err)
	}
	if len(res.OIDs) != 0 {
		t.Errorf("reverse non-matching target: got %v, want empty", res.OIDs)
	}
	for _, kind := range []Kind{KindUQ11, KindReverse} {
		req := Request{Kind: kind, QueryOID: qOID, Tb: 0, Te: 60, OID: 1 << 40, Where: where}
		if _, err := eng.Do(ctx, store, req); !errors.Is(err, ErrUnknownOID) {
			t.Errorf("%s absent target: err=%v, want ErrUnknownOID", kind, err)
		}
	}
	// A malformed predicate dies in Validate with the shared sentinel.
	bad := Request{Kind: KindUQ31, QueryOID: qOID, Tb: 0, Te: 60, Where: &textidx.Predicate{}}
	if err := bad.Validate(); !errors.Is(err, ErrBadPredicate) {
		t.Errorf("empty predicate: err=%v, want ErrBadPredicate", err)
	}
	if _, err := eng.Do(ctx, store, Request{Kind: KindUQ31, QueryOID: qOID, Tb: 0, Te: 60,
		Where: &textidx.Predicate{All: []string{"bad tag"}}}); err == nil {
		t.Error("bad tag in predicate accepted by Do")
	}
}

// TestDoWhereFullScanAgrees: the FullScan escape hatch must apply the
// predicate too — the index pre-pass is an accelerator, the filter is
// semantics.
func TestDoWhereFullScanAgrees(t *testing.T) {
	store, qOID := tagFixture(t, 40, 31)
	ctx := context.Background()
	where := &textidx.Predicate{Any: []string{"ev", "wheelchair"}}
	pruned := New(0)
	full := NewWith(Options{FullScan: true})
	for _, req := range []Request{
		{Kind: KindUQ31, QueryOID: qOID, Tb: 0, Te: 60, Where: where},
		{Kind: KindUQ41, QueryOID: qOID, Tb: 0, Te: 60, K: 2, Where: where},
		{Kind: KindAllThreshold, QueryOID: qOID, Tb: 0, Te: 60, P: 0.1, X: 0.25, Where: where},
	} {
		a, err := pruned.Do(ctx, store, req)
		if err != nil {
			t.Fatal(err)
		}
		b, err := full.Do(ctx, store, req)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.OIDs, b.OIDs) {
			t.Errorf("%s: pruned %v != fullscan %v", req.Kind, a.OIDs, b.OIDs)
		}
	}
}
