// Package textidx adds the textual half of the spatio-textual query
// stack: canonical keyword/attribute tags on trajectories, ALL/ANY/NOT
// predicates over them, and a hybrid index that hangs inverted OID lists
// off the segment R-tree's leaf cells (after the spatial-keyword hybrid
// indexing of Cong et al., "Efficient Spatial Keyword Search in
// Trajectory Databases").
//
// A predicate query runs over the sub-MOD of matching objects: filtered
// objects do not block, do not shape the envelope, and cannot answer —
// the result is byte-identical to rebuilding a store from only the
// matching trajectories and running the plain engine. The hybrid index
// only accelerates that semantics: per-cell tag unions let the candidate
// sweep skip whole R-tree cells that contain no matching object before
// any distance function is built, and the per-tag postings answer "which
// OIDs match" without a store scan.
//
// The Index is immutable. Live mutation goes through the copy-on-write
// WithTags/WithObject/WithGeometry derivations, which share postings and
// cells with the original and track geometry the cells no longer cover
// in a conservative overflow list; the store rebuilds lazily when the
// overflow grows past its threshold.
package textidx

import (
	"errors"
	"fmt"
	"slices"
	"strings"

	"repro/internal/geom"
	"repro/internal/sindex"
)

// MaxTagLen bounds a single canonical tag's length.
const MaxTagLen = 64

// MaxTags bounds the tag set of one object and each predicate clause:
// tags are attributes ("available", "wheelchair"), not documents.
const MaxTags = 32

// ErrBadTag rejects a tag that cannot be canonicalized.
var ErrBadTag = errors.New("textidx: bad tag")

// ErrBadPredicate rejects a malformed predicate.
var ErrBadPredicate = errors.New("textidx: bad predicate")

// CanonTag canonicalizes one tag: ASCII-lowercased, 1..MaxTagLen bytes,
// drawn from [a-z0-9_.:@/+-]. The charset keeps tags safe inside every
// surface they ride through — UQL string literals, the wire predicate
// key, and the JSON forms — without any escaping.
func CanonTag(tag string) (string, error) {
	t := strings.ToLower(strings.TrimSpace(tag))
	if len(t) == 0 || len(t) > MaxTagLen {
		return "", fmt.Errorf("%w: %q (want 1..%d chars)", ErrBadTag, tag, MaxTagLen)
	}
	for _, c := range []byte(t) {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		case c == '_' || c == '.' || c == ':' || c == '@' || c == '/' || c == '+' || c == '-':
		default:
			return "", fmt.Errorf("%w: %q (char %q not in [a-z0-9_.:@/+-])", ErrBadTag, tag, string(c))
		}
	}
	return t, nil
}

// CanonTags canonicalizes a tag set: each tag through CanonTag, sorted,
// deduplicated, at most MaxTags. A nil or empty input returns nil — the
// canonical form of "untagged".
func CanonTags(tags []string) ([]string, error) {
	if len(tags) == 0 {
		return nil, nil
	}
	out := make([]string, 0, len(tags))
	for _, tag := range tags {
		t, err := CanonTag(tag)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	slices.Sort(out)
	out = slices.Compact(out)
	if len(out) > MaxTags {
		return nil, fmt.Errorf("%w: %d tags (max %d)", ErrBadTag, len(out), MaxTags)
	}
	return out, nil
}

// Predicate is an attribute filter over tag sets: an object matches when
// it carries every All tag, at least one Any tag (when Any is
// non-empty), and no Not tag. A nil *Predicate matches everything. An
// untagged object matches a predicate with only Not clauses.
type Predicate struct {
	All []string `json:"all,omitempty"`
	Any []string `json:"any,omitempty"`
	Not []string `json:"not,omitempty"`
}

// Validate checks the predicate: at least one clause non-empty, every
// tag canonicalizable, clause sizes within MaxTags. A nil predicate is
// valid (no filter).
func (p *Predicate) Validate() error {
	if p == nil {
		return nil
	}
	if len(p.All) == 0 && len(p.Any) == 0 && len(p.Not) == 0 {
		return fmt.Errorf("%w: empty predicate (use no predicate instead)", ErrBadPredicate)
	}
	for _, clause := range [][]string{p.All, p.Any, p.Not} {
		if _, err := CanonTags(clause); err != nil {
			return fmt.Errorf("%w: %v", ErrBadPredicate, err)
		}
		if len(clause) > MaxTags {
			return fmt.Errorf("%w: clause of %d tags (max %d)", ErrBadPredicate, len(clause), MaxTags)
		}
	}
	return nil
}

// Canon returns the canonical form of a valid predicate: every clause
// canonicalized (lowercased, sorted, deduplicated). It panics on a
// predicate Validate rejects; nil canonicalizes to nil.
func (p *Predicate) Canon() *Predicate {
	if p == nil {
		return nil
	}
	canon := func(clause []string) []string {
		out, err := CanonTags(clause)
		if err != nil {
			panic(fmt.Sprintf("textidx: Canon on invalid predicate: %v", err))
		}
		return out
	}
	return &Predicate{All: canon(p.All), Any: canon(p.Any), Not: canon(p.Not)}
}

// Matches reports whether a canonical-sorted tag set satisfies the
// predicate. Both sides must be canonical (CanonTags / Canon); the store
// and request validation guarantee that for every internal call site.
func (p *Predicate) Matches(tags []string) bool {
	if p == nil {
		return true
	}
	has := func(tag string) bool {
		_, ok := slices.BinarySearch(tags, tag)
		return ok
	}
	for _, tag := range p.All {
		if !has(tag) {
			return false
		}
	}
	if len(p.Any) > 0 {
		ok := false
		for _, tag := range p.Any {
			if has(tag) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	for _, tag := range p.Not {
		if has(tag) {
			return false
		}
	}
	return true
}

// Key returns the canonical cache/wire key of the predicate: "" for nil,
// else a deterministic string two semantically equal predicates share.
// It canonicalizes internally, so differently-ordered clauses key alike.
func (p *Predicate) Key() string {
	if p == nil {
		return ""
	}
	c := p.Canon()
	var b strings.Builder
	b.WriteString("all=")
	b.WriteString(strings.Join(c.All, ","))
	b.WriteString(";any=")
	b.WriteString(strings.Join(c.Any, ","))
	b.WriteString(";not=")
	b.WriteString(strings.Join(c.Not, ","))
	return b.String()
}

// Cell is one leaf cell of the hybrid index: the R-tree leaf's box and
// time span, its segment entries, and the union of tags carried by the
// entries' OIDs. A corridor sweep skips the whole cell when the tag
// union proves no matching object can have a segment there.
type Cell struct {
	Box     geom.AABB
	T0, T1  float64
	Entries []sindex.Entry
	tags    map[string]struct{}
}

// compatible reports whether a matching object could live in this cell:
// false only when the cell's tag union is missing an All tag or (with a
// non-empty Any clause) every Any tag. Not clauses never skip a cell —
// an untagged or differently-tagged cell member may still match.
func (c *Cell) compatible(p *Predicate) bool {
	if p == nil {
		return true
	}
	for _, tag := range p.All {
		if _, ok := c.tags[tag]; !ok {
			return false
		}
	}
	if len(p.Any) > 0 {
		for _, tag := range p.Any {
			if _, ok := c.tags[tag]; ok {
				return true
			}
		}
		return false
	}
	return true
}

// Index is the immutable hybrid keyword index over one store snapshot:
// per-tag inverted OID postings, the OID universe, and per-R-tree-cell
// tag unions. Derive updated views with WithTags/WithObject/
// WithGeometry; the receiver is never modified.
type Index struct {
	universe []int64            // all OIDs, sorted
	tags     map[int64][]string // canonical tag set per OID (absent or nil = untagged)
	postings map[string][]int64 // tag -> sorted OIDs carrying it
	cells    []Cell
	overflow []int64 // sorted OIDs whose geometry or tags postdate the cell build
	churn    int     // copy-on-write derivations since Build
}

// Build constructs the index: universe lists every OID (sorted), tags
// maps OIDs to canonical tag sets (untagged OIDs may be absent), and
// leaves are the segment R-tree's cells (entry IDs are OIDs). The tags
// map is referenced, not copied — callers hand over ownership.
func Build(universe []int64, tags map[int64][]string, leaves []sindex.Leaf) *Index {
	x := &Index{
		universe: slices.Clone(universe),
		tags:     tags,
		postings: make(map[string][]int64),
	}
	slices.Sort(x.universe)
	x.universe = slices.Compact(x.universe)
	if x.tags == nil {
		x.tags = make(map[int64][]string)
	}
	for oid, ts := range x.tags {
		for _, tag := range ts {
			x.postings[tag] = append(x.postings[tag], oid)
		}
	}
	for tag := range x.postings {
		slices.Sort(x.postings[tag])
		x.postings[tag] = slices.Compact(x.postings[tag])
	}
	x.cells = make([]Cell, len(leaves))
	for i, lf := range leaves {
		c := Cell{Box: lf.Box, T0: lf.T0, T1: lf.T1, Entries: lf.Entries, tags: make(map[string]struct{})}
		for _, e := range lf.Entries {
			for _, tag := range x.tags[e.ID] {
				c.tags[tag] = struct{}{}
			}
		}
		x.cells[i] = c
	}
	return x
}

// Len returns the universe size.
func (x *Index) Len() int { return len(x.universe) }

// Overflow returns how many OIDs the cell view no longer covers — the
// store's staleness signal for scheduling a rebuild.
func (x *Index) Overflow() int { return len(x.overflow) }

// Churn returns how many copy-on-write derivations separate this index
// from its Build. Every WithTags/WithObject/WithoutObject step re-clones
// the posting rows it touches, so a long chain keeps paying allocation
// and lookup cost over postings that a fresh Build would have folded
// away — the store cuts the chain once churn outgrows the live
// population, exactly like the segment R-tree's compaction slack.
func (x *Index) Churn() int { return x.churn }

// Tags returns the canonical tag set of an OID (nil when untagged or
// unknown). The returned slice aliases index storage; do not modify.
func (x *Index) Tags(oid int64) []string { return x.tags[oid] }

// Matching returns the sorted OIDs of the universe satisfying the
// predicate; nil predicate returns the whole universe. The result is
// freshly allocated.
func (x *Index) Matching(p *Predicate) []int64 {
	if p == nil {
		return slices.Clone(x.universe)
	}
	var base []int64
	switch {
	case len(p.All) > 0:
		base = slices.Clone(x.postings[p.All[0]])
		for _, tag := range p.All[1:] {
			base = intersectSorted(base, x.postings[tag])
		}
		if len(p.Any) > 0 {
			base = intersectSorted(base, x.unionPostings(p.Any))
		}
	case len(p.Any) > 0:
		base = x.unionPostings(p.Any)
	default:
		base = slices.Clone(x.universe)
	}
	if len(p.Not) > 0 {
		base = subtractSorted(base, x.unionPostings(p.Not))
	}
	return base
}

// MatchSet is Matching as a membership set.
func (x *Index) MatchSet(p *Predicate) map[int64]struct{} {
	ids := x.Matching(p)
	set := make(map[int64]struct{}, len(ids))
	for _, id := range ids {
		set[id] = struct{}{}
	}
	return set
}

// CorridorHits returns the OIDs in match that may have a segment
// intersecting the query window: per-entry hits from cells whose tag
// union is predicate-compatible, plus every overflow OID in match
// (their geometry is not recorded in the cells, so they are kept
// unconditionally — conservative). Hits may repeat; callers dedupe.
func (x *Index) CorridorHits(box geom.AABB, t0, t1 float64, p *Predicate, match map[int64]struct{}) []int64 {
	var out []int64
	for i := range x.cells {
		c := &x.cells[i]
		if c.T1 < t0 || c.T0 > t1 || !c.Box.Intersects(box) {
			continue
		}
		if !c.compatible(p) {
			continue
		}
		for _, e := range c.Entries {
			if e.T1 < t0 || e.T0 > t1 || !e.Box.Intersects(box) {
				continue
			}
			if _, ok := match[e.ID]; ok {
				out = append(out, e.ID)
			}
		}
	}
	for _, oid := range x.overflow {
		if _, ok := match[oid]; ok {
			out = append(out, oid)
		}
	}
	return out
}

// WithTags derives an index in which oid carries newTags (canonical; nil
// clears). The OID joins the universe if new, and joins the overflow
// list — the per-cell tag unions were built from the old tag set, so
// cell skips can no longer speak for this OID.
func (x *Index) WithTags(oid int64, newTags []string) *Index {
	nx := x.cloneTop()
	old := nx.tags[oid]
	removed := subtractSortedStr(old, newTags)
	added := subtractSortedStr(newTags, old)
	tags := make(map[int64][]string, len(nx.tags)+1)
	for k, v := range nx.tags {
		tags[k] = v
	}
	if len(newTags) == 0 {
		delete(tags, oid)
	} else {
		tags[oid] = slices.Clone(newTags)
	}
	nx.tags = tags
	if len(removed) > 0 || len(added) > 0 {
		postings := make(map[string][]int64, len(nx.postings))
		for k, v := range nx.postings {
			postings[k] = v
		}
		for _, tag := range removed {
			postings[tag] = removeSorted(postings[tag], oid)
			if len(postings[tag]) == 0 {
				delete(postings, tag)
			}
		}
		for _, tag := range added {
			postings[tag] = insertSorted(slices.Clone(postings[tag]), oid)
		}
		nx.postings = postings
	}
	nx.universe = insertSorted(slices.Clone(nx.universe), oid)
	nx.overflow = insertSorted(slices.Clone(nx.overflow), oid)
	return nx
}

// WithObject derives an index whose universe includes oid (untagged
// until WithTags says otherwise) and whose overflow covers its geometry.
func (x *Index) WithObject(oid int64) *Index {
	nx := x.cloneTop()
	nx.universe = insertSorted(slices.Clone(nx.universe), oid)
	nx.overflow = insertSorted(slices.Clone(nx.overflow), oid)
	return nx
}

// WithGeometry derives an index acknowledging that oid's geometry
// changed: the cells no longer cover it, so it joins the overflow list
// (and the universe, if new).
func (x *Index) WithGeometry(oid int64) *Index {
	return x.WithObject(oid)
}

// WithoutObject derives an index from which oid has been retired: it
// leaves the universe, its postings, and the overflow list. Cell entries
// built over its old geometry stay behind — they can only produce false
// positives, and CorridorHits intersects every hit with the caller's
// match set, which no longer contains the OID.
func (x *Index) WithoutObject(oid int64) *Index {
	nx := x.cloneTop()
	old := nx.tags[oid]
	if len(old) > 0 {
		tags := make(map[int64][]string, len(nx.tags))
		for k, v := range nx.tags {
			tags[k] = v
		}
		delete(tags, oid)
		nx.tags = tags
		postings := make(map[string][]int64, len(nx.postings))
		for k, v := range nx.postings {
			postings[k] = v
		}
		for _, tag := range old {
			postings[tag] = removeSorted(postings[tag], oid)
			if len(postings[tag]) == 0 {
				delete(postings, tag)
			}
		}
		nx.postings = postings
	}
	nx.universe = removeSorted(nx.universe, oid)
	nx.overflow = removeSorted(nx.overflow, oid)
	return nx
}

func (x *Index) cloneTop() *Index {
	nx := *x
	nx.churn++
	return &nx
}

func (x *Index) unionPostings(tags []string) []int64 {
	var out []int64
	for _, tag := range tags {
		out = unionSorted(out, x.postings[tag])
	}
	return out
}

func intersectSorted(a, b []int64) []int64 {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func unionSorted(a, b []int64) []int64 {
	out := make([]int64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func subtractSorted(a, b []int64) []int64 {
	out := a[:0]
	j := 0
	for _, v := range a {
		for j < len(b) && b[j] < v {
			j++
		}
		if j < len(b) && b[j] == v {
			continue
		}
		out = append(out, v)
	}
	return out
}

// subtractSortedStr returns the elements of a not in b (both sorted).
func subtractSortedStr(a, b []string) []string {
	var out []string
	j := 0
	for _, v := range a {
		for j < len(b) && b[j] < v {
			j++
		}
		if j < len(b) && b[j] == v {
			continue
		}
		out = append(out, v)
	}
	return out
}

func insertSorted(a []int64, v int64) []int64 {
	i, ok := slices.BinarySearch(a, v)
	if ok {
		return a
	}
	return slices.Insert(a, i, v)
}

func removeSorted(a []int64, v int64) []int64 {
	i, ok := slices.BinarySearch(a, v)
	if !ok {
		return a
	}
	out := make([]int64, 0, len(a)-1)
	out = append(out, a[:i]...)
	return append(out, a[i+1:]...)
}
