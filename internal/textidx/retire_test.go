package textidx

// WithoutObject (the retirement step) and flip-churn bounds: removing an
// object strips it from tags, postings, universe, and overflow without
// touching the original; and a single tag flipped back and forth never
// grows the posting rows or the overflow list — only the churn counter,
// which the store layer's chain cut bounds.

import (
	"slices"
	"testing"
)

func TestWithoutObject(t *testing.T) {
	x, _, _ := buildFixture(t, 50)
	victim := int64(7)
	y := x.WithTags(victim, []string{"ev", "pool"})

	z := y.WithoutObject(victim)
	if z.Len() != 49 || y.Len() != 50 {
		t.Fatalf("Len: derived %d original %d", z.Len(), y.Len())
	}
	if z.Tags(victim) != nil {
		t.Fatalf("Tags(%d) = %v after removal", victim, z.Tags(victim))
	}
	for i, p := range fixturePreds() {
		if slices.Contains(z.Matching(p), victim) {
			t.Fatalf("pred %d still matches removed OID %d", i, victim)
		}
	}
	if slices.Contains(z.Matching(nil), victim) {
		t.Fatal("removed OID still in universe")
	}
	// The original derivation is untouched.
	if !slices.Contains(y.Matching(&Predicate{All: []string{"ev", "pool"}}), victim) {
		t.Fatal("original index lost the OID")
	}
	// Removing an absent OID is a harmless no-op derivation.
	if z2 := z.WithoutObject(victim); z2.Len() != z.Len() {
		t.Fatalf("double removal changed Len: %d vs %d", z2.Len(), z.Len())
	}
}

// TestFlipChurnStaysBounded: 10⁴ flips of one tag on one object. The
// posting rows dedupe on re-insert and the overflow list records the OID
// once, so the index's memory footprint is flat — only the churn counter
// (the store's chain-cut signal) advances.
func TestFlipChurnStaysBounded(t *testing.T) {
	x, _, _ := buildFixture(t, 100)
	baseOverflow := x.Overflow()
	cur := x
	const flips = 10_000
	for i := 0; i < flips; i++ {
		if i%2 == 0 {
			cur = cur.WithTags(42, []string{"flip"})
		} else {
			cur = cur.WithTags(42, nil)
		}
	}
	if cur.Len() != 100 {
		t.Fatalf("Len drifted to %d", cur.Len())
	}
	if ov := cur.Overflow(); ov > baseOverflow+1 {
		t.Fatalf("Overflow grew to %d under flip churn (base %d)", ov, baseOverflow)
	}
	if got := cur.Matching(&Predicate{All: []string{"flip"}}); len(got) != 0 {
		t.Fatalf("final (cleared) state still matches: %v", got)
	}
	if cur.Churn() != flips {
		t.Fatalf("Churn = %d, want %d", cur.Churn(), flips)
	}
}
