package textidx

import (
	"math/rand"
	"slices"
	"testing"

	"repro/internal/geom"
	"repro/internal/sindex"
)

func TestCanonTag(t *testing.T) {
	good := map[string]string{
		"Wheelchair":  "wheelchair",
		"  ev  ":      "ev",
		"zone:north":  "zone:north",
		"a_b.c@d/e+f": "a_b.c@d/e+f",
		"X-1":         "x-1",
	}
	for in, want := range good {
		got, err := CanonTag(in)
		if err != nil || got != want {
			t.Errorf("CanonTag(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	bad := []string{"", "   ", "has space", "semi;colon", "q'uote", "comma,", "päron",
		string(make([]byte, MaxTagLen+1))}
	for _, in := range bad {
		if _, err := CanonTag(in); err == nil {
			t.Errorf("CanonTag(%q) accepted", in)
		}
	}
}

func TestCanonTags(t *testing.T) {
	got, err := CanonTags([]string{"EV", "available", "ev", "Available"})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, []string{"available", "ev"}) {
		t.Fatalf("CanonTags = %v", got)
	}
	if out, err := CanonTags(nil); err != nil || out != nil {
		t.Fatalf("CanonTags(nil) = %v, %v", out, err)
	}
	many := make([]string, MaxTags+1)
	for i := range many {
		many[i] = "t" + string(rune('a'+i%26)) + string(rune('a'+i/26))
	}
	if _, err := CanonTags(many); err == nil {
		t.Fatal("CanonTags accepted oversized set")
	}
	if _, err := CanonTags([]string{"ok", "not ok"}); err == nil {
		t.Fatal("CanonTags accepted bad member")
	}
}

func TestPredicateValidateCanonKey(t *testing.T) {
	var nilPred *Predicate
	if err := nilPred.Validate(); err != nil {
		t.Fatalf("nil predicate invalid: %v", err)
	}
	if nilPred.Canon() != nil || nilPred.Key() != "" {
		t.Fatal("nil predicate canon/key")
	}
	if err := (&Predicate{}).Validate(); err == nil {
		t.Fatal("empty predicate accepted")
	}
	if err := (&Predicate{All: []string{"bad tag"}}).Validate(); err == nil {
		t.Fatal("bad tag accepted")
	}
	a := &Predicate{All: []string{"EV", "Available"}, Not: []string{"retired"}}
	b := &Predicate{All: []string{"available", "ev"}, Not: []string{"Retired"}}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Key() != b.Key() {
		t.Fatalf("keys differ: %q vs %q", a.Key(), b.Key())
	}
	if a.Key() == (&Predicate{Any: []string{"available", "ev"}, Not: []string{"retired"}}).Key() {
		t.Fatal("ALL and ANY key alike")
	}
	c := a.Canon()
	if !slices.Equal(c.All, []string{"available", "ev"}) || !slices.Equal(c.Not, []string{"retired"}) {
		t.Fatalf("Canon = %+v", c)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Canon on invalid predicate did not panic")
		}
	}()
	(&Predicate{All: []string{"bad tag"}}).Canon()
}

func TestPredicateMatches(t *testing.T) {
	tags := []string{"available", "ev", "wheelchair"} // canonical sorted
	cases := []struct {
		p    *Predicate
		want bool
	}{
		{nil, true},
		{&Predicate{All: []string{"available", "wheelchair"}}, true},
		{&Predicate{All: []string{"available", "diesel"}}, false},
		{&Predicate{Any: []string{"diesel", "ev"}}, true},
		{&Predicate{Any: []string{"diesel", "gas"}}, false},
		{&Predicate{Not: []string{"retired"}}, true},
		{&Predicate{Not: []string{"ev"}}, false},
		{&Predicate{All: []string{"ev"}, Any: []string{"available"}, Not: []string{"retired"}}, true},
		{&Predicate{All: []string{"ev"}, Any: []string{"diesel"}}, false},
	}
	for i, c := range cases {
		if got := c.p.Matches(tags); got != c.want {
			t.Errorf("case %d: Matches = %v, want %v", i, got, c.want)
		}
	}
	// Untagged objects match NOT-only predicates and fail ALL/ANY.
	if !(&Predicate{Not: []string{"retired"}}).Matches(nil) {
		t.Fatal("untagged failed NOT-only predicate")
	}
	if (&Predicate{Any: []string{"ev"}}).Matches(nil) {
		t.Fatal("untagged matched ANY predicate")
	}
}

// buildFixture makes a deterministic universe of n OIDs with pseudo-random
// tag sets over a small vocabulary, plus one R-tree leaf view with one
// entry per OID laid out on a line.
func buildFixture(t *testing.T, n int) (*Index, map[int64][]string, []sindex.Leaf) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	vocab := []string{"available", "ev", "wheelchair", "pool", "night"}
	tags := make(map[int64][]string)
	universe := make([]int64, 0, n)
	var entries []sindex.Entry
	for i := 0; i < n; i++ {
		oid := int64(i + 1)
		universe = append(universe, oid)
		var ts []string
		for _, v := range vocab {
			if rng.Intn(3) == 0 {
				ts = append(ts, v)
			}
		}
		canon, err := CanonTags(ts)
		if err != nil {
			t.Fatal(err)
		}
		if canon != nil {
			tags[oid] = canon
		}
		x := float64(i)
		entries = append(entries, sindex.Entry{
			ID: oid, Box: geom.AABB{MinX: x, MinY: 0, MaxX: x + 1, MaxY: 1}, T0: 0, T1: 10,
		})
	}
	leaves := sindex.NewRTree(entries, 4).Leaves()
	tagsCopy := make(map[int64][]string, len(tags))
	for k, v := range tags {
		tagsCopy[k] = v
	}
	return Build(universe, tagsCopy, leaves), tags, leaves
}

func bruteMatch(universe []int64, tags map[int64][]string, p *Predicate) []int64 {
	var out []int64
	for _, oid := range universe {
		if p.Matches(tags[oid]) {
			out = append(out, oid)
		}
	}
	return out
}

func fixturePreds() []*Predicate {
	return []*Predicate{
		nil,
		{All: []string{"available"}},
		{All: []string{"available", "ev"}},
		{All: []string{"available", "ev", "wheelchair"}},
		{Any: []string{"pool", "night"}},
		{Not: []string{"night"}},
		{All: []string{"ev"}, Any: []string{"pool", "wheelchair"}, Not: []string{"night"}},
		{All: []string{"nosuchtag"}},
		{Any: []string{"nosuchtag"}},
		{Not: []string{"nosuchtag"}},
	}
}

func TestMatchingAgainstBruteForce(t *testing.T) {
	x, tags, _ := buildFixture(t, 200)
	universe := make([]int64, 0, 200)
	for i := int64(1); i <= 200; i++ {
		universe = append(universe, i)
	}
	for i, p := range fixturePreds() {
		got := x.Matching(p)
		want := bruteMatch(universe, tags, p)
		if !slices.Equal(got, want) {
			t.Errorf("pred %d: Matching = %v, want %v", i, got, want)
		}
		set := x.MatchSet(p)
		if len(set) != len(want) {
			t.Errorf("pred %d: MatchSet size %d, want %d", i, len(set), len(want))
		}
		for _, oid := range want {
			if _, ok := set[oid]; !ok {
				t.Errorf("pred %d: MatchSet missing %d", i, oid)
			}
		}
	}
	if x.Len() != 200 {
		t.Fatalf("Len = %d", x.Len())
	}
}

// TestCorridorHitsConservative: every matching OID with an entry
// intersecting the window must be reported (hits are a superset).
func TestCorridorHitsConservative(t *testing.T) {
	x, tags, leaves := buildFixture(t, 200)
	windows := []struct {
		box    geom.AABB
		t0, t1 float64
	}{
		{geom.AABB{MinX: 10, MinY: 0, MaxX: 30, MaxY: 1}, 0, 10},
		{geom.AABB{MinX: 0, MinY: 0, MaxX: 250, MaxY: 1}, 0, 10},
		{geom.AABB{MinX: 50, MinY: 5, MaxX: 60, MaxY: 9}, 2, 3},
		{geom.AABB{MinX: -10, MinY: -5, MaxX: -1, MaxY: -1}, 0, 10}, // disjoint
		{geom.AABB{MinX: 10, MinY: 0, MaxX: 30, MaxY: 1}, 20, 30},   // time-disjoint
	}
	for wi, w := range windows {
		for pi, p := range fixturePreds() {
			match := x.MatchSet(p)
			got := x.CorridorHits(w.box, w.t0, w.t1, p, match)
			set := make(map[int64]struct{}, len(got))
			for _, id := range got {
				set[id] = struct{}{}
			}
			for _, lf := range leaves {
				for _, e := range lf.Entries {
					inWindow := e.T1 >= w.t0 && e.T0 <= w.t1 && e.Box.Intersects(w.box)
					if inWindow && p.Matches(tags[e.ID]) {
						if _, ok := set[e.ID]; !ok {
							t.Fatalf("window %d pred %d: hit %d missing", wi, pi, e.ID)
						}
					}
				}
			}
			// And never a non-matching OID.
			for id := range set {
				if !p.Matches(tags[id]) {
					t.Fatalf("window %d pred %d: non-matching hit %d", wi, pi, id)
				}
			}
		}
	}
}

func TestCellSkipPrunes(t *testing.T) {
	// Tags clustered by location: left half "west", right half "east".
	var entries []sindex.Entry
	tags := make(map[int64][]string)
	var universe []int64
	for i := 0; i < 64; i++ {
		oid := int64(i + 1)
		universe = append(universe, oid)
		x := float64(i)
		entries = append(entries, sindex.Entry{ID: oid,
			Box: geom.AABB{MinX: x, MinY: 0, MaxX: x + 1, MaxY: 1}, T0: 0, T1: 1})
		if i < 32 {
			tags[oid] = []string{"west"}
		} else {
			tags[oid] = []string{"east"}
		}
	}
	x := Build(universe, tags, sindex.NewRTree(entries, 4).Leaves())
	p := &Predicate{All: []string{"east"}}
	hits := x.CorridorHits(geom.AABB{MinX: 0, MinY: 0, MaxX: 64, MaxY: 1}, 0, 1, p, x.MatchSet(p))
	for _, id := range hits {
		if id <= 32 {
			t.Fatalf("west OID %d reported for east predicate", id)
		}
	}
	if len(hits) != 32 {
		t.Fatalf("got %d east hits, want 32", len(hits))
	}
}

func TestWithTagsCopyOnWrite(t *testing.T) {
	x, _, _ := buildFixture(t, 50)
	before := x.Matching(&Predicate{All: []string{"newtag"}})
	if len(before) != 0 {
		t.Fatal("newtag already present")
	}
	y := x.WithTags(7, []string{"newtag"})
	if got := y.Matching(&Predicate{All: []string{"newtag"}}); !slices.Equal(got, []int64{7}) {
		t.Fatalf("derived Matching = %v", got)
	}
	if got := x.Matching(&Predicate{All: []string{"newtag"}}); len(got) != 0 {
		t.Fatalf("original mutated: %v", got)
	}
	if !slices.Equal(y.Tags(7), []string{"newtag"}) {
		t.Fatalf("Tags(7) = %v", y.Tags(7))
	}
	if y.Overflow() != 1 {
		t.Fatalf("Overflow = %d", y.Overflow())
	}
	// Tag flip must keep the flipped OID in corridor hits regardless of
	// stale cell tag unions (overflow covers it).
	p := &Predicate{All: []string{"newtag"}}
	hits := y.CorridorHits(geom.AABB{MinX: 1000, MinY: 1000, MaxX: 1001, MaxY: 1001}, 0, 1, p, y.MatchSet(p))
	if !slices.Contains(hits, int64(7)) {
		t.Fatalf("overflow OID 7 not reported: %v", hits)
	}
	// Clearing tags removes from postings.
	z := y.WithTags(7, nil)
	if got := z.Matching(p); len(got) != 0 {
		t.Fatalf("cleared tag still matches: %v", got)
	}
	if z.Tags(7) != nil {
		t.Fatal("Tags(7) not cleared")
	}
}

func TestWithObjectAndGeometry(t *testing.T) {
	x, _, _ := buildFixture(t, 10)
	y := x.WithObject(99)
	if y.Len() != 11 || x.Len() != 10 {
		t.Fatalf("Len: derived %d original %d", y.Len(), x.Len())
	}
	if got := y.Matching(nil); !slices.Contains(got, int64(99)) {
		t.Fatal("new OID not in universe")
	}
	// Untagged newcomer matches NOT-only predicates and shows in hits.
	p := &Predicate{Not: []string{"available"}}
	hits := y.CorridorHits(geom.AABB{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 0, 1, p, y.MatchSet(p))
	if !slices.Contains(hits, int64(99)) {
		t.Fatal("overflow newcomer missing from hits")
	}
	z := y.WithGeometry(3)
	if z.Overflow() != 2 {
		t.Fatalf("Overflow = %d", z.Overflow())
	}
	// Idempotent for an already-overflowed OID.
	if z.WithGeometry(3).Overflow() != 2 {
		t.Fatal("overflow duplicated")
	}
}

func TestLeavesAccessor(t *testing.T) {
	var entries []sindex.Entry
	for i := 0; i < 33; i++ {
		x := float64(i)
		entries = append(entries, sindex.Entry{ID: int64(i),
			Box: geom.AABB{MinX: x, MinY: 0, MaxX: x + 1, MaxY: 1}, T0: float64(i), T1: float64(i + 1)})
	}
	tr := sindex.NewRTree(entries, 4)
	leaves := tr.Leaves()
	total := 0
	for _, lf := range leaves {
		total += len(lf.Entries)
		for _, e := range lf.Entries {
			if !lf.Box.Intersects(e.Box) {
				t.Fatalf("leaf box %+v does not cover entry %+v", lf.Box, e)
			}
			if e.T0 < lf.T0 || e.T1 > lf.T1 {
				t.Fatalf("leaf span [%g,%g] does not cover entry [%g,%g]", lf.T0, lf.T1, e.T0, e.T1)
			}
		}
	}
	if total != 33 {
		t.Fatalf("leaves cover %d entries, want 33", total)
	}
	var empty *sindex.RTree
	if empty.Leaves() != nil {
		t.Fatal("nil tree leaves")
	}
	if sindex.NewRTree(nil, 4).Leaves() != nil {
		t.Fatal("empty tree leaves")
	}
}
