package continuous

import (
	"context"
	"errors"
	"testing"

	"repro/internal/engine"
	"repro/internal/mod"
)

// flipIngest alternately steers object 3 next to / away from query
// object 1, so a UQ11(1, 3) subscription emits one event per call.
func flipIngest(t *testing.T, h *Hub, near bool) {
	t.Helper()
	u := revision(3, [3]float64{6, 80, 5.5}, [3]float64{10, 80, 10})
	if near {
		u = revision(3, [3]float64{6, 1, 6}, [3]float64{8, 0.5, 8}, [3]float64{10, 0.5, 10})
	}
	_, events, err := h.Ingest(context.Background(), []mod.Update{u})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("flip ingest (near=%v) emitted %+v, want exactly 1 event", near, events)
	}
}

func TestReplayReturnsMissedEvents(t *testing.T) {
	st := liveScene(t)
	h := NewEngineHub(st, engine.New(1))
	id, res := mustSubscribe(t, h, engine.Request{Kind: engine.KindUQ11, QueryOID: 1, Tb: 0, Te: 10, OID: 3})
	if res.Bool {
		t.Fatal("object 3 should not be a possible NN initially")
	}

	const n = 6
	for i := 0; i < n; i++ {
		flipIngest(t, h, i%2 == 0)
	}

	// Nothing missed: a replay at (or past) the current seq is empty.
	for _, from := range []uint64{n, n + 3} {
		evs, err := h.Replay(id, from)
		if err != nil || len(evs) != 0 {
			t.Fatalf("Replay(%d) = %v, %v; want empty", from, evs, err)
		}
	}

	// Every resume point inside the backlog yields exactly the missed
	// suffix, in order, with contiguous sequence numbers.
	for from := uint64(0); from < n; from++ {
		evs, err := h.Replay(id, from)
		if err != nil {
			t.Fatalf("Replay(%d): %v", from, err)
		}
		if len(evs) != int(n-from) {
			t.Fatalf("Replay(%d) returned %d events, want %d", from, len(evs), n-from)
		}
		for i, ev := range evs {
			if ev.Seq != from+uint64(i)+1 {
				t.Fatalf("Replay(%d)[%d].Seq = %d, want %d", from, i, ev.Seq, from+uint64(i)+1)
			}
			if ev.SubID != id || !ev.IsBool {
				t.Fatalf("Replay(%d)[%d] = %+v", from, i, ev)
			}
			// Events alternate true/false starting with true at seq 1.
			if want := ev.Seq%2 == 1; ev.Bool != want {
				t.Fatalf("Replay(%d)[%d].Bool = %v at seq %d, want %v", from, i, ev.Bool, ev.Seq, want)
			}
		}
	}

	if _, err := h.Replay(id+99, 0); !errors.Is(err, ErrNoSub) {
		t.Fatalf("unknown sub: %v, want ErrNoSub", err)
	}
}

func TestReplayGapWhenBacklogTruncated(t *testing.T) {
	st := liveScene(t)
	h := NewEngineHubWith(st, engine.New(1), HubOptions{BacklogCap: 3})
	id, _ := mustSubscribe(t, h, engine.Request{Kind: engine.KindUQ11, QueryOID: 1, Tb: 0, Te: 10, OID: 3})

	const n = 8
	for i := 0; i < n; i++ {
		flipIngest(t, h, i%2 == 0)
	}

	// The backlog holds only the last 3 events (seqs 6..8): resuming from
	// seq 5 or later works, anything earlier is a gap.
	for from := uint64(n - 3); from <= n; from++ {
		evs, err := h.Replay(id, from)
		if err != nil {
			t.Fatalf("Replay(%d): %v", from, err)
		}
		if len(evs) != int(n-from) {
			t.Fatalf("Replay(%d) returned %d events, want %d", from, len(evs), n-from)
		}
	}
	for from := uint64(0); from < n-3; from++ {
		if _, err := h.Replay(id, from); !errors.Is(err, ErrEventGap) {
			t.Fatalf("Replay(%d) = %v, want ErrEventGap", from, err)
		}
	}
}

func TestReplayDisabledBacklog(t *testing.T) {
	st := liveScene(t)
	h := NewEngineHubWith(st, engine.New(1), HubOptions{BacklogCap: -1})
	id, _ := mustSubscribe(t, h, engine.Request{Kind: engine.KindUQ11, QueryOID: 1, Tb: 0, Te: 10, OID: 3})

	flipIngest(t, h, true)
	if _, err := h.Replay(id, 0); !errors.Is(err, ErrEventGap) {
		t.Fatalf("Replay with retention disabled = %v, want ErrEventGap", err)
	}
	// Up to date is still fine: there is nothing to replay.
	if evs, err := h.Replay(id, 1); err != nil || len(evs) != 0 {
		t.Fatalf("Replay(current) = %v, %v; want empty", evs, err)
	}
}
