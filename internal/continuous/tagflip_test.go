package continuous

// Tag flips and the dirty test: a pure retag carries ChangedFrom = +Inf
// (no motion changed), so the window skip would discard it — the flip
// branch must catch predicate-boundary crossings first, and only those a
// filtered subscription can feel: joins inside the influence zone, leaves
// from inside the superset, and query/target flips. Everything else must
// be skipped, and every emitted answer must match a fresh filtered run.

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/mod"
	"repro/internal/textidx"
)

// retag builds a pure tag flip (no motion change).
func retag(oid int64, tags ...string) mod.Update {
	return mod.Update{OID: oid, Tags: &tags}
}

func TestTagFlipDirtyRule(t *testing.T) {
	st := liveScene(t) // query 1 at y=0; 2 near (y=1); 3, 4 far
	if err := st.SetTags(3, []string{"ev"}); err != nil {
		t.Fatal(err)
	}
	if err := st.SetTags(4, []string{"ev"}); err != nil {
		t.Fatal(err)
	}
	h := NewEngineHub(st, engine.New(1))
	ctx := context.Background()
	ev := &textidx.Predicate{All: []string{"ev"}}

	f31 := engine.Request{Kind: engine.KindUQ31, QueryOID: 1, Tb: 0, Te: 10, Where: ev}
	f11 := engine.Request{Kind: engine.KindUQ11, QueryOID: 1, Tb: 0, Te: 10, OID: 2, Where: ev}
	u31 := engine.Request{Kind: engine.KindUQ31, QueryOID: 1, Tb: 0, Te: 10}
	idF31, resF31 := mustSubscribe(t, h, f31)
	idF11, resF11 := mustSubscribe(t, h, f11)
	idU31, _ := mustSubscribe(t, h, u31)
	if !reflect.DeepEqual(resF31.OIDs, []int64{3}) {
		t.Fatalf("initial filtered UQ31 = %v, want [3] (NN of the EV sub-MOD)", resF31.OIDs)
	}
	if !resF11.IsBool || resF11.Bool {
		t.Fatalf("initial filtered UQ11 = %+v, want false (target 2 not an EV)", resF11)
	}

	fresh := func() {
		t.Helper()
		checkFresh(t, h, st, idF31, f31)
		checkFresh(t, h, st, idF11, f11)
		checkFresh(t, h, st, idU31, u31)
	}
	ingest := func(u mod.Update, wantEvals, wantSkips uint64) []Event {
		t.Helper()
		before := h.Stats()
		_, events, err := h.Ingest(ctx, []mod.Update{u})
		if err != nil {
			t.Fatal(err)
		}
		after := h.Stats()
		if after.Evals-before.Evals != wantEvals || after.Skips-before.Skips != wantSkips {
			t.Fatalf("evals/skips = %d/%d, want %d/%d",
				after.Evals-before.Evals, after.Skips-before.Skips, wantEvals, wantSkips)
		}
		fresh()
		return events
	}

	// Near object 2 becomes an EV: it joins both filtered sub-MODs inside
	// the zone (and is f11's target). The unfiltered sub must skip the
	// pure flip.
	events := ingest(retag(2, "ev"), 2, 1)
	if len(events) != 2 {
		t.Fatalf("join flip: want 2 events, got %+v", events)
	}
	for _, e := range events {
		switch e.SubID {
		case idF31:
			if !reflect.DeepEqual(e.Added, []int64{2}) || !reflect.DeepEqual(e.Removed, []int64{3}) ||
				!reflect.DeepEqual(e.OIDs, []int64{2}) {
				t.Fatalf("filtered UQ31 join event = %+v", e)
			}
		case idF11:
			if !e.IsBool || !e.Bool {
				t.Fatalf("filtered UQ11 join event = %+v", e)
			}
		default:
			t.Fatalf("unexpected event %+v", e)
		}
	}

	// Far object 3 leaves the sub-MOD from outside every superset: its
	// removal cannot move any envelope — all three subs skip, no events.
	if events := ingest(retag(3), 0, 3); len(events) != 0 {
		t.Fatalf("far leave flip emitted %+v", events)
	}

	// A brand-new far object appears untagged, then becomes an EV: the
	// insert is spatially irrelevant and the join flip fails the whole-
	// plan zone test — skips both times.
	ins := revision(5, [3]float64{0, 200, 0}, [3]float64{10, 200, 10})
	if events := ingest(ins, 0, 3); len(events) != 0 {
		t.Fatalf("far insert emitted %+v", events)
	}
	if events := ingest(retag(5, "ev"), 0, 3); len(events) != 0 {
		t.Fatalf("far join flip emitted %+v", events)
	}

	// A flip that never crosses the predicate boundary is invisible even
	// on a near object: object 2 stays an EV, just gains another tag.
	if events := ingest(retag(2, "ev", "wheelchair"), 0, 3); len(events) != 0 {
		t.Fatalf("non-crossing flip emitted %+v", events)
	}

	// Object 2 loses the tag: it leaves from inside f31's superset and is
	// f11's target — both filtered subs re-evaluate and flip back.
	events = ingest(retag(2, "wheelchair"), 2, 1)
	if len(events) != 2 {
		t.Fatalf("leave flip: want 2 events, got %+v", events)
	}
	for _, e := range events {
		switch e.SubID {
		case idF31:
			// The sub-MOD is now {4, 5}; 4 takes over as the relative NN.
			if !reflect.DeepEqual(e.Removed, []int64{2}) || !reflect.DeepEqual(e.Added, []int64{4}) ||
				!reflect.DeepEqual(e.OIDs, []int64{4}) {
				t.Fatalf("filtered UQ31 leave event = %+v", e)
			}
		case idF11:
			if !e.IsBool || e.Bool {
				t.Fatalf("filtered UQ11 leave event = %+v", e)
			}
		default:
			t.Fatalf("unexpected event %+v", e)
		}
	}
}
