package continuous

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/mod"
	"repro/internal/trajectory"
)

// denseLine builds a trajectory moving along x = t at height y over
// [0, 10], one vertex per time unit — dense enough that a mid-plan
// revision at time T only rewrites motion from T-1 on.
func denseLine(t *testing.T, oid int64, y float64) *trajectory.Trajectory {
	t.Helper()
	verts := make([]trajectory.Vertex, 11)
	for i := range verts {
		verts[i] = trajectory.Vertex{X: float64(i), Y: y, T: float64(i)}
	}
	tr, err := trajectory.New(oid, verts)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// liveScene: query object 1 crossing the plane, object 2 shadowing it
// closely (the NN), objects 3 and 4 far away. Every plan covers [0, 10].
func liveScene(t *testing.T) *mod.Store {
	t.Helper()
	st, err := mod.NewUniformStore(0.5)
	if err != nil {
		t.Fatal(err)
	}
	for oid, y := range map[int64]float64{1: 0, 2: 1, 3: 50, 4: 100} {
		if err := st.Insert(denseLine(t, oid, y)); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// revision builds an update revising oid's plan with the (x, y, t)
// triples.
func revision(oid int64, pts ...[3]float64) mod.Update {
	u := mod.Update{OID: oid}
	for _, p := range pts {
		u.Verts = append(u.Verts, trajectory.Vertex{X: p[0], Y: p[1], T: p[2]})
	}
	return u
}

func mustSubscribe(t *testing.T, h *Hub, req engine.Request) (int64, engine.Result) {
	t.Helper()
	id, res, err := h.Subscribe(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	return id, res
}

// checkFresh asserts the hub's current answer equals a fresh engine run.
func checkFresh(t *testing.T, h *Hub, st *mod.Store, id int64, req engine.Request) {
	t.Helper()
	got, err := h.Answer(id)
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.New(1).Do(context.Background(), st, req)
	if err != nil {
		t.Fatal(err)
	}
	if got.IsBool != want.IsBool || got.Bool != want.Bool || !reflect.DeepEqual(got.OIDs, want.OIDs) {
		t.Fatalf("sub %d stale: hub %+v, fresh %+v", id, got, want)
	}
}

func TestSubscribeIngestDiff(t *testing.T) {
	st := liveScene(t)
	h := NewEngineHub(st, engine.New(1))
	ctx := context.Background()

	uq31 := engine.Request{Kind: engine.KindUQ31, QueryOID: 1, Tb: 0, Te: 10}
	uq11 := engine.Request{Kind: engine.KindUQ11, QueryOID: 1, Tb: 0, Te: 10, OID: 3}
	id31, res31 := mustSubscribe(t, h, uq31)
	id11, res11 := mustSubscribe(t, h, uq11)
	if !reflect.DeepEqual(res31.OIDs, []int64{2}) {
		t.Fatalf("initial UQ31 = %v, want [2]", res31.OIDs)
	}
	if res11.Bool {
		t.Fatal("object 3 should not be a possible NN initially")
	}

	// Steer object 3 right next to the query during [6, 10]: both
	// subscriptions flip.
	_, events, err := h.Ingest(ctx, []mod.Update{
		revision(3, [3]float64{6, 1, 6}, [3]float64{8, 0.5, 8}, [3]float64{10, 0.5, 10}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("want 2 events, got %+v", events)
	}
	byID := map[int64]Event{}
	for _, ev := range events {
		byID[ev.SubID] = ev
	}
	if ev := byID[id31]; !reflect.DeepEqual(ev.Added, []int64{3}) || len(ev.Removed) != 0 ||
		!reflect.DeepEqual(ev.OIDs, []int64{2, 3}) || ev.Seq != 1 || ev.Kind != engine.KindUQ31 {
		t.Fatalf("UQ31 event = %+v", ev)
	}
	if ev := byID[id11]; !ev.IsBool || !ev.Bool {
		t.Fatalf("UQ11 event = %+v", ev)
	}
	checkFresh(t, h, st, id31, uq31)
	checkFresh(t, h, st, id11, uq11)

	// Revise it away from t=5 on (before it ever got close): removal.
	_, events, err = h.Ingest(ctx, []mod.Update{
		revision(3, [3]float64{6, 80, 5.5}, [3]float64{10, 80, 10}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("want 2 events, got %+v", events)
	}
	for _, ev := range events {
		if ev.SubID == id31 {
			if !reflect.DeepEqual(ev.Removed, []int64{3}) || !reflect.DeepEqual(ev.OIDs, []int64{2}) || ev.Seq != 2 {
				t.Fatalf("UQ31 removal event = %+v", ev)
			}
		}
		if ev.SubID == id11 && (!ev.IsBool || ev.Bool) {
			t.Fatalf("UQ11 flip-back event = %+v", ev)
		}
	}
	checkFresh(t, h, st, id31, uq31)
	checkFresh(t, h, st, id11, uq11)

	// A no-op-shaped revision (same far path) on a superset outsider:
	// no events, no re-evaluation recorded beyond the previous ones.
	evalsBefore := h.Stats().Evals
	_, events, err = h.Ingest(ctx, []mod.Update{
		revision(4, [3]float64{8, 100, 8}, [3]float64{10, 100, 10}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatalf("irrelevant revision emitted %+v", events)
	}
	if h.Stats().Evals != evalsBefore {
		t.Fatalf("irrelevant revision re-evaluated: %+v", h.Stats())
	}
}

func TestDirtySetSkipsIrrelevantUpdates(t *testing.T) {
	st := liveScene(t)
	h := NewEngineHub(st, engine.New(1))
	ctx := context.Background()

	past := engine.Request{Kind: engine.KindUQ31, QueryOID: 1, Tb: 0, Te: 4}
	live := engine.Request{Kind: engine.KindUQ31, QueryOID: 1, Tb: 0, Te: 10}
	idPast, _ := mustSubscribe(t, h, past)
	idLive, _ := mustSubscribe(t, h, live)

	// Far-away revisions: both subscriptions skip (the past window because
	// the change is after its end, the live one geometrically).
	if _, _, err := h.Ingest(ctx, []mod.Update{
		revision(4, [3]float64{7, 99, 7}, [3]float64{10, 99, 10}),
		revision(3, [3]float64{7, 51, 7}, [3]float64{10, 51, 10}),
	}); err != nil {
		t.Fatal(err)
	}
	if s := h.Stats(); s.Evals != 0 || s.Skips != 2 {
		t.Fatalf("far revisions: stats = %+v, want 0 evals / 2 skips", s)
	}

	// A superset member's revision inside the live window: the live
	// subscription re-evaluates, the past one (change after its end) does
	// not.
	if _, _, err := h.Ingest(ctx, []mod.Update{
		revision(2, [3]float64{7, 1.2, 7}, [3]float64{10, 1.2, 10}),
	}); err != nil {
		t.Fatal(err)
	}
	s := h.Stats()
	if s.Evals != 1 || s.Skips != 3 {
		t.Fatalf("superset revision: stats = %+v, want 1 eval / 3 skips", s)
	}

	// The query object dirties every window its change overlaps — and
	// only those.
	if _, _, err := h.Ingest(ctx, []mod.Update{
		revision(1, [3]float64{7, 0.2, 7}, [3]float64{10, 0.2, 10}),
	}); err != nil {
		t.Fatal(err)
	}
	if s := h.Stats(); s.Evals != 2 || s.Skips != 4 {
		t.Fatalf("query revision: stats = %+v, want 2 evals / 4 skips", s)
	}
	checkFresh(t, h, st, idPast, past)
	checkFresh(t, h, st, idLive, live)
}

func TestInsertedObjectTriggersOnlyNearbySubs(t *testing.T) {
	st := liveScene(t)
	h := NewEngineHub(st, engine.New(1))
	ctx := context.Background()

	req := engine.Request{Kind: engine.KindUQ31, QueryOID: 1, Tb: 0, Te: 10}
	id, _ := mustSubscribe(t, h, req)

	// A new object far away: applied, but no re-evaluation.
	if _, _, err := h.Ingest(ctx, []mod.Update{{OID: 9, Verts: []trajectory.Vertex{
		{X: 0, Y: 200, T: 0}, {X: 10, Y: 200, T: 10},
	}}}); err != nil {
		t.Fatal(err)
	}
	if s := h.Stats(); s.Evals != 0 || s.Skips != 1 {
		t.Fatalf("far insert: stats = %+v", s)
	}

	// A new object right on top of the query: event with the addition.
	_, events, err := h.Ingest(ctx, []mod.Update{{OID: 10, Verts: []trajectory.Vertex{
		{X: 0, Y: 0.5, T: 0}, {X: 10, Y: 0.5, T: 10},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || !reflect.DeepEqual(events[0].Added, []int64{10}) {
		t.Fatalf("near insert events = %+v", events)
	}
	checkFresh(t, h, st, id, req)
}

func TestUnprofiledKindsAlwaysReevaluate(t *testing.T) {
	st := liveScene(t)
	h := NewEngineHub(st, engine.New(1))
	ctx := context.Background()

	_, _ = mustSubscribe(t, h, engine.Request{Kind: engine.KindReverse, OID: 2, Tb: 0, Te: 10})
	if _, _, err := h.Ingest(ctx, []mod.Update{
		revision(4, [3]float64{7, 99, 7}, [3]float64{10, 99, 10}),
	}); err != nil {
		t.Fatal(err)
	}
	if s := h.Stats(); s.Evals != 1 || s.Skips != 0 {
		t.Fatalf("reverse kind: stats = %+v, want an eval on every ingest", s)
	}
}

func TestHubAdministrivia(t *testing.T) {
	st := liveScene(t)
	h := NewEngineHub(st, nil)
	ctx := context.Background()

	// Bad requests are rejected.
	if _, _, err := h.Subscribe(ctx, engine.Request{Kind: engine.KindUQ31, QueryOID: 1, Tb: 5, Te: 5}); !errors.Is(err, engine.ErrBadWindow) {
		t.Fatalf("bad window err = %v", err)
	}
	if _, _, err := h.Subscribe(ctx, engine.Request{Kind: engine.KindUQ31, QueryOID: 77, Tb: 0, Te: 10}); !errors.Is(err, mod.ErrNotFound) {
		t.Fatalf("unknown query err = %v", err)
	}

	id, _ := mustSubscribe(t, h, engine.Request{Kind: engine.KindUQ31, QueryOID: 1, Tb: 0, Te: 10})
	if got := h.Subscriptions(); len(got) != 1 || got[0] != id {
		t.Fatalf("Subscriptions = %v", got)
	}
	if _, err := h.Request(id); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Request(id + 5); !errors.Is(err, ErrNoSub) {
		t.Fatalf("Request on unknown id err = %v", err)
	}
	if _, err := h.Answer(id + 5); !errors.Is(err, ErrNoSub) {
		t.Fatalf("Answer on unknown id err = %v", err)
	}
	if !h.Unsubscribe(id) || h.Unsubscribe(id) {
		t.Fatal("Unsubscribe bookkeeping broken")
	}

	// Ingest errors invalidate profiles and surface the error.
	if _, _, err := h.Subscribe(ctx, engine.Request{Kind: engine.KindUQ31, QueryOID: 1, Tb: 0, Te: 10}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.Ingest(ctx, []mod.Update{{OID: 55, Verts: []trajectory.Vertex{{X: 0, Y: 0, T: 1}}}}); !errors.Is(err, mod.ErrShortInsert) {
		t.Fatalf("bad ingest err = %v", err)
	}
	// The next (harmless) ingest re-evaluates because the profile is gone.
	if _, _, err := h.Ingest(ctx, []mod.Update{
		revision(4, [3]float64{7, 99, 7}, [3]float64{10, 99, 10}),
	}); err != nil {
		t.Fatal(err)
	}
	if s := h.Stats(); s.Evals != 1 {
		t.Fatalf("post-error ingest: stats = %+v, want a forced eval", s)
	}

	h.Close()
	if _, _, err := h.Ingest(ctx, nil); !errors.Is(err, ErrHubClosed) {
		t.Fatalf("closed hub ingest err = %v", err)
	}
	if _, _, err := h.Subscribe(ctx, engine.Request{Kind: engine.KindUQ31, QueryOID: 1, Tb: 0, Te: 10}); !errors.Is(err, ErrHubClosed) {
		t.Fatalf("closed hub subscribe err = %v", err)
	}
}

func TestInfluenceWidth(t *testing.T) {
	if got := influenceWidth(0.5); math.Abs(got-3.000001) > 1e-9 {
		t.Fatalf("influenceWidth(0.5) = %g", got)
	}
}
