package continuous

// Dirty-set sharing and retirement through the hub: subscriptions
// standing on the identical request share one dirty test and one
// evaluation per ingest batch (and new subscribers reuse a standing
// answer outright), retirements dirty exactly the subscriptions whose
// superset, query, or target they touch, and a retired query/target OID
// answers ErrUnknownOID until a re-insert revives the subscription.

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/mod"
)

func TestSharedGroupEvaluatesOnce(t *testing.T) {
	st := liveScene(t)
	h := NewEngineHub(st, engine.New(1))
	ctx := context.Background()

	uq31 := engine.Request{Kind: engine.KindUQ31, QueryOID: 1, Tb: 0, Te: 10}
	idA, resA := mustSubscribe(t, h, uq31)
	idB, resB := mustSubscribe(t, h, uq31)
	idC, resC := mustSubscribe(t, h, uq31)
	if !reflect.DeepEqual(resA.OIDs, []int64{2}) ||
		!reflect.DeepEqual(resB.OIDs, resA.OIDs) || !reflect.DeepEqual(resC.OIDs, resA.OIDs) {
		t.Fatalf("initial answers: %v %v %v", resA.OIDs, resB.OIDs, resC.OIDs)
	}
	// The second and third Subscribe reused the first's answer + profile.
	if s := h.Stats(); s.Shared != 2 {
		t.Fatalf("subscribe sharing: stats = %+v, want Shared=2", s)
	}

	// A dirtying revision: one evaluation serves all three members, each
	// of which still gets its own diff event.
	_, events, err := h.Ingest(ctx, []mod.Update{
		revision(3, [3]float64{6, 1, 6}, [3]float64{8, 0.5, 8}, [3]float64{10, 0.5, 10}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("want one event per member, got %+v", events)
	}
	seen := map[int64]bool{}
	for _, ev := range events {
		seen[ev.SubID] = true
		if !reflect.DeepEqual(ev.Added, []int64{3}) || !reflect.DeepEqual(ev.OIDs, []int64{2, 3}) {
			t.Fatalf("member event = %+v", ev)
		}
	}
	if !seen[idA] || !seen[idB] || !seen[idC] {
		t.Fatalf("events missing a member: %v", seen)
	}
	s := h.Stats()
	if s.Evals != 1 {
		t.Fatalf("group of three cost %d evaluations", s.Evals)
	}
	if s.Shared != 4 { // 2 at subscribe + 2 ingest members beyond the rep
		t.Fatalf("ingest sharing: stats = %+v, want Shared=4", s)
	}

	// A clean batch skips every member individually.
	if _, _, err := h.Ingest(ctx, []mod.Update{
		revision(4, [3]float64{8, 100, 8}, [3]float64{10, 100, 10}),
	}); err != nil {
		t.Fatal(err)
	}
	if s := h.Stats(); s.Evals != 1 || s.Skips != 3 {
		t.Fatalf("clean batch: stats = %+v, want 1 eval / 3 skips", s)
	}

	// Unsubscribing the original rep must not strand the group: the
	// remaining members still share one evaluation.
	h.Unsubscribe(idA)
	if _, events, err = h.Ingest(ctx, []mod.Update{
		revision(3, [3]float64{6, 80, 5.5}, [3]float64{10, 80, 10}),
	}); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("post-unsubscribe events = %+v", events)
	}
	if s := h.Stats(); s.Evals != 2 {
		t.Fatalf("post-unsubscribe evals = %d", s.Evals)
	}
	checkFresh(t, h, st, idB, uq31)
	checkFresh(t, h, st, idC, uq31)
}

func TestRetireThroughHub(t *testing.T) {
	st := liveScene(t)
	h := NewEngineHub(st, engine.New(1))
	ctx := context.Background()

	uq31 := engine.Request{Kind: engine.KindUQ31, QueryOID: 1, Tb: 0, Te: 10}
	uq11 := engine.Request{Kind: engine.KindUQ11, QueryOID: 1, Tb: 0, Te: 10, OID: 3}
	id31, _ := mustSubscribe(t, h, uq31)
	id11, _ := mustSubscribe(t, h, uq11)

	// Retiring a far outsider dirties nothing.
	if _, events, err := h.Ingest(ctx, []mod.Update{{OID: 4, Retire: true}}); err != nil || len(events) != 0 {
		t.Fatalf("outsider retire: events=%v err=%v", events, err)
	}
	if s := h.Stats(); s.Evals != 0 || s.Skips != 2 {
		t.Fatalf("outsider retire: stats = %+v", s)
	}

	// Retiring the UQ11 target flips that subscription's standing answer
	// to the error a fresh query would get — no event (there is no diff to
	// describe), and the error carries the ErrUnknownOID identity.
	if _, events, err := h.Ingest(ctx, []mod.Update{{OID: 3, Retire: true}}); err != nil || len(events) != 0 {
		t.Fatalf("target retire: events=%v err=%v", events, err)
	}
	ans, err := h.Answer(id11)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(ans.Err, engine.ErrUnknownOID) {
		t.Fatalf("answer after target retire = %+v, want ErrUnknownOID", ans)
	}

	// Re-inserting the OID revives the subscription: next to the query it
	// is now a possible NN, and the flip arrives as an ordinary event.
	_, events, err := h.Ingest(ctx, []mod.Update{
		revision(3, [3]float64{0, 0.5, 0}, [3]float64{10, 0.5, 10}),
	})
	if err != nil {
		t.Fatal(err)
	}
	var saw11 bool
	for _, ev := range events {
		if ev.SubID == id11 {
			saw11 = true
			if !ev.IsBool || !ev.Bool {
				t.Fatalf("revival event = %+v", ev)
			}
		}
	}
	if !saw11 {
		t.Fatalf("no revival event for the re-inserted target: %+v", events)
	}
	checkFresh(t, h, st, id11, uq11)
	checkFresh(t, h, st, id31, uq31)

	// Retiring the query object errors every subscription standing on it.
	if _, _, err := h.Ingest(ctx, []mod.Update{{OID: 1, Retire: true}}); err != nil {
		t.Fatal(err)
	}
	for _, id := range []int64{id31, id11} {
		ans, err := h.Answer(id)
		if err != nil {
			t.Fatal(err)
		}
		if !errors.Is(ans.Err, engine.ErrUnknownOID) {
			t.Fatalf("sub %d after query retire = %+v, want ErrUnknownOID", id, ans)
		}
	}
}
