// Package continuous turns the unified query API into a standing-query
// subsystem: clients register repro.Request subscriptions against a live
// MOD, location updates flow in through Ingest, and each ingest batch
// re-evaluates only the subscriptions the batch can actually affect,
// emitting diff events (OIDs added/removed, predicate flips) with the
// usual Explain provenance.
//
// The heart of the package is the dirty test. A subscription remembers,
// from its last evaluation, a *zone profile*: the query trajectory, the
// deterministic slice cuts of its window (prune.SliceCuts), the per-slice
// upper bounds on the Level-k lower envelope, and the prune candidate
// superset. An update is *irrelevant* to the subscription — and must not
// trigger re-evaluation — when all of the following hold:
//
//   - it does not touch the query trajectory or the request's target
//     object;
//   - it does not touch a superset member (everything whose distance
//     function can graze the envelope's pruning zone is in the superset);
//   - the object's changed motion (appends only change positions from the
//     old plan end onward; before it the plan is untouched) stays outside
//     the influence zone on every overlapping slice: its exact minimum
//     crisp distance from the query exceeds bound + 6r + Margin, for both
//     the new plan and the superseded clamp it replaced.
//
// The 6r width is deliberately wider than the paper's 4r possible-NN
// zone: certain-NN and threshold answers also depend on objects that can
// merely *block* a zone member's certainty, and a blocker j of member i
// satisfies min d_j <= max d_i + r <= (env + 4r) + 2r. An object beyond
// env + 6r can neither define the envelope, nor enter any zone, nor block
// anyone — so leaving it unevaluated provably preserves every answer
// byte. The deterministic simulation harness (internal/simtest) pins
// exactly that: after every ingest step, every live answer must equal a
// fresh engine run on a snapshot.
package continuous

import (
	"context"
	"errors"
	"fmt"
	"math"
	"slices"
	"sync"

	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/prune"
	"repro/internal/trajectory"
)

// Package errors.
var (
	// ErrNoSub reports an unknown subscription ID.
	ErrNoSub = errors.New("continuous: unknown subscription")
	// ErrHubClosed is returned after Close.
	ErrHubClosed = errors.New("continuous: hub closed")
	// ErrEventGap reports a Replay whose starting sequence has been
	// truncated out of the bounded backlog: the missed events are gone,
	// and the caller must fall back to the current full answer instead of
	// patching diffs onto a stale one.
	ErrEventGap = errors.New("continuous: replay gap: backlog truncated")
)

// DefaultBacklog is the per-subscription event backlog bound when
// HubOptions does not set one: deep enough to ride out a reconnect
// window at ingest-batch granularity, shallow enough that a thousand
// subscriptions hold at most a few MB of diffs.
const DefaultBacklog = 256

// HubOptions tunes a hub.
type HubOptions struct {
	// BacklogCap bounds each subscription's retained event backlog (for
	// Replay). 0 selects DefaultBacklog; negative disables retention —
	// every non-trivial Replay then reports ErrEventGap.
	BacklogCap int
}

func (o HubOptions) backlogCap() int {
	switch {
	case o.BacklogCap == 0:
		return DefaultBacklog
	case o.BacklogCap < 0:
		return 0
	default:
		return o.BacklogCap
	}
}

// Backend abstracts where the standing queries are evaluated: a
// single-store engine (NewEngineHub) or a sharded cluster router
// (cluster.NewRouterHub). Implementations must evaluate against the same
// data Apply mutates.
type Backend interface {
	// Apply applies the updates and reports per-update outcomes.
	Apply(ctx context.Context, updates []mod.Update) ([]mod.Applied, error)
	// Evaluate answers one request (the engine.Do contract) and returns
	// the request's zone profile at the same data version — derived from
	// work the evaluation already performed (the engine's memoized
	// processor, the router's bound exchange), never a second full pass.
	// A nil profile means the backend cannot bound the request's
	// dependency set (the kind iterates query trajectories, say); the
	// subscription then re-evaluates on every ingest.
	Evaluate(ctx context.Context, req engine.Request) (engine.Result, *Profile, error)
	// Radius returns the shared uncertainty radius.
	Radius() float64
}

// Profile is a subscription's zone fingerprint from its last evaluation —
// everything the dirty test needs to prove an update irrelevant.
type Profile struct {
	// Query is the query trajectory the bounds were computed against.
	Query *trajectory.Trajectory
	// Cuts are the window's deterministic slice boundaries.
	Cuts []float64
	// Bounds are per-slice upper bounds on the Level-k lower envelope
	// (k = the request's rank), +Inf where unbounded.
	Bounds []float64
	// Superset holds the prune candidate superset's OIDs.
	Superset map[int64]struct{}

	// qbox/maxBound are the O(1) prefilter, derived in finish(): the
	// query's spatial bounding box over the window and the largest finite
	// slice bound (+Inf disables the prefilter). An update whose changed
	// motion stays further from qbox than maxBound + influence width
	// cannot graze any slice's zone, with no per-slice work.
	qbox     geom.AABB
	maxBound float64
}

// finish derives the prefilter fields. Hub calls it on every profile a
// backend returns.
func (p *Profile) finish() *Profile {
	if p == nil {
		return nil
	}
	if p.Query != nil && len(p.Cuts) >= 2 {
		tb, te := p.Cuts[0], p.Cuts[len(p.Cuts)-1]
		box := geom.AABBOf(p.Query.At(tb), p.Query.At(te))
		for _, tv := range p.Query.VertexTimesWithin(tb, te) {
			box = box.ExtendPoint(p.Query.At(tv))
		}
		p.qbox = box
	}
	p.maxBound = 0
	for _, u := range p.Bounds {
		if u > p.maxBound {
			p.maxBound = u
		}
	}
	return p
}

// Event is one subscription's diff after an ingest batch. For retrieval
// kinds Added/Removed carry the OID delta and OIDs the full new answer;
// for predicate kinds Bool carries the new value; the all-pairs kind
// ships the full new Pairs map. Seq increases per subscription, so a
// stream consumer can detect gaps.
type Event struct {
	SubID   int64             `json:"sub_id"`
	Seq     uint64            `json:"seq"`
	Kind    engine.Kind       `json:"kind"`
	Added   []int64           `json:"added,omitempty"`
	Removed []int64           `json:"removed,omitempty"`
	IsBool  bool              `json:"is_bool,omitempty"`
	Bool    bool              `json:"bool,omitempty"`
	OIDs    []int64           `json:"oids,omitempty"`
	Pairs   map[int64][]int64 `json:"pairs,omitempty"`
	Explain engine.Explain    `json:"explain"`
}

// Stats counts the hub's dirty-set effectiveness: how many backend
// evaluations ingests triggered, how many subscription refreshes were
// served from a group-mate's evaluation instead of their own, and how
// many re-evaluations the dirty test skipped outright.
type Stats struct {
	Ingested uint64 `json:"ingested"` // updates applied
	Evals    uint64 `json:"evals"`    // backend evaluations run
	Skips    uint64 `json:"skips"`    // subscription refreshes proven unnecessary
	// Shared counts subscription refreshes (and initial Subscribe
	// answers) satisfied by another subscription's evaluation of the same
	// request — the dirty-set-sharing dividend.
	Shared uint64 `json:"shared,omitempty"`
}

type sub struct {
	id   int64
	req  engine.Request
	key  string // groupKey(req), computed once
	last engine.Result
	prof *Profile
	seq  uint64
	// backlog retains the most recent emitted events (contiguous Seqs,
	// oldest first, at most the hub's backlogCap) for Replay.
	backlog []Event
}

// group is the set of live subscriptions sharing one request identity.
// Two subscriptions with equal keys have byte-identical answers at every
// data version (the engine is deterministic), so one evaluation per
// ingest batch serves them all, and any member's zone profile can prove
// the whole group clean.
type group struct {
	members map[int64]*sub
}

// anyProfiled returns a member holding a zone profile, or nil. Members'
// profiles are interchangeable for the dirty test: each was valid when
// derived, and every batch since was proven irrelevant against a member
// profile — which pins the shared answer, hence every member's answer.
func (g *group) anyProfiled() *sub {
	for _, s := range g.members {
		if s.prof != nil {
			return s
		}
	}
	return nil
}

// groupKey canonicalizes a request for dirty-set sharing. Floats are
// formatted with %b (exact mantissa/exponent), so two keys are equal iff
// the requests are bit-identical; the predicate contributes its
// canonical Key.
func groupKey(req engine.Request) string {
	wk := ""
	if req.Where != nil {
		wk = req.Where.Canon().Key()
	}
	return fmt.Sprintf("%s|%d|%d|%b|%b|%d|%b|%b|%b|%s",
		req.Kind, req.QueryOID, req.OID, req.Tb, req.Te, req.K, req.X, req.T, req.P, wk)
}

// remember appends ev to the bounded backlog.
func (s *sub) remember(ev Event, cap int) {
	if cap <= 0 {
		return
	}
	if len(s.backlog) >= cap {
		n := copy(s.backlog, s.backlog[len(s.backlog)-cap+1:])
		s.backlog = s.backlog[:n]
	}
	s.backlog = append(s.backlog, ev)
}

// Hub owns the standing subscriptions over one backend. All methods are
// safe for concurrent use; Ingest batches are serialized, so events are
// totally ordered per subscription. Every mutation of the underlying data
// must flow through Ingest (or be followed by Invalidate) — the dirty
// test's profiles describe the data as of the last evaluation.
type Hub struct {
	be         Backend
	backlogCap int

	mu     sync.Mutex
	subs   map[int64]*sub
	groups map[string]*group
	nextID int64
	stats  Stats
	closed bool
}

// New creates a hub over a backend with default options.
func New(be Backend) *Hub {
	return NewWith(be, HubOptions{})
}

// NewWith creates a hub over a backend.
func NewWith(be Backend, opts HubOptions) *Hub {
	return &Hub{be: be, backlogCap: opts.backlogCap(), subs: make(map[int64]*sub), groups: make(map[string]*group)}
}

// NewEngineHub is the single-store hub: updates apply to store, standing
// queries evaluate through eng (nil means a fresh engine with one worker
// per CPU).
func NewEngineHub(store *mod.Store, eng *engine.Engine) *Hub {
	return NewEngineHubWith(store, eng, HubOptions{})
}

// NewEngineHubWith is NewEngineHub with explicit options.
func NewEngineHubWith(store *mod.Store, eng *engine.Engine, opts HubOptions) *Hub {
	if eng == nil {
		eng = engine.New(0)
	}
	return NewWith(&engineBackend{store: store, eng: eng}, opts)
}

// Subscribe registers a standing request and returns its ID and initial
// answer. A request whose initial evaluation fails (unknown query OID,
// bad window, ...) is rejected outright — there is nothing coherent to
// keep fresh. When a live subscription already stands on the identical
// request with a valid zone profile and a clean answer, its answer and
// profile are reused instead of re-evaluating — the subscribe-time half
// of dirty-set sharing.
func (h *Hub) Subscribe(ctx context.Context, req engine.Request) (int64, engine.Result, error) {
	if err := req.Validate(); err != nil {
		return 0, engine.Result{Kind: req.Kind, Err: err}, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return 0, engine.Result{Kind: req.Kind, Err: ErrHubClosed}, ErrHubClosed
	}
	key := groupKey(req)
	if g := h.groups[key]; g != nil {
		if m := g.anyProfiled(); m != nil && m.last.Err == nil {
			h.stats.Shared++
			return h.registerLocked(req, key, m.last, m.prof), m.last, nil
		}
	}
	res, prof, err := h.be.Evaluate(ctx, req)
	if err != nil {
		return 0, res, err
	}
	return h.registerLocked(req, key, res, prof.finish()), res, nil
}

// registerLocked installs a new subscription in the ID and group tables.
// Caller holds h.mu.
func (h *Hub) registerLocked(req engine.Request, key string, res engine.Result, prof *Profile) int64 {
	h.nextID++
	id := h.nextID
	s := &sub{id: id, req: req, key: key, last: res, prof: prof}
	h.subs[id] = s
	g := h.groups[key]
	if g == nil {
		g = &group{members: make(map[int64]*sub)}
		h.groups[key] = g
	}
	g.members[id] = s
	return id
}

// Unsubscribe drops a subscription. It reports whether the ID was live.
func (h *Hub) Unsubscribe(id int64) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.subs[id]
	delete(h.subs, id)
	if ok {
		if g := h.groups[s.key]; g != nil {
			delete(g.members, id)
			if len(g.members) == 0 {
				delete(h.groups, s.key)
			}
		}
	}
	return ok
}

// Answer returns a subscription's current (last evaluated) result.
func (h *Hub) Answer(id int64) (engine.Result, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.subs[id]
	if !ok {
		return engine.Result{}, fmt.Errorf("%w: %d", ErrNoSub, id)
	}
	return s.last, nil
}

// Request returns a subscription's standing request.
func (h *Hub) Request(id int64) (engine.Request, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.subs[id]
	if !ok {
		return engine.Request{}, fmt.Errorf("%w: %d", ErrNoSub, id)
	}
	return s.req, nil
}

// Subscriptions returns the live subscription IDs, sorted.
func (h *Hub) Subscriptions() []int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]int64, 0, len(h.subs))
	for id := range h.subs {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

// Stats reports the hub's counters.
func (h *Hub) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}

// Replay returns the subscription's retained events with Seq > fromSeq,
// oldest first — the exact diffs a consumer at fromSeq missed. A
// consumer that is already current gets an empty slice. When the bounded
// backlog no longer reaches back to fromSeq+1 the diffs are
// unrecoverable and Replay reports ErrEventGap; the caller should take
// the current Answer as a fresh baseline instead.
func (h *Hub) Replay(id int64, fromSeq uint64) ([]Event, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.subs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoSub, id)
	}
	if fromSeq >= s.seq {
		return nil, nil
	}
	if len(s.backlog) == 0 || s.backlog[0].Seq > fromSeq+1 {
		return nil, fmt.Errorf("%w: subscription %d at seq %d, replay from %d", ErrEventGap, id, s.seq, fromSeq)
	}
	i := 0
	for i < len(s.backlog) && s.backlog[i].Seq <= fromSeq {
		i++
	}
	return slices.Clone(s.backlog[i:]), nil
}

// Invalidate drops every subscription's zone profile, forcing the next
// ingest to re-evaluate all of them — the escape hatch after an
// out-of-band store mutation.
func (h *Hub) Invalidate() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, s := range h.subs {
		s.prof = nil
	}
}

// Close marks the hub closed; subsequent Subscribe/Ingest calls fail.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closed = true
}

// groupOutcome is one request group's verdict for one ingest batch: the
// shared dirty decision and, when dirty, the single evaluation every
// member's refresh is served from.
type groupOutcome struct {
	dirty bool
	res   engine.Result
	prof  *Profile
	err   error
}

// Ingest applies one update batch and re-evaluates the affected
// subscriptions in ID order, returning the per-update outcomes and the
// diff events (empty when no answer changed). Subscriptions standing on
// the identical request share one dirty test and one evaluation per
// batch (their answers are byte-identical at every data version), so a
// thousand subscribers to the same query cost one engine pass. On an
// apply error the updates applied so far stand, every profile is
// invalidated (the data moved under the profiles), and the error is
// returned with no events. On a context error mid re-evaluation the
// events emitted so far are returned with the error; affected
// subscriptions keep stale answers but lose their profiles, so the next
// ingest re-evaluates them. A subscription whose query or target object
// was retired flips its standing answer to the ErrUnknownOID result — the
// same answer a fresh query for the OID would get.
func (h *Hub) Ingest(ctx context.Context, updates []mod.Update) ([]mod.Applied, []Event, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, nil, ErrHubClosed
	}
	applied, err := h.be.Apply(ctx, updates)
	h.stats.Ingested += uint64(len(applied))
	if err != nil {
		for _, s := range h.subs {
			s.prof = nil
		}
		return applied, nil, err
	}
	ids := make([]int64, 0, len(h.subs))
	for id := range h.subs {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	r := h.be.Radius()
	// The changed-motion bounding boxes are per-update, not per-(update,
	// subscription): derive them once for the whole fan-out.
	boxes := make([]geom.AABB, len(applied))
	for i, a := range applied {
		boxes[i] = changedBox(a)
	}
	var events []Event
	outcomes := make(map[string]*groupOutcome)
	for i, id := range ids {
		s := h.subs[id]
		out, seen := outcomes[s.key]
		if !seen {
			out = &groupOutcome{}
			outcomes[s.key] = out
			// Any member holding a zone profile can prove the whole group
			// clean: the profile pinned the shared answer through every
			// batch since it was derived. A group with no profiled member
			// must evaluate.
			if rep := h.groups[s.key].anyProfiled(); rep == nil || dirty(rep, applied, boxes, r) {
				out.dirty = true
				h.stats.Evals++
				out.res, out.prof, out.err = h.be.Evaluate(ctx, s.req)
				out.prof = out.prof.finish()
			}
		}
		if !out.dirty {
			h.stats.Skips++
			continue
		}
		if seen {
			h.stats.Shared++
		}
		if out.err != nil {
			s.prof = nil
			if errors.Is(out.err, context.Canceled) || errors.Is(out.err, context.DeadlineExceeded) {
				// The batch is already applied but the remaining
				// subscriptions were never dirty-tested against it: their
				// profiles describe pre-batch data, so drop them — the
				// next ingest re-evaluates instead of trusting a stale
				// fingerprint into a forever-stale answer.
				for _, rest := range ids[i+1:] {
					h.subs[rest].prof = nil
				}
				return applied, events, out.err
			}
			if errors.Is(out.err, engine.ErrUnknownOID) || errors.Is(out.err, mod.ErrNotFound) {
				// The query or target object was retired: the standing
				// answer becomes the error a fresh query would get, until
				// a re-insert of the OID revives the subscription. A
				// single-store engine reports a missing query trajectory as
				// mod.ErrNotFound while the cluster router maps it to
				// engine.ErrUnknownOID; normalize so the standing answer
				// carries the ErrUnknownOID identity on every topology.
				werr := out.err
				if !errors.Is(werr, engine.ErrUnknownOID) {
					werr = fmt.Errorf("%w: %v", engine.ErrUnknownOID, out.err)
				}
				s.last = engine.Result{Kind: s.req.Kind, Err: werr}
				continue
			}
			// A transient per-subscription evaluation error: keep the last
			// good answer, stay profile-less so the next ingest retries.
			continue
		}
		ev, changed := diffResults(s.last, out.res)
		s.last = out.res
		s.prof = out.prof
		if changed {
			s.seq++
			ev.SubID = s.id
			ev.Seq = s.seq
			ev.Kind = out.res.Kind
			ev.Explain = out.res.Explain
			events = append(events, ev)
			s.remember(ev, h.backlogCap)
		}
	}
	return applied, events, nil
}

// influenceWidth is the dirty-test zone width beyond the per-slice
// envelope bound: 6r + Margin (see the package comment's derivation).
func influenceWidth(r float64) float64 { return 6*r + prune.Margin }

// dirty reports whether any applied update can change the subscription's
// answer. boxes[i] is the precomputed bounding box of applied[i]'s
// changed motion (new plan and superseded plan, from ChangedFrom on).
func dirty(s *sub, applied []mod.Applied, boxes []geom.AABB, r float64) bool {
	prof := s.prof
	if prof == nil || prof.Query == nil || len(prof.Cuts) < 2 {
		return true
	}
	target, hasTarget := targetOID(s.req)
	width := influenceWidth(r)
	for i, a := range applied {
		if a.Retired {
			// A retirement only removes motion. The candidate superset
			// provably contains every object that defines the envelope,
			// enters a zone, or blocks a member — removing anything
			// outside it leaves the envelope, the zones, and hence the
			// answer untouched, whether or not a predicate is in play
			// (the argument applies to the sub-MOD's superset verbatim).
			if a.OID == s.req.QueryOID || (hasTarget && a.OID == target) {
				return true
			}
			if _, ok := prof.Superset[a.OID]; ok {
				return true
			}
			continue
		}
		if a.TagsChanged && s.req.Where != nil &&
			s.req.Where.Matches(a.Tags) != s.req.Where.Matches(a.PrevTags) {
			// The flip moved a.OID across the predicate boundary, so it
			// joined or left the subscription's sub-MOD. This must run
			// before the ChangedFrom skip: a pure retag carries +Inf.
			if a.OID == s.req.QueryOID || (hasTarget && a.OID == target) {
				return true
			}
			if _, ok := prof.Superset[a.OID]; ok {
				return true
			}
			if s.req.Where.Matches(a.Tags) {
				// Joined: the object's whole plan is new to the sub-MOD,
				// not just motion from ChangedFrom. An object that left
				// from outside the superset was spatially pruned from the
				// old sub-MOD, so its removal cannot move the envelope.
				full := motionBox(a.Traj, math.Inf(-1))
				if math.IsInf(prof.maxBound, 1) || boxGap(full, prof.qbox) <= prof.maxBound+width {
					af := a
					af.ChangedFrom = math.Inf(-1)
					af.Prev = nil
					if motionEntersZone(prof, af, width) {
						return true
					}
				}
			}
		}
		if a.ChangedFrom >= s.req.Te {
			// Positions inside the window are untouched by this update —
			// irrelevant no matter whose plan it is.
			continue
		}
		if a.OID == s.req.QueryOID || (hasTarget && a.OID == target) {
			return true
		}
		if _, ok := prof.Superset[a.OID]; ok {
			return true
		}
		if !math.IsInf(prof.maxBound, 1) && boxGap(boxes[i], prof.qbox) > prof.maxBound+width {
			// O(1) prefilter: even against the loosest slice bound, the
			// whole changed motion stays outside the influence zone.
			continue
		}
		if motionEntersZone(prof, a, width) {
			return true
		}
	}
	return false
}

// motionBox bounds tr's positions from time `from` on (the whole plan for
// -Inf): the position at the change point, every later vertex, and —
// because clamped evaluation parks the object at its last vertex — the
// tail is covered by that vertex too.
func motionBox(tr *trajectory.Trajectory, from float64) geom.AABB {
	if tr == nil {
		return geom.EmptyAABB()
	}
	if math.IsInf(from, -1) {
		return tr.BoundingBox()
	}
	box := geom.AABBOf(tr.At(from))
	for _, v := range tr.Verts {
		if v.T > from {
			box = box.ExtendPoint(v.Point())
		}
	}
	return box
}

// changedBox bounds everything an update moved: the new motion and the
// superseded motion from ChangedFrom on.
func changedBox(a mod.Applied) geom.AABB {
	box := motionBox(a.Traj, a.ChangedFrom)
	if a.Prev != nil {
		box = box.Union(motionBox(a.Prev, a.ChangedFrom))
	}
	return box
}

// boxGap is the minimum distance between two boxes (0 when they touch).
func boxGap(a, b geom.AABB) float64 {
	dx := math.Max(0, math.Max(a.MinX-b.MaxX, b.MinX-a.MaxX))
	dy := math.Max(0, math.Max(a.MinY-b.MaxY, b.MinY-a.MaxY))
	return math.Hypot(dx, dy)
}

// motionEntersZone tests the update's changed motion — the new plan and
// the plan it superseded (whose removal can matter just as much as the
// new path's arrival) — against the per-slice influence zone.
func motionEntersZone(prof *Profile, a mod.Applied, width float64) bool {
	cuts, bounds := prof.Cuts, prof.Bounds
	for i := 1; i < len(cuts); i++ {
		s0, s1 := cuts[i-1], cuts[i]
		if s1 <= a.ChangedFrom {
			continue
		}
		u := bounds[i-1]
		if math.IsInf(u, 1) {
			return true
		}
		lo := math.Max(s0, a.ChangedFrom)
		if a.Traj == nil {
			return true
		}
		if prune.MinCrispDist(a.Traj, prof.Query, lo, s1) <= u+width {
			return true
		}
		if a.Prev != nil && prune.MinCrispDist(a.Prev, prof.Query, lo, s1) <= u+width {
			return true
		}
	}
	return false
}

// diffResults compares two results and builds the event skeleton. changed
// is false when the answers are byte-identical.
func diffResults(prev, next engine.Result) (Event, bool) {
	var ev Event
	switch {
	case next.IsBool:
		ev.IsBool, ev.Bool = true, next.Bool
		return ev, prev.Bool != next.Bool || !prev.IsBool
	case next.Pairs != nil || prev.Pairs != nil:
		ev.Pairs = next.Pairs
		if len(prev.Pairs) != len(next.Pairs) {
			return ev, true
		}
		for k, v := range next.Pairs {
			if !slices.Equal(prev.Pairs[k], v) {
				return ev, true
			}
		}
		return ev, false
	default:
		ev.OIDs = next.OIDs
		ev.Added, ev.Removed = diffOIDs(prev.OIDs, next.OIDs)
		return ev, len(ev.Added) > 0 || len(ev.Removed) > 0
	}
}

// diffOIDs computes the sorted set difference both ways (inputs are the
// engine's deterministic sorted answers).
func diffOIDs(prev, next []int64) (added, removed []int64) {
	i, j := 0, 0
	for i < len(prev) && j < len(next) {
		switch {
		case prev[i] == next[j]:
			i++
			j++
		case prev[i] < next[j]:
			removed = append(removed, prev[i])
			i++
		default:
			added = append(added, next[j])
			j++
		}
	}
	removed = append(removed, prev[i:]...)
	added = append(added, next[j:]...)
	return added, removed
}

// targetOID mirrors the cluster router's single-object-target table: the
// object whose own motion the request's answer directly depends on.
func targetOID(req engine.Request) (int64, bool) {
	switch req.Kind {
	case engine.KindUQ11, engine.KindUQ12, engine.KindUQ13,
		engine.KindUQ21, engine.KindUQ22, engine.KindUQ23,
		engine.KindNNAt, engine.KindRankAt, engine.KindThreshold:
		return req.OID, true
	case engine.KindReverse:
		return req.OID, true
	}
	return 0, false
}

// profiled reports whether the kind's dependency set can be bounded by a
// (query, window) zone profile. The all-pairs and reverse kinds iterate
// query trajectories — every object is a query — so they re-evaluate on
// every ingest.
func profiled(k engine.Kind) bool {
	return k != engine.KindAllPairs && k != engine.KindReverse
}

// engineBackend is the single-store Backend.
type engineBackend struct {
	store *mod.Store
	eng   *engine.Engine
}

func (b *engineBackend) Apply(_ context.Context, updates []mod.Update) ([]mod.Applied, error) {
	return b.store.ApplyUpdates(updates)
}

// Evaluate answers through the engine and fingerprints the request
// cheaply: the survivor superset comes from the engine's memoized
// processor (just built by the Do — the lookup is a memo hit, no second
// sweep), and the per-slice bounds from the probe-only SliceBounds
// phase. A profile failure degrades to nil (always dirty), never to a
// wrong skip.
func (b *engineBackend) Evaluate(ctx context.Context, req engine.Request) (engine.Result, *Profile, error) {
	res, err := b.eng.Do(ctx, b.store, req)
	if err != nil {
		return res, nil, err
	}
	if !profiled(req.Kind) {
		return res, nil, nil
	}
	prof, perr := b.profile(ctx, req)
	if perr != nil {
		prof = nil
	}
	return res, prof, nil
}

func (b *engineBackend) profile(ctx context.Context, req engine.Request) (*Profile, error) {
	q, err := b.store.Get(req.QueryOID)
	if err != nil {
		return nil, err
	}
	proc, err := b.eng.ProcessorWhereCtx(ctx, b.store, req.QueryOID, req.Tb, req.Te, req.Where)
	if err != nil {
		return nil, err
	}
	if k := req.Rank(); k > 1 {
		if err := proc.EnsureLevelsCtx(ctx, k); err != nil {
			return nil, err
		}
	}
	// The bounds must come from the same universe the answer did: the
	// unfiltered envelope sits below the sub-MOD's, and a too-low bound
	// shrinks the influence zone into wrong skips.
	bounds, err := prune.SliceBoundsWhere(ctx, b.store, q, req.Tb, req.Te, req.Rank(), req.Where)
	if err != nil {
		return nil, err
	}
	cuts := prune.SliceCuts(q, req.Tb, req.Te)
	if len(cuts) < 2 || len(bounds) != len(cuts)-1 {
		return nil, nil // unbounded fingerprint: always dirty, never wrong
	}
	ids := proc.SurvivorOIDs()
	set := make(map[int64]struct{}, len(ids))
	for _, id := range ids {
		set[id] = struct{}{}
	}
	return &Profile{Query: q, Cuts: cuts, Bounds: bounds, Superset: set}, nil
}

func (b *engineBackend) Radius() float64 { return b.store.Radius() }
