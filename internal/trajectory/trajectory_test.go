package trajectory

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/updf"
)

func mustNew(t *testing.T, oid int64, verts []Vertex) *Trajectory {
	t.Helper()
	tr, err := New(oid, verts)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func lineTraj(t *testing.T) *Trajectory {
	return mustNew(t, 1, []Vertex{{0, 0, 0}, {10, 0, 10}, {10, 5, 15}})
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name  string
		verts []Vertex
		want  error
	}{
		{"ok", []Vertex{{0, 0, 0}, {1, 1, 1}}, nil},
		{"too few", []Vertex{{0, 0, 0}}, ErrTooFewVertices},
		{"empty", nil, ErrTooFewVertices},
		{"equal times", []Vertex{{0, 0, 0}, {1, 1, 0}}, ErrNonIncreasing},
		{"decreasing", []Vertex{{0, 0, 5}, {1, 1, 1}}, ErrNonIncreasing},
		{"nan", []Vertex{{math.NaN(), 0, 0}, {1, 1, 1}}, ErrNonFinite},
		{"inf time", []Vertex{{0, 0, 0}, {1, 1, math.Inf(1)}}, ErrNonFinite},
	}
	for _, c := range cases {
		_, err := New(9, c.verts)
		if !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestAtInterpolation(t *testing.T) {
	tr := lineTraj(t)
	cases := []struct {
		t    float64
		want geom.Point
	}{
		{-5, geom.Point{X: 0, Y: 0}}, // clamp before
		{0, geom.Point{X: 0, Y: 0}},
		{5, geom.Point{X: 5, Y: 0}},
		{10, geom.Point{X: 10, Y: 0}},
		{12.5, geom.Point{X: 10, Y: 2.5}},
		{15, geom.Point{X: 10, Y: 5}},
		{99, geom.Point{X: 10, Y: 5}}, // clamp after
	}
	for _, c := range cases {
		got := tr.At(c.t)
		if got.Dist(c.want) > 1e-12 {
			t.Errorf("At(%g) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestVelocityAndSpeed(t *testing.T) {
	tr := lineTraj(t)
	if v := tr.VelocityAt(5); v != (geom.Vec{X: 1, Y: 0}) {
		t.Errorf("VelocityAt(5) = %v", v)
	}
	if v := tr.VelocityAt(12); v != (geom.Vec{X: 0, Y: 1}) {
		t.Errorf("VelocityAt(12) = %v", v)
	}
	// At a vertex: following segment.
	if v := tr.VelocityAt(10); v != (geom.Vec{X: 0, Y: 1}) {
		t.Errorf("VelocityAt(10) = %v", v)
	}
	// Final instant: last segment.
	if v := tr.VelocityAt(15); v != (geom.Vec{X: 0, Y: 1}) {
		t.Errorf("VelocityAt(15) = %v", v)
	}
	// Outside.
	if v := tr.VelocityAt(-1); v != (geom.Vec{}) {
		t.Errorf("VelocityAt(-1) = %v", v)
	}
	if v := tr.VelocityAt(16); v != (geom.Vec{}) {
		t.Errorf("VelocityAt(16) = %v", v)
	}
	if s := tr.Speed(0); math.Abs(s-1) > 1e-12 {
		t.Errorf("Speed(0) = %g", s)
	}
}

func TestTimeSpanSegments(t *testing.T) {
	tr := lineTraj(t)
	tb, te := tr.TimeSpan()
	if tb != 0 || te != 15 {
		t.Errorf("TimeSpan = %g, %g", tb, te)
	}
	if tr.NumSegments() != 2 {
		t.Errorf("NumSegments = %d", tr.NumSegments())
	}
	seg, t0, t1 := tr.Segment(1)
	if t0 != 10 || t1 != 15 || seg.A != (geom.Point{X: 10, Y: 0}) {
		t.Errorf("Segment(1) = %v %g %g", seg, t0, t1)
	}
}

func TestVertexTimesWithin(t *testing.T) {
	tr := lineTraj(t)
	if got := tr.VertexTimesWithin(0, 15); len(got) != 1 || got[0] != 10 {
		t.Errorf("VertexTimesWithin(0,15) = %v", got)
	}
	if got := tr.VertexTimesWithin(10, 15); got != nil {
		t.Errorf("exclusive bounds: %v", got)
	}
	if got := tr.VertexTimesWithin(-5, 50); len(got) != 3 {
		t.Errorf("all inside: %v", got)
	}
}

func TestClip(t *testing.T) {
	tr := lineTraj(t)
	c := tr.Clip(5, 12)
	if c == nil {
		t.Fatal("nil clip")
	}
	if got, _ := c.TimeSpan(); got != 5 {
		t.Errorf("clip start = %g", got)
	}
	if _, got := c.TimeSpan(); got != 12 {
		t.Errorf("clip end = %g", got)
	}
	if len(c.Verts) != 3 { // 5 → 10 → 12
		t.Errorf("clip verts = %v", c.Verts)
	}
	if p := c.At(10); p.Dist(geom.Point{X: 10, Y: 0}) > 1e-12 {
		t.Errorf("clip At(10) = %v", p)
	}
	// Degenerate and disjoint windows.
	if got := tr.Clip(20, 30); got != nil {
		t.Error("disjoint clip should be nil")
	}
	if got := tr.Clip(7, 7); got != nil {
		t.Error("zero-measure clip should be nil")
	}
	// Clip wider than span clamps.
	w := tr.Clip(-10, 99)
	if tb, te := w.TimeSpan(); tb != 0 || te != 15 {
		t.Errorf("wide clip span = %g, %g", tb, te)
	}
}

func TestBoundingBoxLength(t *testing.T) {
	tr := lineTraj(t)
	b := tr.BoundingBox()
	if b.MinX != 0 || b.MaxX != 10 || b.MinY != 0 || b.MaxY != 5 {
		t.Errorf("BoundingBox = %+v", b)
	}
	if l := tr.Length(); math.Abs(l-15) > 1e-12 {
		t.Errorf("Length = %g", l)
	}
}

func TestUncertain(t *testing.T) {
	tr := lineTraj(t)
	u, err := NewUncertain(*tr, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := u.PDF.(updf.UniformDisk); !ok {
		t.Errorf("default pdf = %T", u.PDF)
	}
	d := u.DiskAt(5)
	if d.R != 0.5 || d.C.Dist(geom.Point{X: 5, Y: 0}) > 1e-12 {
		t.Errorf("DiskAt = %+v", d)
	}
	if _, err := NewUncertain(*tr, 0, nil); !errors.Is(err, ErrBadRadius) {
		t.Errorf("zero radius: %v", err)
	}
	if _, err := NewUncertain(Trajectory{OID: 1}, 1, nil); !errors.Is(err, ErrTooFewVertices) {
		t.Errorf("invalid base: %v", err)
	}
	// Explicit pdf is preserved.
	g := updf.NewBoundedGaussian(0.5, 0.2)
	u2, err := NewUncertain(*tr, 0.5, g)
	if err != nil {
		t.Fatal(err)
	}
	if u2.PDF.Name() != g.Name() {
		t.Errorf("pdf = %s", u2.PDF.Name())
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := lineTraj(t)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.OID != tr.OID || len(got.Verts) != len(tr.Verts) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i := range got.Verts {
		if got.Verts[i] != tr.Verts[i] {
			t.Errorf("vertex %d: %v != %v", i, got.Verts[i], tr.Verts[i])
		}
	}
}

func TestBinaryTruncation(t *testing.T) {
	tr := lineTraj(t)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// EOF at a clean boundary reports io.EOF (stream end).
	if _, err := ReadBinary(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("clean EOF: %v", err)
	}
	// Every strict prefix must error, never panic.
	for cut := 1; cut < len(full); cut++ {
		_, err := ReadBinary(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("prefix %d: expected error", cut)
		}
	}
	// Implausible count guard.
	bad := make([]byte, 12)
	for i := 8; i < 12; i++ {
		bad[i] = 0xFF
	}
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("expected error for implausible count")
	}
}

// Property: binary round trip is identity for random valid trajectories.
func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		verts := make([]Vertex, n)
		tm := rng.Float64()
		for i := range verts {
			tm += 0.1 + rng.Float64()
			verts[i] = Vertex{X: rng.NormFloat64() * 100, Y: rng.NormFloat64() * 100, T: tm}
		}
		tr, err := New(rng.Int63(), verts)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := tr.WriteBinary(&buf); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil || got.OID != tr.OID || len(got.Verts) != n {
			return false
		}
		for i := range got.Verts {
			if got.Verts[i] != tr.Verts[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(55))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: At() lies on the segment between bracketing vertices and is
// continuous at vertices.
func TestAtContinuityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		verts := make([]Vertex, n)
		tm := 0.0
		for i := range verts {
			tm += 0.5 + rng.Float64()
			verts[i] = Vertex{X: rng.Float64() * 40, Y: rng.Float64() * 40, T: tm}
		}
		tr, err := New(1, verts)
		if err != nil {
			return false
		}
		for i, v := range verts {
			if tr.At(v.T).Dist(v.Point()) > 1e-9 {
				return false
			}
			if i > 0 {
				mid := 0.5 * (verts[i-1].T + v.T)
				p := tr.At(mid)
				seg := geom.Segment{A: verts[i-1].Point(), B: v.Point()}
				if seg.DistTo(p) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(66))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
