package trajectory

import (
	"math"

	"repro/internal/geom"
)

// Simplify reduces the vertex count of a trajectory with the
// time-synchronized variant of Douglas-Peucker (TD-TR): a vertex may be
// dropped only if the object's *time-interpolated* position on the
// simplified segment stays within epsilon of the original position at that
// vertex's timestamp. Unlike purely spatial simplification this preserves
// the motion's kinematics, which is what the distance-function machinery
// consumes.
//
// The result is a new trajectory (the input is not modified) whose
// synchronized Euclidean deviation from the original is at most epsilon.
// epsilon <= 0 returns a copy.
func Simplify(tr *Trajectory, epsilon float64) *Trajectory {
	out := &Trajectory{OID: tr.OID}
	if epsilon <= 0 || len(tr.Verts) <= 2 {
		out.Verts = append([]Vertex(nil), tr.Verts...)
		return out
	}
	keep := make([]bool, len(tr.Verts))
	keep[0] = true
	keep[len(tr.Verts)-1] = true
	simplifyRange(tr.Verts, 0, len(tr.Verts)-1, epsilon, keep)
	for i, k := range keep {
		if k {
			out.Verts = append(out.Verts, tr.Verts[i])
		}
	}
	return out
}

// simplifyRange marks the vertex of maximal synchronized deviation between
// the anchors lo and hi and recurses while the deviation exceeds epsilon.
func simplifyRange(verts []Vertex, lo, hi int, epsilon float64, keep []bool) {
	if hi-lo < 2 {
		return
	}
	a, b := verts[lo], verts[hi]
	dt := b.T - a.T
	worst := -1
	worstD := epsilon
	for i := lo + 1; i < hi; i++ {
		v := verts[i]
		u := (v.T - a.T) / dt
		sync := geom.Point{X: a.X + u*(b.X-a.X), Y: a.Y + u*(b.Y-a.Y)}
		if d := sync.Dist(v.Point()); d > worstD {
			worstD = d
			worst = i
		}
	}
	if worst < 0 {
		return
	}
	keep[worst] = true
	simplifyRange(verts, lo, worst, epsilon, keep)
	simplifyRange(verts, worst, hi, epsilon, keep)
}

// SyncDeviation returns the maximum synchronized Euclidean deviation of
// the simplified trajectory s from the original tr, evaluated at the
// original's vertex timestamps. It is the quantity Simplify bounds by
// epsilon.
func SyncDeviation(tr, s *Trajectory) float64 {
	var worst float64
	for _, v := range tr.Verts {
		if d := s.At(v.T).Dist(v.Point()); d > worst {
			worst = d
		}
	}
	return worst
}

// Resample returns a copy of the trajectory re-sampled at n evenly spaced
// timestamps across its span (n >= 2), interpolating positions linearly.
// Useful to normalize workloads with heterogeneous vertex counts before
// comparison.
func Resample(tr *Trajectory, n int) (*Trajectory, error) {
	if n < 2 {
		return nil, ErrTooFewVertices
	}
	tb, te := tr.TimeSpan()
	verts := make([]Vertex, n)
	for i := 0; i < n; i++ {
		t := tb + (te-tb)*float64(i)/float64(n-1)
		// Guard the last step against float drift so times stay strictly
		// increasing and hit te exactly.
		if i == n-1 {
			t = te
		}
		p := tr.At(t)
		verts[i] = Vertex{X: p.X, Y: p.Y, T: t}
	}
	return New(tr.OID, verts)
}

// PathDeviation returns the maximum over a dense time grid of the distance
// between two trajectories' positions — a symmetric comparison utility for
// tests and tooling (m sample points; m < 2 defaults to 256).
func PathDeviation(a, b *Trajectory, m int) float64 {
	if m < 2 {
		m = 256
	}
	atb, ate := a.TimeSpan()
	btb, bte := b.TimeSpan()
	tb, te := math.Max(atb, btb), math.Min(ate, bte)
	if te <= tb {
		return math.Inf(1)
	}
	var worst float64
	for i := 0; i < m; i++ {
		t := tb + (te-tb)*float64(i)/float64(m-1)
		if d := a.At(t).Dist(b.At(t)); d > worst {
			worst = d
		}
	}
	return worst
}
