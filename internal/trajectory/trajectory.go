// Package trajectory implements the paper's motion model (Section 2.1):
// a trajectory is a function Time → R² represented as a sequence of 3D
// (x, y, t) points with linear interpolation between consecutive vertices
// (Eq. 1), carried by a unique object ID. An uncertain trajectory augments
// a trajectory with an uncertainty-disk radius r and a location pdf inside
// the disk.
package trajectory

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/updf"
)

// Validation errors.
var (
	ErrTooFewVertices  = errors.New("trajectory: need at least two vertices")
	ErrNonIncreasing   = errors.New("trajectory: vertex times must be strictly increasing")
	ErrNonFinite       = errors.New("trajectory: vertex coordinates must be finite")
	ErrBadRadius       = errors.New("trajectory: uncertainty radius must be positive")
	ErrTruncatedStream = errors.New("trajectory: truncated binary stream")
)

// Vertex is one 3D sample (2D space plus time) of a trajectory.
type Vertex struct {
	X, Y, T float64
}

// Point returns the spatial component of the vertex.
func (v Vertex) Point() geom.Point { return geom.Point{X: v.X, Y: v.Y} }

// Trajectory is a piecewise-linear motion plan with a unique object ID.
// Between consecutive vertices the object moves along a straight segment at
// the constant speed of Eq. 1.
type Trajectory struct {
	OID   int64
	Verts []Vertex
}

// New constructs a validated trajectory.
func New(oid int64, verts []Vertex) (*Trajectory, error) {
	tr := &Trajectory{OID: oid, Verts: verts}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// Validate checks the structural invariants: at least two vertices,
// strictly increasing timestamps, finite coordinates.
func (tr *Trajectory) Validate() error {
	if len(tr.Verts) < 2 {
		return ErrTooFewVertices
	}
	for i, v := range tr.Verts {
		if math.IsNaN(v.X) || math.IsInf(v.X, 0) ||
			math.IsNaN(v.Y) || math.IsInf(v.Y, 0) ||
			math.IsNaN(v.T) || math.IsInf(v.T, 0) {
			return fmt.Errorf("%w: vertex %d", ErrNonFinite, i)
		}
		if i > 0 && v.T <= tr.Verts[i-1].T {
			return fmt.Errorf("%w: vertex %d (t=%g after t=%g)", ErrNonIncreasing, i, v.T, tr.Verts[i-1].T)
		}
	}
	return nil
}

// TimeSpan returns the first and last timestamps.
func (tr *Trajectory) TimeSpan() (tb, te float64) {
	return tr.Verts[0].T, tr.Verts[len(tr.Verts)-1].T
}

// At returns the expected location at time t by linear interpolation,
// clamping to the endpoints outside the time span.
func (tr *Trajectory) At(t float64) geom.Point {
	n := len(tr.Verts)
	if t <= tr.Verts[0].T {
		return tr.Verts[0].Point()
	}
	if t >= tr.Verts[n-1].T {
		return tr.Verts[n-1].Point()
	}
	i := tr.segmentIndex(t)
	a, b := tr.Verts[i], tr.Verts[i+1]
	u := (t - a.T) / (b.T - a.T)
	return a.Point().Lerp(b.Point(), u)
}

// segmentIndex returns i such that Verts[i].T <= t < Verts[i+1].T, assuming
// t lies strictly inside the span.
func (tr *Trajectory) segmentIndex(t float64) int {
	i := sort.Search(len(tr.Verts), func(k int) bool { return tr.Verts[k].T > t }) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(tr.Verts)-1 {
		i = len(tr.Verts) - 2
	}
	return i
}

// VelocityAt returns the velocity vector on the segment active at time t
// (Eq. 1 divided into components). At a vertex the following segment's
// velocity is returned; outside the span the velocity is zero.
func (tr *Trajectory) VelocityAt(t float64) geom.Vec {
	tb, te := tr.TimeSpan()
	if t < tb || t >= te {
		if t == te { // final instant: use last segment
			i := len(tr.Verts) - 2
			return tr.segmentVelocity(i)
		}
		return geom.Vec{}
	}
	return tr.segmentVelocity(tr.segmentIndex(t))
}

func (tr *Trajectory) segmentVelocity(i int) geom.Vec {
	a, b := tr.Verts[i], tr.Verts[i+1]
	dt := b.T - a.T
	return geom.Vec{X: (b.X - a.X) / dt, Y: (b.Y - a.Y) / dt}
}

// Speed returns the scalar speed on segment i (Eq. 1).
func (tr *Trajectory) Speed(i int) float64 {
	return tr.segmentVelocity(i).Len()
}

// NumSegments returns the number of linear segments.
func (tr *Trajectory) NumSegments() int { return len(tr.Verts) - 1 }

// Segment returns the i-th segment as a spatial segment plus its time
// bounds.
func (tr *Trajectory) Segment(i int) (seg geom.Segment, t0, t1 float64) {
	a, b := tr.Verts[i], tr.Verts[i+1]
	return geom.Segment{A: a.Point(), B: b.Point()}, a.T, b.T
}

// VertexTimesWithin returns the vertex timestamps strictly inside (tb, te),
// used to split query windows into elementary intervals on which the motion
// is a single linear segment.
func (tr *Trajectory) VertexTimesWithin(tb, te float64) []float64 {
	var out []float64
	for _, v := range tr.Verts {
		if v.T > tb && v.T < te {
			out = append(out, v.T)
		}
	}
	return out
}

// Clip returns a copy of the trajectory restricted to [tb, te], with
// interpolated endpoints. It returns nil if the window does not intersect
// the span with positive measure.
func (tr *Trajectory) Clip(tb, te float64) *Trajectory {
	b, e := tr.TimeSpan()
	lo, hi := math.Max(tb, b), math.Min(te, e)
	if hi <= lo {
		return nil
	}
	verts := []Vertex{{X: tr.At(lo).X, Y: tr.At(lo).Y, T: lo}}
	for _, v := range tr.Verts {
		if v.T > lo && v.T < hi {
			verts = append(verts, v)
		}
	}
	p := tr.At(hi)
	verts = append(verts, Vertex{X: p.X, Y: p.Y, T: hi})
	return &Trajectory{OID: tr.OID, Verts: verts}
}

// BoundingBox returns the spatial bounding box of the vertices. Because
// motion is piecewise linear, it bounds the whole expected path.
func (tr *Trajectory) BoundingBox() geom.AABB {
	b := geom.EmptyAABB()
	for _, v := range tr.Verts {
		b = b.ExtendPoint(v.Point())
	}
	return b
}

// Length returns the total expected path length.
func (tr *Trajectory) Length() float64 {
	var s float64
	for i := 0; i+1 < len(tr.Verts); i++ {
		s += tr.Verts[i].Point().Dist(tr.Verts[i+1].Point())
	}
	return s
}

// Uncertain is the paper's uncertain trajectory Tr^u: a trajectory plus the
// uncertainty-disk radius and the location pdf within the disk. The pdf's
// support must equal R.
type Uncertain struct {
	Trajectory
	R   float64
	PDF updf.RadialPDF
}

// NewUncertain validates and wraps a trajectory with uncertainty radius r
// and location pdf p. A nil pdf defaults to the paper's uniform disk model.
func NewUncertain(tr Trajectory, r float64, p updf.RadialPDF) (*Uncertain, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if r <= 0 {
		return nil, ErrBadRadius
	}
	if p == nil {
		p = updf.NewUniformDisk(r)
	}
	return &Uncertain{Trajectory: tr, R: r, PDF: p}, nil
}

// DiskAt returns the uncertainty disk D_i(t) at time t.
func (u *Uncertain) DiskAt(t float64) geom.Disk {
	return geom.Disk{C: u.At(t), R: u.R}
}

// --- binary codec ---
//
// Layout (little endian): oid int64, vertex count uint32, then per vertex
// three float64 (x, y, t). The codec carries only the crisp trajectory;
// uncertainty parameters are serialized by the mod store, which owns the
// set-wide radius/pdf (the paper assumes r and pdf are shared by the set).

// WriteBinary serializes the trajectory to w.
func (tr *Trajectory) WriteBinary(w io.Writer) error {
	if err := binary.Write(w, binary.LittleEndian, tr.OID); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(tr.Verts))); err != nil {
		return err
	}
	for _, v := range tr.Verts {
		if err := binary.Write(w, binary.LittleEndian, [3]float64{v.X, v.Y, v.T}); err != nil {
			return err
		}
	}
	return nil
}

// ReadBinary deserializes a trajectory from r and validates it.
func ReadBinary(r io.Reader) (*Trajectory, error) {
	var oid int64
	if err := binary.Read(r, binary.LittleEndian, &oid); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: %v", ErrTruncatedStream, err)
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncatedStream, err)
	}
	if n > 1<<24 {
		return nil, fmt.Errorf("trajectory: implausible vertex count %d", n)
	}
	verts := make([]Vertex, n)
	for i := range verts {
		var b [3]float64
		if err := binary.Read(r, binary.LittleEndian, &b); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrTruncatedStream, err)
		}
		verts[i] = Vertex{X: b[0], Y: b[1], T: b[2]}
	}
	return New(oid, verts)
}
