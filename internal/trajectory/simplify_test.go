package trajectory

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func zigzag(t *testing.T, n int, amp float64) *Trajectory {
	t.Helper()
	verts := make([]Vertex, n)
	for i := range verts {
		y := 0.0
		if i%2 == 1 {
			y = amp
		}
		verts[i] = Vertex{X: float64(i), Y: y, T: float64(i)}
	}
	tr, err := New(1, verts)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSimplifyCollinear(t *testing.T) {
	// Perfectly linear motion collapses to the two endpoints.
	verts := make([]Vertex, 10)
	for i := range verts {
		verts[i] = Vertex{X: float64(i) * 2, Y: float64(i) * 3, T: float64(i)}
	}
	tr, err := New(1, verts)
	if err != nil {
		t.Fatal(err)
	}
	s := Simplify(tr, 1e-9)
	if len(s.Verts) != 2 {
		t.Fatalf("collinear simplified to %d vertices", len(s.Verts))
	}
	if s.Verts[0] != verts[0] || s.Verts[1] != verts[9] {
		t.Error("endpoints not preserved")
	}
}

func TestSimplifyKeepsLargeFeatures(t *testing.T) {
	tr := zigzag(t, 11, 5)
	// Epsilon below the amplitude keeps every zigzag vertex.
	s := Simplify(tr, 1)
	if len(s.Verts) != 11 {
		t.Fatalf("eps=1 kept %d of 11", len(s.Verts))
	}
	// Epsilon above flattens to the endpoints.
	s = Simplify(tr, 10)
	if len(s.Verts) != 2 {
		t.Fatalf("eps=10 kept %d", len(s.Verts))
	}
}

func TestSimplifyEdgeCases(t *testing.T) {
	tr := zigzag(t, 5, 1)
	// Nonpositive epsilon: copy.
	s := Simplify(tr, 0)
	if len(s.Verts) != 5 {
		t.Fatalf("eps=0 kept %d", len(s.Verts))
	}
	// Input unchanged, deep copy.
	s.Verts[0].X = 999
	if tr.Verts[0].X == 999 {
		t.Error("Simplify aliased input vertices")
	}
	// Two-vertex input unchanged.
	two, err := New(2, []Vertex{{0, 0, 0}, {1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := Simplify(two, 5); len(got.Verts) != 2 {
		t.Fatalf("two-vertex simplify = %d", len(got.Verts))
	}
}

// Property: the synchronized deviation of the simplification never exceeds
// epsilon, and the simplification is a valid trajectory whose vertex set
// is a subset of the original.
func TestSimplifyDeviationBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		verts := make([]Vertex, n)
		tm := 0.0
		for i := range verts {
			tm += 0.2 + rng.Float64()
			verts[i] = Vertex{X: rng.Float64() * 40, Y: rng.Float64() * 40, T: tm}
		}
		tr, err := New(7, verts)
		if err != nil {
			return false
		}
		eps := 0.5 + 3*rng.Float64()
		s := Simplify(tr, eps)
		if err := s.Validate(); err != nil {
			return false
		}
		if SyncDeviation(tr, s) > eps+1e-9 {
			return false
		}
		// Vertex subset check.
		j := 0
		for _, v := range s.Verts {
			for j < len(tr.Verts) && tr.Verts[j] != v {
				j++
			}
			if j == len(tr.Verts) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestResample(t *testing.T) {
	tr := zigzag(t, 6, 2)
	rs, err := Resample(tr, 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Verts) != 21 {
		t.Fatalf("resampled to %d", len(rs.Verts))
	}
	tb, te := rs.TimeSpan()
	otb, ote := tr.TimeSpan()
	if tb != otb || te != ote {
		t.Errorf("span changed: [%g, %g]", tb, te)
	}
	// Positions match the original at resampled times.
	for _, v := range rs.Verts {
		if tr.At(v.T).Dist(v.Point()) > 1e-9 {
			t.Fatalf("resample drift at t=%g", v.T)
		}
	}
	if _, err := Resample(tr, 1); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestPathDeviation(t *testing.T) {
	a := zigzag(t, 6, 2)
	b := Simplify(a, 10) // endpoints only
	d := PathDeviation(a, b, 500)
	if d <= 0 || d > 2.5 {
		t.Errorf("deviation = %g", d)
	}
	if got := PathDeviation(a, a, 100); got != 0 {
		t.Errorf("self deviation = %g", got)
	}
	// Disjoint spans.
	c, err := New(3, []Vertex{{0, 0, 100}, {1, 1, 101}})
	if err != nil {
		t.Fatal(err)
	}
	if got := PathDeviation(a, c, 100); !math.IsInf(got, 1) {
		t.Errorf("disjoint spans = %g", got)
	}
}
