package cluster_test

// Router unit tests: cancellation promptness and goroutine hygiene
// (acceptance: a canceled router call returns promptly and leaks nothing
// under -race), Explain shard aggregation, partitioner behavior, and
// construction validation.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/mod"
	"repro/internal/prune"
	"repro/internal/textidx"
	"repro/internal/trajectory"
	"repro/internal/workload"
)

// blockingShard wraps a Shard and parks phase-1 calls until the caller's
// context dies — the adversarial mid-scatter stall.
type blockingShard struct {
	cluster.Shard
	entered chan struct{}
}

func (s *blockingShard) Bounds(ctx context.Context, q *trajectory.Trajectory, tb, te float64, k int, where *textidx.Predicate) ([]float64, error) {
	select {
	case s.entered <- struct{}{}:
	default:
	}
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestRouterCancelMidScatter parks one shard inside phase 1, cancels the
// context mid-scatter, and requires the router call to return the context
// error promptly — with every scatter goroutine reaped (checked by
// goroutine count, which -race turns into a leak detector too).
func TestRouterCancelMidScatter(t *testing.T) {
	store, trs := buildStore(t, 50, 0.5, 7)
	stores, err := cluster.SplitStore(store, 3, cluster.Hash{})
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{}, 1)
	shards := []cluster.Shard{
		cluster.NewLocalShard("a", stores[0]),
		&blockingShard{Shard: cluster.NewLocalShard("b", stores[1]), entered: entered},
		cluster.NewLocalShard("c", stores[2]),
	}
	router, err := cluster.NewRouter(context.Background(), shards, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := router.Do(ctx, engine.Request{Kind: engine.KindUQ31, QueryOID: trs[0].OID, Tb: 0, Te: 30})
		done <- err
	}()
	<-entered // the scatter is live and one shard is parked
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled router call returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled router call did not return promptly")
	}
	// Every scatter goroutine must be reaped once the call returns.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines leaked across cancellation: %d before, %d after", before, n)
	}
}

// TestRouterExpiredDeadline requires an already-expired deadline to fail
// fast with the context error, before any shard work.
func TestRouterExpiredDeadline(t *testing.T) {
	store, trs := buildStore(t, 50, 0.5, 7)
	router, err := cluster.NewLocalCluster(store, 2, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	start := time.Now()
	_, err = router.Do(ctx, engine.Request{Kind: engine.KindUQ31, QueryOID: trs[0].OID, Tb: 0, Te: 30})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("expired-deadline call took %v", d)
	}
}

// TestRemoteShardCancelPrompt blocks a RemoteShard call on a server that
// accepts and then never replies; canceling the context must unblock it
// promptly (the watchdog closes the connection) and report the context
// error, not wire noise.
func TestRemoteShardCancelPrompt(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			// Read and drop; never answer.
			buf := make([]byte, 4096)
			for {
				if _, err := conn.Read(buf); err != nil {
					return
				}
			}
		}
	}()
	shard := cluster.NewRemoteShard("mute", l.Addr().String())
	defer shard.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := shard.Len(ctx)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the call reach the blocked read
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled remote call returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled remote call did not return promptly")
	}
}

// TestRouterExplainAggregation pins the provenance contract: a routed
// result reports the cluster size and one shard entry whose candidate
// counts tile the population, while single-engine results leave the shard
// fields zero.
func TestRouterExplainAggregation(t *testing.T) {
	store, trs := buildStore(t, 120, 0.5, 11)
	req := engine.Request{Kind: engine.KindUQ31, QueryOID: trs[0].OID, Tb: 0, Te: 30}

	single, err := engine.New(0).Do(context.Background(), store, req)
	if err != nil {
		t.Fatal(err)
	}
	if single.Explain.Shards != 0 || single.Explain.ShardExplains != nil {
		t.Fatalf("single-engine explain grew shard fields: %+v", single.Explain)
	}

	router, err := cluster.NewLocalCluster(store, 3, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	routed, err := router.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	ex := routed.Explain
	if ex.Shards != 3 || len(ex.ShardExplains) != 3 {
		t.Fatalf("routed explain: Shards=%d, %d entries, want 3/3", ex.Shards, len(ex.ShardExplains))
	}
	totalCands, totalSurv := 0, 0
	for _, se := range ex.ShardExplains {
		totalCands += se.Candidates
		totalSurv += se.Survivors
	}
	// Shard candidate counts tile the non-query population: the query's
	// own shard excludes it, the others see their full partition.
	if totalCands != store.Len()-1 {
		t.Fatalf("shard candidates sum to %d, want %d", totalCands, store.Len()-1)
	}
	if totalSurv < len(routed.OIDs) {
		t.Fatalf("shard survivors %d < answer size %d", totalSurv, len(routed.OIDs))
	}
}

// TestPartitioners pins placement invariants: in-range deterministic
// placement for both schemes, OID-locatability for hash, and split
// completeness.
func TestPartitioners(t *testing.T) {
	trs, err := workload.Generate(workload.DefaultConfig(3), 200)
	if err != nil {
		t.Fatal(err)
	}
	for _, part := range []cluster.Partitioner{cluster.Hash{}, cluster.Grid{}, cluster.Grid{CellSize: 2.5}} {
		counts := make(map[int]int)
		for _, tr := range trs {
			i := part.Place(tr, 4)
			if i < 0 || i >= 4 {
				t.Fatalf("%s placed OID %d out of range: %d", part.Name(), tr.OID, i)
			}
			if j := part.Place(tr, 4); j != i {
				t.Fatalf("%s is nondeterministic for OID %d", part.Name(), tr.OID)
			}
			counts[i]++
		}
		if len(counts) < 2 {
			t.Fatalf("%s used %d of 4 shards for 200 trajectories", part.Name(), len(counts))
		}
	}
	h := cluster.Hash{}
	for _, tr := range trs[:20] {
		if h.Locate(tr.OID, 4) != h.Place(tr, 4) {
			t.Fatalf("hash Locate disagrees with Place for OID %d", tr.OID)
		}
	}
	if (cluster.Hash{}).Locate(99, 1) != 0 {
		t.Fatal("single-shard locate must be 0")
	}
	if (cluster.Grid{}).Locate(99, 4) != -1 {
		t.Fatal("grid locate must be -1 (broadcast)")
	}

	store, err := mod.NewUniformStore(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.InsertAll(trs); err != nil {
		t.Fatal(err)
	}
	stores, err := cluster.SplitStore(store, 4, cluster.Hash{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, st := range stores {
		total += st.Len()
	}
	if total != store.Len() {
		t.Fatalf("split lost trajectories: %d of %d", total, store.Len())
	}
}

// TestNewRouterValidation covers construction errors: no shards, spec
// disagreement, nil-router calls.
func TestNewRouterValidation(t *testing.T) {
	if _, err := cluster.NewRouter(context.Background(), nil, cluster.Options{}); !errors.Is(err, cluster.ErrNoShards) {
		t.Fatalf("empty shard set: %v", err)
	}
	a, _ := mod.NewUniformStore(0.5)
	b, _ := mod.NewUniformStore(0.25)
	_, err := cluster.NewRouter(context.Background(), []cluster.Shard{
		cluster.NewLocalShard("a", a), cluster.NewLocalShard("b", b),
	}, cluster.Options{})
	if !errors.Is(err, cluster.ErrSpecMismatch) {
		t.Fatalf("spec mismatch: %v", err)
	}
	var r *cluster.Router
	if _, err := r.Do(context.Background(), engine.Request{Kind: engine.KindUQ31, Tb: 0, Te: 1}); !errors.Is(err, cluster.ErrNoRouter) {
		t.Fatalf("nil router Do: %v", err)
	}
	if _, err := r.DoBatch(context.Background(), nil); !errors.Is(err, cluster.ErrNoRouter) {
		t.Fatalf("nil router DoBatch: %v", err)
	}
}

// failingShard errors out of phase 1 immediately.
type failingShard struct{ cluster.Shard }

var errShardDown = errors.New("shard down")

func (s failingShard) Bounds(context.Context, *trajectory.Trajectory, float64, float64, int, *textidx.Predicate) ([]float64, error) {
	return nil, errShardDown
}

// TestScatterFailsFast: one shard failing instantly must surface its
// error without waiting out a slow sibling — the failure cancels the
// sibling's context, and the real error outranks the cancellation noise.
func TestScatterFailsFast(t *testing.T) {
	store, trs := buildStore(t, 40, 0.5, 7)
	stores, err := cluster.SplitStore(store, 2, cluster.Hash{})
	if err != nil {
		t.Fatal(err)
	}
	slow := &blockingShard{Shard: cluster.NewLocalShard("slow", stores[0]), entered: make(chan struct{}, 1)}
	router, err := cluster.NewRouter(context.Background(), []cluster.Shard{
		slow,
		failingShard{cluster.NewLocalShard("down", stores[1])},
	}, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = router.Do(context.Background(), engine.Request{Kind: engine.KindUQ31, QueryOID: trs[0].OID, Tb: 0, Te: 30})
	if !errors.Is(err, errShardDown) {
		t.Fatalf("got %v, want the failing shard's error", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("failure took %v; the slow sibling was waited out instead of canceled", d)
	}
}

// badBoundsShard returns a bounds vector of the wrong length.
type badBoundsShard struct{ cluster.Shard }

func (s badBoundsShard) Bounds(context.Context, *trajectory.Trajectory, float64, float64, int, *textidx.Predicate) ([]float64, error) {
	return []float64{1}, nil
}

// TestRouterProtocolError requires a malformed shard reply to surface as
// ErrProtocol with the shard named, not a silent wrong answer.
func TestRouterProtocolError(t *testing.T) {
	store, trs := buildStore(t, 30, 0.5, 7)
	stores, err := cluster.SplitStore(store, 2, cluster.Hash{})
	if err != nil {
		t.Fatal(err)
	}
	router, err := cluster.NewRouter(context.Background(), []cluster.Shard{
		cluster.NewLocalShard("good", stores[0]),
		badBoundsShard{cluster.NewLocalShard("bad", stores[1])},
	}, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = router.Do(context.Background(), engine.Request{Kind: engine.KindUQ31, QueryOID: trs[0].OID, Tb: 0, Te: 30})
	if !errors.Is(err, cluster.ErrProtocol) {
		t.Fatalf("got %v, want ErrProtocol", err)
	}
}

// TestLocalShardSurvivorsMatchCandidates pins the protocol identity the
// bound exchange is built on: sweeping a store against its own bounds
// reproduces the classic candidate pre-pass exactly.
func TestLocalShardSurvivorsMatchCandidates(t *testing.T) {
	store, trs := buildStore(t, 150, 0.5, 13)
	q := trs[0]
	want, _, err := prune.Candidates(store, q, 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	bounds, err := prune.SliceBounds(context.Background(), store, q, 0, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := prune.SurvivorsWithBounds(context.Background(), store, q, 0, 30, bounds)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int64, len(got))
	for i, tr := range got {
		ids[i] = tr.OID
	}
	if fmt.Sprint(want) != fmt.Sprint(ids) {
		t.Fatalf("self-bounded sweep diverged from Candidates:\n  want %v\n  got  %v", want, ids)
	}
	if stats.Survivors != len(want) {
		t.Fatalf("stats.Survivors=%d, want %d", stats.Survivors, len(want))
	}
}
