package cluster_test

// Transport-security tests for the remote shard path: a TLS+token shard
// set must answer byte-identically to the single engine, and the two
// misconfigurations an operator will actually hit — plaintext dial
// against a TLS shard, wrong token — must fail with typed, permanent
// errors instead of burning the retry budget.

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"testing"

	"repro/internal/cluster"
	"repro/internal/mod"
	"repro/internal/modserver"
	"repro/internal/testcert"
)

const shardToken = "shard-secret"

// startTLSShardServers splits the store across n TLS+token modservers and
// returns remote shards configured to reach them.
func startTLSShardServers(t testing.TB, store *mod.Store, n int, pair testcert.Pair) []cluster.Shard {
	t.Helper()
	stores, err := cluster.SplitStore(store, n, cluster.Hash{})
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]cluster.Shard, n)
	for i, st := range stores {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := modserver.NewServerWith(st, nil, modserver.Options{Token: shardToken})
		go srv.Serve(tls.NewListener(l, pair.ServerConfig()))
		t.Cleanup(func() { srv.Close() })
		remote := cluster.NewRemoteShardWith(fmt.Sprintf("tls-%d", i), l.Addr().String(),
			cluster.RemoteOptions{TLS: pair.ClientConfig(), Token: shardToken})
		t.Cleanup(func() { remote.Close() })
		shards[i] = remote
	}
	return shards
}

// TestTLSShardEquivalence: the full request suite over a 2-shard TLS+token
// cluster answers byte-identically to the single engine — encryption and
// auth change nothing about the protocol above them.
func TestTLSShardEquivalence(t *testing.T) {
	pair, err := testcert.New()
	if err != nil {
		t.Fatal(err)
	}
	store, trs := buildStore(t, 200, equivR, equivSeed)
	reqs := equivRequests(trs)
	want := singleAnswers(t, store, reqs)
	router, err := cluster.NewRouter(context.Background(),
		startTLSShardServers(t, store, 2, pair), cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := router.DoBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	checkSame(t, "tls/2", reqs, want, got)
}

// TestPlaintextDialAgainstTLSShard: a RemoteShard with no TLS config
// against a TLS shard fails with the typed modserver.ErrTLSRequired —
// permanent, so the retry budget is not spent redialing a config error.
func TestPlaintextDialAgainstTLSShard(t *testing.T) {
	pair, err := testcert.New()
	if err != nil {
		t.Fatal(err)
	}
	store, _ := buildStore(t, 10, equivR, equivSeed)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := modserver.NewServer(store)
	go srv.Serve(tls.NewListener(l, pair.ServerConfig()))
	t.Cleanup(func() { srv.Close() })

	retries := 0
	shard := cluster.NewRemoteShardWith("plain", l.Addr().String(), cluster.RemoteOptions{
		OnRetry: func(string, int, error) { retries++ },
	})
	t.Cleanup(func() { shard.Close() })
	if _, err := shard.Spec(context.Background()); !errors.Is(err, modserver.ErrTLSRequired) {
		t.Fatalf("plaintext spec against TLS shard: %v, want modserver.ErrTLSRequired", err)
	}
	if retries != 0 {
		t.Fatalf("typed TLS mismatch burned %d retries; want 0", retries)
	}
}

// TestWrongShardTokenTyped: a wrong (or missing) token fails shard calls
// with the typed modserver.ErrUnauthorized, again without retries.
func TestWrongShardTokenTyped(t *testing.T) {
	store, _ := buildStore(t, 10, equivR, equivSeed)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := modserver.NewServerWith(store, nil, modserver.Options{Token: shardToken})
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })

	for _, token := range []string{"wrong", ""} {
		retries := 0
		shard := cluster.NewRemoteShardWith("badtoken", l.Addr().String(), cluster.RemoteOptions{
			Token:   token,
			OnRetry: func(string, int, error) { retries++ },
		})
		if _, err := shard.Spec(context.Background()); !errors.Is(err, modserver.ErrUnauthorized) {
			t.Fatalf("token %q: spec err=%v, want modserver.ErrUnauthorized", token, err)
		}
		if retries != 0 {
			t.Fatalf("token %q: unauthorized burned %d retries; want 0", token, retries)
		}
		shard.Close()
	}
}
