package cluster

import (
	"math"

	"repro/internal/trajectory"
)

// Partitioner decides which shard holds a trajectory. Place must be
// deterministic (the router and loaders both consult it); Locate lets the
// router turn a point lookup into a single shard call when the OID alone
// determines placement.
type Partitioner interface {
	// Name identifies the scheme in artifacts and errors.
	Name() string
	// Place returns the shard index in [0, n) for a trajectory.
	Place(tr *trajectory.Trajectory, n int) int
	// Locate returns the shard index for an OID when it is determinable
	// from the OID alone, or -1 — the router then broadcasts the lookup.
	Locate(oid int64, n int) int
}

// Hash places by a mixed hash of the OID — the default scheme: balanced
// regardless of geometry, and point lookups route to exactly one shard.
type Hash struct{}

// Name implements Partitioner.
func (Hash) Name() string { return "hash" }

// Place implements Partitioner.
func (h Hash) Place(tr *trajectory.Trajectory, n int) int { return h.Locate(tr.OID, n) }

// Locate implements Partitioner.
func (Hash) Locate(oid int64, n int) int {
	if n <= 1 {
		return 0
	}
	return int(mix64(uint64(oid)) % uint64(n))
}

// DefaultCellSize is the Grid cell edge (in distance units) when none is
// set — 10 mi on the paper's 40×40 mi² workload keeps a handful of cells
// per shard at small K.
const DefaultCellSize = 10.0

// Grid places by the spatial cell of the trajectory's first vertex, so
// objects that start out co-located tend to share a shard — tighter
// per-shard corridors and envelope bounds at the price of OID-broadcast
// point lookups (Locate always answers -1).
type Grid struct {
	// CellSize is the square cell edge; <= 0 means DefaultCellSize.
	CellSize float64
}

// Name implements Partitioner.
func (Grid) Name() string { return "grid" }

// Place implements Partitioner.
func (g Grid) Place(tr *trajectory.Trajectory, n int) int {
	if n <= 1 {
		return 0
	}
	cs := g.CellSize
	if cs <= 0 {
		cs = DefaultCellSize
	}
	v := tr.Verts[0]
	cx := uint64(int64(math.Floor(v.X / cs)))
	cy := uint64(int64(math.Floor(v.Y / cs)))
	return int(mix64(cx*0x9e3779b97f4a7c15^cy) % uint64(n))
}

// Locate implements Partitioner: placement depends on geometry the OID
// does not carry.
func (Grid) Locate(int64, int) int { return -1 }

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// mixer so sequential OIDs spread evenly across shards.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
