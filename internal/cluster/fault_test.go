package cluster_test

// Chaos tests for the fault-tolerant serving path: a seeded fault
// injector sits under one shard's transport and the router must either
// absorb the fault through the RemoteShard retry layer (exact answer) or
// — when built Degraded — merge the shards it can reach and name the
// missing one in Explain. A scatter must never hang and a cancel must
// unwind promptly without leaking the retry machinery.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/mod"
	"repro/internal/modserver"
)

// faultCluster serves store from n modserver shards over TCP, routing
// shard faultIdx's connections through a fault injector (initially
// fault-free). Every shard retries with the given policy. Returns the
// router, the injector, the per-shard stores, and the shard addresses.
func faultCluster(t *testing.T, store *mod.Store, n, faultIdx int, retry cluster.RetryPolicy, degraded bool) (*cluster.Router, *faultinject.Injector, []*mod.Store, []string) {
	t.Helper()
	stores, err := cluster.SplitStore(store, n, cluster.Hash{})
	if err != nil {
		t.Fatal(err)
	}
	in := faultinject.New(7, faultinject.Plan{})
	shards := make([]cluster.Shard, n)
	addrs := make([]string, n)
	for i, st := range stores {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := modserver.NewServer(st)
		go srv.Serve(l)
		t.Cleanup(func() { srv.Close() })
		addrs[i] = l.Addr().String()
		opts := cluster.RemoteOptions{Retry: retry}
		if i == faultIdx {
			opts.Dialer = in.Dial
		}
		remote := cluster.NewRemoteShardWith(fmt.Sprintf("s%d", i), addrs[i], opts)
		t.Cleanup(func() { remote.Close() })
		shards[i] = remote
	}
	router, err := cluster.NewRouter(context.Background(), shards, cluster.Options{Degraded: degraded})
	if err != nil {
		t.Fatal(err)
	}
	return router, in, stores, addrs
}

// pickQuery returns a query OID homed on a healthy shard, so the query
// trajectory itself stays reachable while shard faultIdx misbehaves.
func pickQuery(t *testing.T, stores []*mod.Store, faultIdx int) int64 {
	t.Helper()
	for i, st := range stores {
		if i == faultIdx {
			continue
		}
		if oids := st.OIDs(); len(oids) > 0 {
			return oids[0]
		}
	}
	t.Fatal("no healthy shard holds any object")
	return 0
}

// testRetry keeps chaos runs fast and deterministic.
var testRetry = cluster.RetryPolicy{
	Attempts:       3,
	BaseBackoff:    5 * time.Millisecond,
	MaxBackoff:     20 * time.Millisecond,
	AttemptTimeout: 250 * time.Millisecond,
	Seed:           99,
}

// TestFaultMatrixRetryOrDegraded drives the acceptance matrix: with
// drop, delay, or dial-error faults on one shard of four, every query
// either succeeds exactly (retry absorbed the fault) or returns a
// partial result whose Explain names the missing shard — never a hung
// scatter, never a bare error.
func TestFaultMatrixRetryOrDegraded(t *testing.T) {
	store, _ := buildStore(t, 160, 0.5, 11)
	cases := []struct {
		name string
		plan faultinject.Plan
	}{
		{"drop-always", faultinject.Plan{DropRate: 1}},
		{"drop-flaky", faultinject.Plan{DropRate: 0.4}},
		// Dial faults pair with a drop so the connection cached at router
		// construction dies and reconnects actually hit the dial path.
		{"dial-error", faultinject.Plan{DialErrorRate: 1, DropRate: 1}},
		{"dial-flaky", faultinject.Plan{DialErrorRate: 0.5, DropRate: 0.3}},
		// Keep the delay well past AttemptTimeout but small in absolute
		// terms: an attempt in a delayed read can't be abandoned until the
		// injector's sleep elapses, so the plan's Delay bounds wall time.
		{"delay-past-timeout", faultinject.Plan{Delay: 100 * time.Millisecond}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			retry := testRetry
			if tc.plan.Delay > 0 {
				retry.AttemptTimeout = 30 * time.Millisecond
			}
			const faultIdx = 2
			router, in, stores, _ := faultCluster(t, store, 4, faultIdx, retry, true)
			qOID := pickQuery(t, stores, faultIdx)
			req := engine.Request{Kind: engine.KindUQ31, QueryOID: qOID, Tb: 0, Te: 30}
			exact, err := engine.New(0).Do(context.Background(), store, req)
			if err != nil {
				t.Fatal(err)
			}

			in.SetPlan(tc.plan)
			for i := 0; i < 4; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				res, err := router.Do(ctx, req)
				cancel()
				if err != nil {
					t.Fatalf("query %d under %s: %v (neither retry success nor degraded)", i, tc.name, err)
				}
				if res.Explain.Degraded {
					if !reflect.DeepEqual(res.Explain.MissingShards, []string{"s2"}) {
						t.Fatalf("query %d degraded with MissingShards = %v, want [s2]", i, res.Explain.MissingShards)
					}
					continue
				}
				if !reflect.DeepEqual(res.OIDs, exact.OIDs) {
					t.Fatalf("query %d non-degraded answer %v != exact %v", i, res.OIDs, exact.OIDs)
				}
			}
			t.Logf("%s: injector stats %+v", tc.name, in.Stats())
		})
	}
}

// TestPartitionedShardDegradedAnswer pins the degraded merge rule: with
// one shard of four fully partitioned, the answer equals a single-store
// run over the union of the three reachable partitions, and the Explain
// names the lost shard. Healing the partition restores exact answers.
func TestPartitionedShardDegradedAnswer(t *testing.T) {
	store, _ := buildStore(t, 160, 0.5, 11)
	const faultIdx = 1
	router, in, stores, addrs := faultCluster(t, store, 4, faultIdx, testRetry, true)
	qOID := pickQuery(t, stores, faultIdx)
	req := engine.Request{Kind: engine.KindUQ31, QueryOID: qOID, Tb: 0, Te: 30}

	exact, err := engine.New(0).Do(context.Background(), store, req)
	if err != nil {
		t.Fatal(err)
	}
	// The expected degraded answer: a single store holding only the
	// reachable shards' objects.
	healthy, err := mod.NewStore(store.Spec())
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range stores {
		if i == faultIdx {
			continue
		}
		if err := healthy.InsertAll(st.All()); err != nil {
			t.Fatal(err)
		}
	}
	wantDegraded, err := engine.New(0).Do(context.Background(), healthy, req)
	if err != nil {
		t.Fatal(err)
	}

	in.Partition(addrs[faultIdx])
	res, err := router.Do(context.Background(), req)
	if err != nil {
		t.Fatalf("partitioned query: %v", err)
	}
	if !res.Explain.Degraded || !reflect.DeepEqual(res.Explain.MissingShards, []string{"s1"}) {
		t.Fatalf("explain = degraded=%v missing=%v, want degraded missing [s1]",
			res.Explain.Degraded, res.Explain.MissingShards)
	}
	if !reflect.DeepEqual(res.OIDs, wantDegraded.OIDs) {
		t.Fatalf("degraded answer %v != healthy-union answer %v", res.OIDs, wantDegraded.OIDs)
	}

	in.Heal(addrs[faultIdx])
	res, err = router.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Explain.Degraded {
		t.Fatalf("healed query still degraded: missing=%v", res.Explain.MissingShards)
	}
	if !reflect.DeepEqual(res.OIDs, exact.OIDs) {
		t.Fatalf("healed answer %v != exact %v", res.OIDs, exact.OIDs)
	}
}

// TestStrictRouterShardUnavailable: without Degraded, a lost shard fails
// the call — promptly, with the typed unavailability error carrying the
// shard's identity (the satellite fix for the raw net.OpError leak).
func TestStrictRouterShardUnavailable(t *testing.T) {
	store, _ := buildStore(t, 120, 0.5, 11)
	const faultIdx = 0
	router, in, stores, addrs := faultCluster(t, store, 4, faultIdx, testRetry, false)
	qOID := pickQuery(t, stores, faultIdx)
	// Partition: existing connections reset and new dials refuse, so the
	// next call fails through the typed dial path after its retries.
	in.Partition(addrs[faultIdx])

	_, err := router.Do(context.Background(), engine.Request{Kind: engine.KindUQ31, QueryOID: qOID, Tb: 0, Te: 30})
	if err == nil {
		t.Fatal("strict router answered with a dead shard")
	}
	if !errors.Is(err, cluster.ErrShardUnavailable) {
		t.Fatalf("strict failure = %v, want ErrShardUnavailable", err)
	}
	var se *cluster.ShardUnavailableError
	if !errors.As(err, &se) || se.Shard != faultIdx || se.Name != "s0" {
		t.Fatalf("unavailable detail = %+v", se)
	}
}

// TestDialRefusedTyped pins the satellite directly on the shard: a
// refused lazy dial surfaces as ShardUnavailableError, not a raw
// net.OpError.
func TestDialRefusedTyped(t *testing.T) {
	// A listener we immediately close: the port is real but refuses.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	shard := cluster.NewRemoteShardWith("dead", addr, cluster.RemoteOptions{
		Retry: cluster.RetryPolicy{Attempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond, Seed: 5},
	})
	defer shard.Close()
	_, err = shard.Len(context.Background())
	if !errors.Is(err, cluster.ErrShardUnavailable) {
		t.Fatalf("dead-port Len = %v, want ErrShardUnavailable", err)
	}
	var se *cluster.ShardUnavailableError
	if !errors.As(err, &se) || se.Name != "dead" {
		t.Fatalf("unavailable detail = %+v", se)
	}
}

// TestRetryRecoversFlakyDial: a dial plan that refuses half the time is
// absorbed by a three-attempt retry budget — the call still succeeds.
func TestRetryRecoversFlakyDial(t *testing.T) {
	store, _ := buildStore(t, 40, 0.5, 11)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := modserver.NewServer(store)
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })

	in := faultinject.New(3, faultinject.Plan{DialErrorRate: 0.5})
	shard := cluster.NewRemoteShardWith("flaky", l.Addr().String(), cluster.RemoteOptions{
		Dialer: in.Dial,
		Retry:  cluster.RetryPolicy{Attempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond, Seed: 5},
	})
	defer shard.Close()
	for i := 0; i < 8; i++ {
		n, err := shard.Len(context.Background())
		if err != nil {
			t.Fatalf("flaky Len %d = %v (stats %+v)", i, err, in.Stats())
		}
		if n != 40 {
			t.Fatalf("Len = %d, want 40", n)
		}
		// Poison the cached connection so every iteration redials.
		shard.Close()
	}
	if s := in.Stats(); s.DialsFailed == 0 {
		t.Fatalf("fault plan never fired: %+v", s)
	}
}

// TestCancelMidRetry: canceling the caller's context during the backoff
// of a doomed retry loop returns promptly with the context error and
// leaks no goroutines.
func TestCancelMidRetry(t *testing.T) {
	in := faultinject.New(1, faultinject.Plan{DialErrorRate: 1})
	shard := cluster.NewRemoteShardWith("doomed", "127.0.0.1:1", cluster.RemoteOptions{
		Dialer: in.Dial,
		Retry:  cluster.RetryPolicy{Attempts: 50, BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second, Seed: 7},
	})
	defer shard.Close()

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := shard.Len(ctx)
		done <- err
	}()
	time.Sleep(30 * time.Millisecond) // let the loop reach a backoff sleep
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled retry returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled retry did not return promptly")
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked across cancel: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDegradedAllShardsDownFails: degraded serving is not "answer from
// nothing" — losing every shard is still an error.
func TestDegradedAllShardsDownFails(t *testing.T) {
	store, _ := buildStore(t, 40, 0.5, 11)
	router, in, stores, addrs := faultCluster(t, store, 1, 0, testRetry, true)
	qOID := stores[0].OIDs()[0]
	in.Partition(addrs[0])
	_, err := router.Do(context.Background(), engine.Request{Kind: engine.KindUQ31, QueryOID: qOID, Tb: 0, Te: 30})
	if err == nil {
		t.Fatal("degraded router answered with zero reachable shards")
	}
	if !errors.Is(err, cluster.ErrShardUnavailable) {
		t.Fatalf("total loss = %v, want ErrShardUnavailable", err)
	}
}
