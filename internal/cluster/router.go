package cluster

import (
	"context"
	cryptorand "crypto/rand"
	"errors"
	"fmt"
	"math"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/mod"
	"repro/internal/prune"
	"repro/internal/textidx"
	"repro/internal/trajectory"
)

// Options tunes router construction.
type Options struct {
	// Partitioner decides placement and point-lookup routing; nil means
	// Hash{}.
	Partitioner Partitioner
	// Engine refines the gathered survivors centrally; nil means a fresh
	// engine with one worker per CPU. Routers sharing an engine share its
	// processor memo.
	Engine *engine.Engine
	// Degraded switches shard failures from call-fatal to partial: a
	// scatter that loses shards (past the shards' own retry budgets)
	// merges the replies it has and marks the result
	// Explain.Degraded/MissingShards instead of failing. An answer that
	// loses every shard, or the query trajectory's only copy, still
	// fails. Off by default: exact cluster-wide answers are the router's
	// headline contract.
	Degraded bool
}

// Router implements the exact Engine.Do/DoBatch contract over K shards:
// scatter, two-phase NN bound exchange, distributed refinement,
// deterministic merge. It is safe for concurrent use (per-call state
// only; the inner engine is itself concurrent-safe) and meant to be
// long-lived.
type Router struct {
	shards   []Shard
	part     Partitioner
	inner    *engine.Engine
	spec     mod.PDFSpec
	degraded bool

	// idPrefix and gatherSeq mint process-unique gather IDs: the handle a
	// remote shard caches the shipped union store under for the duration
	// of a batch. The random prefix keeps IDs from colliding across
	// router restarts sharing a server connection's lifetime.
	idPrefix  string
	gatherSeq atomic.Uint64
}

// NewRouter validates the shard set (non-empty, one shared uncertainty
// model) and returns a router over it. ctx bounds the validation round
// trips; nil means context.Background().
func NewRouter(ctx context.Context, shards []Shard, opts Options) (*Router, error) {
	if len(shards) == 0 {
		return nil, ErrNoShards
	}
	if ctx == nil {
		ctx = context.Background()
	}
	part := opts.Partitioner
	if part == nil {
		part = Hash{}
	}
	inner := opts.Engine
	if inner == nil {
		inner = engine.New(0)
	}
	// Remote shards learn their slot so ShardUnavailableError can report
	// which shard of the cluster went dark.
	for i, s := range shards {
		if rs, ok := s.(*RemoteShard); ok {
			rs.setIndex(i)
		}
	}
	spec, err := shards[0].Spec(ctx)
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %s: %w", shards[0].Name(), err)
	}
	for _, s := range shards[1:] {
		sp, err := s.Spec(ctx)
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %s: %w", s.Name(), err)
		}
		if sp != spec {
			return nil, fmt.Errorf("%w: %s has %+v, %s has %+v",
				ErrSpecMismatch, shards[0].Name(), spec, s.Name(), sp)
		}
	}
	// In-process shards adopt the router's engine so their distributed
	// refines share one processor memo with each other and with the
	// central single-object path: one envelope build per union store.
	for _, s := range shards {
		if ls, ok := s.(*LocalShard); ok {
			ls.adoptRefineEngine(inner)
		}
	}
	var seed [8]byte
	_, _ = cryptorand.Read(seed[:]) // best-effort; routerSeq alone is process-unique
	prefix := fmt.Sprintf("%x-%d", seed, routerSeq.Add(1))
	return &Router{shards: shards, part: part, inner: inner, spec: spec, degraded: opts.Degraded, idPrefix: prefix}, nil
}

// routerSeq distinguishes routers within one process even if the random
// prefix read fails.
var routerSeq atomic.Uint64

// nextGatherID mints the handle one gathered union store travels under.
func (r *Router) nextGatherID() string {
	return fmt.Sprintf("%s-%d", r.idPrefix, r.gatherSeq.Add(1))
}

// Shards reports the cluster size.
func (r *Router) Shards() int { return len(r.shards) }

// Partitioner reports the placement scheme.
func (r *Router) Partitioner() Partitioner { return r.part }

// gatherKey identifies one bound-exchange gather: a query trajectory, a
// window, and the canonical predicate key (empty when unfiltered) — a
// filtered exchange runs over a different sub-MOD, so its union store is
// not interchangeable with the unfiltered one. Rank rides separately so a
// batch's deepest rank widens one shared gather instead of repeating it
// per level.
type gatherKey struct {
	qOID   int64
	tb, te float64
	where  string
}

// gathered is the outcome of one scatter/gather round: the transient
// union store of global-zone survivors (plus the query trajectory and
// any fetched targets), the per-shard provenance, and the per-shard
// ownership split the distributed refine partitions the filter domain
// by. q and bounds carry the bound exchange's inputs/outputs so the
// continuous layer can derive a subscription zone profile from the same
// round instead of re-running the exchange.
type gathered struct {
	id      string
	store   *mod.Store
	shardEx []engine.Explain
	// own[i] lists, sorted, the survivor OIDs shard i contributed to the
	// union store — disjoint across shards (a replicated object counts
	// for its first copy), and excluding the query trajectory and any
	// later-fetched targets. Refine restricts shard i's domain to own[i].
	own     [][]int64
	k       int
	targets map[int64]bool // target OIDs already resolved (found or not)
	// nonMatch marks resolved targets that exist in the cluster but fail
	// the gather's predicate: they are NOT inserted into the union store
	// (sub-MOD semantics), and the dispatcher answers false for them
	// without consulting the inner engine — the same short-circuit the
	// single-store engine draws before building a processor.
	nonMatch map[int64]bool
	q        *trajectory.Trajectory
	bounds   []float64
	// missing lists, sorted, the shard indexes this round went without
	// (degraded routers only; always nil on strict routers, where a lost
	// shard fails the round instead).
	missing []int
}

// Do evaluates one request across the shards. The contract matches
// Engine.Do exactly: same validation, same typed errors, same answer
// bytes; the Explain additionally carries Shards and ShardExplains.
func (r *Router) Do(ctx context.Context, req engine.Request) (engine.Result, error) {
	if r == nil {
		return engine.Result{Kind: req.Kind, Err: ErrNoRouter}, ErrNoRouter
	}
	if ctx == nil {
		ctx = context.Background()
	}
	res, _, err := r.dispatch(ctx, req, make(map[gatherKey]*gathered), nil)
	return res, err
}

// DoBatch evaluates the requests in order, sharing one bound exchange per
// (query trajectory, window) group at the group's deepest rank, and the
// all-kinds gather across all-pairs/reverse members. Per-request failures
// are reported inside the matching Result; the batch itself only errors
// on a nil router or when ctx is canceled, in which case the context
// error is returned with the results completed so far — exactly the
// Engine.DoBatch contract.
func (r *Router) DoBatch(ctx context.Context, reqs []engine.Request) ([]engine.Result, error) {
	if r == nil {
		return nil, ErrNoRouter
	}
	if ctx == nil {
		ctx = context.Background()
	}
	maxK := make(map[gatherKey]int)
	for _, req := range reqs {
		if req.Validate() != nil || !needsProcessor(req.Kind) {
			continue
		}
		key := gatherKey{req.QueryOID, req.Tb, req.Te, req.Where.Canon().Key()}
		if k := req.Rank(); k > maxK[key] {
			maxK[key] = k
		}
	}
	caches := make(map[gatherKey]*gathered)
	out := make([]engine.Result, len(reqs))
	for i, req := range reqs {
		if err := ctxErr(ctx); err != nil {
			return out[:i], err
		}
		res, _, err := r.dispatch(ctx, req, caches, maxK)
		if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			return out[:i], err
		}
		out[i] = res
	}
	return out, nil
}

// dispatch runs one validated-or-failing request: pick or perform the
// gather its kind needs, refine — on the shards for the whole-MOD filter
// kinds, centrally for the rest — and decorate the Explain with shard
// provenance. The gathered round is returned alongside the result so the
// continuous layer can fingerprint the request from the same exchange
// (nil on failure and on the per-query-object all-pairs/reverse path).
func (r *Router) dispatch(ctx context.Context, req engine.Request, caches map[gatherKey]*gathered, maxK map[gatherKey]int) (engine.Result, *gathered, error) {
	res := engine.Result{Kind: req.Kind}
	res.Explain.Workers = r.inner.Workers()
	res.Explain.Shards = len(r.shards)
	start := time.Now()
	fail := func(err error) (engine.Result, *gathered, error) {
		res.Err = err
		res.Explain.Wall = time.Since(start)
		return res, nil, err
	}
	if err := req.Validate(); err != nil {
		return fail(err)
	}
	if err := ctxErr(ctx); err != nil {
		return fail(err)
	}
	req.Where = req.Where.Canon()
	if !needsProcessor(req.Kind) {
		inner, err := r.perQueryObject(ctx, req)
		inner.Explain.Shards = len(r.shards)
		inner.Explain.Workers = r.inner.Workers()
		inner.Explain.Wall = time.Since(start)
		return inner, nil, err
	}
	key := gatherKey{req.QueryOID, req.Tb, req.Te, req.Where.Key()}
	k := req.Rank()
	if mk := maxK[key]; mk > k {
		k = mk
	}
	g, err := r.gather(ctx, key, k, caches, req.Where)
	if err != nil {
		return fail(err)
	}
	if oid, ok := targetOID(req); ok {
		if err := r.ensureTarget(ctx, g, oid, req.Where); err != nil {
			return fail(err)
		}
		if g.nonMatch[oid] {
			// The target exists but fails the predicate: under sub-MOD
			// semantics it is simply not in the query's universe, so every
			// single-object kind answers false — before any refinement.
			res.IsBool = true
			res.Explain.ShardExplains = g.shardEx
			r.applyDegraded(&res.Explain, g.missing)
			res.Explain.Wall = time.Since(start)
			return res, g, nil
		}
	}
	// The union store is already the predicate's sub-MOD (the exchange
	// filtered at the shards) but carries no tags, so the predicate must
	// not travel further: refinement runs unfiltered over the union.
	creq := req
	creq.Where = nil
	var inner engine.Result
	if req.Kind.IsWholeMODFilter() {
		inner, err = r.refineDistributed(ctx, g, creq)
	} else {
		// Single-object and predicate kinds are O(1) in the survivor
		// count once the union is built; they stay central.
		inner, err = r.inner.Do(ctx, g.store, creq)
		inner.Explain.ShardExplains = g.shardEx
		r.applyDegraded(&inner.Explain, g.missing)
	}
	inner.Explain.Shards = len(r.shards)
	inner.Explain.Wall = time.Since(start)
	return inner, g, err
}

// refineDistributed scatters a whole-MOD filter over the shards: each
// evaluates the request on the union store restricted to its own
// survivors, and the disjoint sorted partial answers merge into exactly
// the central answer (globally pruned objects — including any fetched
// single-object targets — answer false on every filter kind, so
// restricting the domain to the union of survivor shares drops nothing).
func (r *Router) refineDistributed(ctx context.Context, g *gathered, req engine.Request) (engine.Result, error) {
	partials, ok, err := scatterMode(r, ctx, func(ctx context.Context, i int, s Shard) (engine.Result, error) {
		return s.Refine(ctx, g.id, g.store, g.own[i], req)
	})
	res := engine.Result{Kind: req.Kind}
	res.Explain.Workers = r.inner.Workers()
	if err != nil {
		res.Err = err
		return res, err
	}
	// A shard that answered the gather but lost its refine leaves its
	// own-share survivors unanswered; under degraded serving the central
	// engine picks the orphaned shares up (the union store is local), so
	// the merged answer only narrows by what the gather itself missed.
	lists := make([][]int64, 0, len(partials)+1)
	shardEx := make([]engine.Explain, len(g.shardEx))
	copy(shardEx, g.shardEx)
	first := -1
	var orphaned []int64
	for i, p := range partials {
		if !ok[i] {
			orphaned = append(orphaned, g.own[i]...)
			continue
		}
		if first < 0 {
			first = i
		}
		lists = append(lists, p.OIDs)
		if i < len(shardEx) {
			shardEx[i].Refined = p.Explain.Refined
			shardEx[i].RefineWall = p.Explain.RefineWall
		}
	}
	if len(orphaned) > 0 {
		slices.Sort(orphaned)
		central, cerr := r.inner.DoRestricted(ctx, g.store, req, orphaned)
		if cerr != nil {
			res.Err = cerr
			return res, cerr
		}
		lists = append(lists, central.OIDs)
	}
	res.OIDs = mergeSorted(lists)
	// Every shard preprocesses the same union store, so the union-global
	// candidate/survivor counts agree across partials; report the first
	// replying shard's.
	if first >= 0 {
		res.Explain.Candidates = partials[first].Explain.Candidates
		res.Explain.Survivors = partials[first].Explain.Survivors
		res.Explain.MemoHit = partials[first].Explain.MemoHit
	}
	res.Explain.ShardExplains = shardEx
	r.applyDegraded(&res.Explain, mergeMissing(g.missing, missingOf(ok)))
	return res, nil
}

// mergeSorted k-way merges ascending disjoint OID lists into one
// ascending list (nil when empty, matching the engine's no-answer shape).
func mergeSorted(lists [][]int64) []int64 {
	var out []int64
	for {
		best := -1
		for i, l := range lists {
			if len(l) == 0 {
				continue
			}
			if best < 0 || l[0] < lists[best][0] {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, lists[best][0])
		lists[best] = lists[best][1:]
	}
}

// gather runs the two-phase bound exchange for one (query, window) at
// rank k, building the transient refinement store, or returns the cached
// round when a batch already paid for it at sufficient rank. where must
// be canonical and agree with key.where — it restricts the exchange to
// the predicate's sub-MOD (the query itself stays exempt at the shards).
func (r *Router) gather(ctx context.Context, key gatherKey, k int, caches map[gatherKey]*gathered, where *textidx.Predicate) (*gathered, error) {
	if g, ok := caches[key]; ok && g.k >= k {
		return g, nil
	}
	q, _, err := r.getTrajectory(ctx, key.qOID)
	if err != nil {
		if errors.Is(err, mod.ErrNotFound) {
			// Same typed error as the single-store engine, whose
			// processor lookup surfaces store.Get's mod.ErrNotFound for
			// an unknown query trajectory (engine.ErrUnknownOID is the
			// unknown-*target* sentinel); callers match errors.Is the
			// same way on either route — the equivalence suite pins both
			// identities.
			return nil, fmt.Errorf("cluster: query trajectory: %w", err)
		}
		return nil, err
	}
	bounds, phase2, missing, err := r.exchange(ctx, q, key.tb, key.te, k, where)
	if err != nil {
		return nil, err
	}

	// Refinement store: the query plus every shard's survivors. Survivor
	// sets are disjoint under a disjoint partitioning; replicated objects
	// (a loader quirk, not an error) keep their first copy.
	store, err := mod.NewStore(r.spec)
	if err != nil {
		return nil, err
	}
	if err := store.Insert(q); err != nil {
		return nil, err
	}
	shardEx := make([]engine.Explain, len(r.shards))
	own := make([][]int64, len(r.shards))
	for si, reply := range phase2 {
		shardEx[si] = engine.Explain{
			Candidates: reply.stats.Candidates,
			Survivors:  reply.stats.Survivors,
			Wall:       reply.wall,
		}
		for _, tr := range reply.trs {
			if tr.OID == q.OID {
				continue
			}
			if _, err := store.Get(tr.OID); err == nil {
				continue
			}
			if err := store.Insert(tr); err != nil {
				return nil, err
			}
			// Shard survivor lists arrive OID-sorted, and only actually
			// inserted objects join the shard's own-share — so the shares
			// stay sorted, disjoint, and collectively exhaustive over the
			// union store minus the query (and later-fetched targets).
			own[si] = append(own[si], tr.OID)
		}
	}
	g := &gathered{id: r.nextGatherID(), store: store, shardEx: shardEx, own: own, k: k, targets: make(map[int64]bool), nonMatch: make(map[int64]bool), q: q, bounds: bounds, missing: missing}
	caches[key] = g
	return g, nil
}

// survReply is one shard's phase-2 outcome; wall spans both exchange
// phases on that shard.
type survReply struct {
	trs   []*trajectory.Trajectory
	stats prune.Stats
	wall  time.Duration
}

// exchange runs the two-phase bound exchange for (q, [tb, te]) at rank k:
// phase 1 gathers per-slice local Level-k envelope bounds and mins them
// into a sound global bound; phase 2 broadcasts it and gathers each
// shard's global-zone survivors. Both gather() (which refines the
// survivors through an engine) and the continuous layer's zone profiles
// (which only need the bounds and survivor IDs) build on it.
//
// On a degraded router, shards lost in either phase are masked out and
// reported in missing: a phase-1 absence only loosens the global bound
// (the min over the replying shards still upper-bounds the global
// envelope, so pruning stays sound — the zone just keeps more
// survivors), and a phase-2 absence drops that shard's objects from the
// round entirely, which is the documented degraded-answer semantics.
func (r *Router) exchange(ctx context.Context, q *trajectory.Trajectory, tb, te float64, k int, where *textidx.Predicate) ([]float64, []survReply, []int, error) {
	cuts := prune.SliceCuts(q, tb, te)
	nSlices := len(cuts) - 1

	type boundsReply struct {
		bounds []float64
		wall   time.Duration
	}
	phase1, ok1, err := scatterMode(r, ctx, func(ctx context.Context, _ int, s Shard) (boundsReply, error) {
		t0 := time.Now()
		bs, err := s.Bounds(ctx, q, tb, te, k, where)
		return boundsReply{bounds: bs, wall: time.Since(t0)}, err
	})
	if err != nil {
		return nil, nil, nil, err
	}
	global := make([]float64, nSlices)
	for i := range global {
		global[i] = math.Inf(1)
	}
	for si, reply := range phase1 {
		if !ok1[si] {
			continue
		}
		if len(reply.bounds) != nSlices {
			return nil, nil, nil, fmt.Errorf("%w: shard %s returned %d bounds for %d slices",
				ErrProtocol, r.shards[si].Name(), len(reply.bounds), nSlices)
		}
		for i, b := range reply.bounds {
			if b < global[i] {
				global[i] = b
			}
		}
	}

	phase2, ok2, err := scatterMode(r, ctx, func(ctx context.Context, i int, s Shard) (survReply, error) {
		t0 := time.Now()
		trs, stats, err := s.Survivors(ctx, q, tb, te, global, where)
		return survReply{trs: trs, stats: stats, wall: phase1[i].wall + time.Since(t0)}, err
	})
	if err != nil {
		return nil, nil, nil, err
	}
	missing := mergeMissing(missingOf(ok1), missingOf(ok2))
	if len(missing) > 0 {
		// A shard lost in phase 2 contributes no survivors; make sure a
		// stale phase-2 zero value cannot masquerade as an empty reply.
		for _, si := range missing {
			if !ok2[si] {
				phase2[si] = survReply{}
			}
		}
	}
	return global, phase2, missing, nil
}

// perQueryObject answers the all-pairs and reverse kinds without the old
// whole-MOD gather: the shards' OID sets are unioned (cheap — IDs, not
// trajectories), and every query object runs its own bound exchange, so
// per-object gathered state is its survivor set rather than the entire
// MOD. Answers match the central engine exactly: per query object the
// union store's envelope equals the global envelope, so UQ31/UQ11 over
// it reproduce the single-store per-object loops.
func (r *Router) perQueryObject(ctx context.Context, req engine.Request) (engine.Result, error) {
	res := engine.Result{Kind: req.Kind}
	fail := func(err error) (engine.Result, error) {
		res.Err = err
		return res, err
	}
	type oidsReply struct {
		oids []int64
		wall time.Duration
	}
	replies, okOIDs, err := scatterMode(r, ctx, func(ctx context.Context, _ int, s Shard) (oidsReply, error) {
		t0 := time.Now()
		ids, err := s.OIDs(ctx, req.Where)
		return oidsReply{oids: ids, wall: time.Since(t0)}, err
	})
	if err != nil {
		return fail(err)
	}
	// missing accumulates every shard any round of this request went
	// without: the OID union scatter here, plus the per-object gathers
	// below (guarded by missingMu — they run on the worker pool).
	missing := missingOf(okOIDs)
	var missingMu sync.Mutex
	lists := make([][]int64, len(replies))
	shardEx := make([]engine.Explain, len(replies))
	for i, reply := range replies {
		if !okOIDs[i] {
			continue
		}
		lists[i] = reply.oids
		n := len(reply.oids)
		shardEx[i] = engine.Explain{Candidates: n, Survivors: n, Wall: reply.wall}
	}
	union := mergeSorted(lists)
	// Replicated objects (a loader quirk, not an error) appear once.
	union = slices.Compact(union)
	res.Explain.ShardExplains = shardEx

	// The reverse target must exist somewhere in the cluster, exactly like
	// the single-store engine's up-front store.Get — and it must be present
	// in every per-object union store so UQ11 never reports it unknown.
	var target *trajectory.Trajectory
	if req.Kind == engine.KindReverse {
		tr, tags, err := r.getTrajectory(ctx, req.OID)
		if err != nil {
			if errors.Is(err, mod.ErrNotFound) {
				return fail(fmt.Errorf("%w: %d", engine.ErrUnknownOID, req.OID))
			}
			return fail(err)
		}
		if req.Where != nil && !req.Where.Matches(tags) {
			// Sub-MOD semantics: an existing target outside the predicate's
			// universe has no possible reverse neighbors there — empty, not
			// an error, exactly like the single-store engine.
			res.Explain.Candidates = len(union)
			res.Explain.Survivors = res.Explain.Candidates
			r.applyDegraded(&res.Explain, missing)
			return res, nil
		}
		target = tr
	}

	sets := make([][]int64, len(union))
	keep := make([]bool, len(union))
	err = r.forEachIndex(ctx, len(union), func(i int) error {
		qOID := union[i]
		if target != nil && qOID == req.OID {
			return nil
		}
		// One fresh per-object exchange: the shared batch cache is keyed
		// per (query, window) and guarded by the sequential dispatch loop,
		// so the concurrent per-object gathers use private cache maps.
		g, err := r.gather(ctx, gatherKey{qOID, req.Tb, req.Te, req.Where.Key()}, 1, make(map[gatherKey]*gathered), req.Where)
		if err != nil {
			return fmt.Errorf("query %d: %w", qOID, err)
		}
		if len(g.missing) > 0 {
			missingMu.Lock()
			missing = mergeMissing(missing, g.missing)
			missingMu.Unlock()
		}
		if target != nil {
			if _, err := g.store.Get(target.OID); err != nil {
				if err := g.store.Insert(target); err != nil {
					return err
				}
			}
		}
		proc, err := r.inner.ProcessorCtx(ctx, g.store, qOID, req.Tb, req.Te)
		if err != nil {
			return fmt.Errorf("query %d: %w", qOID, err)
		}
		if target != nil {
			ok, err := proc.UQ11(target.OID)
			if err != nil {
				return err
			}
			keep[i] = ok
			return nil
		}
		sets[i] = proc.UQ31()
		return nil
	})
	if err != nil {
		return fail(err)
	}
	if target != nil {
		for i, oid := range union {
			if keep[i] {
				res.OIDs = append(res.OIDs, oid)
			}
		}
		res.Explain.Candidates = len(union) - 1
		res.Explain.Survivors = res.Explain.Candidates
		r.applyDegraded(&res.Explain, missing)
		return res, nil
	}
	res.Pairs = make(map[int64][]int64, len(union))
	for i, oid := range union {
		res.Pairs[oid] = sets[i]
	}
	res.Explain.Candidates = len(union)
	res.Explain.Survivors = len(union)
	r.applyDegraded(&res.Explain, missing)
	return res, nil
}

// forEachIndex runs fn(0..n-1) on a bounded worker pool sized to the
// inner engine, checking ctx between tasks — the router-side counterpart
// of the engine's per-OID fan-out, used by the per-query-object kinds.
// The first error wins; a context error takes precedence.
func (r *Router) forEachIndex(ctx context.Context, n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	workers := r.inner.Workers()
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctxErr(ctx); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		ferr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				mu.Lock()
				stop := ferr != nil
				mu.Unlock()
				if stop {
					continue
				}
				err := ctxErr(ctx)
				if err == nil {
					err = fn(i)
				}
				if err != nil {
					mu.Lock()
					if ferr == nil {
						ferr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	if err := ctxErr(ctx); err != nil {
		return err
	}
	return ferr
}

// ensureTarget makes sure a single-object kind's target trajectory is in
// the refinement store when it exists anywhere in the cluster AND matches
// the gather's predicate: a matching target outside the survivor set must
// still answer false (it exists but cannot be the NN), not ErrUnknownOID
// — the distinction the single-store pruned processor draws. A target
// absent from every shard is left absent so the inner engine reports the
// same ErrUnknownOID a single store would; an existing target that fails
// the predicate is recorded in g.nonMatch and kept OUT of the union store
// (it is not part of the sub-MOD), and the dispatcher answers false for
// it directly.
func (r *Router) ensureTarget(ctx context.Context, g *gathered, oid int64, where *textidx.Predicate) error {
	if g.targets[oid] {
		return nil
	}
	if _, err := g.store.Get(oid); err == nil {
		g.targets[oid] = true
		return nil
	}
	tr, tags, err := r.getTrajectory(ctx, oid)
	if err != nil {
		if errors.Is(err, mod.ErrNotFound) {
			g.targets[oid] = true // globally unknown: inner engine reports it
			return nil
		}
		return err
	}
	g.targets[oid] = true
	if where != nil && !where.Matches(tags) {
		g.nonMatch[oid] = true
		return nil
	}
	return g.store.Insert(tr)
}

// getTrajectory resolves an OID to its trajectory and tag set: one shard
// call when the partitioner can locate it, a broadcast otherwise (or when
// the located shard surprisingly misses — shard contents are data, not an
// invariant the router gets to assume).
func (r *Router) getTrajectory(ctx context.Context, oid int64) (*trajectory.Trajectory, []string, error) {
	if loc := r.part.Locate(oid, len(r.shards)); loc >= 0 && loc < len(r.shards) {
		tr, tags, err := r.shards[loc].Get(ctx, oid)
		if err == nil {
			return tr, tags, nil
		}
		if !errors.Is(err, mod.ErrNotFound) {
			if !r.degraded {
				return nil, nil, fmt.Errorf("cluster: shard %s: %w", r.shards[loc].Name(), err)
			}
			// Degraded: the located copy is unreachable, but a replica may
			// exist elsewhere — fall through to the broadcast.
		}
	}
	type hit struct {
		tr   *trajectory.Trajectory
		tags []string
	}
	var failMu sync.Mutex
	var firstFail error
	found, ok, err := scatterMode(r, ctx, func(ctx context.Context, i int, s Shard) (hit, error) {
		tr, tags, err := s.Get(ctx, oid)
		if err != nil && errors.Is(err, mod.ErrNotFound) {
			return hit{}, nil
		}
		if err != nil && r.degraded {
			failMu.Lock()
			if firstFail == nil {
				firstFail = fmt.Errorf("cluster: shard %s: %w", s.Name(), err)
			}
			failMu.Unlock()
		}
		return hit{tr: tr, tags: tags}, err
	})
	if err != nil {
		return nil, nil, err
	}
	for i, h := range found {
		if ok[i] && h.tr != nil {
			return h.tr, h.tags, nil
		}
	}
	// Found nowhere. If any shard was unreachable, absence is unproven:
	// surface the shard failure, never a wrong ErrNotFound.
	for i := range ok {
		if !ok[i] {
			failMu.Lock()
			defer failMu.Unlock()
			if firstFail != nil {
				return nil, nil, firstFail
			}
			return nil, nil, &ShardUnavailableError{Shard: i, Name: r.shards[i].Name(), Err: errors.New("no reply")}
		}
	}
	return nil, nil, fmt.Errorf("%w: %d", mod.ErrNotFound, oid)
}

// scatter fans f across every shard concurrently and waits for all of
// them — implementations honor their context, so the wait is prompt and
// leaks nothing. The first shard failure cancels the siblings (their
// in-flight sweeps stop instead of running to completion just to be
// discarded), and failure latency is the first error, not the slowest
// shard. The caller's context error takes precedence over shard errors
// (cancellation is call-fatal and callers match on the context error);
// among shard errors, a real failure outranks the context noise the
// sibling cancellation caused.
func scatter[T any](ctx context.Context, shards []Shard, f func(ctx context.Context, i int, s Shard) (T, error)) ([]T, error) {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	out := make([]T, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := ctxErr(sctx); err != nil {
				errs[i] = err
				return
			}
			out[i], errs[i] = f(sctx, i, shards[i])
			if errs[i] != nil {
				cancel()
			}
		}(i)
	}
	wg.Wait()
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	var firstCtx error
	for i, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if firstCtx == nil {
				firstCtx = fmt.Errorf("cluster: shard %s: %w", shards[i].Name(), err)
			}
			continue
		}
		return nil, fmt.Errorf("cluster: shard %s: %w", shards[i].Name(), err)
	}
	if firstCtx != nil {
		return nil, firstCtx
	}
	return out, nil
}

// targetOID reports the single-object target of a request kind, when the
// kind has one — the object the refinement store must contain (or prove
// globally absent) for error behavior to match a single store.
func targetOID(req engine.Request) (int64, bool) {
	switch req.Kind {
	case engine.KindUQ11, engine.KindUQ12, engine.KindUQ13,
		engine.KindUQ21, engine.KindUQ22, engine.KindUQ23,
		engine.KindNNAt, engine.KindRankAt, engine.KindThreshold:
		return req.OID, true
	}
	return 0, false
}

// needsProcessor mirrors the engine's kind split: every kind but
// all-pairs and reverse evaluates against one (query, window)
// preprocessing and therefore one bound exchange.
func needsProcessor(k engine.Kind) bool {
	return k != engine.KindAllPairs && k != engine.KindReverse
}

// ctxErr mirrors the engine's deadline-aware context check: a short
// deadline must stop the scatter even when the runtime has not yet fired
// the timer goroutine that cancels the context.
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d, ok := ctx.Deadline(); ok && !time.Now().Before(d) {
		return context.DeadlineExceeded
	}
	return nil
}
