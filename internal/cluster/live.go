package cluster

import (
	"context"
	"errors"
	"fmt"
	"slices"

	"repro/internal/continuous"
	"repro/internal/engine"
	"repro/internal/mod"
	"repro/internal/prune"
	"repro/internal/trajectory"
)

// This file is the cluster face of the live layer: Ingest routes update
// batches to the owning shards by the partitioner, ZoneProfile exposes
// the bound-exchange machinery as a subscription fingerprint, and
// NewRouterHub mounts a continuous.Hub on the router so standing
// subscriptions stay fresh across shards — cross-shard diffs merge
// through exactly the same two-phase exchange the query path uses.

// ErrUnplaceable reports an update the router cannot route: an unknown
// OID whose vertices cannot seed a new trajectory for the partitioner.
var ErrUnplaceable = errors.New("cluster: cannot place update")

// Ingest applies an update batch across the cluster. Placement: when the
// partitioner locates OIDs directly (Hash), an update goes straight to
// its shard; otherwise (Grid) the router finds the current owner by
// broadcast and falls back to Place on a trajectory seeded from the
// update's own vertices for brand-new objects. Updates to one OID keep
// their relative order (same shard), and outcomes return in input order.
// On error, updates already shipped to shards stand (per-shard batches
// stop at their first failure, like mod.ApplyUpdates); callers holding
// subscriptions get their profiles invalidated by the hub.
func (r *Router) Ingest(ctx context.Context, updates []mod.Update) ([]mod.Applied, error) {
	if r == nil {
		return nil, ErrNoRouter
	}
	if ctx == nil {
		ctx = context.Background()
	}
	owners, err := r.resolveOwners(ctx, updates)
	if err != nil {
		return nil, err
	}
	perShard := make([][]mod.Update, len(r.shards))
	perShardIdx := make([][]int, len(r.shards))
	placedNew := make(map[int64]int) // OIDs first seen in this batch
	for i, u := range updates {
		si, err := r.placeUpdate(u, owners, placedNew)
		if err != nil {
			return nil, err
		}
		perShard[si] = append(perShard[si], u)
		perShardIdx[si] = append(perShardIdx[si], i)
	}
	replies, err := scatter(ctx, r.shards, func(ctx context.Context, i int, s Shard) ([]mod.Applied, error) {
		if len(perShard[i]) == 0 {
			return nil, nil
		}
		return s.Ingest(ctx, perShard[i])
	})
	if err != nil {
		return nil, err
	}
	out := make([]mod.Applied, len(updates))
	for si, applied := range replies {
		if len(applied) != len(perShard[si]) {
			return nil, fmt.Errorf("%w: shard %s applied %d of %d updates",
				ErrProtocol, r.shards[si].Name(), len(applied), len(perShard[si]))
		}
		for j, a := range applied {
			out[perShardIdx[si][j]] = a
		}
	}
	return out, nil
}

// resolveOwners bulk-resolves current ownership for every update OID the
// partitioner cannot locate directly: one Owns scatter for the whole
// batch (a single round trip per shard) instead of a broadcast per
// update. OIDs held by no shard are absent from the map — they are
// brand-new and fall through to Place.
func (r *Router) resolveOwners(ctx context.Context, updates []mod.Update) (map[int64]int, error) {
	var unknown []int64
	seen := make(map[int64]bool)
	for _, u := range updates {
		if seen[u.OID] {
			continue
		}
		seen[u.OID] = true
		if loc := r.part.Locate(u.OID, len(r.shards)); loc < 0 || loc >= len(r.shards) {
			unknown = append(unknown, u.OID)
		}
	}
	if len(unknown) == 0 {
		return nil, nil
	}
	replies, err := scatter(ctx, r.shards, func(ctx context.Context, _ int, s Shard) ([]bool, error) {
		return s.Owns(ctx, unknown)
	})
	if err != nil {
		return nil, err
	}
	owners := make(map[int64]int, len(unknown))
	for si, owned := range replies {
		if len(owned) != len(unknown) {
			return nil, fmt.Errorf("%w: shard %s answered %d of %d ownership probes",
				ErrProtocol, r.shards[si].Name(), len(owned), len(unknown))
		}
		for j, ok := range owned {
			if ok {
				if _, dup := owners[unknown[j]]; !dup {
					owners[unknown[j]] = si
				}
			}
		}
	}
	return owners, nil
}

// placeUpdate resolves the shard an update belongs to. owners carries the
// batch's bulk ownership resolution; placedNew carries placements already
// decided earlier in this batch, so an insert followed by a revision of
// the same new OID lands on one shard even under geometry partitioners.
func (r *Router) placeUpdate(u mod.Update, owners map[int64]int, placedNew map[int64]int) (int, error) {
	if si, ok := placedNew[u.OID]; ok {
		return si, nil
	}
	if loc := r.part.Locate(u.OID, len(r.shards)); loc >= 0 && loc < len(r.shards) {
		return loc, nil
	}
	// Geometry placement: the owner is wherever the object lives today.
	if si, ok := owners[u.OID]; ok {
		return si, nil
	}
	// A retire of an OID no shard owns: surface the single-store error
	// identity (mod.ErrNotFound), not a placement failure — retiring an
	// unknown object is a data error, and the router hub maps it exactly
	// like a single engine would.
	if u.Retire {
		return 0, fmt.Errorf("%w: %d", mod.ErrNotFound, u.OID)
	}
	// A brand-new object: place by the update's own plan.
	if len(u.Verts) < 2 {
		return 0, fmt.Errorf("%w: oid %d unknown and update has %d vertices", ErrUnplaceable, u.OID, len(u.Verts))
	}
	seed, terr := trajectory.New(u.OID, append([]trajectory.Vertex(nil), u.Verts...))
	if terr != nil {
		return 0, fmt.Errorf("%w: oid %d: %v", ErrUnplaceable, u.OID, terr)
	}
	si := r.part.Place(seed, len(r.shards))
	if si < 0 || si >= len(r.shards) {
		return 0, fmt.Errorf("cluster: partitioner %s placed OID %d on shard %d of %d",
			r.part.Name(), u.OID, si, len(r.shards))
	}
	placedNew[u.OID] = si
	return si, nil
}

// ZoneProfile runs the bound exchange for (qOID, [tb, te]) at rank k and
// returns the query trajectory, the deterministic slice cuts, the merged
// global per-slice envelope bounds, and the sorted global survivor OIDs.
// It is the standalone observability face of the exchange (what would a
// subscription on this request depend on right now?); the router hub
// itself never calls it — routerBackend.Evaluate derives the same triple
// from the exchange its answer already ran.
func (r *Router) ZoneProfile(ctx context.Context, qOID int64, tb, te float64, k int) (*trajectory.Trajectory, []float64, []float64, []int64, error) {
	if r == nil {
		return nil, nil, nil, nil, ErrNoRouter
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if k < 1 {
		k = 1
	}
	q, _, err := r.getTrajectory(ctx, qOID)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	bounds, phase2, _, err := r.exchange(ctx, q, tb, te, k, nil)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	var ids []int64
	for _, reply := range phase2 {
		for _, tr := range reply.trs {
			if tr.OID != qOID {
				ids = append(ids, tr.OID)
			}
		}
	}
	slices.Sort(ids)
	return q, prune.SliceCuts(q, tb, te), bounds, ids, nil
}

// routerBackend adapts a Router to the continuous.Backend contract.
type routerBackend struct{ r *Router }

func (b routerBackend) Apply(ctx context.Context, updates []mod.Update) ([]mod.Applied, error) {
	return b.r.Ingest(ctx, updates)
}

// Evaluate answers through the router and derives the zone profile from
// the same bound-exchange round the answer used — the gathered survivors
// are the superset and the merged global bounds are the per-slice
// envelope bounds, so a subscription re-evaluation costs exactly one
// exchange, not two. (The gather may have run at a deeper rank than the
// request when a batch shared it; deeper-rank bounds sit above the
// request's envelope level, which only makes the dirty test more
// conservative.)
func (b routerBackend) Evaluate(ctx context.Context, req engine.Request) (engine.Result, *continuous.Profile, error) {
	if b.r == nil {
		return engine.Result{Kind: req.Kind, Err: ErrNoRouter}, nil, ErrNoRouter
	}
	if ctx == nil {
		ctx = context.Background()
	}
	res, g, err := b.r.dispatch(ctx, req, make(map[gatherKey]*gathered), nil)
	if err != nil {
		return res, nil, err
	}
	if g == nil || g.q == nil || g.bounds == nil || !needsProcessor(req.Kind) {
		return res, nil, nil // unbounded fingerprint: always dirty, never wrong
	}
	if len(g.missing) > 0 {
		// A degraded round's survivor superset is missing whole shards;
		// fingerprinting it would let updates to their objects slip past
		// the dirty test after the shard heals. Unbounded instead.
		return res, nil, nil
	}
	set := make(map[int64]struct{}, g.store.Len())
	for _, id := range g.store.OIDs() {
		if id != g.q.OID {
			set[id] = struct{}{}
		}
	}
	prof := &continuous.Profile{
		Query:    g.q,
		Cuts:     prune.SliceCuts(g.q, req.Tb, req.Te),
		Bounds:   g.bounds,
		Superset: set,
	}
	return res, prof, nil
}

func (b routerBackend) Radius() float64 { return b.r.spec.R }

// NewRouterHub mounts a continuous-query hub on the router: Subscribe
// registers standing requests evaluated through the sharded bound
// exchange, Ingest routes updates to the owning shards and re-evaluates
// only the subscriptions the batch can affect, and the emitted diff
// events are byte-identical to a single-store hub over the union of the
// shards (the simulation harness pins this).
func NewRouterHub(r *Router) *continuous.Hub {
	return continuous.New(routerBackend{r: r})
}
