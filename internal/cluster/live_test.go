package cluster_test

// Live-layer cluster tests: Router.Ingest routing by partitioner (hash
// direct, grid broadcast + Place for new objects, over local and remote
// shards), ZoneProfile, and the router-backed continuous hub answering
// and diffing identically to a single-store hub over the union of the
// shards.

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/continuous"
	"repro/internal/engine"
	"repro/internal/mod"
	"repro/internal/trajectory"
)

// liveStore builds the scene every live test shares: query object 1
// crossing the plane, 2 shadowing it, 3/4/5 far away, plans covering
// [0, 10] with one vertex per time unit.
func liveStore(t testing.TB) *mod.Store {
	t.Helper()
	st, err := mod.NewUniformStore(0.5)
	if err != nil {
		t.Fatal(err)
	}
	for oid, y := range map[int64]float64{1: 0, 2: 1, 3: 50, 4: 100, 5: 150} {
		verts := make([]trajectory.Vertex, 11)
		for i := range verts {
			verts[i] = trajectory.Vertex{X: float64(i), Y: y, T: float64(i)}
		}
		tr, err := trajectory.New(oid, verts)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Insert(tr); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func rev(oid int64, pts ...[3]float64) mod.Update {
	u := mod.Update{OID: oid}
	for _, p := range pts {
		u.Verts = append(u.Verts, trajectory.Vertex{X: p[0], Y: p[1], T: p[2]})
	}
	return u
}

// liveScript is the scripted batch sequence the equivalence checks run.
func liveScript() [][]mod.Update {
	return [][]mod.Update{
		// Steer 3 next to the query.
		{rev(3, [3]float64{6, 1, 6}, [3]float64{8, 0.5, 8}, [3]float64{10, 0.5, 10})},
		// Irrelevant far wiggles.
		{rev(4, [3]float64{7, 99, 7}, [3]float64{10, 99, 10}), rev(5, [3]float64{7, 151, 7}, [3]float64{10, 151, 10})},
		// New object lands on top of the query; 3 swerves away.
		{
			{OID: 9, Verts: []trajectory.Vertex{{X: 0, Y: 0.5, T: 0}, {X: 10, Y: 0.5, T: 10}}},
			rev(3, [3]float64{6, 80, 5.5}, [3]float64{10, 80, 10}),
		},
		// The query itself is revised, then the new object revises too.
		{
			rev(1, [3]float64{7, 0.3, 7}, [3]float64{10, 0.3, 10}),
			rev(9, [3]float64{7, 30, 7}, [3]float64{10, 30, 10}),
		},
	}
}

func liveRequests() []engine.Request {
	return []engine.Request{
		{Kind: engine.KindUQ31, QueryOID: 1, Tb: 0, Te: 10},
		{Kind: engine.KindUQ41, QueryOID: 1, Tb: 0, Te: 10, K: 2},
		{Kind: engine.KindUQ11, QueryOID: 1, Tb: 0, Te: 10, OID: 3},
		{Kind: engine.KindUQ33, QueryOID: 2, Tb: 0, Te: 8, X: 0.25},
	}
}

func sameEvents(t *testing.T, label string, got, want []continuous.Event, gotIDs, wantIDs map[int64]int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d events vs %d:\n got %+v\nwant %+v", label, len(got), len(want), got, want)
	}
	for i := range got {
		g, w := got[i], want[i]
		if gotIDs[g.SubID] != wantIDs[w.SubID] {
			t.Fatalf("%s event %d: sub mismatch (%d vs %d)", label, i, g.SubID, w.SubID)
		}
		if g.Seq != w.Seq || g.Kind != w.Kind || g.IsBool != w.IsBool || g.Bool != w.Bool ||
			!reflect.DeepEqual(g.Added, w.Added) || !reflect.DeepEqual(g.Removed, w.Removed) ||
			!reflect.DeepEqual(g.OIDs, w.OIDs) {
			t.Fatalf("%s event %d differs:\n got %+v\nwant %+v", label, i, g, w)
		}
	}
}

// runLiveEquivalence drives the script against a router hub and a
// single-store reference hub, comparing every event batch and every
// answer after every step.
func runLiveEquivalence(t *testing.T, label string, router *cluster.Router) {
	t.Helper()
	ctx := context.Background()
	refStore := liveStore(t)
	ref := continuous.NewEngineHub(refStore, engine.New(2))
	hub := cluster.NewRouterHub(router)

	reqs := liveRequests()
	gotIDs := make(map[int64]int64) // router sub id → request index
	wantIDs := make(map[int64]int64)
	for i, req := range reqs {
		gid, gres, err := hub.Subscribe(ctx, req)
		if err != nil {
			t.Fatalf("%s: subscribe %d: %v", label, i, err)
		}
		wid, wres, err := ref.Subscribe(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		gotIDs[gid], wantIDs[wid] = int64(i), int64(i)
		if gres.IsBool != wres.IsBool || gres.Bool != wres.Bool || !reflect.DeepEqual(gres.OIDs, wres.OIDs) {
			t.Fatalf("%s: initial answer %d differs: %+v vs %+v", label, i, gres, wres)
		}
	}
	for step, batch := range liveScript() {
		_, gotEvents, err := hub.Ingest(ctx, batch)
		if err != nil {
			t.Fatalf("%s step %d: router ingest: %v", label, step, err)
		}
		_, wantEvents, err := ref.Ingest(ctx, batch)
		if err != nil {
			t.Fatalf("%s step %d: reference ingest: %v", label, step, err)
		}
		sameEvents(t, label, gotEvents, wantEvents, gotIDs, wantIDs)
		for gid := range gotIDs {
			gres, err := hub.Answer(gid)
			if err != nil {
				t.Fatal(err)
			}
			req, _ := hub.Request(gid)
			fres, err := engine.New(1).Do(ctx, refStore, req)
			if err != nil {
				t.Fatal(err)
			}
			if gres.IsBool != fres.IsBool || gres.Bool != fres.Bool || !reflect.DeepEqual(gres.OIDs, fres.OIDs) {
				t.Fatalf("%s step %d: answer for sub %d stale: %+v vs fresh %+v", label, step, gid, gres, fres)
			}
		}
	}
}

func TestRouterHubLocalHash(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		router, err := cluster.NewLocalCluster(liveStore(t), n, cluster.Options{})
		if err != nil {
			t.Fatal(err)
		}
		runLiveEquivalence(t, "local-hash", router)
	}
}

func TestRouterHubLocalGrid(t *testing.T) {
	router, err := cluster.NewLocalCluster(liveStore(t), 3, cluster.Options{Partitioner: cluster.Grid{CellSize: 20}})
	if err != nil {
		t.Fatal(err)
	}
	runLiveEquivalence(t, "local-grid", router)
}

func TestRouterHubRemote(t *testing.T) {
	shards := startShardServers(t, liveStore(t), 2, cluster.Hash{})
	router, err := cluster.NewRouter(context.Background(), shards, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	runLiveEquivalence(t, "remote-hash", router)
}

// TestRouterHubRemoteGrid drives ingest placement over the wire with a
// geometry partitioner: ownership resolves through the bulk Owns op (one
// round trip per shard per batch), inserts place via the update's own
// plan, and the event stream still matches the single-store reference.
func TestRouterHubRemoteGrid(t *testing.T) {
	part := cluster.Grid{CellSize: 20}
	shards := startShardServers(t, liveStore(t), 2, part)
	router, err := cluster.NewRouter(context.Background(), shards, cluster.Options{Partitioner: part})
	if err != nil {
		t.Fatal(err)
	}
	runLiveEquivalence(t, "remote-grid", router)
}

func TestRouterIngestPlacement(t *testing.T) {
	ctx := context.Background()
	store := liveStore(t)
	router, err := cluster.NewLocalCluster(store, 3, cluster.Options{Partitioner: cluster.Grid{CellSize: 20}})
	if err != nil {
		t.Fatal(err)
	}
	// A revision routes to the shard that owns the object (broadcast under
	// grid); an insert followed by a revision of the same new OID in one
	// batch must land on one shard.
	applied, err := router.Ingest(ctx, []mod.Update{
		rev(3, [3]float64{7, 49, 7}, [3]float64{10, 49, 10}),
		{OID: 42, Verts: []trajectory.Vertex{{X: 0, Y: 7, T: 0}, {X: 10, Y: 7, T: 10}}},
		rev(42, [3]float64{8, 9, 8}, [3]float64{10, 9, 10}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 3 {
		t.Fatalf("applied = %+v", applied)
	}
	if applied[0].Inserted || applied[0].ChangedFrom != 6 {
		t.Fatalf("revision outcome = %+v", applied[0])
	}
	if !applied[1].Inserted || !math.IsInf(applied[1].ChangedFrom, -1) {
		t.Fatalf("insert outcome = %+v", applied[1])
	}
	// The new plan has vertices only at t=0 and t=10, so a revision at
	// t=8 keeps just the t=0 vertex: motion changes from 0.
	if applied[2].Inserted || applied[2].ChangedFrom != 0 || applied[2].Prev == nil {
		t.Fatalf("post-insert revision outcome = %+v", applied[2])
	}
	// An unknown OID with a one-vertex update cannot be placed.
	if _, err := router.Ingest(ctx, []mod.Update{{OID: 77, Verts: []trajectory.Vertex{{X: 0, Y: 0, T: 1}}}}); !errors.Is(err, cluster.ErrUnplaceable) {
		t.Fatalf("unplaceable err = %v", err)
	}
}

func TestZoneProfile(t *testing.T) {
	ctx := context.Background()
	store := liveStore(t)
	router, err := cluster.NewLocalCluster(store, 2, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	q, cuts, bounds, ids, err := router.ZoneProfile(ctx, 1, 0, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q == nil || q.OID != 1 {
		t.Fatalf("query = %+v", q)
	}
	if len(bounds) != len(cuts)-1 || len(cuts) < 2 {
		t.Fatalf("%d bounds for %d cuts", len(bounds), len(cuts))
	}
	// The global survivors must include the NN (object 2) and exclude the
	// far objects, and the merged bounds must dominate the true envelope
	// (distance 1 to object 2) nowhere below it.
	found := false
	for _, id := range ids {
		if id == 2 {
			found = true
		}
		if id == 4 || id == 5 {
			t.Fatalf("far object %d survived the global sweep", id)
		}
	}
	if !found {
		t.Fatal("object 2 missing from the global survivors")
	}
	for i, u := range bounds {
		if !math.IsInf(u, 1) && u < 1-1e-9 {
			t.Fatalf("bound %d = %g below the true envelope", i, u)
		}
	}

	// Unknown query OID surfaces the typed not-found identity.
	if _, _, _, _, err := router.ZoneProfile(ctx, 99, 0, 10, 1); !errors.Is(err, mod.ErrNotFound) {
		t.Fatalf("unknown query err = %v", err)
	}
}
