// Package cluster is the sharded scatter-gather serving layer: a Router
// that answers the unified engine.Request contract against a MOD whose
// trajectories are partitioned across K shards, byte-identically to a
// single-store Engine.Do.
//
// The catch that makes this a real subsystem rather than a fan-out loop is
// the paper's core semantics: possible/certain-NN answers depend on the
// *global* object set — the 4r pruning zone of Section 3.2 hangs off the
// lower envelope, a min over ALL objects' distance functions — so a shard
// evaluating against only its local objects would over-answer (its local
// envelope sits above the global one). The router therefore runs the
// NN-family kinds in two phases:
//
//	phase 1 (bounds)    — every shard reports, per deterministic time
//	                      slice of the query corridor (prune.SliceCuts),
//	                      an upper bound on its local Level-k envelope
//	                      (prune.SliceBounds). Each finite bound is the
//	                      slice maximum of a real object's distance, so
//	                      the elementwise minimum across shards is a sound
//	                      upper bound on the GLOBAL envelope.
//	phase 2 (survivors) — the router broadcasts the merged global bounds;
//	                      every shard sweeps its objects against them
//	                      (prune.SurvivorsWithBounds) and returns the
//	                      trajectories that can enter the global 4r zone.
//	refine (distributed) — the router gathers the survivors (a conservative
//	                      superset of the zone members, which provably
//	                      contains every object achieving the global
//	                      envelope) into a transient union store and
//	                      broadcasts it back: every shard evaluates the
//	                      whole-MOD filter kinds over the union with the
//	                      candidate domain restricted to the survivors it
//	                      itself contributed (Shard.Refine →
//	                      engine.DoRestricted), and the router merges the
//	                      disjoint, OID-sorted partial answers. Because the
//	                      union's envelope equals the global envelope
//	                      pointwise on the window, and every globally
//	                      pruned object answers false on every filter kind,
//	                      the merged answer is byte-identical to a
//	                      single-store run — the same conservative-superset
//	                      guarantee the single-store index pre-pass is
//	                      gated on. Single-object and predicate kinds stay
//	                      central on the router's inner engine (they are
//	                      O(1) in the survivor count once the union is
//	                      built).
//
// The all-pairs and reverse kinds iterate query trajectories; instead of
// gathering every shard's objects, the router unions the shards' OID sets
// and runs one per-query-object bound exchange per OID, bounding gathered
// state by the survivor sets rather than the whole MOD.
//
// Shards come in two kinds: LocalShard wraps an in-process mod.Store;
// RemoteShard speaks the modserver query op (bounds/survivors/all phases)
// over TCP. A Partitioner decides placement — Hash by OID (the default,
// point lookups route directly) or Grid by the spatial cell of the first
// vertex (co-moving objects share shards; lookups broadcast).
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/engine"
	"repro/internal/mod"
	"repro/internal/prune"
	"repro/internal/textidx"
	"repro/internal/trajectory"
)

// Package errors.
var (
	// ErrNoShards reports a router constructed over an empty shard list.
	ErrNoShards = errors.New("cluster: router needs at least one shard")
	// ErrSpecMismatch reports shards that disagree on the uncertainty
	// model; the paper's semantics (and the bound exchange) assume one
	// shared radius and pdf.
	ErrSpecMismatch = errors.New("cluster: shards disagree on the uncertainty model")
	// ErrNoRouter is returned by methods on a nil router.
	ErrNoRouter = errors.New("cluster: nil router")
	// ErrProtocol reports a shard reply that violates the bound-exchange
	// contract (e.g. a bounds vector of the wrong length).
	ErrProtocol = errors.New("cluster: shard protocol error")
	// ErrShardUnavailable is the errors.Is sentinel of
	// ShardUnavailableError: a shard could not be reached at all (dial
	// refused, partitioned) as opposed to failing mid-conversation.
	ErrShardUnavailable = errors.New("cluster: shard unavailable")
)

// ShardUnavailableError reports a shard the router could not reach,
// carrying which shard so callers (and the degraded merge's provenance)
// can name it. It satisfies errors.Is(err, ErrShardUnavailable).
type ShardUnavailableError struct {
	// Shard is the shard's index in the router's shard slice, or -1 when
	// the shard is not (yet) routed.
	Shard int
	// Name is the shard's configured name.
	Name string
	// Err is the underlying dial failure.
	Err error
}

func (e *ShardUnavailableError) Error() string {
	if e.Shard >= 0 {
		return fmt.Sprintf("cluster: shard %d (%s) unavailable: %v", e.Shard, e.Name, e.Err)
	}
	return fmt.Sprintf("cluster: shard %s unavailable: %v", e.Name, e.Err)
}

func (e *ShardUnavailableError) Unwrap() error { return e.Err }

// Is matches the ErrShardUnavailable sentinel.
func (e *ShardUnavailableError) Is(target error) bool { return target == ErrShardUnavailable }

// Shard is one partition of the MOD as the router sees it: point lookups
// plus the two bound-exchange phases. Implementations must be safe for the
// router's sequential per-query use and must honor ctx cancellation
// promptly (the router's scatter waits for every shard before returning).
type Shard interface {
	// Name identifies the shard in errors and Explain provenance.
	Name() string
	// Spec returns the shard's uncertainty model; every shard of a
	// cluster must agree.
	Spec(ctx context.Context) (mod.PDFSpec, error)
	// Len reports how many trajectories the shard holds.
	Len(ctx context.Context) (int, error)
	// Get returns the trajectory stored under oid and its tag set (nil
	// when untagged), or an error satisfying errors.Is(err,
	// mod.ErrNotFound) when the shard does not hold it.
	Get(ctx context.Context, oid int64) (*trajectory.Trajectory, []string, error)
	// Bounds is phase 1 of the NN bound exchange: per slice of
	// prune.SliceCuts(q, tb, te), an upper bound on the shard's local
	// Level-k envelope against q (+Inf where the shard cannot bound it).
	// A non-nil where restricts the shard's object universe to the
	// matching sub-MOD (the query itself stays exempt) — the sub-MOD
	// envelope is a different curve, not a filtered view of the full one.
	Bounds(ctx context.Context, q *trajectory.Trajectory, tb, te float64, k int, where *textidx.Predicate) ([]float64, error)
	// Survivors is phase 2: the shard's objects that can enter the 4r
	// zone of the globally merged bounds, as full trajectories, plus the
	// sweep statistics. where must match the Bounds call of the same
	// exchange.
	Survivors(ctx context.Context, q *trajectory.Trajectory, tb, te float64, bounds []float64, where *textidx.Predicate) ([]*trajectory.Trajectory, prune.Stats, error)
	// Refine is the distributed-refine phase: evaluate a whole-MOD filter
	// request over the gathered union survivor store with the candidate
	// domain restricted to own — the (sorted) survivors this shard itself
	// contributed. gatherID names the union so a remote shard can cache
	// the shipped store across the requests of one batch; a local shard
	// reads the union in place and ignores it. The per-shard answer lists
	// are disjoint and their union is byte-identical to a central refine.
	Refine(ctx context.Context, gatherID string, union *mod.Store, own []int64, req engine.Request) (engine.Result, error)
	// OIDs returns the sorted OIDs of every trajectory the shard holds
	// whose tags satisfy where (nil means all) — the iteration domain the
	// all-pairs and reverse kinds union across shards before running one
	// bound exchange per query object.
	OIDs(ctx context.Context, where *textidx.Predicate) ([]int64, error)
	// All returns every trajectory the shard holds — the gather path of
	// the all-pairs and reverse kinds.
	All(ctx context.Context) ([]*trajectory.Trajectory, error)
	// Ingest applies live updates (plan revisions, extensions, inserts —
	// the mod.ApplyUpdate contract) to the shard's partition, returning
	// per-update outcomes in order.
	Ingest(ctx context.Context, updates []mod.Update) ([]mod.Applied, error)
	// Owns reports, elementwise, whether the shard currently holds each
	// OID — the bulk ownership probe the router's ingest placement uses
	// under geometry partitioners (one round trip per shard per batch
	// instead of one per update).
	Owns(ctx context.Context, oids []int64) ([]bool, error)
}

// LocalShard is an in-process shard over a mod.Store — the building block
// of single-machine scaling (uncertnn -shards, the shard benchmark) and
// the reference implementation RemoteShard mirrors over the wire. Its
// sweep cache lets the two exchange phases (separate Shard calls) share
// one snapshot table per (store-version, query, window).
type LocalShard struct {
	name   string
	store  *mod.Store
	sweeps prune.SweepCache

	mu     sync.Mutex
	refine *engine.Engine
}

// NewLocalShard wraps store as a shard named name.
func NewLocalShard(name string, store *mod.Store) *LocalShard {
	return &LocalShard{name: name, store: store}
}

// Name implements Shard.
func (s *LocalShard) Name() string { return s.name }

// Store exposes the wrapped store (tests and loaders).
func (s *LocalShard) Store() *mod.Store { return s.store }

// Spec implements Shard.
func (s *LocalShard) Spec(context.Context) (mod.PDFSpec, error) { return s.store.Spec(), nil }

// Len implements Shard.
func (s *LocalShard) Len(context.Context) (int, error) { return s.store.Len(), nil }

// Get implements Shard.
func (s *LocalShard) Get(_ context.Context, oid int64) (*trajectory.Trajectory, []string, error) {
	tr, err := s.store.Get(oid)
	if err != nil {
		return nil, nil, err
	}
	return tr, s.store.Tags(oid), nil
}

// Bounds implements Shard via the store's index pre-pass probe phase,
// through the shard's sweep cache so phase 2 reuses the same session.
func (s *LocalShard) Bounds(ctx context.Context, q *trajectory.Trajectory, tb, te float64, k int, where *textidx.Predicate) ([]float64, error) {
	sw, err := s.sweeps.ForWhere(s.store, q, tb, te, where)
	if err != nil {
		return nil, err
	}
	return sw.Bounds(ctx, k)
}

// Survivors implements Shard via the store's bound-driven sweep.
func (s *LocalShard) Survivors(ctx context.Context, q *trajectory.Trajectory, tb, te float64, bounds []float64, where *textidx.Predicate) ([]*trajectory.Trajectory, prune.Stats, error) {
	sw, err := s.sweeps.ForWhere(s.store, q, tb, te, where)
	if err != nil {
		return nil, prune.Stats{}, err
	}
	return sw.Survivors(ctx, bounds)
}

// Refine implements Shard: the union store is read in place (no copy, no
// gatherID bookkeeping needed in-process) and evaluated on the shard's
// refine engine with the domain restricted to own. A router injects its
// own engine here so every local shard — and the router's central
// single-object path — shares one processor memo: on one machine the K
// shards then collectively pay a single envelope build per union store
// and split only the filter work, which is exactly the distributed
// protocol's cost model collapsed onto shared memory.
func (s *LocalShard) Refine(ctx context.Context, _ string, union *mod.Store, own []int64, req engine.Request) (engine.Result, error) {
	return s.refineEngine().DoRestricted(ctx, union, req, own)
}

// refineEngine returns the shard's refine engine, creating a private one
// on first use when no router injected a shared one.
func (s *LocalShard) refineEngine() *engine.Engine {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.refine == nil {
		s.refine = engine.New(0)
	}
	return s.refine
}

// adoptRefineEngine installs e as the shard's refine engine unless one is
// already set (first router wins; the memo key includes the store
// pointer, so sharing across routers is safe).
func (s *LocalShard) adoptRefineEngine(e *engine.Engine) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.refine == nil {
		s.refine = e
	}
}

// OIDs implements Shard.
func (s *LocalShard) OIDs(_ context.Context, where *textidx.Predicate) ([]int64, error) {
	return s.store.MatchingOIDs(where), nil
}

// All implements Shard.
func (s *LocalShard) All(context.Context) ([]*trajectory.Trajectory, error) {
	return s.store.All(), nil
}

// Ingest implements Shard.
func (s *LocalShard) Ingest(_ context.Context, updates []mod.Update) ([]mod.Applied, error) {
	return s.store.ApplyUpdates(updates)
}

// Owns implements Shard.
func (s *LocalShard) Owns(_ context.Context, oids []int64) ([]bool, error) {
	out := make([]bool, len(oids))
	for i, oid := range oids {
		_, err := s.store.Get(oid)
		out[i] = err == nil
	}
	return out, nil
}

// SplitStore partitions a store's contents into n new stores sharing its
// uncertainty model, placing each trajectory with part (nil means Hash).
// Trajectory values are shared, not copied — stores treat them as
// immutable.
func SplitStore(store *mod.Store, n int, part Partitioner) ([]*mod.Store, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: cannot split into %d stores", n)
	}
	if part == nil {
		part = Hash{}
	}
	out := make([]*mod.Store, n)
	for i := range out {
		s, err := mod.NewStore(store.Spec())
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	trs, tags, _ := store.AllWithTags()
	for _, tr := range trs {
		i := part.Place(tr, n)
		if i < 0 || i >= n {
			return nil, fmt.Errorf("cluster: partitioner %s placed OID %d on shard %d of %d", part.Name(), tr.OID, i, n)
		}
		if err := out[i].Insert(tr); err != nil {
			return nil, err
		}
		if ts := tags[tr.OID]; len(ts) > 0 {
			if err := out[i].SetTags(tr.OID, ts); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// NewLocalCluster splits a store into n in-process shards and routes over
// them — the zero-config path behind uncertnn -shards, the fleetwatch
// demo, and the shard-scaling benchmark.
func NewLocalCluster(store *mod.Store, n int, opts Options) (*Router, error) {
	part := opts.Partitioner
	if part == nil {
		part = Hash{}
	}
	stores, err := SplitStore(store, n, part)
	if err != nil {
		return nil, err
	}
	shards := make([]Shard, n)
	for i, s := range stores {
		shards[i] = NewLocalShard(fmt.Sprintf("local-%d", i), s)
	}
	opts.Partitioner = part
	return NewRouter(context.Background(), shards, opts)
}
