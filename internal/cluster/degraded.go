package cluster

import (
	"context"
	"fmt"
	"slices"
	"sync"

	"repro/internal/engine"
)

// This file is the degraded-serving half of the scatter machinery: when a
// router is built with Options.Degraded, shard failures (past the shards'
// own retry budgets) mask the shard out of the round instead of failing
// the call, and the merged answer carries Explain.Degraded plus the
// missing shards' names. The caller's context still aborts everything,
// and a round that loses every shard fails with the first real error —
// a "partial" answer over zero shards is not an answer.

// scatterDegraded fans f across every shard concurrently and waits for
// all of them, like scatter, but failures are per-shard outcomes: ok[i]
// reports whether shard i replied, and out[i] is only meaningful when it
// did. Siblings are NOT canceled by a failure (the round wants every
// reply it can get). err is non-nil only when the caller's context fired
// (its error, taking precedence) or every shard failed (the first real
// failure, so callers see why the cluster is dark).
func scatterDegraded[T any](ctx context.Context, shards []Shard, f func(ctx context.Context, i int, s Shard) (T, error)) ([]T, []bool, error) {
	out := make([]T, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := ctxErr(ctx); err != nil {
				errs[i] = err
				return
			}
			out[i], errs[i] = f(ctx, i, shards[i])
		}(i)
	}
	wg.Wait()
	if err := ctxErr(ctx); err != nil {
		return nil, nil, err
	}
	ok := make([]bool, len(shards))
	var firstErr error
	any := false
	for i, err := range errs {
		if err == nil {
			ok[i] = true
			any = true
			continue
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("cluster: shard %s: %w", shards[i].Name(), err)
		}
	}
	if !any {
		return nil, nil, firstErr
	}
	return out, ok, nil
}

// scatterMode dispatches to the strict or degraded scatter per the
// router's configuration, normalizing both to the (out, ok, err) shape.
func scatterMode[T any](r *Router, ctx context.Context, f func(ctx context.Context, i int, s Shard) (T, error)) ([]T, []bool, error) {
	if r.degraded {
		return scatterDegraded(ctx, r.shards, f)
	}
	out, err := scatter(ctx, r.shards, f)
	if err != nil {
		return nil, nil, err
	}
	ok := make([]bool, len(r.shards))
	for i := range ok {
		ok[i] = true
	}
	return out, ok, nil
}

// missingOf converts an ok mask to the sorted missing-shard index list.
func missingOf(ok []bool) []int {
	var missing []int
	for i, v := range ok {
		if !v {
			missing = append(missing, i)
		}
	}
	return missing
}

// mergeMissing unions sorted missing-index lists.
func mergeMissing(a, b []int) []int {
	if len(b) == 0 {
		return a
	}
	out := append(append([]int(nil), a...), b...)
	slices.Sort(out)
	return slices.Compact(out)
}

// applyDegraded stamps a result's Explain with the round's missing-shard
// provenance; a round that lost nothing stamps nothing.
func (r *Router) applyDegraded(ex *engine.Explain, missing []int) {
	if len(missing) == 0 {
		return
	}
	ex.Degraded = true
	names := make([]string, len(missing))
	for i, si := range missing {
		names[i] = r.shards[si].Name()
	}
	ex.MissingShards = names
}
