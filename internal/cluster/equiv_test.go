package cluster_test

// The cluster equivalence gate: a Router over 1, 2, 4 and 8 shards —
// hash-partitioned, both LocalShard and RemoteShard kinds — must return
// byte-identical answers to a single-store Engine.Do for every Request
// kind on a seeded 500-trajectory store, including the NN-family kinds
// that exercise the two-phase bound exchange, the single-object kinds
// whose targets live on other shards (or nowhere), and the error paths.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"slices"
	"testing"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/mod"
	"repro/internal/modserver"
	"repro/internal/trajectory"
	"repro/internal/workload"
)

const (
	equivN    = 500
	equivR    = 0.5
	equivSeed = 2009
	equivTb   = 0.0
	equivTe   = 30.0
)

func buildStore(t testing.TB, n int, r float64, seed int64) (*mod.Store, []*trajectory.Trajectory) {
	t.Helper()
	trs, err := workload.Generate(workload.DefaultConfig(seed), n)
	if err != nil {
		t.Fatal(err)
	}
	store, err := mod.NewUniformStore(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.InsertAll(trs); err != nil {
		t.Fatal(err)
	}
	return store, trs
}

// equivRequests covers every Request kind, plus the error paths a router
// must reproduce (unknown query OID, unknown target OID) and a target
// that the index pre-pass prunes (the answer must be false, not
// ErrUnknownOID — the distinction the target fetch exists for).
func equivRequests(trs []*trajectory.Trajectory) []engine.Request {
	q := trs[0].OID
	near := trs[1].OID
	far := trs[len(trs)-1].OID
	return []engine.Request{
		{Kind: engine.KindUQ11, QueryOID: q, Tb: equivTb, Te: equivTe, OID: near},
		{Kind: engine.KindUQ11, QueryOID: q, Tb: equivTb, Te: equivTe, OID: far},
		{Kind: engine.KindUQ12, QueryOID: q, Tb: equivTb, Te: equivTe, OID: near},
		{Kind: engine.KindUQ13, QueryOID: q, Tb: equivTb, Te: equivTe, OID: near, X: 0.25},
		{Kind: engine.KindUQ21, QueryOID: q, Tb: equivTb, Te: equivTe, OID: near, K: 2},
		{Kind: engine.KindUQ22, QueryOID: q, Tb: equivTb, Te: equivTe, OID: near, K: 3},
		{Kind: engine.KindUQ23, QueryOID: q, Tb: equivTb, Te: equivTe, OID: near, K: 2, X: 0.5},
		{Kind: engine.KindUQ31, QueryOID: q, Tb: equivTb, Te: equivTe},
		{Kind: engine.KindUQ32, QueryOID: q, Tb: equivTb, Te: equivTe},
		{Kind: engine.KindUQ33, QueryOID: q, Tb: equivTb, Te: equivTe, X: 0.25},
		{Kind: engine.KindUQ41, QueryOID: q, Tb: equivTb, Te: equivTe, K: 2},
		{Kind: engine.KindUQ42, QueryOID: q, Tb: equivTb, Te: equivTe, K: 3},
		{Kind: engine.KindUQ43, QueryOID: q, Tb: equivTb, Te: equivTe, K: 2, X: 0.5},
		{Kind: engine.KindNNAt, QueryOID: q, Tb: equivTb, Te: equivTe, OID: near, T: 15},
		{Kind: engine.KindRankAt, QueryOID: q, Tb: equivTb, Te: equivTe, OID: near, T: 15, K: 2},
		{Kind: engine.KindAllNNAt, QueryOID: q, Tb: equivTb, Te: equivTe, T: 15},
		{Kind: engine.KindAllRankAt, QueryOID: q, Tb: equivTb, Te: equivTe, T: 15, K: 2},
		{Kind: engine.KindThreshold, QueryOID: q, Tb: equivTb, Te: equivTe, OID: near, P: 0.2, X: 0.3},
		// KindAllThreshold integrates a probability series per UQ31
		// survivor (tens of seconds at this density); it gets its own
		// sparser-store matrix in TestRouterEquivalenceAllThreshold.
		{Kind: engine.KindAllPairs, Tb: equivTb, Te: equivTe},
		{Kind: engine.KindReverse, Tb: equivTb, Te: equivTe, OID: near},
		// A second query trajectory so the batch exercises group caching.
		{Kind: engine.KindUQ31, QueryOID: trs[(len(trs)-1)/2].OID, Tb: equivTb, Te: equivTe},
		// Error paths: unknown target, unknown query trajectory.
		{Kind: engine.KindUQ11, QueryOID: q, Tb: equivTb, Te: equivTe, OID: 987654321},
		{Kind: engine.KindUQ31, QueryOID: 987654321, Tb: equivTb, Te: equivTe},
		{Kind: engine.KindReverse, Tb: equivTb, Te: equivTe, OID: 987654321},
	}
}

// checkSame asserts result equivalence: identical answer bytes and
// matching error presence, per request.
func checkSame(t *testing.T, label string, reqs []engine.Request, want, got []engine.Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: got %d results for %d requests", label, len(got), len(want))
	}
	sentinels := map[string]error{
		"ErrUnknownOID": engine.ErrUnknownOID, // unknown target object
		"ErrNotFound":   mod.ErrNotFound,      // unknown query trajectory
		"ErrBadWindow":  engine.ErrBadWindow,
		"ErrBadKind":    engine.ErrBadKind,
		"ErrBadRank":    engine.ErrBadRank,
		"ErrBadFrac":    engine.ErrBadFrac,
	}
	for i := range want {
		w, g := want[i], got[i]
		tag := fmt.Sprintf("%s req[%d] %s", label, i, reqs[i].Kind)
		if (w.Err == nil) != (g.Err == nil) {
			t.Fatalf("%s: single err=%v, router err=%v", tag, w.Err, g.Err)
		}
		if w.Err != nil {
			// Same typed error on both routes, not just "an error".
			for name, sentinel := range sentinels {
				if errors.Is(w.Err, sentinel) != errors.Is(g.Err, sentinel) {
					t.Fatalf("%s: %s identity diverged: single err=%v, router err=%v", tag, name, w.Err, g.Err)
				}
			}
			continue
		}
		if w.IsBool != g.IsBool || w.Bool != g.Bool {
			t.Fatalf("%s: single bool=(%v,%v), router bool=(%v,%v)", tag, w.IsBool, w.Bool, g.IsBool, g.Bool)
		}
		if !slices.Equal(w.OIDs, g.OIDs) {
			t.Fatalf("%s: single OIDs=%v, router OIDs=%v", tag, w.OIDs, g.OIDs)
		}
		if len(w.Pairs) != len(g.Pairs) {
			t.Fatalf("%s: single has %d pair sets, router %d", tag, len(w.Pairs), len(g.Pairs))
		}
		for oid, ws := range w.Pairs {
			if !slices.Equal(ws, g.Pairs[oid]) {
				t.Fatalf("%s: pairs[%d]: single=%v router=%v", tag, oid, ws, g.Pairs[oid])
			}
		}
	}
}

// singleAnswers evaluates the suite once on a plain engine — the oracle
// every shard configuration is compared against.
func singleAnswers(t *testing.T, store *mod.Store, reqs []engine.Request) []engine.Result {
	t.Helper()
	want, err := engine.New(0).DoBatch(context.Background(), store, reqs)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

func TestRouterEquivalenceLocal(t *testing.T) {
	store, trs := buildStore(t, equivN, equivR, equivSeed)
	reqs := equivRequests(trs)
	want := singleAnswers(t, store, reqs)
	for _, shards := range []int{1, 2, 4, 8} {
		router, err := cluster.NewLocalCluster(store, shards, cluster.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := router.DoBatch(context.Background(), reqs)
		if err != nil {
			t.Fatal(err)
		}
		checkSame(t, fmt.Sprintf("local/%d", shards), reqs, want, got)
	}
}

// TestRouterEquivalenceLocalDo routes each request through the one-shot
// Do path (no batch caches) on one shard count, so the per-call gather is
// exercised too.
func TestRouterEquivalenceLocalDo(t *testing.T) {
	store, trs := buildStore(t, 200, equivR, equivSeed)
	reqs := equivRequests(trs)
	want := singleAnswers(t, store, reqs)
	router, err := cluster.NewLocalCluster(store, 4, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]engine.Result, len(reqs))
	for i, req := range reqs {
		got[i], _ = router.Do(context.Background(), req)
	}
	checkSame(t, "local-do/4", reqs, want, got)
}

// TestRouterEquivalenceGrid swaps in the spatial-grid partitioner, whose
// point lookups broadcast (Locate is -1), over both Do and DoBatch.
func TestRouterEquivalenceGrid(t *testing.T) {
	store, trs := buildStore(t, 300, equivR, equivSeed)
	reqs := equivRequests(trs)
	want := singleAnswers(t, store, reqs)
	for _, shards := range []int{3, 5} {
		router, err := cluster.NewLocalCluster(store, shards, cluster.Options{Partitioner: cluster.Grid{}})
		if err != nil {
			t.Fatal(err)
		}
		got, err := router.DoBatch(context.Background(), reqs)
		if err != nil {
			t.Fatal(err)
		}
		checkSame(t, fmt.Sprintf("grid/%d", shards), reqs, want, got)
	}
}

// TestRouterEquivalenceTiny covers the degenerate shapes: more shards
// than objects (empty shards must bound nothing and survive nothing, not
// wedge the exchange).
func TestRouterEquivalenceTiny(t *testing.T) {
	store, trs := buildStore(t, 3, equivR, equivSeed)
	reqs := equivRequests(trs)
	want := singleAnswers(t, store, reqs)
	router, err := cluster.NewLocalCluster(store, 8, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := router.DoBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	checkSame(t, "tiny/8", reqs, want, got)
}

// TestRouterEquivalenceAllThreshold covers the threshold-retrieval kind,
// whose per-survivor probability integration makes it orders of magnitude
// heavier than every other kind: same 500-trajectory seed, a sparser
// uncertainty radius so the 4r zone stays testable in CI time, across a
// local and a remote configuration (the main matrix covers grid).
func TestRouterEquivalenceAllThreshold(t *testing.T) {
	store, trs := buildStore(t, equivN, 0.1, equivSeed)
	reqs := []engine.Request{
		{Kind: engine.KindAllThreshold, QueryOID: trs[0].OID, Tb: equivTb, Te: equivTe, P: 0.1, X: 0.2},
		{Kind: engine.KindThreshold, QueryOID: trs[0].OID, Tb: equivTb, Te: equivTe, OID: trs[1].OID, P: 0.3, X: 0.4},
	}
	want := singleAnswers(t, store, reqs)

	local, err := cluster.NewLocalCluster(store, 4, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := local.DoBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	checkSame(t, "allthresh-local/4", reqs, want, got)

	remote, err := cluster.NewRouter(context.Background(),
		startShardServers(t, store, 2, cluster.Hash{}), cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err = remote.DoBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	checkSame(t, "allthresh-remote/2", reqs, want, got)
}

// startShardServers splits the store and serves each partition from an
// in-process modserver over real TCP, returning the remote shard set.
func startShardServers(t testing.TB, store *mod.Store, n int, part cluster.Partitioner) []cluster.Shard {
	t.Helper()
	stores, err := cluster.SplitStore(store, n, part)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]cluster.Shard, n)
	for i, st := range stores {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := modserver.NewServer(st)
		go srv.Serve(l)
		t.Cleanup(func() { srv.Close() })
		remote := cluster.NewRemoteShard(fmt.Sprintf("remote-%d", i), l.Addr().String())
		t.Cleanup(func() { remote.Close() })
		shards[i] = remote
	}
	return shards
}

func TestRouterEquivalenceRemote(t *testing.T) {
	store, trs := buildStore(t, equivN, equivR, equivSeed)
	reqs := equivRequests(trs)
	want := singleAnswers(t, store, reqs)
	for _, shards := range []int{1, 2, 4, 8} {
		router, err := cluster.NewRouter(context.Background(),
			startShardServers(t, store, shards, cluster.Hash{}), cluster.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := router.DoBatch(context.Background(), reqs)
		if err != nil {
			t.Fatal(err)
		}
		checkSame(t, fmt.Sprintf("remote/%d", shards), reqs, want, got)
	}
}

// TestRouterMixedShardKinds routes over a half-local, half-remote shard
// set: the Shard interface is the contract, not the transport.
func TestRouterMixedShardKinds(t *testing.T) {
	store, trs := buildStore(t, 200, equivR, equivSeed)
	reqs := equivRequests(trs)
	want := singleAnswers(t, store, reqs)
	stores, err := cluster.SplitStore(store, 4, cluster.Hash{})
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]cluster.Shard, 4)
	for i, st := range stores {
		if i%2 == 0 {
			shards[i] = cluster.NewLocalShard(fmt.Sprintf("local-%d", i), st)
			continue
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := modserver.NewServer(st)
		go srv.Serve(l)
		t.Cleanup(func() { srv.Close() })
		remote := cluster.NewRemoteShard(fmt.Sprintf("remote-%d", i), l.Addr().String())
		t.Cleanup(func() { remote.Close() })
		shards[i] = remote
	}
	router, err := cluster.NewRouter(context.Background(), shards, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := router.DoBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	checkSame(t, "mixed/4", reqs, want, got)
}
