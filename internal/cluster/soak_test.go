package cluster_test

// Nightly chaos soak for the fault-tolerant serving layer: more seeds,
// more queries, and mixed fault plans on top of the PR-gate matrix in
// fault_test.go. Every query must still land in one of exactly two
// outcomes — an exact answer (the retry layer absorbed the faults) or a
// degraded answer naming the missing shard — and the per-plan outcome
// counts are written to $CHAOS_DIR for the nightly artifact. Skipped
// unless CHAOS_SOAK is set.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/faultinject"
)

func TestChaosSoakFaults(t *testing.T) {
	if os.Getenv("CHAOS_SOAK") == "" {
		t.Skip("set CHAOS_SOAK=1 (make chaos-soak) to run the fault soak")
	}
	artifacts := os.Getenv("CHAOS_DIR")
	if artifacts == "" {
		artifacts = t.TempDir()
	}
	if err := os.MkdirAll(artifacts, 0o755); err != nil {
		t.Fatal(err)
	}

	store, _ := buildStore(t, 200, 0.5, 17)
	plans := []struct {
		name string
		plan faultinject.Plan
	}{
		{"drop30", faultinject.Plan{DropRate: 0.3}},
		{"dial50-drop20", faultinject.Plan{DialErrorRate: 0.5, DropRate: 0.2}},
		{"delay-past-timeout", faultinject.Plan{Delay: 80 * time.Millisecond}},
		{"kitchen-sink", faultinject.Plan{DialErrorRate: 0.3, DropRate: 0.2, Delay: 5 * time.Millisecond, Jitter: 10 * time.Millisecond}},
	}

	type outcome struct {
		Plan     string            `json:"plan"`
		Seed     int64             `json:"seed"`
		Queries  int               `json:"queries"`
		Exact    int               `json:"exact"`
		Degraded int               `json:"degraded"`
		Stats    faultinject.Stats `json:"injector_stats"`
	}
	var outcomes []outcome

	for _, seed := range []int64{101, 102, 103} {
		for _, p := range plans {
			p, seed := p, seed
			t.Run(fmt.Sprintf("seed%d-%s", seed, p.name), func(t *testing.T) {
				retry := testRetry
				retry.Seed = seed
				if p.plan.Delay > 0 {
					retry.AttemptTimeout = 30 * time.Millisecond
				}
				const faultIdx = 2
				router, in, stores, _ := faultCluster(t, store, 4, faultIdx, retry, true)
				qOID := pickQuery(t, stores, faultIdx)
				req := engine.Request{Kind: engine.KindUQ31, QueryOID: qOID, Tb: 0, Te: 30}
				exact, err := engine.New(0).Do(context.Background(), store, req)
				if err != nil {
					t.Fatal(err)
				}

				in.SetPlan(p.plan)
				o := outcome{Plan: p.name, Seed: seed, Queries: 25}
				for i := 0; i < o.Queries; i++ {
					ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
					res, err := router.Do(ctx, req)
					cancel()
					if err != nil {
						t.Fatalf("query %d: %v (neither retry success nor degraded)", i, err)
					}
					if res.Explain.Degraded {
						if !reflect.DeepEqual(res.Explain.MissingShards, []string{"s2"}) {
							t.Fatalf("query %d: MissingShards = %v", i, res.Explain.MissingShards)
						}
						o.Degraded++
						continue
					}
					if !reflect.DeepEqual(res.OIDs, exact.OIDs) {
						t.Fatalf("query %d: non-degraded answer %v != exact %v", i, res.OIDs, exact.OIDs)
					}
					o.Exact++
				}
				o.Stats = in.Stats()
				outcomes = append(outcomes, o)
				t.Logf("%s seed %d: %d exact, %d degraded, stats %+v", p.name, seed, o.Exact, o.Degraded, o.Stats)
			})
		}
	}

	b, err := json.MarshalIndent(outcomes, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(artifacts, "fault-soak.json")
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("fault soak report: %s", out)
}
