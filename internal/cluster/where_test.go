package cluster_test

// The spatio-textual cluster gate: a Router over 1, 2, 4 and 8 shards —
// local and remote — must answer predicate-filtered requests
// byte-identically to a single-store Engine.Do with the same Where
// clause, for every kind, including targets that exist but fail the
// predicate (false, not ErrUnknownOID), and must stay identical under
// live ingest that flips tags.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/mod"
	"repro/internal/textidx"
	"repro/internal/trajectory"
)

// tagStore builds the seeded store and tags it deterministically by OID,
// so every predicate below selects a known, non-trivial sub-MOD that is
// scattered across shards by the hash partitioner.
func tagStore(t testing.TB, n int, r float64, seed int64) (*mod.Store, []*trajectory.Trajectory) {
	t.Helper()
	store, trs := buildStore(t, n, r, seed)
	for _, tr := range trs {
		var tags []string
		if tr.OID%2 == 0 {
			tags = append(tags, "available")
		}
		if tr.OID%3 == 0 {
			tags = append(tags, "ev")
		}
		if tr.OID%5 == 0 {
			tags = append(tags, "wheelchair")
		}
		if tags != nil {
			if err := store.SetTags(tr.OID, tags); err != nil {
				t.Fatal(err)
			}
		}
	}
	return store, trs
}

// whereRequests is the predicate matrix: every kind under a predicate,
// plus the target semantics (matching, existing-but-non-matching, and
// globally absent targets).
func whereRequests(store *mod.Store, trs []*trajectory.Trajectory) []engine.Request {
	q := trs[0].OID
	avail := &textidx.Predicate{All: []string{"available"}}
	anyEV := &textidx.Predicate{Any: []string{"ev", "wheelchair"}}
	notEV := &textidx.Predicate{Not: []string{"ev"}}
	mixed := &textidx.Predicate{All: []string{"available"}, Not: []string{"wheelchair"}}
	var match, nonMatch int64
	for _, tr := range trs[1:] {
		if match == 0 && avail.Matches(store.Tags(tr.OID)) {
			match = tr.OID
		}
		if nonMatch == 0 && !avail.Matches(store.Tags(tr.OID)) {
			nonMatch = tr.OID
		}
		if match != 0 && nonMatch != 0 {
			break
		}
	}
	return []engine.Request{
		{Kind: engine.KindUQ11, QueryOID: q, Tb: equivTb, Te: equivTe, OID: match, Where: avail},
		{Kind: engine.KindUQ11, QueryOID: q, Tb: equivTb, Te: equivTe, OID: nonMatch, Where: avail},
		{Kind: engine.KindUQ12, QueryOID: q, Tb: equivTb, Te: equivTe, OID: match, Where: avail},
		{Kind: engine.KindUQ13, QueryOID: q, Tb: equivTb, Te: equivTe, OID: match, X: 0.25, Where: notEV},
		{Kind: engine.KindUQ21, QueryOID: q, Tb: equivTb, Te: equivTe, OID: match, K: 2, Where: avail},
		{Kind: engine.KindUQ22, QueryOID: q, Tb: equivTb, Te: equivTe, OID: match, K: 2, Where: anyEV},
		{Kind: engine.KindUQ23, QueryOID: q, Tb: equivTb, Te: equivTe, OID: match, K: 2, X: 0.5, Where: avail},
		{Kind: engine.KindUQ31, QueryOID: q, Tb: equivTb, Te: equivTe, Where: avail},
		{Kind: engine.KindUQ31, QueryOID: q, Tb: equivTb, Te: equivTe, Where: anyEV},
		{Kind: engine.KindUQ32, QueryOID: q, Tb: equivTb, Te: equivTe, Where: notEV},
		{Kind: engine.KindUQ33, QueryOID: q, Tb: equivTb, Te: equivTe, X: 0.25, Where: mixed},
		{Kind: engine.KindUQ41, QueryOID: q, Tb: equivTb, Te: equivTe, K: 2, Where: avail},
		{Kind: engine.KindUQ42, QueryOID: q, Tb: equivTb, Te: equivTe, K: 2, Where: anyEV},
		{Kind: engine.KindUQ43, QueryOID: q, Tb: equivTb, Te: equivTe, K: 2, X: 0.5, Where: notEV},
		{Kind: engine.KindNNAt, QueryOID: q, Tb: equivTb, Te: equivTe, OID: match, T: 15, Where: avail},
		{Kind: engine.KindRankAt, QueryOID: q, Tb: equivTb, Te: equivTe, OID: match, T: 15, K: 2, Where: avail},
		{Kind: engine.KindAllNNAt, QueryOID: q, Tb: equivTb, Te: equivTe, T: 15, Where: anyEV},
		{Kind: engine.KindAllRankAt, QueryOID: q, Tb: equivTb, Te: equivTe, T: 15, K: 2, Where: avail},
		{Kind: engine.KindThreshold, QueryOID: q, Tb: equivTb, Te: equivTe, OID: match, P: 0.2, X: 0.3, Where: avail},
		{Kind: engine.KindAllPairs, Tb: equivTb, Te: equivTe, Where: avail},
		{Kind: engine.KindAllPairs, Tb: equivTb, Te: equivTe, Where: anyEV},
		{Kind: engine.KindReverse, Tb: equivTb, Te: equivTe, OID: match, Where: avail},
		{Kind: engine.KindReverse, Tb: equivTb, Te: equivTe, OID: nonMatch, Where: avail},
		// A filtered and an unfiltered request against the same (query,
		// window): the gathers must not cross-contaminate.
		{Kind: engine.KindUQ31, QueryOID: q, Tb: equivTb, Te: equivTe},
		// Error path: target absent from every shard, predicate set.
		{Kind: engine.KindUQ11, QueryOID: q, Tb: equivTb, Te: equivTe, OID: 987654321, Where: avail},
	}
}

func TestRouterEquivalenceWhereLocal(t *testing.T) {
	store, trs := tagStore(t, 300, equivR, equivSeed)
	reqs := whereRequests(store, trs)
	want := singleAnswers(t, store, reqs)
	for _, shards := range []int{1, 2, 4, 8} {
		router, err := cluster.NewLocalCluster(store, shards, cluster.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := router.DoBatch(context.Background(), reqs)
		if err != nil {
			t.Fatal(err)
		}
		checkSame(t, fmt.Sprintf("where-local/%d", shards), reqs, want, got)
	}
}

// TestRouterEquivalenceWhereDo routes each predicate request through the
// one-shot Do path (no batch caches) so the per-call filtered gather is
// exercised too.
func TestRouterEquivalenceWhereDo(t *testing.T) {
	store, trs := tagStore(t, 150, equivR, equivSeed)
	reqs := whereRequests(store, trs)
	want := singleAnswers(t, store, reqs)
	router, err := cluster.NewLocalCluster(store, 4, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]engine.Result, len(reqs))
	for i, req := range reqs {
		got[i], _ = router.Do(context.Background(), req)
	}
	checkSame(t, "where-do/4", reqs, want, got)
}

// TestRouterEquivalenceWhereRemote sends the predicate matrix over the
// wire: Where travels on the bounds/survivors/oids phases and tags ride
// the get replies.
func TestRouterEquivalenceWhereRemote(t *testing.T) {
	store, trs := tagStore(t, 200, equivR, equivSeed)
	reqs := whereRequests(store, trs)
	want := singleAnswers(t, store, reqs)
	for _, shards := range []int{2, 3} {
		router, err := cluster.NewRouter(context.Background(),
			startShardServers(t, store, shards, cluster.Hash{}), cluster.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := router.DoBatch(context.Background(), reqs)
		if err != nil {
			t.Fatal(err)
		}
		checkSame(t, fmt.Sprintf("where-remote/%d", shards), reqs, want, got)
	}
}

// TestRouterWhereUnderTagFlips pins the live half of the contract: after
// an ingest batch that flips tags (pure flips — no motion change — plus a
// combined revision+retag), filtered answers through the router must
// still match a single filtered engine over an identically mutated store.
func TestRouterWhereUnderTagFlips(t *testing.T) {
	store, trs := tagStore(t, 200, equivR, equivSeed)
	router, err := cluster.NewLocalCluster(store, 4, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reqs := whereRequests(store, trs)
	want := singleAnswers(t, store, reqs)
	got, err := router.DoBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	checkSame(t, "pre-flip/4", reqs, want, got)

	// Flip tags on a spread of objects: gain, lose, and clear.
	newTags := func(ts ...string) *[]string { return &ts }
	var updates []mod.Update
	for i, tr := range trs {
		switch i % 7 {
		case 0:
			updates = append(updates, mod.Update{OID: tr.OID, Tags: newTags("available", "ev")})
		case 3:
			updates = append(updates, mod.Update{OID: tr.OID, Tags: newTags()})
		case 5:
			updates = append(updates, mod.Update{OID: tr.OID, Tags: newTags("wheelchair")})
		}
	}
	if _, err := router.Ingest(context.Background(), updates); err != nil {
		t.Fatal(err)
	}
	// Mirror the flips on the oracle store.
	if _, err := store.ApplyUpdates(updates); err != nil {
		t.Fatal(err)
	}

	reqs = whereRequests(store, trs)
	want = singleAnswers(t, store, reqs)
	got, err = router.DoBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	checkSame(t, "post-flip/4", reqs, want, got)
}
