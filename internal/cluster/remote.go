package cluster

import (
	"context"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/mod"
	"repro/internal/modserver"
	"repro/internal/prune"
	"repro/internal/trajectory"
)

// RemoteShard speaks the modserver query op (bounds/survivors/all phases)
// to a shard-serving modserver over TCP. The connection is dialed lazily,
// serialized by a mutex (the wire client is synchronous), and redialed
// after a failure or a context cancellation poisons it.
//
// Cancellation: the wire protocol has no cancel frame, so a canceled call
// closes the connection — the blocked read returns immediately, the
// watchdog goroutine exits, and the next call redials. The server side is
// additionally told the ctx deadline (deadline_ms), so it stops evaluating
// on its own once the deadline passes.
type RemoteShard struct {
	name string
	addr string

	mu  sync.Mutex
	cli *modserver.Client
}

// NewRemoteShard names a shard served by a modserver at addr. No I/O
// happens until the first call.
func NewRemoteShard(name, addr string) *RemoteShard {
	return &RemoteShard{name: name, addr: addr}
}

// Name implements Shard.
func (s *RemoteShard) Name() string { return s.name }

// Addr reports the shard's server address.
func (s *RemoteShard) Addr() string { return s.addr }

// Close drops the cached connection (calls after Close redial).
func (s *RemoteShard) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cli == nil {
		return nil
	}
	err := s.cli.Close()
	s.cli = nil
	return err
}

// call runs f against the shard's client under the mutex with a
// cancellation watchdog: if ctx fires while f blocks on the wire, the
// connection is closed (unblocking f promptly) and the context error is
// reported instead of the resulting read error. The watchdog is always
// reaped before call returns, so a canceled scatter leaks nothing.
func (s *RemoteShard) call(ctx context.Context, f func(c *modserver.Client) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := ctxErr(ctx); err != nil {
		return err
	}
	if s.cli == nil {
		cli, err := modserver.Dial(s.addr)
		if err != nil {
			return err
		}
		s.cli = cli
	}
	cli := s.cli
	done := make(chan struct{})
	reaped := make(chan struct{})
	go func() {
		defer close(reaped)
		select {
		case <-ctx.Done():
			_ = cli.Close()
		case <-done:
		}
	}()
	err := f(cli)
	close(done)
	<-reaped
	if cerr := ctxErr(ctx); cerr != nil {
		// The watchdog (or the deadline) poisoned the connection; force a
		// redial next call and surface the cancellation, not the wire
		// noise it caused.
		_ = cli.Close()
		s.cli = nil
		return cerr
	}
	if err != nil {
		// A wire failure leaves the stream unsynchronized; redial next call.
		_ = cli.Close()
		s.cli = nil
	}
	return err
}

// deadlineOf converts the ctx deadline to a server-side budget (0 = none).
func deadlineOf(ctx context.Context) time.Duration {
	if d, ok := ctx.Deadline(); ok {
		if left := time.Until(d); left > 0 {
			return left
		}
		return time.Nanosecond // already expired; server rejects immediately
	}
	return 0
}

// Spec implements Shard.
func (s *RemoteShard) Spec(ctx context.Context) (mod.PDFSpec, error) {
	var spec mod.PDFSpec
	err := s.call(ctx, func(c *modserver.Client) error {
		var err error
		spec, err = c.Spec()
		return err
	})
	return spec, err
}

// Len implements Shard.
func (s *RemoteShard) Len(ctx context.Context) (int, error) {
	var n int
	err := s.call(ctx, func(c *modserver.Client) error {
		var err error
		n, err = c.Count()
		return err
	})
	return n, err
}

// Get implements Shard. A missing OID satisfies errors.Is(err,
// mod.ErrNotFound) across the wire (the server codes the failure).
func (s *RemoteShard) Get(ctx context.Context, oid int64) (*trajectory.Trajectory, error) {
	var tr *trajectory.Trajectory
	err := s.call(ctx, func(c *modserver.Client) error {
		var err error
		tr, err = c.Get(oid)
		return err
	})
	return tr, err
}

// Bounds implements Shard (phase 1 on the wire).
func (s *RemoteShard) Bounds(ctx context.Context, q *trajectory.Trajectory, tb, te float64, k int) ([]float64, error) {
	var bounds []float64
	err := s.call(ctx, func(c *modserver.Client) error {
		var err error
		bounds, err = c.ShardBounds(q, tb, te, k, deadlineOf(ctx))
		return err
	})
	return bounds, err
}

// Survivors implements Shard (phase 2 on the wire).
func (s *RemoteShard) Survivors(ctx context.Context, q *trajectory.Trajectory, tb, te float64, bounds []float64) ([]*trajectory.Trajectory, prune.Stats, error) {
	var (
		trs   []*trajectory.Trajectory
		stats prune.Stats
	)
	err := s.call(ctx, func(c *modserver.Client) error {
		var err error
		trs, stats, err = c.ShardSurvivors(q, tb, te, bounds, deadlineOf(ctx))
		return err
	})
	return trs, stats, err
}

// Refine implements Shard (the distributed-refine phases on the wire).
// The union store ships at most once per connection: the client probes
// the gather ID first and uploads the trajectories, in chunked frames,
// only on a server-side cache miss — so a batch issuing several refines
// against one gather pays the transfer once.
func (s *RemoteShard) Refine(ctx context.Context, gatherID string, union *mod.Store, own []int64, req engine.Request) (engine.Result, error) {
	var res engine.Result
	err := s.call(ctx, func(c *modserver.Client) error {
		var cerr error
		res, cerr = c.ShardRefine(gatherID, union.All(), own, req, deadlineOf(ctx))
		return cerr
	})
	if err != nil {
		res.Kind, res.Err = req.Kind, err
	}
	return res, err
}

// OIDs implements Shard (the oids phase on the wire).
func (s *RemoteShard) OIDs(ctx context.Context) ([]int64, error) {
	var oids []int64
	err := s.call(ctx, func(c *modserver.Client) error {
		var cerr error
		oids, cerr = c.ShardOIDs()
		return cerr
	})
	return oids, err
}

// All implements Shard.
func (s *RemoteShard) All(ctx context.Context) ([]*trajectory.Trajectory, error) {
	var trs []*trajectory.Trajectory
	err := s.call(ctx, func(c *modserver.Client) error {
		var err error
		trs, err = c.AllTrajectories()
		return err
	})
	return trs, err
}

// Ingest implements Shard (the modserver ingest op on the wire).
func (s *RemoteShard) Ingest(ctx context.Context, updates []mod.Update) ([]mod.Applied, error) {
	var applied []mod.Applied
	err := s.call(ctx, func(c *modserver.Client) error {
		var err error
		applied, err = c.Ingest(updates)
		return err
	})
	return applied, err
}

// Owns implements Shard (the modserver owns op on the wire — one round
// trip for the whole batch).
func (s *RemoteShard) Owns(ctx context.Context, oids []int64) ([]bool, error) {
	var owned []bool
	err := s.call(ctx, func(c *modserver.Client) error {
		var err error
		owned, err = c.Owns(oids)
		return err
	})
	return owned, err
}
