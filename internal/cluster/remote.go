package cluster

import (
	"context"
	"crypto/tls"
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/mod"
	"repro/internal/modserver"
	"repro/internal/prune"
	"repro/internal/textidx"
	"repro/internal/trajectory"
)

// Dialer opens the wire connection a RemoteShard speaks over. The
// default dials TCP; tests inject fault-wrapped dialers here.
type Dialer func(addr string) (net.Conn, error)

// Retry defaults; see RetryPolicy.
const (
	DefaultRetryAttempts = 3
	DefaultRetryBackoff  = 10 * time.Millisecond
	DefaultRetryMax      = 250 * time.Millisecond
)

// RetryPolicy bounds how a RemoteShard retries idempotent calls (every
// Shard op except Ingest, which may have applied server-side before the
// reply was lost) after a transient wire failure: a refused or reset
// connection, a broken stream, or a per-attempt timeout. Backoff doubles
// from BaseBackoff up to MaxBackoff with uniform jitter in [d/2, d], and
// every sleep aborts promptly when the caller's context fires.
type RetryPolicy struct {
	// Attempts is the total tries per call. Zero means
	// DefaultRetryAttempts; negative (or 1) disables retries.
	Attempts int
	// BaseBackoff is the first retry's backoff ceiling (zero means
	// DefaultRetryBackoff); MaxBackoff caps the doubling (zero means
	// DefaultRetryMax).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// AttemptTimeout bounds each attempt individually, so one black-holed
	// connection costs one timeout, not the caller's whole deadline. Zero
	// means no per-attempt bound (the caller's ctx still governs).
	AttemptTimeout time.Duration
	// Seed fixes the jitter sequence for deterministic tests; zero seeds
	// from the wall clock.
	Seed int64
}

func (p RetryPolicy) attempts() int {
	if p.Attempts == 0 {
		return DefaultRetryAttempts
	}
	if p.Attempts < 1 {
		return 1
	}
	return p.Attempts
}

func (p RetryPolicy) base() time.Duration {
	if p.BaseBackoff <= 0 {
		return DefaultRetryBackoff
	}
	return p.BaseBackoff
}

func (p RetryPolicy) max() time.Duration {
	if p.MaxBackoff <= 0 {
		return DefaultRetryMax
	}
	return p.MaxBackoff
}

// RemoteOptions tunes a RemoteShard's transport.
type RemoteOptions struct {
	// Dialer opens connections; nil means plain TCP.
	Dialer Dialer
	// Retry governs idempotent-call retries; the zero value retries
	// DefaultRetryAttempts times with default backoff.
	Retry RetryPolicy
	// TLS, when set, wraps every dialed connection in a TLS client
	// handshake (ServerName defaults from the shard address). A plaintext
	// dial against a TLS shard — the inverse misconfiguration — fails
	// with modserver.ErrTLSRequired, which is permanent, not retried.
	TLS *tls.Config
	// Token, when non-empty, authenticates each fresh connection before
	// any shard op rides it. A rejected token surfaces as
	// modserver.ErrUnauthorized (permanent).
	Token string
	// OnRetry, when set, observes each transient-failure retry (the
	// metrics hook): attempt counts from 1 and err is the failure being
	// retried. Called with the shard's mutex held — keep it cheap.
	OnRetry func(name string, attempt int, err error)
}

// RemoteShard speaks the modserver query op (bounds/survivors/all phases)
// to a shard-serving modserver over TCP. The connection is dialed lazily,
// serialized by a mutex (the wire client is synchronous), and redialed
// after a failure or a context cancellation poisons it. Idempotent calls
// retry transient wire failures per the shard's RetryPolicy; Ingest never
// retries (the lost reply may have applied).
//
// Cancellation: the wire protocol has no cancel frame, so a canceled call
// closes the connection — the blocked read returns immediately, the
// watchdog goroutine exits, and the next call redials. The server side is
// additionally told the ctx deadline (deadline_ms), so it stops evaluating
// on its own once the deadline passes.
type RemoteShard struct {
	name string
	addr string

	mu      sync.Mutex
	cli     *modserver.Client
	index   int // position in the owning router's shard slice; -1 unrouted
	dial    Dialer
	retry   RetryPolicy
	tlsCfg  *tls.Config
	token   string
	onRetry func(name string, attempt int, err error)
	rng     *rand.Rand
}

// NewRemoteShard names a shard served by a modserver at addr with default
// transport options. No I/O happens until the first call.
func NewRemoteShard(name, addr string) *RemoteShard {
	return NewRemoteShardWith(name, addr, RemoteOptions{})
}

// NewRemoteShardWith is NewRemoteShard with transport options.
func NewRemoteShardWith(name, addr string, opts RemoteOptions) *RemoteShard {
	seed := opts.Retry.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	d := opts.Dialer
	if d == nil {
		d = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	return &RemoteShard{
		name: name, addr: addr, index: -1,
		dial: d, retry: opts.Retry,
		tlsCfg: opts.TLS, token: opts.Token, onRetry: opts.OnRetry,
		rng: rand.New(rand.NewSource(seed)),
	}
}

// setIndex records the shard's position in a router's shard slice so
// ShardUnavailableError can name it by index as well as by name.
func (s *RemoteShard) setIndex(i int) {
	s.mu.Lock()
	s.index = i
	s.mu.Unlock()
}

// Name implements Shard.
func (s *RemoteShard) Name() string { return s.name }

// Addr reports the shard's server address.
func (s *RemoteShard) Addr() string { return s.addr }

// Close drops the cached connection (calls after Close redial).
func (s *RemoteShard) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cli == nil {
		return nil
	}
	err := s.cli.Close()
	s.cli = nil
	return err
}

// call runs f against the shard once, without retries — the Ingest path,
// where a lost reply may mean an applied batch.
func (s *RemoteShard) call(ctx context.Context, f func(c *modserver.Client) error) error {
	return s.callRetry(ctx, false, f)
}

// callIdempotent runs f with transient-failure retries per the policy.
func (s *RemoteShard) callIdempotent(ctx context.Context, f func(c *modserver.Client) error) error {
	return s.callRetry(ctx, true, f)
}

// callRetry serializes calls under the mutex and loops attempts: each
// transient failure of a retryable call backs off (exponential, jittered,
// ctx-aware) and redials. The caller's context always wins — its error is
// returned in preference to wire noise, and no attempt or backoff
// outlives it.
func (s *RemoteShard) callRetry(ctx context.Context, retryable bool, f func(c *modserver.Client) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	attempts := 1
	if retryable {
		attempts = s.retry.attempts()
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		if attempt > 0 {
			if err := s.backoffLocked(ctx, attempt); err != nil {
				return err
			}
		}
		err := s.attemptLocked(ctx, f)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable || !transientErr(err) {
			return err
		}
		if s.onRetry != nil && attempt+1 < attempts {
			s.onRetry(s.name, attempt+1, err)
		}
	}
	return lastErr
}

// backoffLocked sleeps the attempt's jittered backoff or returns the
// context error as soon as ctx fires.
func (s *RemoteShard) backoffLocked(ctx context.Context, attempt int) error {
	d := s.retry.base() << (attempt - 1)
	if m := s.retry.max(); d > m || d <= 0 {
		d = m
	}
	d = d/2 + time.Duration(s.rng.Int63n(int64(d/2)+1))
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// attemptLocked is one wire attempt under the mutex, with a cancellation
// watchdog: if the attempt's context fires while f blocks on the wire,
// the connection is closed (unblocking f promptly) and the context error
// is reported instead of the resulting read error. The watchdog is always
// reaped before returning, so a canceled scatter leaks nothing. A
// configured AttemptTimeout bounds just this attempt; the parent context
// error takes precedence when both fire.
func (s *RemoteShard) attemptLocked(ctx context.Context, f func(c *modserver.Client) error) error {
	actx := ctx
	cancel := func() {}
	if s.retry.AttemptTimeout > 0 {
		actx, cancel = context.WithTimeout(ctx, s.retry.AttemptTimeout)
	}
	defer cancel()
	if s.cli == nil {
		conn, err := s.dial(s.addr)
		if err != nil {
			return &ShardUnavailableError{Shard: s.index, Name: s.name, Err: err}
		}
		if s.tlsCfg != nil {
			// A handshake failure is returned raw: a cert mismatch is
			// permanent (not a ShardUnavailableError), while a connection
			// that died mid-handshake is a net.Error and retries anyway.
			conn, err = modserver.TLSClient(conn, s.tlsCfg, s.addr)
			if err != nil {
				return err
			}
		}
		cli := modserver.NewClient(conn)
		if s.token != "" {
			if err := cli.Auth(s.token); err != nil {
				_ = cli.Close()
				return err
			}
		}
		s.cli = cli
	}
	cli := s.cli
	done := make(chan struct{})
	reaped := make(chan struct{})
	go func() {
		defer close(reaped)
		select {
		case <-actx.Done():
			_ = cli.Close()
		case <-done:
		}
	}()
	err := f(cli)
	close(done)
	<-reaped
	if cerr := ctxErr(actx); cerr != nil {
		// The watchdog (or the deadline) poisoned the connection; force a
		// redial next call and surface the cancellation, not the wire
		// noise it caused. The parent context outranks the per-attempt
		// timeout (an expired attempt is retryable; a dead caller is not).
		_ = cli.Close()
		s.cli = nil
		if perr := ctxErr(ctx); perr != nil {
			return perr
		}
		return cerr
	}
	if err != nil {
		// A wire failure leaves the stream unsynchronized; redial next call.
		_ = cli.Close()
		s.cli = nil
	}
	return err
}

// transientErr classifies wire failures worth a retry: the connection
// never opened, died mid-flight, or the attempt timed out — anything
// where a fresh dial plausibly succeeds. (A parent-context expiry never
// reaches this check; attemptLocked returns it as such.)
func transientErr(err error) bool {
	switch {
	case errors.Is(err, ErrShardUnavailable),
		errors.Is(err, syscall.ECONNREFUSED),
		errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.EPIPE),
		errors.Is(err, io.EOF),
		errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, modserver.ErrConnClosed),
		errors.Is(err, context.DeadlineExceeded):
		return true
	}
	var nerr net.Error
	return errors.As(err, &nerr)
}

// deadlineOf converts the ctx deadline to a server-side budget (0 = none).
func deadlineOf(ctx context.Context) time.Duration {
	if d, ok := ctx.Deadline(); ok {
		if left := time.Until(d); left > 0 {
			return left
		}
		return time.Nanosecond // already expired; server rejects immediately
	}
	return 0
}

// Spec implements Shard.
func (s *RemoteShard) Spec(ctx context.Context) (mod.PDFSpec, error) {
	var spec mod.PDFSpec
	err := s.callIdempotent(ctx, func(c *modserver.Client) error {
		var err error
		spec, err = c.Spec()
		return err
	})
	return spec, err
}

// Len implements Shard.
func (s *RemoteShard) Len(ctx context.Context) (int, error) {
	var n int
	err := s.callIdempotent(ctx, func(c *modserver.Client) error {
		var err error
		n, err = c.Count()
		return err
	})
	return n, err
}

// Get implements Shard. A missing OID satisfies errors.Is(err,
// mod.ErrNotFound) across the wire (the server codes the failure).
func (s *RemoteShard) Get(ctx context.Context, oid int64) (*trajectory.Trajectory, []string, error) {
	var (
		tr   *trajectory.Trajectory
		tags []string
	)
	err := s.callIdempotent(ctx, func(c *modserver.Client) error {
		var err error
		tr, tags, err = c.GetTagged(oid)
		return err
	})
	return tr, tags, err
}

// Bounds implements Shard (phase 1 on the wire).
func (s *RemoteShard) Bounds(ctx context.Context, q *trajectory.Trajectory, tb, te float64, k int, where *textidx.Predicate) ([]float64, error) {
	var bounds []float64
	err := s.callIdempotent(ctx, func(c *modserver.Client) error {
		var err error
		bounds, err = c.ShardBounds(q, tb, te, k, where, deadlineOf(ctx))
		return err
	})
	return bounds, err
}

// Survivors implements Shard (phase 2 on the wire).
func (s *RemoteShard) Survivors(ctx context.Context, q *trajectory.Trajectory, tb, te float64, bounds []float64, where *textidx.Predicate) ([]*trajectory.Trajectory, prune.Stats, error) {
	var (
		trs   []*trajectory.Trajectory
		stats prune.Stats
	)
	err := s.callIdempotent(ctx, func(c *modserver.Client) error {
		var err error
		trs, stats, err = c.ShardSurvivors(q, tb, te, bounds, where, deadlineOf(ctx))
		return err
	})
	return trs, stats, err
}

// Refine implements Shard (the distributed-refine phases on the wire).
// The union store ships at most once per connection: the client probes
// the gather ID first and uploads the trajectories, in chunked frames,
// only on a server-side cache miss — so a batch issuing several refines
// against one gather pays the transfer once.
func (s *RemoteShard) Refine(ctx context.Context, gatherID string, union *mod.Store, own []int64, req engine.Request) (engine.Result, error) {
	var res engine.Result
	err := s.callIdempotent(ctx, func(c *modserver.Client) error {
		var cerr error
		res, cerr = c.ShardRefine(gatherID, union.All(), own, req, deadlineOf(ctx))
		return cerr
	})
	if err != nil {
		res.Kind, res.Err = req.Kind, err
	}
	return res, err
}

// OIDs implements Shard (the oids phase on the wire).
func (s *RemoteShard) OIDs(ctx context.Context, where *textidx.Predicate) ([]int64, error) {
	var oids []int64
	err := s.callIdempotent(ctx, func(c *modserver.Client) error {
		var cerr error
		oids, cerr = c.ShardOIDs(where)
		return cerr
	})
	return oids, err
}

// All implements Shard.
func (s *RemoteShard) All(ctx context.Context) ([]*trajectory.Trajectory, error) {
	var trs []*trajectory.Trajectory
	err := s.callIdempotent(ctx, func(c *modserver.Client) error {
		var err error
		trs, err = c.AllTrajectories()
		return err
	})
	return trs, err
}

// Ingest implements Shard (the modserver ingest op on the wire).
func (s *RemoteShard) Ingest(ctx context.Context, updates []mod.Update) ([]mod.Applied, error) {
	var applied []mod.Applied
	err := s.call(ctx, func(c *modserver.Client) error {
		var err error
		applied, err = c.Ingest(updates)
		return err
	})
	return applied, err
}

// Owns implements Shard (the modserver owns op on the wire — one round
// trip for the whole batch).
func (s *RemoteShard) Owns(ctx context.Context, oids []int64) ([]bool, error) {
	var owned []bool
	err := s.callIdempotent(ctx, func(c *modserver.Client) error {
		var err error
		owned, err = c.Owns(oids)
		return err
	})
	return owned, err
}
