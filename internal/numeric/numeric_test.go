package numeric

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func near(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestAdaptiveSimpsonPolynomials(t *testing.T) {
	cases := []struct {
		name string
		f    func(float64) float64
		a, b float64
		want float64
	}{
		{"constant", func(x float64) float64 { return 3 }, 0, 2, 6},
		{"linear", func(x float64) float64 { return x }, 0, 2, 2},
		{"cubic", func(x float64) float64 { return x * x * x }, 0, 1, 0.25},
		{"sin", math.Sin, 0, math.Pi, 2},
		{"exp", math.Exp, 0, 1, math.E - 1},
		{"reversed", func(x float64) float64 { return x }, 2, 0, -2},
		{"empty", func(x float64) float64 { return 1e9 }, 1, 1, 0},
	}
	for _, c := range cases {
		got := AdaptiveSimpson(c.f, c.a, c.b, 1e-10, 30)
		if !near(got, c.want, 1e-8) {
			t.Errorf("%s: got %.12g, want %.12g", c.name, got, c.want)
		}
	}
}

func TestAdaptiveSimpsonKinked(t *testing.T) {
	// |x - 0.3| over [0,1]: integral = 0.5*(0.3^2 + 0.7^2) = 0.29.
	f := func(x float64) float64 { return math.Abs(x - 0.3) }
	got := AdaptiveSimpson(f, 0, 1, 1e-10, 40)
	if !near(got, 0.29, 1e-7) {
		t.Errorf("kinked integral = %.10g, want 0.29", got)
	}
}

func TestGaussLegendre16(t *testing.T) {
	// Exact for polynomial of degree 31.
	f := func(x float64) float64 { return math.Pow(x, 9) }
	got := GaussLegendre16(f, 0, 2)
	want := math.Pow(2, 10) / 10
	if !near(got, want, 1e-9*want) {
		t.Errorf("x^9: got %.12g, want %.12g", got, want)
	}
	// Weights sum to 2 (integral of 1 over [-1,1]).
	var sum float64
	for _, w := range gl16Weights {
		sum += w
	}
	if !near(sum, 2, 1e-12) {
		t.Errorf("weights sum = %.15g", sum)
	}
	// Nodes are symmetric and sorted.
	for i := range gl16Nodes {
		if !near(gl16Nodes[i], -gl16Nodes[len(gl16Nodes)-1-i], 1e-15) {
			t.Errorf("node %d not symmetric", i)
		}
	}
	if !sort.Float64sAreSorted(gl16Nodes) {
		t.Error("nodes not sorted")
	}
}

func TestGaussLegendrePanels(t *testing.T) {
	got := GaussLegendrePanels(math.Sin, 0, math.Pi, 8)
	if !near(got, 2, 1e-12) {
		t.Errorf("sin panels = %.15g", got)
	}
	if got := GaussLegendrePanels(math.Sin, 0, math.Pi, 0); !near(got, 2, 1e-6) {
		t.Errorf("n<1 fallback = %.12g", got)
	}
}

func TestQuadRoots(t *testing.T) {
	cases := []struct {
		name    string
		a, b, c float64
		want    []float64
	}{
		{"two roots", 1, -3, 2, []float64{1, 2}},
		{"double root", 1, -2, 1, []float64{1}},
		{"no real roots", 1, 0, 1, nil},
		{"linear", 0, 2, -4, []float64{2}},
		{"degenerate", 0, 0, 5, nil},
		{"zero constant", 1, -5, 0, []float64{0, 5}},
		{"negative leading", -1, 0, 4, []float64{-2, 2}},
	}
	for _, c := range cases {
		got := QuadRoots(c.a, c.b, c.c)
		if len(got) != len(c.want) {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
			continue
		}
		for i := range got {
			if !near(got[i], c.want[i], 1e-9) {
				t.Errorf("%s: root %d = %.12g, want %.12g", c.name, i, got[i], c.want[i])
			}
		}
	}
}

// Property: QuadRoots returns values that actually satisfy the equation, in
// increasing order.
func TestQuadRootsProperty(t *testing.T) {
	f := func(a, b, c float64) bool {
		a = math.Mod(a, 100)
		b = math.Mod(b, 100)
		c = math.Mod(c, 100)
		roots := QuadRoots(a, b, c)
		prev := math.Inf(-1)
		for _, r := range roots {
			if r < prev {
				return false
			}
			prev = r
			res := a*r*r + b*r + c
			scale := math.Abs(a*r*r) + math.Abs(b*r) + math.Abs(c) + 1
			if math.Abs(res) > 1e-6*scale {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(17))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuadRootsStability(t *testing.T) {
	// b >> a,c: the naive formula loses the small root; citardauq keeps it.
	roots := QuadRoots(1, -1e8, 1)
	if len(roots) != 2 {
		t.Fatalf("got %v", roots)
	}
	if !near(roots[0], 1e-8, 1e-14) {
		t.Errorf("small root = %.17g, want 1e-8", roots[0])
	}
}

func TestFindRoot(t *testing.T) {
	root, err := FindRoot(math.Cos, 0, 3, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !near(root, math.Pi/2, 1e-10) {
		t.Errorf("cos root = %.15g", root)
	}
	// Endpoint roots.
	if r, err := FindRoot(func(x float64) float64 { return x }, 0, 1, 1e-12); err != nil || r != 0 {
		t.Errorf("endpoint a: %v %v", r, err)
	}
	if r, err := FindRoot(func(x float64) float64 { return x - 1 }, 0, 1, 1e-12); err != nil || r != 1 {
		t.Errorf("endpoint b: %v %v", r, err)
	}
	// No bracket.
	if _, err := FindRoot(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-12); err != ErrNoBracket {
		t.Errorf("expected ErrNoBracket, got %v", err)
	}
}

func TestFindRootSteep(t *testing.T) {
	f := func(x float64) float64 { return math.Tanh(50*(x-0.123)) + 1e-3 }
	root, err := FindRoot(f, 0, 1, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f(root)) > 1e-8 {
		t.Errorf("steep root residual = %g at x=%g", f(root), root)
	}
}

func TestMinimizeGolden(t *testing.T) {
	x, fx := MinimizeGolden(func(x float64) float64 { return (x - 0.7) * (x - 0.7) }, 0, 2, 1e-10)
	if !near(x, 0.7, 1e-8) || fx > 1e-15 {
		t.Errorf("min at %.12g (f=%g)", x, fx)
	}
	// Monotone function: minimum at an endpoint.
	x, _ = MinimizeGolden(func(x float64) float64 { return x }, 1, 5, 1e-10)
	if !near(x, 1, 1e-8) {
		t.Errorf("monotone min at %.12g, want 1", x)
	}
}

func TestDiff(t *testing.T) {
	got := Diff(math.Sin, 1, 1e-6)
	if !near(got, math.Cos(1), 1e-9) {
		t.Errorf("d/dx sin(1) = %.12g", got)
	}
}

func TestTable(t *testing.T) {
	if _, err := NewTable([]float64{0}, []float64{1}); err != ErrBadTable {
		t.Errorf("short table: %v", err)
	}
	if _, err := NewTable([]float64{0, 0}, []float64{1, 2}); err != ErrBadTable {
		t.Errorf("non-increasing table: %v", err)
	}
	if _, err := NewTable([]float64{0, 1}, []float64{1}); err != ErrBadTable {
		t.Errorf("mismatched lengths: %v", err)
	}
	tab, err := NewTable([]float64{0, 1, 3}, []float64{0, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 1}, {1, 2}, {2, 2}, {3, 2}, {9, 2},
	}
	for _, c := range cases {
		if got := tab.At(c.x); !near(got, c.want, 1e-12) {
			t.Errorf("At(%g) = %g, want %g", c.x, got, c.want)
		}
	}
	lo, hi := tab.Domain()
	if lo != 0 || hi != 3 {
		t.Errorf("Domain = %g,%g", lo, hi)
	}
	if tab.Len() != 3 {
		t.Errorf("Len = %d", tab.Len())
	}
	if got := tab.Integral(); !near(got, 1+4, 1e-12) {
		t.Errorf("Integral = %g, want 5", got)
	}
	tab.Scale(2)
	if got := tab.Integral(); !near(got, 10, 1e-12) {
		t.Errorf("scaled Integral = %g, want 10", got)
	}
}

// Property: table interpolation is exact at the knots and bounded by the
// local ordinates between them.
func TestTableInterpolationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		x := rng.Float64()
		for i := 0; i < n; i++ {
			x += 0.01 + rng.Float64()
			xs[i] = x
			ys[i] = rng.NormFloat64()
		}
		tab, err := NewTable(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		for i := range xs {
			if got := tab.At(xs[i]); !near(got, ys[i], 1e-9) {
				t.Fatalf("knot %d: At=%g want %g", i, got, ys[i])
			}
		}
		for i := 1; i < n; i++ {
			mid := 0.5 * (xs[i-1] + xs[i])
			v := tab.At(mid)
			lo := math.Min(ys[i-1], ys[i])
			hi := math.Max(ys[i-1], ys[i])
			if v < lo-1e-9 || v > hi+1e-9 {
				t.Fatalf("midpoint out of bounds: %g not in [%g,%g]", v, lo, hi)
			}
		}
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if len(xs) != 5 {
		t.Fatalf("len = %d", len(xs))
	}
	for i := range xs {
		if !near(xs[i], want[i], 1e-12) {
			t.Errorf("xs[%d] = %g", i, xs[i])
		}
	}
	if got := Linspace(3, 9, 1); len(got) != 1 || got[0] != 3 {
		t.Errorf("n=1: %v", got)
	}
	xs = Linspace(-2, 7, 1000)
	if xs[len(xs)-1] != 7 {
		t.Errorf("endpoint drift: %g", xs[len(xs)-1])
	}
}
