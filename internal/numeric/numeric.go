// Package numeric provides the numerical-analysis substrate used to evaluate
// the paper's probability integrals (Eq. 3-6) and to locate critical time
// points: adaptive Simpson and fixed-order Gauss-Legendre quadrature,
// closed-form quadratic solving, bracketed root refinement (Brent), scalar
// minimization (golden section), and linear-interpolation tables.
package numeric

import (
	"errors"
	"math"
	"sort"
)

// ErrNoBracket is returned by FindRoot when the supplied interval does not
// bracket a sign change.
var ErrNoBracket = errors.New("numeric: interval does not bracket a root")

// ErrBadTable is returned when constructing an interpolation table from
// invalid data.
var ErrBadTable = errors.New("numeric: interpolation table needs >= 2 strictly increasing x values")

// AdaptiveSimpson integrates f over [a, b] with the given absolute error
// tolerance using adaptive Simpson quadrature with Richardson correction.
// maxDepth bounds the recursion (30 is ample for all uses in this module).
func AdaptiveSimpson(f func(float64) float64, a, b, tol float64, maxDepth int) float64 {
	if a == b {
		return 0
	}
	if b < a {
		return -AdaptiveSimpson(f, b, a, tol, maxDepth)
	}
	fa, fb := f(a), f(b)
	m := 0.5 * (a + b)
	fm := f(m)
	whole := simpson(a, b, fa, fm, fb)
	return adaptiveAux(f, a, b, fa, fm, fb, whole, tol, maxDepth)
}

func simpson(a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

func adaptiveAux(f func(float64) float64, a, b, fa, fm, fb, whole, tol float64, depth int) float64 {
	m := 0.5 * (a + b)
	lm, rm := 0.5*(a+m), 0.5*(m+b)
	flm, frm := f(lm), f(rm)
	left := simpson(a, m, fa, flm, fm)
	right := simpson(m, b, fm, frm, fb)
	if depth <= 0 || math.Abs(left+right-whole) <= 15*tol {
		return left + right + (left+right-whole)/15
	}
	return adaptiveAux(f, a, m, fa, flm, fm, left, tol/2, depth-1) +
		adaptiveAux(f, m, b, fm, frm, fb, right, tol/2, depth-1)
}

// gauss-Legendre nodes and weights on [-1, 1], order 16. Computed once from
// standard tables; symmetric halves stored in full for simplicity.
var gl16Nodes = []float64{
	-0.9894009349916499, -0.9445750230732326, -0.8656312023878318, -0.7554044083550030,
	-0.6178762444026438, -0.4580167776572274, -0.2816035507792589, -0.0950125098376374,
	0.0950125098376374, 0.2816035507792589, 0.4580167776572274, 0.6178762444026438,
	0.7554044083550030, 0.8656312023878318, 0.9445750230732326, 0.9894009349916499,
}

var gl16Weights = []float64{
	0.0271524594117541, 0.0622535239386479, 0.0951585116824928, 0.1246289712555339,
	0.1495959888165767, 0.1691565193950025, 0.1826034150449236, 0.1894506104550685,
	0.1894506104550685, 0.1826034150449236, 0.1691565193950025, 0.1495959888165767,
	0.1246289712555339, 0.0951585116824928, 0.0622535239386479, 0.0271524594117541,
}

// GaussLegendre16 integrates f over [a, b] with a single 16-point
// Gauss-Legendre rule. Exact for polynomials up to degree 31; very fast for
// smooth integrands over short panels.
func GaussLegendre16(f func(float64) float64, a, b float64) float64 {
	c := 0.5 * (a + b)
	h := 0.5 * (b - a)
	var s float64
	for i, x := range gl16Nodes {
		s += gl16Weights[i] * f(c+h*x)
	}
	return s * h
}

// GaussLegendrePanels integrates f over [a, b] split into n equal panels of
// 16-point Gauss-Legendre each. Use for integrands with mild kinks (the
// within-distance CDFs are piecewise smooth).
func GaussLegendrePanels(f func(float64) float64, a, b float64, n int) float64 {
	if n < 1 {
		n = 1
	}
	h := (b - a) / float64(n)
	var s float64
	for i := 0; i < n; i++ {
		s += GaussLegendre16(f, a+float64(i)*h, a+float64(i+1)*h)
	}
	return s
}

// QuadRoots returns the real roots of a·x² + b·x + c = 0 in increasing
// order. A linear equation (a == 0) yields at most one root; a degenerate
// identity (a == b == 0) yields none regardless of c. The computation uses
// the numerically stable citardauq form for the second root.
func QuadRoots(a, b, c float64) []float64 {
	const tiny = 1e-300
	if math.Abs(a) < tiny {
		if math.Abs(b) < tiny {
			return nil
		}
		return []float64{-c / b}
	}
	disc := b*b - 4*a*c
	if disc < 0 {
		return nil
	}
	if disc == 0 {
		return []float64{-b / (2 * a)}
	}
	sq := math.Sqrt(disc)
	var q float64
	if b >= 0 {
		q = -0.5 * (b + sq)
	} else {
		q = -0.5 * (b - sq)
	}
	r1 := q / a
	var r2 float64
	if q != 0 {
		r2 = c / q
	} else {
		r2 = 0
	}
	if r1 > r2 {
		r1, r2 = r2, r1
	}
	return []float64{r1, r2}
}

// FindRoot refines a root of f inside [a, b] to the given x tolerance using
// Brent's method. The interval must bracket a sign change, i.e.
// f(a)·f(b) <= 0; otherwise ErrNoBracket is returned.
func FindRoot(f func(float64) float64, a, b, xtol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if fa*fb > 0 {
		return 0, ErrNoBracket
	}
	// Brent's method, after Press et al.
	c, fc := a, fa
	d, e := b-a, b-a
	for iter := 0; iter < 200; iter++ {
		if fb*fc > 0 {
			c, fc = a, fa
			d = b - a
			e = d
		}
		if math.Abs(fc) < math.Abs(fb) {
			a, b, c = b, c, b
			fa, fb, fc = fb, fc, fb
		}
		tol1 := 2*math.SmallestNonzeroFloat64*math.Abs(b) + 0.5*xtol
		xm := 0.5 * (c - b)
		if math.Abs(xm) <= tol1 || fb == 0 {
			return b, nil
		}
		if math.Abs(e) >= tol1 && math.Abs(fa) > math.Abs(fb) {
			s := fb / fa
			var p, q float64
			if a == c {
				p = 2 * xm * s
				q = 1 - s
			} else {
				q = fa / fc
				r := fb / fc
				p = s * (2*xm*q*(q-r) - (b-a)*(r-1))
				q = (q - 1) * (r - 1) * (s - 1)
			}
			if p > 0 {
				q = -q
			}
			p = math.Abs(p)
			min1 := 3*xm*q - math.Abs(tol1*q)
			min2 := math.Abs(e * q)
			if 2*p < math.Min(min1, min2) {
				e = d
				d = p / q
			} else {
				d = xm
				e = d
			}
		} else {
			d = xm
			e = d
		}
		a, fa = b, fb
		if math.Abs(d) > tol1 {
			b += d
		} else {
			b += math.Copysign(tol1, xm)
		}
		fb = f(b)
	}
	return b, nil
}

// MinimizeGolden locates a local minimum of f on [a, b] by golden-section
// search with the given x tolerance. For the short, piecewise-smooth
// distance-difference curves in this module the interval minimum is what we
// need; callers subdivide at breakpoints first.
func MinimizeGolden(f func(float64) float64, a, b, xtol float64) (x, fx float64) {
	const invPhi = 0.6180339887498949 // (sqrt(5)-1)/2
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for b-a > xtol {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		}
	}
	x = 0.5 * (a + b)
	return x, f(x)
}

// Diff returns a central-difference approximation of f'(x) with step h.
func Diff(f func(float64) float64, x, h float64) float64 {
	return (f(x+h) - f(x-h)) / (2 * h)
}

// Table is a piecewise-linear interpolation table y(x) over strictly
// increasing abscissae. It is the representation used for numerically
// convolved radial pdfs.
type Table struct {
	xs, ys []float64
}

// NewTable builds a table from parallel slices. The xs must be strictly
// increasing and len >= 2. The slices are copied.
func NewTable(xs, ys []float64) (*Table, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return nil, ErrBadTable
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return nil, ErrBadTable
		}
	}
	t := &Table{xs: append([]float64(nil), xs...), ys: append([]float64(nil), ys...)}
	return t, nil
}

// At evaluates the table at x, clamping outside the domain to the end values.
func (t *Table) At(x float64) float64 {
	n := len(t.xs)
	if x <= t.xs[0] {
		return t.ys[0]
	}
	if x >= t.xs[n-1] {
		return t.ys[n-1]
	}
	i := sort.SearchFloat64s(t.xs, x)
	// xs[i-1] < x <= xs[i]
	x0, x1 := t.xs[i-1], t.xs[i]
	y0, y1 := t.ys[i-1], t.ys[i]
	return y0 + (y1-y0)*(x-x0)/(x1-x0)
}

// Domain returns the first and last abscissa.
func (t *Table) Domain() (lo, hi float64) { return t.xs[0], t.xs[len(t.xs)-1] }

// Len returns the number of samples.
func (t *Table) Len() int { return len(t.xs) }

// Integral returns the exact integral of the piecewise-linear interpolant
// over its whole domain (trapezoid sum).
func (t *Table) Integral() float64 {
	var s float64
	for i := 1; i < len(t.xs); i++ {
		s += 0.5 * (t.ys[i] + t.ys[i-1]) * (t.xs[i] - t.xs[i-1])
	}
	return s
}

// Scale multiplies all ordinates by k in place and returns the table.
func (t *Table) Scale(k float64) *Table {
	for i := range t.ys {
		t.ys[i] *= k
	}
	return t
}

// Linspace returns n evenly spaced values from a to b inclusive (n >= 2).
func Linspace(a, b float64, n int) []float64 {
	if n < 2 {
		return []float64{a}
	}
	out := make([]float64, n)
	step := (b - a) / float64(n-1)
	for i := range out {
		out[i] = a + float64(i)*step
	}
	out[n-1] = b
	return out
}
