package simtest

// The churn matrix: scripted retirement/re-insertion churn layered on
// the revision/flip/insert script, plus targeted injections — retiring a
// standing query's own target, unsubscribing mid-run — across every
// serving topology of the main gate. After every batch each surviving
// subscription stays byte-identical to a fresh engine on the truth;
// subscriptions standing on a retired OID answer the ErrUnknownOID
// identity on every topology until the re-insert revives them.

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/engine"
	"repro/internal/mod"
)

func TestChurnMatrixByteIdentity(t *testing.T) {
	const seed = 3011
	cases := []struct {
		name       string
		shards     int
		predictive bool
	}{
		{"single", 0, false},
		{"single-predictive", 0, true},
		{"shard2", 2, false},
		{"shard4", 4, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(seed)
			cfg.Retire = 2
			w, err := NewWorld(cfg)
			if err != nil {
				t.Fatal(err)
			}
			hub := topology(t, w, tc.shards, tc.predictive)
			ctx := context.Background()

			reqs := w.Requests()
			subIDs := make([]int64, len(reqs))
			for i, req := range reqs {
				id, _, err := hub.Subscribe(ctx, req)
				if err != nil {
					t.Fatalf("subscribe %d (%s): %v", i, req.Kind, err)
				}
				subIDs[i] = id
			}

			// The injection victim: o(4) is both a target (UQ11 rows) and a
			// query OID (the short-window UQ31 rows), so one retirement must
			// flip every subscription standing on it, in either role.
			victim := w.initial[4].OID
			touchesVictim := func(req engine.Request) bool {
				return req.QueryOID == victim || req.OID == victim
			}
			victimPlan, err := w.mirror.Get(victim)
			if err != nil {
				t.Fatal(err)
			}
			victimTags := append([]string(nil), w.mirror.Tags(victim)...)

			dropped := -1       // index unsubscribed mid-run
			victimDown := false // between the inject-retire and the revival
			ingest := func(step int, batch []mod.Update) {
				t.Helper()
				_, events, err := hub.Ingest(ctx, batch)
				if err != nil {
					t.Fatalf("step %d: ingest: %v", step, err)
				}
				for _, ev := range events {
					if dropped >= 0 && ev.SubID == subIDs[dropped] {
						t.Fatalf("step %d: event for unsubscribed sub %d: %+v", step, subIDs[dropped], ev)
					}
				}
				snap, err := w.SnapshotStore()
				if err != nil {
					t.Fatal(err)
				}
				fresh := engine.New(0)
				for i, id := range subIDs {
					if i == dropped {
						if _, err := hub.Answer(id); err == nil {
							t.Fatalf("step %d: unsubscribed sub %d still answers", step, i)
						}
						continue
					}
					live, err := hub.Answer(id)
					if err != nil {
						t.Fatalf("step %d sub %d: %v", step, i, err)
					}
					if victimDown && touchesVictim(reqs[i]) {
						// Retired query/target: the ErrUnknownOID identity, on
						// every topology.
						if !errors.Is(live.Err, engine.ErrUnknownOID) {
							t.Fatalf("step %d sub %d (%s): err = %v, want ErrUnknownOID",
								step, i, reqs[i].Kind, live.Err)
						}
						continue
					}
					want, err := fresh.Do(ctx, snap, reqs[i])
					if err != nil {
						t.Fatalf("step %d sub %d (%s): fresh: %v", step, i, reqs[i].Kind, err)
					}
					got, wantB := answerBytes(t, live), answerBytes(t, want)
					if string(got) != string(wantB) {
						t.Fatalf("step %d sub %d (%s):\n live %s\nfresh %s",
							step, i, reqs[i].Kind, got, wantB)
					}
				}
			}

			retires := 0
			for step := 0; step < cfg.Steps; step++ {
				batch, err := w.Step()
				if err != nil {
					t.Fatal(err)
				}
				for _, u := range batch {
					if u.Retire {
						retires++
					}
				}
				ingest(step, batch)

				switch step {
				case 2:
					// Retire the standing victim out from under its queries.
					kill := []mod.Update{{OID: victim, Retire: true}}
					if err := w.Inject(kill); err != nil {
						t.Fatal(err)
					}
					victimDown = true
					ingest(step, kill)
				case 3:
					// Unsubscribe mid-run; later batches must neither emit its
					// events nor keep answering for it.
					dropped = 2
					if !hub.Unsubscribe(subIDs[dropped]) {
						t.Fatal("unsubscribe failed")
					}
				case 4:
					// Revive the victim under the same OID: every standing
					// subscription returns to byte identity.
					tags := append([]string(nil), victimTags...)
					revive := []mod.Update{{OID: victim, Verts: victimPlan.Verts, Tags: &tags}}
					if err := w.Inject(revive); err != nil {
						t.Fatal(err)
					}
					victimDown = false
					ingest(step, revive)
				}
			}
			if retires == 0 {
				t.Fatal("churn script produced no retirements")
			}
			stats := hub.Stats()
			if stats.Evals == 0 || stats.Skips == 0 {
				t.Fatalf("degenerate churn run: stats = %+v", stats)
			}
			t.Logf("%s: %d scripted retires, stats %+v", tc.name, retires, stats)
		})
	}
}

// TestChurnDeterminism pins the churn script: one seed replays the
// identical retire/re-insert schedule; different seeds diverge; the
// script always contains both retirements and same-OID re-entries; and
// retirement never touches a protected (standing-request) OID.
func TestChurnDeterminism(t *testing.T) {
	dump := func(seed int64) ([][]mod.Update, *World) {
		cfg := DefaultConfig(seed)
		cfg.Retire = 2
		w, err := NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var out [][]mod.Update
		for i := 0; i < cfg.Steps; i++ {
			batch, err := w.Step()
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, batch)
		}
		return out, w
	}
	encode := func(b [][]mod.Update) string {
		s, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		return string(s)
	}
	a, w := dump(7)
	b, _ := dump(7)
	if encode(a) != encode(b) {
		t.Fatal("same seed produced different churn scripts")
	}
	c, _ := dump(8)
	if encode(a) == encode(c) {
		t.Fatal("different seeds produced identical churn scripts")
	}

	retired, reentered := map[int64]int{}, 0
	for _, batch := range a {
		for _, u := range batch {
			if u.Retire {
				if w.protected[u.OID] {
					t.Fatalf("script retired protected OID %d", u.OID)
				}
				retired[u.OID]++
			} else if retired[u.OID] > 0 && len(u.Verts) > 0 {
				reentered++
			}
		}
	}
	if len(retired) == 0 || reentered == 0 {
		t.Fatalf("degenerate churn script: %d retired OIDs, %d re-entries", len(retired), reentered)
	}
}
