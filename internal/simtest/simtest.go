// Package simtest is a deterministic simulation harness for the live
// ingestion + continuous-query stack: a seeded step-clock world whose
// fleet is generated once up front, then driven through scripted update
// batches — mid-plan route revisions anchored at each object's current
// position, plus a few objects held out and inserted mid-run. The world
// keeps a mirror store of the truth, so after every step a test can
// compare any live subscription's answer against a fresh engine run on a
// snapshot — the byte-identity gate of the continuous layer — and the
// benchmark harness can replay the identical script against different
// serving topologies.
//
// Everything is deterministic in Config.Seed: the same seed yields the
// same fleet, the same revision schedule, and the same update bytes, so
// single-engine, sharded, and predictive runs can be compared event for
// event.
package simtest

import (
	"fmt"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/mod"
	"repro/internal/textidx"
	"repro/internal/trajectory"
	"repro/internal/workload"
)

// Span is the fleet plan horizon in minutes (the workload default: every
// plan covers [0, Span]).
const Span = 60.0

// Config sizes a world. The zero value is unusable; see DefaultConfig.
type Config struct {
	Seed    int64
	N       int     // initial fleet size
	Held    int     // objects held out and inserted mid-run
	R       float64 // shared uncertainty radius
	Steps   int     // scripted steps
	PerStep int     // plan revisions per step
	Retire  int     // scripted retirements per step (0 = no churn)
	Protect int     // OID prefix the churn never retires (0 = the 9 Requests uses)
}

// DefaultConfig returns a small, fast world.
func DefaultConfig(seed int64) Config {
	return Config{Seed: seed, N: 60, Held: 4, R: 0.5, Steps: 8, PerStep: 6}
}

// World is the step-clock simulation state.
type World struct {
	cfg     Config
	rng     *rand.Rand
	churn   *rand.Rand // retirement picks: a derived stream, so Retire>0 leaves the motion script untouched
	now     float64
	delta   float64
	step    int
	initial []*trajectory.Trajectory
	held    []*trajectory.Trajectory
	mirror  *mod.Store // the truth: every emitted update applied in order

	// Retirement churn state: OIDs the script retired, queued to re-enter
	// two steps later with the plan and tags they left with, and the
	// standing requests' query/target OIDs the script never retires (the
	// identity gates retire those deliberately, via Inject).
	pending   []reinsert
	protected map[int64]bool
}

// reinsert is a retired object waiting out its gap before re-entering.
type reinsert struct {
	oid   int64
	verts []trajectory.Vertex
	tags  []string
	due   int
}

// NewWorld builds a world: N+Held plans from the paper's workload
// generator, the first N active, the rest held for mid-run inserts.
func NewWorld(cfg Config) (*World, error) {
	if cfg.N < 10 || cfg.Steps < 1 || cfg.PerStep < 0 || cfg.R <= 0 {
		return nil, fmt.Errorf("simtest: bad config %+v", cfg)
	}
	trs, err := workload.Generate(workload.DefaultConfig(cfg.Seed), cfg.N+cfg.Held)
	if err != nil {
		return nil, err
	}
	mirror, err := mod.NewUniformStore(cfg.R)
	if err != nil {
		return nil, err
	}
	if err := mirror.InsertAll(trs[:cfg.N]); err != nil {
		return nil, err
	}
	for _, tr := range trs[:cfg.N] {
		if tags := initialTags(tr.OID); tags != nil {
			if err := mirror.SetTags(tr.OID, tags); err != nil {
				return nil, err
			}
		}
	}
	guard := cfg.Protect
	if guard < 9 { // at minimum the OIDs Requests() stands queries on
		guard = 9
	}
	protected := make(map[int64]bool)
	for i := 0; i < guard && i < cfg.N; i++ {
		protected[trs[i].OID] = true
	}
	return &World{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed ^ 0x5eed)),
		churn:     rand.New(rand.NewSource(cfg.Seed ^ 0x4e71)),
		protected: protected,
		// The clock starts late enough that every subscription window
		// ending before the first revision exercises permanent skips, and
		// steps never push revisions past the horizon.
		now:     8,
		delta:   44 / float64(cfg.Steps),
		initial: trs[:cfg.N],
		held:    trs[cfg.N:],
		mirror:  mirror,
	}, nil
}

// initialTags is the deterministic starting tag assignment (by OID, so
// Requests can pick matching and non-matching targets up front).
func initialTags(oid int64) []string {
	var tags []string
	if oid%2 == 0 {
		tags = append(tags, "available")
	}
	if oid%3 == 0 {
		tags = append(tags, "ev")
	}
	return tags
}

// InitialStore returns a fresh store holding the initial fleet with its
// starting tags — trajectory values are shared (they are immutable),
// stores are not.
func (w *World) InitialStore() (*mod.Store, error) {
	st, err := mod.NewUniformStore(w.cfg.R)
	if err != nil {
		return nil, err
	}
	if err := st.InsertAll(w.initial); err != nil {
		return nil, err
	}
	for _, tr := range w.initial {
		if tags := initialTags(tr.OID); tags != nil {
			if err := st.SetTags(tr.OID, tags); err != nil {
				return nil, err
			}
		}
	}
	return st, nil
}

// SnapshotStore returns a fresh store with the world's current truth,
// tag sets included.
func (w *World) SnapshotStore() (*mod.Store, error) {
	st, err := mod.NewUniformStore(w.cfg.R)
	if err != nil {
		return nil, err
	}
	trs, tags, _ := w.mirror.AllWithTags()
	if err := st.InsertAll(trs); err != nil {
		return nil, err
	}
	for _, tr := range trs {
		if ts := tags[tr.OID]; len(ts) > 0 {
			if err := st.SetTags(tr.OID, ts); err != nil {
				return nil, err
			}
		}
	}
	return st, nil
}

// Now returns the step clock.
func (w *World) Now() float64 { return w.now }

// ProtectedOIDs returns the churn-immune OID prefix in generation order
// — the OIDs a harness can stand queries on without racing the scripted
// retirements.
func (w *World) ProtectedOIDs() []int64 {
	out := make([]int64, 0, len(w.protected))
	for _, tr := range w.initial {
		if w.protected[tr.OID] {
			out = append(out, tr.OID)
		}
		if len(out) == len(w.protected) {
			break
		}
	}
	return out
}

// Step advances the clock and returns the next scripted update batch,
// already applied to the world's mirror. Batches contain PerStep plan
// revisions anchored at each chosen object's current expected position
// (rewriting its route from the clock to the horizon) and, at two
// scripted points of the run, the insertion of a held-out object's full
// plan.
func (w *World) Step() ([]mod.Update, error) {
	return w.StepSized(w.cfg.PerStep, 2, w.cfg.Retire)
}

// StepSized is Step with caller-chosen batch sizing: revisions plan
// rewrites, flips tag flips, and retires retirements this tick. It is
// the hook an open-loop load generator uses to push Poisson-drawn
// arrival counts through the same scripted world (the cityload harness
// draws the three counts from its arrival streams each tick).
func (w *World) StepSized(revisions, flips, retires int) ([]mod.Update, error) {
	w.step++
	w.now += w.delta
	var batch []mod.Update
	// Re-entries first: a retired object whose gap has elapsed comes back
	// under its old OID with the exact plan and tags it left with — the
	// same-OID second life that TTL-driven retirement produces.
	for len(w.pending) > 0 && w.pending[0].due <= w.step {
		p := w.pending[0]
		w.pending = w.pending[1:]
		tags := append([]string(nil), p.tags...)
		batch = append(batch, mod.Update{OID: p.oid, Verts: p.verts, Tags: &tags})
	}
	oids := w.mirror.OIDs()
	for i := 0; i < revisions && len(oids) > 0; i++ {
		oid := oids[w.rng.Intn(len(oids))]
		tr, err := w.mirror.Get(oid)
		if err != nil {
			return nil, err
		}
		pos := tr.At(w.now)
		// Route revision: anchored at the current position, one random
		// waypoint midway, ending at the horizon — the same speeds stay
		// plausible, and coverage of [0, Span] is preserved.
		mid := trajectory.Vertex{
			X: clamp(pos.X+(w.rng.Float64()-0.5)*16, 0, 40),
			Y: clamp(pos.Y+(w.rng.Float64()-0.5)*16, 0, 40),
			T: (w.now + Span) / 2,
		}
		end := trajectory.Vertex{
			X: clamp(mid.X+(w.rng.Float64()-0.5)*16, 0, 40),
			Y: clamp(mid.Y+(w.rng.Float64()-0.5)*16, 0, 40),
			T: Span,
		}
		batch = append(batch, mod.Update{OID: oid, Verts: []trajectory.Vertex{
			{X: pos.X, Y: pos.Y, T: w.now}, mid, end,
		}})
	}
	// Pure tag flips: a couple of objects per step change their tag set
	// with no motion change, driving the continuous layer's predicate
	// dirty rule (ChangedFrom = +Inf on the applied outcome) and, on the
	// snapshot side, the sub-MOD membership the filtered subscriptions
	// answer over.
	tagSets := [][]string{{}, {"available"}, {"ev"}, {"available", "ev"}}
	for i := 0; i < flips && len(oids) > 0; i++ {
		oid := oids[w.rng.Intn(len(oids))]
		tags := append([]string(nil), tagSets[w.rng.Intn(len(tagSets))]...)
		batch = append(batch, mod.Update{OID: oid, Tags: &tags})
	}
	if len(w.held) > 0 && (w.step == w.cfg.Steps/3 || w.step == 2*w.cfg.Steps/3) {
		tr := w.held[0]
		w.held = w.held[1:]
		// Held-out inserts arrive already tagged: insert+tags in one update.
		tags := []string{"available"}
		batch = append(batch, mod.Update{OID: tr.OID, Verts: tr.Verts, Tags: &tags})
	}
	// Retirements close the batch (so same-batch revisions and flips on a
	// victim still hit a live object): Retire objects leave the fleet,
	// chosen from a derived stream that never touches the standing
	// requests' query/target OIDs, and queue for re-entry two steps out.
	if retires > 0 {
		victims := make(map[int64]bool)
		for i := 0; i < retires && len(oids) > 0; i++ {
			oid, ok := int64(0), false
			for tries := 0; tries < 64; tries++ {
				oid = oids[w.churn.Intn(len(oids))]
				if !w.protected[oid] && !victims[oid] {
					ok = true
					break
				}
			}
			if !ok {
				break
			}
			victims[oid] = true
			tr, err := w.mirror.Get(oid)
			if err != nil {
				return nil, err
			}
			w.pending = append(w.pending, reinsert{
				oid:   oid,
				verts: tr.Verts,
				tags:  append([]string(nil), w.mirror.Tags(oid)...),
				due:   w.step + 2,
			})
			batch = append(batch, mod.Update{OID: oid, Retire: true})
		}
	}
	if _, err := w.mirror.ApplyUpdates(batch); err != nil {
		return nil, err
	}
	return batch, nil
}

// Inject applies an out-of-script batch to the world's truth, so a
// caller can drive targeted churn — retiring a standing query's own OID,
// TTL sweeps — through the same mirror the identity gates compare
// against. The caller feeds the identical batch to the hub under test.
func (w *World) Inject(batch []mod.Update) error {
	_, err := w.mirror.ApplyUpdates(batch)
	return err
}

// Requests returns the standing subscription mix the simulation suite
// registers: whole-MOD retrievals at ranks 1 and 2, fraction variants,
// single-object predicates (including a fixed-time instant and a
// threshold query), one window that ends before the first revision —
// the permanently-clean subscription the dirty set must never touch —
// and a spatio-textual block whose tag predicates track the scripted
// flips (a short filtered window too: tags are atemporal, so a flip must
// dirty it even though its window precedes every motion revision).
func (w *World) Requests() []engine.Request {
	o := func(i int) int64 { return w.initial[i%len(w.initial)].OID }
	avail := &textidx.Predicate{All: []string{"available"}}
	anyOf := &textidx.Predicate{Any: []string{"available", "ev"}}
	notEV := &textidx.Predicate{All: []string{"available"}, Not: []string{"ev"}}
	return []engine.Request{
		{Kind: engine.KindUQ31, QueryOID: o(0), Tb: 0, Te: Span},
		{Kind: engine.KindUQ41, QueryOID: o(1), Tb: 5, Te: 55, K: 2},
		{Kind: engine.KindUQ32, QueryOID: o(2), Tb: 0, Te: Span},
		{Kind: engine.KindUQ33, QueryOID: o(3), Tb: 10, Te: 50, X: 0.3},
		{Kind: engine.KindUQ11, QueryOID: o(0), Tb: 0, Te: Span, OID: o(4)},
		{Kind: engine.KindUQ21, QueryOID: o(1), Tb: 0, Te: 40, OID: o(5), K: 2},
		{Kind: engine.KindUQ13, QueryOID: o(2), Tb: 0, Te: 30, OID: o(6), X: 0.2},
		{Kind: engine.KindNNAt, QueryOID: o(3), Tb: 0, Te: Span, OID: o(7), T: 20},
		{Kind: engine.KindThreshold, QueryOID: o(5), Tb: 0, Te: 20, OID: o(8), P: 0.4, X: 0.3},
		{Kind: engine.KindUQ31, QueryOID: o(4), Tb: 0, Te: 7}, // ends before any revision
		// Spatio-textual rows.
		{Kind: engine.KindUQ31, QueryOID: o(0), Tb: 0, Te: Span, Where: avail},
		{Kind: engine.KindUQ41, QueryOID: o(1), Tb: 5, Te: 55, K: 2, Where: anyOf},
		{Kind: engine.KindUQ32, QueryOID: o(2), Tb: 0, Te: Span, Where: notEV},
		{Kind: engine.KindUQ11, QueryOID: o(0), Tb: 0, Te: Span, OID: o(4), Where: avail},
		{Kind: engine.KindThreshold, QueryOID: o(5), Tb: 0, Te: 20, OID: o(8), P: 0.4, X: 0.3, Where: anyOf},
		{Kind: engine.KindUQ31, QueryOID: o(4), Tb: 0, Te: 7, Where: avail}, // flips still dirty it
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
