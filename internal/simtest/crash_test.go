package simtest

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/cluster"
	"repro/internal/continuous"
	"repro/internal/engine"
	"repro/internal/mod"
	"repro/internal/wal"
)

// storeBytes renders a store in its canonical binary form — the
// byte-identity currency of crash recovery.
func storeBytes(t *testing.T, st *mod.Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := st.SaveBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// hubOver mounts the serving topology under test on an existing store.
func hubOver(t *testing.T, store *mod.Store, shards int, predictive bool) *continuous.Hub {
	t.Helper()
	if predictive {
		if err := store.EnablePredictive(0, Span); err != nil {
			t.Fatal(err)
		}
	}
	if shards == 0 {
		return continuous.NewEngineHub(store, engine.New(0))
	}
	router, err := cluster.NewLocalCluster(store, shards, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return cluster.NewRouterHub(router)
}

// TestCrashRecoveryByteIdentity is the durability gate: a seeded world
// drives scripted update batches through a WAL exactly as a journaled
// server would (Append, then AfterApply for the snapshot policy), and
// EVERY step is a kill point — twice. Immediately after Append (the
// snapshot may be stale) and again after AfterApply, an independent
// wal.Recover reads the directory exactly as a restarted process would,
// and the recovered store must be byte-identical to the world's mirror.
// The post-crash store is then served through each topology from the
// main simulation gate — single engine, predictive index, 2- and
// 4-shard local clusters — and every standing subscription's first
// answer must be byte-identical to a fresh engine run on the truth: a
// restart loses nothing and serves exactly what it served before.
func TestCrashRecoveryByteIdentity(t *testing.T) {
	const seed = 2009
	cases := []struct {
		name       string
		shards     int
		predictive bool
	}{
		{"single", 0, false},
		{"single-predictive", 0, true},
		{"shard2", 2, false},
		{"shard4", 4, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(seed)
			// Retirement churn rides the WAL too: every kill point now
			// lands on logs whose tail mixes revisions, flips, inserts,
			// retires, and same-OID re-entries.
			cfg.Retire = 1
			w, err := NewWorld(cfg)
			if err != nil {
				t.Fatal(err)
			}
			init, err := w.InitialStore()
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			// SnapshotEvery 3 interleaves the two recovery shapes across
			// the run: kill points that replay a log tail on top of a
			// snapshot and kill points that land right on one.
			log, err := wal.Create(dir, init, wal.Options{SnapshotEvery: 3})
			if err != nil {
				t.Fatal(err)
			}
			defer log.Close()

			ctx := context.Background()
			reqs := w.Requests()
			for step := 0; step < cfg.Steps; step++ {
				batch, err := w.Step()
				if err != nil {
					t.Fatal(err)
				}
				truth, err := w.SnapshotStore()
				if err != nil {
					t.Fatal(err)
				}
				want := storeBytes(t, truth)

				if err := log.Append(batch); err != nil {
					t.Fatalf("step %d: append: %v", step, err)
				}
				// Kill point A: crash after the record is durable but
				// before the snapshot policy ran.
				recoverAndCompare(t, dir, step, "post-append", want, uint64(step+1))

				if err := log.AfterApply(truth); err != nil {
					t.Fatalf("step %d: after-apply: %v", step, err)
				}
				// Kill point B: crash after the snapshot policy ran.
				rec := recoverAndCompare(t, dir, step, "post-snapshot", want, uint64(step+1))

				// Restart serving on the recovered store: every standing
				// request answers byte-identically to a fresh engine on
				// the truth.
				hub := hubOver(t, rec, tc.shards, tc.predictive)
				fresh := engine.New(0)
				for i, req := range reqs {
					id, live, err := hub.Subscribe(ctx, req)
					if err != nil {
						t.Fatalf("step %d sub %d (%s): subscribe: %v", step, i, req.Kind, err)
					}
					wantRes, err := fresh.Do(ctx, truth, req)
					if err != nil {
						t.Fatalf("step %d sub %d (%s): fresh: %v", step, i, req.Kind, err)
					}
					got, wantB := answerBytes(t, live), answerBytes(t, wantRes)
					if string(got) != string(wantB) {
						t.Fatalf("step %d sub %d (%s) after recovery:\n live %s\nfresh %s",
							step, i, req.Kind, got, wantB)
					}
					if !hub.Unsubscribe(id) {
						t.Fatalf("step %d sub %d: unsubscribe failed", step, i)
					}
				}
			}

			// The snapshot policy must actually have fired mid-run, or the
			// kill-point matrix degenerates to log-only recovery.
			_, info, err := wal.Recover(dir)
			if err != nil {
				t.Fatal(err)
			}
			if info.SnapshotSeq == 0 {
				t.Fatalf("no snapshot taken across %d steps: %+v", cfg.Steps, info)
			}
		})
	}
}

// recoverAndCompare runs wal.Recover as a restarted process would and
// pins the recovered store's bytes and the recovery sequence.
func recoverAndCompare(t *testing.T, dir string, step int, phase string, want []byte, wantSeq uint64) *mod.Store {
	t.Helper()
	rec, info, err := wal.Recover(dir)
	if err != nil {
		t.Fatalf("step %d (%s): recover: %v", step, phase, err)
	}
	if info.Torn {
		t.Fatalf("step %d (%s): clean shutdown read as torn: %+v", step, phase, info)
	}
	if info.Seq() != wantSeq {
		t.Fatalf("step %d (%s): recovered seq %d, want %d", step, phase, info.Seq(), wantSeq)
	}
	if got := storeBytes(t, rec); !bytes.Equal(got, want) {
		t.Fatalf("step %d (%s): recovered store diverges from mirror (%d vs %d bytes)",
			step, phase, len(got), len(want))
	}
	return rec
}
