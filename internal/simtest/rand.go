package simtest

// Per-worker randomness for goroutine-spawning harnesses. A sweep that
// hands one shared *rand.Rand to N workers is both a data race (Rand is
// not goroutine-safe) and non-reproducible: the interleaving decides who
// draws what, so the schedule changes with GOMAXPROCS, worker count, and
// machine load. Rands gives every worker its own generator seeded
// deterministically from the sweep seed and the worker index, so worker
// i replays the same stream no matter how many siblings run beside it.
//
// Poisson turns those uniform streams into arrival counts for open-loop
// load generation (arrivals per tick at a target rate), using the
// inverse-CDF walk for ordinary means and a normal approximation once
// the CDF walk would underflow.

import (
	"math"
	"math/rand"
)

// Rands returns n independent generators, the i-th seeded seed+i. Give
// one to each worker goroutine instead of sharing a single Rand: the
// streams are race-free and worker i's schedule is a pure function of
// (seed, i), reproducible at any worker count.
func Rands(seed int64, n int) []*rand.Rand {
	rngs := make([]*rand.Rand, n)
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(seed + int64(i)))
	}
	return rngs
}

// Poisson draws a Poisson-distributed variate with the given mean from
// rng. Means up to poissonExactMax use the exact inverse-CDF walk
// (multiply-accumulate of e^-mean terms); larger means switch to the
// normal approximation N(mean, mean), which is accurate to well under a
// percent there and avoids the walk's e^-mean underflow.
func Poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > poissonExactMax {
		v := math.Round(mean + math.Sqrt(mean)*rng.NormFloat64())
		if v < 0 {
			return 0
		}
		return int(v)
	}
	// Inverse-CDF: walk k upward accumulating P(X<=k) until it passes a
	// uniform draw.
	u := rng.Float64()
	p := math.Exp(-mean)
	cdf := p
	k := 0
	for u > cdf {
		k++
		p *= mean / float64(k)
		cdf += p
		if k > poissonWalkCap {
			break
		}
	}
	return k
}

const (
	poissonExactMax = 500
	// poissonWalkCap bounds the CDF walk against float round-off pinning
	// cdf just under u; at mean <= poissonExactMax the true variate
	// exceeds this bound with negligible probability.
	poissonWalkCap = 4 * poissonExactMax
)
