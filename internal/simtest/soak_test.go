package simtest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/wal"
)

// TestChaosSoakRecovery is the nightly durability soak: longer seeded
// worlds than the PR gate, fsync-per-append journaling, and a recovery
// at every step that must stay byte-identical to the mirror. The WAL
// directories and a machine-readable recovery report survive the run
// under $CHAOS_DIR so a failure ships the exact on-disk state that
// produced it. Skipped unless CHAOS_SOAK is set.
func TestChaosSoakRecovery(t *testing.T) {
	if os.Getenv("CHAOS_SOAK") == "" {
		t.Skip("set CHAOS_SOAK=1 (make chaos-soak) to run the durability soak")
	}
	artifacts := os.Getenv("CHAOS_DIR")
	if artifacts == "" {
		artifacts = t.TempDir()
	}
	if err := os.MkdirAll(artifacts, 0o755); err != nil {
		t.Fatal(err)
	}

	type report struct {
		Seed        int64  `json:"seed"`
		Steps       int    `json:"steps"`
		FinalSeq    uint64 `json:"final_seq"`
		SnapshotSeq uint64 `json:"snapshot_seq"`
		Replayed    uint64 `json:"replayed"`
		StoreBytes  int    `json:"store_bytes"`
		WALDir      string `json:"wal_dir"`
	}
	var reports []report

	for _, seed := range []int64{31, 32, 33} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cfg := Config{Seed: seed, N: 80, Held: 6, R: 0.5, Steps: 20, PerStep: 8, Retire: 2}
			w, err := NewWorld(cfg)
			if err != nil {
				t.Fatal(err)
			}
			init, err := w.InitialStore()
			if err != nil {
				t.Fatal(err)
			}
			dir := filepath.Join(artifacts, fmt.Sprintf("wal-seed%d", seed))
			if err := os.RemoveAll(dir); err != nil {
				t.Fatal(err)
			}
			log, err := wal.Create(dir, init, wal.Options{Sync: true, SnapshotEvery: 5})
			if err != nil {
				t.Fatal(err)
			}
			defer log.Close()

			var last wal.RecoverInfo
			var lastBytes int
			for step := 0; step < cfg.Steps; step++ {
				batch, err := w.Step()
				if err != nil {
					t.Fatal(err)
				}
				truth, err := w.SnapshotStore()
				if err != nil {
					t.Fatal(err)
				}
				if err := log.Append(batch); err != nil {
					t.Fatalf("step %d: append: %v", step, err)
				}
				if err := log.AfterApply(truth); err != nil {
					t.Fatalf("step %d: after-apply: %v", step, err)
				}
				rec, info, err := wal.Recover(dir)
				if err != nil {
					t.Fatalf("step %d: recover: %v", step, err)
				}
				if info.Torn || info.Seq() != uint64(step+1) {
					t.Fatalf("step %d: recovery info %+v", step, info)
				}
				var got, want bytes.Buffer
				if err := rec.SaveBinary(&got); err != nil {
					t.Fatal(err)
				}
				if err := truth.SaveBinary(&want); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got.Bytes(), want.Bytes()) {
					t.Fatalf("step %d: recovered store diverges from mirror (%d vs %d bytes); WAL kept at %s",
						step, got.Len(), want.Len(), dir)
				}
				last, lastBytes = info, got.Len()
			}
			reports = append(reports, report{
				Seed: seed, Steps: cfg.Steps, FinalSeq: last.Seq(),
				SnapshotSeq: last.SnapshotSeq, Replayed: last.Replayed,
				StoreBytes: lastBytes, WALDir: dir,
			})
		})
	}

	b, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(artifacts, "recovery-report.json")
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("recovery report: %s", out)
}
