package simtest

// Per-worker RNG discipline: worker i's stream depends only on (seed,
// i) — never on how many workers run beside it or how the scheduler
// interleaves them — and concurrent draws from sibling generators are
// race-free (this test is part of the `-race` suite).

import (
	"math"
	"sync"
	"testing"
)

func TestRandsReproducibleAtAnyWorkerCount(t *testing.T) {
	const seed = 977
	four := Rands(seed, 4)
	eight := Rands(seed, 8)
	if len(four) != 4 || len(eight) != 8 {
		t.Fatalf("lengths: %d, %d", len(four), len(eight))
	}
	for i := range four {
		for j := 0; j < 64; j++ {
			a, b := four[i].Int63(), eight[i].Int63()
			if a != b {
				t.Fatalf("worker %d draw %d: %d with 4 workers, %d with 8", i, j, a, b)
			}
		}
	}
	// Sibling workers draw distinct streams.
	fresh := Rands(seed, 2)
	if fresh[0].Int63() == fresh[1].Int63() {
		t.Fatal("workers 0 and 1 share a stream")
	}
}

func TestRandsConcurrentDrawsRaceFree(t *testing.T) {
	rngs := Rands(3, 8)
	sequential := make([][]int64, len(rngs))
	for i, r := range Rands(3, 8) {
		for j := 0; j < 1000; j++ {
			sequential[i] = append(sequential[i], r.Int63())
		}
	}
	got := make([][]int64, len(rngs))
	var wg sync.WaitGroup
	for i, r := range rngs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				got[i] = append(got[i], r.Int63())
			}
		}()
	}
	wg.Wait()
	for i := range got {
		for j := range got[i] {
			if got[i][j] != sequential[i][j] {
				t.Fatalf("worker %d diverged at draw %d under concurrency", i, j)
			}
		}
	}
}

func TestPoisson(t *testing.T) {
	rng := Rands(41, 1)[0]
	if got := Poisson(rng, 0); got != 0 {
		t.Fatalf("Poisson(0) = %d", got)
	}
	if got := Poisson(rng, -3); got != 0 {
		t.Fatalf("Poisson(-3) = %d", got)
	}
	// Both regimes: sample mean and variance track the parameter.
	for _, mean := range []float64{0.5, 7, 120, 2000} {
		const n = 20000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := float64(Poisson(rng, mean))
			sum += v
			sumSq += v * v
		}
		gotMean := sum / n
		gotVar := sumSq/n - gotMean*gotMean
		// Standard error of the sample mean is sqrt(mean/n); 6 sigma.
		tol := 6 * math.Sqrt(mean/n)
		if math.Abs(gotMean-mean) > tol {
			t.Fatalf("mean %.1f: sample mean %.3f (tol %.3f)", mean, gotMean, tol)
		}
		if gotVar < mean/2 || gotVar > mean*2 {
			t.Fatalf("mean %.1f: sample variance %.3f", mean, gotVar)
		}
	}
	// Determinism: the same seed replays the same variates.
	a, b := Rands(99, 1)[0], Rands(99, 1)[0]
	for i := 0; i < 100; i++ {
		if x, y := Poisson(a, 12), Poisson(b, 12); x != y {
			t.Fatalf("draw %d: %d vs %d from equal seeds", i, x, y)
		}
	}
}
