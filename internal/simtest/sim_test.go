package simtest

import (
	"context"
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/continuous"
	"repro/internal/engine"
)

// answerBytes serializes the answer-bearing fields of a result — the
// byte-identity currency of the suite (Explain legitimately differs
// between serving topologies).
func answerBytes(t *testing.T, res engine.Result) []byte {
	t.Helper()
	b, err := json.Marshal(struct {
		Kind   engine.Kind       `json:"kind"`
		IsBool bool              `json:"is_bool"`
		Bool   bool              `json:"bool"`
		OIDs   []int64           `json:"oids"`
		Pairs  map[int64][]int64 `json:"pairs"`
	}{res.Kind, res.IsBool, res.Bool, res.OIDs, res.Pairs})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// topology builds the hub under test over the world's initial fleet.
func topology(t *testing.T, w *World, shards int, predictive bool) *continuous.Hub {
	t.Helper()
	store, err := w.InitialStore()
	if err != nil {
		t.Fatal(err)
	}
	if predictive {
		if err := store.EnablePredictive(0, Span); err != nil {
			t.Fatal(err)
		}
	}
	if shards == 0 {
		return continuous.NewEngineHub(store, engine.New(0))
	}
	router, err := cluster.NewLocalCluster(store, shards, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return cluster.NewRouterHub(router)
}

// TestSimulationByteIdentity is the simulation gate: a seeded world is
// stepped through scripted revision/insert batches, and after EVERY step
// every live subscription's answer must be byte-identical to a fresh
// Engine.Do on a snapshot of the world's truth — over a single engine, a
// single engine serving through the predictive TPR index, and 2- and
// 4-shard local clusters. A background poller hammers Answer/Stats
// concurrently so the suite is meaningful under -race.
func TestSimulationByteIdentity(t *testing.T) {
	const seed = 2009
	cases := []struct {
		name       string
		shards     int
		predictive bool
	}{
		{"single", 0, false},
		{"single-predictive", 0, true},
		{"shard2", 2, false},
		{"shard4", 4, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w, err := NewWorld(DefaultConfig(seed))
			if err != nil {
				t.Fatal(err)
			}
			hub := topology(t, w, tc.shards, tc.predictive)
			ctx := context.Background()

			reqs := w.Requests()
			subIDs := make([]int64, len(reqs))
			for i, req := range reqs {
				id, _, err := hub.Subscribe(ctx, req)
				if err != nil {
					t.Fatalf("subscribe %d (%s): %v", i, req.Kind, err)
				}
				subIDs[i] = id
			}

			// Concurrent readers for the race detector.
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					for _, id := range subIDs {
						_, _ = hub.Answer(id)
					}
					_ = hub.Stats()
				}
			}()
			defer func() {
				close(stop)
				wg.Wait()
			}()

			for step := 0; step < DefaultConfig(seed).Steps; step++ {
				batch, err := w.Step()
				if err != nil {
					t.Fatal(err)
				}
				if _, _, err := hub.Ingest(ctx, batch); err != nil {
					t.Fatalf("step %d: ingest: %v", step, err)
				}
				snap, err := w.SnapshotStore()
				if err != nil {
					t.Fatal(err)
				}
				fresh := engine.New(0)
				for i, id := range subIDs {
					live, err := hub.Answer(id)
					if err != nil {
						t.Fatal(err)
					}
					want, err := fresh.Do(ctx, snap, reqs[i])
					if err != nil {
						t.Fatalf("step %d sub %d (%s): fresh: %v", step, i, reqs[i].Kind, err)
					}
					got, wantB := answerBytes(t, live), answerBytes(t, want)
					if string(got) != string(wantB) {
						t.Fatalf("step %d sub %d (%s):\n live %s\nfresh %s",
							step, i, reqs[i].Kind, got, wantB)
					}
				}
			}

			stats := hub.Stats()
			if stats.Evals == 0 || stats.Skips == 0 {
				t.Fatalf("degenerate run: stats = %+v (want both evals and skips)", stats)
			}
			t.Logf("%s: %+v", tc.name, stats)
		})
	}
}

// TestSimulationDeterminism pins the scriptedness: two worlds with one
// seed emit identical update bytes; a different seed diverges.
func TestSimulationDeterminism(t *testing.T) {
	dump := func(seed int64) string {
		w, err := NewWorld(DefaultConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		var s string
		for i := 0; i < 3; i++ {
			batch, err := w.Step()
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(batch)
			if err != nil {
				t.Fatal(err)
			}
			s += string(b)
		}
		return s
	}
	if dump(7) != dump(7) {
		t.Fatal("same seed produced different scripts")
	}
	if dump(7) == dump(8) {
		t.Fatal("different seeds produced identical scripts")
	}
}

// TestWorldCoverage keeps the harness honest: every emitted update leaves
// every plan covering [0, Span], so no standing window ever dies of a
// span error mid-simulation.
func TestWorldCoverage(t *testing.T) {
	w, err := NewWorld(DefaultConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < DefaultConfig(11).Steps; step++ {
		if _, err := w.Step(); err != nil {
			t.Fatal(err)
		}
		snap, err := w.SnapshotStore()
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range snap.All() {
			tb, te := tr.TimeSpan()
			if tb > 0 || te < Span {
				t.Fatalf("step %d: oid %d spans [%g, %g]", step, tr.OID, tb, te)
			}
		}
	}
}
