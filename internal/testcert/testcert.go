// Package testcert mints throwaway self-signed TLS certificates for the
// serving-layer test suites (modserver, cluster, gateway). Nothing here
// is production key management: the point is a certificate the test
// process both presents and trusts, so TLS handshakes in tests exercise
// the real crypto/tls stack without touching the system trust store.
package testcert

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"math/big"
	"net"
	"time"
)

// Pair is a freshly minted self-signed server certificate plus the pool
// that trusts it (for client-side verification).
type Pair struct {
	Cert tls.Certificate
	Pool *x509.CertPool
}

// New mints a self-signed certificate valid for the given hosts (DNS
// names or IP literals). With no hosts it covers localhost and the
// loopback addresses — the shape every in-process test listener needs.
func New(hosts ...string) (Pair, error) {
	if len(hosts) == 0 {
		hosts = []string{"localhost", "127.0.0.1", "::1"}
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return Pair{}, err
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 128))
	if err != nil {
		return Pair{}, err
	}
	tmpl := x509.Certificate{
		SerialNumber:          serial,
		Subject:               pkix.Name{CommonName: "repro-test"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(24 * time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	for _, h := range hosts {
		if ip := net.ParseIP(h); ip != nil {
			tmpl.IPAddresses = append(tmpl.IPAddresses, ip)
		} else {
			tmpl.DNSNames = append(tmpl.DNSNames, h)
		}
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		return Pair{}, err
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		return Pair{}, err
	}
	pool := x509.NewCertPool()
	pool.AddCert(leaf)
	return Pair{
		Cert: tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key, Leaf: leaf},
		Pool: pool,
	}, nil
}

// ServerConfig returns a TLS config presenting the certificate.
func (p Pair) ServerConfig() *tls.Config {
	return &tls.Config{Certificates: []tls.Certificate{p.Cert}}
}

// ClientConfig returns a TLS config trusting (only) the certificate.
func (p Pair) ClientConfig() *tls.Config {
	return &tls.Config{RootCAs: p.Pool}
}
