// Package core implements the paper's primary contribution: the IPAC-NN
// tree (Interval-based Probabilistic Answer to a Continuous NN query,
// Section 1 and Algorithm 3 of Section 3.2).
//
// The tree's root carries the query parameters (query trajectory and time
// window). Level-1 nodes are the intervals of the lower envelope of the
// difference-trajectory distance functions: at any instant, the envelope's
// defining trajectory has the highest probability of being the query's
// nearest neighbor (Theorem 1). Each node's children partition its time
// interval with the trajectories ranked next — the level-L envelope with
// the ancestor chain excluded — and recursion stops when no candidate with
// non-zero probability of being the nearest neighbor remains (a trajectory
// has non-zero probability at time t only while its distance function is
// within 4r of the lower envelope, the pruning zone of Section 3.2).
//
// Each node can carry a probability descriptor D_i: min/max and a sampled
// time series of P^NN values computed through the Section 3.1 convolution
// reduction. Removing the root yields the DAG whose geometric dual is the
// family of ranked envelopes (Theorem 2).
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/envelope"
	"repro/internal/numeric"
	"repro/internal/trajectory"
	"repro/internal/uncertain"
	"repro/internal/updf"
)

// Package errors.
var (
	ErrQueryNotFound = errors.New("core: query trajectory not in collection")
	ErrNoObjects     = errors.New("core: no candidate objects besides the query")
	ErrBadRadius     = errors.New("core: uncertainty radius must be positive")
)

// Config tunes tree construction.
type Config struct {
	// MaxLevels caps the tree depth (levels below the root). 0 means
	// unbounded: recursion ends when candidates are exhausted or leave the
	// pruning zone.
	MaxLevels int
	// Descriptors enables per-node probability descriptors.
	Descriptors bool
	// DescriptorSamples is the number of probability samples per node
	// interval (default 5 when Descriptors is set).
	DescriptorSamples int
	// Grid is the integration grid for Eq. 5 when computing descriptors
	// (default uncertain.DefaultGrid).
	Grid int
}

// ProbSample is one descriptor sample: the probability that the node's
// trajectory is the nearest neighbor of the query at time T.
type ProbSample struct {
	T    float64
	Prob float64
}

// Descriptor summarizes the probability behaviour of a node's trajectory
// over the node's interval (the paper's D_i attribute).
type Descriptor struct {
	MinProb, MaxProb float64
	Samples          []ProbSample
}

// Node is one IPAC-NN tree node: trajectory ID, time interval of relevance,
// optional descriptor, and children covering disjoint sub-intervals.
type Node struct {
	ID         int64
	T0, T1     float64
	Level      int
	Descriptor *Descriptor
	Children   []*Node
}

// Tree is the IPAC-NN tree for one continuous probabilistic NN query.
type Tree struct {
	QueryOID int64
	Tb, Te   float64
	R        float64
	// Roots are the level-1 nodes (children of the conceptual root, which
	// carries only the query parameters above).
	Roots []*Node
	// PrunedOIDs lists the objects eliminated by the 4r pruning zone.
	PrunedOIDs []int64
	// KeptOIDs lists the objects that participate in the answer.
	KeptOIDs []int64

	env1 *envelope.Envelope
	fns  []*envelope.DistanceFunc
	zone map[int64][]envelope.TimeInterval
}

// Build runs Algorithm 3: construct the lower envelope (level 1), prune
// the objects that can never have non-zero NN probability, then refine
// each level's intervals recursively. The trajectory set trs must contain
// q (matched by OID); all trajectories must cover [tb, te]; r is the
// shared uncertainty radius; pdf is the shared location pdf (nil selects
// the uniform disk, making the convolved difference pdf the exact
// uniform◦uniform form).
func Build(trs []*trajectory.Trajectory, q *trajectory.Trajectory, tb, te, r float64, pdf updf.RadialPDF, cfg Config) (*Tree, error) {
	if r <= 0 {
		return nil, ErrBadRadius
	}
	found := false
	for _, tr := range trs {
		if tr.OID == q.OID {
			found = true
			break
		}
	}
	if !found {
		return nil, ErrQueryNotFound
	}
	if len(trs) < 2 {
		return nil, ErrNoObjects
	}
	fns, err := envelope.BuildDistanceFuncs(trs, q, tb, te)
	if err != nil {
		return nil, err
	}
	env1, err := envelope.LowerEnvelope(fns, tb, te)
	if err != nil {
		return nil, err
	}
	width := 4 * r
	kept, pruned := envelope.Prune(fns, env1, width)

	t := &Tree{
		QueryOID: q.OID, Tb: tb, Te: te, R: r,
		env1: env1, fns: fns,
		zone: make(map[int64][]envelope.TimeInterval, len(kept)),
	}
	for _, f := range pruned {
		t.PrunedOIDs = append(t.PrunedOIDs, f.ID)
	}
	for _, f := range kept {
		t.KeptOIDs = append(t.KeptOIDs, f.ID)
		t.zone[f.ID] = envelope.BelowIntervals(f, env1, width)
	}

	if pdf == nil {
		pdf = updf.NewUniformDisk(r)
	}
	var desc *descriptorEngine
	if cfg.Descriptors {
		conv, err := updf.ConvolvePair(pdf, pdf, 0)
		if err != nil {
			return nil, fmt.Errorf("core: convolving pdfs: %w", err)
		}
		samples := cfg.DescriptorSamples
		if samples <= 0 {
			samples = 5
		}
		grid := cfg.Grid
		if grid <= 0 {
			grid = uncertain.DefaultGrid
		}
		desc = &descriptorEngine{conv: conv, kept: kept, samples: samples, grid: grid}
	}

	// Level 1: the envelope's intervals.
	for _, iv := range env1.Intervals {
		node := &Node{ID: iv.ID, T0: iv.T0, T1: iv.T1, Level: 1}
		if desc != nil {
			node.Descriptor = desc.describe(node.ID, node.T0, node.T1)
		}
		t.Roots = append(t.Roots, node)
	}
	// Refine recursively.
	for _, root := range t.Roots {
		t.buildChildren(root, map[int64]bool{root.ID: true}, kept, cfg, desc)
	}
	return t, nil
}

// buildChildren populates node's children: the lower envelope of the kept
// functions minus the ancestor chain, restricted to the node's interval,
// filtered to sub-intervals where the defining trajectory still has
// non-zero NN probability (its zone intervals overlap).
func (t *Tree) buildChildren(node *Node, excluded map[int64]bool, kept []*envelope.DistanceFunc, cfg Config, desc *descriptorEngine) {
	if cfg.MaxLevels > 0 && node.Level >= cfg.MaxLevels {
		return
	}
	var cands []*envelope.DistanceFunc
	for _, f := range kept {
		if !excluded[f.ID] && t.overlapsZone(f.ID, node.T0, node.T1) {
			cands = append(cands, f)
		}
	}
	if len(cands) == 0 {
		return
	}
	env, err := envelope.LowerEnvelope(cands, node.T0, node.T1)
	if err != nil {
		return
	}
	for _, iv := range env.Intervals {
		if !t.overlapsZone(iv.ID, iv.T0, iv.T1) {
			continue
		}
		child := &Node{ID: iv.ID, T0: iv.T0, T1: iv.T1, Level: node.Level + 1}
		if desc != nil {
			child.Descriptor = desc.describe(child.ID, child.T0, child.T1)
		}
		node.Children = append(node.Children, child)
		childExcluded := make(map[int64]bool, len(excluded)+1)
		for id := range excluded {
			childExcluded[id] = true
		}
		childExcluded[iv.ID] = true
		t.buildChildren(child, childExcluded, kept, cfg, desc)
	}
}

// overlapsZone reports whether the object's non-zero-probability time set
// intersects [t0, t1] with positive measure.
func (t *Tree) overlapsZone(id int64, t0, t1 float64) bool {
	for _, iv := range t.zone[id] {
		if math.Min(iv.T1, t1)-math.Max(iv.T0, t0) > envelope.TimeEps {
			return true
		}
	}
	return false
}

// descriptorEngine computes probability descriptors through the Section 3.1
// reduction: a crisp query at the origin against objects carrying the
// convolved pdf at their difference-trajectory distances.
type descriptorEngine struct {
	conv    updf.RadialPDF
	kept    []*envelope.DistanceFunc
	samples int
	grid    int
}

func (d *descriptorEngine) describe(id int64, t0, t1 float64) *Descriptor {
	ts := numeric.Linspace(t0, t1, d.samples)
	out := &Descriptor{MinProb: math.Inf(1), MaxProb: math.Inf(-1)}
	cands := make([]uncertain.Candidate, len(d.kept))
	for _, tm := range ts {
		for i, f := range d.kept {
			cands[i] = uncertain.Candidate{ID: f.ID, Dist: f.Value(tm)}
		}
		probs := uncertain.NNProbabilities(d.conv, cands, d.grid)
		p := probs[id]
		out.Samples = append(out.Samples, ProbSample{T: tm, Prob: p})
		out.MinProb = math.Min(out.MinProb, p)
		out.MaxProb = math.Max(out.MaxProb, p)
	}
	return out
}

// Walk visits every node depth-first in time order within each level.
func (t *Tree) Walk(visit func(*Node)) {
	var rec func(n *Node)
	rec = func(n *Node) {
		visit(n)
		for _, c := range n.Children {
			rec(c)
		}
	}
	for _, r := range t.Roots {
		rec(r)
	}
}

// NodeCount returns the number of nodes below the root — the tree's
// combinatorial complexity, bounded by O(⌈N/K⌉²) per Theorem 2.
func (t *Tree) NodeCount() int {
	n := 0
	t.Walk(func(*Node) { n++ })
	return n
}

// Depth returns the maximum level present.
func (t *Tree) Depth() int {
	d := 0
	t.Walk(func(n *Node) {
		if n.Level > d {
			d = n.Level
		}
	})
	return d
}

// NodesAtLevel returns the nodes at the given level (1-based), in time
// order within each parent.
func (t *Tree) NodesAtLevel(level int) []*Node {
	var out []*Node
	t.Walk(func(n *Node) {
		if n.Level == level {
			out = append(out, n)
		}
	})
	return out
}

// Envelope returns the level-1 lower envelope (the geometric dual's first
// layer).
func (t *Tree) Envelope() *envelope.Envelope { return t.env1 }

// DistanceFuncs returns all difference distance functions (including
// pruned ones).
func (t *Tree) DistanceFuncs() []*envelope.DistanceFunc { return t.fns }

// ZoneIntervals returns the time intervals during which the object has
// non-zero probability of being the query's nearest neighbor (empty for
// pruned objects).
func (t *Tree) ZoneIntervals(oid int64) []envelope.TimeInterval { return t.zone[oid] }

// AnswerAt returns the highest-probability nearest neighbor at time tm
// (the level-1 envelope's trajectory), mirroring the time-parameterized
// answer A_nn of Section 1.
func (t *Tree) AnswerAt(tm float64) int64 { return t.env1.IDAt(tm) }

// RankedAt returns up to k trajectory IDs in descending NN-probability
// order at time tm, read off the distance ranking (Theorem 1), restricted
// to objects with non-zero probability somewhere in the window.
func (t *Tree) RankedAt(tm float64, k int) []int64 {
	type dv struct {
		id int64
		v  float64
	}
	var ds []dv
	for _, f := range t.fns {
		if len(t.zone[f.ID]) == 0 {
			continue
		}
		ds = append(ds, dv{f.ID, f.Value(tm)})
	}
	// Insertion sort by distance (candidate counts after pruning are small).
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j].v < ds[j-1].v; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
	if k > len(ds) {
		k = len(ds)
	}
	out := make([]int64, k)
	for i := 0; i < k; i++ {
		out[i] = ds[i].id
	}
	return out
}
