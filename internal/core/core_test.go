package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/envelope"
	"repro/internal/numeric"
	"repro/internal/trajectory"
	"repro/internal/workload"
)

func still(t *testing.T, oid int64, x, y float64) *trajectory.Trajectory {
	t.Helper()
	tr, err := trajectory.New(oid, []trajectory.Vertex{
		{X: x, Y: y, T: 0}, {X: x, Y: y, T: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// layout: query at origin; objects at increasing distances. With r = 0.5
// the zone width is 2, so object at distance 2 (gap 0) defines level 1,
// object at 3.5 (gap 1.5 <= 2) is level 2, object at 9 (gap 7) is pruned.
func staticSet(t *testing.T) ([]*trajectory.Trajectory, *trajectory.Trajectory) {
	t.Helper()
	q := still(t, 100, 0, 0)
	return []*trajectory.Trajectory{
		q,
		still(t, 1, 2, 0),
		still(t, 2, 3.5, 0),
		still(t, 3, 9, 0),
	}, q
}

func TestBuildErrors(t *testing.T) {
	trs, q := staticSet(t)
	if _, err := Build(trs, q, 0, 60, 0, nil, Config{}); !errors.Is(err, ErrBadRadius) {
		t.Errorf("bad radius: %v", err)
	}
	other := still(t, 999, 1, 1)
	if _, err := Build(trs, other, 0, 60, 0.5, nil, Config{}); !errors.Is(err, ErrQueryNotFound) {
		t.Errorf("missing query: %v", err)
	}
	if _, err := Build([]*trajectory.Trajectory{q}, q, 0, 60, 0.5, nil, Config{}); !errors.Is(err, ErrNoObjects) {
		t.Errorf("no objects: %v", err)
	}
}

func TestBuildStaticTree(t *testing.T) {
	trs, q := staticSet(t)
	tree, err := Build(trs, q, 0, 60, 0.5, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Level 1: single interval, object 1.
	if len(tree.Roots) != 1 || tree.Roots[0].ID != 1 {
		t.Fatalf("roots = %+v", tree.Roots)
	}
	if tree.Roots[0].T0 != 0 || tree.Roots[0].T1 != 60 || tree.Roots[0].Level != 1 {
		t.Errorf("root node = %+v", tree.Roots[0])
	}
	// Object 3 pruned, objects 1 and 2 kept.
	if len(tree.PrunedOIDs) != 1 || tree.PrunedOIDs[0] != 3 {
		t.Errorf("pruned = %v", tree.PrunedOIDs)
	}
	if len(tree.KeptOIDs) != 2 {
		t.Errorf("kept = %v", tree.KeptOIDs)
	}
	// Level 2: object 2 under object 1.
	kids := tree.Roots[0].Children
	if len(kids) != 1 || kids[0].ID != 2 || kids[0].Level != 2 {
		t.Fatalf("children = %+v", kids)
	}
	// No level 3 (object 3 pruned).
	if len(kids[0].Children) != 0 {
		t.Errorf("level 3 = %+v", kids[0].Children)
	}
	if tree.Depth() != 2 || tree.NodeCount() != 2 {
		t.Errorf("depth=%d count=%d", tree.Depth(), tree.NodeCount())
	}
	if got := tree.AnswerAt(30); got != 1 {
		t.Errorf("AnswerAt = %d", got)
	}
	if got := tree.RankedAt(30, 5); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("RankedAt = %v", got)
	}
	if z := tree.ZoneIntervals(3); len(z) != 0 {
		t.Errorf("pruned zone = %v", z)
	}
	if z := tree.ZoneIntervals(1); len(z) != 1 || z[0].T0 != 0 || z[0].T1 != 60 {
		t.Errorf("level-1 zone = %v", z)
	}
}

func TestMaxLevelsCap(t *testing.T) {
	trs, q := staticSet(t)
	tree, err := Build(trs, q, 0, 60, 0.5, nil, Config{MaxLevels: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 1 {
		t.Errorf("depth = %d", tree.Depth())
	}
	if len(tree.Roots[0].Children) != 0 {
		t.Error("children built beyond cap")
	}
}

func TestDescriptors(t *testing.T) {
	trs, q := staticSet(t)
	tree, err := Build(trs, q, 0, 60, 0.5, nil, Config{Descriptors: true, DescriptorSamples: 3, Grid: 256})
	if err != nil {
		t.Fatal(err)
	}
	root := tree.Roots[0]
	if root.Descriptor == nil || len(root.Descriptor.Samples) != 3 {
		t.Fatalf("descriptor = %+v", root.Descriptor)
	}
	d := root.Descriptor
	if d.MinProb > d.MaxProb || d.MinProb < 0 || d.MaxProb > 1 {
		t.Errorf("bounds = [%g, %g]", d.MinProb, d.MaxProb)
	}
	// Object 1 (distance 2) vs object 2 (distance 3.5) with convolved
	// support 1: rings [1,3] and [2.5,4.5] overlap, so level-1 probability
	// is below 1 but must dominate level-2's.
	d2 := root.Children[0].Descriptor
	if d2 == nil {
		t.Fatal("level-2 descriptor missing")
	}
	if !(d.MinProb > d2.MaxProb) {
		t.Errorf("level-1 prob %g should dominate level-2 %g", d.MinProb, d2.MaxProb)
	}
	// Static geometry: probabilities constant across samples.
	for _, s := range d.Samples {
		if math.Abs(s.Prob-d.Samples[0].Prob) > 1e-9 {
			t.Errorf("non-constant probability: %+v", d.Samples)
		}
	}
	// Probabilities sum to <= 1 across levels.
	if d.Samples[0].Prob+d2.Samples[0].Prob > 1+1e-6 {
		t.Errorf("sum = %g", d.Samples[0].Prob+d2.Samples[0].Prob)
	}
}

// TestTreeOnWorkload exercises a moving workload end to end and checks the
// structural invariants the paper states.
func TestTreeOnWorkload(t *testing.T) {
	trs, err := workload.Generate(workload.DefaultConfig(2025), 60)
	if err != nil {
		t.Fatal(err)
	}
	q := trs[0]
	r := 0.5
	tree, err := Build(trs, q, 0, 60, r, nil, Config{MaxLevels: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.KeptOIDs)+len(tree.PrunedOIDs) != len(trs)-1 {
		t.Fatalf("kept %d + pruned %d != %d", len(tree.KeptOIDs), len(tree.PrunedOIDs), len(trs)-1)
	}
	// Level-1 nodes tile [0, 60] and match the envelope's minimum.
	var lvl1 []*Node
	tree.Walk(func(n *Node) {
		if n.Level == 1 {
			lvl1 = append(lvl1, n)
		}
	})
	if lvl1[0].T0 != 0 || lvl1[len(lvl1)-1].T1 != 60 {
		t.Fatalf("level-1 does not tile window")
	}
	for i := 1; i < len(lvl1); i++ {
		if math.Abs(lvl1[i].T0-lvl1[i-1].T1) > 1e-9 {
			t.Fatalf("level-1 gap at %d", i)
		}
	}
	// At sampled times, the level-1 node is the true nearest difference
	// function; children are farther than their parents.
	fnsByID := map[int64]*envelope.DistanceFunc{}
	for _, f := range tree.DistanceFuncs() {
		fnsByID[f.ID] = f
	}
	tree.Walk(func(n *Node) {
		for _, c := range n.Children {
			for _, tm := range numeric.Linspace(c.T0, c.T1, 5) {
				if fnsByID[c.ID].Value(tm) < fnsByID[n.ID].Value(tm)-1e-6 {
					t.Errorf("child %d below parent %d at t=%g", c.ID, n.ID, tm)
				}
			}
		}
	})
	// Every node's trajectory enters the pruning zone within its interval.
	tree.Walk(func(n *Node) {
		f := fnsByID[n.ID]
		ok := false
		for _, tm := range numeric.Linspace(n.T0, n.T1, 33) {
			if f.Value(tm) <= tree.Envelope().ValueAt(tm)+4*r+1e-6 {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("node %d (level %d, [%g, %g]) never enters zone", n.ID, n.Level, n.T0, n.T1)
		}
	})
	// Depth respects the cap.
	if tree.Depth() > 3 {
		t.Errorf("depth = %d", tree.Depth())
	}
	// NodesAtLevel consistency.
	total := 0
	for l := 1; l <= tree.Depth(); l++ {
		total += len(tree.NodesAtLevel(l))
	}
	if total != tree.NodeCount() {
		t.Errorf("level sums %d != count %d", total, tree.NodeCount())
	}
}

// TestRankedAtMatchesDistances: RankedAt must order by distance at tm.
func TestRankedAtMatchesDistances(t *testing.T) {
	trs, err := workload.Generate(workload.SingleSegmentConfig(31), 30)
	if err != nil {
		t.Fatal(err)
	}
	q := trs[0]
	tree, err := Build(trs, q, 0, 60, 1, nil, Config{MaxLevels: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range []float64{0, 17.3, 42, 60} {
		ids := tree.RankedAt(tm, 10)
		prev := -1.0
		for _, id := range ids {
			var f *envelope.DistanceFunc
			for _, g := range tree.DistanceFuncs() {
				if g.ID == id {
					f = g
					break
				}
			}
			v := f.Value(tm)
			if v < prev-1e-9 {
				t.Fatalf("t=%g: ranking not by distance", tm)
			}
			prev = v
		}
	}
}

// TestPrunedNeverOnTree: pruned OIDs must not appear in any node.
func TestPrunedNeverOnTree(t *testing.T) {
	trs, err := workload.Generate(workload.DefaultConfig(99), 80)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Build(trs, trs[0], 0, 60, 0.25, nil, Config{MaxLevels: 4})
	if err != nil {
		t.Fatal(err)
	}
	pruned := map[int64]bool{}
	for _, id := range tree.PrunedOIDs {
		pruned[id] = true
	}
	tree.Walk(func(n *Node) {
		if pruned[n.ID] {
			t.Errorf("pruned oid %d on tree (level %d)", n.ID, n.Level)
		}
	})
}
