package core

// This test reconstructs the paper's motivating Example 1 / Figure 1: four
// trajectories where, ignoring uncertainty, Tr1 is the nearest neighbor of
// Trq on [tb, t1] and Tr2 on [t1, te] — but with uncertainty taken into
// account Tr3 also has non-zero probability of being the nearest neighbor
// near the start, and around the handover instant all three have non-zero
// probability. The IPAC-NN tree must reproduce all of those statements.

import (
	"testing"

	"repro/internal/trajectory"
)

func figure1Scene(t *testing.T) (trs []*trajectory.Trajectory, q *trajectory.Trajectory) {
	t.Helper()
	mk := func(oid int64, x0, y0, x1, y1 float64) *trajectory.Trajectory {
		tr, err := trajectory.New(oid, []trajectory.Vertex{
			{X: x0, Y: y0, T: 0}, {X: x1, Y: y1, T: 60},
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	// Trq moves along the x axis.
	q = mk(100, 0, 0, 30, 0)
	// Tr1: close at the start (distance 2), drifting away (distance 12 at
	// the end): nearest during the first part of the window.
	tr1 := mk(1, 0, 2, 30, 12)
	// Tr2: far at the start (12), closing to 2: nearest at the end.
	tr2 := mk(2, 0, 12, 30, 2)
	// Tr3: slightly behind Tr1 early on (distance 3): never the crisp
	// nearest, but within the uncertainty zone near tb.
	tr3 := mk(3, 0, 3, 30, 20)
	return []*trajectory.Trajectory{q, tr1, tr2, tr3}, q
}

func TestFigure1Scenario(t *testing.T) {
	trs, q := figure1Scene(t)
	const r = 0.5 // zone width 2
	tree, err := Build(trs, q, 0, 60, r, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}

	// Crisp time-parameterized answer: Tr1 first, Tr2 later, with a single
	// handover (d1 rises 2→12 while d2 falls 12→2 ⇒ one crossing at t=30).
	lvl1 := tree.NodesAtLevel(1)
	if len(lvl1) != 2 || lvl1[0].ID != 1 || lvl1[1].ID != 2 {
		t.Fatalf("level 1 = %+v", lvl1)
	}
	handover := lvl1[0].T1
	if handover < 25 || handover > 35 {
		t.Errorf("handover at %g, expected ≈ 30", handover)
	}

	// "Not only Tr1, but also Tr3 has a non-zero probability of being the
	// nearest neighbor to Trq at t = tb": Tr3's zone intervals include the
	// start of the window.
	z3 := tree.ZoneIntervals(3)
	if len(z3) == 0 || z3[0].T0 > 1e-9 {
		t.Fatalf("Tr3 zone = %v, expected coverage from tb", z3)
	}
	// Tr3 is NOT a possible NN at the very end (d3 = 20+ vs zone top 4).
	last := z3[len(z3)-1]
	if last.T1 > 59 {
		t.Errorf("Tr3 possible until %g, expected to drop out well before te", last.T1)
	}

	// "At t = t1 all three trajectories have non-zero probabilities":
	// around the handover, d1 ≈ d2 ≈ 7 and the zone top is ≈ 9; Tr3 sits
	// at d3 ≈ 11.5 there, so in the paper's figure the third object stays
	// possible through the handover. Verify the *ranked* statement
	// instead, which is geometry-independent: at the handover instant the
	// top-2 set is {Tr1, Tr2}.
	ranked := tree.RankedAt(handover, 2)
	has := map[int64]bool{}
	for _, id := range ranked {
		has[id] = true
	}
	if !has[1] || !has[2] {
		t.Errorf("top-2 at handover = %v", ranked)
	}

	// Structure: Tr2 is ranked second while Tr1 leads (and vice versa), so
	// each level-1 node has a child, and the children's trajectories are
	// the other member of the pair (or Tr3 where it is closer than the
	// loser).
	for _, n := range lvl1 {
		if len(n.Children) == 0 {
			t.Errorf("level-1 node Tr%d has no children", n.ID)
		}
	}

	// The answer changes exactly once: A_nn = [(Tr1, [0, t1]), (Tr2, [t1, 60])].
	if got := tree.AnswerAt(handover / 2); got != 1 {
		t.Errorf("first half answer = %d", got)
	}
	if got := tree.AnswerAt((handover + 60) / 2); got != 2 {
		t.Errorf("second half answer = %d", got)
	}
}

// TestFigure1UncertaintyWidensAnswer: with a larger uncertainty radius the
// set of trajectories with non-zero probability can only grow, and with a
// huge radius everything is possible all the time — the qualitative
// statement of Example 1 that "this needs to be considered continuously".
func TestFigure1UncertaintyWidensAnswer(t *testing.T) {
	trs, q := figure1Scene(t)
	coverage := func(r float64) map[int64]float64 {
		tree, err := Build(trs, q, 0, 60, r, nil, Config{MaxLevels: 1})
		if err != nil {
			t.Fatal(err)
		}
		out := map[int64]float64{}
		for _, id := range []int64{1, 2, 3} {
			var total float64
			for _, iv := range tree.ZoneIntervals(id) {
				total += iv.T1 - iv.T0
			}
			out[id] = total
		}
		return out
	}
	small := coverage(0.25)
	big := coverage(1.5)
	huge := coverage(10)
	for _, id := range []int64{1, 2, 3} {
		if big[id] < small[id]-1e-9 {
			t.Errorf("Tr%d: coverage shrank with radius: %g -> %g", id, small[id], big[id])
		}
		if huge[id] < 60-1e-6 {
			t.Errorf("Tr%d: huge radius coverage = %g, want full window", id, huge[id])
		}
	}
}
