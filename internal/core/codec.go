package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// treeJSON is the wire representation of an IPAC-NN tree: the conceptual
// root (query parameters) plus the level-1 nodes with nested children —
// the interval structure of the paper's Figure 2.
type treeJSON struct {
	QueryOID int64      `json:"query_oid"`
	Tb       float64    `json:"tb"`
	Te       float64    `json:"te"`
	R        float64    `json:"r"`
	Pruned   []int64    `json:"pruned,omitempty"`
	Kept     []int64    `json:"kept,omitempty"`
	Roots    []nodeJSON `json:"roots"`
}

type nodeJSON struct {
	ID         int64           `json:"id"`
	T0         float64         `json:"t0"`
	T1         float64         `json:"t1"`
	Level      int             `json:"level"`
	Descriptor *descriptorJSON `json:"descriptor,omitempty"`
	Children   []nodeJSON      `json:"children,omitempty"`
}

type descriptorJSON struct {
	MinProb float64      `json:"min_prob"`
	MaxProb float64      `json:"max_prob"`
	Samples [][2]float64 `json:"samples"` // (t, prob)
}

// WriteJSON serializes the tree's answer structure (not the distance
// functions — the answer is self-contained per the paper's Section 1
// semantics).
func (t *Tree) WriteJSON(w io.Writer) error {
	doc := treeJSON{
		QueryOID: t.QueryOID, Tb: t.Tb, Te: t.Te, R: t.R,
		Pruned: t.PrunedOIDs, Kept: t.KeptOIDs,
	}
	for _, n := range t.Roots {
		doc.Roots = append(doc.Roots, nodeToJSON(n))
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

func nodeToJSON(n *Node) nodeJSON {
	out := nodeJSON{ID: n.ID, T0: n.T0, T1: n.T1, Level: n.Level}
	if n.Descriptor != nil {
		d := &descriptorJSON{MinProb: n.Descriptor.MinProb, MaxProb: n.Descriptor.MaxProb}
		for _, s := range n.Descriptor.Samples {
			d.Samples = append(d.Samples, [2]float64{s.T, s.Prob})
		}
		out.Descriptor = d
	}
	for _, c := range n.Children {
		out.Children = append(out.Children, nodeToJSON(c))
	}
	return out
}

// ReadJSON deserializes an answer tree written with WriteJSON. The
// resulting tree supports structural inspection (Walk, NodeCount, Depth,
// NodesAtLevel, descriptors) but not geometry-backed methods (Envelope,
// RankedAt, ZoneIntervals), which require the distance functions of a
// live Build.
func ReadJSON(r io.Reader) (*Tree, error) {
	var doc treeJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("core: decoding tree: %w", err)
	}
	t := &Tree{
		QueryOID: doc.QueryOID, Tb: doc.Tb, Te: doc.Te, R: doc.R,
		PrunedOIDs: doc.Pruned, KeptOIDs: doc.Kept,
	}
	for _, n := range doc.Roots {
		t.Roots = append(t.Roots, nodeFromJSON(n))
	}
	return t, nil
}

func nodeFromJSON(n nodeJSON) *Node {
	out := &Node{ID: n.ID, T0: n.T0, T1: n.T1, Level: n.Level}
	if n.Descriptor != nil {
		d := &Descriptor{MinProb: n.Descriptor.MinProb, MaxProb: n.Descriptor.MaxProb}
		for _, s := range n.Descriptor.Samples {
			d.Samples = append(d.Samples, ProbSample{T: s[0], Prob: s[1]})
		}
		out.Descriptor = d
	}
	for _, c := range n.Children {
		out.Children = append(out.Children, nodeFromJSON(c))
	}
	return out
}
