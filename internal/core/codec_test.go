package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/envelope"
	"repro/internal/workload"
)

func TestTreeJSONRoundTrip(t *testing.T) {
	trs, q := staticSet(t)
	tree, err := Build(trs, q, 0, 60, 0.5, nil, Config{Descriptors: true, DescriptorSamples: 3, Grid: 128})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tree.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.QueryOID != tree.QueryOID || got.Tb != tree.Tb || got.Te != tree.Te || got.R != tree.R {
		t.Fatalf("params changed: %+v", got)
	}
	if got.NodeCount() != tree.NodeCount() || got.Depth() != tree.Depth() {
		t.Fatalf("structure changed: %d/%d nodes, %d/%d depth",
			got.NodeCount(), tree.NodeCount(), got.Depth(), tree.Depth())
	}
	if len(got.PrunedOIDs) != len(tree.PrunedOIDs) || len(got.KeptOIDs) != len(tree.KeptOIDs) {
		t.Fatal("pruned/kept changed")
	}
	// Node-by-node comparison (same walk order).
	var orig, back []*Node
	tree.Walk(func(n *Node) { orig = append(orig, n) })
	got.Walk(func(n *Node) { back = append(back, n) })
	for i := range orig {
		a, b := orig[i], back[i]
		if a.ID != b.ID || a.Level != b.Level ||
			math.Abs(a.T0-b.T0) > 1e-12 || math.Abs(a.T1-b.T1) > 1e-12 {
			t.Fatalf("node %d differs: %+v vs %+v", i, a, b)
		}
		if (a.Descriptor == nil) != (b.Descriptor == nil) {
			t.Fatalf("node %d descriptor presence differs", i)
		}
		if a.Descriptor != nil {
			if a.Descriptor.MinProb != b.Descriptor.MinProb ||
				len(a.Descriptor.Samples) != len(b.Descriptor.Samples) {
				t.Fatalf("node %d descriptor differs", i)
			}
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{broken")); err == nil {
		t.Error("broken JSON accepted")
	}
	if _, err := ReadJSON(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
}

// TestTheorem2DualConsistency checks the paper's Theorem 2: the tree's
// level-L nodes are the level-L envelope restricted to where the defining
// trajectory still has non-zero probability. Concretely, at any sampled
// time the node chain (level 1, 2, ...) covering that time must list
// trajectories in the same order as the k-level envelopes, as long as the
// envelope's defining function is inside the pruning zone there.
func TestTheorem2DualConsistency(t *testing.T) {
	trs, err := workload.Generate(workload.DefaultConfig(777), 50)
	if err != nil {
		t.Fatal(err)
	}
	q := trs[0]
	const r = 0.5
	const maxL = 3
	tree, err := Build(trs, q, 0, 60, r, nil, Config{MaxLevels: maxL})
	if err != nil {
		t.Fatal(err)
	}
	fns := tree.DistanceFuncs()
	levels, err := envelope.KLevelEnvelopes(fns, 0, 60, maxL)
	if err != nil {
		t.Fatal(err)
	}
	env1 := tree.Envelope()
	for _, tm := range []float64{1.3, 12.7, 29.9, 41.1, 58.2} {
		// Walk the tree chain covering tm.
		var chain []int64
		nodes := tree.Roots
		for len(nodes) > 0 {
			var hit *Node
			for _, n := range nodes {
				if tm >= n.T0-1e-9 && tm <= n.T1+1e-9 {
					hit = n
					break
				}
			}
			if hit == nil {
				break
			}
			chain = append(chain, hit.ID)
			nodes = hit.Children
		}
		if len(chain) == 0 {
			t.Fatalf("t=%g: no level-1 node", tm)
		}
		zoneTop := env1.ValueAt(tm) + 4*r
		for li, id := range chain {
			if li >= len(levels) {
				break
			}
			envID := levels[li].IDAt(tm)
			envVal := levels[li].ValueAt(tm)
			if envVal > zoneTop+1e-9 {
				// The envelope's function left the zone: the tree correctly
				// may diverge (it recurses only within the zone).
				break
			}
			if id != envID {
				// Allow a near-tie at the sample point.
				f := tree.env1.Func(id)
				if f == nil || math.Abs(f.Value(tm)-envVal) > 1e-6 {
					t.Errorf("t=%g level %d: tree %d vs envelope %d", tm, li+1, id, envID)
				}
			}
		}
	}
}
