package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-9

func near(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPointVecAlgebra(t *testing.T) {
	p := Point{1, 2}
	q := Point{4, 6}
	if got := p.Dist(q); !near(got, 5, tol) {
		t.Errorf("Dist = %g, want 5", got)
	}
	if got := p.DistSq(q); !near(got, 25, tol) {
		t.Errorf("DistSq = %g, want 25", got)
	}
	v := q.Sub(p)
	if v != (Vec{3, 4}) {
		t.Errorf("Sub = %v, want <3, 4>", v)
	}
	if got := p.Add(v); got != q {
		t.Errorf("Add = %v, want %v", got, q)
	}
	if got := v.Neg().Add(v); got != (Vec{}) {
		t.Errorf("Neg+Add = %v, want zero", got)
	}
	if got := v.Scale(2); got != (Vec{6, 8}) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(Vec{1, 0}); !near(got, 3, tol) {
		t.Errorf("Dot = %g", got)
	}
	if got := v.Cross(Vec{1, 0}); !near(got, -4, tol) {
		t.Errorf("Cross = %g", got)
	}
	if got := v.Len(); !near(got, 5, tol) {
		t.Errorf("Len = %g", got)
	}
	if got := v.Unit().Len(); !near(got, 1, tol) {
		t.Errorf("Unit length = %g", got)
	}
	if got := (Vec{}).Unit(); got != (Vec{}) {
		t.Errorf("Unit of zero = %v", got)
	}
}

func TestLerp(t *testing.T) {
	p, q := Point{0, 0}, Point{10, -10}
	cases := []struct {
		s    float64
		want Point
	}{
		{0, p},
		{1, q},
		{0.5, Point{5, -5}},
		{0.25, Point{2.5, -2.5}},
	}
	for _, c := range cases {
		if got := p.Lerp(q, c.s); !near(got.X, c.want.X, tol) || !near(got.Y, c.want.Y, tol) {
			t.Errorf("Lerp(%g) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestRotate(t *testing.T) {
	v := Vec{1, 0}
	got := v.Rotate(math.Pi / 2)
	if !near(got.X, 0, tol) || !near(got.Y, 1, tol) {
		t.Errorf("Rotate pi/2 = %v", got)
	}
	// Rotation preserves length for arbitrary vectors.
	f := func(x, y, theta float64) bool {
		if math.Abs(x) > 1e6 || math.Abs(y) > 1e6 {
			return true
		}
		w := Vec{x, y}
		return near(w.Rotate(theta).Len(), w.Len(), 1e-6*(1+w.Len()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSegment(t *testing.T) {
	s := Segment{Point{0, 0}, Point{10, 0}}
	if got := s.Len(); !near(got, 10, tol) {
		t.Errorf("Len = %g", got)
	}
	if got := s.At(0.3); !near(got.X, 3, tol) || !near(got.Y, 0, tol) {
		t.Errorf("At = %v", got)
	}
	cases := []struct {
		p     Point
		param float64
		dist  float64
	}{
		{Point{5, 3}, 0.5, 3},
		{Point{-2, 0}, 0, 2},
		{Point{12, 0}, 1, 2},
		{Point{0, 0}, 0, 0},
	}
	for _, c := range cases {
		if got := s.ClosestParam(c.p); !near(got, c.param, tol) {
			t.Errorf("ClosestParam(%v) = %g, want %g", c.p, got, c.param)
		}
		if got := s.DistTo(c.p); !near(got, c.dist, tol) {
			t.Errorf("DistTo(%v) = %g, want %g", c.p, got, c.dist)
		}
	}
	// Degenerate zero-length segment.
	z := Segment{Point{1, 1}, Point{1, 1}}
	if got := z.DistTo(Point{4, 5}); !near(got, 5, tol) {
		t.Errorf("degenerate DistTo = %g, want 5", got)
	}
}

func TestDiskBasics(t *testing.T) {
	d := Disk{Point{0, 0}, 2}
	if !d.Contains(Point{1, 1}) {
		t.Error("Contains inner point failed")
	}
	if !d.Contains(Point{2, 0}) {
		t.Error("Contains boundary point failed")
	}
	if d.Contains(Point{2.1, 0}) {
		t.Error("Contains outer point should be false")
	}
	if got := d.Area(); !near(got, 4*math.Pi, tol) {
		t.Errorf("Area = %g", got)
	}
	if d.Intersects(Disk{Point{10, 0}, 2}) {
		t.Error("distant disks should not intersect")
	}
	if !d.Intersects(Disk{Point{4, 0}, 2}) {
		t.Error("touching disks should intersect")
	}
	if !d.Intersects(Disk{Point{3, 0}, 2}) {
		t.Error("overlapping disks should intersect")
	}
	m := d.MinkowskiSum(3)
	if m.R != 5 || m.C != d.C {
		t.Errorf("MinkowskiSum = %+v", m)
	}
	if got := d.MinDistTo(Point{5, 0}); !near(got, 3, tol) {
		t.Errorf("MinDistTo = %g", got)
	}
	if got := d.MinDistTo(Point{1, 0}); got != 0 {
		t.Errorf("MinDistTo inside = %g, want 0", got)
	}
	if got := d.MaxDistTo(Point{5, 0}); !near(got, 7, tol) {
		t.Errorf("MaxDistTo = %g", got)
	}
}

func TestLensAreaSpecialCases(t *testing.T) {
	a := Disk{Point{0, 0}, 1}
	cases := []struct {
		name string
		b    Disk
		want float64
	}{
		{"disjoint", Disk{Point{5, 0}, 1}, 0},
		{"touching", Disk{Point{2, 0}, 1}, 0},
		{"identical", Disk{Point{0, 0}, 1}, math.Pi},
		{"contained", Disk{Point{0.1, 0}, 3}, math.Pi},
		{"containing-smaller", Disk{Point{0, 0}, 0.5}, math.Pi * 0.25},
	}
	for _, c := range cases {
		if got := LensArea(a, c.b); !near(got, c.want, 1e-9) {
			t.Errorf("%s: LensArea = %g, want %g", c.name, got, c.want)
		}
		// Symmetry.
		if got, rev := LensArea(a, c.b), LensArea(c.b, a); !near(got, rev, 1e-12) {
			t.Errorf("%s: asymmetric lens %g vs %g", c.name, got, rev)
		}
	}
}

// TestLensAreaVsMonteCarlo cross-checks the analytic lens area against a
// Monte Carlo estimate for partially overlapping disks.
func TestLensAreaVsMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		r1 := 0.5 + 2*rng.Float64()
		r2 := 0.5 + 2*rng.Float64()
		// Force partial overlap.
		dist := math.Abs(r1-r2) + rng.Float64()*(r1+r2-math.Abs(r1-r2))
		a := Disk{Point{0, 0}, r1}
		b := Disk{Point{dist, 0}, r2}
		want := LensArea(a, b)

		const n = 200000
		hits := 0
		// Sample uniformly inside disk a.
		for i := 0; i < n; i++ {
			rho := r1 * math.Sqrt(rng.Float64())
			th := 2 * math.Pi * rng.Float64()
			p := Point{rho * math.Cos(th), rho * math.Sin(th)}
			if b.Contains(p) {
				hits++
			}
		}
		got := float64(hits) / n * a.Area()
		if math.Abs(got-want) > 0.03*(1+want) {
			t.Errorf("trial %d (r1=%g r2=%g d=%g): MC=%g analytic=%g",
				trial, r1, r2, dist, got, want)
		}
	}
}

func TestChordHalfAngle(t *testing.T) {
	cases := []struct {
		name        string
		d, rho, rd  float64
		want        float64
		approxCheck bool
	}{
		{"fully inside", 1, 0.5, 3, math.Pi, false},
		{"fully outside", 5, 0.5, 3, 0, false},
		{"zero rho inside", 1, 0, 3, math.Pi, false},
		{"zero rho outside", 5, 0, 3, 0, false},
		{"zero d, rho inside", 0, 1, 3, math.Pi, false},
		{"zero d, rho outside", 0, 4, 3, 0, false},
		{"query inside circle", 1, 5, 3, 0, false},
		{"half", 3, 3, 3, 0, true}, // angle is acos(3/6)... verify numerically below
	}
	for _, c := range cases {
		got := ChordHalfAngle(c.d, c.rho, c.rd)
		if c.approxCheck {
			want := math.Acos((c.d*c.d + c.rho*c.rho - c.rd*c.rd) / (2 * c.d * c.rho))
			if !near(got, want, tol) {
				t.Errorf("%s: got %g, want %g", c.name, got, want)
			}
			continue
		}
		if !near(got, c.want, tol) {
			t.Errorf("%s: got %g, want %g", c.name, got, c.want)
		}
	}
}

// TestChordHalfAngleFraction validates that theta/pi matches the Monte Carlo
// fraction of a circle inside the query disk.
func TestChordHalfAngleFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		d := rng.Float64() * 4
		rho := rng.Float64() * 3
		rd := rng.Float64() * 4
		theta := ChordHalfAngle(d, rho, rd)
		const n = 20000
		inside := 0
		for i := 0; i < n; i++ {
			phi := 2 * math.Pi * rng.Float64()
			p := Point{d + rho*math.Cos(phi), rho * math.Sin(phi)}
			if p.Dist(Point{}) <= rd {
				inside++
			}
		}
		got := float64(inside) / n
		want := theta / math.Pi
		if math.Abs(got-want) > 0.02 {
			t.Errorf("trial %d (d=%g rho=%g rd=%g): MC fraction=%g analytic=%g",
				trial, d, rho, rd, got, want)
		}
	}
}

func TestAABB(t *testing.T) {
	e := EmptyAABB()
	if !e.IsEmpty() {
		t.Error("EmptyAABB should be empty")
	}
	if e.Area() != 0 || e.Perimeter() != 0 {
		t.Error("empty box must have zero measure")
	}
	b := AABBOf(Point{0, 0}, Point{2, 3})
	if b.IsEmpty() {
		t.Error("box of two points should not be empty")
	}
	if got := b.Area(); !near(got, 6, tol) {
		t.Errorf("Area = %g", got)
	}
	if got := b.Perimeter(); !near(got, 10, tol) {
		t.Errorf("Perimeter = %g", got)
	}
	if got := b.Center(); got != (Point{1, 1.5}) {
		t.Errorf("Center = %v", got)
	}
	if !b.ContainsPoint(Point{1, 1}) || b.ContainsPoint(Point{3, 1}) {
		t.Error("ContainsPoint misbehaves")
	}
	u := b.Union(AABBOf(Point{5, 5}))
	if u.MaxX != 5 || u.MaxY != 5 {
		t.Errorf("Union = %+v", u)
	}
	if got := e.Union(b); got != b {
		t.Errorf("empty Union identity failed: %+v", got)
	}
	if got := b.Union(e); got != b {
		t.Errorf("Union with empty identity failed: %+v", got)
	}
	if !b.Intersects(AABB{1, 1, 5, 5}) {
		t.Error("should intersect")
	}
	if b.Intersects(AABB{10, 10, 11, 11}) {
		t.Error("should not intersect")
	}
	if e.Intersects(b) || b.Intersects(e) {
		t.Error("empty never intersects")
	}
	x := b.Expand(1)
	if x.MinX != -1 || x.MaxY != 4 {
		t.Errorf("Expand = %+v", x)
	}
	if got := b.MinDistTo(Point{1, 1}); got != 0 {
		t.Errorf("MinDistTo inside = %g", got)
	}
	if got := b.MinDistTo(Point{5, 3}); !near(got, 3, tol) {
		t.Errorf("MinDistTo right = %g", got)
	}
	if got := b.MinDistTo(Point{5, 7}); !near(got, 5, tol) {
		t.Errorf("MinDistTo corner = %g", got)
	}
}

// Property: Union is commutative, associative and monotone in area.
func TestAABBUnionProperties(t *testing.T) {
	mk := func(x1, y1, x2, y2 float64) AABB {
		return AABBOf(Point{x1, y1}, Point{x2, y2})
	}
	f := func(a1, b1, c1, d1, a2, b2, c2, d2 float64) bool {
		x, y := mk(a1, b1, c1, d1), mk(a2, b2, c2, d2)
		u1, u2 := x.Union(y), y.Union(x)
		if u1 != u2 {
			return false
		}
		return u1.Area() >= x.Area() && u1.Area() >= y.Area()
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: lens area is bounded by the smaller disk's area and is monotone
// nonincreasing in center distance.
func TestLensAreaProperties(t *testing.T) {
	f := func(r1, r2, d float64) bool {
		r1 = math.Abs(math.Mod(r1, 10))
		r2 = math.Abs(math.Mod(r2, 10))
		d = math.Abs(math.Mod(d, 25))
		a := Disk{Point{0, 0}, r1}
		b := Disk{Point{d, 0}, r2}
		area := LensArea(a, b)
		minArea := math.Min(a.Area(), b.Area())
		if area < -tol || area > minArea+1e-9 {
			return false
		}
		farther := LensArea(a, Disk{Point{d + 0.5, 0}, r2})
		return farther <= area+1e-9
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
