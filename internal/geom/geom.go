// Package geom provides the 2D computational-geometry substrate used by the
// uncertain-trajectory machinery: points, vectors, segments, disks,
// circle-circle intersection (lens) areas, Minkowski sums of disks, and
// axis-aligned bounding boxes.
//
// All coordinates are float64 and units are whatever the caller chooses
// (the benchmark harness uses miles and minutes, matching the paper's
// evaluation). Functions are pure and allocation-free unless documented
// otherwise.
package geom

import (
	"fmt"
	"math"
)

// Eps is the default absolute tolerance for geometric predicates.
const Eps = 1e-12

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Vec is a displacement in the plane. Point and Vec are distinct types to
// keep affine and linear quantities from being mixed accidentally.
type Vec struct {
	X, Y float64
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%g, %g)", p.X, p.Y) }

// String implements fmt.Stringer.
func (v Vec) String() string { return fmt.Sprintf("<%g, %g>", v.X, v.Y) }

// Add translates p by v.
func (p Point) Add(v Vec) Point { return Point{p.X + v.X, p.Y + v.Y} }

// Sub returns the displacement from q to p.
func (p Point) Sub(q Point) Vec { return Vec{p.X - q.X, p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// DistSq returns the squared Euclidean distance between p and q.
func (p Point) DistSq(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Lerp linearly interpolates between p (s=0) and q (s=1).
func (p Point) Lerp(q Point, s float64) Point {
	return Point{p.X + s*(q.X-p.X), p.Y + s*(q.Y-p.Y)}
}

// Add returns the vector sum v+w.
func (v Vec) Add(w Vec) Vec { return Vec{v.X + w.X, v.Y + w.Y} }

// Sub returns the vector difference v-w.
func (v Vec) Sub(w Vec) Vec { return Vec{v.X - w.X, v.Y - w.Y} }

// Neg returns -v.
func (v Vec) Neg() Vec { return Vec{-v.X, -v.Y} }

// Scale returns v scaled by s.
func (v Vec) Scale(s float64) Vec { return Vec{s * v.X, s * v.Y} }

// Dot returns the dot product v·w.
func (v Vec) Dot(w Vec) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the z-component of the 3D cross product v×w.
func (v Vec) Cross(w Vec) float64 { return v.X*w.Y - v.Y*w.X }

// Len returns the Euclidean norm of v.
func (v Vec) Len() float64 { return math.Hypot(v.X, v.Y) }

// LenSq returns the squared Euclidean norm of v.
func (v Vec) LenSq() float64 { return v.X*v.X + v.Y*v.Y }

// Unit returns v normalized to length 1. The zero vector is returned
// unchanged.
func (v Vec) Unit() Vec {
	l := v.Len()
	if l < Eps {
		return Vec{}
	}
	return Vec{v.X / l, v.Y / l}
}

// Rotate returns v rotated counterclockwise by theta radians.
func (v Vec) Rotate(theta float64) Vec {
	s, c := math.Sincos(theta)
	return Vec{c*v.X - s*v.Y, s*v.X + c*v.Y}
}

// Segment is a directed line segment from A to B.
type Segment struct {
	A, B Point
}

// Len returns the length of the segment.
func (s Segment) Len() float64 { return s.A.Dist(s.B) }

// At returns the point at parameter u in [0,1] along the segment.
func (s Segment) At(u float64) Point { return s.A.Lerp(s.B, u) }

// Dir returns the (unnormalized) direction vector B-A.
func (s Segment) Dir() Vec { return s.B.Sub(s.A) }

// ClosestParam returns the parameter u in [0,1] of the point on the segment
// closest to p.
func (s Segment) ClosestParam(p Point) float64 {
	d := s.Dir()
	den := d.LenSq()
	if den < Eps {
		return 0
	}
	u := p.Sub(s.A).Dot(d) / den
	return clamp01(u)
}

// DistTo returns the distance from p to the segment.
func (s Segment) DistTo(p Point) float64 {
	return p.Dist(s.At(s.ClosestParam(p)))
}

func clamp01(u float64) float64 {
	switch {
	case u < 0:
		return 0
	case u > 1:
		return 1
	default:
		return u
	}
}

// Disk is a closed disk with center C and radius R (the paper's uncertainty
// zone at a time instant).
type Disk struct {
	C Point
	R float64
}

// Contains reports whether p lies inside or on the disk.
func (d Disk) Contains(p Point) bool { return d.C.DistSq(p) <= d.R*d.R+Eps }

// Area returns the area of the disk.
func (d Disk) Area() float64 { return math.Pi * d.R * d.R }

// Intersects reports whether two disks share at least one point.
func (d Disk) Intersects(e Disk) bool {
	rr := d.R + e.R
	return d.C.DistSq(e.C) <= rr*rr+Eps
}

// MinkowskiSum returns the Minkowski sum of the disk with a disk of radius
// rd centered at the origin: a disk with the same center and radius R+rd.
// This is the (Dq ⊕ Rd) construction of Section 3.1 of the paper.
func (d Disk) MinkowskiSum(rd float64) Disk { return Disk{d.C, d.R + rd} }

// MinDistTo returns the smallest distance from p to any point of the disk
// (0 if p is inside), the paper's R^min when p is the crisp query location.
func (d Disk) MinDistTo(p Point) float64 {
	return math.Max(0, d.C.Dist(p)-d.R)
}

// MaxDistTo returns the largest distance from p to any point of the disk,
// the paper's R^max.
func (d Disk) MaxDistTo(p Point) float64 { return d.C.Dist(p) + d.R }

// LensArea returns the area of the intersection of two disks (the circular
// "lens"). It is the geometric core of the uniform within-distance
// probability, Eq. (4) of the paper.
//
// The formula handles all degenerate configurations: disjoint disks return
// 0, containment returns the smaller disk's area.
func LensArea(d, e Disk) float64 {
	if d.R < 0 || e.R < 0 {
		return 0
	}
	dist := d.C.Dist(e.C)
	if dist >= d.R+e.R {
		return 0 // disjoint
	}
	if dist <= math.Abs(d.R-e.R) {
		r := math.Min(d.R, e.R)
		return math.Pi * r * r // containment
	}
	// Standard two-circular-segment decomposition.
	r1, r2 := d.R, e.R
	d2 := dist * dist
	alpha := 2 * math.Acos(clampUnit((d2+r1*r1-r2*r2)/(2*dist*r1)))
	beta := 2 * math.Acos(clampUnit((d2+r2*r2-r1*r1)/(2*dist*r2)))
	return 0.5*r1*r1*(alpha-math.Sin(alpha)) + 0.5*r2*r2*(beta-math.Sin(beta))
}

func clampUnit(x float64) float64 {
	switch {
	case x < -1:
		return -1
	case x > 1:
		return 1
	default:
		return x
	}
}

// ChordHalfAngle returns the half-angle theta (at the center of a circle of
// radius rho centered at distance d from the origin) subtended by the part
// of that circle lying inside the disk of radius Rd centered at the origin.
// It returns:
//
//	0        if the circle lies entirely outside the disk,
//	math.Pi  if the circle lies entirely inside the disk,
//	acos((d² + rho² − Rd²)/(2·d·rho)) otherwise.
//
// This is the kernel of the generic radial within-distance probability
// (Section 3.1): the fraction of the circle inside the query disk is
// theta/pi.
func ChordHalfAngle(d, rho, rd float64) float64 {
	if rho <= 0 {
		if d <= rd {
			return math.Pi
		}
		return 0
	}
	if d <= 0 {
		if rho <= rd {
			return math.Pi
		}
		return 0
	}
	if d+rho <= rd {
		return math.Pi // fully inside
	}
	if d-rho >= rd || rho-d >= rd {
		if rho-d >= rd {
			return 0 // query disk strictly inside the circle: no part of circle inside
		}
		return 0 // fully outside
	}
	return math.Acos(clampUnit((d*d + rho*rho - rd*rd) / (2 * d * rho)))
}

// AABB is an axis-aligned bounding box, optionally extended with a time
// dimension by the spatial index package.
type AABB struct {
	MinX, MinY, MaxX, MaxY float64
}

// EmptyAABB returns an inverted box that behaves as the identity for Union.
func EmptyAABB() AABB {
	inf := math.Inf(1)
	return AABB{inf, inf, -inf, -inf}
}

// AABBOf returns the bounding box of a set of points.
func AABBOf(pts ...Point) AABB {
	b := EmptyAABB()
	for _, p := range pts {
		b = b.ExtendPoint(p)
	}
	return b
}

// IsEmpty reports whether the box contains no points.
func (b AABB) IsEmpty() bool { return b.MinX > b.MaxX || b.MinY > b.MaxY }

// ExtendPoint grows the box to include p.
func (b AABB) ExtendPoint(p Point) AABB {
	return AABB{
		math.Min(b.MinX, p.X), math.Min(b.MinY, p.Y),
		math.Max(b.MaxX, p.X), math.Max(b.MaxY, p.Y),
	}
}

// Union returns the smallest box containing both b and o.
func (b AABB) Union(o AABB) AABB {
	if b.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return b
	}
	return AABB{
		math.Min(b.MinX, o.MinX), math.Min(b.MinY, o.MinY),
		math.Max(b.MaxX, o.MaxX), math.Max(b.MaxY, o.MaxY),
	}
}

// Intersects reports whether two boxes overlap (closed-boundary semantics).
func (b AABB) Intersects(o AABB) bool {
	if b.IsEmpty() || o.IsEmpty() {
		return false
	}
	return b.MinX <= o.MaxX && o.MinX <= b.MaxX &&
		b.MinY <= o.MaxY && o.MinY <= b.MaxY
}

// ContainsPoint reports whether p lies inside or on the box.
func (b AABB) ContainsPoint(p Point) bool {
	return p.X >= b.MinX && p.X <= b.MaxX && p.Y >= b.MinY && p.Y <= b.MaxY
}

// Area returns the area of the box (0 if empty).
func (b AABB) Area() float64 {
	if b.IsEmpty() {
		return 0
	}
	return (b.MaxX - b.MinX) * (b.MaxY - b.MinY)
}

// Perimeter returns the perimeter of the box (0 if empty).
func (b AABB) Perimeter() float64 {
	if b.IsEmpty() {
		return 0
	}
	return 2 * ((b.MaxX - b.MinX) + (b.MaxY - b.MinY))
}

// Expand grows the box by m on every side. Useful for turning an expected-
// location box into an uncertainty-aware box (m = uncertainty radius).
func (b AABB) Expand(m float64) AABB {
	if b.IsEmpty() {
		return b
	}
	return AABB{b.MinX - m, b.MinY - m, b.MaxX + m, b.MaxY + m}
}

// Center returns the center point of the box.
func (b AABB) Center() Point {
	return Point{(b.MinX + b.MaxX) / 2, (b.MinY + b.MaxY) / 2}
}

// MinDistTo returns the smallest distance from p to any point in the box
// (0 if p is inside). Used by best-first kNN search in the spatial index.
func (b AABB) MinDistTo(p Point) float64 {
	dx := math.Max(0, math.Max(b.MinX-p.X, p.X-b.MaxX))
	dy := math.Max(0, math.Max(b.MinY-p.Y, p.Y-b.MaxY))
	return math.Hypot(dx, dy)
}
