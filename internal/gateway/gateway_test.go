package gateway

// The HTTP equivalence gate and transport-behavior tests: every Request
// kind through POST /v1/query and /v1/batch must answer byte-identically
// (modulo wall-clock fields) to the same backend driven directly, typed
// failures must map onto their status codes, auth must gate every /v1
// route, and Shutdown must drain.

import (
	"bytes"
	"context"
	"crypto/tls"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/mod"
	"repro/internal/testcert"
	"repro/internal/textidx"
	"repro/internal/trajectory"
	"repro/internal/workload"
)

const (
	equivSeed = 2009
	equivR    = 0.5
	equivTb   = 0.0
	equivTe   = 30.0
)

func buildStore(t testing.TB, n int, seed int64) (*mod.Store, []*trajectory.Trajectory) {
	t.Helper()
	trs, err := workload.Generate(workload.DefaultConfig(seed), n)
	if err != nil {
		t.Fatal(err)
	}
	store, err := mod.NewUniformStore(equivR)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.InsertAll(trs); err != nil {
		t.Fatal(err)
	}
	// Deterministic tag assignment (by OID, so equivRequests can pick
	// matching/non-matching targets): tags never change an unfiltered
	// answer, and the predicate rows of the equivalence suite need a
	// tagged population.
	for _, tr := range trs {
		var tags []string
		if tr.OID%2 == 0 {
			tags = append(tags, "available")
		}
		if tr.OID%3 == 0 {
			tags = append(tags, "ev")
		}
		if tags != nil {
			if err := store.SetTags(tr.OID, tags); err != nil {
				t.Fatal(err)
			}
		}
	}
	return store, trs
}

// equivRequests covers every Request kind plus the typed error paths
// (unknown target, unknown query trajectory) — the same gate the
// cluster layer holds itself to.
func equivRequests(trs []*trajectory.Trajectory) []engine.Request {
	q := trs[0].OID
	near := trs[1].OID
	far := trs[len(trs)-1].OID
	return []engine.Request{
		{Kind: engine.KindUQ11, QueryOID: q, Tb: equivTb, Te: equivTe, OID: near},
		{Kind: engine.KindUQ11, QueryOID: q, Tb: equivTb, Te: equivTe, OID: far},
		{Kind: engine.KindUQ12, QueryOID: q, Tb: equivTb, Te: equivTe, OID: near},
		{Kind: engine.KindUQ13, QueryOID: q, Tb: equivTb, Te: equivTe, OID: near, X: 0.25},
		{Kind: engine.KindUQ21, QueryOID: q, Tb: equivTb, Te: equivTe, OID: near, K: 2},
		{Kind: engine.KindUQ22, QueryOID: q, Tb: equivTb, Te: equivTe, OID: near, K: 3},
		{Kind: engine.KindUQ23, QueryOID: q, Tb: equivTb, Te: equivTe, OID: near, K: 2, X: 0.5},
		{Kind: engine.KindUQ31, QueryOID: q, Tb: equivTb, Te: equivTe},
		{Kind: engine.KindUQ32, QueryOID: q, Tb: equivTb, Te: equivTe},
		{Kind: engine.KindUQ33, QueryOID: q, Tb: equivTb, Te: equivTe, X: 0.25},
		{Kind: engine.KindUQ41, QueryOID: q, Tb: equivTb, Te: equivTe, K: 2},
		{Kind: engine.KindUQ42, QueryOID: q, Tb: equivTb, Te: equivTe, K: 3},
		{Kind: engine.KindUQ43, QueryOID: q, Tb: equivTb, Te: equivTe, K: 2, X: 0.5},
		{Kind: engine.KindNNAt, QueryOID: q, Tb: equivTb, Te: equivTe, OID: near, T: 15},
		{Kind: engine.KindRankAt, QueryOID: q, Tb: equivTb, Te: equivTe, OID: near, T: 15, K: 2},
		{Kind: engine.KindAllNNAt, QueryOID: q, Tb: equivTb, Te: equivTe, T: 15},
		{Kind: engine.KindAllRankAt, QueryOID: q, Tb: equivTb, Te: equivTe, T: 15, K: 2},
		{Kind: engine.KindThreshold, QueryOID: q, Tb: equivTb, Te: equivTe, OID: near, P: 0.2, X: 0.3},
		{Kind: engine.KindAllPairs, Tb: equivTb, Te: equivTe},
		{Kind: engine.KindReverse, Tb: equivTb, Te: equivTe, OID: near},
		{Kind: engine.KindUQ31, QueryOID: trs[(len(trs)-1)/2].OID, Tb: equivTb, Te: equivTe},
		// Error paths: unknown target, unknown query trajectory, bad kind.
		{Kind: engine.KindUQ11, QueryOID: q, Tb: equivTb, Te: equivTe, OID: 987654321},
		{Kind: engine.KindUQ31, QueryOID: 987654321, Tb: equivTb, Te: equivTe},
		{Kind: engine.KindReverse, Tb: equivTb, Te: equivTe, OID: 987654321},
		{Kind: "NOPE", Tb: equivTb, Te: equivTe},
		{Kind: engine.KindUQ31, QueryOID: q, Tb: 10, Te: 10},
	}
}

// predicateRequests is the spatio-textual matrix the equivalence gates
// append to equivRequests: the kinds under tag predicates, with both
// matching and non-matching targets (buildStore tags oid%2==0
// "available", oid%3==0 "ev"), plus the predicate error paths.
func predicateRequests(trs []*trajectory.Trajectory) []engine.Request {
	q := trs[0].OID
	pick := func(even bool) int64 {
		for _, tr := range trs[1:] {
			if (tr.OID%2 == 0) == even {
				return tr.OID
			}
		}
		return -1
	}
	tagged, untagged := pick(true), pick(false)
	avail := &textidx.Predicate{All: []string{"available"}}
	anyOf := &textidx.Predicate{Any: []string{"available", "ev"}}
	notEV := &textidx.Predicate{All: []string{"available"}, Not: []string{"ev"}}
	return []engine.Request{
		{Kind: engine.KindUQ11, QueryOID: q, Tb: equivTb, Te: equivTe, OID: tagged, Where: avail},
		{Kind: engine.KindUQ11, QueryOID: q, Tb: equivTb, Te: equivTe, OID: untagged, Where: avail},
		{Kind: engine.KindUQ21, QueryOID: q, Tb: equivTb, Te: equivTe, OID: tagged, K: 2, Where: avail},
		{Kind: engine.KindUQ31, QueryOID: q, Tb: equivTb, Te: equivTe, Where: avail},
		{Kind: engine.KindUQ31, QueryOID: q, Tb: equivTb, Te: equivTe, Where: anyOf},
		{Kind: engine.KindUQ31, QueryOID: q, Tb: equivTb, Te: equivTe, Where: notEV},
		{Kind: engine.KindUQ32, QueryOID: q, Tb: equivTb, Te: equivTe, Where: avail},
		{Kind: engine.KindUQ33, QueryOID: q, Tb: equivTb, Te: equivTe, X: 0.25, Where: avail},
		{Kind: engine.KindUQ41, QueryOID: q, Tb: equivTb, Te: equivTe, K: 2, Where: avail},
		{Kind: engine.KindUQ43, QueryOID: q, Tb: equivTb, Te: equivTe, K: 2, X: 0.5, Where: anyOf},
		{Kind: engine.KindNNAt, QueryOID: q, Tb: equivTb, Te: equivTe, OID: tagged, T: 15, Where: avail},
		{Kind: engine.KindRankAt, QueryOID: q, Tb: equivTb, Te: equivTe, OID: tagged, T: 15, K: 2, Where: avail},
		{Kind: engine.KindAllNNAt, QueryOID: q, Tb: equivTb, Te: equivTe, T: 15, Where: avail},
		{Kind: engine.KindAllRankAt, QueryOID: q, Tb: equivTb, Te: equivTe, T: 15, K: 2, Where: anyOf},
		{Kind: engine.KindThreshold, QueryOID: q, Tb: equivTb, Te: equivTe, OID: tagged, P: 0.2, X: 0.3, Where: avail},
		{Kind: engine.KindAllThreshold, QueryOID: q, Tb: equivTb, Te: equivTe, P: 0.2, X: 0.3, Where: avail},
		{Kind: engine.KindAllPairs, Tb: equivTb, Te: equivTe, Where: avail},
		{Kind: engine.KindReverse, Tb: equivTb, Te: equivTe, OID: tagged, Where: avail},
		{Kind: engine.KindReverse, Tb: equivTb, Te: equivTe, OID: untagged, Where: avail},
		// Predicate error paths: unknown filtered target; empty predicate.
		{Kind: engine.KindUQ11, QueryOID: q, Tb: equivTb, Te: equivTe, OID: 987654321, Where: avail},
		{Kind: engine.KindUQ31, QueryOID: q, Tb: equivTb, Te: equivTe, Where: &textidx.Predicate{}},
	}
}

// startGateway serves opts on a loopback listener (TLS when pair is
// non-nil) and returns the base URL plus a matching client.
func startGateway(t testing.TB, opts Options, pair *testcert.Pair) (*Server, string, *http.Client) {
	t.Helper()
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	scheme := "http"
	client := &http.Client{}
	if pair != nil {
		l = tls.NewListener(l, pair.ServerConfig())
		scheme = "https"
		client = &http.Client{Transport: &http.Transport{TLSClientConfig: pair.ClientConfig()}}
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
		client.CloseIdleConnections()
	})
	return srv, fmt.Sprintf("%s://%s", scheme, l.Addr()), client
}

// postJSON posts body (pre-marshaled or any) and returns status + body.
func postJSON(t testing.TB, client *http.Client, url, token string, body any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// normWalls zeroes every wall-clock field (the only nondeterminism in a
// Result) so the rest of the payload can be compared byte-for-byte.
func normWalls(ex *engine.Explain) {
	ex.Wall = 0
	ex.RefineWall = 0
	for i := range ex.ShardExplains {
		normWalls(&ex.ShardExplains[i])
	}
}

// canonical renders a Result as wall-normalized JSON.
func canonical(t testing.TB, res engine.Result) string {
	t.Helper()
	res.Explain.ShardExplains = append([]engine.Explain(nil), res.Explain.ShardExplains...)
	normWalls(&res.Explain)
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// decodeCanonical parses an HTTP result body into the same canonical
// form.
func decodeCanonical(t testing.TB, body []byte) string {
	t.Helper()
	var res engine.Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("unmarshal result %q: %v", body, err)
	}
	return canonical(t, res)
}

func decodeAPIError(t testing.TB, body []byte) apiError {
	t.Helper()
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("unmarshal error body %q: %v", body, err)
	}
	return eb.Error
}

// checkHTTPAnswers drives reqs through /v1/query one at a time and
// compares each against the oracle results (same backend construction,
// same order, so memo evolution matches).
func checkHTTPAnswers(t *testing.T, client *http.Client, base, token string,
	reqs []engine.Request, want []engine.Result) {
	t.Helper()
	for i, req := range reqs {
		status, body := postJSON(t, client, base+"/v1/query", token, queryRequest{Request: req})
		tag := fmt.Sprintf("req[%d] %s", i, req.Kind)
		if want[i].Err != nil {
			wantStatus, wantCode := errStatus(want[i].Err)
			if status != wantStatus {
				t.Fatalf("%s: status %d, want %d (body %s)", tag, status, wantStatus, body)
			}
			if ae := decodeAPIError(t, body); ae.Code != wantCode {
				t.Fatalf("%s: code %q, want %q", tag, ae.Code, wantCode)
			}
			continue
		}
		if status != http.StatusOK {
			t.Fatalf("%s: status %d (body %s)", tag, status, body)
		}
		if got, w := decodeCanonical(t, body), canonical(t, want[i]); got != w {
			t.Fatalf("%s: HTTP answer diverged\n got: %s\nwant: %s", tag, got, w)
		}
	}
}

// oracleAnswers evaluates reqs one at a time on a fresh engine — the
// per-request twin of the gateway's /v1/query path.
func oracleAnswers(store *mod.Store, reqs []engine.Request) []engine.Result {
	eng := engine.New(0)
	out := make([]engine.Result, len(reqs))
	for i, req := range reqs {
		out[i], _ = eng.Do(context.Background(), store, req)
	}
	return out
}

// TestQueryEquivalenceLocal: the full request suite over HTTP against a
// local engine backend answers byte-identically (modulo walls) to the
// identical engine driven directly, and /v1/batch matches DoBatch.
func TestQueryEquivalenceLocal(t *testing.T) {
	store, trs := buildStore(t, 200, equivSeed)
	reqs := append(equivRequests(trs), predicateRequests(trs)...)
	want := oracleAnswers(store, reqs)

	_, base, client := startGateway(t, Options{
		Backend: EngineBackend{Eng: engine.New(0), Store: store},
	}, nil)
	checkHTTPAnswers(t, client, base, "", reqs, want)
}

func TestBatchEquivalenceLocal(t *testing.T) {
	store, trs := buildStore(t, 200, equivSeed)
	reqs := append(equivRequests(trs), predicateRequests(trs)...)
	wantBatch, err := engine.New(0).DoBatch(context.Background(), store, reqs)
	if err != nil {
		t.Fatal(err)
	}

	_, base, client := startGateway(t, Options{
		Backend: EngineBackend{Eng: engine.New(0), Store: store},
	}, nil)
	status, body := postJSON(t, client, base+"/v1/batch", "", batchRequest{Requests: reqs})
	if status != http.StatusOK {
		t.Fatalf("batch status %d (body %s)", status, body)
	}
	var br batchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != len(reqs) {
		t.Fatalf("batch returned %d results for %d requests", len(br.Results), len(reqs))
	}
	for i, entry := range br.Results {
		tag := fmt.Sprintf("batch[%d] %s", i, reqs[i].Kind)
		if wantBatch[i].Err != nil {
			if entry.OK || entry.Error == nil {
				t.Fatalf("%s: ok=%v, want typed error", tag, entry.OK)
			}
			if _, wantCode := errStatus(wantBatch[i].Err); entry.Error.Code != wantCode {
				t.Fatalf("%s: code %q, want %q", tag, entry.Error.Code, wantCode)
			}
			continue
		}
		if !entry.OK || entry.Result == nil {
			t.Fatalf("%s: not ok: %+v", tag, entry.Error)
		}
		if got, w := canonical(t, *entry.Result), canonical(t, wantBatch[i]); got != w {
			t.Fatalf("%s: batch answer diverged\n got: %s\nwant: %s", tag, got, w)
		}
	}
}

// TestAuthGatesV1Routes: with a token configured, every /v1 route
// answers 401 (missing and wrong token) while the operational routes
// stay open; the right token unlocks the API. All over TLS.
func TestAuthGatesV1Routes(t *testing.T) {
	pair, err := testcert.New()
	if err != nil {
		t.Fatal(err)
	}
	store, trs := buildStore(t, 20, equivSeed)
	hub := newTestHub(t, store)
	_, base, client := startGateway(t, Options{
		Backend: EngineBackend{Eng: engine.New(0), Store: store},
		Hub:     hub,
		Token:   "gw-secret",
		Metrics: NewMetrics(nil),
	}, &pair)

	okReq := queryRequest{Request: engine.Request{
		Kind: engine.KindUQ31, QueryOID: trs[0].OID, Tb: equivTb, Te: equivTe,
	}}
	for _, token := range []string{"", "wrong"} {
		for _, route := range []string{"/v1/query", "/v1/batch", "/v1/ingest"} {
			status, body := postJSON(t, client, base+route, token, okReq)
			if status != http.StatusUnauthorized {
				t.Fatalf("token %q %s: status %d, want 401", token, route, status)
			}
			if ae := decodeAPIError(t, body); ae.Code != "unauthorized" {
				t.Fatalf("token %q %s: code %q", token, route, ae.Code)
			}
		}
		// The SSE route is gated before any stream starts.
		req, _ := http.NewRequest(http.MethodGet, base+"/v1/subscribe?kind=UQ31", nil)
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("token %q subscribe: status %d, want 401", token, resp.StatusCode)
		}
	}

	// Operational routes stay open.
	for _, route := range []string{"/healthz", "/readyz", "/metrics", "/openapi.yaml"} {
		resp, err := client.Get(base + route)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d, want 200", route, resp.StatusCode)
		}
	}

	// The right token unlocks the API.
	status, body := postJSON(t, client, base+"/v1/query", "gw-secret", okReq)
	if status != http.StatusOK {
		t.Fatalf("authed query: status %d (body %s)", status, body)
	}
}

// TestDeadlineMaps504: a deadline the evaluation cannot meet surfaces as
// 504 deadline_exceeded — the HTTP twin of the wire-identity regression.
func TestDeadlineMaps504(t *testing.T) {
	store, trs := buildStore(t, 400, equivSeed)
	_, base, client := startGateway(t, Options{
		Backend: EngineBackend{Eng: engine.New(0), Store: store},
	}, nil)

	// Batch of distinct (query, window) pairs: each pays a fresh O(N)
	// preprocessing, far beyond 1 ms at N=400.
	var reqs []engine.Request
	for i := 0; i < 64; i++ {
		reqs = append(reqs, engine.Request{
			Kind: engine.KindUQ31, QueryOID: trs[i].OID, Tb: 0, Te: 30 + float64(i)/100,
		})
	}
	status, body := postJSON(t, client, base+"/v1/batch", "",
		batchRequest{Requests: reqs, DeadlineMS: 1})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("deadline batch: status %d, want 504 (body %.200s)", status, body)
	}
	if ae := decodeAPIError(t, body); ae.Code != "deadline_exceeded" {
		t.Fatalf("deadline batch: code %q, want deadline_exceeded", ae.Code)
	}
}

// TestRequestTimeoutCeiling: the server's RequestTimeout clamps client
// deadlines (including "no deadline").
func TestRequestTimeoutCeiling(t *testing.T) {
	store, trs := buildStore(t, 400, equivSeed)
	_, base, client := startGateway(t, Options{
		Backend:        EngineBackend{Eng: engine.New(0), Store: store},
		RequestTimeout: time.Millisecond,
	}, nil)
	var reqs []engine.Request
	for i := 0; i < 64; i++ {
		reqs = append(reqs, engine.Request{
			Kind: engine.KindUQ31, QueryOID: trs[i].OID, Tb: 0, Te: 30 + float64(i)/100,
		})
	}
	// No client deadline at all: the ceiling still applies.
	status, body := postJSON(t, client, base+"/v1/batch", "", batchRequest{Requests: reqs})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("ceiling: status %d, want 504 (body %.200s)", status, body)
	}
}

// TestBadRequests: malformed bodies, empty batches, oversized payloads,
// and wrong methods map to their taxonomy codes.
func TestBadRequests(t *testing.T) {
	store, _ := buildStore(t, 5, equivSeed)
	_, base, client := startGateway(t, Options{
		Backend:      EngineBackend{Eng: engine.New(0), Store: store},
		MaxBodyBytes: 1024,
	}, nil)

	resp, err := client.Post(base+"/v1/query", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", resp.StatusCode)
	}
	if ae := decodeAPIError(t, body); ae.Code != "bad_request" {
		t.Fatalf("malformed body: code %q", ae.Code)
	}

	status, body := postJSON(t, client, base+"/v1/batch", "", batchRequest{})
	if status != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", status)
	}

	// A body past MaxBodyBytes answers 413.
	big := batchRequest{Requests: make([]engine.Request, 64)}
	status, body = postJSON(t, client, base+"/v1/batch", "", big)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413 (body %.200s)", status, body)
	}
	if ae := decodeAPIError(t, body); ae.Code != "body_too_large" {
		t.Fatalf("oversized body: code %q", ae.Code)
	}

	// Wrong method on a known pattern.
	resp, err = client.Get(base + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/query: status %d, want 405", resp.StatusCode)
	}

	// Ingest/subscribe without a hub answer 501.
	status, body = postJSON(t, client, base+"/v1/ingest", "",
		ingestRequest{Updates: []wireUpdate{{OID: 1, Verts: [][3]float64{{0, 0, 0}, {1, 1, 1}}}}})
	if status != http.StatusNotImplemented {
		t.Fatalf("ingest without hub: status %d, want 501", status)
	}
	resp, err = client.Get(base + "/v1/subscribe?kind=UQ31")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("subscribe without hub: status %d, want 501", resp.StatusCode)
	}
}

// TestOpenAPIServed: the committed spec is served verbatim.
func TestOpenAPIServed(t *testing.T) {
	store, _ := buildStore(t, 5, equivSeed)
	_, base, client := startGateway(t, Options{
		Backend: EngineBackend{Eng: engine.New(0), Store: store},
	}, nil)
	resp, err := client.Get(base + "/openapi.yaml")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("openapi: status %d", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte("openapi: 3.0")) || !bytes.Contains(body, []byte("/v1/query")) {
		t.Fatalf("openapi spec looks wrong (%d bytes)", len(body))
	}
}

// TestShutdownDrains: Shutdown flips readiness, lets an in-flight query
// finish, and then refuses new connections.
func TestShutdownDrains(t *testing.T) {
	store, trs := buildStore(t, 400, equivSeed)
	srv, base, client := startGateway(t, Options{
		Backend: EngineBackend{Eng: engine.New(0), Store: store},
	}, nil)

	var reqs []engine.Request
	for i := 0; i < 16; i++ {
		reqs = append(reqs, engine.Request{
			Kind: engine.KindUQ31, QueryOID: trs[i].OID, Tb: 0, Te: 30 + float64(i)/100,
		})
	}
	type reply struct {
		status int
		body   []byte
	}
	got := make(chan reply, 1)
	go func() {
		status, body := postJSON(t, client, base+"/v1/batch", "", batchRequest{Requests: reqs})
		got <- reply{status, body}
	}()
	time.Sleep(50 * time.Millisecond) // let the batch reach the engine

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	r := <-got
	if r.status != http.StatusOK {
		t.Fatalf("in-flight batch severed by shutdown: status %d (body %.200s)", r.status, r.body)
	}
	// New connections are refused once the listener is down.
	if _, err := client.Get(base + "/healthz"); err == nil {
		t.Fatal("request succeeded after shutdown")
	}
}

// TestReadyzDrains: readyz flips to 503 as soon as draining starts.
func TestReadyzDrains(t *testing.T) {
	store, _ := buildStore(t, 5, equivSeed)
	srv, base, client := startGateway(t, Options{
		Backend: EngineBackend{Eng: engine.New(0), Store: store},
	}, nil)
	resp, err := client.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: %d", resp.StatusCode)
	}
	srv.draining.Store(true)
	resp, err = client.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d, want 503", resp.StatusCode)
	}
	srv.draining.Store(false)
}
