package gateway

// The SSE continuous-query stream. GET /v1/subscribe registers a
// standing query on the hub and streams its diff events as
// `event: diff` frames whose `id:` is the subscription sequence number,
// so a plain EventSource reconnect (Last-Event-ID) — or an explicit
// sub_id+from_seq pair — resumes the stream across a severed connection
// with the hub's replay backlog, the same recovery contract as the TCP
// modserver's detached subscriptions.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/continuous"
	"repro/internal/engine"
	"repro/internal/mod"
	"repro/internal/textidx"
)

// sseWriteTimeout bounds each event write so a stalled consumer cannot
// wedge its handler goroutine forever (ingest itself never blocks on a
// stream: fan-out severs a full channel instead of waiting).
const sseWriteTimeout = 30 * time.Second

// sseStream is one live stream's event route. The ingest fan-out is the
// only sender; it (or Shutdown) closes ch, always under emitMu.
type sseStream struct {
	ch chan continuous.Event
}

// subscribedEvent is the first SSE frame: the subscription id and its
// current full answer (the initial evaluation on subscribe, the
// re-fetched answer on resume).
type subscribedEvent struct {
	SubID  int64         `json:"sub_id"`
	Result engine.Result `json:"result"`
}

func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	hub := s.opts.Hub
	if hub == nil {
		writeError(w, fmt.Errorf("%w: no live hub", errUnsupported))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, errors.New("gateway: response writer cannot stream"))
		return
	}

	q := r.URL.Query()
	resume := q.Get("sub_id") != ""
	var (
		subID   int64
		fromSeq uint64
		req     engine.Request
		err     error
	)
	if resume {
		subID, err = strconv.ParseInt(q.Get("sub_id"), 10, 64)
		if err != nil {
			writeError(w, badReq(fmt.Errorf("gateway: bad sub_id: %w", err)))
			return
		}
		seqStr := q.Get("from_seq")
		if seqStr == "" {
			seqStr = r.Header.Get("Last-Event-ID")
		}
		if seqStr == "" {
			writeError(w, badReq(errors.New("gateway: resume needs from_seq or Last-Event-ID")))
			return
		}
		fromSeq, err = strconv.ParseUint(seqStr, 10, 64)
		if err != nil {
			writeError(w, badReq(fmt.Errorf("gateway: bad from_seq: %w", err)))
			return
		}
	} else {
		req, err = requestFromQuery(q)
		if err != nil {
			writeError(w, err)
			return
		}
	}

	st := &sseStream{ch: make(chan continuous.Event, s.opts.EventBuffer)}
	var answer engine.Result
	var backlog []continuous.Event

	// Registration happens under the emit lock: no ingest can fan out
	// between the answer/backlog we capture here and the live events the
	// channel will carry, so the stream is gap- and duplicate-free.
	s.emitMu.Lock()
	if s.draining.Load() {
		s.emitMu.Unlock()
		writeError(w, errDraining)
		return
	}
	if resume {
		s.subsMu.Lock()
		_, live := s.subscribers[subID]
		_, parked := s.detached[subID]
		s.subsMu.Unlock()
		if live {
			s.emitMu.Unlock()
			writeError(w, badReq(fmt.Errorf("gateway: subscription %d is already streaming", subID)))
			return
		}
		if !parked {
			s.emitMu.Unlock()
			writeError(w, fmt.Errorf("gateway: %w: no detached subscription %d", mod.ErrNotFound, subID))
			return
		}
		backlog, err = hub.Replay(subID, fromSeq)
		if err != nil {
			s.emitMu.Unlock()
			if errors.Is(err, continuous.ErrEventGap) {
				s.opts.Metrics.countGap()
			}
			writeError(w, err)
			return
		}
		if answer, err = hub.Answer(subID); err != nil {
			s.emitMu.Unlock()
			writeError(w, err)
			return
		}
		s.subsMu.Lock()
		delete(s.detached, subID)
		s.subscribers[subID] = st
		s.subsMu.Unlock()
		s.opts.Metrics.countResume()
	} else {
		var deadlineMS int64
		if v := q.Get("deadline_ms"); v != "" {
			if deadlineMS, err = strconv.ParseInt(v, 10, 64); err != nil {
				s.emitMu.Unlock()
				writeError(w, badReq(fmt.Errorf("gateway: bad deadline_ms: %w", err)))
				return
			}
		}
		ctx, cancel := s.reqCtx(r, deadlineMS)
		subID, answer, err = hub.Subscribe(ctx, req)
		cancel()
		if err != nil {
			s.emitMu.Unlock()
			writeError(w, err)
			return
		}
		s.subsMu.Lock()
		s.subscribers[subID] = st
		s.subsMu.Unlock()
	}
	s.emitMu.Unlock()

	s.opts.Metrics.streamAttached()
	defer s.opts.Metrics.streamDetached()
	// On any exit the subscription parks as detached (LRU-bounded) so the
	// client can resume from its last seen event id.
	defer s.park(hub, subID, st)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	rc := http.NewResponseController(w)
	write := func(event, id string, data []byte) error {
		_ = rc.SetWriteDeadline(time.Now().Add(sseWriteTimeout))
		if err := writeSSE(w, event, id, data); err != nil {
			return err
		}
		flusher.Flush()
		return nil
	}

	first, err := json.Marshal(subscribedEvent{SubID: subID, Result: answer})
	if err != nil || write("subscribed", "", first) != nil {
		return
	}
	for _, ev := range backlog {
		if s.writeEvent(write, ev) != nil {
			return
		}
	}
	for {
		select {
		case ev, chOpen := <-st.ch:
			if !chOpen {
				// Severed: the consumer stalled past its buffer, or the
				// server is draining. Either way the subscription stays
				// resumable.
				return
			}
			if s.writeEvent(write, ev) != nil {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) writeEvent(write func(event, id string, data []byte) error, ev continuous.Event) error {
	b, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	s.opts.Metrics.countEvents(1)
	return write("diff", strconv.FormatUint(ev.Seq, 10), b)
}

// writeSSE emits one server-sent event frame. data is JSON (no raw
// newlines), so a single data: line suffices.
func writeSSE(w io.Writer, event, id string, data []byte) error {
	if event != "" {
		if _, err := fmt.Fprintf(w, "event: %s\n", event); err != nil {
			return err
		}
	}
	if id != "" {
		if _, err := fmt.Fprintf(w, "id: %s\n", id); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "data: %s\n\n", data)
	return err
}

// fanOut routes one ingest's events to their live streams. Caller holds
// emitMu. A full channel means the consumer stalled a full buffer
// behind: the stream is severed (closed channel; the handler unwinds
// and parks the subscription for resume) instead of blocking ingest.
func (s *Server) fanOut(events []continuous.Event) {
	for _, ev := range events {
		s.subsMu.Lock()
		st := s.subscribers[ev.SubID]
		s.subsMu.Unlock()
		if st == nil {
			continue // in-process subscriber or a racing detach
		}
		select {
		case st.ch <- ev:
		default:
			s.subsMu.Lock()
			if s.subscribers[ev.SubID] == st {
				delete(s.subscribers, ev.SubID)
			}
			s.subsMu.Unlock()
			close(st.ch)
		}
	}
}

// park deregisters a finished stream and retains its subscription as
// detached for a from_seq resume, LRU-evicting (and unsubscribing) past
// MaxDetached. It never closes st.ch — only the fan-out and Shutdown
// do, under emitMu.
func (s *Server) park(hub *continuous.Hub, id int64, st *sseStream) {
	s.subsMu.Lock()
	defer s.subsMu.Unlock()
	if s.subscribers[id] == st {
		delete(s.subscribers, id)
	}
	if s.opts.MaxDetached < 0 {
		hub.Unsubscribe(id)
		return
	}
	s.detached[id] = struct{}{}
	s.detachedOrder = append(s.detachedOrder, id)
	for len(s.detached) > s.opts.MaxDetached {
		oldest := s.detachedOrder[0]
		s.detachedOrder = s.detachedOrder[1:]
		if _, ok := s.detached[oldest]; ok {
			delete(s.detached, oldest)
			hub.Unsubscribe(oldest)
		}
	}
	// Compact the order slice when stale entries (resumed subscriptions)
	// dominate it.
	if len(s.detachedOrder) > 2*len(s.detached)+16 {
		kept := s.detachedOrder[:0]
		for _, d := range s.detachedOrder {
			if _, ok := s.detached[d]; ok {
				kept = append(kept, d)
			}
		}
		s.detachedOrder = kept
	}
}

// requestFromQuery builds the standing engine.Request from subscribe
// query parameters (names match the JSON field names). Semantic
// validation stays with the engine.
func requestFromQuery(q url.Values) (engine.Request, error) {
	var req engine.Request
	req.Kind = engine.Kind(q.Get("kind"))
	for _, f := range []struct {
		name string
		dst  *float64
	}{{"tb", &req.Tb}, {"te", &req.Te}, {"x", &req.X}, {"t", &req.T}, {"p", &req.P}} {
		v := q.Get(f.name)
		if v == "" {
			continue
		}
		x, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return req, badReq(fmt.Errorf("gateway: bad %s: %w", f.name, err))
		}
		*f.dst = x
	}
	for _, f := range []struct {
		name string
		dst  *int64
	}{{"query_oid", &req.QueryOID}, {"oid", &req.OID}} {
		v := q.Get(f.name)
		if v == "" {
			continue
		}
		x, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return req, badReq(fmt.Errorf("gateway: bad %s: %w", f.name, err))
		}
		*f.dst = x
	}
	if v := q.Get("k"); v != "" {
		k, err := strconv.Atoi(v)
		if err != nil {
			return req, badReq(fmt.Errorf("gateway: bad k: %w", err))
		}
		req.K = k
	}
	if v := q.Get("where"); v != "" {
		// The predicate rides as a JSON object ({all, any, not} tag lists),
		// URL-encoded. Canonicalized here so the standing subscription's
		// stored request matches what the evaluation paths run with.
		var p textidx.Predicate
		if err := json.Unmarshal([]byte(v), &p); err != nil {
			return req, badReq(fmt.Errorf("gateway: bad where: %w", err))
		}
		if err := p.Validate(); err != nil {
			return req, badReq(fmt.Errorf("gateway: bad where: %w", err))
		}
		req.Where = p.Canon()
	}
	return req, nil
}
