package gateway

// Metrics: the gateway's Prometheus families over internal/metrics. Every
// label set here is bounded by configuration or by the protocol — route
// patterns, status codes, the closed engine.Kind set, error codes, shard
// names/indices — never by request payloads (no per-OID or per-query
// labels), so exposition size cannot be driven by traffic content.

import (
	"strconv"
	"time"

	"repro/internal/continuous"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/wal"
)

// knownKinds is the closed set of engine kinds usable as a metric label.
// Anything else (a typo'd kind from a client) collapses to "invalid" so
// clients cannot mint new series.
var knownKinds = map[engine.Kind]bool{
	engine.KindUQ11: true, engine.KindUQ12: true, engine.KindUQ13: true,
	engine.KindUQ21: true, engine.KindUQ22: true, engine.KindUQ23: true,
	engine.KindUQ31: true, engine.KindUQ32: true, engine.KindUQ33: true,
	engine.KindUQ41: true, engine.KindUQ42: true, engine.KindUQ43: true,
	engine.KindNNAt: true, engine.KindRankAt: true,
	engine.KindAllNNAt: true, engine.KindAllRankAt: true,
	engine.KindThreshold: true, engine.KindAllThreshold: true,
	engine.KindAllPairs: true, engine.KindReverse: true,
}

func kindLabel(k engine.Kind) string {
	if knownKinds[k] {
		return string(k)
	}
	return "invalid"
}

// Metrics aggregates the gateway's metric families on one registry. All
// methods are safe on a nil receiver (metrics disabled) and for
// concurrent use, so handler code records unconditionally.
type Metrics struct {
	reg *metrics.Registry

	requests     *metrics.CounterVec   // gateway_requests_total{route,code}
	latency      *metrics.HistogramVec // gateway_request_seconds{route}
	queries      *metrics.CounterVec   // gateway_query_requests_total{kind,outcome,filtered}
	queryLatency *metrics.HistogramVec // gateway_query_seconds{kind}

	pruneCandidates *metrics.Counter
	pruneSurvivors  *metrics.Counter
	memoHits        *metrics.Counter
	degraded        *metrics.Counter
	missingShards   *metrics.CounterVec
	shardWall       *metrics.HistogramVec
	shardRetries    *metrics.CounterVec

	streams *metrics.Gauge
	events  *metrics.Counter
	resumes *metrics.Counter
	gaps    *metrics.Counter

	ingestUpdates *metrics.Counter
	ingestBatches *metrics.CounterVec
}

// NewMetrics registers the gateway families on reg (a fresh registry when
// nil) and returns the recording surface.
func NewMetrics(reg *metrics.Registry) *Metrics {
	if reg == nil {
		reg = metrics.New()
	}
	m := &Metrics{reg: reg}
	m.requests = reg.CounterVec("gateway_requests_total",
		"HTTP requests served, by route pattern and status code.", "route", "code")
	m.latency = reg.HistogramVec("gateway_request_seconds",
		"End-to-end HTTP request latency by route pattern.", metrics.DefBuckets, "route")
	m.queries = reg.CounterVec("gateway_query_requests_total",
		"Engine requests evaluated via /v1/query and /v1/batch, by kind, outcome, and whether a tag predicate filtered the request.",
		"kind", "outcome", "filtered")
	m.queryLatency = reg.HistogramVec("gateway_query_seconds",
		"Engine evaluation wall time (Explain.Wall) by kind.", metrics.DefBuckets, "kind")
	m.pruneCandidates = reg.Counter("engine_prune_candidates_total",
		"Candidate objects considered across all evaluated requests (Explain.Candidates).")
	m.pruneSurvivors = reg.Counter("engine_prune_survivors_total",
		"Candidates surviving the index pre-pass across all evaluated requests (Explain.Survivors).")
	m.memoHits = reg.Counter("engine_memo_hits_total",
		"Requests whose envelope preprocessing was reused from the engine memo.")
	m.degraded = reg.Counter("cluster_degraded_answers_total",
		"Answers merged without every shard (degraded serving).")
	m.missingShards = reg.CounterVec("cluster_missing_shards_total",
		"Times a named shard's reply was missing from a degraded merge.", "shard")
	m.shardWall = reg.HistogramVec("cluster_shard_wall_seconds",
		"Per-shard scatter wall time by shard index.", metrics.DefBuckets, "shard")
	m.shardRetries = reg.CounterVec("cluster_shard_retries_total",
		"Remote shard call retries by shard name.", "shard")
	m.streams = reg.Gauge("gateway_subscribe_streams",
		"Live SSE subscription streams currently attached.")
	m.events = reg.Counter("gateway_subscribe_events_total",
		"Diff events written to SSE streams (including replayed ones).")
	m.resumes = reg.Counter("gateway_subscribe_resumes_total",
		"SSE streams that resumed a detached subscription via from_seq/Last-Event-ID.")
	m.gaps = reg.Counter("gateway_subscribe_gaps_total",
		"Resume attempts refused because the replay window no longer covers from_seq.")
	m.ingestUpdates = reg.Counter("gateway_ingest_updates_total",
		"Live trajectory updates accepted via /v1/ingest.")
	m.ingestBatches = reg.CounterVec("gateway_ingest_batches_total",
		"Ingest batches by outcome.", "outcome")
	return m
}

// Registry returns the backing registry (nil on a nil Metrics).
func (m *Metrics) Registry() *metrics.Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// ObserveHub exports a hub's cumulative dirty-set counters
// (ingested/evals/skips) as counter funcs; pass hub.Stats.
func (m *Metrics) ObserveHub(stats func() continuous.Stats) {
	if m == nil || stats == nil {
		return
	}
	m.reg.CounterFunc("hub_ingested_updates_total",
		"Live updates applied through the continuous-query hub.",
		func() float64 { return float64(stats().Ingested) })
	m.reg.CounterFunc("hub_evals_total",
		"Subscription re-evaluations triggered by ingests.",
		func() float64 { return float64(stats().Evals) })
	m.reg.CounterFunc("hub_skips_total",
		"Subscription re-evaluations the dirty test proved unnecessary.",
		func() float64 { return float64(stats().Skips) })
}

// ObserveWAL exports the write-ahead log's cumulative operation counters.
func (m *Metrics) ObserveWAL(stats func() wal.Stats) {
	if m == nil || stats == nil {
		return
	}
	m.reg.CounterFunc("wal_appends_total",
		"Update batches appended to the write-ahead log.",
		func() float64 { return float64(stats().Appends) })
	m.reg.CounterFunc("wal_appended_bytes_total",
		"Bytes appended to the write-ahead log.",
		func() float64 { return float64(stats().AppendedBytes) })
	m.reg.CounterFunc("wal_snapshots_total",
		"Snapshots taken by the write-ahead log.",
		func() float64 { return float64(stats().Snapshots) })
}

// ShardRetryHook returns a cluster.RemoteOptions.OnRetry callback feeding
// cluster_shard_retries_total. Nil when metrics are disabled.
func (m *Metrics) ShardRetryHook() func(name string, attempt int, err error) {
	if m == nil {
		return nil
	}
	return func(name string, _ int, _ error) {
		m.shardRetries.With(name).Inc()
	}
}

func (m *Metrics) recordHTTP(route string, code int, dur time.Duration) {
	if m == nil {
		return
	}
	if route == "" {
		route = "unmatched"
	}
	m.requests.With(route, strconv.Itoa(code)).Inc()
	m.latency.With(route).Observe(dur.Seconds())
}

// recordQuery folds one evaluated request's Explain into the engine- and
// cluster-level families. outcome is "ok" or the typed error code;
// filtered reports whether the request carried a tag predicate (a closed
// two-value label — the predicate's content never reaches a label).
func (m *Metrics) recordQuery(res engine.Result, filtered bool) {
	if m == nil {
		return
	}
	outcome := "ok"
	if res.Err != nil {
		_, outcome = errStatus(res.Err)
	}
	kind := kindLabel(res.Kind)
	m.queries.With(kind, outcome, strconv.FormatBool(filtered)).Inc()
	m.queryLatency.With(kind).Observe(res.Explain.Wall.Seconds())
	ex := res.Explain
	m.pruneCandidates.Add(float64(ex.Candidates))
	m.pruneSurvivors.Add(float64(ex.Survivors))
	if ex.MemoHit {
		m.memoHits.Inc()
	}
	if ex.Degraded {
		m.degraded.Inc()
	}
	for _, name := range ex.MissingShards {
		m.missingShards.With(name).Inc()
	}
	for i, se := range ex.ShardExplains {
		m.shardWall.With(strconv.Itoa(i)).Observe(se.Wall.Seconds())
	}
}

func (m *Metrics) recordIngest(updates int, err error) {
	if m == nil {
		return
	}
	outcome := "ok"
	if err != nil {
		_, outcome = errStatus(err)
	}
	m.ingestBatches.With(outcome).Inc()
	if err == nil {
		m.ingestUpdates.Add(float64(updates))
	}
}

func (m *Metrics) streamAttached() { m.adjStreams(1) }
func (m *Metrics) streamDetached() { m.adjStreams(-1) }

func (m *Metrics) adjStreams(d float64) {
	if m == nil {
		return
	}
	m.streams.Add(d)
}

func (m *Metrics) countEvents(n int) {
	if m == nil {
		return
	}
	m.events.Add(float64(n))
}

func (m *Metrics) countResume() {
	if m == nil {
		return
	}
	m.resumes.Inc()
}

func (m *Metrics) countGap() {
	if m == nil {
		return
	}
	m.gaps.Inc()
}
