// Package gateway is the production HTTP front door for the repro
// engine: a JSON API over net/http with bearer-token auth, per-request
// deadlines, a typed error taxonomy mapped onto status codes, an SSE
// continuous-query stream riding continuous.Hub with from_seq resume,
// and a Prometheus metrics surface.
//
// Routes:
//
//	POST /v1/query      one engine.Request -> engine.Result
//	POST /v1/batch      many requests -> per-request result-or-error
//	POST /v1/ingest     live trajectory updates (journaled when configured)
//	GET  /v1/subscribe  SSE diff stream for a standing query
//	GET  /healthz       liveness
//	GET  /readyz        readiness (503 while draining)
//	GET  /metrics       Prometheus text exposition (when configured)
//	GET  /openapi.yaml  the committed OpenAPI 3 description
//
// The /v1 routes require `Authorization: Bearer <token>` when a token is
// configured; the operational routes stay open. The same engine.Request
// and engine.Result JSON shapes cross this seam as cross the TCP
// modserver protocol, so an HTTP client and a TCP client see identical
// answers.
//
// A spatio-textual query restricts the answer universe to the tagged
// sub-MOD via the request's `where` predicate ({all, any, not} tag
// lists), and ingest updates may carry a `tags` list (null = unchanged,
// [] = clear):
//
//	curl -sk https://localhost:8443/v1/query \
//	  -H "Authorization: Bearer $TOKEN" \
//	  -d '{"kind":"UQ31","query_oid":7,"tb":0,"te":60,
//	       "where":{"all":["available"],"not":["pool"]}}'
package gateway

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/api/openapi"
	"repro/internal/cluster"
	"repro/internal/continuous"
	"repro/internal/engine"
	"repro/internal/mod"
	"repro/internal/textidx"
	"repro/internal/trajectory"
)

// ErrUnauthorized is the typed refusal for a missing or wrong bearer
// token.
var ErrUnauthorized = errors.New("gateway: unauthorized")

// errDraining answers requests that arrive while Shutdown drains.
var errDraining = errors.New("gateway: draining")

// StatusClientClosed is the non-standard 499 (client closed request)
// reported when the client went away before the evaluation finished.
const StatusClientClosed = 499

// DefaultMaxBodyBytes caps request bodies (8 MiB holds a ~40k-update
// ingest batch with room to spare).
const DefaultMaxBodyBytes = 8 << 20

// DefaultMaxDetached bounds detached (resumable) SSE subscriptions, LRU
// evicted — mirroring the modserver's default.
const DefaultMaxDetached = 64

// DefaultEventBuffer is the per-stream event channel depth; a consumer
// that falls this many events behind is severed (and left resumable).
const DefaultEventBuffer = 256

// Backend evaluates engine requests. *cluster.Router satisfies it
// directly; EngineBackend adapts a local engine+store pair.
type Backend interface {
	Do(ctx context.Context, req engine.Request) (engine.Result, error)
	DoBatch(ctx context.Context, reqs []engine.Request) ([]engine.Result, error)
}

// EngineBackend adapts a local engine over one store to Backend.
type EngineBackend struct {
	Eng   *engine.Engine
	Store *mod.Store
}

// Do evaluates one request on the local engine.
func (b EngineBackend) Do(ctx context.Context, req engine.Request) (engine.Result, error) {
	return b.Eng.Do(ctx, b.Store, req)
}

// DoBatch evaluates a batch on the local engine.
func (b EngineBackend) DoBatch(ctx context.Context, reqs []engine.Request) ([]engine.Result, error) {
	return b.Eng.DoBatch(ctx, b.Store, reqs)
}

// Journal is the write-ahead hook the ingest path drives (wal.Log
// satisfies it). Same contract as the modserver's: Append runs before
// the batch is applied, under the ingest serialization lock.
type Journal interface {
	Append(updates []mod.Update) error
	AfterApply(store *mod.Store) error
}

// Options configures a Server. Backend is required; everything else is
// optional.
type Options struct {
	// Backend answers /v1/query and /v1/batch.
	Backend Backend
	// Hub powers /v1/ingest and /v1/subscribe; nil disables both
	// (they answer 501).
	Hub *continuous.Hub
	// Journal, when set with Hub, makes ingest write-ahead durable.
	// Store is the AfterApply snapshot target (required with Journal).
	Journal Journal
	Store   *mod.Store
	// Token, when non-empty, gates every /v1 route behind
	// `Authorization: Bearer <token>`.
	Token string
	// MaxBodyBytes caps request bodies (DefaultMaxBodyBytes when 0).
	MaxBodyBytes int64
	// RequestTimeout is the server-side ceiling on per-request
	// deadlines; client deadline_ms values are clamped to it. 0 means
	// no ceiling.
	RequestTimeout time.Duration
	// MaxDetached bounds resumable detached subscriptions
	// (DefaultMaxDetached when 0; negative disables resume retention).
	MaxDetached int
	// EventBuffer is the per-SSE-stream channel depth
	// (DefaultEventBuffer when 0).
	EventBuffer int
	// Metrics, when set, records traffic and serves GET /metrics.
	Metrics *Metrics
}

// Server is the HTTP gateway. Create with New, serve with Serve (wrap
// the listener with tls.NewListener for TLS), stop with Shutdown.
type Server struct {
	opts     Options
	handler  http.Handler
	hs       *http.Server
	draining atomic.Bool

	// emitMu serializes ingest apply+fan-out with subscribe/resume
	// registration, so a stream observes every event after its answer
	// exactly once — the same discipline as the modserver's emit lock.
	emitMu sync.Mutex
	// subsMu guards the routing tables below (readers on the fan-out
	// path take it briefly per event).
	subsMu      sync.Mutex
	subscribers map[int64]*sseStream
	// detached holds subscriptions whose stream ended but which stay
	// live in the hub awaiting a from_seq resume; detachedOrder is
	// their LRU eviction order.
	detached      map[int64]struct{}
	detachedOrder []int64
}

// New builds a Server from opts.
func New(opts Options) (*Server, error) {
	if opts.Backend == nil {
		return nil, errors.New("gateway: Options.Backend is required")
	}
	if opts.Journal != nil && opts.Store == nil {
		return nil, errors.New("gateway: Options.Journal requires Options.Store")
	}
	if opts.MaxBodyBytes == 0 {
		opts.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if opts.MaxDetached == 0 {
		opts.MaxDetached = DefaultMaxDetached
	}
	if opts.EventBuffer == 0 {
		opts.EventBuffer = DefaultEventBuffer
	}
	s := &Server{
		opts:        opts,
		subscribers: make(map[int64]*sseStream),
		detached:    make(map[int64]struct{}),
	}
	s.handler = s.buildHandler()
	s.hs = &http.Server{Handler: s.handler, ReadHeaderTimeout: 10 * time.Second}
	return s, nil
}

// Handler returns the gateway's full handler (middleware included) for
// mounting under a custom http.Server, e.g. in tests.
func (s *Server) Handler() http.Handler { return s.handler }

// Serve accepts connections on l until Shutdown (or Close on the
// listener). A clean shutdown returns nil.
func (s *Server) Serve(l net.Listener) error {
	err := s.hs.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains the gateway: readiness flips to 503, live SSE streams
// are severed (their subscriptions stay resumable in-process), and
// in-flight requests get until ctx expires to finish.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	// Sever streams under the emit lock so no fan-out races the close;
	// each handler unwinds and parks its subscription as detached.
	s.emitMu.Lock()
	s.subsMu.Lock()
	for id, st := range s.subscribers {
		delete(s.subscribers, id)
		close(st.ch)
	}
	s.subsMu.Unlock()
	s.emitMu.Unlock()
	return s.hs.Shutdown(ctx)
}

func (s *Server) buildHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.v1(s.handleQuery))
	mux.HandleFunc("POST /v1/batch", s.v1(s.handleBatch))
	mux.HandleFunc("POST /v1/ingest", s.v1(s.handleIngest))
	mux.HandleFunc("GET /v1/subscribe", s.v1(s.handleSubscribe))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("GET /openapi.yaml", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/yaml")
		_, _ = w.Write(openapi.Spec)
	})
	if reg := s.opts.Metrics.Registry(); reg != nil {
		mux.Handle("GET /metrics", reg.Handler())
	}
	// Outermost: body cap, then request accounting keyed on the route
	// pattern the mux resolves.
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
		}
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		mux.ServeHTTP(rec, r)
		s.opts.Metrics.recordHTTP(r.Pattern, rec.status(), time.Since(start))
	})
}

// v1 wraps an API handler with the bearer-token gate.
func (s *Server) v1(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if tok := s.opts.Token; tok != "" {
			bearer, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
			if !ok || subtle.ConstantTimeCompare([]byte(bearer), []byte(tok)) != 1 {
				w.Header().Set("WWW-Authenticate", `Bearer realm="repro-gateway"`)
				writeError(w, ErrUnauthorized)
				return
			}
		}
		h(w, r)
	}
}

// statusRecorder captures the status code for metrics and forwards
// Flush so SSE streaming survives the wrapper.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.code == 0 {
		sr.code = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.code == 0 {
		sr.code = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer's
// deadline and flush support.
func (sr *statusRecorder) Unwrap() http.ResponseWriter { return sr.ResponseWriter }

func (sr *statusRecorder) status() int {
	if sr.code == 0 {
		return http.StatusOK
	}
	return sr.code
}

// ---- wire shapes -------------------------------------------------------

// queryRequest is the /v1/query body: an engine.Request plus transport
// controls.
type queryRequest struct {
	engine.Request
	// DeadlineMS bounds the evaluation; clamped to the server's
	// RequestTimeout ceiling when one is configured.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

type batchRequest struct {
	Requests   []engine.Request `json:"requests"`
	DeadlineMS int64            `json:"deadline_ms,omitempty"`
}

type batchEntry struct {
	OK     bool           `json:"ok"`
	Result *engine.Result `json:"result,omitempty"`
	Error  *apiError      `json:"error,omitempty"`
}

type batchResponse struct {
	Results []batchEntry `json:"results"`
}

type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorBody struct {
	Error apiError `json:"error"`
}

// wireUpdate / wireApplied mirror the modserver's ingest shapes, so the
// HTTP and TCP live layers speak the same vertices and tag sets. Tags is
// a tri-state like mod.Update's: absent/null leaves the object's tags
// untouched, [] clears them, a non-empty list replaces them.
type wireUpdate struct {
	OID   int64        `json:"oid"`
	Verts [][3]float64 `json:"verts,omitempty"`
	Tags  *[]string    `json:"tags,omitempty"`
}

// wireApplied carries one applied outcome. ChangedFrom is omitted for
// inserts (-Inf in memory) and for pure tag flips, which set TagsOnly
// instead (+Inf in memory: no motion changed; JSON has no Inf literal).
type wireApplied struct {
	OID         int64        `json:"oid"`
	Inserted    bool         `json:"inserted,omitempty"`
	ChangedFrom float64      `json:"changed_from,omitempty"`
	TagsOnly    bool         `json:"tags_only,omitempty"`
	Verts       [][3]float64 `json:"verts,omitempty"`
	PrevVerts   [][3]float64 `json:"prev_verts,omitempty"`
	TagsChanged bool         `json:"tags_changed,omitempty"`
	Tags        []string     `json:"tags,omitempty"`
	PrevTags    []string     `json:"prev_tags,omitempty"`
}

type ingestRequest struct {
	Updates []wireUpdate `json:"updates"`
}

type ingestResponse struct {
	Applied []wireApplied `json:"applied"`
}

// ---- error taxonomy ----------------------------------------------------

// errStatus maps a typed error onto (HTTP status, machine-readable
// code). The code set is closed — it doubles as a metrics label.
func errStatus(err error) (int, string) {
	switch {
	case errors.Is(err, engine.ErrBadKind):
		return http.StatusBadRequest, "bad_kind"
	case errors.Is(err, engine.ErrBadWindow):
		return http.StatusBadRequest, "bad_window"
	case errors.Is(err, engine.ErrBadRank):
		return http.StatusBadRequest, "bad_rank"
	case errors.Is(err, engine.ErrBadFrac):
		return http.StatusBadRequest, "bad_frac"
	case errors.Is(err, engine.ErrBadPredicate):
		return http.StatusBadRequest, "bad_predicate"
	case errors.Is(err, textidx.ErrBadTag):
		return http.StatusBadRequest, "bad_tag"
	case errors.Is(err, engine.ErrUnknownOID):
		return http.StatusNotFound, "unknown_oid"
	case errors.Is(err, mod.ErrNotFound):
		return http.StatusNotFound, "not_found"
	case errors.Is(err, ErrUnauthorized):
		return http.StatusUnauthorized, "unauthorized"
	case errors.Is(err, continuous.ErrEventGap):
		return http.StatusGone, "event_gap"
	case errors.Is(err, cluster.ErrShardUnavailable):
		return http.StatusServiceUnavailable, "shard_unavailable"
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable, "draining"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline_exceeded"
	case errors.Is(err, context.Canceled):
		return StatusClientClosed, "canceled"
	case isMaxBytes(err):
		return http.StatusRequestEntityTooLarge, "body_too_large"
	case isUnsupported(err):
		return http.StatusNotImplemented, "unsupported"
	case isBadRequest(err):
		return http.StatusBadRequest, "bad_request"
	}
	return http.StatusInternalServerError, "internal"
}

// errUnsupported marks a route whose subsystem is not configured.
var errUnsupported = errors.New("gateway: not configured on this server")

func isUnsupported(err error) bool { return errors.Is(err, errUnsupported) }

func isMaxBytes(err error) bool {
	var mbe *http.MaxBytesError
	return errors.As(err, &mbe)
}

// badRequestError wraps client-side decode failures (malformed JSON,
// bad query params) distinctly from engine validation errors.
type badRequestError struct{ err error }

func (e badRequestError) Error() string { return e.err.Error() }
func (e badRequestError) Unwrap() error { return e.err }

func isBadRequest(err error) bool {
	var bre badRequestError
	return errors.As(err, &bre)
}

func badReq(err error) error { return badRequestError{err} }

func writeError(w http.ResponseWriter, err error) {
	status, code := errStatus(err)
	writeJSON(w, status, errorBody{apiError{Code: code, Message: err.Error()}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":{"code":"internal","message":"encode failure"}}`,
			http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	b = append(b, '\n')
	_, _ = w.Write(b)
}

// ---- query/batch handlers ----------------------------------------------

// reqCtx derives the evaluation context: the client's deadline_ms,
// clamped by the server's RequestTimeout ceiling, over the request's
// own cancellation.
func (s *Server) reqCtx(r *http.Request, deadlineMS int64) (context.Context, context.CancelFunc) {
	d := time.Duration(deadlineMS) * time.Millisecond
	if max := s.opts.RequestTimeout; max > 0 && (d <= 0 || d > max) {
		d = max
	}
	if d > 0 {
		return context.WithTimeout(r.Context(), d)
	}
	return context.WithCancel(r.Context())
}

func decodeBody(r *http.Request, v any) error {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		if isMaxBytes(err) {
			return err
		}
		return badReq(fmt.Errorf("gateway: bad request body: %w", err))
	}
	return nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var qr queryRequest
	if err := decodeBody(r, &qr); err != nil {
		writeError(w, err)
		return
	}
	ctx, cancel := s.reqCtx(r, qr.DeadlineMS)
	defer cancel()
	res, err := s.opts.Backend.Do(ctx, qr.Request)
	s.opts.Metrics.recordQuery(res, qr.Where != nil)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var br batchRequest
	if err := decodeBody(r, &br); err != nil {
		writeError(w, err)
		return
	}
	if len(br.Requests) == 0 {
		writeError(w, badReq(errors.New("gateway: empty batch")))
		return
	}
	ctx, cancel := s.reqCtx(r, br.DeadlineMS)
	defer cancel()
	results, err := s.opts.Backend.DoBatch(ctx, br.Requests)
	if err != nil && len(results) != len(br.Requests) {
		// A transport-level failure (deadline, shard loss) with no
		// per-request results to report.
		writeError(w, err)
		return
	}
	out := batchResponse{Results: make([]batchEntry, len(results))}
	for i := range results {
		res := results[i]
		s.opts.Metrics.recordQuery(res, br.Requests[i].Where != nil)
		if res.Err != nil {
			_, code := errStatus(res.Err)
			out.Results[i] = batchEntry{Error: &apiError{Code: code, Message: res.Err.Error()}}
			continue
		}
		out.Results[i] = batchEntry{OK: true, Result: &res}
	}
	writeJSON(w, http.StatusOK, out)
}

// ---- ingest ------------------------------------------------------------

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.opts.Hub == nil {
		writeError(w, fmt.Errorf("%w: no live hub", errUnsupported))
		return
	}
	if s.draining.Load() {
		writeError(w, errDraining)
		return
	}
	var ir ingestRequest
	if err := decodeBody(r, &ir); err != nil {
		writeError(w, err)
		return
	}
	if len(ir.Updates) == 0 {
		writeError(w, badReq(errors.New("gateway: empty ingest batch")))
		return
	}
	updates := make([]mod.Update, len(ir.Updates))
	for i, wu := range ir.Updates {
		verts := make([]trajectory.Vertex, len(wu.Verts))
		for j, v := range wu.Verts {
			verts[j] = trajectory.Vertex{X: v[0], Y: v[1], T: v[2]}
		}
		if len(wu.Verts) == 0 {
			verts = nil // pure tag flip: no motion change
		}
		updates[i] = mod.Update{OID: wu.OID, Verts: verts, Tags: wu.Tags}
	}

	ctx, cancel := s.reqCtx(r, 0)
	defer cancel()

	// The emit lock serializes journal append, hub apply, and event
	// fan-out — journal order equals apply order equals stream order.
	s.emitMu.Lock()
	defer s.emitMu.Unlock()
	if s.opts.Journal != nil {
		if err := s.opts.Journal.Append(updates); err != nil {
			err = fmt.Errorf("gateway: journal append: %w", err)
			s.opts.Metrics.recordIngest(0, err)
			writeError(w, err)
			return
		}
	}
	applied, events, err := s.opts.Hub.Ingest(ctx, updates)
	s.opts.Metrics.recordIngest(len(updates), err)
	if err != nil {
		// A mid-batch failure still applied a prefix; report both, as
		// the TCP path does.
		status, code := errStatus(err)
		writeJSON(w, status, struct {
			Error   apiError      `json:"error"`
			Applied []wireApplied `json:"applied,omitempty"`
		}{apiError{Code: code, Message: err.Error()}, encodeApplied(applied)})
		return
	}
	if s.opts.Journal != nil {
		// A failed snapshot only defers log truncation; the appended
		// log still reaches the current state.
		_ = s.opts.Journal.AfterApply(s.opts.Store)
	}
	s.fanOut(events)
	writeJSON(w, http.StatusOK, ingestResponse{Applied: encodeApplied(applied)})
}

func encodeApplied(applied []mod.Applied) []wireApplied {
	out := make([]wireApplied, len(applied))
	for i, a := range applied {
		wa := wireApplied{OID: a.OID, Inserted: a.Inserted}
		if !a.Inserted {
			if math.IsInf(a.ChangedFrom, 1) {
				wa.TagsOnly = true
			} else {
				wa.ChangedFrom = a.ChangedFrom
			}
		}
		if a.Traj != nil {
			wa.Verts = encodeVerts(a.Traj.Verts)
		}
		if a.Prev != nil {
			wa.PrevVerts = encodeVerts(a.Prev.Verts)
		}
		wa.TagsChanged = a.TagsChanged
		wa.Tags = a.Tags
		wa.PrevTags = a.PrevTags
		out[i] = wa
	}
	return out
}

func encodeVerts(verts []trajectory.Vertex) [][3]float64 {
	out := make([][3]float64, len(verts))
	for i, v := range verts {
		out[i] = [3]float64{v.X, v.Y, v.T}
	}
	return out
}
