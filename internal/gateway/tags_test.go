package gateway

// The spatio-textual HTTP surface end to end: a `where` predicate rides
// the subscribe query string into a standing filtered query, a pure tag
// flip crosses /v1/ingest as a tags-only update (no vertices), its
// applied outcome encodes the +Inf ChangedFrom as the tags_only marker,
// and the flip's membership change reaches the filtered SSE stream as a
// diff event.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"slices"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/textidx"
)

func TestGatewayFilteredSubscribeAndTaggedIngest(t *testing.T) {
	store, trs := buildStore(t, 20, equivSeed)
	where := &textidx.Predicate{All: []string{"available"}}
	for _, tr := range trs[1:3] {
		if err := store.SetTags(tr.OID, []string{"available"}); err != nil {
			t.Fatal(err)
		}
	}
	eng := engine.New(0)
	hub := newTestHub(t, store)
	_, base, client := startGateway(t, Options{
		Backend: EngineBackend{Eng: eng, Store: store},
		Hub:     hub,
	}, nil)

	q := trs[0].OID
	mkReq := func(w *textidx.Predicate) engine.Request {
		return engine.Request{Kind: engine.KindUQ31, QueryOID: q, Tb: equivTb, Te: equivTe, Where: w}
	}

	// Ground truth before any flip: the filtered answer directly from the
	// engine, and the unfiltered answer to pick a flip target from.
	wantRes, err := eng.Do(t.Context(), store, mkReq(where))
	if err != nil {
		t.Fatal(err)
	}
	plainRes, err := eng.Do(t.Context(), store, mkReq(nil))
	if err != nil {
		t.Fatal(err)
	}
	var flip int64 = -1
	for _, oid := range plainRes.OIDs {
		if !slices.Contains(wantRes.OIDs, oid) && !where.Matches(store.Tags(oid)) {
			flip = oid
			break
		}
	}
	if flip < 0 {
		t.Fatalf("no untagged possible NN to flip (plain %v, filtered %v)", plainRes.OIDs, wantRes.OIDs)
	}

	sub := fmt.Sprintf("%s/v1/subscribe?kind=UQ31&query_oid=%d&tb=%g&te=%g&where=%s",
		base, q, equivTb, equivTe, url.QueryEscape(`{"all":["available"]}`))
	conn := openSSE(t, client, sub, "")
	defer conn.close()
	first := conn.next(t)
	if first.event != "subscribed" {
		t.Fatalf("first frame event %q", first.event)
	}
	var se subscribedEvent
	if err := json.Unmarshal(first.data, &se); err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(se.Result.OIDs, wantRes.OIDs) {
		t.Fatalf("subscribed answer %v, want filtered %v", se.Result.OIDs, wantRes.OIDs)
	}

	// A malformed predicate is refused up front, not accepted as unfiltered.
	bad, err := http.NewRequest(http.MethodGet,
		base+"/v1/subscribe?kind=UQ31&query_oid=1&tb=0&te=1&where="+url.QueryEscape(`{"all":[]}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(bad)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty predicate subscribe: status %d, want 400", resp.StatusCode)
	}

	// Pure tag flip over HTTP: no verts, tags only.
	tags := []string{"available"}
	status, body := postJSON(t, client, base+"/v1/ingest", "",
		ingestRequest{Updates: []wireUpdate{{OID: flip, Tags: &tags}}})
	if status != http.StatusOK {
		t.Fatalf("tag-flip ingest: status %d (body %.300s)", status, body)
	}
	var ir ingestResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if len(ir.Applied) != 1 {
		t.Fatalf("applied %d outcomes, want 1", len(ir.Applied))
	}
	a := ir.Applied[0]
	if !a.TagsOnly || !a.TagsChanged || a.Inserted {
		t.Fatalf("pure flip applied = %+v, want tags_only && tags_changed", a)
	}
	if !slices.Equal(a.Tags, tags) || a.PrevTags != nil {
		t.Fatalf("pure flip tags = %v / prev %v", a.Tags, a.PrevTags)
	}
	if strings.Contains(string(body), "changed_from") {
		t.Fatalf("pure flip leaked changed_from onto the wire: %.300s", body)
	}

	// The flip joined the sub-MOD, so the filtered subscription must emit a
	// diff adding the flipped object.
	diff := conn.next(t)
	if diff.event != "diff" {
		t.Fatalf("frame after flip: event %q", diff.event)
	}
	var ev struct {
		Added []int64 `json:"added"`
		OIDs  []int64 `json:"oids"`
	}
	if err := json.Unmarshal(diff.data, &ev); err != nil {
		t.Fatal(err)
	}
	if !slices.Contains(ev.Added, flip) {
		t.Fatalf("diff after flip added %v, want %d", ev.Added, flip)
	}
	wantAfter, err := eng.Do(t.Context(), store, mkReq(where))
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(ev.OIDs, wantAfter.OIDs) {
		t.Fatalf("diff answer %v, want %v", ev.OIDs, wantAfter.OIDs)
	}
}
