package gateway

// SSE parity with the TCP modserver: two identical worlds — one served
// over the line protocol, one over the HTTP gateway — fed identical
// ingest batches must deliver identical subscription event sequences,
// including a from_seq resume across a severed SSE connection. The
// hub's retained backlog is the oracle for both streams.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/continuous"
	"repro/internal/engine"
	"repro/internal/mod"
	"repro/internal/modserver"
	"repro/internal/trajectory"
)

func newTestHub(t testing.TB, store *mod.Store) *continuous.Hub {
	t.Helper()
	hub := continuous.NewEngineHub(store, engine.New(0))
	t.Cleanup(hub.Close)
	return hub
}

// sseConn is a minimal SSE consumer over one GET /v1/subscribe stream.
type sseConn struct {
	resp *http.Response
	br   *bufio.Reader
}

type sseFrame struct {
	event string
	id    string
	data  []byte
}

func openSSE(t testing.TB, client *http.Client, url, token string) *sseConn {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		buf := make([]byte, 512)
		n, _ := resp.Body.Read(buf)
		t.Fatalf("subscribe %s: status %d (body %s)", url, resp.StatusCode, buf[:n])
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("subscribe content type %q", ct)
	}
	return &sseConn{resp: resp, br: bufio.NewReader(resp.Body)}
}

func (c *sseConn) close() { c.resp.Body.Close() }

// next reads one SSE frame (relies on the test -timeout to bound a
// wedged stream).
func (c *sseConn) next(t testing.TB) sseFrame {
	t.Helper()
	var f sseFrame
	for {
		line, err := c.br.ReadString('\n')
		if err != nil {
			t.Fatalf("sse read: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if f.data != nil {
				return f
			}
		case strings.HasPrefix(line, "event: "):
			f.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "id: "):
			f.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "data: "):
			f.data = []byte(strings.TrimPrefix(line, "data: "))
		}
	}
}

func canonicalEvent(t testing.TB, ev continuous.Event) string {
	t.Helper()
	ev.Explain.ShardExplains = append([]engine.Explain(nil), ev.Explain.ShardExplains...)
	normWalls(&ev.Explain)
	b, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// hugVerts returns a copy of tr's vertices up to tMax, offset slightly
// in x — a shadow object guaranteed to contest tr's NN zone.
func hugVerts(tr *trajectory.Trajectory, tMax float64) [][3]float64 {
	var out [][3]float64
	for _, v := range tr.Verts {
		if v.T > tMax {
			break
		}
		out = append(out, [3]float64{v.X + 0.05, v.Y, v.T})
	}
	return out
}

func toUpdates(ws []wireUpdate) []mod.Update {
	out := make([]mod.Update, len(ws))
	for i, wu := range ws {
		verts := make([]trajectory.Vertex, len(wu.Verts))
		for j, v := range wu.Verts {
			verts[j] = trajectory.Vertex{X: v[0], Y: v[1], T: v[2]}
		}
		out[i] = mod.Update{OID: wu.OID, Verts: verts}
	}
	return out
}

// TestSSEParityWithTCP: identical worlds over TCP and HTTP; identical
// ingests; the answer, applied echoes, and full event sequences must
// match byte-for-byte (modulo walls) — including resume after a severed
// SSE connection.
func TestSSEParityWithTCP(t *testing.T) {
	const n = 60
	storeA, trsA := buildStore(t, n, equivSeed)
	storeB, _ := buildStore(t, n, equivSeed)

	// World A: TCP modserver.
	lA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srvA := modserver.NewServer(storeA)
	go srvA.Serve(lA)
	t.Cleanup(func() { srvA.Close() })
	sub, err := modserver.Dial(lA.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	ing, err := modserver.Dial(lA.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()

	// World B: HTTP gateway.
	hubB := newTestHub(t, storeB)
	srvB, base, client := startGateway(t, Options{
		Backend: EngineBackend{Eng: engine.New(0), Store: storeB},
		Hub:     hubB,
	}, nil)

	q := trsA[0]
	stand := engine.Request{Kind: engine.KindUQ31, QueryOID: q.OID, Tb: equivTb, Te: equivTe}
	_, resA, err := sub.Subscribe(stand)
	if err != nil {
		t.Fatal(err)
	}

	stream := openSSE(t, client, fmt.Sprintf(
		"%s/v1/subscribe?kind=%s&query_oid=%d&tb=%g&te=%g",
		base, stand.Kind, stand.QueryOID, stand.Tb, stand.Te), "")
	defer stream.close()
	first := stream.next(t)
	if first.event != "subscribed" {
		t.Fatalf("first frame event %q", first.event)
	}
	var hello subscribedEvent
	if err := json.Unmarshal(first.data, &hello); err != nil {
		t.Fatal(err)
	}
	if got, want := canonical(t, hello.Result), canonical(t, resA); got != want {
		t.Fatalf("initial answers diverged\n got: %s\nwant: %s", got, want)
	}
	idB := hello.SubID

	// Three ingest phases: a shadow insert, its flight away, a second
	// shadow. Each changes the possible-NN set, so each emits a diff.
	batches := [][]wireUpdate{
		{{OID: 9001, Verts: hugVerts(q, 35)}},
		{{OID: 9001, Verts: [][3]float64{{1000, 1000, 10}, {1001, 1001, 40}}}},
		{{OID: 9002, Verts: hugVerts(q, 35)}},
	}
	for bi, batch := range batches {
		appliedA, err := ing.Ingest(toUpdates(batch))
		if err != nil {
			t.Fatalf("batch %d tcp ingest: %v", bi, err)
		}
		status, body := postJSON(t, client, base+"/v1/ingest", "", ingestRequest{Updates: batch})
		if status != http.StatusOK {
			t.Fatalf("batch %d http ingest: status %d (body %.300s)", bi, status, body)
		}
		var ir ingestResponse
		if err := json.Unmarshal(body, &ir); err != nil {
			t.Fatal(err)
		}
		wantApplied, _ := json.Marshal(ingestResponse{Applied: encodeApplied(appliedA)})
		gotApplied, _ := json.Marshal(ir)
		if !bytes.Equal(wantApplied, gotApplied) {
			t.Fatalf("batch %d applied diverged\n got: %s\nwant: %s", bi, gotApplied, wantApplied)
		}
	}

	// The hub's retained backlog is the oracle for both streams.
	expected, err := hubB.Replay(idB, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(expected) == 0 {
		t.Fatal("no events retained — the shadow updates missed the subscription")
	}
	for i, want := range expected {
		evA, err := sub.NextEvent()
		if err != nil {
			t.Fatalf("tcp event %d: %v", i, err)
		}
		frame := stream.next(t)
		if frame.event != "diff" {
			t.Fatalf("sse frame %d event %q", i, frame.event)
		}
		var evB continuous.Event
		if err := json.Unmarshal(frame.data, &evB); err != nil {
			t.Fatal(err)
		}
		if frame.id != strconv.FormatUint(evB.Seq, 10) {
			t.Fatalf("sse frame %d id %q does not match seq %d", i, frame.id, evB.Seq)
		}
		cw := canonicalEvent(t, want)
		if ca := canonicalEvent(t, evA); ca != cw {
			t.Fatalf("event %d tcp diverged\n got: %s\nwant: %s", i, ca, cw)
		}
		if cb := canonicalEvent(t, evB); cb != cw {
			t.Fatalf("event %d sse diverged\n got: %s\nwant: %s", i, cb, cw)
		}
	}
	lastSeq := expected[len(expected)-1].Seq

	// Sever the SSE connection; the subscription must park as detached.
	stream.close()
	waitDetached(t, srvB, idB)

	// Events keep flowing server-side while the stream is down...
	batch4 := []wireUpdate{{OID: 9002, Verts: [][3]float64{{2000, 2000, 5}, {2001, 2001, 40}}}}
	if _, err := ing.Ingest(toUpdates(batch4)); err != nil {
		t.Fatal(err)
	}
	if status, body := postJSON(t, client, base+"/v1/ingest", "", ingestRequest{Updates: batch4}); status != http.StatusOK {
		t.Fatalf("batch4 http ingest: status %d (body %.300s)", status, body)
	}

	// ...and the resume replays them before going live again.
	resumed := openSSE(t, client, fmt.Sprintf(
		"%s/v1/subscribe?sub_id=%d&from_seq=%d", base, idB, lastSeq), "")
	defer resumed.close()
	again := resumed.next(t)
	if again.event != "subscribed" {
		t.Fatalf("resume first frame event %q", again.event)
	}
	var rehello subscribedEvent
	if err := json.Unmarshal(again.data, &rehello); err != nil {
		t.Fatal(err)
	}
	if rehello.SubID != idB {
		t.Fatalf("resume sub id %d, want %d", rehello.SubID, idB)
	}

	batch5 := []wireUpdate{{OID: 9003, Verts: hugVerts(q, 35)}}
	if _, err := ing.Ingest(toUpdates(batch5)); err != nil {
		t.Fatal(err)
	}
	if status, body := postJSON(t, client, base+"/v1/ingest", "", ingestRequest{Updates: batch5}); status != http.StatusOK {
		t.Fatalf("batch5 http ingest: status %d (body %.300s)", status, body)
	}

	tail, err := hubB.Replay(idB, lastSeq)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) < 2 {
		t.Fatalf("expected replayed + live events after resume, got %d", len(tail))
	}
	for i, want := range tail {
		evA, err := sub.NextEvent()
		if err != nil {
			t.Fatalf("tcp tail event %d: %v", i, err)
		}
		frame := resumed.next(t)
		var evB continuous.Event
		if err := json.Unmarshal(frame.data, &evB); err != nil {
			t.Fatal(err)
		}
		cw := canonicalEvent(t, want)
		if ca := canonicalEvent(t, evA); ca != cw {
			t.Fatalf("tail event %d tcp diverged\n got: %s\nwant: %s", i, ca, cw)
		}
		if cb := canonicalEvent(t, evB); cb != cw {
			t.Fatalf("tail event %d sse diverged\n got: %s\nwant: %s", i, cb, cw)
		}
	}
}

// waitDetached polls until the stream's handler has parked subscription
// id as detached (the handler notices the severed connection
// asynchronously).
func waitDetached(t testing.TB, srv *Server, id int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		srv.subsMu.Lock()
		_, live := srv.subscribers[id]
		_, parked := srv.detached[id]
		srv.subsMu.Unlock()
		if !live && parked {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("subscription %d never parked as detached", id)
}

// TestResumeValidation: resuming an unknown subscription answers 404, a
// live one 400, and a resume past the replay window 410 event_gap.
func TestResumeValidation(t *testing.T) {
	store, trs := buildStore(t, 20, equivSeed)
	// Retention disabled: every non-trivial replay is a gap.
	hub := continuous.NewEngineHubWith(store, engine.New(0), continuous.HubOptions{BacklogCap: -1})
	t.Cleanup(hub.Close)
	srv, base, client := startGateway(t, Options{
		Backend: EngineBackend{Eng: engine.New(0), Store: store},
		Hub:     hub,
		Metrics: NewMetrics(nil),
	}, nil)

	get := func(url string) (int, []byte) {
		t.Helper()
		resp, err := client.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		buf := new(bytes.Buffer)
		_, _ = buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}

	// Unknown subscription.
	status, body := get(base + "/v1/subscribe?sub_id=777&from_seq=0")
	if status != http.StatusNotFound {
		t.Fatalf("unknown resume: status %d, want 404 (body %s)", status, body)
	}

	// A live stream cannot be claimed by a second connection.
	q := trs[0]
	stream := openSSE(t, client, fmt.Sprintf(
		"%s/v1/subscribe?kind=UQ31&query_oid=%d&tb=0&te=30", base, q.OID), "")
	defer stream.close()
	hello := stream.next(t)
	var sub subscribedEvent
	if err := json.Unmarshal(hello.data, &sub); err != nil {
		t.Fatal(err)
	}
	status, body = get(fmt.Sprintf("%s/v1/subscribe?sub_id=%d&from_seq=0", base, sub.SubID))
	if status != http.StatusBadRequest {
		t.Fatalf("live resume: status %d, want 400 (body %s)", status, body)
	}

	// Sever, advance the world, resume: with retention disabled the
	// replay is a gap — 410.
	stream.close()
	waitDetached(t, srv, sub.SubID)
	upd := []wireUpdate{{OID: 9001, Verts: hugVerts(q, 35)}}
	if status, body := postJSON(t, client, base+"/v1/ingest", "", ingestRequest{Updates: upd}); status != http.StatusOK {
		t.Fatalf("ingest: status %d (body %.300s)", status, body)
	}
	status, body = get(fmt.Sprintf("%s/v1/subscribe?sub_id=%d&from_seq=0", base, sub.SubID))
	if status != http.StatusGone {
		t.Fatalf("gap resume: status %d, want 410 (body %s)", status, body)
	}
	if ae := decodeAPIError(t, body); ae.Code != "event_gap" {
		t.Fatalf("gap resume: code %q, want event_gap", ae.Code)
	}

	// Bad resume parameters.
	if status, _ = get(base + "/v1/subscribe?sub_id=xyz"); status != http.StatusBadRequest {
		t.Fatalf("bad sub_id: status %d, want 400", status)
	}
	if status, _ = get(base + "/v1/subscribe?sub_id=5"); status != http.StatusBadRequest {
		t.Fatalf("missing from_seq: status %d, want 400", status)
	}
	// Bad standing-query parameters.
	if status, _ = get(base + "/v1/subscribe?kind=UQ31&tb=abc"); status != http.StatusBadRequest {
		t.Fatalf("bad tb: status %d, want 400", status)
	}
	if status, _ = get(base + "/v1/subscribe?kind=NOPE&tb=0&te=30"); status != http.StatusBadRequest {
		t.Fatalf("bad kind: status %d, want 400", status)
	}
}

// TestLastEventIDResume: a plain EventSource reconnect (Last-Event-ID
// header, no from_seq param) resumes too.
func TestLastEventIDResume(t *testing.T) {
	store, trs := buildStore(t, 20, equivSeed)
	hub := newTestHub(t, store)
	srv, base, client := startGateway(t, Options{
		Backend: EngineBackend{Eng: engine.New(0), Store: store},
		Hub:     hub,
	}, nil)

	q := trs[0]
	stream := openSSE(t, client, fmt.Sprintf(
		"%s/v1/subscribe?kind=UQ31&query_oid=%d&tb=0&te=30", base, q.OID), "")
	hello := stream.next(t)
	var sub subscribedEvent
	if err := json.Unmarshal(hello.data, &sub); err != nil {
		t.Fatal(err)
	}
	if status, body := postJSON(t, client, base+"/v1/ingest", "",
		ingestRequest{Updates: []wireUpdate{{OID: 9001, Verts: hugVerts(q, 35)}}}); status != http.StatusOK {
		t.Fatalf("ingest: status %d (body %.300s)", status, body)
	}
	ev := stream.next(t)
	stream.close()
	waitDetached(t, srv, sub.SubID)

	if status, body := postJSON(t, client, base+"/v1/ingest", "",
		ingestRequest{Updates: []wireUpdate{{OID: 9001, Verts: [][3]float64{{500, 500, 5}, {501, 501, 40}}}}}); status != http.StatusOK {
		t.Fatalf("ingest 2: status %d (body %.300s)", status, body)
	}

	req, err := http.NewRequest(http.MethodGet,
		fmt.Sprintf("%s/v1/subscribe?sub_id=%d", base, sub.SubID), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", ev.id)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("Last-Event-ID resume: status %d", resp.StatusCode)
	}
	sc := &sseConn{resp: resp, br: bufio.NewReader(resp.Body)}
	if f := sc.next(t); f.event != "subscribed" {
		t.Fatalf("resume frame event %q", f.event)
	}
	replayed := sc.next(t)
	if replayed.event != "diff" {
		t.Fatalf("replayed frame event %q", replayed.event)
	}
	var got continuous.Event
	if err := json.Unmarshal(replayed.data, &got); err != nil {
		t.Fatal(err)
	}
	want, err := hub.Replay(sub.SubID, mustUint(t, ev.id))
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("no replay events retained")
	}
	if cw, cg := canonicalEvent(t, want[0]), canonicalEvent(t, got); cw != cg {
		t.Fatalf("Last-Event-ID replay diverged\n got: %s\nwant: %s", cg, cw)
	}
}

func mustUint(t testing.TB, s string) uint64 {
	t.Helper()
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestFanOutSeversFullChannel: a stream whose buffer is full is severed
// (channel closed, route dropped) instead of blocking ingest — the
// white-box twin of the stalled-consumer path.
func TestFanOutSeversFullChannel(t *testing.T) {
	store, _ := buildStore(t, 5, equivSeed)
	srv, err := New(Options{Backend: EngineBackend{Eng: engine.New(0), Store: store}})
	if err != nil {
		t.Fatal(err)
	}
	st := &sseStream{ch: make(chan continuous.Event, 1)}
	srv.subscribers[7] = st
	srv.fanOut([]continuous.Event{{SubID: 7, Seq: 1}})
	srv.fanOut([]continuous.Event{{SubID: 7, Seq: 2}}) // buffer full: sever
	if ev, ok := <-st.ch; !ok || ev.Seq != 1 {
		t.Fatalf("buffered event: ok=%v seq=%d, want seq 1", ok, ev.Seq)
	}
	if _, ok := <-st.ch; ok {
		t.Fatal("channel not closed after sever")
	}
	srv.subsMu.Lock()
	_, live := srv.subscribers[7]
	srv.subsMu.Unlock()
	if live {
		t.Fatal("severed stream still routed")
	}
	// Events to unknown subscriptions are ignored.
	srv.fanOut([]continuous.Event{{SubID: 7, Seq: 3}})
}

func contains(ids []int64, id int64) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// TestDetachedLRUEviction: past MaxDetached parked subscriptions, the
// oldest is evicted and unsubscribed from the hub.
func TestDetachedLRUEviction(t *testing.T) {
	store, trs := buildStore(t, 20, equivSeed)
	hub := newTestHub(t, store)
	srv, base, client := startGateway(t, Options{
		Backend:     EngineBackend{Eng: engine.New(0), Store: store},
		Hub:         hub,
		MaxDetached: 2,
	}, nil)

	q := trs[0]
	var ids []int64
	for i := 0; i < 3; i++ {
		stream := openSSE(t, client, fmt.Sprintf(
			"%s/v1/subscribe?kind=UQ31&query_oid=%d&tb=0&te=%g", base, q.OID, 30+float64(i)), "")
		var sub subscribedEvent
		if err := json.Unmarshal(stream.next(t).data, &sub); err != nil {
			t.Fatal(err)
		}
		stream.close()
		waitDetached(t, srv, sub.SubID)
		ids = append(ids, sub.SubID)
	}
	// The first subscription fell off the LRU and left the hub.
	deadline := time.Now().Add(2 * time.Second)
	for contains(hub.Subscriptions(), ids[0]) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if contains(hub.Subscriptions(), ids[0]) {
		t.Fatalf("evicted subscription %d still lives in the hub", ids[0])
	}
	for _, id := range ids[1:] {
		if !contains(hub.Subscriptions(), id) {
			t.Fatalf("retained subscription %d missing from the hub", id)
		}
	}
}

// TestShutdownSeversStreams: drain closes live SSE streams promptly (the
// stream ends mid-connection) and the server shuts down within its
// grace period.
func TestShutdownSeversStreams(t *testing.T) {
	store, trs := buildStore(t, 20, equivSeed)
	hub := newTestHub(t, store)
	srv, base, client := startGateway(t, Options{
		Backend: EngineBackend{Eng: engine.New(0), Store: store},
		Hub:     hub,
	}, nil)

	stream := openSSE(t, client, fmt.Sprintf(
		"%s/v1/subscribe?kind=UQ31&query_oid=%d&tb=0&te=30", base, trs[0].OID), "")
	defer stream.close()
	stream.next(t) // subscribed

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown with live stream: %v", err)
	}
	// The stream ended (EOF), not wedged until the grace deadline.
	if _, err := stream.br.ReadString('\n'); err == nil {
		t.Fatal("stream still delivering after shutdown")
	}
}
