package gateway

// The gateway-over-cluster equivalence gate: the full request suite via
// POST /v1/query against a 4-shard TLS+token cluster must answer
// byte-identically (modulo walls) to an identically-constructed router
// driven directly. Two separate shard-server sets serve the same split
// stores so both routers see identical engine-memo evolution.

import (
	"context"
	"crypto/tls"
	"fmt"
	"net"
	"testing"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/mod"
	"repro/internal/modserver"
	"repro/internal/testcert"
)

const shardToken = "shard-secret"

// startTLSShards serves the split stores over TLS+token modservers and
// returns remote shards configured to reach them.
func startTLSShards(t testing.TB, stores []*mod.Store, pair testcert.Pair, m *Metrics) []cluster.Shard {
	t.Helper()
	shards := make([]cluster.Shard, len(stores))
	for i, st := range stores {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := modserver.NewServerWith(st, nil, modserver.Options{Token: shardToken})
		go srv.Serve(tls.NewListener(l, pair.ServerConfig()))
		t.Cleanup(func() { srv.Close() })
		remote := cluster.NewRemoteShardWith(fmt.Sprintf("shard-%d", i), l.Addr().String(),
			cluster.RemoteOptions{
				TLS:     pair.ClientConfig(),
				Token:   shardToken,
				OnRetry: m.ShardRetryHook(),
			})
		t.Cleanup(func() { remote.Close() })
		shards[i] = remote
	}
	return shards
}

func TestQueryEquivalenceTLSCluster(t *testing.T) {
	pair, err := testcert.New()
	if err != nil {
		t.Fatal(err)
	}
	store, trs := buildStore(t, 200, equivSeed)
	reqs := append(equivRequests(trs), predicateRequests(trs)...)
	stores, err := cluster.SplitStore(store, 4, cluster.Hash{})
	if err != nil {
		t.Fatal(err)
	}

	// Oracle: a TLS router driven directly, one request at a time.
	oracle, err := cluster.NewRouter(context.Background(),
		startTLSShards(t, stores, pair, nil), cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]engine.Result, len(reqs))
	for i, req := range reqs {
		want[i], _ = oracle.Do(context.Background(), req)
	}

	// Gateway: a second identical shard set behind HTTPS + token.
	gwRouter, err := cluster.NewRouter(context.Background(),
		startTLSShards(t, stores, pair, nil), cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, base, client := startGateway(t, Options{
		Backend: gwRouter,
		Token:   "gw-secret",
	}, &pair)
	checkHTTPAnswers(t, client, base, "gw-secret", reqs, want)
}
