package gateway

// Exposition tests: the gateway's metric families render byte-stable
// Prometheus text (golden file), and every label is drawn from a closed
// set — no per-OID or per-query labels can ever be minted by traffic.

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/continuous"
	"repro/internal/engine"
	"repro/internal/textidx"
	"repro/internal/wal"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// TestMetricsGolden drives every recording path with fixed values and
// compares the full exposition to the committed golden file. Run with
// -update-golden to regenerate.
func TestMetricsGolden(t *testing.T) {
	m := NewMetrics(nil)

	m.recordHTTP("POST /v1/query", 200, 3*time.Millisecond)
	m.recordHTTP("POST /v1/query", 404, 120*time.Millisecond)
	m.recordHTTP("GET /v1/subscribe", 200, 40*time.Millisecond)
	m.recordHTTP("", 404, time.Millisecond)

	m.recordQuery(engine.Result{
		Kind: engine.KindUQ31,
		Explain: engine.Explain{
			Candidates: 40, Survivors: 6, MemoHit: true, Workers: 4,
			Wall: 2 * time.Millisecond, Shards: 2,
			ShardExplains: []engine.Explain{
				{Candidates: 20, Survivors: 3, Wall: time.Millisecond},
				{Candidates: 20, Survivors: 3, Wall: 900 * time.Microsecond},
			},
			Degraded: true, MissingShards: []string{"shard-1"},
		},
	}, false)
	m.recordQuery(engine.Result{
		Kind: engine.KindUQ31,
		Explain: engine.Explain{
			Candidates: 4, Survivors: 2, Wall: time.Millisecond,
			TextualCandidates: 4, SpatialCandidates: 40,
		},
	}, true)
	m.recordQuery(engine.Result{Kind: "NOPE", Err: engine.ErrBadKind}, false)
	m.recordQuery(engine.Result{
		Kind: engine.KindUQ11, Err: engine.ErrUnknownOID,
		Explain: engine.Explain{Wall: 500 * time.Microsecond},
	}, false)

	m.recordIngest(3, nil)
	m.recordIngest(0, badReq(fmt.Errorf("empty")))

	m.streamAttached()
	m.countEvents(2)
	m.countResume()
	m.countGap()
	m.streamDetached()
	m.streamAttached()

	m.ShardRetryHook()("shard-1", 1, nil)
	m.ShardRetryHook()("shard-1", 2, nil)

	m.ObserveHub(func() continuous.Stats {
		return continuous.Stats{Ingested: 5, Evals: 4, Skips: 3}
	})
	m.ObserveWAL(func() wal.Stats {
		return wal.Stats{Appends: 2, AppendedBytes: 4096, Snapshots: 1}
	})

	var sb strings.Builder
	m.Registry().WriteText(&sb)
	got := sb.String()

	const golden = "testdata/exposition.golden"
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("exposition diverged from %s\n--- got ---\n%s\n--- want ---\n%s",
			golden, got, want)
	}
}

// TestMetricsLabelCardinality: every registered family uses only labels
// from the closed allow-list; nothing can key a series on a client-
// controlled value.
func TestMetricsLabelCardinality(t *testing.T) {
	m := NewMetrics(nil)
	m.ObserveHub(func() continuous.Stats { return continuous.Stats{} })
	m.ObserveWAL(func() wal.Stats { return wal.Stats{} })
	allowed := map[string]bool{
		"route": true, "code": true, "kind": true,
		"outcome": true, "shard": true, "le": true, "filtered": true,
	}
	fams := m.Registry().Families()
	if len(fams) < 15 {
		t.Fatalf("only %d families registered", len(fams))
	}
	for _, f := range fams {
		for _, l := range f.Labels {
			if !allowed[l] {
				t.Fatalf("family %s uses label %q outside the allow-list", f.Name, l)
			}
		}
	}

	// Hostile kinds cannot mint series: any number of distinct invalid
	// kinds collapses onto the single kind="invalid" series.
	seriesCount := func(name string) int {
		for _, f := range m.Registry().Families() {
			if f.Name == name {
				return f.Series
			}
		}
		t.Fatalf("family %s not registered", name)
		return 0
	}
	before := seriesCount("gateway_query_requests_total")
	m.recordQuery(engine.Result{Kind: "oid-4242-probe"}, false)
	m.recordQuery(engine.Result{Kind: "oid-9999-probe"}, false)
	m.recordQuery(engine.Result{Kind: "oid-1234-probe"}, false)
	if after := seriesCount("gateway_query_requests_total"); after != before+1 {
		t.Fatalf("3 hostile kinds minted %d new series, want 1 (invalid)", after-before)
	}

	// The filtered label is derived from a bool — hostile predicates of any
	// content fan onto exactly the two closed values, one extra series here.
	before = seriesCount("gateway_query_requests_total")
	m.recordQuery(engine.Result{Kind: "oid-4242-probe"}, true)
	m.recordQuery(engine.Result{Kind: "oid-5555-probe"}, true)
	if after := seriesCount("gateway_query_requests_total"); after != before+1 {
		t.Fatalf("filtered probes minted %d new series, want 1 (invalid/true)", after-before)
	}
}

// TestMetricsEndToEnd: real traffic through the full stack lands in the
// exposition — request counts, query outcomes, prune counters, hub and
// WAL counters — and /metrics stays a valid text/plain 0.0.4 surface.
func TestMetricsEndToEnd(t *testing.T) {
	store, trs := buildStore(t, 20, equivSeed)
	// Tag a couple of objects so the filtered query below has a non-empty
	// sub-MOD to run over.
	for _, tr := range trs[1:3] {
		if err := store.SetTags(tr.OID, []string{"available"}); err != nil {
			t.Fatal(err)
		}
	}
	hub := newTestHub(t, store)
	m := NewMetrics(nil)
	log, err := wal.Create(t.TempDir()+"/wal", store, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { log.Close() })
	m.ObserveHub(hub.Stats)
	m.ObserveWAL(log.Stats)
	_, base, client := startGateway(t, Options{
		Backend: EngineBackend{Eng: engine.New(0), Store: store},
		Hub:     hub,
		Journal: log,
		Store:   store,
		Metrics: m,
	}, nil)

	okReq := queryRequest{Request: engine.Request{
		Kind: engine.KindUQ31, QueryOID: trs[0].OID, Tb: equivTb, Te: equivTe,
	}}
	if status, body := postJSON(t, client, base+"/v1/query", "", okReq); status != http.StatusOK {
		t.Fatalf("query: status %d (body %.200s)", status, body)
	}
	missingReq := okReq
	missingReq.QueryOID = 987654321
	if status, _ := postJSON(t, client, base+"/v1/query", "", missingReq); status != http.StatusNotFound {
		t.Fatal("expected 404 for unknown query OID")
	}
	filteredReq := okReq
	filteredReq.Where = &textidx.Predicate{All: []string{"available"}}
	if status, body := postJSON(t, client, base+"/v1/query", "", filteredReq); status != http.StatusOK {
		t.Fatalf("filtered query: status %d (body %.200s)", status, body)
	}
	tags := []string{"available"}
	ingest := ingestRequest{Updates: []wireUpdate{{OID: 9001, Verts: hugVerts(trs[0], 35), Tags: &tags}}}
	if status, body := postJSON(t, client, base+"/v1/ingest", "", ingest); status != http.StatusOK {
		t.Fatalf("ingest: status %d (body %.200s)", status, body)
	}

	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	buf := new(strings.Builder)
	if _, err := fmt.Fprint(buf, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, needle := range []string{
		`gateway_requests_total{route="POST /v1/query",code="200"} 2`,
		`gateway_requests_total{route="POST /v1/query",code="404"} 1`,
		`gateway_query_requests_total{kind="UQ31",outcome="ok",filtered="false"} 1`,
		`gateway_query_requests_total{kind="UQ31",outcome="ok",filtered="true"} 1`,
		`gateway_query_requests_total{kind="UQ31",outcome="not_found",filtered="false"} 1`,
		`gateway_ingest_updates_total 1`,
		`hub_ingested_updates_total 1`,
		`wal_appends_total 1`,
	} {
		if !strings.Contains(text, needle) {
			t.Fatalf("/metrics missing %q in:\n%s", needle, text)
		}
	}
	// The prune counters moved with the evaluated query.
	if strings.Contains(text, "engine_prune_candidates_total 0\n") {
		t.Fatal("prune candidates counter never advanced")
	}
}

func readAll(t testing.TB, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}

// TestNewValidation: construction contract errors.
func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("New without a backend succeeded")
	}
	store, _ := buildStore(t, 5, equivSeed)
	log, err := wal.Create(t.TempDir()+"/wal", store, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { log.Close() })
	if _, err := New(Options{
		Backend: EngineBackend{Eng: engine.New(0), Store: store},
		Journal: log,
	}); err == nil {
		t.Fatal("New with a journal but no store succeeded")
	}
}
