// Package cityload is the city-scale churn harness: a seeded, open-loop
// stochastic load generator that drives Poisson arrivals of plan
// revisions, tag flips, retirements, one-shot queries, and
// subscribe/unsubscribe churn over fleet-like motion (the simtest world,
// which reuses the paper's workload kinematics) against a live serving
// topology — the single-engine continuous hub or a K-shard router hub.
//
// The harness follows feesim's load-generation discipline: every stream
// (arrival counts, churn picks, per-worker query schedules) draws from
// its own seeded *rand.Rand (simtest.Rands), so a run is reproducible at
// any worker count, and arrival counts per tick are Poisson variates
// drawn by inverse-CDF (simtest.Poisson).
//
// It reports sustained updates/s through the live layer (apply + WAL-free
// dirty-set filtering + the re-evaluations the batches force) and the
// p50/p99 latency of one-shot queries served between batches, and it
// keeps the repo's correctness currency: at scripted spot-check ticks,
// standing answers are compared byte-for-byte against a fresh engine run
// on a snapshot of the world's truth.
package cityload

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/continuous"
	"repro/internal/engine"
	"repro/internal/simtest"
	"repro/internal/textidx"
)

// Config sizes one city run. Rates are mean arrivals per tick.
type Config struct {
	Seed    int64
	N       int     // fleet size
	Subs    int     // standing subscription population
	Ticks   int     // load ticks (the simulated clock advances Span-8 over the run)
	Workers int     // concurrent query workers
	Shards  int     // 0 = single-engine hub, else a K-shard router hub
	R       float64 // shared uncertainty radius

	UpdateRate float64 // plan revisions per tick
	FlipRate   float64 // tag flips per tick
	RetireRate float64 // retirements per tick (each re-enters two ticks later)
	QueryRate  float64 // one-shot queries per tick, split across workers
	ChurnRate  float64 // unsubscribe+resubscribe pairs per tick

	// Shapes bounds the number of distinct standing questions the
	// subscription population spreads over (0 = min(Subs, 48)). A city's
	// standing load is many subscribers per question, not a distinct
	// query per subscriber, and the pool is what makes a 10^3-subscriber
	// run tractable: per ingest batch the hub evaluates at most one
	// backend query per distinct dirty shape, with every other subscriber
	// on that shape refreshed by dirty-set sharing.
	Shapes int

	SpotChecks int // standing answers byte-checked per spot-check tick
}

// DefaultConfig returns a small, fast city (the test/smoke shape); the
// committed BENCH_city.json rows use the figures-driven scale (N>=1e5).
func DefaultConfig(seed int64) Config {
	return Config{
		Seed: seed, N: 2000, Subs: 96, Ticks: 10, Workers: 4, R: 0.5,
		UpdateRate: 40, FlipRate: 6, RetireRate: 3, QueryRate: 24, ChurnRate: 3,
		SpotChecks: 8,
	}
}

// Row is one city run's report.
type Row struct {
	Topology string
	Shards   int
	N        int
	Subs     int
	Ticks    int

	Updates  int // total updates ingested (revisions+flips+retires+re-entries+inserts)
	Retires  int // retirements among them
	SubChurn int // unsubscribe+resubscribe pairs
	Queries  int // one-shot queries timed

	UpdatesPerSec float64       // sustained: updates / total hub Ingest wall
	IngestWall    time.Duration // total hub Ingest wall
	QueryP50      time.Duration
	QueryP99      time.Duration

	Evals  uint64 // hub evaluations across the run
	Skips  uint64 // refreshes the dirty set proved unnecessary
	Shared uint64 // refreshes satisfied by another subscription's evaluation

	Equal      bool // every spot check byte-identical to a fresh snapshot re-query
	SpotChecks int  // spot comparisons performed
}

// requests builds the standing population by spreading subs subscribers
// round-robin over a pool of `shapes` distinct questions on the
// churn-immune OID prefix: staggered short windows across the horizon,
// rotating kinds, tag-filtered variants, and whole-horizon retrievals.
// Every fifth subscriber additionally stands on the pool's first shape
// (one shared "hot" question — many subscribers watching the same query,
// the skew dirty-set sharing exists for).
func requests(subs, shapes int, qoids []int64) []engine.Request {
	avail := &textidx.Predicate{All: []string{"available"}}
	anyOf := &textidx.Predicate{Any: []string{"available", "ev"}}
	pool := make([]engine.Request, 0, shapes)
	for i := 0; len(pool) < shapes; i++ {
		q := qoids[i%len(qoids)]
		tgt := qoids[(i+1)%len(qoids)]
		tb := float64((i * 7) % 48)
		te := tb + 9
		switch i % 6 {
		case 0:
			pool = append(pool, engine.Request{Kind: engine.KindUQ31, QueryOID: q, Tb: tb, Te: te})
		case 1:
			pool = append(pool, engine.Request{Kind: engine.KindUQ33, QueryOID: q, Tb: tb, Te: te, X: 0.25})
		case 2:
			pool = append(pool, engine.Request{Kind: engine.KindUQ11, QueryOID: q, Tb: tb, Te: te, OID: tgt})
		case 3:
			pool = append(pool, engine.Request{Kind: engine.KindUQ31, QueryOID: q, Tb: tb, Te: te, Where: avail})
		case 4:
			pool = append(pool, engine.Request{Kind: engine.KindUQ41, QueryOID: q, Tb: tb, Te: te, K: 2, Where: anyOf})
		default:
			pool = append(pool, engine.Request{Kind: engine.KindUQ31, QueryOID: q, Tb: 0, Te: simtest.Span})
		}
	}
	reqs := make([]engine.Request, 0, subs)
	for i := 0; len(reqs) < subs; i++ {
		if i%5 == 4 {
			reqs = append(reqs, pool[0])
			continue
		}
		reqs = append(reqs, pool[i%len(pool)])
	}
	return reqs
}

// answerKey renders the answer-bearing fields of a result (Explain
// legitimately differs between topologies).
func answerKey(res engine.Result) (string, error) {
	b, err := json.Marshal(struct {
		Kind   engine.Kind       `json:"kind"`
		IsBool bool              `json:"is_bool"`
		Bool   bool              `json:"bool"`
		OIDs   []int64           `json:"oids"`
		Pairs  map[int64][]int64 `json:"pairs"`
		Err    string            `json:"err,omitempty"`
	}{res.Kind, res.IsBool, res.Bool, res.OIDs, res.Pairs, errString(res.Err)})
	return string(b), err
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// Run executes one city under the configured topology.
func Run(cfg Config) (Row, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.SpotChecks <= 0 {
		cfg.SpotChecks = 8
	}
	row := Row{Topology: "single", Shards: cfg.Shards, N: cfg.N, Subs: cfg.Subs, Ticks: cfg.Ticks, Equal: true}
	if cfg.Shards > 0 {
		row.Topology = fmt.Sprintf("shard%d", cfg.Shards)
	}

	// The query population stands on a churn-immune OID prefix: large
	// enough for variety, never retired by the scripted churn (the
	// identity checks would otherwise race the TTL sweeps).
	guard := 64
	if guard > cfg.N/4 {
		guard = cfg.N / 4
	}
	wcfg := simtest.Config{
		Seed: cfg.Seed, N: cfg.N, Held: 4, R: cfg.R,
		Steps: cfg.Ticks, Protect: guard,
	}
	w, err := simtest.NewWorld(wcfg)
	if err != nil {
		return row, err
	}
	store, err := w.InitialStore()
	if err != nil {
		return row, err
	}
	store.BuildIndex(0)
	store.TextIndex()

	// Topology under test: the hub ingests; oneShot serves ad-hoc queries.
	var hub *continuous.Hub
	var oneShot func(context.Context, engine.Request) (engine.Result, error)
	if cfg.Shards == 0 {
		eng := engine.New(0)
		hub = continuous.NewEngineHub(store, eng)
		oneShot = func(ctx context.Context, req engine.Request) (engine.Result, error) {
			return eng.Do(ctx, store, req)
		}
	} else {
		router, err := cluster.NewLocalCluster(store, cfg.Shards, cluster.Options{})
		if err != nil {
			return row, err
		}
		hub = cluster.NewRouterHub(router)
		oneShot = router.Do
	}

	shapes := cfg.Shapes
	if shapes <= 0 {
		shapes = 48
	}
	if shapes > cfg.Subs {
		shapes = cfg.Subs
	}

	ctx := context.Background()
	reqs := requests(cfg.Subs, shapes, w.ProtectedOIDs())
	// subIDs is shared between the tick loop (churn rewrites slots) and
	// the background poller; subMu covers every slot access.
	var subMu sync.Mutex
	subIDs := make([]int64, len(reqs))
	for i, req := range reqs {
		id, _, err := hub.Subscribe(ctx, req)
		if err != nil {
			return row, fmt.Errorf("subscribe %d (%s): %w", i, req.Kind, err)
		}
		subIDs[i] = id
	}
	subAt := func(k int) int64 {
		subMu.Lock()
		defer subMu.Unlock()
		return subIDs[k]
	}

	// Independent seeded streams, feesim-style: arrival counts, churn
	// picks, spot-check picks, and one per query worker.
	metaRngs := simtest.Rands(cfg.Seed^0xc17b, 3)
	arrivals, churn, spot := metaRngs[0], metaRngs[1], metaRngs[2]
	workerRngs := simtest.Rands(cfg.Seed^0x90b5, cfg.Workers)
	latencies := make([][]time.Duration, cfg.Workers)

	// A background poller keeps standing-answer reads concurrent with
	// everything else, as live clients would.
	stop := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_, _ = hub.Answer(subAt(i % len(subIDs)))
			_ = hub.Stats()
		}
	}()
	defer func() {
		close(stop)
		pollWG.Wait()
	}()

	spotTicks := map[int]bool{cfg.Ticks / 3: true, 2 * cfg.Ticks / 3: true, cfg.Ticks - 1: true}
	for tick := 0; tick < cfg.Ticks; tick++ {
		// Subscribe/unsubscribe churn: standing slots drop and re-register
		// the same request (a new subscriber taking over the standing
		// question), keeping the population size constant.
		for j := simtest.Poisson(churn, cfg.ChurnRate); j > 0; j-- {
			k := churn.Intn(len(subIDs))
			hub.Unsubscribe(subAt(k))
			id, _, err := hub.Subscribe(ctx, reqs[k])
			if err != nil {
				return row, fmt.Errorf("resubscribe %d: %w", k, err)
			}
			subMu.Lock()
			subIDs[k] = id
			subMu.Unlock()
			row.SubChurn++
		}

		// Poisson-sized mutation batch through the scripted world.
		batch, err := w.StepSized(
			simtest.Poisson(arrivals, cfg.UpdateRate),
			simtest.Poisson(arrivals, cfg.FlipRate),
			simtest.Poisson(arrivals, cfg.RetireRate),
		)
		if err != nil {
			return row, err
		}
		for _, u := range batch {
			if u.Retire {
				row.Retires++
			}
		}
		row.Updates += len(batch)
		t0 := time.Now()
		if _, _, err := hub.Ingest(ctx, batch); err != nil {
			return row, fmt.Errorf("tick %d: ingest: %w", tick, err)
		}
		row.IngestWall += time.Since(t0)

		// One-shot query load: each worker runs its own Poisson-drawn
		// share on its own stream, concurrently with its siblings (and
		// the background poller).
		var wg sync.WaitGroup
		errs := make([]error, cfg.Workers)
		for wi := 0; wi < cfg.Workers; wi++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				rng := workerRngs[wi]
				for q := simtest.Poisson(rng, cfg.QueryRate/float64(cfg.Workers)); q > 0; q-- {
					req := reqs[rng.Intn(len(reqs))]
					t := time.Now()
					if _, err := oneShot(ctx, req); err != nil {
						errs[wi] = fmt.Errorf("worker %d (%s): %w", wi, req.Kind, err)
						return
					}
					latencies[wi] = append(latencies[wi], time.Since(t))
				}
			}(wi)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return row, err
			}
		}

		// Spot checks: standing answers vs a fresh engine on a snapshot
		// of the truth — byte identity under churn, measured, not assumed.
		if spotTicks[tick] {
			snap, err := w.SnapshotStore()
			if err != nil {
				return row, err
			}
			fresh := engine.New(0)
			for j := 0; j < cfg.SpotChecks; j++ {
				k := spot.Intn(len(subIDs))
				live, err := hub.Answer(subAt(k))
				if err != nil {
					return row, err
				}
				want, err := fresh.Do(ctx, snap, reqs[k])
				if err != nil {
					return row, fmt.Errorf("spot tick %d sub %d (%s): fresh: %w", tick, k, reqs[k].Kind, err)
				}
				got, wantKey, err := spotKeys(live, want)
				if err != nil {
					return row, err
				}
				if got != wantKey {
					row.Equal = false
				}
				row.SpotChecks++
			}
		}
	}

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	row.Queries = len(all)
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) > 0 {
		row.QueryP50 = all[len(all)/2]
		p99 := (len(all) * 99) / 100
		if p99 >= len(all) {
			p99 = len(all) - 1
		}
		row.QueryP99 = all[p99]
	}
	if row.IngestWall > 0 {
		row.UpdatesPerSec = float64(row.Updates) / row.IngestWall.Seconds()
	}
	stats := hub.Stats()
	row.Evals, row.Skips, row.Shared = stats.Evals, stats.Skips, stats.Shared
	return row, nil
}

func spotKeys(live, want engine.Result) (string, string, error) {
	got, err := answerKey(live)
	if err != nil {
		return "", "", err
	}
	wantKey, err := answerKey(want)
	if err != nil {
		return "", "", err
	}
	return got, wantKey, nil
}
