package cityload

// A small city through both topologies, under -race: spot checks hold,
// latency quantiles are ordered, churn actually happened, and the
// artifact round-trips through the baseline reader.

import (
	"bytes"
	"strings"
	"testing"
)

func TestCitySmallBothTopologies(t *testing.T) {
	for _, shards := range []int{0, 2} {
		cfg := DefaultConfig(1207)
		cfg.N = 400
		cfg.Subs = 48
		cfg.Ticks = 6
		cfg.Shards = shards
		row, err := Run(cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !row.Equal {
			t.Fatalf("shards=%d: spot checks diverged: %+v", shards, row)
		}
		if row.SpotChecks == 0 || row.Updates == 0 || row.Retires == 0 || row.Queries == 0 {
			t.Fatalf("shards=%d: degenerate run: %+v", shards, row)
		}
		if row.QueryP50 > row.QueryP99 || row.QueryP99 <= 0 {
			t.Fatalf("shards=%d: quantiles out of order: p50=%v p99=%v", shards, row.QueryP50, row.QueryP99)
		}
		if row.UpdatesPerSec <= 0 {
			t.Fatalf("shards=%d: no sustained rate: %+v", shards, row)
		}
		// The duplicate-heavy standing population must exercise sharing.
		if row.Shared == 0 {
			t.Fatalf("shards=%d: dirty-set sharing never fired: %+v", shards, row)
		}
		t.Logf("shards=%d: %+v", shards, row)
	}
}

func TestCityScheduleDeterminism(t *testing.T) {
	run := func() Row {
		cfg := DefaultConfig(31)
		cfg.N = 300
		cfg.Subs = 24
		cfg.Ticks = 5
		row, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return row
	}
	a, b := run(), run()
	// Timing differs; the seeded schedule (arrivals, churn, query counts,
	// spot picks) must not.
	if a.Updates != b.Updates || a.Retires != b.Retires || a.SubChurn != b.SubChurn ||
		a.Queries != b.Queries || a.SpotChecks != b.SpotChecks {
		t.Fatalf("schedule diverged across identical seeds:\n%+v\n%+v", a, b)
	}
}

func TestCityArtifactRoundTrip(t *testing.T) {
	rows := []Row{
		{Topology: "single", N: 100000, Subs: 1200, UpdatesPerSec: 52000, QueryP99: 4200000, Equal: true},
		{Topology: "shard4", N: 100000, Subs: 1200, UpdatesPerSec: 61000, QueryP99: 3100000, Equal: true},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rows, 0.5, 42); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"experiment"`) || !strings.Contains(buf.String(), `"updates_per_sec"`) {
		t.Fatalf("artifact missing fields:\n%s", buf.String())
	}
	base, err := ReadBaseline(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if base.UpdatesPerSec["shard4"] != 61000 || base.QueryP99NS["single"] != 4200000 {
		t.Fatalf("baseline round trip: %+v", base)
	}
	if s := Format(rows); !strings.Contains(s, "shard4") {
		t.Fatalf("format: %s", s)
	}
}
