package cityload

import (
	"encoding/json"
	"fmt"
	"io"
)

// Format renders rows as an aligned text table.
func Format(rows []Row) string {
	s := fmt.Sprintf("%-8s %-8s %-5s %-8s %-8s %-7s %-8s %-11s %-10s %-10s %-7s %-7s %-7s %s\n",
		"topo", "n", "subs", "updates", "retires", "churn", "queries", "updates/s", "p50", "p99", "evals", "skips", "shared", "equal")
	for _, r := range rows {
		s += fmt.Sprintf("%-8s %-8d %-5d %-8d %-8d %-7d %-8d %-11.0f %-10s %-10s %-7d %-7d %-7d %v\n",
			r.Topology, r.N, r.Subs, r.Updates, r.Retires, r.SubChurn, r.Queries,
			r.UpdatesPerSec, r.QueryP50, r.QueryP99, r.Evals, r.Skips, r.Shared, r.Equal)
	}
	return s
}

// cityDoc is the BENCH_city.json artifact schema; it follows the shared
// {experiment, rows} shape figures -fig summary renders.
type cityDoc struct {
	Experiment string        `json:"experiment"`
	Workload   string        `json:"workload"`
	Seed       int64         `json:"seed"`
	Radius     float64       `json:"radius"`
	Rows       []cityRowJSON `json:"rows"`
}

type cityRowJSON struct {
	Topology      string  `json:"topology"`
	N             int     `json:"n"`
	Subs          int     `json:"subs"`
	Ticks         int     `json:"ticks"`
	Updates       int     `json:"updates"`
	Retires       int     `json:"retires"`
	SubChurn      int     `json:"sub_churn"`
	Queries       int     `json:"queries"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
	QueryP50NS    int64   `json:"query_p50_ns"`
	QueryP99NS    int64   `json:"query_p99_ns"`
	Evals         uint64  `json:"evals"`
	Skips         uint64  `json:"skips"`
	Shared        uint64  `json:"shared"`
	Equal         bool    `json:"equal"`
	SpotChecks    int     `json:"spot_checks"`
}

// WriteJSON emits the BENCH_city.json artifact consumed by CI: uploaded
// nightly, gated on every row reporting equal=true, and read back as the
// committed baseline for the sustained-updates/s floor and p99 ceiling.
func WriteJSON(w io.Writer, rows []Row, r float64, seed int64) error {
	doc := cityDoc{
		Experiment: "city-scale churn: Poisson update/query/subscription arrivals with TTL-style retirement against live serving topologies",
		Workload: "simtest fleet; per-tick Poisson batches of plan revisions + tag flips + retirements (same-OID re-entry two ticks later); " +
			"standing UQ31/UQ33/UQ11/UQ41 subscriptions (subscribers spread over a bounded pool of distinct questions, incl. tag-filtered " +
			"and whole-horizon rows) with subscribe/unsubscribe churn; one-shot queries timed across seeded per-worker streams",
		Seed: seed, Radius: r,
	}
	for _, row := range rows {
		doc.Rows = append(doc.Rows, cityRowJSON{
			Topology: row.Topology, N: row.N, Subs: row.Subs, Ticks: row.Ticks,
			Updates: row.Updates, Retires: row.Retires, SubChurn: row.SubChurn, Queries: row.Queries,
			UpdatesPerSec: row.UpdatesPerSec,
			QueryP50NS:    int64(row.QueryP50), QueryP99NS: int64(row.QueryP99),
			Evals: row.Evals, Skips: row.Skips, Shared: row.Shared,
			Equal: row.Equal, SpotChecks: row.SpotChecks,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Baseline is the committed-artifact view the nightly gate reads before
// overwriting BENCH_city.json: per-topology sustained updates/s and p99.
type Baseline struct {
	UpdatesPerSec map[string]float64
	QueryP99NS    map[string]int64
}

// ReadBaseline parses a committed BENCH_city.json.
func ReadBaseline(r io.Reader) (Baseline, error) {
	var doc cityDoc
	b := Baseline{UpdatesPerSec: map[string]float64{}, QueryP99NS: map[string]int64{}}
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return b, err
	}
	for _, row := range doc.Rows {
		b.UpdatesPerSec[row.Topology] = row.UpdatesPerSec
		b.QueryP99NS[row.Topology] = row.QueryP99NS
	}
	return b, nil
}
