package queries

import (
	"fmt"
	"math"

	"repro/internal/envelope"
	"repro/internal/numeric"
	"repro/internal/uncertain"
	"repro/internal/updf"
)

// ThresholdConfig tunes continuous threshold-NN evaluation (the paper's
// Section 7 future-work item: "retrieve the objects that have more than
// 65% probability of being a nearest neighbor within 50% of the time").
type ThresholdConfig struct {
	// PDF is the shared location pdf of the objects (nil = uniform disk of
	// the processor's radius).
	PDF updf.RadialPDF
	// TimeSamples is the resolution of the probability time series
	// (default 64). Probabilities vary smoothly between envelope critical
	// times, so a moderate grid suffices; boundaries are refined linearly.
	TimeSamples int
	// Grid is the Eq. 5 integration grid (default uncertain.DefaultGrid).
	Grid int
}

func (c *ThresholdConfig) fill(r float64) (updf.RadialPDF, int, int, error) {
	p := c.PDF
	if p == nil {
		p = updf.NewUniformDisk(r)
	}
	ts := c.TimeSamples
	if ts <= 0 {
		ts = 64
	}
	grid := c.Grid
	if grid <= 0 {
		grid = uncertain.DefaultGrid
	}
	conv, err := updf.ConvolvePair(p, p, 0)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("queries: convolving pdfs: %w", err)
	}
	return conv, ts, grid, nil
}

// ProbabilitySeries returns the sampled time series of P^NN for the object
// — the probability (per Eq. 5 on the convolved pdf, Section 3.1's
// reduction) that it is the query's nearest neighbor at each sampled
// instant.
func (p *Processor) ProbabilitySeries(oid int64, cfg ThresholdConfig) ([]float64, []float64, error) {
	if _, _, err := p.lookup(oid); err != nil {
		return nil, nil, err
	}
	conv, samples, grid, err := cfg.fill(p.R)
	if err != nil {
		return nil, nil, err
	}
	// Candidates: every unpruned object (pruned ones contribute nothing).
	kept := p.UQ31()
	keptFns := make([]*envelope.DistanceFunc, 0, len(kept))
	for _, id := range kept {
		keptFns = append(keptFns, p.byID[id])
	}
	ts := numeric.Linspace(p.Tb, p.Te, samples)
	probs := make([]float64, len(ts))
	cands := make([]uncertain.Candidate, len(keptFns))
	for i, tm := range ts {
		for j, f := range keptFns {
			cands[j] = uncertain.Candidate{ID: f.ID, Dist: f.Value(tm)}
		}
		probs[i] = uncertain.NNProbabilities(conv, cands, grid)[oid]
	}
	return ts, probs, nil
}

// AboveThresholdIntervals returns the maximal time intervals during which
// P^NN_oid(t) >= pThresh, with boundaries interpolated linearly between
// samples.
func (p *Processor) AboveThresholdIntervals(oid int64, pThresh float64, cfg ThresholdConfig) ([]envelope.TimeInterval, error) {
	if pThresh < 0 || pThresh > 1 {
		return nil, ErrBadFrac
	}
	ts, probs, err := p.ProbabilitySeries(oid, cfg)
	if err != nil {
		return nil, err
	}
	var out []envelope.TimeInterval
	inRun := false
	var start float64
	cross := func(i int) float64 {
		// Linear interpolation of the crossing between samples i-1 and i.
		p0, p1 := probs[i-1], probs[i]
		if p1 == p0 {
			return ts[i]
		}
		u := (pThresh - p0) / (p1 - p0)
		return ts[i-1] + u*(ts[i]-ts[i-1])
	}
	for i := range ts {
		above := probs[i] >= pThresh
		switch {
		case above && !inRun:
			inRun = true
			if i == 0 {
				start = ts[0]
			} else {
				start = cross(i)
			}
		case !above && inRun:
			inRun = false
			out = append(out, envelope.TimeInterval{T0: start, T1: cross(i)})
		}
	}
	if inRun {
		out = append(out, envelope.TimeInterval{T0: start, T1: ts[len(ts)-1]})
	}
	return out, nil
}

// ThresholdNN answers the continuous threshold query: does the object have
// probability >= pThresh of being the NN for at least fraction x of the
// window?
func (p *Processor) ThresholdNN(oid int64, pThresh, x float64, cfg ThresholdConfig) (bool, error) {
	if x < 0 || x > 1 {
		return false, ErrBadFrac
	}
	ivs, err := p.AboveThresholdIntervals(oid, pThresh, cfg)
	if err != nil {
		return false, err
	}
	return envelope.TotalLength(ivs) >= x*(p.Te-p.Tb)-envelope.TimeEps, nil
}

// ThresholdNNAll retrieves every object satisfying ThresholdNN. Pruned
// objects are rejected without probability evaluation (their P^NN is
// identically zero) — the Figure 13 saving in action.
func (p *Processor) ThresholdNNAll(pThresh, x float64, cfg ThresholdConfig) ([]int64, error) {
	if x < 0 || x > 1 || pThresh < 0 || pThresh > 1 {
		return nil, ErrBadFrac
	}
	var out []int64
	for _, oid := range p.UQ31() {
		ok, err := p.ThresholdNN(oid, pThresh, x, cfg)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, oid)
		}
	}
	return out, nil
}

// MaxProbability returns the peak of the object's P^NN series and the time
// at which it occurs (a descriptor-style summary usable for ordering
// threshold answers).
func (p *Processor) MaxProbability(oid int64, cfg ThresholdConfig) (tAt, prob float64, err error) {
	ts, probs, err := p.ProbabilitySeries(oid, cfg)
	if err != nil {
		return 0, 0, err
	}
	best := math.Inf(-1)
	for i, v := range probs {
		if v > best {
			best = v
			tAt = ts[i]
		}
	}
	return tAt, best, nil
}
