package queries

import (
	"cmp"
	"slices"

	"repro/internal/envelope"
	"repro/internal/trajectory"
)

// This file implements two of the paper's Section 7 future-work variants:
// all-pairs continuous probabilistic NN (every object's possible-NN set)
// and reverse continuous probabilistic NN (for which objects can the
// target be the nearest neighbor).

// AllPairsPossibleNN computes, for every trajectory q in trs, the set of
// objects with non-zero probability of being q's nearest neighbor at some
// time in [tb, te] (UQ31 with each object as the query in turn). The
// result maps query OID to the sorted possible-NN OIDs. Total cost is
// O(N · N log N): one envelope preprocessing per query object.
func AllPairsPossibleNN(trs []*trajectory.Trajectory, tb, te, r float64) (map[int64][]int64, error) {
	out := make(map[int64][]int64, len(trs))
	for _, q := range trs {
		p, err := NewProcessor(trs, q, tb, te, r)
		if err != nil {
			return nil, err
		}
		out[q.OID] = p.UQ31()
	}
	return out, nil
}

// ReversePossibleNN returns the objects q (other than the target) for
// which the target has non-zero probability of being q's nearest neighbor
// at some time in [tb, te] — the reverse continuous probabilistic NN
// query. Sorted by OID.
func ReversePossibleNN(trs []*trajectory.Trajectory, target *trajectory.Trajectory, tb, te, r float64) ([]int64, error) {
	var out []int64
	for _, q := range trs {
		if q.OID == target.OID {
			continue
		}
		p, err := NewProcessor(trs, q, tb, te, r)
		if err != nil {
			return nil, err
		}
		ok, err := p.UQ11(target.OID)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, q.OID)
		}
	}
	sortIDs(out)
	return out, nil
}

// ReversePossibleNNIntervals additionally reports, per reverse witness q,
// the time intervals during which the target can be q's nearest neighbor.
func ReversePossibleNNIntervals(trs []*trajectory.Trajectory, target *trajectory.Trajectory, tb, te, r float64) (map[int64][]envelope.TimeInterval, error) {
	out := make(map[int64][]envelope.TimeInterval)
	for _, q := range trs {
		if q.OID == target.OID {
			continue
		}
		p, err := NewProcessor(trs, q, tb, te, r)
		if err != nil {
			return nil, err
		}
		ivs, err := p.PossibleNNIntervals(target.OID)
		if err != nil {
			return nil, err
		}
		if len(ivs) > 0 {
			out[q.OID] = ivs
		}
	}
	return out, nil
}

// MutualPossibleNNPairs returns the unordered pairs (a, b) such that each
// has non-zero probability of being the other's nearest neighbor at some
// time — candidates for "probably mutually closest" relationships.
// Pairs are returned with a < b, sorted lexicographically.
func MutualPossibleNNPairs(trs []*trajectory.Trajectory, tb, te, r float64) ([][2]int64, error) {
	all, err := AllPairsPossibleNN(trs, tb, te, r)
	if err != nil {
		return nil, err
	}
	inSet := func(ids []int64, want int64) bool {
		_, ok := slices.BinarySearch(ids, want)
		return ok
	}
	var out [][2]int64
	for _, a := range trs {
		for _, b := range trs {
			if a.OID >= b.OID {
				continue
			}
			if inSet(all[a.OID], b.OID) && inSet(all[b.OID], a.OID) {
				out = append(out, [2]int64{a.OID, b.OID})
			}
		}
	}
	slices.SortFunc(out, func(a, b [2]int64) int {
		if c := cmp.Compare(a[0], b[0]); c != 0 {
			return c
		}
		return cmp.Compare(a[1], b[1])
	})
	return out, nil
}
