// Package queries implements the four categories of continuous
// probabilistic NN-query variants of the paper's Section 4, processed over
// the lower-envelope machinery (and, for the ranked variants, over the
// k-level envelopes that form the IPAC-NN tree's geometric dual), together
// with the naive baselines the paper's Figure 12 compares against.
//
// Semantics (with uncertainty radius r and zone width 4r):
//
//   - An object has non-zero probability of being the NN of the query at
//     time t iff its difference-distance function is within 4r of the
//     Level-1 lower envelope at t.
//   - It has non-zero probability of being a k-th highest-probability NN at
//     t iff it is within 4r of the Level-k envelope at t (levels are
//     pointwise nondecreasing, so "some level i <= k" reduces to level k).
//
// Category 1 (UQ11/UQ12/UQ13) asks ∃t / ∀t / ≥X%-of-time about a single
// object; Category 2 (UQ21/UQ22/UQ23) adds the rank parameter k;
// Categories 3 and 4 quantify over the whole MOD. Fixed-time variants
// evaluate the same predicates at one instant.
package queries

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/envelope"
	"repro/internal/trajectory"
)

// Package errors.
var (
	ErrUnknownOID = errors.New("queries: unknown object ID")
	ErrBadFrac    = errors.New("queries: fraction must be in [0, 1]")
	ErrBadRank    = errors.New("queries: rank k must be >= 1")
)

// Processor answers the UQ query variants for one query trajectory and
// window. Construction performs the O(N log N) envelope preprocessing; each
// Category 1/2 query then costs O(N) / O(kN) per the paper's Claims 1-2.
//
// All methods are safe for concurrent use: the distance functions, the
// Level-1 envelope, and the OID table are immutable after construction, and
// the lazily grown k-level envelopes are guarded by a mutex. The per-OID
// kernels (PossibleNNIntervals, PossibleRankKIntervals, the UQ predicates)
// are pure, which is what lets the batch engine fan them across goroutines.
type Processor struct {
	QueryOID int64
	Tb, Te   float64
	R        float64

	fns  []*envelope.DistanceFunc
	byID map[int64]*envelope.DistanceFunc
	oids []int64 // candidate OIDs, sorted once at construction
	env1 *envelope.Envelope

	mu     sync.Mutex
	levels []*envelope.Envelope // levels[0] == env1, grown on demand
}

// NewProcessor builds the envelope preprocessing for the query trajectory
// q over [tb, te] with shared uncertainty radius r.
func NewProcessor(trs []*trajectory.Trajectory, q *trajectory.Trajectory, tb, te, r float64) (*Processor, error) {
	if r <= 0 {
		return nil, fmt.Errorf("queries: nonpositive radius %g", r)
	}
	fns, err := envelope.BuildDistanceFuncs(trs, q, tb, te)
	if err != nil {
		return nil, err
	}
	if len(fns) == 0 {
		return nil, envelope.ErrNoFunctions
	}
	env1, err := envelope.LowerEnvelope(fns, tb, te)
	if err != nil {
		return nil, err
	}
	byID := make(map[int64]*envelope.DistanceFunc, len(fns))
	oids := make([]int64, 0, len(fns))
	for _, f := range fns {
		byID[f.ID] = f
		oids = append(oids, f.ID)
	}
	sortIDs(oids)
	return &Processor{
		QueryOID: q.OID, Tb: tb, Te: te, R: r,
		fns: fns, byID: byID, oids: oids, env1: env1,
		levels: []*envelope.Envelope{env1},
	}, nil
}

// Envelope returns the Level-1 lower envelope.
func (p *Processor) Envelope() *envelope.Envelope { return p.env1 }

// width returns the pruning-zone width 4r.
func (p *Processor) width() float64 { return 4 * p.R }

// level returns the k-th envelope, building levels lazily.
func (p *Processor) level(k int) (*envelope.Envelope, error) {
	if k < 1 {
		return nil, ErrBadRank
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if k > len(p.levels) && len(p.levels) < len(p.fns) {
		lv, err := envelope.KLevelEnvelopes(p.fns, p.Tb, p.Te, k)
		if err != nil {
			return nil, err
		}
		p.levels = lv
	}
	if k > len(p.levels) {
		// Fewer functions than k: the deepest available level is the
		// correct bound (an object within 4r of it can be ranked <= k).
		return p.levels[len(p.levels)-1], nil
	}
	return p.levels[k-1], nil
}

// EnsureLevels builds the k-level envelopes up front so that subsequent
// concurrent rank-k queries only take the level lock briefly. Callers that
// fan per-OID work across goroutines (the batch engine) call it once with
// the largest rank in the batch.
func (p *Processor) EnsureLevels(k int) error {
	_, err := p.level(k)
	return err
}

// CandidateOIDs returns the sorted OIDs of the non-query objects the
// processor evaluates — the iteration domain of the whole-MOD Categories 3
// and 4, exposed so external executors can shard it into per-OID tasks.
// The list is sorted once at construction; callers get a copy.
func (p *Processor) CandidateOIDs() []int64 {
	out := make([]int64, len(p.oids))
	copy(out, p.oids)
	return out
}

func (p *Processor) fn(oid int64) (*envelope.DistanceFunc, error) {
	f, ok := p.byID[oid]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownOID, oid)
	}
	return f, nil
}

// PossibleNNIntervals returns the maximal time intervals during which the
// object has non-zero probability of being the query's nearest neighbor —
// the membership intervals of the 4r pruning zone.
func (p *Processor) PossibleNNIntervals(oid int64) ([]envelope.TimeInterval, error) {
	f, err := p.fn(oid)
	if err != nil {
		return nil, err
	}
	return envelope.BelowIntervals(f, p.env1, p.width()), nil
}

// PossibleRankKIntervals is the ranked analogue against the Level-k
// envelope.
func (p *Processor) PossibleRankKIntervals(oid int64, k int) ([]envelope.TimeInterval, error) {
	f, err := p.fn(oid)
	if err != nil {
		return nil, err
	}
	env, err := p.level(k)
	if err != nil {
		return nil, err
	}
	return envelope.BelowIntervals(f, env, p.width()), nil
}

// --- Category 1: single-trajectory predicates ---

// UQ11 reports whether the object has non-zero probability of being a NN
// to the query at some time during the window (∃t).
func (p *Processor) UQ11(oid int64) (bool, error) {
	ivs, err := p.PossibleNNIntervals(oid)
	if err != nil {
		return false, err
	}
	return len(ivs) > 0, nil
}

// UQ12 reports whether the object has non-zero probability of being a NN
// throughout the entire window (∀t).
func (p *Processor) UQ12(oid int64) (bool, error) {
	ivs, err := p.PossibleNNIntervals(oid)
	if err != nil {
		return false, err
	}
	return coversWindow(ivs, p.Tb, p.Te), nil
}

// UQ13 reports whether the object has non-zero probability of being a NN
// for at least fraction x of the window (the paper's X% of [tb, te]).
func (p *Processor) UQ13(oid int64, x float64) (bool, error) {
	if x < 0 || x > 1 {
		return false, ErrBadFrac
	}
	ivs, err := p.PossibleNNIntervals(oid)
	if err != nil {
		return false, err
	}
	return envelope.TotalLength(ivs) >= x*(p.Te-p.Tb)-envelope.TimeEps, nil
}

// --- Category 2: ranked single-trajectory predicates ---

// UQ21 reports whether the object can be a k-th highest-probability NN at
// some time (∃t, rank <= k).
func (p *Processor) UQ21(oid int64, k int) (bool, error) {
	ivs, err := p.PossibleRankKIntervals(oid, k)
	if err != nil {
		return false, err
	}
	return len(ivs) > 0, nil
}

// UQ22 reports whether the object can be a k-th highest-probability NN
// throughout the window (∀t, rank <= k).
func (p *Processor) UQ22(oid int64, k int) (bool, error) {
	ivs, err := p.PossibleRankKIntervals(oid, k)
	if err != nil {
		return false, err
	}
	return coversWindow(ivs, p.Tb, p.Te), nil
}

// UQ23 reports whether the object can be a k-th highest-probability NN at
// least fraction x of the window.
func (p *Processor) UQ23(oid int64, k int, x float64) (bool, error) {
	if x < 0 || x > 1 {
		return false, ErrBadFrac
	}
	ivs, err := p.PossibleRankKIntervals(oid, k)
	if err != nil {
		return false, err
	}
	return envelope.TotalLength(ivs) >= x*(p.Te-p.Tb)-envelope.TimeEps, nil
}

// --- Category 3: whole-MOD retrieval ---

// UQ31 retrieves all objects with non-zero probability of being a NN at
// some time during the window (equivalently: the unpruned survivors, the
// trajectories appearing in the IPAC-NN tree).
func (p *Processor) UQ31() []int64 {
	var out []int64
	for _, f := range p.fns {
		if ivs := envelope.BelowIntervals(f, p.env1, p.width()); len(ivs) > 0 {
			out = append(out, f.ID)
		}
	}
	sortIDs(out)
	return out
}

// UQ32 retrieves all objects with non-zero probability throughout the
// entire window.
func (p *Processor) UQ32() []int64 {
	var out []int64
	for _, f := range p.fns {
		if coversWindow(envelope.BelowIntervals(f, p.env1, p.width()), p.Tb, p.Te) {
			out = append(out, f.ID)
		}
	}
	sortIDs(out)
	return out
}

// UQ33 retrieves all objects with non-zero probability at least fraction x
// of the window.
func (p *Processor) UQ33(x float64) ([]int64, error) {
	if x < 0 || x > 1 {
		return nil, ErrBadFrac
	}
	var out []int64
	need := x*(p.Te-p.Tb) - envelope.TimeEps
	for _, f := range p.fns {
		if envelope.TotalLength(envelope.BelowIntervals(f, p.env1, p.width())) >= need {
			out = append(out, f.ID)
		}
	}
	sortIDs(out)
	return out, nil
}

// --- Category 4: ranked whole-MOD retrieval ---

// UQ41 retrieves all objects that can be a k-th highest-probability NN at
// some time.
func (p *Processor) UQ41(k int) ([]int64, error) {
	env, err := p.level(k)
	if err != nil {
		return nil, err
	}
	var out []int64
	for _, f := range p.fns {
		if ivs := envelope.BelowIntervals(f, env, p.width()); len(ivs) > 0 {
			out = append(out, f.ID)
		}
	}
	sortIDs(out)
	return out, nil
}

// UQ42 retrieves all objects that can be a k-th highest-probability NN
// throughout the window.
func (p *Processor) UQ42(k int) ([]int64, error) {
	env, err := p.level(k)
	if err != nil {
		return nil, err
	}
	var out []int64
	for _, f := range p.fns {
		if coversWindow(envelope.BelowIntervals(f, env, p.width()), p.Tb, p.Te) {
			out = append(out, f.ID)
		}
	}
	sortIDs(out)
	return out, nil
}

// UQ43 retrieves all objects that can be a k-th highest-probability NN at
// least fraction x of the window.
func (p *Processor) UQ43(k int, x float64) ([]int64, error) {
	if x < 0 || x > 1 {
		return nil, ErrBadFrac
	}
	env, err := p.level(k)
	if err != nil {
		return nil, err
	}
	var out []int64
	need := x*(p.Te-p.Tb) - envelope.TimeEps
	for _, f := range p.fns {
		if envelope.TotalLength(envelope.BelowIntervals(f, env, p.width())) >= need {
			out = append(out, f.ID)
		}
	}
	sortIDs(out)
	return out, nil
}

// --- fixed-time (t = tf) variants ---

// IsPossibleNNAt reports whether the object has non-zero probability of
// being the NN at the instant tf.
func (p *Processor) IsPossibleNNAt(oid int64, tf float64) (bool, error) {
	f, err := p.fn(oid)
	if err != nil {
		return false, err
	}
	return f.Value(tf) <= p.env1.ValueAt(tf)+p.width()+envelope.TimeEps, nil
}

// PossibleNNAt retrieves all objects with non-zero probability of being
// the NN at the instant tf.
func (p *Processor) PossibleNNAt(tf float64) []int64 {
	min := p.env1.ValueAt(tf)
	var out []int64
	for _, f := range p.fns {
		if f.Value(tf) <= min+p.width()+envelope.TimeEps {
			out = append(out, f.ID)
		}
	}
	sortIDs(out)
	return out
}

// GuaranteedNNIntervals returns the maximal intervals during which the
// object is *certainly* the query's nearest neighbor: its farthest
// possible distance stays below every other object's nearest possible
// distance (the certain counterpart of PossibleNNIntervals; cf. the
// upper-envelope approach of the paper's related work [12]).
func (p *Processor) GuaranteedNNIntervals(oid int64) ([]envelope.TimeInterval, error) {
	if _, err := p.fn(oid); err != nil {
		return nil, err
	}
	return envelope.GuaranteedNNIntervals(p.fns, oid, p.env1, p.R), nil
}

// IsPossibleRankKAt reports whether the object has non-zero probability of
// being a k-th highest-probability NN at the instant tf.
func (p *Processor) IsPossibleRankKAt(oid int64, tf float64, k int) (bool, error) {
	f, err := p.fn(oid)
	if err != nil {
		return false, err
	}
	env, err := p.level(k)
	if err != nil {
		return false, err
	}
	return f.Value(tf) <= env.ValueAt(tf)+p.width()+envelope.TimeEps, nil
}

// PossibleRankKAt retrieves all objects with non-zero probability of being
// a k-th highest-probability NN at the instant tf.
func (p *Processor) PossibleRankKAt(tf float64, k int) ([]int64, error) {
	env, err := p.level(k)
	if err != nil {
		return nil, err
	}
	bound := env.ValueAt(tf) + p.width() + envelope.TimeEps
	var out []int64
	for _, f := range p.fns {
		if f.Value(tf) <= bound {
			out = append(out, f.ID)
		}
	}
	sortIDs(out)
	return out, nil
}

// --- helpers ---

func coversWindow(ivs []envelope.TimeInterval, tb, te float64) bool {
	return len(ivs) == 1 &&
		ivs[0].T0 <= tb+envelope.TimeEps &&
		ivs[0].T1 >= te-envelope.TimeEps
}

func sortIDs(ids []int64) {
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
}
