// Package queries implements the four categories of continuous
// probabilistic NN-query variants of the paper's Section 4, processed over
// the lower-envelope machinery (and, for the ranked variants, over the
// k-level envelopes that form the IPAC-NN tree's geometric dual), together
// with the naive baselines the paper's Figure 12 compares against.
//
// Semantics (with uncertainty radius r and zone width 4r):
//
//   - An object has non-zero probability of being the NN of the query at
//     time t iff its difference-distance function is within 4r of the
//     Level-1 lower envelope at t.
//   - It has non-zero probability of being a k-th highest-probability NN at
//     t iff it is within 4r of the Level-k envelope at t (levels are
//     pointwise nondecreasing, so "some level i <= k" reduces to level k).
//
// Category 1 (UQ11/UQ12/UQ13) asks ∃t / ∀t / ≥X%-of-time about a single
// object; Category 2 (UQ21/UQ22/UQ23) adds the rank parameter k;
// Categories 3 and 4 quantify over the whole MOD. Fixed-time variants
// evaluate the same predicates at one instant.
package queries

import (
	"context"
	"errors"
	"fmt"
	"math"
	"slices"
	"sync"

	"repro/internal/envelope"
	"repro/internal/trajectory"
)

// Package errors.
var (
	ErrUnknownOID = errors.New("queries: unknown object ID")
	ErrBadFrac    = errors.New("queries: fraction must be in [0, 1]")
	ErrBadRank    = errors.New("queries: rank k must be >= 1")
)

// Processor answers the UQ query variants for one query trajectory and
// window. Construction performs the O(N log N) envelope preprocessing; each
// Category 1/2 query then costs O(N) / O(kN) per the paper's Claims 1-2.
//
// All methods are safe for concurrent use: the distance functions, the
// Level-1 envelope, and the OID table are immutable after construction, and
// the lazily grown k-level envelopes are guarded by a mutex. The per-OID
// kernels (PossibleNNIntervals, PossibleRankKIntervals, the UQ predicates)
// are pure, which is what lets the batch engine fan them across goroutines.
type Processor struct {
	QueryOID int64
	Tb, Te   float64
	R        float64

	// fns holds the distance functions the Level-1 envelope is built
	// from: every candidate in full mode, only the index survivors in
	// pruned mode (a pruned function never defines the lower envelope and
	// never enters the 4r zone, so the envelope — and every Level-1
	// answer — is unchanged by its absence).
	fns  []*envelope.DistanceFunc
	byID map[int64]*envelope.DistanceFunc
	oids []int64 // ALL candidate OIDs (survivors + pruned), sorted once
	env1 *envelope.Envelope

	// pruned marks candidates excluded by the index pre-pass (nil in full
	// mode). Their Level-1 answers are known without a distance function;
	// deeper ranks grow the basis below.
	pruned map[int64]bool

	// The rank basis: the function set the k-level envelopes are built
	// over, guarded by mu. In full mode it is the complete candidate set
	// from construction (basisRank unbounded). In pruned mode it starts as
	// the Level-1 survivors (basisRank 1) and grows on demand — through
	// the rank expander when one is attached (the index-probed rank-k
	// survivor superset, see SetRankExpander), otherwise through the lazy
	// full build. Envelope values over any conservative rank-k superset
	// match the full set for every level <= k, because a function outside
	// the widened rank-k zone is never among the k pointwise smallest.
	mu         sync.Mutex
	levels     []*envelope.Envelope // levels[0] == env1, grown on demand
	basisFns   []*envelope.DistanceFunc
	basisByID  map[int64]*envelope.DistanceFunc
	basisRank  int // ranks 1..basisRank answer exactly over the basis
	expand     func(ctx context.Context, k int) ([]int64, error)
	fullBuilds int // lazy full builds performed (observability)

	lazyTrs  []*trajectory.Trajectory // inputs of lazy basis growth
	lazyQ    *trajectory.Trajectory
	lazyByID map[int64]*trajectory.Trajectory // built on first basis growth
}

// fullRank marks a basis covering every rank (the complete function set).
const fullRank = math.MaxInt

// NewProcessor builds the envelope preprocessing for the query trajectory
// q over [tb, te] with shared uncertainty radius r.
func NewProcessor(trs []*trajectory.Trajectory, q *trajectory.Trajectory, tb, te, r float64) (*Processor, error) {
	if r <= 0 {
		return nil, fmt.Errorf("queries: nonpositive radius %g", r)
	}
	fns, err := envelope.BuildDistanceFuncs(trs, q, tb, te)
	if err != nil {
		return nil, err
	}
	if len(fns) == 0 {
		return nil, envelope.ErrNoFunctions
	}
	env1, err := envelope.LowerEnvelope(fns, tb, te)
	if err != nil {
		return nil, err
	}
	byID := make(map[int64]*envelope.DistanceFunc, len(fns))
	oids := make([]int64, 0, len(fns))
	for _, f := range fns {
		byID[f.ID] = f
		oids = append(oids, f.ID)
	}
	sortIDs(oids)
	return &Processor{
		QueryOID: q.OID, Tb: tb, Te: te, R: r,
		fns: fns, byID: byID, oids: oids, env1: env1,
		levels:   []*envelope.Envelope{env1},
		basisFns: fns, basisByID: byID, basisRank: fullRank,
	}, nil
}

// NewProcessorPruned builds the envelope preprocessing over the surviving
// candidates of an index pre-pass. survivors must be a conservative
// superset of every object whose difference-distance function comes within
// the 4r pruning zone of the Level-1 lower envelope anywhere in the window
// (internal/prune computes such a set from the store's spatial index, with
// a safety margin covering the TimeEps slack of the fixed-time tests).
//
// Answers are identical to NewProcessor's for every query variant:
// Level-1 queries run over the survivors alone (a pruned object's zone
// membership is empty by the superset guarantee), while the rank-k (k>=2),
// guaranteed-NN and threshold paths — whose envelopes depend on the whole
// candidate set — lazily build the complete function set on first use.
func NewProcessorPruned(trs []*trajectory.Trajectory, q *trajectory.Trajectory, tb, te, r float64, survivors []int64) (*Processor, error) {
	return NewProcessorPrunedCtx(context.Background(), trs, q, tb, te, r, survivors)
}

// NewProcessorPrunedCtx is NewProcessorPruned with construction-time
// context checks: the per-candidate distance-function build loop is where
// the O(survivors · m) work happens, so a canceled request stops there.
func NewProcessorPrunedCtx(ctx context.Context, trs []*trajectory.Trajectory, q *trajectory.Trajectory, tb, te, r float64, survivors []int64) (*Processor, error) {
	if r <= 0 {
		return nil, fmt.Errorf("queries: nonpositive radius %g", r)
	}
	surv := make(map[int64]bool, len(survivors))
	for _, id := range survivors {
		surv[id] = true
	}
	var (
		fns    []*envelope.DistanceFunc
		oids   []int64
		pruned = make(map[int64]bool)
	)
	for _, tr := range trs {
		if tr.OID == q.OID {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Validate every candidate against the window — including pruned
		// ones — so construction fails exactly when the full build would.
		if err := envelope.CheckWindow(tr, q, tb, te); err != nil {
			return nil, fmt.Errorf("oid %d: %w", tr.OID, err)
		}
		oids = append(oids, tr.OID)
		if surv[tr.OID] {
			f, err := envelope.NewDistanceFunc(tr.OID, tr, q, tb, te)
			if err != nil {
				return nil, fmt.Errorf("oid %d: %w", tr.OID, err)
			}
			fns = append(fns, f)
		} else {
			pruned[tr.OID] = true
		}
	}
	if len(oids) == 0 {
		return nil, envelope.ErrNoFunctions
	}
	if len(fns) == 0 {
		// Defensive: an empty survivor set cannot carry the envelope;
		// degrade to the full build.
		return NewProcessor(trs, q, tb, te, r)
	}
	env1, err := envelope.LowerEnvelope(fns, tb, te)
	if err != nil {
		return nil, err
	}
	byID := make(map[int64]*envelope.DistanceFunc, len(fns))
	for _, f := range fns {
		byID[f.ID] = f
	}
	sortIDs(oids)
	return &Processor{
		QueryOID: q.OID, Tb: tb, Te: te, R: r,
		fns: fns, byID: byID, oids: oids, env1: env1,
		pruned:   pruned,
		levels:   []*envelope.Envelope{env1},
		basisFns: fns, basisByID: byID, basisRank: 1,
		lazyTrs: trs, lazyQ: q,
	}, nil
}

// SetRankExpander attaches the rank-k survivor oracle of the index layer:
// expand(ctx, k) must return a conservative superset of every candidate
// whose difference-distance function comes within the 4r zone of the
// Level-k envelope somewhere in the window. With an expander attached, a
// rank-k query (k >= 2) grows the basis to the rank-k survivors instead of
// falling back to the lazy full build. No-op on a full-scan processor.
func (p *Processor) SetRankExpander(expand func(ctx context.Context, k int) ([]int64, error)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.basisRank == fullRank {
		return
	}
	p.expand = expand
}

// FullBuilds reports how many lazy full function-set builds the processor
// has performed — 0 when every deep-rank query was served by the rank
// expander (observability for the rank-aware pruning gate).
func (p *Processor) FullBuilds() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fullBuilds
}

// PrunedCount reports how many candidates the index pre-pass excluded
// (0 for a full-scan processor) — for stats and benchmark reporting.
func (p *Processor) PrunedCount() int { return len(p.pruned) }

// ensureFull returns the complete distance-function set, building it (and
// its OID table) on first use in pruned mode. The returned slice and map
// are write-once: callers use the returned references, never the fields.
func (p *Processor) ensureFull(ctx context.Context) ([]*envelope.DistanceFunc, map[int64]*envelope.DistanceFunc, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ensureFullLocked(ctx)
}

func (p *Processor) ensureFullLocked(ctx context.Context) ([]*envelope.DistanceFunc, map[int64]*envelope.DistanceFunc, error) {
	if p.basisRank == fullRank {
		return p.basisFns, p.basisByID, nil
	}
	// Complete the basis, reusing already-built survivor functions and
	// checking ctx between the per-candidate builds (the expensive part of
	// a lazy full build).
	fns := make([]*envelope.DistanceFunc, 0, len(p.oids))
	byID := make(map[int64]*envelope.DistanceFunc, len(p.oids))
	for _, tr := range p.lazyTrs {
		if tr.OID == p.lazyQ.OID {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		f, ok := p.basisByID[tr.OID]
		if !ok {
			var err error
			f, err = envelope.NewDistanceFunc(tr.OID, tr, p.lazyQ, p.Tb, p.Te)
			if err != nil {
				return nil, nil, fmt.Errorf("oid %d: %w", tr.OID, err)
			}
		}
		fns = append(fns, f)
		byID[f.ID] = f
	}
	wasComplete := len(p.basisFns) == len(fns)
	p.basisFns, p.basisByID, p.basisRank = fns, byID, fullRank
	p.fullBuilds++
	if !wasComplete {
		// Deeper levels were built over the smaller basis; level() rebuilds
		// them over the completed set on next use.
		p.levels = p.levels[:1]
	}
	return fns, byID, nil
}

// growBasisLocked guarantees the basis answers ranks 1..k exactly. With a
// rank expander attached it unions in the index-probed rank-k survivors
// (building distance functions only for the newcomers); otherwise it
// degrades to the lazy full build. Caller holds p.mu.
func (p *Processor) growBasisLocked(ctx context.Context, k int) error {
	if k <= p.basisRank {
		return nil
	}
	if p.expand == nil {
		_, _, err := p.ensureFullLocked(ctx)
		return err
	}
	ids, err := p.expand(ctx, k)
	if err != nil {
		return err
	}
	if p.lazyByID == nil {
		p.lazyByID = make(map[int64]*trajectory.Trajectory, len(p.lazyTrs))
		for _, tr := range p.lazyTrs {
			p.lazyByID[tr.OID] = tr
		}
	}
	var added []*envelope.DistanceFunc
	for _, id := range ids {
		if _, ok := p.basisByID[id]; ok || id == p.QueryOID {
			continue
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		tr, ok := p.lazyByID[id]
		if !ok {
			continue // expander over a different snapshot; ignore strangers
		}
		f, err := envelope.NewDistanceFunc(id, tr, p.lazyQ, p.Tb, p.Te)
		if err != nil {
			return fmt.Errorf("oid %d: %w", id, err)
		}
		added = append(added, f)
	}
	if len(added) > 0 {
		// Copy-on-write: byID (== the initial basisByID) is read lock-free
		// by the Level-1 paths, so mutate a clone, never the original.
		byID := make(map[int64]*envelope.DistanceFunc, len(p.basisByID)+len(added))
		for id, f := range p.basisByID {
			byID[id] = f
		}
		fns := make([]*envelope.DistanceFunc, 0, len(p.basisFns)+len(added))
		fns = append(fns, p.basisFns...)
		for _, f := range added {
			fns = append(fns, f)
			byID[f.ID] = f
		}
		// Canonical function order keeps envelope construction independent
		// of the order survivors were discovered in.
		slices.SortFunc(fns, func(a, b *envelope.DistanceFunc) int {
			switch {
			case a.ID < b.ID:
				return -1
			case a.ID > b.ID:
				return 1
			}
			return 0
		})
		p.basisFns, p.basisByID = fns, byID
		// Deeper levels were built over the smaller basis.
		p.levels = p.levels[:1]
	}
	p.basisRank = k
	return nil
}

// scanFns returns the function set a whole-MOD retrieval must scan for
// rank k: the Level-1 zone only ever admits survivors, while deeper levels
// must be compared against the (possibly grown) rank-k basis.
func (p *Processor) scanFns(k int) ([]*envelope.DistanceFunc, error) {
	if k <= 1 || p.pruned == nil {
		return p.fns, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.growBasisLocked(context.Background(), k); err != nil {
		return nil, err
	}
	return p.basisFns, nil
}

// Envelope returns the Level-1 lower envelope.
func (p *Processor) Envelope() *envelope.Envelope { return p.env1 }

// width returns the pruning-zone width 4r.
func (p *Processor) width() float64 { return 4 * p.R }

// level returns the k-th envelope, building levels lazily over the rank
// basis (grown to cover rank k first — via the rank expander when one is
// attached, else the lazy full build).
func (p *Processor) level(k int) (*envelope.Envelope, error) {
	return p.levelCtx(context.Background(), k)
}

func (p *Processor) levelCtx(ctx context.Context, k int) (*envelope.Envelope, error) {
	if k < 1 {
		return nil, ErrBadRank
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.growBasisLocked(ctx, k); err != nil {
		return nil, err
	}
	if k > len(p.levels) && len(p.levels) < len(p.basisFns) {
		lv, err := envelope.KLevelEnvelopes(p.basisFns, p.Tb, p.Te, k)
		if err != nil {
			return nil, err
		}
		p.levels = lv
	}
	if k > len(p.levels) {
		// Fewer functions than k: the deepest available level is the
		// correct bound (an object within 4r of it can be ranked <= k).
		// The basis always carries at least min(k, N) functions — at every
		// instant the k pointwise-smallest functions sit inside the rank-k
		// zone, so a conservative survivor superset keeps them all.
		return p.levels[len(p.levels)-1], nil
	}
	return p.levels[k-1], nil
}

// EnsureLevels builds the k-level envelopes up front so that subsequent
// concurrent rank-k queries only take the level lock briefly. Callers that
// fan per-OID work across goroutines (the batch engine) call it once with
// the largest rank in the batch.
func (p *Processor) EnsureLevels(k int) error {
	_, err := p.level(k)
	return err
}

// EnsureLevelsCtx is EnsureLevels under a context: basis growth and the
// k-level construction are the expensive lazy steps of a ranked query, so
// a canceled request stops inside them instead of completing the build.
func (p *Processor) EnsureLevelsCtx(ctx context.Context, k int) error {
	_, err := p.levelCtx(ctx, k)
	return err
}

// CandidateOIDs returns the sorted OIDs of the non-query objects the
// processor evaluates — the iteration domain of the whole-MOD Categories 3
// and 4, exposed so external executors can shard it into per-OID tasks.
// The list is sorted once at construction; callers get a copy.
func (p *Processor) CandidateOIDs() []int64 {
	out := make([]int64, len(p.oids))
	copy(out, p.oids)
	return out
}

// CandidateCount reports the number of non-query candidates without
// copying the OID list (Explain accounting on the query hot path).
func (p *Processor) CandidateCount() int { return len(p.oids) }

// IntersectSorted returns the elements common to two ascending-sorted OID
// lists, in ascending order. It is the domain-restriction primitive of
// shard-local refinement: intersecting the processor's (sorted) candidate
// domain with a shard's own sorted survivor list yields that shard's share
// of a whole-MOD filter without disturbing the deterministic OID order the
// answers are emitted in.
func IntersectSorted(a, b []int64) []int64 {
	var out []int64
	for len(a) > 0 && len(b) > 0 {
		switch {
		case a[0] < b[0]:
			a = a[1:]
		case a[0] > b[0]:
			b = b[1:]
		default:
			out = append(out, a[0])
			a, b = a[1:], b[1:]
		}
	}
	return out
}

// SurvivorOIDs returns the sorted OIDs of the current survivor basis —
// every candidate the index pre-pass could not rule out of the (rank-k,
// if the basis was grown) 4r zone, which in full-scan mode is every
// candidate. The continuous-query layer uses it as a subscription's
// dependency superset: an update to an object outside it provably cannot
// redefine the envelope or any zone membership.
func (p *Processor) SurvivorOIDs() []int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]int64, 0, len(p.basisByID))
	for id := range p.basisByID {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

// fn returns the object's distance function, erroring on unknown OIDs and
// on pruned candidates (which have none built). Level-1 query paths use
// lookup instead so pruned candidates answer without a function.
func (p *Processor) fn(oid int64) (*envelope.DistanceFunc, error) {
	f, ok := p.byID[oid]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownOID, oid)
	}
	return f, nil
}

// lookup resolves an OID to its distance function. Known-but-pruned
// candidates have none built; isPruned distinguishes them from unknown
// OIDs (which are an error, exactly as in full mode).
func (p *Processor) lookup(oid int64) (f *envelope.DistanceFunc, isPruned bool, err error) {
	if f, ok := p.byID[oid]; ok {
		return f, false, nil
	}
	if p.pruned[oid] {
		return nil, true, nil
	}
	return nil, false, fmt.Errorf("%w: %d", ErrUnknownOID, oid)
}

// PossibleNNIntervals returns the maximal time intervals during which the
// object has non-zero probability of being the query's nearest neighbor —
// the membership intervals of the 4r pruning zone.
func (p *Processor) PossibleNNIntervals(oid int64) ([]envelope.TimeInterval, error) {
	f, isPruned, err := p.lookup(oid)
	if err != nil {
		return nil, err
	}
	if isPruned {
		// The pre-pass guarantees the function never enters the zone.
		return nil, nil
	}
	return envelope.BelowIntervals(f, p.env1, p.width()), nil
}

// PossibleRankKIntervals is the ranked analogue against the Level-k
// envelope.
func (p *Processor) PossibleRankKIntervals(oid int64, k int) ([]envelope.TimeInterval, error) {
	f, isPruned, err := p.lookup(oid)
	if err != nil {
		return nil, err
	}
	if isPruned {
		if k < 1 {
			return nil, ErrBadRank
		}
		if k == 1 {
			return nil, nil // Level-1 zone membership is empty by the pre-pass
		}
		f, err = p.rankFn(oid, k)
		if err != nil {
			return nil, err
		}
		if f == nil {
			// Outside the rank-k basis: the pre-pass guarantees the
			// function never enters the Level-k zone either.
			return nil, nil
		}
	}
	env, err := p.level(k)
	if err != nil {
		return nil, err
	}
	return envelope.BelowIntervals(f, env, p.width()), nil
}

// rankFn returns the distance function a Level-1-pruned candidate has in
// the rank-k basis, growing the basis as needed. nil means the object is
// provably outside the rank-k zone.
func (p *Processor) rankFn(oid int64, k int) (*envelope.DistanceFunc, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.growBasisLocked(context.Background(), k); err != nil {
		return nil, err
	}
	return p.basisByID[oid], nil
}

// --- Category 1: single-trajectory predicates ---

// UQ11 reports whether the object has non-zero probability of being a NN
// to the query at some time during the window (∃t).
func (p *Processor) UQ11(oid int64) (bool, error) {
	ivs, err := p.PossibleNNIntervals(oid)
	if err != nil {
		return false, err
	}
	return len(ivs) > 0, nil
}

// UQ12 reports whether the object has non-zero probability of being a NN
// throughout the entire window (∀t).
func (p *Processor) UQ12(oid int64) (bool, error) {
	ivs, err := p.PossibleNNIntervals(oid)
	if err != nil {
		return false, err
	}
	return coversWindow(ivs, p.Tb, p.Te), nil
}

// UQ13 reports whether the object has non-zero probability of being a NN
// for at least fraction x of the window (the paper's X% of [tb, te]).
func (p *Processor) UQ13(oid int64, x float64) (bool, error) {
	if x < 0 || x > 1 {
		return false, ErrBadFrac
	}
	ivs, err := p.PossibleNNIntervals(oid)
	if err != nil {
		return false, err
	}
	return envelope.TotalLength(ivs) >= x*(p.Te-p.Tb)-envelope.TimeEps, nil
}

// --- Category 2: ranked single-trajectory predicates ---

// UQ21 reports whether the object can be a k-th highest-probability NN at
// some time (∃t, rank <= k).
func (p *Processor) UQ21(oid int64, k int) (bool, error) {
	ivs, err := p.PossibleRankKIntervals(oid, k)
	if err != nil {
		return false, err
	}
	return len(ivs) > 0, nil
}

// UQ22 reports whether the object can be a k-th highest-probability NN
// throughout the window (∀t, rank <= k).
func (p *Processor) UQ22(oid int64, k int) (bool, error) {
	ivs, err := p.PossibleRankKIntervals(oid, k)
	if err != nil {
		return false, err
	}
	return coversWindow(ivs, p.Tb, p.Te), nil
}

// UQ23 reports whether the object can be a k-th highest-probability NN at
// least fraction x of the window.
func (p *Processor) UQ23(oid int64, k int, x float64) (bool, error) {
	if x < 0 || x > 1 {
		return false, ErrBadFrac
	}
	ivs, err := p.PossibleRankKIntervals(oid, k)
	if err != nil {
		return false, err
	}
	return envelope.TotalLength(ivs) >= x*(p.Te-p.Tb)-envelope.TimeEps, nil
}

// --- Category 3: whole-MOD retrieval ---

// UQ31 retrieves all objects with non-zero probability of being a NN at
// some time during the window (equivalently: the unpruned survivors, the
// trajectories appearing in the IPAC-NN tree).
func (p *Processor) UQ31() []int64 {
	var out []int64
	for _, f := range p.fns {
		if ivs := envelope.BelowIntervals(f, p.env1, p.width()); len(ivs) > 0 {
			out = append(out, f.ID)
		}
	}
	sortIDs(out)
	return out
}

// UQ32 retrieves all objects with non-zero probability throughout the
// entire window.
func (p *Processor) UQ32() []int64 {
	var out []int64
	for _, f := range p.fns {
		if coversWindow(envelope.BelowIntervals(f, p.env1, p.width()), p.Tb, p.Te) {
			out = append(out, f.ID)
		}
	}
	sortIDs(out)
	return out
}

// UQ33 retrieves all objects with non-zero probability at least fraction x
// of the window.
func (p *Processor) UQ33(x float64) ([]int64, error) {
	if x < 0 || x > 1 {
		return nil, ErrBadFrac
	}
	need := x*(p.Te-p.Tb) - envelope.TimeEps
	if need <= 0 {
		// Zero-length requirement: every candidate qualifies (an empty
		// membership set has total length 0 >= need), including pruned
		// ones, exactly as in a full scan.
		out := make([]int64, len(p.oids))
		copy(out, p.oids)
		return out, nil
	}
	var out []int64
	for _, f := range p.fns {
		if envelope.TotalLength(envelope.BelowIntervals(f, p.env1, p.width())) >= need {
			out = append(out, f.ID)
		}
	}
	sortIDs(out)
	return out, nil
}

// --- Category 4: ranked whole-MOD retrieval ---

// UQ41 retrieves all objects that can be a k-th highest-probability NN at
// some time.
func (p *Processor) UQ41(k int) ([]int64, error) {
	env, err := p.level(k)
	if err != nil {
		return nil, err
	}
	fns, err := p.scanFns(k)
	if err != nil {
		return nil, err
	}
	var out []int64
	for _, f := range fns {
		if ivs := envelope.BelowIntervals(f, env, p.width()); len(ivs) > 0 {
			out = append(out, f.ID)
		}
	}
	sortIDs(out)
	return out, nil
}

// UQ42 retrieves all objects that can be a k-th highest-probability NN
// throughout the window.
func (p *Processor) UQ42(k int) ([]int64, error) {
	env, err := p.level(k)
	if err != nil {
		return nil, err
	}
	fns, err := p.scanFns(k)
	if err != nil {
		return nil, err
	}
	var out []int64
	for _, f := range fns {
		if coversWindow(envelope.BelowIntervals(f, env, p.width()), p.Tb, p.Te) {
			out = append(out, f.ID)
		}
	}
	sortIDs(out)
	return out, nil
}

// UQ43 retrieves all objects that can be a k-th highest-probability NN at
// least fraction x of the window.
func (p *Processor) UQ43(k int, x float64) ([]int64, error) {
	if x < 0 || x > 1 {
		return nil, ErrBadFrac
	}
	env, err := p.level(k)
	if err != nil {
		return nil, err
	}
	need := x*(p.Te-p.Tb) - envelope.TimeEps
	if need <= 0 {
		out := make([]int64, len(p.oids))
		copy(out, p.oids)
		return out, nil
	}
	fns, err := p.scanFns(k)
	if err != nil {
		return nil, err
	}
	var out []int64
	for _, f := range fns {
		if envelope.TotalLength(envelope.BelowIntervals(f, env, p.width())) >= need {
			out = append(out, f.ID)
		}
	}
	sortIDs(out)
	return out, nil
}

// --- fixed-time (t = tf) variants ---

// IsPossibleNNAt reports whether the object has non-zero probability of
// being the NN at the instant tf.
func (p *Processor) IsPossibleNNAt(oid int64, tf float64) (bool, error) {
	f, isPruned, err := p.lookup(oid)
	if err != nil {
		return false, err
	}
	if isPruned {
		// The pre-pass margin exceeds the TimeEps slack of this test.
		return false, nil
	}
	return f.Value(tf) <= p.env1.ValueAt(tf)+p.width()+envelope.TimeEps, nil
}

// PossibleNNAt retrieves all objects with non-zero probability of being
// the NN at the instant tf.
func (p *Processor) PossibleNNAt(tf float64) []int64 {
	min := p.env1.ValueAt(tf)
	var out []int64
	for _, f := range p.fns {
		if f.Value(tf) <= min+p.width()+envelope.TimeEps {
			out = append(out, f.ID)
		}
	}
	sortIDs(out)
	return out
}

// GuaranteedNNIntervals returns the maximal intervals during which the
// object is *certainly* the query's nearest neighbor: its farthest
// possible distance stays below every other object's nearest possible
// distance (the certain counterpart of PossibleNNIntervals; cf. the
// upper-envelope approach of the paper's related work [12]).
func (p *Processor) GuaranteedNNIntervals(oid int64) ([]envelope.TimeInterval, error) {
	if _, _, err := p.lookup(oid); err != nil {
		return nil, err
	}
	// The certain-NN test compares against the lower envelope of *all*
	// other objects, which pruned functions can define (they are far from
	// the query, exactly what certifies someone else as the NN).
	all, _, err := p.ensureFull(context.Background())
	if err != nil {
		return nil, err
	}
	return envelope.GuaranteedNNIntervals(all, oid, p.env1, p.R), nil
}

// IsPossibleRankKAt reports whether the object has non-zero probability of
// being a k-th highest-probability NN at the instant tf.
func (p *Processor) IsPossibleRankKAt(oid int64, tf float64, k int) (bool, error) {
	f, isPruned, err := p.lookup(oid)
	if err != nil {
		return false, err
	}
	env, err := p.level(k)
	if err != nil {
		return false, err
	}
	if isPruned {
		if k == 1 {
			return false, nil // outside the Level-1 zone by the pre-pass
		}
		f, err = p.rankFn(oid, k)
		if err != nil {
			return false, err
		}
		if f == nil {
			return false, nil // outside the rank-k zone by the pre-pass
		}
	}
	return f.Value(tf) <= env.ValueAt(tf)+p.width()+envelope.TimeEps, nil
}

// PossibleRankKAt retrieves all objects with non-zero probability of being
// a k-th highest-probability NN at the instant tf.
func (p *Processor) PossibleRankKAt(tf float64, k int) ([]int64, error) {
	env, err := p.level(k)
	if err != nil {
		return nil, err
	}
	fns, err := p.scanFns(k)
	if err != nil {
		return nil, err
	}
	bound := env.ValueAt(tf) + p.width() + envelope.TimeEps
	var out []int64
	for _, f := range fns {
		if f.Value(tf) <= bound {
			out = append(out, f.ID)
		}
	}
	sortIDs(out)
	return out, nil
}

// --- helpers ---

func coversWindow(ivs []envelope.TimeInterval, tb, te float64) bool {
	return len(ivs) == 1 &&
		ivs[0].T0 <= tb+envelope.TimeEps &&
		ivs[0].T1 >= te-envelope.TimeEps
}

func sortIDs(ids []int64) {
	slices.Sort(ids)
}
