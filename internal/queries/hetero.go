package queries

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/envelope"
	"repro/internal/numeric"
	"repro/internal/trajectory"
)

// This file implements the paper's last Section 7 future-work item:
// different uncertainty radii per object ("circles with different radii").
//
// With per-object radii r_i and query radius r_q, object i has non-zero
// probability of being the query's nearest neighbor at time t iff its
// closest possible distance does not exceed some object's farthest
// possible distance:
//
//	d_i(t) − (r_i + r_q)  <=  min_j ( d_j(t) + r_j + r_q ).
//
// With all radii equal to r this reduces exactly to the homogeneous 4r
// pruning zone: d_i(t) <= LE(t) + 4r. The shifted curves d_j(t) + c_j are
// no longer hyperbolae, so membership boundaries are located numerically
// (dense sampling + Brent refinement per elementary interval), trading
// the closed-form root solving of the homogeneous case for generality.

// HeteroProcessor answers possible-NN questions under per-object
// uncertainty radii.
type HeteroProcessor struct {
	QueryOID int64
	Tb, Te   float64

	fns   []*envelope.DistanceFunc
	byID  map[int64]*envelope.DistanceFunc
	shift map[int64]float64 // c_i = r_i + r_q
	cuts  []float64         // union of all piece breakpoints
}

// NewHeteroProcessor prepares the distance functions for query trajectory
// q over [tb, te]. radii maps every object OID (including q's) to its
// uncertainty radius; missing or nonpositive entries are an error.
func NewHeteroProcessor(trs []*trajectory.Trajectory, q *trajectory.Trajectory, tb, te float64, radii map[int64]float64) (*HeteroProcessor, error) {
	rq, ok := radii[q.OID]
	if !ok || rq <= 0 {
		return nil, fmt.Errorf("queries: missing or nonpositive radius for query %d", q.OID)
	}
	fns, err := envelope.BuildDistanceFuncs(trs, q, tb, te)
	if err != nil {
		return nil, err
	}
	if len(fns) == 0 {
		return nil, envelope.ErrNoFunctions
	}
	p := &HeteroProcessor{
		QueryOID: q.OID, Tb: tb, Te: te,
		fns:   fns,
		byID:  make(map[int64]*envelope.DistanceFunc, len(fns)),
		shift: make(map[int64]float64, len(fns)),
	}
	cutSet := map[float64]bool{tb: true, te: true}
	for _, f := range fns {
		ri, ok := radii[f.ID]
		if !ok || ri <= 0 {
			return nil, fmt.Errorf("queries: missing or nonpositive radius for object %d", f.ID)
		}
		p.byID[f.ID] = f
		p.shift[f.ID] = ri + rq
		for _, t := range f.Breakpoints() {
			if t > tb && t < te {
				cutSet[t] = true
			}
		}
	}
	for t := range cutSet {
		p.cuts = append(p.cuts, t)
	}
	sort.Float64s(p.cuts)
	return p, nil
}

// upperMin evaluates min_j (d_j(t) + c_j): the smallest farthest-possible
// distance at time t.
func (p *HeteroProcessor) upperMin(t float64) float64 {
	best := math.Inf(1)
	for _, f := range p.fns {
		if v := f.Value(t) + p.shift[f.ID]; v < best {
			best = v
		}
	}
	return best
}

// margin is the zone-membership function for an object: non-positive
// while the object can be the NN.
func (p *HeteroProcessor) margin(oid int64, t float64) float64 {
	f := p.byID[oid]
	return f.Value(t) - p.shift[oid] - p.upperMin(t)
}

// PossibleNNIntervals returns the maximal time intervals during which the
// object has non-zero probability of being the query's nearest neighbor
// under heterogeneous radii.
func (p *HeteroProcessor) PossibleNNIntervals(oid int64) ([]envelope.TimeInterval, error) {
	if _, ok := p.byID[oid]; !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownOID, oid)
	}
	g := func(t float64) float64 { return p.margin(oid, t) }
	const samples = 24
	var roots []float64
	for i := 1; i < len(p.cuts); i++ {
		t0, t1 := p.cuts[i-1], p.cuts[i]
		if t1-t0 <= envelope.TimeEps {
			continue
		}
		prevT, prevV := t0, g(t0)
		for s := 1; s <= samples; s++ {
			t := t0 + (t1-t0)*float64(s)/samples
			v := g(t)
			if (prevV < 0) != (v < 0) {
				if r, err := numeric.FindRoot(g, prevT, t, envelope.TimeEps); err == nil {
					roots = append(roots, r)
				}
			}
			prevT, prevV = t, v
		}
	}
	bounds := append([]float64{p.Tb, p.Te}, roots...)
	sort.Float64s(bounds)
	var out []envelope.TimeInterval
	for i := 1; i < len(bounds); i++ {
		t0, t1 := bounds[i-1], bounds[i]
		if t1-t0 <= envelope.TimeEps {
			continue
		}
		if g(0.5*(t0+t1)) <= 0 {
			if n := len(out); n > 0 && math.Abs(out[n-1].T1-t0) <= envelope.TimeEps {
				out[n-1].T1 = t1
			} else {
				out = append(out, envelope.TimeInterval{T0: t0, T1: t1})
			}
		}
	}
	return out, nil
}

// UQ11 is the heterogeneous existential query.
func (p *HeteroProcessor) UQ11(oid int64) (bool, error) {
	ivs, err := p.PossibleNNIntervals(oid)
	if err != nil {
		return false, err
	}
	return len(ivs) > 0, nil
}

// UQ12 is the heterogeneous universal query.
func (p *HeteroProcessor) UQ12(oid int64) (bool, error) {
	ivs, err := p.PossibleNNIntervals(oid)
	if err != nil {
		return false, err
	}
	return coversWindow(ivs, p.Tb, p.Te), nil
}

// UQ13 is the heterogeneous fraction-of-time query.
func (p *HeteroProcessor) UQ13(oid int64, x float64) (bool, error) {
	if x < 0 || x > 1 {
		return false, ErrBadFrac
	}
	ivs, err := p.PossibleNNIntervals(oid)
	if err != nil {
		return false, err
	}
	return envelope.TotalLength(ivs) >= x*(p.Te-p.Tb)-envelope.TimeEps, nil
}

// UQ31 retrieves all objects with a non-empty possible-NN time set.
func (p *HeteroProcessor) UQ31() ([]int64, error) {
	var out []int64
	for _, f := range p.fns {
		ivs, err := p.PossibleNNIntervals(f.ID)
		if err != nil {
			return nil, err
		}
		if len(ivs) > 0 {
			out = append(out, f.ID)
		}
	}
	sortIDs(out)
	return out, nil
}
