package queries

import (
	"math"
	"testing"

	"repro/internal/envelope"
	"repro/internal/numeric"
	"repro/internal/trajectory"
	"repro/internal/workload"
)

// --- threshold queries (Section 7 future work) ---

func TestProbabilitySeries(t *testing.T) {
	p := newProc(t)
	ts, probs, err := p.ProbabilitySeries(1, ThresholdConfig{TimeSamples: 9, Grid: 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 9 || len(probs) != 9 {
		t.Fatalf("lengths %d/%d", len(ts), len(probs))
	}
	for i, v := range probs {
		if v < 0 || v > 1 {
			t.Errorf("prob[%d] = %g", i, v)
		}
	}
	// oid 1 (always nearest, distance 2 vs 3.5) should dominate: high
	// probability away from oid 4's flyby, dipping as oid 4 passes.
	if probs[0] < 0.5 {
		t.Errorf("start prob = %g, want > 0.5", probs[0])
	}
	mid := probs[4] // t = 30: oid 4 at distance 3
	if mid >= probs[0] {
		t.Errorf("flyby should reduce oid 1's probability: %g vs %g", mid, probs[0])
	}
	// Unknown oid.
	if _, _, err := p.ProbabilitySeries(777, ThresholdConfig{}); err == nil {
		t.Error("unknown oid accepted")
	}
	// Pruned object: identically zero.
	_, zero, err := p.ProbabilitySeries(3, ThresholdConfig{TimeSamples: 5, Grid: 128})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range zero {
		if v != 0 {
			t.Errorf("pruned object prob = %g", v)
		}
	}
}

func TestThresholdNN(t *testing.T) {
	p := newProc(t)
	cfg := ThresholdConfig{TimeSamples: 33, Grid: 256}
	// oid 1 holds a high NN probability most of the hour.
	ok, err := p.ThresholdNN(1, 0.5, 0.6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("oid 1 should be >= 50% probable >= 60% of the time")
	}
	// Nothing holds probability ~1 all the time through the flyby (oid 1's
	// P^NN dips to ≈ 0.978 as oid 4 passes at t = 30).
	ok, err = p.ThresholdNN(1, 0.99, 1.0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("oid 1 should not hold 99% probability through the flyby")
	}
	// Pruned object fails any positive threshold.
	ok, err = p.ThresholdNN(3, 0.01, 0.01, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("pruned object passed a threshold")
	}
	// Bad args.
	if _, err := p.ThresholdNN(1, -0.1, 0.5, cfg); err != ErrBadFrac {
		t.Errorf("bad threshold: %v", err)
	}
	if _, err := p.ThresholdNN(1, 0.5, 1.5, cfg); err != ErrBadFrac {
		t.Errorf("bad frac: %v", err)
	}
}

func TestAboveThresholdIntervals(t *testing.T) {
	p := newProc(t)
	cfg := ThresholdConfig{TimeSamples: 65, Grid: 256}
	ivs, err := p.AboveThresholdIntervals(1, 0.6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) == 0 {
		t.Fatal("expected nonempty intervals")
	}
	// Intervals sorted, disjoint, inside the window.
	prev := p.Tb - 1
	for _, iv := range ivs {
		if iv.T0 < prev || iv.T1 <= iv.T0 || iv.T1 > p.Te+1e-9 {
			t.Fatalf("bad interval %+v", iv)
		}
		prev = iv.T1
	}
	// The flyby dip (around t=30) should be excluded at a high threshold:
	// use the paper's example numbers, 65%.
	ivs65, err := p.AboveThresholdIntervals(1, 0.65, cfg)
	if err != nil {
		t.Fatal(err)
	}
	within := func(ivs []envelope.TimeInterval, tm float64) bool {
		for _, iv := range ivs {
			if tm >= iv.T0 && tm <= iv.T1 {
				return true
			}
		}
		return false
	}
	if within(ivs65, 30) {
		// Verify directly that the probability at 30 is indeed below 0.65
		// before failing (geometry sanity).
		_, probs, _ := p.ProbabilitySeries(1, ThresholdConfig{TimeSamples: 61, Grid: 256})
		if probs[30] < 0.65 {
			t.Error("t=30 included despite sub-threshold probability")
		}
	}
	// ThresholdNNAll consistency: every returned oid passes ThresholdNN.
	ids, err := p.ThresholdNNAll(0.3, 0.2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		ok, err := p.ThresholdNN(id, 0.3, 0.2, cfg)
		if err != nil || !ok {
			t.Errorf("ThresholdNNAll returned %d which fails ThresholdNN (%v)", id, err)
		}
	}
}

func TestMaxProbability(t *testing.T) {
	p := newProc(t)
	tAt, prob, err := p.MaxProbability(1, ThresholdConfig{TimeSamples: 17, Grid: 256})
	if err != nil {
		t.Fatal(err)
	}
	if prob <= 0.5 || prob > 1 {
		t.Errorf("max prob = %g", prob)
	}
	if tAt < p.Tb || tAt > p.Te {
		t.Errorf("argmax = %g", tAt)
	}
}

// --- all-pairs and reverse NN (Section 7 future work) ---

func TestAllPairsPossibleNN(t *testing.T) {
	trs, err := workload.Generate(workload.DefaultConfig(21), 20)
	if err != nil {
		t.Fatal(err)
	}
	all, err := AllPairsPossibleNN(trs, 0, 60, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 20 {
		t.Fatalf("entries = %d", len(all))
	}
	for qOID, ids := range all {
		// Never contains the query itself; matches a fresh processor.
		for _, id := range ids {
			if id == qOID {
				t.Fatalf("query %d contains itself", qOID)
			}
		}
		var q *trajectory.Trajectory
		for _, tr := range trs {
			if tr.OID == qOID {
				q = tr
			}
		}
		p, err := NewProcessor(trs, q, 0, 60, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		want := p.UQ31()
		if len(ids) != len(want) {
			t.Fatalf("query %d: %v vs %v", qOID, ids, want)
		}
		for i := range want {
			if ids[i] != want[i] {
				t.Fatalf("query %d: divergence at %d", qOID, i)
			}
		}
	}
}

func TestReversePossibleNN(t *testing.T) {
	trs, err := workload.Generate(workload.DefaultConfig(22), 15)
	if err != nil {
		t.Fatal(err)
	}
	target := trs[3]
	rev, err := ReversePossibleNN(trs, target, 0, 60, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check against AllPairs: q is a reverse witness iff target is
	// in q's possible set.
	all, err := AllPairsPossibleNN(trs, 0, 60, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	wantSet := map[int64]bool{}
	for qOID, ids := range all {
		if qOID == target.OID {
			continue
		}
		for _, id := range ids {
			if id == target.OID {
				wantSet[qOID] = true
			}
		}
	}
	if len(rev) != len(wantSet) {
		t.Fatalf("reverse = %v, want set %v", rev, wantSet)
	}
	for _, id := range rev {
		if !wantSet[id] {
			t.Fatalf("unexpected reverse witness %d", id)
		}
	}
	// Intervals variant: nonempty interval lists for exactly the witnesses.
	ivs, err := ReversePossibleNNIntervals(trs, target, 0, 60, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != len(rev) {
		t.Fatalf("interval map size %d vs %d", len(ivs), len(rev))
	}
	for id, list := range ivs {
		if len(list) == 0 {
			t.Fatalf("witness %d has empty intervals", id)
		}
	}
}

func TestMutualPossibleNNPairs(t *testing.T) {
	trs, err := workload.Generate(workload.DefaultConfig(23), 12)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := MutualPossibleNNPairs(trs, 0, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	all, err := AllPairsPossibleNN(trs, 0, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	inSet := func(ids []int64, want int64) bool {
		for _, id := range ids {
			if id == want {
				return true
			}
		}
		return false
	}
	for _, pr := range pairs {
		a, b := pr[0], pr[1]
		if a >= b {
			t.Fatalf("pair not ordered: %v", pr)
		}
		if !inSet(all[a], b) || !inSet(all[b], a) {
			t.Fatalf("pair %v not mutual", pr)
		}
	}
	// Completeness: every mutual relation appears.
	count := 0
	for aOID, ids := range all {
		for _, b := range ids {
			if aOID < b && inSet(all[b], aOID) {
				count++
			}
		}
	}
	if count != len(pairs) {
		t.Fatalf("pairs = %d, want %d", len(pairs), count)
	}
}

// --- heterogeneous radii (Section 7 future work) ---

// TestHeteroMatchesHomogeneous: with all radii equal to r, the hetero
// processor's intervals equal the homogeneous 4r-zone intervals.
func TestHeteroMatchesHomogeneous(t *testing.T) {
	trs, err := workload.Generate(workload.DefaultConfig(31), 25)
	if err != nil {
		t.Fatal(err)
	}
	q := trs[0]
	const r = 0.5
	radii := map[int64]float64{}
	for _, tr := range trs {
		radii[tr.OID] = r
	}
	hp, err := NewHeteroProcessor(trs, q, 0, 60, radii)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProcessor(trs, q, 0, 60, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trs[1:] {
		want, err := p.PossibleNNIntervals(tr.OID)
		if err != nil {
			t.Fatal(err)
		}
		got, err := hp.PossibleNNIntervals(tr.OID)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("oid %d: %v vs %v", tr.OID, got, want)
		}
		for i := range want {
			if math.Abs(got[i].T0-want[i].T0) > 1e-5 || math.Abs(got[i].T1-want[i].T1) > 1e-5 {
				t.Fatalf("oid %d interval %d: %+v vs %+v", tr.OID, i, got[i], want[i])
			}
		}
	}
	// UQ31 agreement.
	gotIDs, err := hp.UQ31()
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := p.UQ31()
	if len(gotIDs) != len(wantIDs) {
		t.Fatalf("UQ31: %v vs %v", gotIDs, wantIDs)
	}
}

// TestHeteroRadiiSemantics: a larger radius widens an object's possible
// window; an object with a huge radius is always possible.
func TestHeteroRadiiSemantics(t *testing.T) {
	trs, q := staticScene(t)
	radii := map[int64]float64{100: 0.5, 1: 0.5, 2: 0.5, 3: 0.5, 4: 0.5}
	hp, err := NewHeteroProcessor(trs, q, 0, 60, radii)
	if err != nil {
		t.Fatal(err)
	}
	base, err := hp.PossibleNNIntervals(4)
	if err != nil {
		t.Fatal(err)
	}
	// Grow oid 4's radius: its window must grow.
	radii[4] = 1.5
	hp2, err := NewHeteroProcessor(trs, q, 0, 60, radii)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := hp2.PossibleNNIntervals(4)
	if err != nil {
		t.Fatal(err)
	}
	if envelope.TotalLength(grown) <= envelope.TotalLength(base) {
		t.Errorf("larger radius should widen window: %g vs %g",
			envelope.TotalLength(grown), envelope.TotalLength(base))
	}
	// Enormous radius for the far object: always possible.
	radii[3] = 10
	hp3, err := NewHeteroProcessor(trs, q, 0, 60, radii)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := hp3.UQ12(3); !ok {
		t.Error("object with huge radius should always be possible")
	}
	// UQ13 variants on hetero.
	if ok, _ := hp3.UQ13(3, 0.9); !ok {
		t.Error("UQ13 should hold for huge radius")
	}
	if _, err := hp3.UQ13(3, 2); err != ErrBadFrac {
		t.Errorf("bad frac: %v", err)
	}
}

func TestHeteroErrors(t *testing.T) {
	trs, q := staticScene(t)
	// Missing query radius.
	if _, err := NewHeteroProcessor(trs, q, 0, 60, map[int64]float64{1: 0.5}); err == nil {
		t.Error("missing query radius accepted")
	}
	// Missing object radius.
	radii := map[int64]float64{100: 0.5, 1: 0.5}
	if _, err := NewHeteroProcessor(trs, q, 0, 60, radii); err == nil {
		t.Error("missing object radius accepted")
	}
	// Nonpositive radius.
	radii = map[int64]float64{100: 0.5, 1: 0, 2: 0.5, 3: 0.5, 4: 0.5}
	if _, err := NewHeteroProcessor(trs, q, 0, 60, radii); err == nil {
		t.Error("zero radius accepted")
	}
	// Unknown oid query.
	full := map[int64]float64{100: 0.5, 1: 0.5, 2: 0.5, 3: 0.5, 4: 0.5}
	hp, err := NewHeteroProcessor(trs, q, 0, 60, full)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hp.PossibleNNIntervals(777); err == nil {
		t.Error("unknown oid accepted")
	}
	if _, err := hp.UQ11(777); err == nil {
		t.Error("unknown oid in UQ11 accepted")
	}
}

// TestHeteroAgainstSampling: membership intervals agree with dense
// sampling of the defining inequality.
func TestHeteroAgainstSampling(t *testing.T) {
	trs, err := workload.Generate(workload.DefaultConfig(41), 15)
	if err != nil {
		t.Fatal(err)
	}
	q := trs[0]
	radii := map[int64]float64{}
	for i, tr := range trs {
		radii[tr.OID] = 0.2 + 0.1*float64(i%5)
	}
	hp, err := NewHeteroProcessor(trs, q, 0, 60, radii)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trs[1:6] {
		ivs, err := hp.PossibleNNIntervals(tr.OID)
		if err != nil {
			t.Fatal(err)
		}
		inside := func(tm float64) bool {
			for _, iv := range ivs {
				if tm >= iv.T0-1e-6 && tm <= iv.T1+1e-6 {
					return true
				}
			}
			return false
		}
		for _, tm := range numeric.Linspace(0.01, 59.99, 401) {
			m := hp.margin(tr.OID, tm)
			if (m <= 0) != inside(tm) && math.Abs(m) > 1e-4 {
				t.Fatalf("oid %d t=%g: margin %g vs interval %v", tr.OID, tm, m, inside(tm))
			}
		}
	}
}
