package queries

import (
	"repro/internal/envelope"
	"repro/internal/trajectory"
)

// NaiveProcessor answers the same queries as Processor without the
// divide-and-conquer envelope preprocessing: every call rebuilds the
// envelope with the O(N² log N) all-pairwise-intersections sweep the
// paper's Figure 12 baseline uses ("the naive approach, which checks all
// pairwise intersection times of the distance functions"). It exists to
// reproduce that comparison; production code should use Processor.
type NaiveProcessor struct {
	QueryOID int64
	Tb, Te   float64
	R        float64

	fns  []*envelope.DistanceFunc
	byID map[int64]*envelope.DistanceFunc
}

// NewNaiveProcessor prepares the distance functions (but, unlike
// NewProcessor, performs no envelope preprocessing).
func NewNaiveProcessor(trs []*trajectory.Trajectory, q *trajectory.Trajectory, tb, te, r float64) (*NaiveProcessor, error) {
	fns, err := envelope.BuildDistanceFuncs(trs, q, tb, te)
	if err != nil {
		return nil, err
	}
	if len(fns) == 0 {
		return nil, envelope.ErrNoFunctions
	}
	byID := make(map[int64]*envelope.DistanceFunc, len(fns))
	for _, f := range fns {
		byID[f.ID] = f
	}
	return &NaiveProcessor{QueryOID: q.OID, Tb: tb, Te: te, R: r, fns: fns, byID: byID}, nil
}

// naiveIntervals recomputes the envelope naively and intersects the zone.
func (p *NaiveProcessor) naiveIntervals(oid int64) ([]envelope.TimeInterval, error) {
	f, ok := p.byID[oid]
	if !ok {
		return nil, ErrUnknownOID
	}
	env, err := envelope.NaiveLowerEnvelope(p.fns, p.Tb, p.Te)
	if err != nil {
		return nil, err
	}
	return envelope.BelowIntervals(f, env, 4*p.R), nil
}

// UQ11 is the naive existential query (Figure 12's "Naive Approach,
// Existential").
func (p *NaiveProcessor) UQ11(oid int64) (bool, error) {
	ivs, err := p.naiveIntervals(oid)
	if err != nil {
		return false, err
	}
	return len(ivs) > 0, nil
}

// UQ13 is the naive quantitative query (Figure 12's "Naive Approach,
// Quantitative").
func (p *NaiveProcessor) UQ13(oid int64, x float64) (bool, error) {
	if x < 0 || x > 1 {
		return false, ErrBadFrac
	}
	ivs, err := p.naiveIntervals(oid)
	if err != nil {
		return false, err
	}
	return envelope.TotalLength(ivs) >= x*(p.Te-p.Tb)-envelope.TimeEps, nil
}

// UQ12 is the naive universal query.
func (p *NaiveProcessor) UQ12(oid int64) (bool, error) {
	ivs, err := p.naiveIntervals(oid)
	if err != nil {
		return false, err
	}
	return coversWindow(ivs, p.Tb, p.Te), nil
}
