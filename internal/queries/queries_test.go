package queries

import (
	"errors"
	"math"
	"testing"

	"repro/internal/envelope"
	"repro/internal/numeric"
	"repro/internal/trajectory"
	"repro/internal/workload"
)

func still(t *testing.T, oid int64, x, y float64) *trajectory.Trajectory {
	t.Helper()
	tr, err := trajectory.New(oid, []trajectory.Vertex{
		{X: x, Y: y, T: 0}, {X: x, Y: y, T: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func mover(t *testing.T, oid int64, x0, y0, x1, y1 float64) *trajectory.Trajectory {
	t.Helper()
	tr, err := trajectory.New(oid, []trajectory.Vertex{
		{X: x0, Y: y0, T: 0}, {X: x1, Y: y1, T: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// staticScene: query at origin, r = 0.5 (zone width 2).
//
//	oid 1: d = 2   (level 1, always possible)
//	oid 2: d = 3.5 (within zone always: gap 1.5)
//	oid 3: d = 9   (never possible: gap 7)
//	oid 4: sweeps past at closest distance 3 at t=30 (inside the zone only
//	       around the middle of the window)
func staticScene(t *testing.T) ([]*trajectory.Trajectory, *trajectory.Trajectory) {
	t.Helper()
	q := still(t, 100, 0, 0)
	return []*trajectory.Trajectory{
		q,
		still(t, 1, 2, 0),
		still(t, 2, 3.5, 0),
		still(t, 3, 9, 0),
		mover(t, 4, 10, 3, -10, 3),
	}, q
}

func newProc(t *testing.T) *Processor {
	t.Helper()
	trs, q := staticScene(t)
	p, err := NewProcessor(trs, q, 0, 60, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewProcessorErrors(t *testing.T) {
	trs, q := staticScene(t)
	if _, err := NewProcessor(trs, q, 0, 60, 0); err == nil {
		t.Error("zero radius accepted")
	}
	if _, err := NewProcessor([]*trajectory.Trajectory{q}, q, 0, 60, 0.5); err == nil {
		t.Error("no functions accepted")
	}
	if _, err := NewProcessor(trs, q, 30, 30, 0.5); err == nil {
		t.Error("empty window accepted")
	}
}

func TestCategory1(t *testing.T) {
	p := newProc(t)
	cases := []struct {
		oid        int64
		uq11, uq12 bool
		uq13half   bool
	}{
		{1, true, true, true},
		{2, true, true, true},
		{3, false, false, false},
		{4, true, false, false}, // possible only in a window around t=30
	}
	for _, c := range cases {
		if got, err := p.UQ11(c.oid); err != nil || got != c.uq11 {
			t.Errorf("UQ11(%d) = %v, %v; want %v", c.oid, got, err, c.uq11)
		}
		if got, err := p.UQ12(c.oid); err != nil || got != c.uq12 {
			t.Errorf("UQ12(%d) = %v, %v; want %v", c.oid, got, err, c.uq12)
		}
		if got, err := p.UQ13(c.oid, 0.5); err != nil || got != c.uq13half {
			t.Errorf("UQ13(%d, 0.5) = %v, %v; want %v", c.oid, got, err, c.uq13half)
		}
	}
	// oid 4: distance |10 − t/3| (x-offset) combined with y=5 … the zone
	// test uses the envelope (oid 1 at distance 2): possible while
	// d4(t) <= 4. Verify UQ13 with the exact measurable fraction.
	ivs, err := p.PossibleNNIntervals(4)
	if err != nil {
		t.Fatal(err)
	}
	frac := envelope.TotalLength(ivs) / 60
	if frac <= 0 || frac >= 1 {
		t.Fatalf("oid 4 fraction = %g", frac)
	}
	if got, _ := p.UQ13(4, frac-0.01); !got {
		t.Error("UQ13 just below actual fraction should hold")
	}
	if got, _ := p.UQ13(4, frac+0.01); got {
		t.Error("UQ13 just above actual fraction should fail")
	}
	// Errors.
	if _, err := p.UQ11(777); !errors.Is(err, ErrUnknownOID) {
		t.Errorf("unknown oid: %v", err)
	}
	if _, err := p.UQ13(1, 1.5); !errors.Is(err, ErrBadFrac) {
		t.Errorf("bad frac: %v", err)
	}
	if _, err := p.UQ13(1, -0.1); !errors.Is(err, ErrBadFrac) {
		t.Errorf("neg frac: %v", err)
	}
}

func TestCategory2(t *testing.T) {
	p := newProc(t)
	// oid 3 (d=9) cannot be rank-1 or rank-2... level-2 envelope is oid 2
	// at 3.5 most of the time, zone top 5.5 < 9; level 3 is oid 4's swing
	// or oid 3 — at level 3 the envelope rises enough near t=30.
	if got, _ := p.UQ21(3, 1); got {
		t.Error("oid 3 cannot be rank 1")
	}
	if got, _ := p.UQ21(3, 2); got {
		t.Error("oid 3 cannot be rank <= 2")
	}
	if got, _ := p.UQ21(3, 3); !got {
		t.Error("oid 3 should be possible at rank 3 (level-3 envelope includes d=9 segments)")
	}
	if got, _ := p.UQ22(1, 1); !got {
		t.Error("oid 1 is always possible at rank 1")
	}
	if got, _ := p.UQ22(4, 1); got {
		t.Error("oid 4 is not always possible at rank 1")
	}
	if got, _ := p.UQ23(2, 2, 0.9); !got {
		t.Error("oid 2 should be rank<=2-possible >= 90% of time")
	}
	// Errors.
	if _, err := p.UQ21(1, 0); !errors.Is(err, ErrBadRank) {
		t.Errorf("bad rank: %v", err)
	}
	if _, err := p.UQ23(1, 1, 2); !errors.Is(err, ErrBadFrac) {
		t.Errorf("bad frac: %v", err)
	}
	if _, err := p.UQ21(777, 1); err == nil {
		t.Error("unknown oid accepted")
	}
}

func TestCategory3(t *testing.T) {
	p := newProc(t)
	if got := p.UQ31(); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 4 {
		t.Errorf("UQ31 = %v", got)
	}
	if got := p.UQ32(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("UQ32 = %v", got)
	}
	got, err := p.UQ33(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("UQ33(0.9) = %v", got)
	}
	if _, err := p.UQ33(-1); !errors.Is(err, ErrBadFrac) {
		t.Errorf("bad frac: %v", err)
	}
}

func TestCategory4(t *testing.T) {
	p := newProc(t)
	got, err := p.UQ41(2)
	if err != nil {
		t.Fatal(err)
	}
	// At rank <= 2, oids 1, 2 and 4 qualify somewhere; oid 3 does not.
	want := []int64{1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("UQ41(2) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("UQ41(2) = %v", got)
		}
	}
	// Rank 4: everything qualifies somewhere.
	got, err = p.UQ41(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Errorf("UQ41(4) = %v", got)
	}
	g2, err := p.UQ42(2)
	if err != nil {
		t.Fatal(err)
	}
	// oids 1 and 2 are within the rank-2 zone all the time.
	if len(g2) != 2 || g2[0] != 1 || g2[1] != 2 {
		t.Errorf("UQ42(2) = %v", g2)
	}
	g3, err := p.UQ43(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(g3) < 2 {
		t.Errorf("UQ43(2, 0.5) = %v", g3)
	}
	if _, err := p.UQ41(0); !errors.Is(err, ErrBadRank) {
		t.Errorf("bad rank: %v", err)
	}
	if _, err := p.UQ43(1, 9); !errors.Is(err, ErrBadFrac) {
		t.Errorf("bad frac: %v", err)
	}
}

func TestFixedTime(t *testing.T) {
	p := newProc(t)
	// At t=30, oid 4 is at (0, 3) → d=3; envelope = 2 (oid 1); zone top 4.
	// The instant set: oids 1 (d=2), 2 (d=3.5), 4 (d=3) qualify; 3 (d=9)
	// does not.
	got := p.PossibleNNAt(30)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 4 {
		t.Errorf("PossibleNNAt(30) = %v", got)
	}
	if ok, _ := p.IsPossibleNNAt(1, 30); !ok {
		t.Error("oid 1 should be possible at 30")
	}
	if ok, _ := p.IsPossibleNNAt(4, 30); !ok {
		t.Error("oid 4 at d=3 should be possible at 30")
	}
	if ok, _ := p.IsPossibleNNAt(3, 30); ok {
		t.Error("oid 3 at d=9 should not be possible at 30")
	}
	if ok, _ := p.IsPossibleNNAt(4, 1); ok {
		t.Error("oid 4 far away at t=1 should not be possible")
	}
	if _, err := p.IsPossibleNNAt(777, 30); err == nil {
		t.Error("unknown oid accepted")
	}
}

// TestOid4Consistency cross-checks oid 4's zone membership against its
// sampled minimal distance: membership intervals must be nonempty exactly
// when the function dips below the zone top (envelope 2 + width 2 = 4).
func TestOid4Consistency(t *testing.T) {
	p := newProc(t)
	ivs, err := p.PossibleNNIntervals(4)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := p.fn(4)
	minD := math.Inf(1)
	for _, tm := range numeric.Linspace(0, 60, 601) {
		if v := f.Value(tm); v < minD {
			minD = v
		}
	}
	if minD < 4 && len(ivs) == 0 {
		t.Errorf("min distance %g < 4 but no intervals", minD)
	}
	if minD > 4 && len(ivs) > 0 {
		t.Errorf("min distance %g > 4 but intervals %v", minD, ivs)
	}
}

// TestProcessorVsNaive: the envelope-based and naive processors agree on
// random workloads for UQ11/UQ12/UQ13.
func TestProcessorVsNaive(t *testing.T) {
	trs, err := workload.Generate(workload.DefaultConfig(77), 40)
	if err != nil {
		t.Fatal(err)
	}
	q := trs[0]
	p, err := NewProcessor(trs, q, 0, 60, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	np, err := NewNaiveProcessor(trs, q, 0, 60, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trs[1:] {
		oid := tr.OID
		a1, err := p.UQ11(oid)
		if err != nil {
			t.Fatal(err)
		}
		b1, err := np.UQ11(oid)
		if err != nil {
			t.Fatal(err)
		}
		if a1 != b1 {
			t.Errorf("UQ11(%d): %v vs naive %v", oid, a1, b1)
		}
		a2, _ := p.UQ12(oid)
		b2, _ := np.UQ12(oid)
		if a2 != b2 {
			t.Errorf("UQ12(%d): %v vs naive %v", oid, a2, b2)
		}
		a3, _ := p.UQ13(oid, 0.5)
		b3, _ := np.UQ13(oid, 0.5)
		if a3 != b3 {
			t.Errorf("UQ13(%d): %v vs naive %v", oid, a3, b3)
		}
	}
	if _, err := np.UQ11(999); !errors.Is(err, ErrUnknownOID) {
		t.Errorf("naive unknown oid: %v", err)
	}
	if _, err := np.UQ13(trs[1].OID, 7); !errors.Is(err, ErrBadFrac) {
		t.Errorf("naive bad frac: %v", err)
	}
}

// TestFixedTimeMatchesSampledZone: fixed-time membership at tf equals the
// continuous intervals' membership at tf.
func TestFixedTimeMatchesSampledZone(t *testing.T) {
	trs, err := workload.Generate(workload.DefaultConfig(5), 30)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProcessor(trs, trs[0], 0, 60, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, tf := range []float64{3.7, 21, 44.4} {
		ids := p.PossibleNNAt(tf)
		inSet := map[int64]bool{}
		for _, id := range ids {
			inSet[id] = true
		}
		for _, tr := range trs[1:] {
			ivs, err := p.PossibleNNIntervals(tr.OID)
			if err != nil {
				t.Fatal(err)
			}
			inIv := false
			for _, iv := range ivs {
				if tf >= iv.T0-1e-6 && tf <= iv.T1+1e-6 {
					inIv = true
				}
			}
			if inIv != inSet[tr.OID] {
				// Tolerate boundary-hair disagreements.
				f, _ := p.fn(tr.OID)
				margin := math.Abs(f.Value(tf) - p.Envelope().ValueAt(tf) - 2)
				if margin > 1e-4 {
					t.Errorf("oid %d tf=%g: interval=%v fixed=%v", tr.OID, tf, inIv, inSet[tr.OID])
				}
			}
		}
	}
}

// TestUQ31SubsetRelations: UQ32 ⊆ UQ33(x) ⊆ UQ31 for any x; UQ41(k)
// grows with k.
func TestSubsetRelations(t *testing.T) {
	trs, err := workload.Generate(workload.DefaultConfig(13), 50)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProcessor(trs, trs[0], 0, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	s31 := toSet(p.UQ31())
	s32 := toSet(p.UQ32())
	s33, err := p.UQ33(0.3)
	if err != nil {
		t.Fatal(err)
	}
	for id := range s32 {
		if !s31[id] {
			t.Errorf("UQ32 member %d not in UQ31", id)
		}
	}
	for _, id := range s33 {
		if !s31[id] {
			t.Errorf("UQ33 member %d not in UQ31", id)
		}
	}
	prev := 0
	for k := 1; k <= 4; k++ {
		ids, err := p.UQ41(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) < prev {
			t.Errorf("UQ41(%d) shrank: %d < %d", k, len(ids), prev)
		}
		prev = len(ids)
	}
}

func toSet(ids []int64) map[int64]bool {
	m := map[int64]bool{}
	for _, id := range ids {
		m[id] = true
	}
	return m
}
