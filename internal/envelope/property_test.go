package envelope

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/numeric"
)

// buildTable builds the ID→function map the merge primitives need.
func buildTable(fns []*DistanceFunc) map[int64]*DistanceFunc {
	t := make(map[int64]*DistanceFunc, len(fns))
	for _, f := range fns {
		t[f.ID] = f
	}
	return t
}

// fullInterval wraps one function as a single-interval envelope.
func fullInterval(f *DistanceFunc, tb, te float64) []Interval {
	return []Interval{{ID: f.ID, T0: tb, T1: te}}
}

// envEqual compares two envelopes structurally within tolerance.
func envEqual(a, b []Interval, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID ||
			math.Abs(a[i].T0-b[i].T0) > tol || math.Abs(a[i].T1-b[i].T1) > tol {
			return false
		}
	}
	return true
}

// TestMergeLECommutative: Merge_LE(a, b) == Merge_LE(b, a) for random
// function subsets.
func TestMergeLECommutative(t *testing.T) {
	fns := buildRandomFuncs(t, 101, 24, true)
	table := buildTable(fns)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		na := 1 + rng.Intn(10)
		nb := 1 + rng.Intn(10)
		idx := rng.Perm(len(fns))
		subA := make([]*DistanceFunc, na)
		for i := range subA {
			subA[i] = fns[idx[i]]
		}
		subB := make([]*DistanceFunc, nb)
		for i := range subB {
			subB[i] = fns[idx[(na+i)%len(fns)]]
		}
		envA := leAlg(subA, 0, 60, table)
		envB := leAlg(subB, 0, 60, table)
		ab := MergeLE(envA, envB, table)
		ba := MergeLE(envB, envA, table)
		return envEqual(ab, ba, 1e-7)
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(55))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestMergeLEAssociativeEffect: merging in any grouping yields the same
// envelope as the global divide-and-conquer construction (the correctness
// core of Algorithm 1's arbitrary split points).
func TestMergeLEAssociativeEffect(t *testing.T) {
	fns := buildRandomFuncs(t, 103, 15, true)
	table := buildTable(fns)
	global := leAlg(fns, 0, 60, table)

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random binary merge order: fold the singletons in a random
		// permutation with random pairing.
		parts := make([][]Interval, len(fns))
		for i, fn := range fns {
			parts[i] = fullInterval(fn, 0, 60)
		}
		rng.Shuffle(len(parts), func(a, b int) { parts[a], parts[b] = parts[b], parts[a] })
		for len(parts) > 1 {
			i := rng.Intn(len(parts) - 1)
			merged := MergeLE(parts[i], parts[i+1], table)
			parts = append(parts[:i], append([][]Interval{merged}, parts[i+2:]...)...)
		}
		return envEqual(parts[0], global, 1e-7)
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(77))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestMergeLEIdempotent: merging an envelope with itself is the identity.
func TestMergeLEIdempotent(t *testing.T) {
	fns := buildRandomFuncs(t, 107, 12, false)
	table := buildTable(fns)
	env := leAlg(fns, 0, 60, table)
	again := MergeLE(env, env, table)
	if !envEqual(env, again, 1e-9) {
		t.Fatalf("self-merge changed the envelope:\n%v\n%v", env, again)
	}
}

// TestEnvelopeLowerBoundProperty: the envelope is a pointwise lower bound
// of every input function and coincides with at least one of them.
func TestEnvelopeLowerBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 2 + int(seed%17+17)%17
		fns := buildRandomFuncs(t, seed, n, true)
		env, err := LowerEnvelope(fns, 0, 60)
		if err != nil {
			return false
		}
		for _, tm := range numeric.Linspace(0.01, 59.99, 97) {
			v := env.ValueAt(tm)
			hit := false
			for _, fn := range fns {
				fv := fn.Value(tm)
				if fv < v-1e-6 {
					return false // envelope above some function
				}
				if math.Abs(fv-v) <= 1e-6 {
					hit = true
				}
			}
			if !hit {
				return false // envelope tracks nobody
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(91))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
