package envelope

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/numeric"
	"repro/internal/trajectory"
	"repro/internal/workload"
)

// lineTr builds a single-segment trajectory from (x0, y0) at t=0 to
// (x1, y1) at t=60.
func lineTr(t *testing.T, oid int64, x0, y0, x1, y1 float64) *trajectory.Trajectory {
	t.Helper()
	tr, err := trajectory.New(oid, []trajectory.Vertex{
		{X: x0, Y: y0, T: 0}, {X: x1, Y: y1, T: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// stillTr is a stationary "trajectory" (tiny drift keeps validation happy
// with distinct endpoints; the drift is zero here — same point twice is
// fine since only times must increase).
func stillTr(t *testing.T, oid int64, x, y float64) *trajectory.Trajectory {
	t.Helper()
	tr, err := trajectory.New(oid, []trajectory.Vertex{
		{X: x, Y: y, T: 0}, {X: x, Y: y, T: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewDistanceFuncErrors(t *testing.T) {
	q := stillTr(t, 100, 0, 0)
	a := lineTr(t, 1, 0, 0, 10, 0)
	if _, err := NewDistanceFunc(1, a, q, 5, 5); !errors.Is(err, ErrEmptyWindow) {
		t.Errorf("empty window: %v", err)
	}
	if _, err := NewDistanceFunc(1, a, q, -5, 60); !errors.Is(err, ErrBadWindow) {
		t.Errorf("window before span: %v", err)
	}
	if _, err := NewDistanceFunc(1, a, q, 0, 70); !errors.Is(err, ErrBadWindow) {
		t.Errorf("window after span: %v", err)
	}
}

func TestDistanceFuncValues(t *testing.T) {
	// Object moves from (10, 0) to (-10, 0); query stays at origin.
	// Distance is |10 − (t/3)| i.e. linear to 0 at t=30 then back out.
	q := stillTr(t, 100, 0, 0)
	a := lineTr(t, 1, 10, 0, -10, 0)
	f, err := NewDistanceFunc(1, a, q, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ tm, want float64 }{
		{0, 10}, {15, 5}, {30, 0}, {45, 5}, {60, 10},
	}
	for _, c := range cases {
		// Near a true zero of the distance, sqrt amplifies the quadratic's
		// float cancellation (~1e-14) to ~1e-7; tolerate 1e-6.
		if got := f.Value(c.tm); math.Abs(got-c.want) > 1e-6 {
			t.Errorf("Value(%g) = %g, want %g", c.tm, got, c.want)
		}
	}
	tm, v := f.GlobalMinimum()
	if math.Abs(tm-30) > 1e-6 || v > 1e-6 {
		t.Errorf("GlobalMinimum = (%g, %g)", tm, v)
	}
	if t0, t1 := f.Span(); t0 != 0 || t1 != 60 {
		t.Errorf("Span = %g, %g", t0, t1)
	}
}

func TestDistanceFuncAgainstDirectComputation(t *testing.T) {
	// Randomized multi-segment cross-check: f.Value(t) must equal the
	// distance of the interpolated positions for any t.
	rng := rand.New(rand.NewSource(12))
	trs, err := workload.Generate(workload.DefaultConfig(12), 30)
	if err != nil {
		t.Fatal(err)
	}
	q := trs[0]
	for _, tr := range trs[1:] {
		f, err := NewDistanceFunc(tr.OID, tr, q, 0, 60)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 50; k++ {
			tm := rng.Float64() * 60
			want := tr.At(tm).Dist(q.At(tm))
			if got := f.Value(tm); math.Abs(got-want) > 1e-9 {
				t.Fatalf("oid %d t=%g: %g vs %g", tr.OID, tm, got, want)
			}
		}
		if len(f.Pieces) != 11 { // 6 segments each → up to 5+5 interior cuts + ends
			// Piece count depends on vertex alignment; synchronous changes
			// collapse to 6 pieces. Just sanity-bound it.
			if len(f.Pieces) < 6 || len(f.Pieces) > 12 {
				t.Fatalf("oid %d: %d pieces", tr.OID, len(f.Pieces))
			}
		}
	}
}

func TestIntersections(t *testing.T) {
	q := stillTr(t, 100, 0, 0)
	// f: starts at 10, reaches 0 at t=30 (distance V-shape).
	f, err := NewDistanceFunc(1, lineTr(t, 1, 10, 0, -10, 0), q, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	// g: constant distance 5.
	g, err := NewDistanceFunc(2, stillTr(t, 2, 5, 0), q, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	ts := Intersections(f, g, 0, 60)
	if len(ts) != 2 || math.Abs(ts[0]-15) > 1e-9 || math.Abs(ts[1]-45) > 1e-9 {
		t.Fatalf("Intersections = %v, want [15, 45]", ts)
	}
	// Identical functions: no critical points.
	if ts := Intersections(f, f, 0, 60); len(ts) != 0 {
		t.Errorf("self intersections = %v", ts)
	}
	// Restricted window.
	ts = Intersections(f, g, 20, 60)
	if len(ts) != 1 || math.Abs(ts[0]-45) > 1e-9 {
		t.Errorf("windowed = %v", ts)
	}
}

func TestEnv2(t *testing.T) {
	q := stillTr(t, 100, 0, 0)
	f, _ := NewDistanceFunc(1, lineTr(t, 1, 10, 0, -10, 0), q, 0, 60)
	g, _ := NewDistanceFunc(2, stillTr(t, 2, 5, 0), q, 0, 60)
	ivs := Env2(f, g, 0, 60)
	// g wins on [0,15], f on [15,45], g on [45,60].
	want := []Interval{{2, 0, 15}, {1, 15, 45}, {2, 45, 60}}
	if len(ivs) != len(want) {
		t.Fatalf("Env2 = %v", ivs)
	}
	for i := range want {
		if ivs[i].ID != want[i].ID ||
			math.Abs(ivs[i].T0-want[i].T0) > 1e-9 ||
			math.Abs(ivs[i].T1-want[i].T1) > 1e-9 {
			t.Errorf("interval %d = %+v, want %+v", i, ivs[i], want[i])
		}
	}
	// Degenerate window.
	if ivs := Env2(f, g, 5, 5); ivs != nil {
		t.Errorf("degenerate Env2 = %v", ivs)
	}
	// Identical inputs: one merged interval.
	ivs = Env2(f, f, 0, 60)
	if len(ivs) != 1 || ivs[0].ID != 1 {
		t.Errorf("self Env2 = %v", ivs)
	}
}

// envelopeOracle evaluates min_i f_i(t) directly.
func envelopeOracle(fns []*DistanceFunc, t float64) (int64, float64) {
	best := int64(-1)
	bv := math.Inf(1)
	for _, f := range fns {
		if v := f.Value(t); v < bv {
			bv = v
			best = f.ID
		}
	}
	return best, bv
}

func buildRandomFuncs(t *testing.T, seed int64, n int, segments bool) []*DistanceFunc {
	t.Helper()
	cfg := workload.SingleSegmentConfig(seed)
	if segments {
		cfg = workload.DefaultConfig(seed)
	}
	trs, err := workload.Generate(cfg, n+1)
	if err != nil {
		t.Fatal(err)
	}
	fns, err := BuildDistanceFuncs(trs, trs[0], 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	return fns
}

func TestLowerEnvelopeMatchesOracle(t *testing.T) {
	for _, segs := range []bool{false, true} {
		for _, n := range []int{1, 2, 3, 10, 60} {
			fns := buildRandomFuncs(t, int64(n)*7+3, n, segs)
			env, err := LowerEnvelope(fns, 0, 60)
			if err != nil {
				t.Fatal(err)
			}
			// Dense evaluation: envelope value equals the oracle minimum.
			for _, tm := range numeric.Linspace(0.001, 59.999, 997) {
				_, want := envelopeOracle(fns, tm)
				got := env.ValueAt(tm)
				if math.Abs(got-want) > 1e-6 {
					t.Fatalf("segs=%v n=%d t=%g: env=%g oracle=%g", segs, n, tm, got, want)
				}
			}
			// Structural checks: contiguity and window coverage.
			if env.Intervals[0].T0 != 0 || env.Intervals[len(env.Intervals)-1].T1 != 60 {
				t.Fatalf("coverage: %+v", env.Intervals)
			}
			for i := 1; i < len(env.Intervals); i++ {
				if math.Abs(env.Intervals[i].T0-env.Intervals[i-1].T1) > 1e-9 {
					t.Fatalf("gap at %d", i)
				}
				if env.Intervals[i].ID == env.Intervals[i-1].ID {
					t.Fatalf("unmerged adjacent intervals at %d", i)
				}
			}
		}
	}
}

func TestLowerEnvelopeDSBound(t *testing.T) {
	// Davenport-Schinzel: for N single-segment hyperbolae the envelope has
	// at most 2N − 1 intervals.
	for _, n := range []int{2, 10, 50, 200} {
		fns := buildRandomFuncs(t, int64(n), n, false)
		env, err := LowerEnvelope(fns, 0, 60)
		if err != nil {
			t.Fatal(err)
		}
		if env.Size() > 2*n-1 {
			t.Errorf("n=%d: envelope size %d exceeds 2N-1", n, env.Size())
		}
	}
}

func TestNaiveEqualsDivideAndConquer(t *testing.T) {
	for _, segs := range []bool{false, true} {
		for _, n := range []int{1, 2, 5, 40, 150} {
			fns := buildRandomFuncs(t, int64(n)*13+1, n, segs)
			dc, err := LowerEnvelope(fns, 0, 60)
			if err != nil {
				t.Fatal(err)
			}
			nv, err := NaiveLowerEnvelope(fns, 0, 60)
			if err != nil {
				t.Fatal(err)
			}
			if dc.Size() != nv.Size() {
				t.Fatalf("segs=%v n=%d: sizes %d vs %d\ndc=%v\nnv=%v",
					segs, n, dc.Size(), nv.Size(), dc.Intervals, nv.Intervals)
			}
			for i := range dc.Intervals {
				a, b := dc.Intervals[i], nv.Intervals[i]
				if a.ID != b.ID || math.Abs(a.T0-b.T0) > 1e-6 || math.Abs(a.T1-b.T1) > 1e-6 {
					t.Fatalf("segs=%v n=%d: interval %d: %+v vs %+v", segs, n, i, a, b)
				}
			}
		}
	}
}

func TestEnvelopeErrors(t *testing.T) {
	if _, err := LowerEnvelope(nil, 0, 60); !errors.Is(err, ErrNoFunctions) {
		t.Errorf("no functions: %v", err)
	}
	if _, err := NaiveLowerEnvelope(nil, 0, 60); !errors.Is(err, ErrNoFunctions) {
		t.Errorf("naive no functions: %v", err)
	}
	fns := buildRandomFuncs(t, 5, 3, false)
	if _, err := LowerEnvelope(fns, 10, 10); !errors.Is(err, ErrEmptyWindow) {
		t.Errorf("empty window: %v", err)
	}
	if _, err := NaiveLowerEnvelope(fns, 10, 10); !errors.Is(err, ErrEmptyWindow) {
		t.Errorf("naive empty window: %v", err)
	}
}

func TestMinGap(t *testing.T) {
	q := stillTr(t, 100, 0, 0)
	near, _ := NewDistanceFunc(1, stillTr(t, 1, 2, 0), q, 0, 60) // d = 2
	mid, _ := NewDistanceFunc(2, stillTr(t, 2, 5, 0), q, 0, 60)  // d = 5
	far, _ := NewDistanceFunc(3, stillTr(t, 3, 11, 0), q, 0, 60) // d = 11
	env, err := LowerEnvelope([]*DistanceFunc{near}, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	if g := MinGap(mid, env); math.Abs(g-3) > 1e-6 {
		t.Errorf("MinGap(mid) = %g, want 3", g)
	}
	if g := MinGap(far, env); math.Abs(g-9) > 1e-6 {
		t.Errorf("MinGap(far) = %g, want 9", g)
	}
	if g := MinGap(near, env); math.Abs(g) > 1e-9 {
		t.Errorf("MinGap(self) = %g, want 0", g)
	}
	// A function dipping below the envelope has negative gap.
	dip, _ := NewDistanceFunc(4, lineTr(t, 4, 10, 0, -10, 0), q, 0, 60)
	if g := MinGap(dip, env); math.Abs(g-(-2)) > 1e-6 {
		t.Errorf("MinGap(dip) = %g, want -2", g)
	}
}

func TestPrune(t *testing.T) {
	q := stillTr(t, 100, 0, 0)
	near, _ := NewDistanceFunc(1, stillTr(t, 1, 2, 0), q, 0, 60)
	mid, _ := NewDistanceFunc(2, stillTr(t, 2, 5, 0), q, 0, 60)
	far, _ := NewDistanceFunc(3, stillTr(t, 3, 11, 0), q, 0, 60)
	env, err := LowerEnvelope([]*DistanceFunc{near, mid, far}, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	// Envelope is `near` (d=2) everywhere. Width 4r with r=1 keeps mid
	// (gap 3 <= 4) and prunes far (gap 9 > 4).
	kept, pruned := Prune([]*DistanceFunc{near, mid, far}, env, 4)
	if len(kept) != 2 || len(pruned) != 1 || pruned[0].ID != 3 {
		t.Errorf("kept=%v pruned=%v", ids(kept), ids(pruned))
	}
	// Width 12 keeps everything.
	kept, pruned = Prune([]*DistanceFunc{near, mid, far}, env, 12)
	if len(kept) != 3 || len(pruned) != 0 {
		t.Errorf("wide: kept=%v pruned=%v", ids(kept), ids(pruned))
	}
}

func ids(fns []*DistanceFunc) []int64 {
	out := make([]int64, len(fns))
	for i, f := range fns {
		out[i] = f.ID
	}
	return out
}

// TestPruneSoundness: pruned functions never get within `width` of the
// envelope on a dense grid (property of the pruning criterion).
func TestPruneSoundness(t *testing.T) {
	fns := buildRandomFuncs(t, 77, 120, true)
	env, err := LowerEnvelope(fns, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	width := 4 * 0.5 // r = 0.5 miles
	_, pruned := Prune(fns, env, width)
	for _, f := range pruned {
		for _, tm := range numeric.Linspace(0, 60, 601) {
			if f.Value(tm)-env.ValueAt(tm) <= width-1e-6 {
				t.Fatalf("pruned oid %d enters zone at t=%g", f.ID, tm)
			}
		}
	}
}

func TestBelowIntervals(t *testing.T) {
	q := stillTr(t, 100, 0, 0)
	base, _ := NewDistanceFunc(1, stillTr(t, 1, 2, 0), q, 0, 60) // envelope at 2
	env, err := LowerEnvelope([]*DistanceFunc{base}, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	// V-shaped function dips to 0 at t=30: below (2 + delta) between the
	// crossing times of |10 − t/3| = 2 + delta.
	dip, _ := NewDistanceFunc(4, lineTr(t, 4, 10, 0, -10, 0), q, 0, 60)
	delta := 1.0 // threshold distance 3 → crossings at t = 21 and t = 39
	ivs := BelowIntervals(dip, env, delta)
	if len(ivs) != 1 {
		t.Fatalf("BelowIntervals = %v", ivs)
	}
	if math.Abs(ivs[0].T0-21) > 1e-6 || math.Abs(ivs[0].T1-39) > 1e-6 {
		t.Errorf("interval = %+v, want [21, 39]", ivs[0])
	}
	if math.Abs(TotalLength(ivs)-18) > 1e-6 {
		t.Errorf("TotalLength = %g", TotalLength(ivs))
	}
	// Always below: whole window.
	ivs = BelowIntervals(base, env, 0.5)
	if len(ivs) != 1 || ivs[0].T0 != 0 || ivs[0].T1 != 60 {
		t.Errorf("always-below = %v", ivs)
	}
	// Never below.
	far, _ := NewDistanceFunc(3, stillTr(t, 3, 30, 0), q, 0, 60)
	if ivs := BelowIntervals(far, env, 1); len(ivs) != 0 {
		t.Errorf("never-below = %v", ivs)
	}
}

// TestBelowIntervalsAgainstSampling: property check on random workloads.
func TestBelowIntervalsAgainstSampling(t *testing.T) {
	fns := buildRandomFuncs(t, 31, 40, true)
	env, err := LowerEnvelope(fns, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	delta := 2.0
	for _, f := range fns[:10] {
		ivs := BelowIntervals(f, env, delta)
		inside := func(tm float64) bool {
			for _, iv := range ivs {
				if tm >= iv.T0-1e-6 && tm <= iv.T1+1e-6 {
					return true
				}
			}
			return false
		}
		for _, tm := range numeric.Linspace(0.01, 59.99, 599) {
			below := f.Value(tm) <= env.ValueAt(tm)+delta
			if below != inside(tm) {
				// Tolerate disagreement within a hair of a boundary.
				margin := math.Abs(f.Value(tm) - env.ValueAt(tm) - delta)
				if margin > 1e-4 {
					t.Fatalf("oid %d t=%g: sampled below=%v interval=%v (margin %g)",
						f.ID, tm, below, inside(tm), margin)
				}
			}
		}
	}
}

func TestEnvelopeAccessors(t *testing.T) {
	fns := buildRandomFuncs(t, 9, 10, false)
	env, err := LowerEnvelope(fns, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	if got := env.IDAt(30); got != env.Intervals[env.at(30)].ID {
		t.Errorf("IDAt mismatch")
	}
	if env.Func(fns[0].ID) != fns[0] {
		t.Error("Func lookup failed")
	}
	idSet := env.IDs()
	if len(idSet) == 0 || len(idSet) != len(uniq(idSet)) {
		t.Errorf("IDs = %v", idSet)
	}
	ct := env.CriticalTimes()
	if len(ct) != env.Size()-1 {
		t.Errorf("CriticalTimes = %d for size %d", len(ct), env.Size())
	}
}

func uniq(ids []int64) []int64 {
	seen := map[int64]bool{}
	var out []int64
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}
