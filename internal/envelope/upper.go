package envelope

import "math"

// This file implements the *upper* envelope of the distance functions —
// the primitive used by the Huang et al. approach the paper's related
// work contrasts with ([12]: continuous kNN for objects with uncertain
// velocity works with upper envelopes to certify guaranteed members).
// Exposing it lets the benchmarks compare both primitives and lets users
// answer "guaranteed" (rather than "possible") questions: an object whose
// farthest possible distance stays below every other object's nearest
// possible distance is *certainly* the nearest neighbor.

// UpperEnv2 is Env2 with the comparison flipped: between consecutive
// crossings the larger function defines the envelope.
func UpperEnv2(f, g *DistanceFunc, lo, hi float64) []Interval {
	if hi-lo <= TimeEps {
		return nil
	}
	cuts := []float64{lo}
	cuts = append(cuts, Intersections(f, g, lo, hi)...)
	cuts = append(cuts, hi)
	var out []Interval
	for i := 1; i < len(cuts); i++ {
		t0, t1 := cuts[i-1], cuts[i]
		if t1-t0 <= TimeEps {
			continue
		}
		mid := 0.5 * (t0 + t1)
		id := f.ID
		if g.ValueSq(mid) > f.ValueSq(mid) {
			id = g.ID
		}
		out = concatMerge(out, Interval{ID: id, T0: t0, T1: t1})
	}
	return out
}

// mergeUE is Merge_LE with UpperEnv2 as the per-interval primitive.
func mergeUE(a, b []Interval, fns map[int64]*DistanceFunc) []Interval {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	var out []Interval
	k, p := 0, 0
	for k < len(a) && p < len(b) {
		ia, ib := a[k], b[p]
		tcl := math.Max(ia.T0, ib.T0)
		tcu := math.Min(ia.T1, ib.T1)
		if tcu-tcl > TimeEps {
			for _, iv := range UpperEnv2(fns[ia.ID], fns[ib.ID], tcl, tcu) {
				out = concatMerge(out, iv)
			}
		}
		switch {
		case ia.T1 < ib.T1-TimeEps:
			k++
		case ib.T1 < ia.T1-TimeEps:
			p++
		default:
			k++
			p++
		}
	}
	return out
}

// UpperEnvelope constructs the upper envelope (pointwise maximum) of the
// distance functions over [tb, te] by divide and conquer — the mirror of
// LowerEnvelope with the same O(N log N) bound.
func UpperEnvelope(fns []*DistanceFunc, tb, te float64) (*Envelope, error) {
	if len(fns) == 0 {
		return nil, ErrNoFunctions
	}
	if te-tb <= TimeEps {
		return nil, ErrEmptyWindow
	}
	table := make(map[int64]*DistanceFunc, len(fns))
	for _, f := range fns {
		table[f.ID] = f
	}
	ivs := ueAlg(fns, tb, te, table)
	return newEnvelope(ivs, table, tb, te), nil
}

func ueAlg(fns []*DistanceFunc, tb, te float64, table map[int64]*DistanceFunc) []Interval {
	if len(fns) == 1 {
		return []Interval{{ID: fns[0].ID, T0: tb, T1: te}}
	}
	c := len(fns) / 2
	return mergeUE(ueAlg(fns[:c], tb, te, table), ueAlg(fns[c:], tb, te, table), table)
}

// GuaranteedNNIntervals returns the maximal intervals during which the
// object with the given ID is *certainly* the nearest neighbor of the
// query: its farthest possible distance d_i(t) + 2r stays below every
// other object's nearest possible distance d_j(t) − 2r, i.e.
// d_i(t) + 4r <= LE_{j≠i}(t). This is the certain counterpart of the
// possible-NN zone of Section 3.2 (and the flavor of guarantee [12]
// extracts from upper envelopes).
func GuaranteedNNIntervals(fns []*DistanceFunc, id int64, e *Envelope, r float64) []TimeInterval {
	var target *DistanceFunc
	others := make([]*DistanceFunc, 0, len(fns)-1)
	for _, f := range fns {
		if f.ID == id {
			target = f
		} else {
			others = append(others, f)
		}
	}
	if target == nil || len(others) == 0 {
		return nil
	}
	otherLE, err := LowerEnvelope(others, e.T0, e.T1)
	if err != nil {
		return nil
	}
	// d_target(t) + 4r <= LE_others(t)  ⟺  d_target(t) − LE_others(t) <= −4r:
	// reuse BelowIntervals with a negative offset.
	return BelowIntervals(target, otherLE, -4*r)
}
