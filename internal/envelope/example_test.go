package envelope_test

import (
	"fmt"

	"repro/internal/envelope"
	"repro/internal/trajectory"
)

// ExampleLowerEnvelope builds the time-parameterized nearest-neighbor
// schedule for a stationary query and two movers: object 2 sweeps past and
// takes over the envelope around the middle of the window.
func ExampleLowerEnvelope() {
	mk := func(oid int64, x0, y0, x1, y1 float64) *trajectory.Trajectory {
		tr, _ := trajectory.New(oid, []trajectory.Vertex{
			{X: x0, Y: y0, T: 0}, {X: x1, Y: y1, T: 60},
		})
		return tr
	}
	query := mk(100, 0, 0, 0, 0)
	near := mk(1, 5, 0, 5, 0)       // constant distance 5
	sweeper := mk(2, 20, 1, -20, 1) // dips to distance ~1 at t = 30

	fns, _ := envelope.BuildDistanceFuncs(
		[]*trajectory.Trajectory{query, near, sweeper}, query, 0, 60)
	env, _ := envelope.LowerEnvelope(fns, 0, 60)
	for _, iv := range env.Intervals {
		fmt.Printf("Tr%d on [%.2f, %.2f]\n", iv.ID, iv.T0, iv.T1)
	}
	// Output:
	// Tr1 on [0.00, 22.65]
	// Tr2 on [22.65, 37.35]
	// Tr1 on [37.35, 60.00]
}

// ExampleEnv2 shows the pairwise primitive directly.
func ExampleEnv2() {
	mk := func(oid int64, x0, x1 float64) *trajectory.Trajectory {
		tr, _ := trajectory.New(oid, []trajectory.Vertex{
			{X: x0, Y: 0, T: 0}, {X: x1, Y: 0, T: 60},
		})
		return tr
	}
	query := mk(100, 0, 0)
	f, _ := envelope.NewDistanceFunc(1, mk(1, 10, -10), query, 0, 60) // V-shape
	g, _ := envelope.NewDistanceFunc(2, mk(2, 5, 5), query, 0, 60)    // constant 5

	for _, iv := range envelope.Env2(f, g, 0, 60) {
		fmt.Printf("Tr%d on [%.0f, %.0f]\n", iv.ID, iv.T0, iv.T1)
	}
	// Output:
	// Tr2 on [0, 15]
	// Tr1 on [15, 45]
	// Tr2 on [45, 60]
}
