package envelope

import (
	"math"
	"sort"
	"testing"

	"repro/internal/numeric"
)

// kthOracle returns the j-th smallest (1-based) function value at time t.
func kthOracle(fns []*DistanceFunc, t float64, j int) float64 {
	vals := make([]float64, len(fns))
	for i, f := range fns {
		vals[i] = f.Value(t)
	}
	sort.Float64s(vals)
	return vals[j-1]
}

func TestKLevelEnvelopesMatchOracle(t *testing.T) {
	for _, segs := range []bool{false, true} {
		fns := buildRandomFuncs(t, 21, 25, segs)
		const k = 4
		levels, err := KLevelEnvelopes(fns, 0, 60, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(levels) != k {
			t.Fatalf("got %d levels", len(levels))
		}
		for j := 1; j <= k; j++ {
			env := levels[j-1]
			for _, tm := range numeric.Linspace(0.01, 59.99, 499) {
				want := kthOracle(fns, tm, j)
				got := env.ValueAt(tm)
				if math.Abs(got-want) > 1e-6 {
					t.Fatalf("segs=%v level %d t=%g: env=%g oracle=%g", segs, j, tm, got, want)
				}
			}
		}
		// Levels are pointwise nondecreasing in j.
		for _, tm := range numeric.Linspace(0.01, 59.99, 199) {
			prev := -1.0
			for j := range levels {
				v := levels[j].ValueAt(tm)
				if v < prev-1e-9 {
					t.Fatalf("levels not sorted at t=%g level %d", tm, j+1)
				}
				prev = v
			}
		}
	}
}

func TestKLevelEnvelopesSmallSets(t *testing.T) {
	fns := buildRandomFuncs(t, 3, 2, false)
	// k larger than the number of functions: capped at len(fns).
	levels, err := KLevelEnvelopes(fns, 0, 60, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 2 {
		t.Fatalf("levels = %d, want 2", len(levels))
	}
	// Level 2 should be the max of the two functions everywhere.
	for _, tm := range numeric.Linspace(0.01, 59.99, 99) {
		want := math.Max(fns[0].Value(tm), fns[1].Value(tm))
		if got := levels[1].ValueAt(tm); math.Abs(got-want) > 1e-6 {
			t.Fatalf("t=%g: %g vs %g", tm, got, want)
		}
	}
}

func TestKLevelEnvelopesErrors(t *testing.T) {
	fns := buildRandomFuncs(t, 4, 3, false)
	if _, err := KLevelEnvelopes(nil, 0, 60, 2); err == nil {
		t.Error("nil fns accepted")
	}
	if _, err := KLevelEnvelopes(fns, 5, 5, 2); err == nil {
		t.Error("empty window accepted")
	}
	if _, err := KLevelEnvelopes(fns, 0, 60, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestKLevelFirstEqualsLowerEnvelope(t *testing.T) {
	fns := buildRandomFuncs(t, 8, 30, true)
	levels, err := KLevelEnvelopes(fns, 0, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	le, err := LowerEnvelope(fns, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 1 || levels[0].Size() != le.Size() {
		t.Fatalf("level1 size %d vs %d", levels[0].Size(), le.Size())
	}
	for i := range le.Intervals {
		if levels[0].Intervals[i] != le.Intervals[i] {
			t.Fatalf("interval %d differs", i)
		}
	}
}
