package envelope

import (
	"cmp"
	"math"
	"slices"
	"sort"
	"sync"

	"repro/internal/numeric"
)

// Interval is one maximal piece of an envelope: on [T0, T1] the function
// with the given ID defines the envelope.
type Interval struct {
	ID     int64
	T0, T1 float64
}

// Envelope is a ranked lower envelope: a contiguous list of intervals over
// [T0, T1] plus the distance functions needed to evaluate it. The interval
// boundaries interior to the window are the paper's critical time points.
type Envelope struct {
	Intervals []Interval
	T0, T1    float64
	fns       map[int64]*DistanceFunc
}

// newEnvelope wraps an interval list with its function table.
func newEnvelope(ivs []Interval, fns map[int64]*DistanceFunc, t0, t1 float64) *Envelope {
	return &Envelope{Intervals: ivs, fns: fns, T0: t0, T1: t1}
}

// Size returns the combinatorial complexity of the envelope (number of
// maximal intervals). For N single-segment hyperbolae it is bounded by the
// Davenport-Schinzel bound λ₂(N) = 2N − 1.
func (e *Envelope) Size() int { return len(e.Intervals) }

// CriticalTimes returns the interior critical time points.
func (e *Envelope) CriticalTimes() []float64 {
	var out []float64
	for i := 0; i+1 < len(e.Intervals); i++ {
		out = append(out, e.Intervals[i].T1)
	}
	return out
}

// At returns the envelope's interval index active at time t.
func (e *Envelope) at(t float64) int {
	n := len(e.Intervals)
	i := sort.Search(n, func(k int) bool { return e.Intervals[k].T1 >= t })
	if i == n {
		i = n - 1
	}
	return i
}

// ValueAt evaluates the envelope at time t (clamped to the window).
func (e *Envelope) ValueAt(t float64) float64 {
	iv := e.Intervals[e.at(t)]
	return e.fns[iv.ID].Value(t)
}

// IDAt returns the ID of the function defining the envelope at time t.
func (e *Envelope) IDAt(t float64) int64 { return e.Intervals[e.at(t)].ID }

// Func returns the distance function with the given ID, or nil.
func (e *Envelope) Func(id int64) *DistanceFunc { return e.fns[id] }

// IDs returns the distinct function IDs appearing on the envelope, in
// order of first appearance.
func (e *Envelope) IDs() []int64 {
	seen := make(map[int64]bool)
	var out []int64
	for _, iv := range e.Intervals {
		if !seen[iv.ID] {
			seen[iv.ID] = true
			out = append(out, iv.ID)
		}
	}
	return out
}

// concatMerge appends interval iv to dst with the paper's ⊎ semantics:
// when the last interval of dst is defined by the same function, the two
// intervals fuse and the shared critical point is absorbed (Example 5).
func concatMerge(dst []Interval, iv Interval) []Interval {
	if iv.T1-iv.T0 <= TimeEps {
		return dst
	}
	if n := len(dst); n > 0 && dst[n-1].ID == iv.ID && math.Abs(dst[n-1].T1-iv.T0) <= TimeEps {
		dst[n-1].T1 = iv.T1
		return dst
	}
	return append(dst, iv)
}

// Env2 computes the lower envelope of two distance functions over [lo, hi]
// (the paper's Env2 primitive): their crossings inside the window are the
// new critical time points, and between consecutive critical points the
// smaller function (sampled at the midpoint) defines the envelope. For
// single-piece inputs this is O(1).
func Env2(f, g *DistanceFunc, lo, hi float64) []Interval {
	if hi-lo <= TimeEps {
		return nil
	}
	cuts := []float64{lo}
	cuts = append(cuts, Intersections(f, g, lo, hi)...)
	cuts = append(cuts, hi)
	var out []Interval
	for i := 1; i < len(cuts); i++ {
		t0, t1 := cuts[i-1], cuts[i]
		if t1-t0 <= TimeEps {
			continue
		}
		mid := 0.5 * (t0 + t1)
		id := f.ID
		if g.ValueSq(mid) < f.ValueSq(mid) {
			id = g.ID
		}
		out = concatMerge(out, Interval{ID: id, T0: t0, T1: t1})
	}
	return out
}

// MergeLE merges two lower envelopes over the same window into their
// combined lower envelope — the paper's Algorithm 2. The sweep walks the
// union of the two envelopes' critical time points, maintaining the current
// lower and upper sweep bounds, invokes Env2 on the pair of functions
// active on each elementary interval, and ⊎-concatenates the results.
func MergeLE(a, b []Interval, fns map[int64]*DistanceFunc) []Interval {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	var out []Interval
	k, p := 0, 0
	for k < len(a) && p < len(b) {
		ia, ib := a[k], b[p]
		tcl := math.Max(ia.T0, ib.T0) // current lower bound
		tcu := math.Min(ia.T1, ib.T1) // current upper bound
		if tcu-tcl > TimeEps {
			for _, iv := range Env2(fns[ia.ID], fns[ib.ID], tcl, tcu) {
				out = concatMerge(out, iv)
			}
		}
		switch {
		case ia.T1 < ib.T1-TimeEps:
			k++
		case ib.T1 < ia.T1-TimeEps:
			p++
		default:
			k++
			p++
		}
	}
	return out
}

// LowerEnvelope constructs the lower envelope of the distance functions
// over [tb, te] by divide and conquer (the paper's Algorithm 1, LE_Alg):
// split the set, recurse, and MergeLE the halves — O(N log N) for
// single-segment trajectories by the Davenport-Schinzel bound.
func LowerEnvelope(fns []*DistanceFunc, tb, te float64) (*Envelope, error) {
	if len(fns) == 0 {
		return nil, ErrNoFunctions
	}
	if te-tb <= TimeEps {
		return nil, ErrEmptyWindow
	}
	table := make(map[int64]*DistanceFunc, len(fns))
	for _, f := range fns {
		table[f.ID] = f
	}
	ivs := leAlg(fns, tb, te, table)
	return newEnvelope(ivs, table, tb, te), nil
}

func leAlg(fns []*DistanceFunc, tb, te float64, table map[int64]*DistanceFunc) []Interval {
	if len(fns) == 1 {
		return []Interval{{ID: fns[0].ID, T0: tb, T1: te}}
	}
	c := len(fns) / 2
	left := leAlg(fns[:c], tb, te, table)
	right := leAlg(fns[c:], tb, te, table)
	return MergeLE(left, right, table)
}

// NaiveLowerEnvelope is the baseline of the paper's Figure 11: find the
// intersections of all O(N²) pairs of distance functions, sort them in
// time, and sweep, switching the envelope function whenever the current
// envelope curve is crossed from below. O(N² log N).
func NaiveLowerEnvelope(fns []*DistanceFunc, tb, te float64) (*Envelope, error) {
	if len(fns) == 0 {
		return nil, ErrNoFunctions
	}
	if te-tb <= TimeEps {
		return nil, ErrEmptyWindow
	}
	table := make(map[int64]*DistanceFunc, len(fns))
	for _, f := range fns {
		table[f.ID] = f
	}
	type event struct {
		t    float64
		i, j int32
	}
	var events []event
	for i := 0; i < len(fns); i++ {
		for j := i + 1; j < len(fns); j++ {
			for _, t := range Intersections(fns[i], fns[j], tb, te) {
				events = append(events, event{t: t, i: int32(i), j: int32(j)})
			}
		}
	}
	slices.SortFunc(events, func(a, b event) int { return cmp.Compare(a.t, b.t) })

	// Initial envelope function at tb.
	cur := 0
	probe := tb + math.Min((te-tb)*1e-7, TimeEps*10)
	best := fns[0].ValueSq(probe)
	for i := 1; i < len(fns); i++ {
		if v := fns[i].ValueSq(probe); v < best {
			best = v
			cur = i
		}
	}
	var ivs []Interval
	start := tb
	for _, ev := range events {
		if int(ev.i) != cur && int(ev.j) != cur {
			continue // the envelope only changes at crossings involving it
		}
		other := int(ev.i)
		if other == cur {
			other = int(ev.j)
		}
		// Just after the crossing, does the other curve go below?
		after := math.Min(te, ev.t+math.Max(TimeEps*10, (te-tb)*1e-9))
		if fns[other].ValueSq(after) < fns[cur].ValueSq(after) {
			if ev.t-start > TimeEps {
				ivs = concatMerge(ivs, Interval{ID: fns[cur].ID, T0: start, T1: ev.t})
				start = ev.t
			}
			cur = other
		}
	}
	ivs = concatMerge(ivs, Interval{ID: fns[cur].ID, T0: start, T1: te})
	return newEnvelope(ivs, table, tb, te), nil
}

// MinGap returns the minimum over the window of f(t) − e(t): how close f
// comes to the envelope. Negative values mean f dips below e somewhere.
// Each elementary interval (union of f's and e's breakpoints) holds a
// smooth difference of two hyperbolae; the minimum is located by sampling
// followed by golden-section refinement (tolerance TimeEps).
func MinGap(f *DistanceFunc, e *Envelope) float64 {
	cuts := mergeCuts(f.Breakpoints(), e.breakTimes(), e.T0, e.T1)
	best := math.Inf(1)
	for i := 1; i < len(cuts); i++ {
		t0, t1 := cuts[i-1], cuts[i]
		if t1-t0 <= TimeEps {
			continue
		}
		iv := e.Intervals[e.at(0.5*(t0+t1))]
		g := e.fns[iv.ID]
		diff := func(t float64) float64 { return f.Value(t) - g.Value(t) }
		// Bracket by sampling, then refine.
		const samples = 8
		bt, bv := t0, diff(t0)
		for s := 1; s <= samples; s++ {
			t := t0 + (t1-t0)*float64(s)/samples
			if v := diff(t); v < bv {
				bv = v
				bt = t
			}
		}
		lo := math.Max(t0, bt-(t1-t0)/samples)
		hi := math.Min(t1, bt+(t1-t0)/samples)
		if _, v := numeric.MinimizeGolden(diff, lo, hi, TimeEps); v < bv {
			bv = v
		}
		if bv < best {
			best = bv
		}
	}
	return best
}

// breakTimes returns the envelope's interval boundaries.
func (e *Envelope) breakTimes() []float64 {
	out := make([]float64, 0, len(e.Intervals)+1)
	out = append(out, e.Intervals[0].T0)
	for _, iv := range e.Intervals {
		out = append(out, iv.T1)
	}
	return out
}

func mergeCuts(a, b []float64, lo, hi float64) []float64 {
	all := make([]float64, 0, len(a)+len(b)+2)
	all = append(all, lo, hi)
	for _, t := range a {
		if t > lo && t < hi {
			all = append(all, t)
		}
	}
	for _, t := range b {
		if t > lo && t < hi {
			all = append(all, t)
		}
	}
	sort.Float64s(all)
	return dedupTimes(all)
}

// Prune partitions the functions into those that intersect the pruning
// zone [envelope, envelope + width] somewhere in the window (kept) and
// those that never do (pruned). Per Section 3.2, with uncertainty radius r
// the width is 4r: an object whose distance function stays more than 4r
// above the lower envelope can never have non-zero probability of being
// the nearest neighbor.
func Prune(fns []*DistanceFunc, e *Envelope, width float64) (kept, pruned []*DistanceFunc) {
	for _, f := range fns {
		if MinGap(f, e) <= width {
			kept = append(kept, f)
		} else {
			pruned = append(pruned, f)
		}
	}
	return kept, pruned
}

// TimeInterval is a closed interval of time.
type TimeInterval struct {
	T0, T1 float64
}

// Length returns the interval's duration.
func (iv TimeInterval) Length() float64 { return iv.T1 - iv.T0 }

// TotalLength sums the durations of a set of disjoint intervals.
func TotalLength(ivs []TimeInterval) float64 {
	var s float64
	for _, iv := range ivs {
		s += iv.Length()
	}
	return s
}

// scanScratch holds the reusable buffers of one BelowIntervals sweep. The
// whole-MOD query variants run this scan once per candidate (fanned across
// goroutines by the batch engine), so the buffers are recycled through a
// pool instead of reallocated per call.
type scanScratch struct {
	cuts  []float64
	roots []float64
}

var scanPool = sync.Pool{New: func() any { return new(scanScratch) }}

// pieceCursor walks a distance function's pieces for a monotone
// nondecreasing sequence of evaluation times, selecting the same piece as
// pieceAt without the per-call binary search.
type pieceCursor struct {
	ps []Piece
	i  int
}

func (c *pieceCursor) valueSq(t float64) float64 {
	for c.i+1 < len(c.ps) && c.ps[c.i].T1 < t {
		c.i++
	}
	return c.ps[c.i].ValueSq(t)
}

// envCursor is the envelope counterpart: it tracks the active envelope
// interval for monotone evaluation times, avoiding the interval binary
// search and function-table lookup of ValueAt on every sample.
type envCursor struct {
	e  *Envelope
	i  int
	fn *DistanceFunc
}

func (c *envCursor) valueSq(t float64) float64 {
	for c.i+1 < len(c.e.Intervals) && c.e.Intervals[c.i].T1 < t {
		c.i++
		c.fn = nil
	}
	if c.fn == nil {
		c.fn = c.e.fns[c.e.Intervals[c.i].ID]
	}
	return c.fn.ValueSq(t)
}

// valueSqAt evaluates the envelope's squared value at t.
func (e *Envelope) valueSqAt(t float64) float64 {
	iv := e.Intervals[e.at(t)]
	return e.fns[iv.ID].ValueSq(t)
}

// signedGap returns a value with the sign of f(t) − e(t) − delta computed
// from the squared distances fsq = f(t)², esq = e(t)², spending at most one
// square root (and none at all on the fast paths) instead of the two that
// evaluating both distances directly would cost.
func signedGap(fsq, esq, delta float64) float64 {
	if delta == 0 {
		return fsq - esq
	}
	if delta > 0 && fsq-esq < delta*delta {
		// f² < e² + δ² ≤ (e+δ)², so f − e − δ < 0 strictly.
		return fsq - esq - delta*delta
	}
	rhs := math.Sqrt(esq) + delta
	if rhs < 0 {
		// f ≥ 0 > e + δ: strictly above.
		return fsq + rhs*rhs
	}
	// sign(f² − (e+δ)²) = sign(f − e − δ) since f + e + δ ≥ 0.
	return fsq - rhs*rhs
}

// appendCutTimes gathers the window ends plus the interior breakpoints of f
// and e into dst, sorted and deduplicated, without the intermediate slices
// of Breakpoints/breakTimes.
func appendCutTimes(dst []float64, f *DistanceFunc, e *Envelope) []float64 {
	lo, hi := e.T0, e.T1
	dst = append(dst, lo, hi)
	if t := f.Pieces[0].T0; t > lo && t < hi {
		dst = append(dst, t)
	}
	for _, p := range f.Pieces {
		if p.T1 > lo && p.T1 < hi {
			dst = append(dst, p.T1)
		}
	}
	if t := e.Intervals[0].T0; t > lo && t < hi {
		dst = append(dst, t)
	}
	for _, iv := range e.Intervals {
		if iv.T1 > lo && iv.T1 < hi {
			dst = append(dst, iv.T1)
		}
	}
	sort.Float64s(dst)
	return dedupTimes(dst)
}

// BelowIntervals returns the maximal time intervals within the envelope's
// window during which f(t) <= e(t) + delta — the membership test of the
// pruning zone that underlies the UQ query variants (delta = 4r for
// Level 1 semantics). Boundaries are refined with Brent's method to
// TimeEps.
//
// This is the refine hot path: every whole-MOD variant runs it once per
// surviving candidate. The sweep therefore compares squared distances
// (one square root per sample at most, none when the 4r threshold decides
// without it), walks pieces and envelope intervals with monotone cursors
// instead of per-sample binary searches, and recycles its cut/root buffers
// through a pool.
func BelowIntervals(f *DistanceFunc, e *Envelope, delta float64) []TimeInterval {
	sc := scanPool.Get().(*scanScratch)
	sc.cuts = appendCutTimes(sc.cuts[:0], f, e)
	cuts := sc.cuts
	// Collect sign-change boundaries by dense sampling per elementary
	// interval (the difference has at most a few roots per interval since
	// both sides are hyperbola pieces), refined by bisection. The slow
	// closure is only used inside FindRoot, whose probes are not monotone.
	slow := func(t float64) float64 { return signedGap(f.ValueSq(t), e.valueSqAt(t), delta) }
	const samples = 16
	roots := sc.roots[:0]
	fc := pieceCursor{ps: f.Pieces}
	ec := envCursor{e: e}
	for i := 1; i < len(cuts); i++ {
		t0, t1 := cuts[i-1], cuts[i]
		if t1-t0 <= TimeEps {
			continue
		}
		prevT := t0
		prevV := signedGap(fc.valueSq(t0), ec.valueSq(t0), delta)
		for s := 1; s <= samples; s++ {
			t := t0 + (t1-t0)*float64(s)/samples
			v := signedGap(fc.valueSq(t), ec.valueSq(t), delta)
			if (prevV < 0) != (v < 0) {
				if r, err := numeric.FindRoot(slow, prevT, t, TimeEps); err == nil {
					roots = append(roots, r)
				}
			}
			prevT, prevV = t, v
		}
	}
	sc.roots = roots
	// Classify the root-delimited intervals by their midpoint sign. Roots
	// were collected in ascending time order, so the cut list needs no sort.
	cl := append(sc.cuts[:0], e.T0)
	for _, r := range roots {
		if r > e.T0 && r < e.T1 {
			cl = append(cl, r)
		}
	}
	cl = append(cl, e.T1)
	cl = dedupTimes(cl)
	sc.cuts = cl
	var out []TimeInterval
	fc = pieceCursor{ps: f.Pieces}
	ec = envCursor{e: e}
	for i := 1; i < len(cl); i++ {
		t0, t1 := cl[i-1], cl[i]
		if t1-t0 <= TimeEps {
			continue
		}
		mid := 0.5 * (t0 + t1)
		if signedGap(fc.valueSq(mid), ec.valueSq(mid), delta) <= 0 {
			if n := len(out); n > 0 && math.Abs(out[n-1].T1-t0) <= TimeEps {
				out[n-1].T1 = t1
			} else {
				out = append(out, TimeInterval{T0: t0, T1: t1})
			}
		}
	}
	scanPool.Put(sc)
	return out
}
