package envelope

import (
	"fmt"
	"sort"
)

// KLevelEnvelopes returns the first k ranked lower envelopes of the
// distance functions over [tb, te]: result[j-1] is the pointwise j-th
// smallest function (the "j-th-lower-envelope" of the paper's Figure 10,
// the geometric dual of the IPAC-NN tree's level-j nodes).
//
// Level j is built by overlaying the breakpoints of levels 1..j-1, and on
// each elementary interval computing the lower envelope of the functions
// that do not define any shallower level there (the interval-wise exclusion
// of Algorithm 3). If fewer than j functions exist somewhere, level j is
// absent there; when no functions remain at all, fewer than k envelopes are
// returned.
func KLevelEnvelopes(fns []*DistanceFunc, tb, te float64, k int) ([]*Envelope, error) {
	if len(fns) == 0 {
		return nil, ErrNoFunctions
	}
	if te-tb <= TimeEps {
		return nil, ErrEmptyWindow
	}
	if k < 1 {
		return nil, fmt.Errorf("envelope: k must be >= 1, got %d", k)
	}
	table := make(map[int64]*DistanceFunc, len(fns))
	for _, f := range fns {
		table[f.ID] = f
	}
	var out []*Envelope
	first, err := LowerEnvelope(fns, tb, te)
	if err != nil {
		return nil, err
	}
	out = append(out, first)
	for j := 2; j <= k && j <= len(fns); j++ {
		// Overlay breakpoints of all shallower levels.
		var cutSet []float64
		cutSet = append(cutSet, tb, te)
		for _, e := range out {
			for _, iv := range e.Intervals {
				if iv.T1 > tb && iv.T1 < te {
					cutSet = append(cutSet, iv.T1)
				}
			}
		}
		sort.Float64s(cutSet)
		cutSet = dedupTimes(cutSet)

		var ivs []Interval
		for i := 1; i < len(cutSet); i++ {
			t0, t1 := cutSet[i-1], cutSet[i]
			if t1-t0 <= TimeEps {
				continue
			}
			mid := 0.5 * (t0 + t1)
			excluded := make(map[int64]bool, j-1)
			for _, e := range out {
				excluded[e.IDAt(mid)] = true
			}
			var remaining []*DistanceFunc
			for _, f := range fns {
				if !excluded[f.ID] {
					remaining = append(remaining, f)
				}
			}
			if len(remaining) == 0 {
				continue
			}
			sub := leAlg(remaining, t0, t1, table)
			for _, iv := range sub {
				ivs = concatMerge(ivs, iv)
			}
		}
		if len(ivs) == 0 {
			break
		}
		out = append(out, newEnvelope(ivs, table, tb, te))
	}
	return out, nil
}
