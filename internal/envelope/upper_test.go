package envelope

import (
	"math"
	"testing"

	"repro/internal/numeric"
)

// upperOracle evaluates max_i f_i(t) directly.
func upperOracle(fns []*DistanceFunc, t float64) float64 {
	best := math.Inf(-1)
	for _, f := range fns {
		if v := f.Value(t); v > best {
			best = v
		}
	}
	return best
}

func TestUpperEnvelopeMatchesOracle(t *testing.T) {
	for _, segs := range []bool{false, true} {
		for _, n := range []int{1, 2, 5, 30, 100} {
			fns := buildRandomFuncs(t, int64(n)*3+11, n, segs)
			env, err := UpperEnvelope(fns, 0, 60)
			if err != nil {
				t.Fatal(err)
			}
			for _, tm := range numeric.Linspace(0.001, 59.999, 499) {
				want := upperOracle(fns, tm)
				if got := env.ValueAt(tm); math.Abs(got-want) > 1e-6 {
					t.Fatalf("segs=%v n=%d t=%g: %g vs %g", segs, n, tm, got, want)
				}
			}
			// Structural sanity.
			if env.Intervals[0].T0 != 0 || env.Intervals[len(env.Intervals)-1].T1 != 60 {
				t.Fatalf("coverage: %+v", env.Intervals)
			}
		}
	}
}

func TestUpperEnvelopeAboveLower(t *testing.T) {
	fns := buildRandomFuncs(t, 17, 40, true)
	up, err := UpperEnvelope(fns, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := LowerEnvelope(fns, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range numeric.Linspace(0, 60, 301) {
		if up.ValueAt(tm) < lo.ValueAt(tm)-1e-9 {
			t.Fatalf("upper below lower at t=%g", tm)
		}
	}
}

func TestUpperEnv2(t *testing.T) {
	q := stillTr(t, 100, 0, 0)
	f, _ := NewDistanceFunc(1, lineTr(t, 1, 10, 0, -10, 0), q, 0, 60)
	g, _ := NewDistanceFunc(2, stillTr(t, 2, 5, 0), q, 0, 60)
	ivs := UpperEnv2(f, g, 0, 60)
	// f is larger on [0,15] and [45,60]; g on [15,45].
	want := []Interval{{1, 0, 15}, {2, 15, 45}, {1, 45, 60}}
	if len(ivs) != len(want) {
		t.Fatalf("UpperEnv2 = %v", ivs)
	}
	for i := range want {
		if ivs[i].ID != want[i].ID || math.Abs(ivs[i].T0-want[i].T0) > 1e-9 {
			t.Errorf("interval %d = %+v, want %+v", i, ivs[i], want[i])
		}
	}
	if got := UpperEnv2(f, g, 3, 3); got != nil {
		t.Errorf("degenerate window: %v", got)
	}
}

func TestUpperEnvelopeErrors(t *testing.T) {
	if _, err := UpperEnvelope(nil, 0, 60); err == nil {
		t.Error("nil accepted")
	}
	fns := buildRandomFuncs(t, 2, 3, false)
	if _, err := UpperEnvelope(fns, 4, 4); err == nil {
		t.Error("empty window accepted")
	}
}

func TestGuaranteedNNIntervals(t *testing.T) {
	q := stillTr(t, 100, 0, 0)
	near, _ := NewDistanceFunc(1, stillTr(t, 1, 2, 0), q, 0, 60) // d = 2
	far, _ := NewDistanceFunc(3, stillTr(t, 3, 11, 0), q, 0, 60) // d = 11
	fns := []*DistanceFunc{near, far}
	env, err := LowerEnvelope(fns, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	// r = 1: guaranteed iff 2 + 4 <= 11 → true for the whole window.
	ivs := GuaranteedNNIntervals(fns, 1, env, 1)
	if len(ivs) != 1 || ivs[0].T0 != 0 || ivs[0].T1 != 60 {
		t.Fatalf("near guaranteed = %v", ivs)
	}
	// The far object is never guaranteed.
	if ivs := GuaranteedNNIntervals(fns, 3, env, 1); len(ivs) != 0 {
		t.Fatalf("far guaranteed = %v", ivs)
	}
	// r = 3: 2 + 12 > 11 → no guarantee for anyone.
	if ivs := GuaranteedNNIntervals(fns, 1, env, 3); len(ivs) != 0 {
		t.Fatalf("wide-r guaranteed = %v", ivs)
	}
	// Unknown id and single-function edge cases.
	if ivs := GuaranteedNNIntervals(fns, 77, env, 1); ivs != nil {
		t.Fatalf("unknown id = %v", ivs)
	}
	if ivs := GuaranteedNNIntervals([]*DistanceFunc{near}, 1, env, 1); ivs != nil {
		t.Fatalf("single function = %v", ivs)
	}
}

// TestGuaranteedImpliesPossible: every guaranteed interval lies inside the
// possible-NN (4r zone) intervals.
func TestGuaranteedImpliesPossible(t *testing.T) {
	fns := buildRandomFuncs(t, 71, 30, true)
	env, err := LowerEnvelope(fns, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	const r = 0.5
	for _, f := range fns[:10] {
		guaranteed := GuaranteedNNIntervals(fns, f.ID, env, r)
		possible := BelowIntervals(f, env, 4*r)
		for _, g := range guaranteed {
			mid := 0.5 * (g.T0 + g.T1)
			ok := false
			for _, p := range possible {
				if mid >= p.T0-1e-6 && mid <= p.T1+1e-6 {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("oid %d: guaranteed interval %+v outside possible set %v", f.ID, g, possible)
			}
		}
	}
}
