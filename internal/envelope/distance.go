// Package envelope implements Section 3.2 of the paper: the hyperbolic
// distance functions of difference trajectories, their pairwise lower
// envelope (Env2), the sweep merge of two envelopes (Merge_LE,
// Algorithm 2), the divide-and-conquer construction of the overall lower
// envelope (LE_Alg, Algorithm 1), the O(N² log N) naive baseline used by
// the paper's Figure 11, the 4r pruning zone, and the interval predicates
// that power the query variants of Section 4.
//
// A difference trajectory TR_iq = Tr_i − Tr_q moves linearly per elementary
// time interval, so its distance from the origin is a hyperbola
// d(t) = sqrt(A·t² + B·t + C) with A ≥ 0 on each piece. All computations
// are carried out piecewise, which extends the paper's single-segment
// derivations to trajectories with m segments (its closing remark in
// Section 3.2).
package envelope

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/numeric"
	"repro/internal/trajectory"
)

// TimeEps is the absolute time tolerance used to discard degenerate
// intervals and deduplicate critical time points. Horizons in this module
// are minutes (tens of units), so 1e-9 is ~1e-10 relative.
const TimeEps = 1e-9

// Package errors.
var (
	ErrEmptyWindow = errors.New("envelope: empty time window")
	ErrNoFunctions = errors.New("envelope: no distance functions")
	ErrBadWindow   = errors.New("envelope: window outside trajectory spans")
)

// Piece is one hyperbolic piece of a distance function: on [T0, T1] the
// distance from the origin is sqrt(A·τ² + B·τ + C) with τ = t − Tref.
// Keeping a local time origin keeps the quadratic well-conditioned (the
// paper expands in absolute time; for t ~ thousands that loses precision).
type Piece struct {
	T0, T1  float64
	Tref    float64
	A, B, C float64
}

// ValueSq returns the squared distance at absolute time t.
func (p Piece) ValueSq(t float64) float64 {
	tau := t - p.Tref
	v := p.A*tau*tau + p.B*tau + p.C
	if v < 0 {
		return 0 // guard tiny negative from cancellation
	}
	return v
}

// Value returns the distance at absolute time t.
func (p Piece) Value(t float64) float64 { return math.Sqrt(p.ValueSq(t)) }

// MinimumTime returns the time in [T0, T1] at which the piece attains its
// minimum: the vertex −B/(2A) of the underlying parabola clamped to the
// piece interval (the hyperbola is strictly monotone outside the vertex,
// as the paper notes).
func (p Piece) MinimumTime() float64 {
	if p.A <= 0 {
		// Constant or linear-in-square piece: endpoints only.
		if p.ValueSq(p.T0) <= p.ValueSq(p.T1) {
			return p.T0
		}
		return p.T1
	}
	tm := p.Tref - p.B/(2*p.A)
	if tm < p.T0 {
		return p.T0
	}
	if tm > p.T1 {
		return p.T1
	}
	return tm
}

// DistanceFunc is the distance of a difference trajectory TR_iq from the
// origin as a function of time over a query window: a contiguous sequence
// of hyperbolic pieces.
type DistanceFunc struct {
	ID     int64
	Pieces []Piece
}

// NewDistanceFunc builds the distance function of the difference trajectory
// a − b over the window [tb, te]. Both trajectories must cover the window.
// The window is split at every vertex time of either trajectory, and on
// each elementary interval the relative motion is linear, yielding one
// hyperbolic piece (Section 3.2's construction).
func NewDistanceFunc(id int64, a, b *trajectory.Trajectory, tb, te float64) (*DistanceFunc, error) {
	if err := CheckWindow(a, b, tb, te); err != nil {
		return nil, err
	}
	cuts := append(a.VertexTimesWithin(tb, te), b.VertexTimesWithin(tb, te)...)
	cuts = append(cuts, tb, te)
	sort.Float64s(cuts)
	f := &DistanceFunc{ID: id}
	for i := 1; i < len(cuts); i++ {
		t0, t1 := cuts[i-1], cuts[i]
		if t1-t0 <= TimeEps {
			continue
		}
		pa := a.At(t0).Sub(b.At(t0)) // relative position at t0
		va := a.VelocityAt(t0 + (t1-t0)/2).Sub(b.VelocityAt(t0 + (t1-t0)/2))
		f.Pieces = append(f.Pieces, Piece{
			T0: t0, T1: t1, Tref: t0,
			A: va.LenSq(),
			B: 2 * (pa.X*va.X + pa.Y*va.Y),
			C: pa.LenSq(),
		})
	}
	if len(f.Pieces) == 0 {
		return nil, ErrEmptyWindow
	}
	return f, nil
}

// CheckWindow validates the window preconditions of NewDistanceFunc for the
// pair (a, b): a window of positive measure covered by both trajectories.
// It returns exactly the error NewDistanceFunc would, which lets candidate
// pre-passes that skip function construction for pruned objects still fail
// identically to a full BuildDistanceFuncs run.
func CheckWindow(a, b *trajectory.Trajectory, tb, te float64) error {
	if te-tb <= TimeEps {
		return ErrEmptyWindow
	}
	ab, ae := a.TimeSpan()
	bb, be := b.TimeSpan()
	if tb < ab-TimeEps || te > ae+TimeEps || tb < bb-TimeEps || te > be+TimeEps {
		return fmt.Errorf("%w: [%g, %g] vs a=[%g, %g] b=[%g, %g]", ErrBadWindow, tb, te, ab, ae, bb, be)
	}
	return nil
}

// BuildDistanceFuncs constructs the difference distance functions of every
// trajectory in trs (except the query trajectory q itself, matched by OID)
// relative to q, over [tb, te].
func BuildDistanceFuncs(trs []*trajectory.Trajectory, q *trajectory.Trajectory, tb, te float64) ([]*DistanceFunc, error) {
	out := make([]*DistanceFunc, 0, len(trs))
	for _, tr := range trs {
		if tr.OID == q.OID {
			continue
		}
		f, err := NewDistanceFunc(tr.OID, tr, q, tb, te)
		if err != nil {
			return nil, fmt.Errorf("oid %d: %w", tr.OID, err)
		}
		out = append(out, f)
	}
	return out, nil
}

// Span returns the time window covered by the function.
func (f *DistanceFunc) Span() (t0, t1 float64) {
	return f.Pieces[0].T0, f.Pieces[len(f.Pieces)-1].T1
}

// pieceAt returns the piece active at time t (clamped to the span).
func (f *DistanceFunc) pieceAt(t float64) Piece {
	n := len(f.Pieces)
	if t <= f.Pieces[0].T0 {
		return f.Pieces[0]
	}
	if t >= f.Pieces[n-1].T1 {
		return f.Pieces[n-1]
	}
	i := sort.Search(n, func(k int) bool { return f.Pieces[k].T1 >= t })
	if i == n {
		i = n - 1
	}
	return f.Pieces[i]
}

// Value returns the distance at time t.
func (f *DistanceFunc) Value(t float64) float64 { return f.pieceAt(t).Value(t) }

// ValueSq returns the squared distance at time t.
func (f *DistanceFunc) ValueSq(t float64) float64 { return f.pieceAt(t).ValueSq(t) }

// Breakpoints returns the piece boundary times, including the window ends.
func (f *DistanceFunc) Breakpoints() []float64 {
	out := make([]float64, 0, len(f.Pieces)+1)
	out = append(out, f.Pieces[0].T0)
	for _, p := range f.Pieces {
		out = append(out, p.T1)
	}
	return out
}

// GlobalMinimum returns the time and value of the function's minimum over
// its span (checking each piece's vertex).
func (f *DistanceFunc) GlobalMinimum() (t, v float64) {
	t = f.Pieces[0].T0
	v = math.Inf(1)
	for _, p := range f.Pieces {
		tm := p.MinimumTime()
		if val := p.Value(tm); val < v {
			v = val
			t = tm
		}
	}
	return t, v
}

// Intersections returns the times in (lo, hi) at which f and g cross,
// sorted ascending and deduplicated within TimeEps. Tangency points (double
// roots) are reported once. Identical pieces (the same quadratic) produce
// no crossing — equal functions never generate critical points, matching
// the ⊎-concatenation semantics.
//
// Two single-piece hyperbolae cross at most twice (Davenport-Schinzel
// s = 2); piecewise functions cross at most twice per overlapping piece
// pair.
func Intersections(f, g *DistanceFunc, lo, hi float64) []float64 {
	var out []float64
	for _, pf := range f.Pieces {
		if pf.T1 <= lo || pf.T0 >= hi {
			continue
		}
		for _, pg := range g.Pieces {
			l := math.Max(math.Max(pf.T0, pg.T0), lo)
			h := math.Min(math.Min(pf.T1, pg.T1), hi)
			if h-l <= TimeEps {
				continue
			}
			// d_f²(t) = d_g²(t): quadratic in absolute t. Expand both local
			// parameterizations.
			a := pf.A - pg.A
			b := (pf.B - 2*pf.A*pf.Tref) - (pg.B - 2*pg.A*pg.Tref)
			c := (pf.A*pf.Tref*pf.Tref - pf.B*pf.Tref + pf.C) -
				(pg.A*pg.Tref*pg.Tref - pg.B*pg.Tref + pg.C)
			for _, r := range numeric.QuadRoots(a, b, c) {
				if r > l+TimeEps && r < h-TimeEps {
					out = append(out, r)
				}
			}
		}
	}
	sort.Float64s(out)
	return dedupTimes(out)
}

func dedupTimes(ts []float64) []float64 {
	if len(ts) < 2 {
		return ts
	}
	out := ts[:1]
	for _, t := range ts[1:] {
		if t-out[len(out)-1] > TimeEps {
			out = append(out, t)
		}
	}
	return out
}
