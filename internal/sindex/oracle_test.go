package sindex

import (
	"math"
	"math/rand"
	"slices"
	"testing"

	"repro/internal/geom"
)

// This file deepens the brute-force-oracle coverage of the two indexes the
// R-tree tests already exercise heavily: Grid.SearchRange (multi-cell
// spanning, duplicate per-segment IDs, degenerate resolutions) and
// TPRTree.KNNAt (staggered validity windows, k exceeding the alive count).

// randSegmentEntries produces entries in the per-segment style the MOD
// store indexes with: several entries share one ID, each with its own box
// and time slice.
func randSegmentEntries(rng *rand.Rand, objects, segsPer int) []Entry {
	var es []Entry
	for id := 0; id < objects; id++ {
		t := rng.Float64() * 10
		for s := 0; s < segsPer; s++ {
			x := rng.Float64() * 40
			y := rng.Float64() * 40
			dt := 1 + rng.Float64()*10
			es = append(es, Entry{
				ID:  int64(id),
				Box: geom.AABB{MinX: x, MinY: y, MaxX: x + rng.Float64()*3, MaxY: y + rng.Float64()*3},
				T0:  t,
				T1:  t + dt,
			})
			t += dt
		}
	}
	return es
}

// linearRangeDedup is the Grid.SearchRange oracle: deduplicated sorted IDs
// of entries overlapping the window.
func linearRangeDedup(es []Entry, box geom.AABB, t0, t1 float64) []int64 {
	seen := make(map[int64]bool)
	var out []int64
	for _, e := range es {
		if !seen[e.ID] && e.overlaps(box, t0, t1) {
			seen[e.ID] = true
			out = append(out, e.ID)
		}
	}
	slices.Sort(out)
	return out
}

func TestGridSearchRangeOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	region := geom.AABB{MinX: 0, MinY: 0, MaxX: 40, MaxY: 40}
	es := randSegmentEntries(rng, 300, 4)
	for _, dims := range [][2]int{{1, 1}, {3, 7}, {20, 20}} {
		g := NewGrid(region, dims[0], dims[1])
		for _, e := range es {
			g.Insert(e)
		}
		if g.Len() != len(es) {
			t.Fatalf("%dx%d: Len = %d, want %d", dims[0], dims[1], g.Len(), len(es))
		}
		for q := 0; q < 30; q++ {
			// Mix wide boxes (spanning many cells), thin slivers, and
			// boxes hanging off the region edge.
			x := rng.Float64()*50 - 5
			y := rng.Float64()*50 - 5
			w := rng.Float64() * 20
			h := rng.Float64() * 20
			if q%3 == 0 {
				h = rng.Float64() * 0.01 // sliver
			}
			box := geom.AABB{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}
			t0 := rng.Float64() * 50
			t1 := t0 + rng.Float64()*20
			got := g.SearchRange(box, t0, t1)
			want := linearRangeDedup(es, box, t0, t1)
			if !slices.Equal(got, want) {
				t.Fatalf("%dx%d q=%d: got %d ids, want %d ids", dims[0], dims[1], q, len(got), len(want))
			}
		}
	}
}

func TestGridSearchRangeDedupesSegments(t *testing.T) {
	region := geom.AABB{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	g := NewGrid(region, 4, 4)
	// One object, three segments, all overlapping the query box.
	for i := 0; i < 3; i++ {
		g.Insert(Entry{
			ID:  9,
			Box: geom.AABB{MinX: float64(i), MinY: 0, MaxX: float64(i) + 2, MaxY: 2},
			T0:  float64(i), T1: float64(i) + 2,
		})
	}
	got := g.SearchRange(geom.AABB{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, 0, 10)
	if len(got) != 1 || got[0] != 9 {
		t.Fatalf("expected single deduped ID, got %v", got)
	}
}

// randStaggeredMoving produces moving entries whose validity windows only
// cover part of the horizon, so time filtering decides KNN answers.
func randStaggeredMoving(rng *rand.Rand, n int) []MovingEntry {
	es := make([]MovingEntry, n)
	for i := range es {
		t0 := rng.Float64() * 50
		es[i] = MovingEntry{
			ID: int64(i),
			P:  geom.Point{X: rng.Float64() * 40, Y: rng.Float64() * 40},
			V:  geom.Vec{X: (rng.Float64() - 0.5) * 2, Y: (rng.Float64() - 0.5) * 2},
			T0: t0,
			T1: t0 + rng.Float64()*15,
		}
	}
	return es
}

func TestTPRKNNAtValidityOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for _, n := range []int{1, 25, 400} {
		es := randStaggeredMoving(rng, n)
		tr := NewTPRTree(es, 0, 8)
		for q := 0; q < 30; q++ {
			tq := rng.Float64() * 65
			p := geom.Point{X: rng.Float64() * 40, Y: rng.Float64() * 40}
			k := 1 + rng.Intn(2*n)
			got := tr.KNNAt(p, tq, k)
			var alive []float64
			for _, e := range es {
				if tq >= e.T0 && tq <= e.T1 {
					alive = append(alive, e.At(tq).Dist(p))
				}
			}
			slices.Sort(alive)
			wantLen := min(k, len(alive))
			if len(got) != wantLen {
				t.Fatalf("n=%d q=%d: got %d results, want %d (alive %d, k %d)",
					n, q, len(got), wantLen, len(alive), k)
			}
			for i, nb := range got {
				if math.Abs(nb.Dist-alive[i]) > 1e-9 {
					t.Fatalf("n=%d q=%d result %d: dist %g, oracle %g", n, q, i, nb.Dist, alive[i])
				}
				if i > 0 && nb.Dist < got[i-1].Dist {
					t.Fatalf("n=%d q=%d: distances not nondecreasing", n, q)
				}
				// The reported entry must actually be valid at tq.
				e := es[nb.ID]
				if tq < e.T0 || tq > e.T1 {
					t.Fatalf("n=%d q=%d: entry %d invalid at %g", n, q, nb.ID, tq)
				}
			}
		}
	}
}

func TestTPRKNNAtOutsideHorizon(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	es := randStaggeredMoving(rng, 50)
	tr := NewTPRTree(es, 0, 8)
	if got := tr.KNNAt(geom.Point{X: 20, Y: 20}, 1e6, 5); got != nil {
		t.Fatalf("query beyond every validity window returned %v", got)
	}
}
