package sindex

import "repro/internal/geom"

// Leaf exposes one leaf cell of a packed R-tree: the cell's merged
// bounding box and time span plus the entries packed into it. The entries
// slice aliases the tree's own storage — trees are immutable once built,
// so callers may hold it but must not modify it.
type Leaf struct {
	Box     geom.AABB
	T0, T1  float64
	Entries []Entry
}

// Leaves returns the tree's leaf cells in packing order. Secondary
// structures keyed to the tree's cells (such as per-cell inverted tag
// lists) are built from this view; it is a linear walk, O(n/fanout)
// cells for n entries.
func (t *RTree) Leaves() []Leaf {
	if t == nil || t.root == nil {
		return nil
	}
	out := make([]Leaf, 0, (t.count+t.fanout-1)/t.fanout)
	var walk func(nd *node)
	walk = func(nd *node) {
		if nd.children == nil {
			out = append(out, Leaf{Box: nd.box, T0: nd.t0, T1: nd.t1, Entries: nd.entries})
			return
		}
		for _, c := range nd.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}
