package sindex

import (
	"cmp"
	"math"
	"slices"

	"repro/internal/geom"
)

// This file adds incremental (persistent, path-copying) insertion to the
// two bulk-loaded trees. Both trees are immutable once built — the query
// path holds bare pointers into them from many goroutines — so a live
// ingest cannot mutate nodes in place. Inserted instead returns a NEW tree
// that shares every untouched node with the original and copies only the
// O(height) nodes along each insertion path (plus split siblings). Readers
// of the old tree keep a consistent snapshot; the store swaps its cached
// pointer under its index mutex. Packing quality degrades slowly compared
// to a fresh STR build, but per-update cost is O(height · fanout) instead
// of the O(n log n) rebuild the cache previously paid on every mutation.

// Inserted returns a tree containing the receiver's entries plus es. The
// receiver is not modified; unaffected subtrees are shared. A nil or empty
// receiver bulk-loads es instead.
func (t *RTree) Inserted(es ...Entry) *RTree {
	if len(es) == 0 {
		return t
	}
	if t == nil || t.root == nil {
		fan := DefaultFanout
		if t != nil && t.fanout > 0 {
			fan = t.fanout
		}
		return NewRTree(es, fan)
	}
	nt := &RTree{root: t.root, height: t.height, count: t.count, fanout: t.fanout}
	for _, e := range es {
		n1, n2 := insertNode(nt.root, e, nt.fanout)
		if n2 != nil {
			root := &node{children: []*node{n1, n2}}
			root.recompute()
			nt.root = root
			nt.height++
		} else {
			nt.root = n1
		}
		nt.count++
	}
	return nt
}

// insertNode inserts e below nd, copying the path. It returns the replaced
// node and, when the node overflowed, a split sibling.
func insertNode(nd *node, e Entry, fanout int) (*node, *node) {
	if nd.children == nil {
		ents := make([]Entry, len(nd.entries), len(nd.entries)+1)
		copy(ents, nd.entries)
		ents = append(ents, e)
		if len(ents) <= fanout {
			leaf := &node{entries: ents}
			leaf.recompute()
			return leaf, nil
		}
		a, b := splitSlice(ents, func(en Entry) geom.Point { return en.Box.Center() })
		la, lb := &node{entries: a}, &node{entries: b}
		la.recompute()
		lb.recompute()
		return la, lb
	}
	best := chooseSubtree(nd.children, e.Box)
	c1, c2 := insertNode(nd.children[best], e, fanout)
	kids := make([]*node, len(nd.children), len(nd.children)+1)
	copy(kids, nd.children)
	kids[best] = c1
	if c2 != nil {
		kids = append(kids, c2)
	}
	if len(kids) <= fanout {
		p := &node{children: kids}
		p.recompute()
		return p, nil
	}
	a, b := splitSlice(kids, func(c *node) geom.Point { return c.box.Center() })
	pa, pb := &node{children: a}, &node{children: b}
	pa.recompute()
	pb.recompute()
	return pa, pb
}

// chooseSubtree picks the child whose box grows least (by area) to admit
// box — Guttman's ChooseLeaf criterion, with area as the tie-breaker.
func chooseSubtree(children []*node, box geom.AABB) int {
	best, bestGrow, bestArea := 0, math.Inf(1), math.Inf(1)
	for i, c := range children {
		area := c.box.Area()
		grow := c.box.Union(box).Area() - area
		if grow < bestGrow || (grow == bestGrow && area < bestArea) {
			best, bestGrow, bestArea = i, grow, area
		}
	}
	return best
}

// splitSlice halves an overflowing slice along the axis with the larger
// center spread — cheap, and it keeps both halves spatially coherent,
// which is all the sweep queries need from an overflow split.
func splitSlice[T any](items []T, center func(T) geom.Point) ([]T, []T) {
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, it := range items {
		c := center(it)
		minX, maxX = math.Min(minX, c.X), math.Max(maxX, c.X)
		minY, maxY = math.Min(minY, c.Y), math.Max(maxY, c.Y)
	}
	byY := maxY-minY > maxX-minX
	slices.SortStableFunc(items, func(a, b T) int {
		ca, cb := center(a), center(b)
		if byY {
			return cmp.Compare(ca.Y, cb.Y)
		}
		return cmp.Compare(ca.X, cb.X)
	})
	mid := len(items) / 2
	return items[:mid:mid], items[mid:]
}

// Inserted returns a TPR tree containing the receiver's entries plus es,
// sharing untouched nodes with the receiver — the live-ingest path that
// extends predictive coverage without a rebuild. A nil or empty receiver
// bulk-loads es at the receiver's reference time.
func (t *TPRTree) Inserted(es ...MovingEntry) *TPRTree {
	if len(es) == 0 {
		return t
	}
	if t == nil || t.root == nil {
		fan, ref := DefaultFanout, 0.0
		if t != nil {
			if t.fanout > 0 {
				fan = t.fanout
			}
			ref = t.refT
		}
		return NewTPRTree(es, ref, fan)
	}
	nt := &TPRTree{root: t.root, count: t.count, fanout: t.fanout, refT: t.refT}
	for _, e := range es {
		n1, n2 := insertTPRNode(nt.root, e, nt.fanout, nt.refT)
		if n2 != nil {
			root := &tprNode{children: []*tprNode{n1, n2}, refT: nt.refT}
			root.recomputeTPR()
			nt.root = root
		} else {
			nt.root = n1
		}
		nt.count++
	}
	return nt
}

func insertTPRNode(nd *tprNode, e MovingEntry, fanout int, refT float64) (*tprNode, *tprNode) {
	if nd.children == nil {
		ents := make([]MovingEntry, len(nd.entries), len(nd.entries)+1)
		copy(ents, nd.entries)
		ents = append(ents, e)
		if len(ents) <= fanout {
			leaf := &tprNode{entries: ents, refT: refT}
			leaf.recomputeTPR()
			return leaf, nil
		}
		a, b := splitSlice(ents, func(en MovingEntry) geom.Point { return en.At(refT) })
		la, lb := &tprNode{entries: a, refT: refT}, &tprNode{entries: b, refT: refT}
		la.recomputeTPR()
		lb.recomputeTPR()
		return la, lb
	}
	best, bestGrow, bestArea := 0, math.Inf(1), math.Inf(1)
	ebox := geom.AABBOf(e.At(refT))
	for i, c := range nd.children {
		area := c.box.Area()
		grow := c.box.Union(ebox).Area() - area
		if grow < bestGrow || (grow == bestGrow && area < bestArea) {
			best, bestGrow, bestArea = i, grow, area
		}
	}
	c1, c2 := insertTPRNode(nd.children[best], e, fanout, refT)
	kids := make([]*tprNode, len(nd.children), len(nd.children)+1)
	copy(kids, nd.children)
	kids[best] = c1
	if c2 != nil {
		kids = append(kids, c2)
	}
	if len(kids) <= fanout {
		p := &tprNode{children: kids, refT: refT}
		p.recomputeTPR()
		return p, nil
	}
	a, b := splitSlice(kids, func(c *tprNode) geom.Point { return c.box.Center() })
	pa, pb := &tprNode{children: a, refT: refT}, &tprNode{children: b, refT: refT}
	pa.recomputeTPR()
	pb.recomputeTPR()
	return pa, pb
}

// SearchInterval returns the IDs of entries whose swept position over
// [t0, t1] ∩ [entry validity] can intersect box, sorted (IDs may repeat
// across entries; callers dedupe). The node test unions the
// time-parameterized box at the interval ends (and at refT when the
// interval straddles it — the TPR edges are piecewise linear in t with a
// knee at refT, so the union of the extreme boxes contains every
// intermediate box); the entry test uses the exact axis-aligned box of the
// entry's linear sweep over the overlap. Both are conservative, which is
// what the prune sweep needs: no object whose expected position enters the
// query box during the interval is ever missed.
func (t *TPRTree) SearchInterval(box geom.AABB, t0, t1 float64) []int64 {
	if t.root == nil || t1 < t0 {
		return nil
	}
	var out []int64
	var walk func(n *tprNode)
	walk = func(n *tprNode) {
		if t1 < n.t0 || t0 > n.t1 {
			return
		}
		nb := n.boxAt(t0).Union(n.boxAt(t1))
		if t0 < n.refT && n.refT < t1 {
			nb = nb.Union(n.box)
		}
		if !nb.Intersects(box) {
			return
		}
		for i := range n.entries {
			e := &n.entries[i]
			a, b := math.Max(t0, e.T0), math.Min(t1, e.T1)
			if b < a {
				continue
			}
			if geom.AABBOf(e.At(a), e.At(b)).Intersects(box) {
				out = append(out, e.ID)
			}
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	slices.Sort(out)
	return out
}
