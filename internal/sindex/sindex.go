// Package sindex provides the spatial-index substrate for the MOD store:
// an STR (Sort-Tile-Recursive) bulk-loaded R-tree over spatio-temporal
// entries (a 2D box plus a time interval) and a uniform grid index. Both
// support range search over (box, time window) and the R-tree additionally
// supports best-first k-nearest-neighbor search by box distance at a time
// instant.
//
// The paper itself does not prescribe an index (its algorithms operate on a
// candidate set), but a MOD serving the paper's Category 3/4 queries needs
// one to collect the trajectories relevant to a query window; this package
// is that substrate.
package sindex

import (
	"cmp"
	"container/heap"
	"errors"
	"math"
	"slices"

	"repro/internal/geom"
)

// DefaultFanout is the R-tree node capacity used when NewRTree receives a
// non-positive fanout.
const DefaultFanout = 16

// ErrEmpty is returned by queries on an index with no entries.
var ErrEmpty = errors.New("sindex: empty index")

// Entry is one indexed item: an opaque ID (typically a trajectory OID or a
// segment handle), its spatial bounding box, and its time interval.
type Entry struct {
	ID     int64
	Box    geom.AABB
	T0, T1 float64
}

// overlaps reports whether the entry intersects the query window.
func (e Entry) overlaps(box geom.AABB, t0, t1 float64) bool {
	return e.T1 >= t0 && e.T0 <= t1 && e.Box.Intersects(box)
}

// RTree is an immutable STR-packed R-tree. Build once with NewRTree; for
// bulk-dynamic workloads rebuild (bulk loading is fast: O(n log n)), and
// for append-heavy live ingest derive updated trees with Inserted, which
// shares all untouched nodes with the original (see dyn.go).
type RTree struct {
	root   *node
	height int
	count  int
	fanout int
}

type node struct {
	box      geom.AABB
	t0, t1   float64
	children []*node // nil for leaves
	entries  []Entry // nil for internal nodes
}

// NewRTree bulk-loads the entries with the STR algorithm. The entries
// slice is copied. fanout <= 0 selects DefaultFanout.
func NewRTree(entries []Entry, fanout int) *RTree {
	if fanout <= 0 {
		fanout = DefaultFanout
	}
	t := &RTree{count: len(entries), fanout: fanout}
	if len(entries) == 0 {
		return t
	}
	es := append([]Entry(nil), entries...)
	leaves := strPack(es, fanout)
	level := leaves
	height := 1
	for len(level) > 1 {
		level = packNodes(level, fanout)
		height++
	}
	t.root = level[0]
	t.height = height
	return t
}

// strPack tiles entries into leaves: sort by center X, slice into vertical
// strips of sqrt(n/fanout) · fanout entries, sort each strip by center Y,
// and cut runs of fanout.
func strPack(es []Entry, fanout int) []*node {
	n := len(es)
	leafCount := (n + fanout - 1) / fanout
	sliceCount := int(math.Ceil(math.Sqrt(float64(leafCount))))
	sliceSize := sliceCount * fanout
	slices.SortFunc(es, func(a, b Entry) int {
		return cmp.Compare(a.Box.Center().X, b.Box.Center().X)
	})
	var leaves []*node
	for s := 0; s < n; s += sliceSize {
		end := s + sliceSize
		if end > n {
			end = n
		}
		strip := es[s:end]
		slices.SortFunc(strip, func(a, b Entry) int {
			return cmp.Compare(a.Box.Center().Y, b.Box.Center().Y)
		})
		for i := 0; i < len(strip); i += fanout {
			j := i + fanout
			if j > len(strip) {
				j = len(strip)
			}
			leaf := &node{entries: strip[i:j:j]}
			leaf.recompute()
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

func packNodes(level []*node, fanout int) []*node {
	slices.SortFunc(level, func(a, b *node) int {
		return cmp.Compare(a.box.Center().X, b.box.Center().X)
	})
	n := len(level)
	parentCount := (n + fanout - 1) / fanout
	sliceCount := int(math.Ceil(math.Sqrt(float64(parentCount))))
	sliceSize := sliceCount * fanout
	var parents []*node
	for s := 0; s < n; s += sliceSize {
		end := s + sliceSize
		if end > n {
			end = n
		}
		strip := level[s:end]
		slices.SortFunc(strip, func(a, b *node) int {
			return cmp.Compare(a.box.Center().Y, b.box.Center().Y)
		})
		for i := 0; i < len(strip); i += fanout {
			j := i + fanout
			if j > len(strip) {
				j = len(strip)
			}
			p := &node{children: strip[i:j:j]}
			p.recompute()
			parents = append(parents, p)
		}
	}
	return parents
}

func (nd *node) recompute() {
	nd.box = geom.EmptyAABB()
	nd.t0, nd.t1 = math.Inf(1), math.Inf(-1)
	for _, e := range nd.entries {
		nd.box = nd.box.Union(e.Box)
		nd.t0 = math.Min(nd.t0, e.T0)
		nd.t1 = math.Max(nd.t1, e.T1)
	}
	for _, c := range nd.children {
		nd.box = nd.box.Union(c.box)
		nd.t0 = math.Min(nd.t0, c.t0)
		nd.t1 = math.Max(nd.t1, c.t1)
	}
}

// Len returns the number of entries in the tree.
func (t *RTree) Len() int { return t.count }

// Height returns the number of levels (0 for an empty tree).
func (t *RTree) Height() int { return t.height }

// SearchRange returns the IDs of all entries whose box intersects `box`
// and whose time interval intersects [t0, t1]. IDs may repeat if the same
// ID was inserted with several entries (e.g. one per segment); callers
// dedupe as needed.
func (t *RTree) SearchRange(box geom.AABB, t0, t1 float64) []int64 {
	if t.root == nil {
		return nil
	}
	var out []int64
	var walk func(nd *node)
	walk = func(nd *node) {
		if nd.t1 < t0 || nd.t0 > t1 || !nd.box.Intersects(box) {
			return
		}
		for _, e := range nd.entries {
			if e.overlaps(box, t0, t1) {
				out = append(out, e.ID)
			}
		}
		for _, c := range nd.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// Neighbor is one kNN result: an entry ID and its box distance from the
// query point.
type Neighbor struct {
	ID   int64
	Dist float64
}

// knnItem is a best-first queue element: either a node or a concrete entry.
type knnItem struct {
	dist  float64
	nd    *node
	entry *Entry
}

type knnQueue []knnItem

func (q knnQueue) Len() int            { return len(q) }
func (q knnQueue) Less(a, b int) bool  { return q[a].dist < q[b].dist }
func (q knnQueue) Swap(a, b int)       { q[a], q[b] = q[b], q[a] }
func (q *knnQueue) Push(x interface{}) { *q = append(*q, x.(knnItem)) }
func (q *knnQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// KNN returns up to k entries with the smallest box distance to p among
// entries whose time interval contains t, in ascending distance order
// (best-first search with a priority queue, after Hjaltason & Samet's
// distance browsing, which the paper cites as [10]). Duplicate IDs are
// collapsed, keeping the nearest.
func (t *RTree) KNN(p geom.Point, tAt float64, k int) []Neighbor {
	if t.root == nil || k <= 0 {
		return nil
	}
	q := &knnQueue{{dist: t.root.box.MinDistTo(p), nd: t.root}}
	heap.Init(q)
	seen := make(map[int64]bool)
	var out []Neighbor
	for q.Len() > 0 && len(out) < k {
		it := heap.Pop(q).(knnItem)
		switch {
		case it.entry != nil:
			if !seen[it.entry.ID] {
				seen[it.entry.ID] = true
				out = append(out, Neighbor{ID: it.entry.ID, Dist: it.dist})
			}
		default:
			nd := it.nd
			if nd.t1 < tAt || nd.t0 > tAt {
				continue
			}
			for i := range nd.entries {
				e := &nd.entries[i]
				if e.T0 <= tAt && tAt <= e.T1 {
					heap.Push(q, knnItem{dist: e.Box.MinDistTo(p), entry: e})
				}
			}
			for _, c := range nd.children {
				if c.t0 <= tAt && tAt <= c.t1 {
					heap.Push(q, knnItem{dist: c.box.MinDistTo(p), nd: c})
				}
			}
		}
	}
	return out
}

// Grid is a uniform spatial hash over a fixed region: a simple baseline
// index used to cross-check the R-tree and for workloads with uniformly
// spread objects (like the paper's random waypoint population).
type Grid struct {
	region geom.AABB
	nx, ny int
	cells  [][]Entry
	count  int
}

// NewGrid creates an nx × ny grid over region. Entries outside the region
// are clamped into the border cells.
func NewGrid(region geom.AABB, nx, ny int) *Grid {
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	return &Grid{region: region, nx: nx, ny: ny, cells: make([][]Entry, nx*ny)}
}

func (g *Grid) cellRange(box geom.AABB) (ix0, iy0, ix1, iy1 int) {
	w := (g.region.MaxX - g.region.MinX) / float64(g.nx)
	h := (g.region.MaxY - g.region.MinY) / float64(g.ny)
	clampI := func(v, n int) int {
		if v < 0 {
			return 0
		}
		if v >= n {
			return n - 1
		}
		return v
	}
	ix0 = clampI(int((box.MinX-g.region.MinX)/w), g.nx)
	ix1 = clampI(int((box.MaxX-g.region.MinX)/w), g.nx)
	iy0 = clampI(int((box.MinY-g.region.MinY)/h), g.ny)
	iy1 = clampI(int((box.MaxY-g.region.MinY)/h), g.ny)
	return
}

// Insert adds an entry to every cell its box overlaps.
func (g *Grid) Insert(e Entry) {
	ix0, iy0, ix1, iy1 := g.cellRange(e.Box)
	for ix := ix0; ix <= ix1; ix++ {
		for iy := iy0; iy <= iy1; iy++ {
			idx := iy*g.nx + ix
			g.cells[idx] = append(g.cells[idx], e)
		}
	}
	g.count++
}

// Len returns the number of inserted entries.
func (g *Grid) Len() int { return g.count }

// SearchRange returns the IDs of entries intersecting the window, deduped.
func (g *Grid) SearchRange(box geom.AABB, t0, t1 float64) []int64 {
	ix0, iy0, ix1, iy1 := g.cellRange(box)
	seen := make(map[int64]bool)
	var out []int64
	for ix := ix0; ix <= ix1; ix++ {
		for iy := iy0; iy <= iy1; iy++ {
			for _, e := range g.cells[iy*g.nx+ix] {
				if !seen[e.ID] && e.overlaps(box, t0, t1) {
					seen[e.ID] = true
					out = append(out, e.ID)
				}
			}
		}
	}
	slices.Sort(out)
	return out
}
