package sindex

import (
	"cmp"
	"container/heap"
	"math"
	"slices"

	"repro/internal/geom"
)

// This file provides a TPR-tree-style index (Tao & Papadias / Šaltenis et
// al., the paper's related-work citations [33, 34]): entries are *moving*
// points with a validity interval, and nodes store time-parameterized
// bounding rectangles — a box at reference time plus velocity bounds — so
// range and NN queries can be answered at any time inside the horizon
// without rebuilding. The paper's own algorithms do not need it, but a MOD
// that serves many query windows does, and the related work benchmarks
// against it.

// MovingEntry is one indexed moving point: position at time T0, constant
// velocity, valid during [T0, T1].
type MovingEntry struct {
	ID     int64
	P      geom.Point // position at T0
	V      geom.Vec   // velocity (distance units per time unit)
	T0, T1 float64
}

// At returns the entry's position at time t (clamped to its validity).
func (e MovingEntry) At(t float64) geom.Point {
	if t < e.T0 {
		t = e.T0
	}
	if t > e.T1 {
		t = e.T1
	}
	dt := t - e.T0
	return geom.Point{X: e.P.X + e.V.X*dt, Y: e.P.Y + e.V.Y*dt}
}

// tprNode is a node with a time-parameterized bounding rectangle: box is
// the bound at refT, and the velocity bounds expand it linearly.
type tprNode struct {
	box          geom.AABB // at refT
	vMinX, vMaxX float64
	vMinY, vMaxY float64
	refT, t0, t1 float64
	children     []*tprNode
	entries      []MovingEntry
}

// boxAt returns the node's bounding box at time t (conservative: boxes
// only grow forward from refT; queries before refT use the refT box
// expanded backwards by the velocity bounds).
func (n *tprNode) boxAt(t float64) geom.AABB {
	dt := t - n.refT
	if dt >= 0 {
		return geom.AABB{
			MinX: n.box.MinX + n.vMinX*dt, MinY: n.box.MinY + n.vMinY*dt,
			MaxX: n.box.MaxX + n.vMaxX*dt, MaxY: n.box.MaxY + n.vMaxY*dt,
		}
	}
	return geom.AABB{
		MinX: n.box.MinX + n.vMaxX*dt, MinY: n.box.MinY + n.vMaxY*dt,
		MaxX: n.box.MaxX + n.vMinX*dt, MaxY: n.box.MaxY + n.vMinY*dt,
	}
}

// TPRTree is a bulk-loaded time-parameterized R-tree over moving points.
// Like RTree it is immutable; Inserted (dyn.go) derives an updated tree
// sharing all untouched nodes, which is how live ingest extends predictive
// coverage without a rebuild.
type TPRTree struct {
	root   *tprNode
	count  int
	fanout int
	refT   float64
}

// NewTPRTree bulk-loads the entries (STR on positions at the common
// reference time refT). fanout <= 0 selects DefaultFanout.
func NewTPRTree(entries []MovingEntry, refT float64, fanout int) *TPRTree {
	if fanout <= 0 {
		fanout = DefaultFanout
	}
	t := &TPRTree{count: len(entries), fanout: fanout, refT: refT}
	if len(entries) == 0 {
		return t
	}
	es := append([]MovingEntry(nil), entries...)
	slices.SortFunc(es, func(a, b MovingEntry) int { return cmp.Compare(a.At(refT).X, b.At(refT).X) })
	leafCount := (len(es) + fanout - 1) / fanout
	sliceCount := int(math.Ceil(math.Sqrt(float64(leafCount))))
	sliceSize := sliceCount * fanout
	var leaves []*tprNode
	for s := 0; s < len(es); s += sliceSize {
		end := s + sliceSize
		if end > len(es) {
			end = len(es)
		}
		strip := es[s:end]
		slices.SortFunc(strip, func(a, b MovingEntry) int { return cmp.Compare(a.At(refT).Y, b.At(refT).Y) })
		for i := 0; i < len(strip); i += fanout {
			j := i + fanout
			if j > len(strip) {
				j = len(strip)
			}
			leaf := &tprNode{entries: strip[i:j:j], refT: refT}
			leaf.recomputeTPR()
			leaves = append(leaves, leaf)
		}
	}
	level := leaves
	for len(level) > 1 {
		slices.SortFunc(level, func(a, b *tprNode) int { return cmp.Compare(a.box.Center().X, b.box.Center().X) })
		n := len(level)
		parentCount := (n + fanout - 1) / fanout
		sc := int(math.Ceil(math.Sqrt(float64(parentCount))))
		ss := sc * fanout
		var parents []*tprNode
		for s := 0; s < n; s += ss {
			end := s + ss
			if end > n {
				end = n
			}
			strip := level[s:end]
			slices.SortFunc(strip, func(a, b *tprNode) int { return cmp.Compare(a.box.Center().Y, b.box.Center().Y) })
			for i := 0; i < len(strip); i += fanout {
				j := i + fanout
				if j > len(strip) {
					j = len(strip)
				}
				p := &tprNode{children: strip[i:j:j], refT: refT}
				p.recomputeTPR()
				parents = append(parents, p)
			}
		}
		level = parents
	}
	t.root = level[0]
	return t
}

func (n *tprNode) recomputeTPR() {
	n.box = geom.EmptyAABB()
	n.vMinX, n.vMinY = math.Inf(1), math.Inf(1)
	n.vMaxX, n.vMaxY = math.Inf(-1), math.Inf(-1)
	n.t0, n.t1 = math.Inf(1), math.Inf(-1)
	for _, e := range n.entries {
		n.box = n.box.ExtendPoint(e.At(n.refT))
		vxLo, vxHi := e.V.X, e.V.X
		vyLo, vyHi := e.V.Y, e.V.Y
		if e.T0 > n.refT || e.T1 < n.refT {
			// The entry is clamped at an endpoint position outside its
			// validity window, so between refT and a query time inside the
			// window it moves for only part of the elapsed span: its
			// effective velocity lies between 0 and V componentwise, and
			// the node bounds must include 0 to keep boxAt conservative.
			vxLo, vxHi = math.Min(vxLo, 0), math.Max(vxHi, 0)
			vyLo, vyHi = math.Min(vyLo, 0), math.Max(vyHi, 0)
		}
		n.vMinX = math.Min(n.vMinX, vxLo)
		n.vMaxX = math.Max(n.vMaxX, vxHi)
		n.vMinY = math.Min(n.vMinY, vyLo)
		n.vMaxY = math.Max(n.vMaxY, vyHi)
		n.t0 = math.Min(n.t0, e.T0)
		n.t1 = math.Max(n.t1, e.T1)
	}
	for _, c := range n.children {
		n.box = n.box.Union(c.box)
		n.vMinX = math.Min(n.vMinX, c.vMinX)
		n.vMaxX = math.Max(n.vMaxX, c.vMaxX)
		n.vMinY = math.Min(n.vMinY, c.vMinY)
		n.vMaxY = math.Max(n.vMaxY, c.vMaxY)
		n.t0 = math.Min(n.t0, c.t0)
		n.t1 = math.Max(n.t1, c.t1)
	}
}

// Len returns the number of entries.
func (t *TPRTree) Len() int { return t.count }

// SearchAt returns the IDs of entries whose position at time tq lies in
// box, among entries valid at tq.
func (t *TPRTree) SearchAt(box geom.AABB, tq float64) []int64 {
	if t.root == nil {
		return nil
	}
	var out []int64
	var walk func(n *tprNode)
	walk = func(n *tprNode) {
		if tq < n.t0 || tq > n.t1 || !n.boxAt(tq).Intersects(box) {
			return
		}
		for _, e := range n.entries {
			if tq >= e.T0 && tq <= e.T1 && box.ContainsPoint(e.At(tq)) {
				out = append(out, e.ID)
			}
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	slices.Sort(out)
	return out
}

// KNNAt returns the k nearest entries to p at time tq, best-first over the
// time-parameterized boxes. Duplicate IDs are collapsed, keeping the
// nearest — an object indexed with several moving entries (one per plan
// segment, the live-ingest layout) counts once, so rank-k callers get k
// distinct objects, mirroring RTree.KNN.
func (t *TPRTree) KNNAt(p geom.Point, tq float64, k int) []Neighbor {
	if t.root == nil || k <= 0 {
		return nil
	}
	q := &knnTPRQueue{{dist: t.root.boxAt(tq).MinDistTo(p), nd: t.root}}
	heap.Init(q)
	seen := make(map[int64]bool)
	var out []Neighbor
	for q.Len() > 0 && len(out) < k {
		it := heap.Pop(q).(knnTPRItem)
		if it.entry != nil {
			if !seen[it.entry.ID] {
				seen[it.entry.ID] = true
				out = append(out, Neighbor{ID: it.entry.ID, Dist: it.dist})
			}
			continue
		}
		n := it.nd
		if tq < n.t0 || tq > n.t1 {
			continue
		}
		for i := range n.entries {
			e := &n.entries[i]
			if tq >= e.T0 && tq <= e.T1 {
				heap.Push(q, knnTPRItem{dist: e.At(tq).Dist(p), entry: e})
			}
		}
		for _, c := range n.children {
			heap.Push(q, knnTPRItem{dist: c.boxAt(tq).MinDistTo(p), nd: c})
		}
	}
	return out
}

type knnTPRItem struct {
	dist  float64
	nd    *tprNode
	entry *MovingEntry
}

type knnTPRQueue []knnTPRItem

func (q knnTPRQueue) Len() int            { return len(q) }
func (q knnTPRQueue) Less(a, b int) bool  { return q[a].dist < q[b].dist }
func (q knnTPRQueue) Swap(a, b int)       { q[a], q[b] = q[b], q[a] }
func (q *knnTPRQueue) Push(x interface{}) { *q = append(*q, x.(knnTPRItem)) }
func (q *knnTPRQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}
