package sindex

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func randEntries(rng *rand.Rand, n int) []Entry {
	es := make([]Entry, n)
	for i := range es {
		x := rng.Float64() * 40
		y := rng.Float64() * 40
		w := rng.Float64() * 2
		h := rng.Float64() * 2
		t0 := rng.Float64() * 60
		es[i] = Entry{
			ID:  int64(i),
			Box: geom.AABB{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h},
			T0:  t0,
			T1:  t0 + rng.Float64()*10,
		}
	}
	return es
}

// linearRange is the brute-force oracle.
func linearRange(es []Entry, box geom.AABB, t0, t1 float64) []int64 {
	var out []int64
	for _, e := range es {
		if e.overlaps(box, t0, t1) {
			out = append(out, e.ID)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func sortIDs(ids []int64) []int64 {
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

func TestRTreeEmpty(t *testing.T) {
	tr := NewRTree(nil, 0)
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Errorf("empty tree: len=%d height=%d", tr.Len(), tr.Height())
	}
	if got := tr.SearchRange(geom.AABB{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 0, 1); got != nil {
		t.Errorf("search on empty = %v", got)
	}
	if got := tr.KNN(geom.Point{}, 0, 3); got != nil {
		t.Errorf("knn on empty = %v", got)
	}
}

func TestRTreeSingle(t *testing.T) {
	e := Entry{ID: 42, Box: geom.AABB{MinX: 1, MinY: 1, MaxX: 2, MaxY: 2}, T0: 0, T1: 10}
	tr := NewRTree([]Entry{e}, 4)
	if tr.Len() != 1 || tr.Height() != 1 {
		t.Errorf("len=%d height=%d", tr.Len(), tr.Height())
	}
	if got := tr.SearchRange(geom.AABB{MinX: 0, MinY: 0, MaxX: 3, MaxY: 3}, 0, 5); len(got) != 1 || got[0] != 42 {
		t.Errorf("hit = %v", got)
	}
	if got := tr.SearchRange(geom.AABB{MinX: 5, MinY: 5, MaxX: 6, MaxY: 6}, 0, 5); got != nil {
		t.Errorf("spatial miss = %v", got)
	}
	if got := tr.SearchRange(geom.AABB{MinX: 0, MinY: 0, MaxX: 3, MaxY: 3}, 20, 30); got != nil {
		t.Errorf("temporal miss = %v", got)
	}
}

func TestRTreeMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{1, 5, 50, 500, 3000} {
		es := randEntries(rng, n)
		tr := NewRTree(es, 8)
		if tr.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, tr.Len())
		}
		for q := 0; q < 25; q++ {
			x := rng.Float64() * 40
			y := rng.Float64() * 40
			box := geom.AABB{MinX: x, MinY: y, MaxX: x + rng.Float64()*10, MaxY: y + rng.Float64()*10}
			t0 := rng.Float64() * 60
			t1 := t0 + rng.Float64()*20
			got := sortIDs(tr.SearchRange(box, t0, t1))
			want := linearRange(es, box, t0, t1)
			if len(got) != len(want) {
				t.Fatalf("n=%d q=%d: got %d ids, want %d", n, q, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d q=%d: mismatch at %d", n, q, i)
				}
			}
		}
	}
}

func TestRTreeHeightGrows(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	small := NewRTree(randEntries(rng, 10), 4)
	big := NewRTree(randEntries(rng, 1000), 4)
	if small.Height() < 1 || big.Height() <= small.Height() {
		t.Errorf("heights: small=%d big=%d", small.Height(), big.Height())
	}
}

func TestKNNMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	es := randEntries(rng, 800)
	tr := NewRTree(es, 8)
	for q := 0; q < 20; q++ {
		p := geom.Point{X: rng.Float64() * 40, Y: rng.Float64() * 40}
		tAt := rng.Float64() * 60
		k := 1 + rng.Intn(10)
		got := tr.KNN(p, tAt, k)
		// Oracle: brute force over entries alive at tAt.
		type nd struct {
			id int64
			d  float64
		}
		var alive []nd
		for _, e := range es {
			if e.T0 <= tAt && tAt <= e.T1 {
				alive = append(alive, nd{e.ID, e.Box.MinDistTo(p)})
			}
		}
		sort.Slice(alive, func(a, b int) bool { return alive[a].d < alive[b].d })
		wantLen := k
		if len(alive) < k {
			wantLen = len(alive)
		}
		if len(got) != wantLen {
			t.Fatalf("q=%d: got %d results, want %d", q, len(got), wantLen)
		}
		for i, nb := range got {
			if math.Abs(nb.Dist-alive[i].d) > 1e-12 {
				t.Fatalf("q=%d: result %d dist %g, want %g", q, i, nb.Dist, alive[i].d)
			}
			// Distances must be nondecreasing.
			if i > 0 && nb.Dist < got[i-1].Dist {
				t.Fatalf("q=%d: distances not sorted", q)
			}
		}
	}
}

func TestKNNDedupesIDs(t *testing.T) {
	// Same ID with two segment boxes: only the nearest survives.
	es := []Entry{
		{ID: 1, Box: geom.AABBOf(geom.Point{X: 1, Y: 0}), T0: 0, T1: 10},
		{ID: 1, Box: geom.AABBOf(geom.Point{X: 5, Y: 0}), T0: 0, T1: 10},
		{ID: 2, Box: geom.AABBOf(geom.Point{X: 3, Y: 0}), T0: 0, T1: 10},
	}
	tr := NewRTree(es, 4)
	got := tr.KNN(geom.Point{}, 5, 5)
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	if got[0].ID != 1 || math.Abs(got[0].Dist-1) > 1e-12 {
		t.Errorf("first = %+v", got[0])
	}
	if got[1].ID != 2 {
		t.Errorf("second = %+v", got[1])
	}
}

func TestKNNZeroK(t *testing.T) {
	es := randEntries(rand.New(rand.NewSource(1)), 10)
	tr := NewRTree(es, 4)
	if got := tr.KNN(geom.Point{}, 5, 0); got != nil {
		t.Errorf("k=0: %v", got)
	}
}

func TestGridMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	region := geom.AABB{MinX: 0, MinY: 0, MaxX: 40, MaxY: 40}
	es := randEntries(rng, 1500)
	g := NewGrid(region, 10, 10)
	for _, e := range es {
		g.Insert(e)
	}
	if g.Len() != len(es) {
		t.Fatalf("Len = %d", g.Len())
	}
	for q := 0; q < 25; q++ {
		x := rng.Float64() * 40
		y := rng.Float64() * 40
		box := geom.AABB{MinX: x, MinY: y, MaxX: x + rng.Float64()*8, MaxY: y + rng.Float64()*8}
		t0 := rng.Float64() * 60
		t1 := t0 + rng.Float64()*15
		got := g.SearchRange(box, t0, t1)
		want := linearRange(es, box, t0, t1)
		if len(got) != len(want) {
			t.Fatalf("q=%d: got %d, want %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("q=%d: mismatch at %d", q, i)
			}
		}
	}
}

func TestGridClampsOutOfRegion(t *testing.T) {
	region := geom.AABB{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	g := NewGrid(region, 4, 4)
	e := Entry{ID: 7, Box: geom.AABB{MinX: -5, MinY: -5, MaxX: -4, MaxY: -4}, T0: 0, T1: 1}
	g.Insert(e)
	got := g.SearchRange(geom.AABB{MinX: -10, MinY: -10, MaxX: 0, MaxY: 0}, 0, 1)
	if len(got) != 1 || got[0] != 7 {
		t.Errorf("clamped entry not found: %v", got)
	}
}

func TestGridDegenerateDims(t *testing.T) {
	g := NewGrid(geom.AABB{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 0, -3)
	g.Insert(Entry{ID: 1, Box: geom.AABBOf(geom.Point{X: 0.5, Y: 0.5}), T0: 0, T1: 1})
	if got := g.SearchRange(geom.AABB{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 0, 1); len(got) != 1 {
		t.Errorf("1x1 fallback grid: %v", got)
	}
}

func TestRTreeAndGridAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	region := geom.AABB{MinX: 0, MinY: 0, MaxX: 40, MaxY: 40}
	es := randEntries(rng, 700)
	tr := NewRTree(es, 8)
	g := NewGrid(region, 8, 8)
	for _, e := range es {
		g.Insert(e)
	}
	for q := 0; q < 20; q++ {
		box := geom.AABB{
			MinX: rng.Float64() * 35, MinY: rng.Float64() * 35,
			MaxX: 0, MaxY: 0,
		}
		box.MaxX = box.MinX + rng.Float64()*5
		box.MaxY = box.MinY + rng.Float64()*5
		t0 := rng.Float64() * 50
		t1 := t0 + rng.Float64()*10
		a := sortIDs(tr.SearchRange(box, t0, t1))
		b := g.SearchRange(box, t0, t1)
		if len(a) != len(b) {
			t.Fatalf("q=%d: rtree %d vs grid %d", q, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("q=%d: divergence at %d", q, i)
			}
		}
	}
}
