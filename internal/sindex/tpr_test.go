package sindex

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func randMoving(rng *rand.Rand, n int) []MovingEntry {
	es := make([]MovingEntry, n)
	for i := range es {
		es[i] = MovingEntry{
			ID: int64(i),
			P:  geom.Point{X: rng.Float64() * 40, Y: rng.Float64() * 40},
			V:  geom.Vec{X: (rng.Float64() - 0.5) * 2, Y: (rng.Float64() - 0.5) * 2},
			T0: 0,
			T1: 60,
		}
	}
	return es
}

func TestMovingEntryAt(t *testing.T) {
	e := MovingEntry{ID: 1, P: geom.Point{X: 0, Y: 0}, V: geom.Vec{X: 1, Y: 2}, T0: 10, T1: 20}
	if got := e.At(10); got != (geom.Point{X: 0, Y: 0}) {
		t.Errorf("At(T0) = %v", got)
	}
	if got := e.At(15); got != (geom.Point{X: 5, Y: 10}) {
		t.Errorf("At(15) = %v", got)
	}
	// Clamped outside validity.
	if got := e.At(0); got != (geom.Point{X: 0, Y: 0}) {
		t.Errorf("At before = %v", got)
	}
	if got := e.At(99); got != (geom.Point{X: 10, Y: 20}) {
		t.Errorf("At after = %v", got)
	}
}

func TestTPREmpty(t *testing.T) {
	tr := NewTPRTree(nil, 0, 0)
	if tr.Len() != 0 {
		t.Errorf("len = %d", tr.Len())
	}
	if got := tr.SearchAt(geom.AABB{MaxX: 1, MaxY: 1}, 5); got != nil {
		t.Errorf("search = %v", got)
	}
	if got := tr.KNNAt(geom.Point{}, 5, 3); got != nil {
		t.Errorf("knn = %v", got)
	}
}

func TestTPRSearchMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 10, 200, 1500} {
		es := randMoving(rng, n)
		tr := NewTPRTree(es, 0, 8)
		if tr.Len() != n {
			t.Fatalf("len = %d", tr.Len())
		}
		for q := 0; q < 20; q++ {
			tq := rng.Float64() * 60
			x, y := rng.Float64()*40, rng.Float64()*40
			box := geom.AABB{MinX: x, MinY: y, MaxX: x + 10, MaxY: y + 10}
			got := tr.SearchAt(box, tq)
			var want []int64
			for _, e := range es {
				if tq >= e.T0 && tq <= e.T1 && box.ContainsPoint(e.At(tq)) {
					want = append(want, e.ID)
				}
			}
			sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
			if len(got) != len(want) {
				t.Fatalf("n=%d q=%d: %d vs %d ids", n, q, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d q=%d: mismatch at %d", n, q, i)
				}
			}
		}
	}
}

func TestTPRKNNMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	es := randMoving(rng, 600)
	tr := NewTPRTree(es, 0, 8)
	for q := 0; q < 25; q++ {
		tq := rng.Float64() * 60
		p := geom.Point{X: rng.Float64() * 40, Y: rng.Float64() * 40}
		k := 1 + rng.Intn(8)
		got := tr.KNNAt(p, tq, k)
		type dv struct {
			id int64
			d  float64
		}
		var all []dv
		for _, e := range es {
			all = append(all, dv{e.ID, e.At(tq).Dist(p)})
		}
		sort.Slice(all, func(a, b int) bool { return all[a].d < all[b].d })
		if len(got) != k {
			t.Fatalf("q=%d: got %d results", q, len(got))
		}
		for i := range got {
			if math.Abs(got[i].Dist-all[i].d) > 1e-9 {
				t.Fatalf("q=%d result %d: %g vs %g", q, i, got[i].Dist, all[i].d)
			}
		}
	}
}

// TestTPRQueryBeforeReference: boxes must stay conservative for query
// times before the bulk-load reference time.
func TestTPRQueryBeforeReference(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	es := randMoving(rng, 300)
	tr := NewTPRTree(es, 30, 8) // reference in the middle of the horizon
	for _, tq := range []float64{0, 10, 30, 45, 60} {
		got := tr.SearchAt(geom.AABB{MinX: -100, MinY: -100, MaxX: 100, MaxY: 100}, tq)
		if len(got) != 300 {
			t.Fatalf("tq=%g: found %d of 300", tq, len(got))
		}
		p := geom.Point{X: 20, Y: 20}
		knn := tr.KNNAt(p, tq, 5)
		// Oracle nearest.
		best := math.Inf(1)
		for _, e := range es {
			if d := e.At(tq).Dist(p); d < best {
				best = d
			}
		}
		if math.Abs(knn[0].Dist-best) > 1e-9 {
			t.Fatalf("tq=%g: knn[0] = %g, oracle %g", tq, knn[0].Dist, best)
		}
	}
}

func TestTPRValidityWindows(t *testing.T) {
	es := []MovingEntry{
		{ID: 1, P: geom.Point{X: 0, Y: 0}, V: geom.Vec{}, T0: 0, T1: 10},
		{ID: 2, P: geom.Point{X: 1, Y: 1}, V: geom.Vec{}, T0: 20, T1: 30},
	}
	tr := NewTPRTree(es, 0, 4)
	box := geom.AABB{MinX: -5, MinY: -5, MaxX: 5, MaxY: 5}
	if got := tr.SearchAt(box, 5); len(got) != 1 || got[0] != 1 {
		t.Errorf("t=5: %v", got)
	}
	if got := tr.SearchAt(box, 25); len(got) != 1 || got[0] != 2 {
		t.Errorf("t=25: %v", got)
	}
	if got := tr.SearchAt(box, 15); got != nil {
		t.Errorf("t=15 (gap): %v", got)
	}
}
