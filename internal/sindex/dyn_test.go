package sindex

import (
	"math"
	"math/rand"
	"slices"
	"testing"

	"repro/internal/geom"
)

// Incremental-insertion suite: a tree grown with Inserted must answer
// every query identically to a from-scratch bulk load over the same entry
// set — the invariant the mod store's live-ingest index maintenance is
// built on — and deriving a new tree must leave the old one untouched
// (readers hold snapshots).

// perIDMinDist is the RTree.KNN oracle: per ID, the minimum box distance
// among entries valid at t.
func perIDMinDist(es []Entry, p geom.Point, t float64) map[int64]float64 {
	best := make(map[int64]float64)
	for _, e := range es {
		if e.T0 > t || e.T1 < t {
			continue
		}
		d := e.Box.MinDistTo(p)
		if b, ok := best[e.ID]; !ok || d < b {
			best[e.ID] = d
		}
	}
	return best
}

func checkRTreeAgainstEntries(t *testing.T, tag string, tree *RTree, es []Entry, rng *rand.Rand) {
	t.Helper()
	if tree.Len() != len(es) {
		t.Fatalf("%s: Len = %d, want %d", tag, tree.Len(), len(es))
	}
	for q := 0; q < 40; q++ {
		x, y := rng.Float64()*44-2, rng.Float64()*44-2
		box := geom.AABB{MinX: x, MinY: y, MaxX: x + rng.Float64()*15, MaxY: y + rng.Float64()*15}
		t0 := rng.Float64() * 40
		t1 := t0 + rng.Float64()*20
		got := append([]int64(nil), tree.SearchRange(box, t0, t1)...)
		slices.Sort(got)
		var want []int64
		for _, e := range es {
			if e.overlaps(box, t0, t1) {
				want = append(want, e.ID)
			}
		}
		slices.Sort(want)
		if !slices.Equal(got, want) {
			t.Fatalf("%s q=%d: SearchRange got %d ids, want %d", tag, q, len(got), len(want))
		}

		p := geom.Point{X: rng.Float64() * 40, Y: rng.Float64() * 40}
		tq := rng.Float64() * 40
		k := 1 + rng.Intn(12)
		nbs := tree.KNN(p, tq, k)
		oracle := perIDMinDist(es, p, tq)
		dists := make([]float64, 0, len(oracle))
		for _, d := range oracle {
			dists = append(dists, d)
		}
		slices.Sort(dists)
		wantLen := min(k, len(dists))
		if len(nbs) != wantLen {
			t.Fatalf("%s q=%d: KNN returned %d, want %d", tag, q, len(nbs), wantLen)
		}
		for i, nb := range nbs {
			if math.Abs(nb.Dist-dists[i]) > 1e-9 {
				t.Fatalf("%s q=%d result %d: dist %g, oracle %g", tag, q, i, nb.Dist, dists[i])
			}
			if d, ok := oracle[nb.ID]; !ok || math.Abs(nb.Dist-d) > 1e-9 {
				t.Fatalf("%s q=%d result %d: id %d dist %g, per-id oracle %g (ok=%v)",
					tag, q, i, nb.ID, nb.Dist, d, ok)
			}
		}
	}
}

func TestRTreeInsertedMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, split := range []struct{ base, extra int }{
		{0, 30}, {1, 64}, {200, 1}, {150, 150}, {40, 300},
	} {
		all := randSegmentEntries(rng, (split.base+split.extra+3)/4+1, 4)[:split.base+split.extra]
		base := NewRTree(all[:split.base], 8)
		grown := base.Inserted(all[split.base:]...)
		checkRTreeAgainstEntries(t, "grown", grown, all, rng)

		// One-at-a-time growth must agree too (exercises repeated splits).
		one := NewRTree(all[:split.base], 8)
		for _, e := range all[split.base:] {
			one = one.Inserted(e)
		}
		checkRTreeAgainstEntries(t, "one-by-one", one, all, rng)
	}
}

func TestRTreeInsertedLeavesReceiverIntact(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	es := randSegmentEntries(rng, 80, 4)
	base := NewRTree(es[:200], 8)
	before := append([]int64(nil), base.SearchRange(geom.AABB{MinX: 0, MinY: 0, MaxX: 40, MaxY: 40}, 0, 60)...)
	slices.Sort(before)
	grown := base.Inserted(es[200:]...)
	if grown == base {
		t.Fatal("Inserted returned the receiver")
	}
	after := append([]int64(nil), base.SearchRange(geom.AABB{MinX: 0, MinY: 0, MaxX: 40, MaxY: 40}, 0, 60)...)
	slices.Sort(after)
	if !slices.Equal(before, after) {
		t.Fatal("Inserted mutated the receiver's answers")
	}
	if base.Len() != 200 || grown.Len() != len(es) {
		t.Fatalf("Len: base %d grown %d, want 200 and %d", base.Len(), grown.Len(), len(es))
	}
}

func TestRTreeInsertedFromEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	es := randSegmentEntries(rng, 30, 4)
	var tree *RTree
	tree = tree.Inserted(es...)
	checkRTreeAgainstEntries(t, "from-nil", tree, es, rng)
	empty := NewRTree(nil, 8)
	tree2 := empty.Inserted(es...)
	checkRTreeAgainstEntries(t, "from-empty", tree2, es, rng)
}

// sweepOracle mirrors SearchInterval's documented entry test exactly: the
// axis-aligned box of the entry's linear sweep over the overlap of its
// validity with [t0, t1].
func sweepOracle(es []MovingEntry, box geom.AABB, t0, t1 float64) []int64 {
	var out []int64
	for _, e := range es {
		a, b := math.Max(t0, e.T0), math.Min(t1, e.T1)
		if b < a {
			continue
		}
		if geom.AABBOf(e.At(a), e.At(b)).Intersects(box) {
			out = append(out, e.ID)
		}
	}
	slices.Sort(out)
	return out
}

func checkTPRAgainstEntries(t *testing.T, tag string, tree *TPRTree, es []MovingEntry, rng *rand.Rand) {
	t.Helper()
	if tree.Len() != len(es) {
		t.Fatalf("%s: Len = %d, want %d", tag, tree.Len(), len(es))
	}
	for q := 0; q < 40; q++ {
		x, y := rng.Float64()*50-5, rng.Float64()*50-5
		box := geom.AABB{MinX: x, MinY: y, MaxX: x + rng.Float64()*12, MaxY: y + rng.Float64()*12}
		t0 := rng.Float64() * 60
		t1 := t0 + rng.Float64()*15
		got := tree.SearchInterval(box, t0, t1)
		if want := sweepOracle(es, box, t0, t1); !slices.Equal(got, want) {
			t.Fatalf("%s q=%d: SearchInterval got %v, want %v", tag, q, got, want)
		}

		tq := rng.Float64() * 60
		gotAt := tree.SearchAt(box, tq)
		var wantAt []int64
		for _, e := range es {
			if tq >= e.T0 && tq <= e.T1 && box.ContainsPoint(e.At(tq)) {
				wantAt = append(wantAt, e.ID)
			}
		}
		slices.Sort(wantAt)
		if !slices.Equal(gotAt, wantAt) {
			t.Fatalf("%s q=%d: SearchAt got %v, want %v", tag, q, gotAt, wantAt)
		}

		p := geom.Point{X: rng.Float64() * 40, Y: rng.Float64() * 40}
		k := 1 + rng.Intn(8)
		nbs := tree.KNNAt(p, tq, k)
		best := make(map[int64]float64)
		for _, e := range es {
			if tq < e.T0 || tq > e.T1 {
				continue
			}
			d := e.At(tq).Dist(p)
			if b, ok := best[e.ID]; !ok || d < b {
				best[e.ID] = d
			}
		}
		dists := make([]float64, 0, len(best))
		for _, d := range best {
			dists = append(dists, d)
		}
		slices.Sort(dists)
		wantLen := min(k, len(dists))
		if len(nbs) != wantLen {
			t.Fatalf("%s q=%d: KNNAt returned %d, want %d", tag, q, len(nbs), wantLen)
		}
		for i, nb := range nbs {
			if math.Abs(nb.Dist-dists[i]) > 1e-9 {
				t.Fatalf("%s q=%d result %d: dist %g, oracle %g", tag, q, i, nb.Dist, dists[i])
			}
		}
	}
}

func TestTPRInsertedMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for _, split := range []struct{ base, extra int }{
		{0, 40}, {1, 80}, {120, 1}, {100, 100},
	} {
		all := randStaggeredMoving(rng, split.base+split.extra)
		base := NewTPRTree(all[:split.base], 5, 8)
		grown := base.Inserted(all[split.base:]...)
		checkTPRAgainstEntries(t, "grown", grown, all, rng)
	}
}

// TestTPRKNNAtDedupesIDs pins the multi-entry-per-object contract: an
// object indexed with several moving entries (the live predictive layout,
// one entry per plan segment) appears once, at its nearest entry.
func TestTPRKNNAtDedupesIDs(t *testing.T) {
	es := []MovingEntry{
		{ID: 1, P: geom.Point{X: 0, Y: 0}, T0: 0, T1: 5},
		{ID: 1, P: geom.Point{X: 3, Y: 0}, T0: 0, T1: 5},
		{ID: 2, P: geom.Point{X: 10, Y: 0}, T0: 0, T1: 5},
	}
	tr := NewTPRTree(es, 0, 4)
	got := tr.KNNAt(geom.Point{X: 0, Y: 0}, 1, 3)
	if len(got) != 2 || got[0].ID != 1 || got[0].Dist != 0 || got[1].ID != 2 {
		t.Fatalf("want deduped [{1 0} {2 10}], got %v", got)
	}
}

func TestTPRInsertedLeavesReceiverIntact(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	es := randStaggeredMoving(rng, 90)
	base := NewTPRTree(es[:60], 5, 8)
	box := geom.AABB{MinX: 0, MinY: 0, MaxX: 40, MaxY: 40}
	before := base.SearchInterval(box, 0, 60)
	grown := base.Inserted(es[60:]...)
	after := base.SearchInterval(box, 0, 60)
	if !slices.Equal(before, after) {
		t.Fatal("Inserted mutated the receiver's answers")
	}
	if base.Len() != 60 || grown.Len() != len(es) {
		t.Fatalf("Len: base %d grown %d, want 60 and %d", base.Len(), grown.Len(), len(es))
	}
}
