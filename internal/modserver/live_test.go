package modserver

import (
	"errors"
	"math"
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/mod"
	"repro/internal/trajectory"
)

// liveStore builds the standard live scene: query object 1 crossing the
// plane, 2 shadowing it, 3 and 4 far away, plans covering [0, 10].
func liveStore(t *testing.T) *mod.Store {
	t.Helper()
	st, err := mod.NewUniformStore(0.5)
	if err != nil {
		t.Fatal(err)
	}
	for oid, y := range map[int64]float64{1: 0, 2: 1, 3: 50, 4: 100} {
		verts := make([]trajectory.Vertex, 11)
		for i := range verts {
			verts[i] = trajectory.Vertex{X: float64(i), Y: y, T: float64(i)}
		}
		tr, err := trajectory.New(oid, verts)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Insert(tr); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// TestIngestSubscribeOverWire drives the live ops end to end over TCP:
// one connection subscribes, another ingests, and the subscriber's event
// stream carries the diffs in order with monotone sequence numbers.
func TestIngestSubscribeOverWire(t *testing.T) {
	st := liveStore(t)
	_, addr := startServer(t, st)

	subCli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer subCli.Close()
	ingCli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ingCli.Close()

	req := engine.Request{Kind: engine.KindUQ31, QueryOID: 1, Tb: 0, Te: 10}
	subID, initial, err := subCli.Subscribe(req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(initial.OIDs, []int64{2}) {
		t.Fatalf("initial answer = %+v", initial)
	}

	// Ingest from the other connection: revision steering object 3 in.
	applied, err := ingCli.Ingest([]mod.Update{{OID: 3, Verts: []trajectory.Vertex{
		{X: 6, Y: 1, T: 6}, {X: 10, Y: 0.5, T: 10},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 1 || applied[0].Inserted || applied[0].ChangedFrom != 5 ||
		applied[0].Traj == nil || applied[0].Prev == nil {
		t.Fatalf("applied = %+v", applied)
	}
	if len(applied[0].Traj.Verts) != 8 || len(applied[0].Prev.Verts) != 11 {
		t.Fatalf("wire trajectories: new %d verts, prev %d verts",
			len(applied[0].Traj.Verts), len(applied[0].Prev.Verts))
	}

	ev, err := subCli.NextEvent()
	if err != nil {
		t.Fatal(err)
	}
	if ev.SubID != subID || ev.Seq != 1 || !reflect.DeepEqual(ev.Added, []int64{3}) ||
		!reflect.DeepEqual(ev.OIDs, []int64{2, 3}) {
		t.Fatalf("event = %+v", ev)
	}

	// An insert via the wire: ChangedFrom must round-trip as -Inf.
	applied, err = ingCli.Ingest([]mod.Update{{OID: 10, Verts: []trajectory.Vertex{
		{X: 0, Y: 0.5, T: 0}, {X: 10, Y: 0.5, T: 10},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if !applied[0].Inserted || !math.IsInf(applied[0].ChangedFrom, -1) {
		t.Fatalf("insert outcome = %+v", applied[0])
	}
	ev, err = subCli.NextEvent()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Seq != 2 || !reflect.DeepEqual(ev.Added, []int64{10}) {
		t.Fatalf("second event = %+v", ev)
	}

	// An irrelevant far revision produces no event; the next relevant one
	// carries Seq 3 (no gaps, nothing skipped on the wire).
	if _, err := ingCli.Ingest([]mod.Update{{OID: 4, Verts: []trajectory.Vertex{
		{X: 7, Y: 99, T: 7}, {X: 10, Y: 99, T: 10},
	}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ingCli.Ingest([]mod.Update{{OID: 3, Verts: []trajectory.Vertex{
		{X: 6, Y: 80, T: 5.5}, {X: 10, Y: 80, T: 10},
	}}}); err != nil {
		t.Fatal(err)
	}
	ev, err = subCli.NextEvent()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Seq != 3 || !reflect.DeepEqual(ev.Removed, []int64{3}) || !reflect.DeepEqual(ev.OIDs, []int64{2, 10}) {
		t.Fatalf("third event = %+v", ev)
	}

	// Only the owning connection may unsubscribe.
	if err := ingCli.Unsubscribe(subID); err == nil {
		t.Fatal("foreign connection unsubscribed someone else's stream")
	}
	// Unsubscribe stops the stream: a further relevant ingest emits
	// nothing for this subscription.
	if err := subCli.Unsubscribe(subID); err != nil {
		t.Fatal(err)
	}
	if err := subCli.Unsubscribe(subID); err == nil {
		t.Fatal("double unsubscribe succeeded")
	}

	// A bad ingest surfaces its error.
	if _, err := ingCli.Ingest([]mod.Update{{OID: 77, Verts: []trajectory.Vertex{{X: 0, Y: 0, T: 1}}}}); err == nil {
		t.Fatal("short insert accepted over the wire")
	}
}

// TestSubscribeSameConnIngest exercises the single-connection flow: the
// ingest reply and the event both travel to the same client, which must
// route them apart.
func TestSubscribeSameConnIngest(t *testing.T) {
	st := liveStore(t)
	_, addr := startServer(t, st)
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	req := engine.Request{Kind: engine.KindUQ11, QueryOID: 1, Tb: 0, Te: 10, OID: 3}
	subID, initial, err := cli.Subscribe(req)
	if err != nil {
		t.Fatal(err)
	}
	if initial.Bool || !initial.IsBool {
		t.Fatalf("initial = %+v", initial)
	}
	if _, err := cli.Ingest([]mod.Update{{OID: 3, Verts: []trajectory.Vertex{
		{X: 6, Y: 1, T: 6}, {X: 10, Y: 0.5, T: 10},
	}}}); err != nil {
		t.Fatal(err)
	}
	ev, err := cli.NextEvent()
	if err != nil {
		t.Fatal(err)
	}
	if ev.SubID != subID || !ev.IsBool || !ev.Bool {
		t.Fatalf("event = %+v", ev)
	}
}

// TestSubscriberDisconnectCleansUp pins the teardown path: a subscriber
// that drops its connection is detached — retained in the hub for a
// later Resume — and ingests keep flowing for everyone else. With
// detached retention disabled (MaxDetached < 0) the subscription is
// reaped outright, restoring the old fire-and-forget teardown.
func TestSubscriberDisconnectCleansUp(t *testing.T) {
	st := liveStore(t)
	srv, addr := startServer(t, st)

	subCli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	subID, _, err := subCli.Subscribe(engine.Request{Kind: engine.KindUQ31, QueryOID: 1, Tb: 0, Te: 10})
	if err != nil {
		t.Fatal(err)
	}
	subCli.Close()

	// The server notices the closed connection on its read loop and moves
	// the subscription to the detached set. Poll until it lands there.
	deadline := time.Now().Add(5 * time.Second)
	for !srv.isDetached(subID) {
		if time.Now().After(deadline) {
			t.Fatalf("subscription %d not detached after disconnect", subID)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := srv.Hub().Subscriptions(); len(got) != 1 {
		t.Fatalf("detached subscription should stay registered, hub has %v", got)
	}

	ingCli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ingCli.Close()
	if _, err := ingCli.Ingest([]mod.Update{{OID: 3, Verts: []trajectory.Vertex{
		{X: 6, Y: 1, T: 6}, {X: 10, Y: 0.5, T: 10},
	}}}); err != nil {
		t.Fatal(err)
	}
}

// TestSubscriberDisconnectReapedWithoutRetention covers the MaxDetached<0
// configuration: disconnect unregisters the subscription from the hub.
func TestSubscriberDisconnectReapedWithoutRetention(t *testing.T) {
	st := liveStore(t)
	srv, addr := startServerWith(t, st, Options{MaxDetached: -1})

	subCli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := subCli.Subscribe(engine.Request{Kind: engine.KindUQ31, QueryOID: 1, Tb: 0, Te: 10}); err != nil {
		t.Fatal(err)
	}
	subCli.Close()

	deadline := time.Now().Add(5 * time.Second)
	for len(srv.Hub().Subscriptions()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("subscription still live after disconnect: %v", srv.Hub().Subscriptions())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestIdleSubscriberSurvivesReadTimeout pins the deadline exemption: a
// connection that owns a subscription is a pure event listener and must
// not be reaped for sending no request lines, even with an aggressive
// read timeout.
func TestIdleSubscriberSurvivesReadTimeout(t *testing.T) {
	st := liveStore(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServerWith(st, nil, Options{ReadTimeout: 50 * time.Millisecond})
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(l) }()
	t.Cleanup(func() { srv.Close(); <-done })

	subCli, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer subCli.Close()
	subID, _, err := subCli.Subscribe(engine.Request{Kind: engine.KindUQ31, QueryOID: 1, Tb: 0, Te: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Sit well past the read timeout without sending anything.
	time.Sleep(250 * time.Millisecond)

	ingCli, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer ingCli.Close()
	if _, err := ingCli.Ingest([]mod.Update{{OID: 3, Verts: []trajectory.Vertex{
		{X: 6, Y: 1, T: 6}, {X: 10, Y: 0.5, T: 10},
	}}}); err != nil {
		t.Fatal(err)
	}
	ev, err := subCli.NextEvent()
	if err != nil {
		t.Fatalf("idle subscriber was reaped: %v", err)
	}
	if ev.SubID != subID || ev.Seq != 1 {
		t.Fatalf("event = %+v", ev)
	}
}

// TestIngestErrorIdentity keeps the wire error surface coherent with the
// in-process one for the live ops.
func TestIngestErrorIdentity(t *testing.T) {
	st := liveStore(t)
	_, addr := startServer(t, st)
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// Stale revision: first vertex precedes the whole plan.
	_, err = cli.Ingest([]mod.Update{{OID: 1, Verts: []trajectory.Vertex{{X: 0, Y: 0, T: -5}}}})
	if err == nil {
		t.Fatal("stale revision accepted")
	}
	var wire interface{ Error() string } = err
	if wire.Error() == "" {
		t.Fatal("empty error message")
	}
	if errors.Is(err, mod.ErrNotFound) {
		t.Fatal("stale revision misreported as not-found")
	}

	// A mid-batch failure reports the applied prefix with the error — the
	// mod.ApplyUpdates partial contract, preserved across the wire.
	partial, err := cli.Ingest([]mod.Update{
		{OID: 2, Verts: []trajectory.Vertex{{X: 6, Y: 1.1, T: 6}, {X: 10, Y: 1.1, T: 10}}},
		{OID: 1, Verts: []trajectory.Vertex{{X: 0, Y: 0, T: -5}}},
	})
	if err == nil {
		t.Fatal("bad batch member accepted")
	}
	if len(partial) != 1 || partial[0].OID != 2 || partial[0].ChangedFrom != 5 {
		t.Fatalf("partial outcomes = %+v", partial)
	}
}
