package modserver

import (
	"fmt"
	"testing"

	"repro/internal/uql"
)

// TestBatchOverWire: the batch op must agree with per-statement uql ops,
// report per-statement errors in place, and not kill the connection.
func TestBatchOverWire(t *testing.T) {
	store := seededStore(t, 25)
	_, addr := startServer(t, store)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	script := []string{
		"SELECT T FROM MOD WHERE EXISTS Time IN [0, 60] AND ProbabilityNN(T, 1, Time) > 0",
		"SELECT T FROM MOD WHERE EXISTS Time IN [0, 60] AND ProbabilityKNN(T, 1, Time, 2) > 0",
		"not uql at all",
		"SELECT 2 FROM MOD WHERE FORALL Time IN [0, 60] AND ProbabilityNN(2, 1, Time) > 0",
		"SELECT T FROM MOD WHERE FORALL Time IN [0, 60] AND ProbabilityNN(T, 1, Time) > 0",
	}
	items, err := c.Batch(script)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != len(script) {
		t.Fatalf("got %d items, want %d", len(items), len(script))
	}
	for i, src := range script {
		if i == 2 {
			if items[i].Err == nil {
				t.Error("bad statement did not report an error")
			}
			continue
		}
		if items[i].Err != nil {
			t.Fatalf("item %d: %v", i, items[i].Err)
		}
		want, err := uql.Run(src, store)
		if err != nil {
			t.Fatal(err)
		}
		got := items[i].Result
		// The wire canonicalizes an absent OID list to empty.
		if !want.IsBool && want.OIDs == nil {
			want.OIDs = []int64{}
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("%q:\n wire   %v\n direct %v", src, got, want)
		}
	}

	// Connection still serves after a batch with a bad statement.
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	// An empty batch is fine.
	items, err = c.Batch(nil)
	if err != nil || len(items) != 0 {
		t.Fatalf("empty batch: items=%v err=%v", items, err)
	}
}
