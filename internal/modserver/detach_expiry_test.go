// Detached-subscription deadline expiry: a subscription left detached
// past DetachedTTL is expired for real (unsubscribed from the hub, so
// churny subscribe/disconnect load cannot pin backlog memory or
// per-ingest evaluation work), and a late resume gets the typed
// sub_expired rejection — distinct from the generic unknown-subscription
// error — mapped to ErrSubExpired by the client.
package modserver

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/mod"
)

// steppedClock is a manually-advanced time source for the detach
// deadline.
type steppedClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *steppedClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *steppedClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestDetachedSubscriptionExpires(t *testing.T) {
	st := liveStore(t)
	srv, addr := startServerWith(t, st, Options{DetachedTTL: time.Minute})
	clock := &steppedClock{t: time.Unix(1_000_000, 0)}
	srv.now = clock.now

	ing, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()

	subCli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	subID, _, err := subCli.Subscribe(uq11Flip)
	if err != nil {
		t.Fatal(err)
	}
	subCli.Close()
	waitDetached(t, srv, subID)

	// Inside the deadline the subscription stays resumable.
	clock.advance(30 * time.Second)
	re1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := re1.Resume(subID, 0); err != nil {
		t.Fatalf("Resume inside the deadline: %v", err)
	}
	re1.Close()
	waitDetached(t, srv, subID)

	// Past the deadline, an ingest sweeps it out of the hub for real...
	clock.advance(2 * time.Minute)
	if _, err := ing.Ingest([]mod.Update{flipUpdate(true)}); err != nil {
		t.Fatal(err)
	}
	if srv.isDetached(subID) {
		t.Fatal("subscription survived the deadline sweep")
	}
	if _, err := srv.hub.Answer(subID); err == nil {
		t.Fatal("hub still holds the expired subscription")
	}

	// ...and a late resume is rejected with the typed identity.
	re2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if _, err := re2.Resume(subID, 0); !errors.Is(err, ErrSubExpired) {
		t.Fatalf("Resume past the deadline = %v, want ErrSubExpired", err)
	}
	// A genuinely unknown ID still gets the untyped rejection.
	if _, err := re2.Resume(subID+99, 0); err == nil || errors.Is(err, ErrSubExpired) {
		t.Fatalf("Resume of unknown sub = %v, want a generic error", err)
	}
}

// TestDetachedExpiryDisabled: a negative DetachedTTL keeps the
// pre-deadline behavior — detached subscriptions only ever leave by LRU
// eviction or explicit unsubscribe.
func TestDetachedExpiryDisabled(t *testing.T) {
	st := liveStore(t)
	srv, addr := startServerWith(t, st, Options{DetachedTTL: -1})
	clock := &steppedClock{t: time.Unix(1_000_000, 0)}
	srv.now = clock.now

	ing, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()

	subCli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	subID, _, err := subCli.Subscribe(uq11Flip)
	if err != nil {
		t.Fatal(err)
	}
	subCli.Close()
	waitDetached(t, srv, subID)

	clock.advance(24 * time.Hour)
	if _, err := ing.Ingest([]mod.Update{flipUpdate(true)}); err != nil {
		t.Fatal(err)
	}
	if !srv.isDetached(subID) {
		t.Fatal("subscription expired with the deadline disabled")
	}
	re, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, err := re.Resume(subID, 0); err != nil {
		t.Fatalf("Resume with expiry disabled: %v", err)
	}
}
