package modserver

// Serving-layer hardening tests: a stalled connection is disconnected at
// the read deadline (while a live one keeps talking past it), an
// oversized request line gets a diagnostic and a close, and the shard
// phases of the query op round-trip bounds (including the +Inf encoding)
// and survivors faithfully.

import (
	"bufio"
	"context"
	"errors"
	"math"
	"net"
	"slices"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/mod"
	"repro/internal/prune"
	"repro/internal/workload"
)

func startTCPServer(t *testing.T, store *mod.Store, o Options) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServerWith(store, engine.New(1), o)
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return l.Addr().String()
}

func testStore(t *testing.T, n int) *mod.Store {
	t.Helper()
	trs, err := workload.Generate(workload.DefaultConfig(5), n)
	if err != nil {
		t.Fatal(err)
	}
	store, err := mod.NewUniformStore(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.InsertAll(trs); err != nil {
		t.Fatal(err)
	}
	return store
}

// TestStalledConnectionDisconnected: a client that connects and then goes
// silent is dropped once the read deadline passes, so it cannot wedge a
// shard's connection handling.
func TestStalledConnectionDisconnected(t *testing.T) {
	addr := startTCPServer(t, testStore(t, 3), Options{ReadTimeout: 100 * time.Millisecond})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send nothing. The server must close the connection on its own.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	start := time.Now()
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("stalled connection was not closed by the server")
	} else if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
		t.Fatal("server left the stalled connection open for 5s")
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("disconnect took %v, want ~ReadTimeout", d)
	}
}

// TestActiveConnectionOutlivesReadTimeout: the deadline is per request
// line, not per connection — a client that keeps talking stays connected
// well past ReadTimeout.
func TestActiveConnectionOutlivesReadTimeout(t *testing.T) {
	addr := startTCPServer(t, testStore(t, 3), Options{ReadTimeout: 80 * time.Millisecond})
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	deadline := time.Now().Add(400 * time.Millisecond)
	for time.Now().Before(deadline) {
		if err := cli.Ping(); err != nil {
			t.Fatalf("live connection dropped: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestOversizedRequestRejected: a request line beyond MaxLineBytes gets a
// diagnostic response and the connection is closed (the line boundary is
// lost, so resynchronization is impossible).
func TestOversizedRequestRejected(t *testing.T) {
	addr := startTCPServer(t, testStore(t, 3), Options{MaxLineBytes: 256})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	big := `{"op":"ping","query":"` + strings.Repeat("x", 1024) + "\"}\n"
	if _, err := conn.Write([]byte(big)); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		t.Fatalf("no diagnostic before close: %v", sc.Err())
	}
	if !strings.Contains(sc.Text(), "exceeds 256 bytes") {
		t.Fatalf("unexpected diagnostic: %s", sc.Text())
	}
	if sc.Scan() {
		t.Fatalf("connection stayed open after oversized request: %s", sc.Text())
	}
}

// TestShardPhasesRoundTrip drives the bounds and survivors phases over
// the wire and requires them to match the local prune calls exactly —
// including +Inf bounds surviving the -1 encoding — and the all phase to
// ship the store verbatim.
func TestShardPhasesRoundTrip(t *testing.T) {
	store := testStore(t, 80)
	addr := startTCPServer(t, store, Options{})
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	q, err := store.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	wantBounds, err := prune.SliceBounds(context.Background(), store, q, 0, 30, 2)
	if err != nil {
		t.Fatal(err)
	}
	gotBounds, err := cli.ShardBounds(q, 0, 30, 2, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(wantBounds, gotBounds) {
		t.Fatalf("bounds diverged over the wire:\n  want %v\n  got  %v", wantBounds, gotBounds)
	}

	// Impose bounds with +Inf holes: the encoding must carry them.
	imposed := slices.Clone(wantBounds)
	imposed[0] = math.Inf(1)
	if len(imposed) > 2 {
		imposed[len(imposed)/2] = math.Inf(1)
	}
	wantSurv, wantStats, err := prune.SurvivorsWithBounds(context.Background(), store, q, 0, 30, imposed)
	if err != nil {
		t.Fatal(err)
	}
	gotSurv, gotStats, err := cli.ShardSurvivors(q, 0, 30, imposed, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gotStats != wantStats {
		t.Fatalf("stats diverged: want %+v got %+v", wantStats, gotStats)
	}
	if len(gotSurv) != len(wantSurv) {
		t.Fatalf("%d survivors over the wire, want %d", len(gotSurv), len(wantSurv))
	}
	for i := range wantSurv {
		if gotSurv[i].OID != wantSurv[i].OID || len(gotSurv[i].Verts) != len(wantSurv[i].Verts) {
			t.Fatalf("survivor %d diverged: want OID %d (%d verts), got OID %d (%d verts)",
				i, wantSurv[i].OID, len(wantSurv[i].Verts), gotSurv[i].OID, len(gotSurv[i].Verts))
		}
	}

	all, err := cli.AllTrajectories()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != store.Len() {
		t.Fatalf("all phase shipped %d trajectories, want %d", len(all), store.Len())
	}

	// An expired deadline fails the sweep with a context error instead of
	// letting the phase run on (the per-slice checkpoints are
	// deadline-aware, not just cancellation-aware).
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := prune.SliceBounds(expired, store, q, 0, 30, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired-deadline bounds phase: %v, want context.DeadlineExceeded", err)
	}
	if _, _, err := prune.SurvivorsWithBounds(expired, store, q, 0, 30, imposed); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired-deadline survivors phase: %v, want context.DeadlineExceeded", err)
	}
}

// TestNotFoundCrossesWire pins the coded error identity: a missing OID is
// errors.Is(err, mod.ErrNotFound) on the client side, which the cluster
// router's point-lookup broadcast depends on.
func TestNotFoundCrossesWire(t *testing.T) {
	addr := startTCPServer(t, testStore(t, 3), Options{})
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Get(999); !errors.Is(err, mod.ErrNotFound) {
		t.Fatalf("remote get of missing OID: %v, want mod.ErrNotFound identity", err)
	}
	if err := cli.Delete(999); !errors.Is(err, mod.ErrNotFound) {
		t.Fatalf("remote delete of missing OID: %v, want mod.ErrNotFound identity", err)
	}
}
